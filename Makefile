.PHONY: all build test bench smoke check clean

all: build

build:
	dune build

test: build
	dune runtest

# A few-second benchmark smoke run exercising the parallel path end to end
# (2 workers; output is byte-identical for every --jobs value).
smoke: build
	dune exec bench/main.exe -- --smoke --jobs 2

check: build test smoke

bench: build
	dune exec bench/main.exe

clean:
	dune clean
