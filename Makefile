.PHONY: all build test bench bench-smoke smoke trace-smoke chaos-smoke serve-smoke soak-smoke ooc-smoke par-smoke compress-smoke pipeline-smoke check clean

all: build

build:
	dune build

test: build
	dune runtest

# A few-second benchmark smoke run exercising the parallel path end to end
# (2 workers; output is byte-identical for every --jobs value).
smoke: build
	dune exec bench/main.exe -- --smoke --jobs 2

# Seconds-long kernel microbenchmark; validates the emitted JSON against
# the bdd-kernel-bench/v2 schema (exit 1 on malformed output).
bench-smoke: build
	dune exec bench/micro.exe -- --smoke -o BENCH_kernel.json
	dune exec bench/micro.exe -- --validate BENCH_kernel.json

# Record a 4-worker span trace + metrics snapshot of the bench smoke run,
# then structurally validate both: balanced begin/end spans and
# nondecreasing timestamps on every track, at least 4 tracks (one lane
# per worker domain), and a well-formed obs-metrics/v1 snapshot.
# Artifacts land under _build/smoke/ (removed by dune clean).
trace-smoke: build
	mkdir -p _build/smoke
	dune exec bench/main.exe -- --smoke --jobs 4 \
	  --trace _build/smoke/_obs_trace.json \
	  --metrics _build/smoke/_obs_metrics.json > /dev/null
	dune exec bin/obs_check.exe -- --trace _build/smoke/_obs_trace.json \
	  --min-tracks 4 --metrics _build/smoke/_obs_metrics.json

# Seeded fault-injection campaign: ~300 reach runs with forced node limits
# and cache wipes (soundness vs a fault-free oracle), kill-and-resume from
# checkpoints (bit-for-bit), and the runner under dispatch crashes.
# TMPDIR keeps the checkpoint litter inside _build/smoke/.
chaos-smoke: build
	mkdir -p _build/smoke
	TMPDIR=$(abspath _build/smoke) dune exec test/chaos/chaos.exe

# End-to-end smoke of the serve layer: a 4-worker server under the
# closed-loop load generator (>= 1000 oracle-checked requests), graceful
# SIGTERM drain, validated BENCH_serve.json / metrics / trace artifacts,
# then the same under seeded fault injection (the server must survive).
serve-smoke: build
	scripts/serve_smoke.sh

# SLO-asserted soak: an open-loop load generator (scheduled arrivals,
# connection churn over durable sessions, per-request deadlines, seeded
# client-side wire faults) against a supervised server with a worker
# deliberately wedged mid-run.  Asserts zero server exits, zero oracle
# contradictions, a held p99 SLO, at least one supervisor respawn, and a
# validated soak section in BENCH_serve_soak.json.
soak-smoke: build
	scripts/soak_smoke.sh

# Out-of-core reachability end to end: an in-RAM oracle run, then the
# same circuit under a hot-node budget far below its in-RAM peak — must
# migrate to the cold tier, finish Exact, match the oracle bit-for-bit,
# and leave no cold/spill files behind; plus the validated
# bdd-ooc-bench/v1 report from bench/ooc.exe --smoke.
ooc-smoke: build
	scripts/ooc_smoke.sh

# Parallel shared-memory kernel end to end: the par/kernel/mt suites
# re-run at 2 and 8 domains (PAR_TEST_DOMAINS), then a sequential BFS
# reach run vs --jobs 2 on a shared manager — bit-identical reached set,
# validated metrics with consistent kernel.* contention counters.
par-smoke: build
	scripts/par_smoke.sh

# Compressed decision diagrams end to end: the four-mode bench with its
# >= 2x chain-reduction gate on the generator family, schema validation
# of the bdd-compress-bench/v1 report, and a reach run whose reached set
# is converted into every mode (round-trip verified) with the chain
# counters surfaced in the metrics snapshot.
compress-smoke: build
	scripts/compress_smoke.sh

# Shared arena + pipelined wire end to end: a pipelined closed-loop run
# against an arena-backed server (byte-identity preflight, oracle-checked
# batches, exactly one publish of the benchmark circuit with catalog
# hits for every later Compile, validated report + arena.* metrics),
# then a seeded wire-fault soak that the poll event-loop front end must
# survive with zero oracle contradictions.
pipeline-smoke: build
	scripts/pipeline_smoke.sh

check: build test smoke bench-smoke trace-smoke chaos-smoke serve-smoke soak-smoke ooc-smoke par-smoke compress-smoke pipeline-smoke

bench: build
	dune exec bench/main.exe

clean:
	dune clean
	rm -f _obs_trace.json _obs_metrics.json
