.PHONY: all build test bench bench-smoke smoke check clean

all: build

build:
	dune build

test: build
	dune runtest

# A few-second benchmark smoke run exercising the parallel path end to end
# (2 workers; output is byte-identical for every --jobs value).
smoke: build
	dune exec bench/main.exe -- --smoke --jobs 2

# Seconds-long kernel microbenchmark; validates the emitted JSON against
# the bdd-kernel-bench/v1 schema (exit 1 on malformed output).
bench-smoke: build
	dune exec bench/micro.exe -- --smoke -o BENCH_kernel.json
	dune exec bench/micro.exe -- --validate BENCH_kernel.json

check: build test smoke bench-smoke

bench: build
	dune exec bench/main.exe

clean:
	dune clean
