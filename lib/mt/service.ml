(* Persistent sharded worker pool with supervision (see the mli).

   One mutex/condition pair per shard: submit and the shard's worker only
   contend with each other, never with other shards.  The queues hold
   closures, so the pool knows nothing about BDDs — the serve layer
   captures its session state in the closure and relies on sharding for
   single-domain access to it.

   Supervision: OCaml domains cannot be killed from outside, so recovery
   is abandon-and-respawn.  Each shard carries a generation counter; a
   worker checks it under the shard lock at the top of every loop and
   exits when superseded.  [respawn] bumps the generation, spawns a fresh
   domain, and never joins the old one — a genuinely hung domain is left
   as a zombie (it cannot hold the shard lock while hung on user work,
   and an abandoned domain does not block process exit).  Liveness is a
   pair of atomics ([busy_label]/[busy_since]) written around each
   closure: a dead *or* wedged worker both look like "busy for too long",
   so one detection path covers crash and hang alike. *)

module M = struct
  open Obs

  let reg = Metrics.default
  let submitted = Metrics.counter reg "mt.service.submitted"
  let rejected = Metrics.counter reg "mt.service.rejected"
  let completed = Metrics.counter reg "mt.service.completed"
  let crashed = Metrics.counter reg "mt.service.crashed"
  let respawned = Metrics.counter reg "mt.service.respawned"
  let quarantined = Metrics.counter reg "mt.service.quarantined"
  let queue_depth = Metrics.histogram reg "mt.service.queue_depth"
  let workers = Metrics.gauge reg "mt.service.workers"
end

exception Poison

type shard = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (string * int * (unit -> unit)) Queue.t;  (* label, weight, work *)
  gen : int Atomic.t;
  busy_label : string option Atomic.t;
  busy_since : float Atomic.t;
  mutable load : int;  (* sum of queued weights, under [lock] *)
}

type t = {
  label : string;
  depth : int;
  shards : shard array;
  mutable domains : unit Domain.t array;
  mutable stop : bool;  (* set under every shard lock, read under one *)
  done_count : int Atomic.t;
  respawn_count : int Atomic.t;
  drain_lock : Mutex.t;
  mutable drained : bool;
}

let workers t = Array.length t.shards
let completed t = Atomic.get t.done_count
let respawns t = Atomic.get t.respawn_count
let draining t = t.stop

let worker t i my_gen () =
  let sh = t.shards.(i) in
  Obs.Trace.with_span
    (Printf.sprintf "%s.worker %d" t.label i)
    (fun () ->
      let rec loop () =
        Mutex.lock sh.lock;
        while
          Queue.is_empty sh.queue && not t.stop && Atomic.get sh.gen = my_gen
        do
          Condition.wait sh.nonempty sh.lock
        done;
        if Atomic.get sh.gen <> my_gen then
          (* superseded by a respawn while waiting: bow out quietly *)
          Mutex.unlock sh.lock
        else
          (* draining still empties the queue: graceful, not abandonment *)
          match Queue.take_opt sh.queue with
          | None ->
              Mutex.unlock sh.lock;
              () (* stop && empty: queues only drain once stop is set *)
          | Some (label, weight, work) ->
              sh.load <- sh.load - weight;
              (* publish busy state BEFORE releasing the shard lock:
                 [respawn] clears busy_label under the same lock, so a
                 respawn cannot interleave between the pop and these
                 stores and leave a superseded worker's stale label
                 armed forever (the end-of-closure clear is gen-gated).
                 Since before label: the supervisor reads label first,
                 so it can never see a label with a stale timestamp *)
              Atomic.set sh.busy_since (Obs.Timing.wall ());
              Atomic.set sh.busy_label (Some label);
              Mutex.unlock sh.lock;
              (try work () with
              | Poison ->
                  (* simulated domain death for the chaos suite: escape
                     with busy_label still set, so the supervisor sees
                     this worker exactly as it sees a real crash *)
                  raise Poison
              | _ ->
                  if Obs.Metrics.recording () then Obs.Metrics.inc M.crashed 1);
              (* a respawn may have raced us while we ran: only report
                 alive if we are still the shard's current worker *)
              if Atomic.get sh.gen = my_gen then Atomic.set sh.busy_label None;
              ignore (Atomic.fetch_and_add t.done_count 1);
              if Obs.Metrics.recording () then Obs.Metrics.inc M.completed 1;
              loop ()
      in
      loop ())

let create ?(label = "mt.service") ~workers ~queue_depth () =
  if workers < 1 then invalid_arg "Mt.Service.create: workers < 1";
  if queue_depth < 1 then invalid_arg "Mt.Service.create: queue_depth < 1";
  let shards =
    Array.init workers (fun _ ->
        {
          lock = Mutex.create ();
          nonempty = Condition.create ();
          queue = Queue.create ();
          gen = Atomic.make 0;
          busy_label = Atomic.make None;
          busy_since = Atomic.make 0.;
          load = 0;
        })
  in
  let t =
    {
      label;
      depth = queue_depth;
      shards;
      domains = [||];
      stop = false;
      done_count = Atomic.make 0;
      respawn_count = Atomic.make 0;
      drain_lock = Mutex.create ();
      drained = false;
    }
  in
  t.domains <- Array.init workers (fun i -> Domain.spawn (worker t i 0));
  if Obs.Metrics.recording () then Obs.Metrics.set M.workers workers;
  t

(* [weight] is how many queue-depth slots the closure accounts for: a
   pipelined batch of N requests travels as one closure but must not
   sneak N requests past admission control as if it were one. *)
let submit t ~shard ?(label = "anon") ?(weight = 1) work =
  if weight < 1 then invalid_arg "Mt.Service.submit: weight < 1";
  let sh = t.shards.(((shard mod workers t) + workers t) mod workers t) in
  Mutex.lock sh.lock;
  let accepted =
    if t.stop || sh.load >= t.depth then false
    else begin
      Queue.add (label, weight, work) sh.queue;
      sh.load <- sh.load + weight;
      Condition.signal sh.nonempty;
      true
    end
  in
  let depth = sh.load in
  Mutex.unlock sh.lock;
  if Obs.Metrics.recording () then begin
    Obs.Metrics.inc (if accepted then M.submitted else M.rejected) 1;
    Obs.Metrics.observe M.queue_depth depth
  end;
  accepted

let pending t =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.lock;
      let n = sh.load in
      Mutex.unlock sh.lock;
      acc + n)
    0 t.shards

(* --- supervision ------------------------------------------------------ *)

let busy t ~shard =
  let sh = t.shards.(((shard mod workers t) + workers t) mod workers t) in
  match Atomic.get sh.busy_label with
  | None -> None
  | Some label -> Some (label, Obs.Timing.wall () -. Atomic.get sh.busy_since)

let respawn t ~shard =
  let i = ((shard mod workers t) + workers t) mod workers t in
  let sh = t.shards.(i) in
  Mutex.lock sh.lock;
  if t.stop then begin
    Mutex.unlock sh.lock;
    None
  end
  else begin
    let poisoned = Atomic.get sh.busy_label in
    (* bump the generation first: the old worker (if it is even alive)
       exits at its next loop top or condition wake-up *)
    Atomic.incr sh.gen;
    Atomic.set sh.busy_label None;
    let g = Atomic.get sh.gen in
    Condition.broadcast sh.nonempty;
    Mutex.unlock sh.lock;
    (* the old domain is abandoned, never joined: it is either dead (its
       exception is dropped with it) or hung (it will not block exit) *)
    t.domains.(i) <- Domain.spawn (worker t i g);
    ignore (Atomic.fetch_and_add t.respawn_count 1);
    if Obs.Metrics.recording () then begin
      Obs.Metrics.inc M.respawned 1;
      if poisoned <> None then Obs.Metrics.inc M.quarantined 1
    end;
    Some poisoned
  end

let check_stalled t ~hang_timeout =
  if hang_timeout <= 0. then invalid_arg "Mt.Service.check_stalled";
  let now = Obs.Timing.wall () in
  let stalled = ref [] in
  Array.iteri
    (fun i sh ->
      match Atomic.get sh.busy_label with
      | Some _ when now -. Atomic.get sh.busy_since > hang_timeout -> (
          match respawn t ~shard:i with
          | Some poisoned -> stalled := (i, poisoned) :: !stalled
          | None -> ())
      | _ -> ())
    t.shards;
  List.rev !stalled

let supervise t ~interval ~hang_timeout ~on_respawn =
  if interval <= 0. then invalid_arg "Mt.Service.supervise";
  Thread.create
    (fun () ->
      while not t.stop do
        Thread.delay interval;
        if not t.stop then
          List.iter
            (fun (shard, quarantined) -> on_respawn ~shard ~quarantined)
            (check_stalled t ~hang_timeout)
      done)
    ()

let drain t =
  Mutex.lock t.drain_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.drain_lock)
    (fun () ->
      if not t.drained then begin
        Array.iter
          (fun sh ->
            Mutex.lock sh.lock;
            t.stop <- true;
            Condition.broadcast sh.nonempty;
            Mutex.unlock sh.lock)
          t.shards;
        (* join only the current generation; zombies from respawns were
           abandoned on purpose.  A *current* worker wedged on user work
           would block the drain forever, so give each join a bounded
           grace period by respawn-style abandonment: we poll busy state
           and abandon any worker still mid-closure after 5s. *)
        Array.iteri
          (fun i d ->
            let sh = t.shards.(i) in
            let deadline = Obs.Timing.wall () +. 5.0 in
            let rec join_or_abandon () =
              if Atomic.get sh.busy_label = None then
                (* idle or between closures: it will see stop and exit *)
                try Domain.join d with _ -> ()
              else if Obs.Timing.wall () > deadline then
                () (* still wedged: abandon, do not block shutdown *)
              else begin
                Thread.delay 0.01;
                join_or_abandon ()
              end
            in
            join_or_abandon ())
          t.domains;
        t.drained <- true
      end)
