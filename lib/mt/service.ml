(* Persistent sharded worker pool (see the mli).

   One mutex/condition pair per shard: submit and the shard's worker only
   contend with each other, never with other shards.  The queues hold
   closures, so the pool knows nothing about BDDs — the serve layer
   captures its session state in the closure and relies on sharding for
   single-domain access to it. *)

module M = struct
  open Obs

  let reg = Metrics.default
  let submitted = Metrics.counter reg "mt.service.submitted"
  let rejected = Metrics.counter reg "mt.service.rejected"
  let completed = Metrics.counter reg "mt.service.completed"
  let crashed = Metrics.counter reg "mt.service.crashed"
  let queue_depth = Metrics.histogram reg "mt.service.queue_depth"
  let workers = Metrics.gauge reg "mt.service.workers"
end

type shard = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
}

type t = {
  label : string;
  depth : int;
  shards : shard array;
  mutable domains : unit Domain.t array;
  mutable stop : bool;  (* set under every shard lock, read under one *)
  done_count : int Atomic.t;
  drain_lock : Mutex.t;
  mutable drained : bool;
}

let workers t = Array.length t.shards
let completed t = Atomic.get t.done_count
let draining t = t.stop

let worker t i () =
  let sh = t.shards.(i) in
  Obs.Trace.with_span
    (Printf.sprintf "%s.worker %d" t.label i)
    (fun () ->
      let rec loop () =
        Mutex.lock sh.lock;
        while Queue.is_empty sh.queue && not t.stop do
          Condition.wait sh.nonempty sh.lock
        done;
        (* draining still empties the queue: graceful, not abandonment *)
        match Queue.take_opt sh.queue with
        | None ->
            Mutex.unlock sh.lock;
            () (* stop && empty: queues only drain once stop is set *)
        | Some work ->
            Mutex.unlock sh.lock;
            (try work ()
             with _ ->
               if Obs.Metrics.recording () then Obs.Metrics.inc M.crashed 1);
            ignore (Atomic.fetch_and_add t.done_count 1);
            if Obs.Metrics.recording () then Obs.Metrics.inc M.completed 1;
            loop ()
      in
      loop ())

let create ?(label = "mt.service") ~workers ~queue_depth () =
  if workers < 1 then invalid_arg "Mt.Service.create: workers < 1";
  if queue_depth < 1 then invalid_arg "Mt.Service.create: queue_depth < 1";
  let shards =
    Array.init workers (fun _ ->
        {
          lock = Mutex.create ();
          nonempty = Condition.create ();
          queue = Queue.create ();
        })
  in
  let t =
    {
      label;
      depth = queue_depth;
      shards;
      domains = [||];
      stop = false;
      done_count = Atomic.make 0;
      drain_lock = Mutex.create ();
      drained = false;
    }
  in
  t.domains <- Array.init workers (fun i -> Domain.spawn (worker t i));
  if Obs.Metrics.recording () then Obs.Metrics.set M.workers workers;
  t

let submit t ~shard work =
  let sh = t.shards.(((shard mod workers t) + workers t) mod workers t) in
  Mutex.lock sh.lock;
  let accepted =
    if t.stop || Queue.length sh.queue >= t.depth then false
    else begin
      Queue.add work sh.queue;
      Condition.signal sh.nonempty;
      true
    end
  in
  let depth = Queue.length sh.queue in
  Mutex.unlock sh.lock;
  if Obs.Metrics.recording () then begin
    Obs.Metrics.inc (if accepted then M.submitted else M.rejected) 1;
    Obs.Metrics.observe M.queue_depth depth
  end;
  accepted

let pending t =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.lock;
      let n = Queue.length sh.queue in
      Mutex.unlock sh.lock;
      acc + n)
    0 t.shards

let drain t =
  Mutex.lock t.drain_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.drain_lock)
    (fun () ->
      if not t.drained then begin
        Array.iter
          (fun sh ->
            Mutex.lock sh.lock;
            t.stop <- true;
            Condition.broadcast sh.nonempty;
            Mutex.unlock sh.lock)
          t.shards;
        Array.iter Domain.join t.domains;
        t.drained <- true
      end)
