(** Persistent sharded worker pool — the long-lived sibling of
    {!Runner.run}.

    {!Runner.run} is a batch primitive: it spawns workers, executes one
    job list and joins.  A server cannot pay that spawn/join cost per
    request, so {!create} brings up [workers] domains that live until
    {!drain} and pull closures from per-worker bounded queues.

    Work is {e sharded}, not stolen: {!submit} targets an explicit shard
    (callers route a session's requests to [session_id mod workers]), so
    everything submitted to one shard runs on one domain, in submission
    order.  That ordering is the concurrency contract the serve layer's
    per-session BDD managers rely on — a session's manager is only ever
    touched by its shard's domain, so hash-consing needs no locks, exactly
    as with {!Runner}'s private per-job managers.

    Each queue is bounded by [queue_depth]: {!submit} on a full (or
    draining) shard returns [false] immediately instead of buffering —
    admission control happens at the caller, which can answer
    "overloaded" while the system is still healthy.

    A closure that raises does not kill its worker: the exception is
    recorded ([mt.service.crashed]) and the worker moves on.

    When {!Obs.Metrics} recording is on, the pool feeds
    [mt.service.submitted / rejected / completed / crashed] counters and a
    [mt.service.queue_depth] histogram (sampled at submit); each worker
    domain runs inside an [mt.service.worker i] span so pools get Perfetto
    lanes like {!Runner} workers do. *)

type t

val create : ?label:string -> workers:int -> queue_depth:int -> unit -> t
(** Spawn [workers] domains (>= 1) with room for [queue_depth] (>= 1)
    pending closures each.  [label] names the trace spans.
    @raise Invalid_argument on a non-positive worker count or depth. *)

val workers : t -> int

val submit : t -> shard:int -> (unit -> unit) -> bool
(** Enqueue a closure on shard [shard mod workers].  [false] when that
    queue is full or the pool is draining — the closure will never run.
    Never blocks. *)

val pending : t -> int
(** Total closures queued (not yet started), summed over shards. *)

val completed : t -> int
(** Closures finished (including ones that raised), over the pool's
    lifetime. *)

val draining : t -> bool

val drain : t -> unit
(** Graceful shutdown: reject new submissions, run everything already
    queued, then join the worker domains.  Idempotent; concurrent callers
    all block until the pool is down. *)
