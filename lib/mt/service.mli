(** Persistent sharded worker pool — the long-lived sibling of
    {!Runner.run}.

    {!Runner.run} is a batch primitive: it spawns workers, executes one
    job list and joins.  A server cannot pay that spawn/join cost per
    request, so {!create} brings up [workers] domains that live until
    {!drain} and pull closures from per-worker bounded queues.

    Work is {e sharded}, not stolen: {!submit} targets an explicit shard
    (callers route a session's requests to [session_id mod workers]), so
    everything submitted to one shard runs on one domain, in submission
    order.  That ordering is the concurrency contract the serve layer's
    per-session BDD managers rely on — a session's manager is only ever
    touched by its shard's domain, so hash-consing needs no locks, exactly
    as with {!Runner}'s private per-job managers.

    Each queue is bounded by [queue_depth]: {!submit} on a full (or
    draining) shard returns [false] immediately instead of buffering —
    admission control happens at the caller, which can answer
    "overloaded" while the system is still healthy.

    A closure that raises does not kill its worker: the exception is
    recorded ([mt.service.crashed]) and the worker moves on.

    {2 Supervision}

    Domains cannot be killed from the outside, so a worker that dies (its
    domain terminated by an escaping {!Poison}) or wedges (stuck inside a
    closure) is recovered by {e abandon-and-respawn}: {!respawn} bumps
    the shard's generation counter, spawns a replacement domain, and
    leaves the old one unjoined — a zombie domain does not block process
    exit, and a superseded-but-healthy worker notices the new generation
    and exits on its own.  Liveness is observable through {!busy} (the
    label and age of the closure a shard is executing); {!check_stalled}
    respawns every shard busy longer than [hang_timeout] and reports the
    quarantined labels, and {!supervise} runs that check on a background
    thread.  The caller owns what a quarantined label {e means} (the
    serve layer maps it back to a poisoned session).

    When {!Obs.Metrics} recording is on, the pool feeds
    [mt.service.submitted / rejected / completed / crashed / respawned /
    quarantined] counters and a [mt.service.queue_depth] histogram
    (sampled at submit); each worker domain runs inside an
    [mt.service.worker i] span so pools get Perfetto lanes like
    {!Runner} workers do. *)

type t

exception Poison
(** Test-only worker killer: a submitted closure that lets [Poison]
    escape terminates its worker domain {e without} clearing the shard's
    busy flag — exactly the footprint of a real crash mid-request — so
    the chaos suite can exercise {!check_stalled} / {!respawn} without
    needing a genuinely wedged domain.  Any other exception from a
    closure is caught and counted as before. *)

val create : ?label:string -> workers:int -> queue_depth:int -> unit -> t
(** Spawn [workers] domains (>= 1) with room for [queue_depth] (>= 1)
    pending closures each.  [label] names the trace spans.
    @raise Invalid_argument on a non-positive worker count or depth. *)

val workers : t -> int

val submit : t -> shard:int -> ?label:string -> ?weight:int -> (unit -> unit) -> bool
(** Enqueue a closure on shard [shard mod workers].  [false] when that
    queue is full or the pool is draining — the closure will never run.
    Never blocks.  [label] (default ["anon"]) names the work for
    supervision: it is what {!busy} and a quarantine report show.
    [weight] (default 1, >= 1) is how many of the shard's [queue_depth]
    slots the closure accounts for — a pipelined batch of N requests
    travels as one closure but must weigh N against admission control.
    @raise Invalid_argument on [weight < 1]. *)

val pending : t -> int
(** Total queued weight (not yet started), summed over shards. *)

val completed : t -> int
(** Closures finished (including ones that raised), over the pool's
    lifetime. *)

val draining : t -> bool

(** {1 Supervision} *)

val busy : t -> shard:int -> (string * float) option
(** What shard [shard mod workers]'s worker is executing right now:
    the submit label and how many seconds it has held the worker.
    [None] when the worker is idle (or just respawned). *)

val respawns : t -> int
(** Worker domains respawned over the pool's lifetime. *)

val respawn : t -> shard:int -> string option option
(** Replace shard [shard]'s worker domain with a fresh one, abandoning
    the old domain unjoined.  [None] if the pool is draining (no respawn
    happened); [Some poisoned] on success, where [poisoned] is the label
    of the closure the old worker was stuck in ([None] if it was idle —
    e.g. a defensive respawn).  Already-queued work survives: the new
    worker picks the queue up where the old one left it. *)

val check_stalled : t -> hang_timeout:float -> (int * string option) list
(** Respawn every shard whose worker has been busy on one closure for
    more than [hang_timeout] seconds — which catches both wedged and
    dead workers, since a dead worker never clears its busy flag.
    Returns [(shard, quarantined label)] for each respawn performed.
    @raise Invalid_argument if [hang_timeout <= 0]. *)

val supervise :
  t ->
  interval:float ->
  hang_timeout:float ->
  on_respawn:(shard:int -> quarantined:string option -> unit) ->
  Thread.t
(** Run {!check_stalled} every [interval] seconds on a daemon thread
    until the pool drains, invoking [on_respawn] (from the supervisor
    thread) for each recovery.  @raise Invalid_argument if
    [interval <= 0]. *)

val drain : t -> unit
(** Graceful shutdown: reject new submissions, run everything already
    queued, then join the worker domains.  A current-generation worker
    still wedged inside a closure after a 5 s grace period is abandoned
    rather than allowed to block shutdown; zombies from earlier respawns
    are never joined.  Idempotent; concurrent callers all block until
    the pool is down. *)
