(* Work-stealing job runner on OCaml 5 domains.

   Each job runs against a fresh private manager, so hash-consing stays
   lock-free: the unique table is replicated, never shared (DESIGN.md §MT).
   BDD operands enter a job through Bdd.import and only plain data (sizes,
   counts, strings) should leave it.

   Domains cannot be killed, so cancellation is cooperative but does not
   require the job's help: the node budget rides on Bdd.set_node_limit and
   the deadline on the Bdd.set_tick hook, both of which fire inside node
   creation — precisely where a runaway BDD job spends its time.

   Supervision happens inside the worker that owns the job: a failed
   attempt sleeps (exponential backoff, jitter deterministic in the label
   and attempt so replays pace identically) and re-executes on a fresh
   manager.  The worker is blocked during the backoff on purpose — a
   failing job should not be able to flood the pool with retries while
   healthy jobs wait. *)

type budget = { deadline : float option; node_budget : int option }

let no_budget = { deadline = None; node_budget = None }

type retry = {
  max_attempts : int;
  backoff : float;
  backoff_max : float;
  jitter : float;
}

let no_retry = { max_attempts = 1; backoff = 0.; backoff_max = 0.; jitter = 0. }

let default_retry =
  { max_attempts = 3; backoff = 0.05; backoff_max = 1.0; jitter = 0.25 }

type 'a outcome =
  | Done of 'a
  | Timeout
  | Over_budget
  | Crashed of { exn : string; backtrace : string }
  | Quarantined of { attempts : int; last : 'a outcome }

type report = {
  label : string;
  wall : float;
  attempts : int;
  peak_nodes : int;
  nodes_made : int;
  cache_hits : int;
  cache_misses : int;
  stats : (string * int) list;
}

type 'a result = { outcome : 'a outcome; report : report }

type 'a job = { label : string; budget : budget; work : Bdd.man -> 'a }

let job ?(budget = no_budget) ~label work = { label; budget; work }
let default_jobs () = Domain.recommended_domain_count ()

exception Deadline

let stat stats name = Option.value ~default:0 (List.assoc_opt name stats)

(* Handles are registered once at link time (registration takes a lock;
   recording through a handle does not), so every snapshot carries the
   full mt.* schema even before the first run. *)
module M = struct
  open Obs

  let reg = Metrics.default
  let jobs = Metrics.counter reg "mt.jobs"
  let jobs_done = Metrics.counter reg "mt.jobs_done"
  let jobs_timeout = Metrics.counter reg "mt.jobs_timeout"
  let jobs_over_budget = Metrics.counter reg "mt.jobs_over_budget"
  let jobs_crashed = Metrics.counter reg "mt.jobs_crashed"
  let retries = Metrics.counter reg "mt.retries"
  let quarantined = Metrics.counter reg "mt.quarantined"
  let nodes_made = Metrics.counter reg "mt.nodes_made"
  let cache_hits = Metrics.counter reg "mt.cache_hits"
  let cache_misses = Metrics.counter reg "mt.cache_misses"
  let steals = Metrics.counter reg "mt.steals"
  let job_wall_us = Metrics.histogram reg "mt.job_wall_us"
  let job_peak_nodes = Metrics.histogram reg "mt.job_peak_nodes"
  let workers = Metrics.gauge reg "mt.workers"
  let last_run_jobs = Metrics.gauge reg "mt.last_run_jobs"
end

let exec ~attempt j =
  let man = Bdd.create () in
  if Obs.Kernel.observing () then Obs.Kernel.attach man;
  if Resil.Fault.enabled () then Resil.Fault.attach man;
  Bdd.set_node_limit man j.budget.node_budget;
  (match j.budget.deadline with
  | None -> ()
  | Some d ->
      let cutoff = Obs.Timing.wall () +. d in
      Bdd.set_tick man
        (Some (fun () -> if Obs.Timing.wall () > cutoff then raise Deadline)));
  let outcome, wall =
    Obs.Trace.with_span ("job:" ^ j.label) (fun () ->
        Obs.Timing.time (fun () ->
            try
              if Resil.Fault.enabled () then
                Resil.Fault.on_job_dispatch ~label:j.label ~attempt;
              Done (j.work man)
            with
            | Bdd.Node_limit -> Over_budget
            | Deadline -> Timeout
            | e ->
                Crashed
                  {
                    exn = Printexc.to_string e;
                    backtrace = Printexc.get_backtrace ();
                  }))
  in
  let stats = Bdd.stats man in
  if Obs.Metrics.recording () then begin
    Obs.Metrics.inc
      (match outcome with
      | Done _ -> M.jobs_done
      | Timeout -> M.jobs_timeout
      | Over_budget -> M.jobs_over_budget
      | Crashed _ | Quarantined _ -> M.jobs_crashed)
      1;
    Obs.Metrics.inc M.nodes_made (stat stats "nodes_made");
    Obs.Metrics.inc M.cache_hits (stat stats "cache_hits");
    Obs.Metrics.inc M.cache_misses (stat stats "cache_misses");
    Obs.Metrics.observe M.job_wall_us (int_of_float (wall *. 1e6));
    Obs.Metrics.observe M.job_peak_nodes (stat stats "peak_unique")
  end;
  {
    outcome;
    report =
      {
        label = j.label;
        wall;
        attempts = attempt;
        peak_nodes = stat stats "peak_unique";
        nodes_made = stat stats "nodes_made";
        cache_hits = stat stats "cache_hits";
        cache_misses = stat stats "cache_misses";
        stats;
      };
  }

(* Deterministic factor in [1 - jitter, 1 + jitter]: hashed, not drawn,
   so a replayed run backs off identically without any shared PRNG. *)
let jitter_factor retry label attempt =
  if retry.jitter <= 0. then 1.
  else
    let h = Hashtbl.hash (label, attempt) land 0xFFFF in
    let u = (float_of_int h /. 32767.5) -. 1. in
    1. +. (retry.jitter *. u)

let backoff_delay retry label attempt =
  (* attempt = the one that just failed, 1-based *)
  let base = retry.backoff *. (2. ** float_of_int (attempt - 1)) in
  min retry.backoff_max base *. jitter_factor retry label attempt

let exec_supervised retry j =
  let rec go attempt =
    let r = exec ~attempt j in
    match r.outcome with
    | Done _ -> r
    | Timeout | Over_budget | Crashed _ when attempt < retry.max_attempts ->
        if Obs.Metrics.recording () then Obs.Metrics.inc M.retries 1;
        let d = backoff_delay retry j.label attempt in
        if d > 0. then Unix.sleepf d;
        go (attempt + 1)
    | last ->
        if retry.max_attempts <= 1 then r
        else begin
          (* every attempt burned: quarantine so callers can tell a poison
             job from a one-shot failure *)
          if Obs.Metrics.recording () then Obs.Metrics.inc M.quarantined 1;
          { r with outcome = Quarantined { attempts = attempt; last } }
        end
  in
  go 1

let run ?jobs ?(retry = no_retry) js =
  if retry.max_attempts < 1 then invalid_arg "Mt.Runner.run: max_attempts < 1";
  (* without this, Crashed backtraces would be silently empty *)
  if not (Printexc.backtrace_status ()) then Printexc.record_backtrace true;
  let js = Array.of_list js in
  let n = Array.length js in
  let workers =
    let w = match jobs with Some w -> w | None -> default_jobs () in
    max 1 (min w n)
  in
  if Obs.Metrics.recording () then begin
    Obs.Metrics.inc M.jobs n;
    Obs.Metrics.set M.workers workers;
    Obs.Metrics.set M.last_run_jobs n
  end;
  Obs.Trace.with_span "mt.run"
    ~args:
      [ ("jobs", string_of_int n); ("workers", string_of_int workers) ]
    (fun () ->
      let results = Array.make n None in
      if workers <= 1 then
        (* inline in the calling domain: no spawn cost, and the jobs=1
           baseline runs the exact code path the parallel sweep runs *)
        Array.iteri (fun i j -> results.(i) <- Some (exec_supervised retry j)) js
      else begin
        let deques = Array.init workers (fun _ -> Deque.create ()) in
        (* deal newest-last so each worker starts on its lowest-index job *)
        for i = n - 1 downto 0 do
          Deque.push deques.(i mod workers) i
        done;
        (* distinct slots per worker, summed after the join *)
        let stolen = Array.make workers 0 in
        let worker w () =
          let rec find k =
            if k >= workers then None
            else
              let d = deques.((w + k) mod workers) in
              match if k = 0 then Deque.pop d else Deque.steal d with
              | Some i ->
                  if k > 0 then stolen.(w) <- stolen.(w) + 1;
                  Some i
              | None -> find (k + 1)
          in
          let rec loop () =
            match find 0 with
            | Some i ->
                (* distinct slots: no two workers ever write the same index *)
                results.(i) <- Some (exec_supervised retry js.(i));
                loop ()
            | None -> ()
                (* queues only drain — once every deque is empty no work can
                   reappear, so the worker is done *)
          in
          (* the enclosing span guarantees each worker a trace lane even if
             every one of its jobs is stolen before it starts *)
          Obs.Trace.with_span ("mt.worker " ^ string_of_int w) loop
        in
        let spawned =
          Array.init (workers - 1) (fun w -> Domain.spawn (worker (w + 1)))
        in
        worker 0 ();
        Array.iter Domain.join spawned;
        if Obs.Metrics.recording () then
          Obs.Metrics.inc M.steals (Array.fold_left ( + ) 0 stolen)
      end;
      Array.to_list
        (Array.map (function Some r -> r | None -> assert false) results))

let map ?jobs ?retry ?budget ~label f xs =
  run ?jobs ?retry
    (List.map (fun x -> job ?budget ~label:(label x) (fun man -> f man x)) xs)

let value = function { outcome = Done v; _ } -> Some v | _ -> None

let rec pp_outcome : type a. Format.formatter -> a outcome -> unit =
 fun fmt -> function
  | Done _ -> Format.pp_print_string fmt "done"
  | Timeout -> Format.pp_print_string fmt "timeout"
  | Over_budget -> Format.pp_print_string fmt "over-budget"
  | Crashed { exn; backtrace } ->
      Format.fprintf fmt "crashed: %s" exn;
      if backtrace <> "" then
        Format.fprintf fmt "@,%s" (String.trim backtrace)
  | Quarantined { attempts; last } ->
      Format.fprintf fmt "quarantined after %d attempts (%a)" attempts
        pp_outcome last

let pp_report fmt (r : report) =
  Format.fprintf fmt
    "%-32s %8.2fs  peak %8d nodes  made %9d  cache %d/%d hit/miss" r.label
    r.wall r.peak_nodes r.nodes_made r.cache_hits r.cache_misses;
  if r.attempts > 1 then Format.fprintf fmt "  (%d attempts)" r.attempts
