(** Shared-memory parallel kernel pool.

    Where {!Runner} parallelizes {e across} jobs (each on a private
    manager), [Par] hands a set of worker domains to {e one} large
    operation on a [Bdd.create ~shared:true] manager: the reach engines
    use it for parallel image computation, the serve layer for oversized
    single requests.

    A [Par.t] wraps a {!Tpool.t} and exports its fork/steal activity to
    the [mt.par_tasks] and [mt.par_steals] counters of {!Obs.Metrics}
    (delta-flushed after every wrapped operation, branch-gated on
    {!Obs.Metrics.recording}). *)

type t

val create : ?registry:Obs.Metrics.t -> jobs:int -> unit -> t
(** Spawn a pool of [jobs] workers ([jobs - 1] helper domains; clamped to
    at least 1).  Metrics handles register against [registry] (default
    {!Obs.Metrics.default}). *)

val with_pool : ?registry:Obs.Metrics.t -> jobs:int -> (t -> 'a) -> 'a
(** [create], run the function, always {!shutdown}. *)

val shutdown : t -> unit
(** Flush metrics and join the helper domains. *)

val pool : t -> Tpool.t
(** The underlying pool, for direct {!Bdd.par_apply} calls. *)

val size : t -> int
(** Worker count, including the calling domain. *)

val apply : t -> Bdd.man -> [ `And | `Or | `Xor ] -> Bdd.t -> Bdd.t -> Bdd.t
val ite : t -> Bdd.man -> Bdd.t -> Bdd.t -> Bdd.t -> Bdd.t
val exist_and : t -> Bdd.man -> vars:Bdd.t -> Bdd.t -> Bdd.t -> Bdd.t
(** {!Bdd.par_apply} / {!Bdd.par_ite} / {!Bdd.par_exist_and} with a
    metrics flush after each call. *)

val flush : t -> unit
(** Export the fork/steal delta since the last flush.  A no-op unless
    metrics recording is on. *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val warn_oversubscribed : flag:string -> int -> bool
(** [warn_oversubscribed ~flag jobs] prints a stderr warning and returns
    [false] when [jobs] exceeds {!recommended} (naming [flag], e.g.
    ["--jobs"], in the message); returns [true] otherwise.  Callers keep
    the requested value either way — the warning exists so a 1-core CI
    host running an 8-domain matrix leg is loud about what it measures. *)
