(* Parallel-kernel pool handle: a Tpool plus metrics plumbing.

   Mt.Runner parallelizes *across* jobs, each on a private manager; Par
   hands a set of workers to *one* large operation on a shared manager
   instead.  The two compose — a Runner worker may create a Par pool for
   an oversized request — but nothing here depends on the runner.

   Fork/steal counts accumulate inside the Tpool; [flush] exports the
   delta since the previous flush to the [mt.par_tasks] / [mt.par_steals]
   counters of the metrics registry.  The wrapped operations flush after
   every call, so metrics track pool activity without the pool having to
   know about metrics on its hot path. *)

type t = {
  pool : Tpool.t;
  lock : Mutex.t; (* guards [last] against concurrent flushes *)
  mutable last : int * int; (* (forks, steals) already exported *)
  par_tasks : Obs.Metrics.counter;
  par_steals : Obs.Metrics.counter;
}

let create ?(registry = Obs.Metrics.default) ~jobs () =
  {
    pool = Tpool.create ~workers:jobs;
    lock = Mutex.create ();
    last = (0, 0);
    par_tasks = Obs.Metrics.counter registry "mt.par_tasks";
    par_steals = Obs.Metrics.counter registry "mt.par_steals";
  }

let pool t = t.pool
let size t = Tpool.size t.pool

let flush t =
  if Obs.Metrics.recording () then begin
    Mutex.lock t.lock;
    let forks, _execs, steals = Tpool.stats t.pool in
    let f0, s0 = t.last in
    t.last <- (forks, steals);
    Mutex.unlock t.lock;
    Obs.Metrics.inc t.par_tasks (forks - f0);
    Obs.Metrics.inc t.par_steals (steals - s0)
  end

let shutdown t =
  flush t;
  Tpool.shutdown t.pool

let with_pool ?registry ~jobs fn =
  let t = create ?registry ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> fn t)

let apply t man op f g =
  let r = Bdd.par_apply t.pool man op f g in
  flush t;
  r

let ite t man f g h =
  let r = Bdd.par_ite t.pool man f g h in
  flush t;
  r

let exist_and t man ~vars f g =
  let r = Bdd.par_exist_and t.pool man ~vars f g in
  flush t;
  r

let recommended () = Domain.recommended_domain_count ()

let warn_oversubscribed ~flag jobs =
  let rc = recommended () in
  if jobs > rc then begin
    Printf.eprintf
      "warning: %s %d exceeds the %d domain(s) this host can run in \
       parallel; extra workers add contention, not speedup\n\
       %!"
      flag jobs rc;
    false
  end
  else true
