(** Cross-manager BDD transfer: export from one manager, rebuild in
    another.  [copy_list] serializes the shared DAG once, preserving
    sharing among the copies. *)

val copy : src:Bdd.man -> dst:Bdd.man -> Bdd.t -> Bdd.t
val copy_list : src:Bdd.man -> dst:Bdd.man -> Bdd.t list -> Bdd.t list
