(* Mutex-guarded work-stealing deque.

   The owner pushes and pops at the bottom (newest first, cache-warm);
   thieves steal from the top (oldest first), the classic work-stealing
   discipline.  Jobs in this codebase are coarse — whole benchmark trials
   or reachability runs — so one uncontended lock per operation is noise
   next to the work itself and buys us none of the subtlety of a Chase–Lev
   buffer.  [steal] pays O(n) to reach the oldest element; n is bounded by
   the jobs initially dealt to one worker. *)

type 'a t = { lock : Mutex.t; mutable items : 'a list (* head = bottom *) }

let create () = { lock = Mutex.create (); items = [] }

let locked d f =
  Mutex.lock d.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock d.lock) f

let push d x = locked d (fun () -> d.items <- x :: d.items)

let pop d =
  locked d (fun () ->
      match d.items with
      | [] -> None
      | x :: rest ->
          d.items <- rest;
          Some x)

let steal d =
  locked d (fun () ->
      match List.rev d.items with
      | [] -> None
      | oldest :: rest ->
          d.items <- List.rev rest;
          Some oldest)
