(* The work-stealing deque moved into lib/bdd (as [Wsdeque]) so the
   kernel's fork/join pool ([Tpool]) can share it; re-exported here
   unchanged for {!Runner}. *)

include Wsdeque
