let copy ~src ~dst f = Bdd.import dst (Bdd.export src f)
let copy_list ~src ~dst fs = Bdd.import_list dst (Bdd.export_list src fs)
