(** Work-stealing job runner on OCaml 5 domains.

    Every job receives a {e fresh, private} {!Bdd.man}: the unique table
    and operation caches are replicated per job rather than shared, so
    hash-consing needs no locks (see DESIGN.md §MT).  Move BDDs into a job
    with {!Bdd.import} / {!Transfer.copy}; return only plain data.

    Jobs are dealt round-robin to per-worker deques; idle workers steal
    the oldest job of a busy neighbour.  Results always come back in
    submission order, so output built from them is deterministic no matter
    how the jobs were scheduled.

    When {!Obs.Trace} or {!Obs.Metrics} recording is on, each run emits an
    [mt.run] span, one [mt.worker] span per worker domain (so every worker
    gets a Perfetto lane), a [job:<label>] span per job, and feeds the
    [mt.*] counters/histograms of {!Obs.Metrics.default} (job outcomes,
    steal counts, wall-time and peak-node distributions).  Job managers get
    an {!Obs.Kernel} observer.  All of it is branch-gated: disabled, the
    runner behaves and times exactly as before. *)

type budget = {
  deadline : float option;  (** wall-clock seconds, enforced via {!Bdd.set_tick} *)
  node_budget : int option;  (** live-node ceiling, enforced via {!Bdd.set_node_limit} *)
}

val no_budget : budget

type 'a outcome =
  | Done of 'a
  | Timeout  (** the deadline fired inside node creation *)
  | Over_budget  (** the node budget raised {!Bdd.Node_limit} *)
  | Crashed of string  (** any other exception; siblings are unaffected *)

type report = {
  label : string;
  wall : float;  (** wall-clock seconds the job ran *)
  peak_nodes : int;  (** high-water mark of the job's unique table *)
  nodes_made : int;
  cache_hits : int;
  cache_misses : int;
  stats : (string * int) list;
      (** the job manager's full {!Bdd.stats} snapshot, taken as the job
          finished; the four fields above are the headline entries of the
          same snapshot *)
}

type 'a result = { outcome : 'a outcome; report : report }
type 'a job

val job : ?budget:budget -> label:string -> (Bdd.man -> 'a) -> 'a job

val run : ?jobs:int -> 'a job list -> 'a result list
(** Execute the jobs on [jobs] workers (default
    {!default_jobs}; clamped to the job count).  [jobs = 1] runs inline in
    the calling domain.  Results are in submission order. *)

val map :
  ?jobs:int ->
  ?budget:budget ->
  label:('a -> string) ->
  (Bdd.man -> 'a -> 'b) ->
  'a list ->
  'b result list
(** [map f xs]: one job per element, shared budget. *)

val value : 'a result -> 'a option
(** The payload of a [Done] outcome. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val pp_outcome : Format.formatter -> 'a outcome -> unit
val pp_report : Format.formatter -> report -> unit
