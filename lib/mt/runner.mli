(** Work-stealing job runner on OCaml 5 domains.

    Every job receives a {e fresh, private} {!Bdd.man}: the unique table
    and operation caches are replicated per job rather than shared, so
    hash-consing needs no locks (see DESIGN.md §MT).  Move BDDs into a job
    with {!Bdd.import} / {!Transfer.copy}; return only plain data.

    Jobs are dealt round-robin to per-worker deques; idle workers steal
    the oldest job of a busy neighbour.  Results always come back in
    submission order, so output built from them is deterministic no matter
    how the jobs were scheduled.

    {2 Supervision}

    A {!retry} policy re-executes jobs whose outcome is [Timeout],
    [Over_budget] or [Crashed] — each attempt on a fresh manager, after
    an exponential backoff with deterministic jitter (derived from the
    job label and attempt number, so a replay waits the same amount).  A
    job that fails every attempt is {e quarantined}: its final outcome is
    [Quarantined] and it is never re-run.  With no policy (the default)
    behaviour is exactly one attempt, as before.

    When {!Resil.Fault} injection is armed, the runner participates: each
    attempt probes {!Resil.Fault.on_job_dispatch} (which may simulate a
    dispatch crash) and attaches the kernel fault injector to the job's
    private manager.  Disarmed, both are a single atomic load.

    When {!Obs.Trace} or {!Obs.Metrics} recording is on, each run emits an
    [mt.run] span, one [mt.worker] span per worker domain (so every worker
    gets a Perfetto lane), a [job:<label>] span per job, and feeds the
    [mt.*] counters/histograms of {!Obs.Metrics.default} (per-attempt job
    outcomes, [mt.retries], [mt.quarantined], steal counts, wall-time and
    peak-node distributions).  Job managers get an {!Obs.Kernel} observer.
    All of it is branch-gated: disabled, the runner behaves and times
    exactly as before. *)

type budget = {
  deadline : float option;  (** wall-clock seconds, enforced via {!Bdd.set_tick} *)
  node_budget : int option;  (** live-node ceiling, enforced via {!Bdd.set_node_limit} *)
}

val no_budget : budget

type retry = {
  max_attempts : int;  (** total attempts, including the first; >= 1 *)
  backoff : float;  (** base delay in seconds, doubled per retry *)
  backoff_max : float;  (** delay ceiling *)
  jitter : float;
      (** fraction in [0, 1]: each delay is scaled by a deterministic
          factor in [1 - jitter, 1 + jitter] hashed from (label, attempt) *)
}

val no_retry : retry
(** One attempt, no supervision — the historical behaviour. *)

val default_retry : retry
(** 3 attempts, 50 ms base backoff, 1 s ceiling, 25% jitter. *)

type 'a outcome =
  | Done of 'a
  | Timeout  (** the deadline fired inside node creation *)
  | Over_budget  (** the node budget raised {!Bdd.Node_limit} *)
  | Crashed of { exn : string; backtrace : string }
      (** any other exception; siblings are unaffected.  [exn] is the
          printed exception, [backtrace] the captured raise trace (empty
          when the runtime had none). *)
  | Quarantined of { attempts : int; last : 'a outcome }
      (** every attempt of an active retry policy failed; [last] is the
          terminal failure (never [Done] or [Quarantined]) *)

type report = {
  label : string;
  wall : float;  (** wall-clock seconds of the final attempt *)
  attempts : int;  (** executions performed (1 unless a retry policy ran) *)
  peak_nodes : int;  (** high-water mark of the job's unique table *)
  nodes_made : int;
  cache_hits : int;
  cache_misses : int;
  stats : (string * int) list;
      (** the job manager's full {!Bdd.stats} snapshot, taken as the job
          finished; the headline fields above come from the same snapshot
          (final attempt) *)
}

type 'a result = { outcome : 'a outcome; report : report }
type 'a job

val job : ?budget:budget -> label:string -> (Bdd.man -> 'a) -> 'a job

val run : ?jobs:int -> ?retry:retry -> 'a job list -> 'a result list
(** Execute the jobs on [jobs] workers (default
    {!default_jobs}; clamped to the job count).  [jobs = 1] runs inline in
    the calling domain.  Results are in submission order.  [retry]
    (default {!no_retry}) supervises every job of the run.  Backtrace
    recording is switched on for the process if it was off, so [Crashed]
    outcomes carry a trace. *)

val map :
  ?jobs:int ->
  ?retry:retry ->
  ?budget:budget ->
  label:('a -> string) ->
  (Bdd.man -> 'a -> 'b) ->
  'a list ->
  'b result list
(** [map f xs]: one job per element, shared budget and retry policy. *)

val value : 'a result -> 'a option
(** The payload of a [Done] outcome. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val pp_outcome : Format.formatter -> 'a outcome -> unit
val pp_report : Format.formatter -> report -> unit
