(** Crash-safe, checksummed checkpoints.

    {!Bdd.save} writes its [BDD1] payload straight to the target path: a
    crash mid-write leaves a truncated file, and a flipped bit in storage
    can decode to a {e different, well-formed} BDD.  This module fixes
    both: every write goes to a temp file in the same directory, is
    [fsync]ed, and is atomically renamed over the target (so the target
    always holds the last complete checkpoint), and every payload carries
    a CRC-32 trailer that {!load} verifies before parsing (so any
    mutation — truncation, bit flip, torn write — raises {!Bdd.Corrupt}
    instead of yielding a wrong BDD).

    File layout: [body ++ "BDC2" ++ le64(body length) ++ le32(crc)], with
    the crc taken over everything before it (body, magic and length), so
    a flip anywhere in the file is caught.
    The body of a plain checkpoint is the [BDD1] encoding; a reachability
    checkpoint prefixes it with ["RCP1"], the iteration and image
    counters.  {!load} also accepts legacy trailer-less [BDD1] files, so
    sets saved by older builds stay loadable. *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of a string, in
    [0, 0xFFFFFFFF].  Exposed for tests. *)

val crc32_update : int -> Bytes.t -> int -> int -> int
(** [crc32_update acc buf off len] extends a running CRC-32 with a chunk:
    [crc32_update (crc32_update 0 a 0 la) b 0 lb] equals [crc32 (a ^ b)].
    Start from [0]. *)

val write_atomic : string -> string -> unit
(** [write_atomic path data] writes [data] to a same-directory temp file,
    fsyncs, and renames it over [path] — the primitive under {!save},
    exposed for other subsystems (lib/store) that bring their own body
    format.  No trailer is added; compose with your own framing or use
    {!write_stream}. *)

val write_stream : string -> (emit:(Bytes.t -> int -> int -> unit) -> unit) -> unit
(** [write_stream path fill] is the bounded-memory variant of an atomic
    checksummed write: [fill ~emit] pushes body chunks ([emit buf off
    len]); the CRC-32 trailer is computed incrementally and appended, and
    the temp file is atomically renamed over [path].  The body never has
    to exist in memory at once — this is what the out-of-core level files
    of lib/store are written with. *)

val verify_stream : string -> int
(** Verify the checksum trailer of a file written by {!write_stream} (or
    {!save}) by streaming its bytes, without loading the body.  Returns
    the body length in bytes.  @raise Bdd.Corrupt on truncation, a
    missing trailer, or a checksum mismatch. *)

val cleanup_pending : unit -> int
(** Remove any in-flight temp files of interrupted atomic writes (theirs
    is the only window in which a SIGINT can leak files) and return how
    many were removed.  Safe from a signal handler or [at_exit]; a clean
    run has nothing registered by then. *)

val save : string -> Bdd.serialized -> unit
(** Atomic, checksummed replacement for {!Bdd.save}. *)

val load : string -> Bdd.serialized
(** Verify and parse a file written by {!save} — or, when no trailer is
    present, by {!Bdd.save}.  @raise Bdd.Corrupt on any mismatch. *)

(** {1 Reachability checkpoints} *)

type reach_state = {
  iterations : int;
  images : int;
  payload : Bdd.serialized;
      (** two roots: the reached set, then the unexpanded frontier *)
}

val save_reach : string -> reach_state -> unit
val load_reach : string -> reach_state
(** @raise Bdd.Corrupt on any mismatch, including a plain BDD checkpoint
    where a reachability one was expected. *)

type policy = { path : string; every : int }
(** Checkpoint [path] every [every] iterations (from the reach engines'
    [?checkpoint] argument). *)
