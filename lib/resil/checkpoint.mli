(** Crash-safe, checksummed checkpoints.

    {!Bdd.save} writes its [BDD1] payload straight to the target path: a
    crash mid-write leaves a truncated file, and a flipped bit in storage
    can decode to a {e different, well-formed} BDD.  This module fixes
    both: every write goes to a temp file in the same directory, is
    [fsync]ed, and is atomically renamed over the target (so the target
    always holds the last complete checkpoint), and every payload carries
    a CRC-32 trailer that {!load} verifies before parsing (so any
    mutation — truncation, bit flip, torn write — raises {!Bdd.Corrupt}
    instead of yielding a wrong BDD).

    File layout: [body ++ "BDC2" ++ le64(body length) ++ le32(crc)], with
    the crc taken over everything before it (body, magic and length), so
    a flip anywhere in the file is caught.
    The body of a plain checkpoint is the [BDD1] encoding; a reachability
    checkpoint prefixes it with ["RCP1"], the iteration and image
    counters.  {!load} also accepts legacy trailer-less [BDD1] files, so
    sets saved by older builds stay loadable. *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of a string, in
    [0, 0xFFFFFFFF].  Exposed for tests. *)

val save : string -> Bdd.serialized -> unit
(** Atomic, checksummed replacement for {!Bdd.save}. *)

val load : string -> Bdd.serialized
(** Verify and parse a file written by {!save} — or, when no trailer is
    present, by {!Bdd.save}.  @raise Bdd.Corrupt on any mismatch. *)

(** {1 Reachability checkpoints} *)

type reach_state = {
  iterations : int;
  images : int;
  payload : Bdd.serialized;
      (** two roots: the reached set, then the unexpanded frontier *)
}

val save_reach : string -> reach_state -> unit
val load_reach : string -> reach_state
(** @raise Bdd.Corrupt on any mismatch, including a plain BDD checkpoint
    where a reachability one was expected. *)

type policy = { path : string; every : int }
(** Checkpoint [path] every [every] iterations (from the reach engines'
    [?checkpoint] argument). *)
