(* Crash-safe, checksummed checkpoints (see the mli). *)

let corrupt fmt = Printf.ksprintf (fun s -> raise (Bdd.Corrupt s)) fmt

(* --- CRC-32 (IEEE 802.3), table-driven ------------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* --- trailer ---------------------------------------------------------- *)

let trailer_magic = "BDC2"
let trailer_len = 4 + 8 + 4

let le_bytes buf n width =
  for i = 0 to width - 1 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xFF))
  done

let le_int s off width =
  let n = ref 0 in
  for i = width - 1 downto 0 do
    n := (!n lsl 8) lor Char.code s.[off + i]
  done;
  !n

(* The crc covers everything before it — body, magic and length field —
   so no single corruption outside the crc bytes themselves can cancel
   out (a flip in the crc makes it mismatch trivially). *)
let with_trailer body =
  let buf = Buffer.create (String.length body + trailer_len) in
  Buffer.add_string buf body;
  Buffer.add_string buf trailer_magic;
  le_bytes buf (String.length body) 8;
  le_bytes buf (crc32 (Buffer.contents buf)) 4;
  Buffer.contents buf

(* Strip and verify the trailer; [None] when the file predates it (legacy
   Bdd.save output, identified by its own magic downstream). *)
let body_of_file path data =
  let len = String.length data in
  if len < trailer_len || String.sub data (len - trailer_len) 4 <> trailer_magic
  then None
  else begin
    let announced = le_int data (len - trailer_len + 4) 8 in
    if announced <> len - trailer_len then
      corrupt "Resil.Checkpoint: %s announces a %d-byte body but holds %d"
        path announced (len - trailer_len);
    let stored = le_int data (len - 4) 4 in
    let actual = crc32 (String.sub data 0 (len - 4)) in
    if stored <> actual then
      corrupt "Resil.Checkpoint: %s checksum mismatch (stored %08x, file %08x)"
        path stored actual;
    Some (String.sub data 0 announced)
  end

(* --- in-flight temp files --------------------------------------------- *)

(* Every atomic write goes through a temp file that is renamed over the
   target on success and removed on failure.  A SIGINT (or any abnormal
   exit) between creation and rename would leak it, so the registry below
   tracks the temp paths currently in flight; [cleanup_pending] removes
   whatever is still registered and is safe to call from a signal handler
   or [at_exit] — on a normal run the registry is empty by then. *)

let pending_mutex = Mutex.create ()
let pending : (string, unit) Hashtbl.t = Hashtbl.create 8

let register_pending path =
  Mutex.lock pending_mutex;
  Hashtbl.replace pending path ();
  Mutex.unlock pending_mutex

let unregister_pending path =
  Mutex.lock pending_mutex;
  Hashtbl.remove pending path;
  Mutex.unlock pending_mutex

let cleanup_pending () =
  Mutex.lock pending_mutex;
  let paths = Hashtbl.fold (fun p () acc -> p :: acc) pending [] in
  Hashtbl.reset pending;
  Mutex.unlock pending_mutex;
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths;
  List.length paths

(* --- atomic write ----------------------------------------------------- *)

let fsync_dir dir =
  (* best-effort directory sync so the rename itself survives a crash;
     some filesystems refuse fsync on a directory fd — ignore them *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dfd ->
      (try Unix.fsync dfd with Unix.Unix_error _ -> ());
      (try Unix.close dfd with Unix.Unix_error _ -> ())

let write_atomic path data =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  register_pending tmp;
  (try
     let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
     Fun.protect
       ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
       (fun () ->
         let n = String.length data in
         let written = Unix.write_substring fd data 0 n in
         if written <> n then failwith "short write";
         Unix.fsync fd);
     Unix.rename tmp path;
     unregister_pending tmp
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     unregister_pending tmp;
     raise e);
  fsync_dir dir

(* --- streaming atomic write ------------------------------------------- *)

(* Incremental CRC-32 over byte chunks, for bodies too large to hold in
   one string (the out-of-core level files of lib/store). *)
let crc32_update acc s off len =
  let table = Lazy.force crc_table in
  let c = ref (acc lxor 0xFFFFFFFF) in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get s i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let write_stream path fill =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  register_pending tmp;
  (try
     let oc = open_out_bin tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         let crc = ref 0 and body_len = ref 0 in
         let emit b off len =
           output_substring oc (Bytes.unsafe_to_string b) off len;
           crc := crc32_update !crc b off len;
           body_len := !body_len + len
         in
         fill ~emit;
         (* trailer: magic + le64 length + le32 crc, with the crc taken
            over body ++ magic ++ length — same layout as [with_trailer] *)
         let tail = Buffer.create trailer_len in
         Buffer.add_string tail trailer_magic;
         le_bytes tail !body_len 8;
         let tail_bytes = Buffer.to_bytes tail in
         crc := crc32_update !crc tail_bytes 0 (Bytes.length tail_bytes);
         let crcb = Buffer.create 4 in
         le_bytes crcb !crc 4;
         output_bytes oc tail_bytes;
         output_string oc (Buffer.contents crcb);
         flush oc;
         Unix.fsync (Unix.descr_of_out_channel oc));
     Unix.rename tmp path;
     unregister_pending tmp
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     unregister_pending tmp;
     raise e);
  fsync_dir dir

(* Verify the trailer of a file on disk without holding the body in
   memory: stream the bytes through the incremental CRC.  Returns the
   announced body length. *)
let verify_stream path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      if len < trailer_len then
        corrupt "Resil.Checkpoint: %s too short for a checksum trailer" path;
      seek_in ic (len - trailer_len);
      let tail = really_input_string ic trailer_len in
      if String.sub tail 0 4 <> trailer_magic then
        corrupt "Resil.Checkpoint: %s has no checksum trailer" path;
      let announced = le_int tail 4 8 in
      if announced <> len - trailer_len then
        corrupt "Resil.Checkpoint: %s announces a %d-byte body but holds %d"
          path announced (len - trailer_len);
      let stored = le_int tail (trailer_len - 4) 4 in
      seek_in ic 0;
      let chunk = Bytes.create 65536 in
      let crc = ref 0 and remaining = ref (len - 4) in
      while !remaining > 0 do
        let n = input ic chunk 0 (min !remaining (Bytes.length chunk)) in
        if n = 0 then corrupt "Resil.Checkpoint: %s truncated mid-read" path;
        crc := crc32_update !crc chunk 0 n;
        remaining := !remaining - n
      done;
      if stored <> !crc then
        corrupt
          "Resil.Checkpoint: %s checksum mismatch (stored %08x, file %08x)"
          path stored !crc;
      announced)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- plain BDD checkpoints -------------------------------------------- *)

let save path s = write_atomic path (with_trailer (Bdd.serialized_to_string s))

let reach_magic = "RCP1"

let load path =
  let data = read_file path in
  let body = match body_of_file path data with Some b -> b | None -> data in
  if String.length body >= 4 && String.sub body 0 4 = reach_magic then
    corrupt
      "Resil.Checkpoint: %s is a reachability checkpoint (use load_reach)"
      path;
  Bdd.serialized_of_string body

(* --- reachability checkpoints ----------------------------------------- *)

type reach_state = { iterations : int; images : int; payload : Bdd.serialized }

let add_varint buf n =
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  if n < 0 then invalid_arg "Resil.Checkpoint: negative counter";
  go n

let save_reach path st =
  if Array.length st.payload.Bdd.s_roots <> 2 then
    invalid_arg "Resil.Checkpoint.save_reach: payload wants exactly 2 roots";
  let buf = Buffer.create 64 in
  Buffer.add_string buf reach_magic;
  add_varint buf st.iterations;
  add_varint buf st.images;
  Buffer.add_string buf (Bdd.serialized_to_string st.payload);
  write_atomic path (with_trailer (Buffer.contents buf))

let load_reach path =
  let data = read_file path in
  let body =
    match body_of_file path data with
    | Some b -> b
    | None ->
        corrupt "Resil.Checkpoint: %s has no checksum trailer" path
  in
  let len = String.length body in
  if len < 4 || String.sub body 0 4 <> reach_magic then
    corrupt "Resil.Checkpoint: %s is not a reachability checkpoint" path;
  let pos = ref 4 in
  let varint () =
    let rec go shift acc =
      if !pos >= len then
        corrupt "Resil.Checkpoint: %s truncated counter" path;
      if shift > 62 then corrupt "Resil.Checkpoint: %s counter overflow" path;
      let b = Char.code body.[!pos] in
      incr pos;
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0
  in
  let iterations = varint () in
  let images = varint () in
  let payload =
    Bdd.serialized_of_string (String.sub body !pos (len - !pos))
  in
  if Array.length payload.Bdd.s_roots <> 2 then
    corrupt "Resil.Checkpoint: %s carries %d roots, expected 2" path
      (Array.length payload.Bdd.s_roots);
  { iterations; images; payload }

type policy = { path : string; every : int }
