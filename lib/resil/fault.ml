(* Seeded fault injection (see the mli).

   All randomness is a splitmix-style integer mix over the configuration
   seed, an attach counter and a per-stream draw counter, so a chaos run
   replays exactly from its seed.  The armed configuration lives in one
   atomic cell: the disabled path everywhere is a single load. *)

type config = {
  seed : int;
  p_node_limit : float;
  p_cache_wipe : float;
  p_abort : float;
  p_job_crash : float;
  p_wire_delay : float;
  p_wire_cut : float;
  p_wire_flip : float;
  p_wire_stall : float;
}

exception Injected_abort

let disabled =
  {
    seed = 0;
    p_node_limit = 0.;
    p_cache_wipe = 0.;
    p_abort = 0.;
    p_job_crash = 0.;
    p_wire_delay = 0.;
    p_wire_cut = 0.;
    p_wire_flip = 0.;
    p_wire_stall = 0.;
  }

let config_to_string c =
  Printf.sprintf
    "seed=%d,node_limit=%g,cache_wipe=%g,abort=%g,job_crash=%g,wire_delay=%g,\
     wire_cut=%g,wire_flip=%g,wire_stall=%g"
    c.seed c.p_node_limit c.p_cache_wipe c.p_abort c.p_job_crash c.p_wire_delay
    c.p_wire_cut c.p_wire_flip c.p_wire_stall

let config_of_string s =
  let parse_field acc kv =
    match acc with
    | Error _ as e -> e
    | Ok c -> (
        match String.index_opt kv '=' with
        | None -> Error (Printf.sprintf "expected key=value, got %S" kv)
        | Some i -> (
            let key = String.sub kv 0 i
            and v = String.sub kv (i + 1) (String.length kv - i - 1) in
            let prob set =
              match float_of_string_opt v with
              | Some p when p >= 0. && p <= 1. -> Ok (set p)
              | _ -> Error (Printf.sprintf "%s wants a probability, got %S" key v)
            in
            match key with
            | "seed" -> (
                match int_of_string_opt v with
                | Some n -> Ok { c with seed = n }
                | None -> Error (Printf.sprintf "seed wants an integer, got %S" v))
            | "node_limit" -> prob (fun p -> { c with p_node_limit = p })
            | "cache_wipe" -> prob (fun p -> { c with p_cache_wipe = p })
            | "abort" -> prob (fun p -> { c with p_abort = p })
            | "job_crash" -> prob (fun p -> { c with p_job_crash = p })
            | "wire_delay" -> prob (fun p -> { c with p_wire_delay = p })
            | "wire_cut" -> prob (fun p -> { c with p_wire_cut = p })
            | "wire_flip" -> prob (fun p -> { c with p_wire_flip = p })
            | "wire_stall" -> prob (fun p -> { c with p_wire_stall = p })
            | _ -> Error (Printf.sprintf "unknown fault key %S" key)))
  in
  String.split_on_char ',' (String.trim s)
  |> List.filter (fun f -> String.trim f <> "")
  |> List.map String.trim
  |> List.fold_left parse_field (Ok disabled)

(* --- armed state ---------------------------------------------------- *)

let state : config option Atomic.t = Atomic.make None
let env_read = Atomic.make false

let read_env () =
  if not (Atomic.exchange env_read true) then
    match Sys.getenv_opt "RESIL_FAULTS" with
    | None | Some "" -> ()
    | Some spec -> (
        match config_of_string spec with
        | Ok c -> Atomic.set state (Some c)
        | Error msg ->
            Printf.eprintf "RESIL_FAULTS ignored: %s\n%!" msg)

let arm c =
  Atomic.set env_read true;
  Atomic.set state c

let armed () =
  read_env ();
  Atomic.get state

let enabled () = armed () <> None

(* --- deterministic draws -------------------------------------------- *)

(* splitmix64 finalizer restricted to OCaml's 63-bit ints; good enough to
   decorrelate (seed, stream, draw) triples into uniform unit floats *)
let mix x =
  let x = x * 0x9e3779b97f4a7c1 land max_int in
  let x = (x lxor (x lsr 30)) * 0xbf58476d1ce4e5b land max_int in
  let x = (x lxor (x lsr 27)) * 0x94d049bb133111e land max_int in
  x lxor (x lsr 31)

let unit_float h = float_of_int (mix h land 0xFFFFFFFF) /. 4294967296.0

(* --- counters -------------------------------------------------------- *)

let injected_total = Atomic.make 0

let injected () = Atomic.get injected_total

module M = struct
  open Obs

  let reg = Metrics.default
  let node_limit = Metrics.counter reg "resil.fault.node_limit"
  let cache_wipe = Metrics.counter reg "resil.fault.cache_wipe"
  let abort = Metrics.counter reg "resil.fault.abort"
  let job_crash = Metrics.counter reg "resil.fault.job_crash"
  let wire_delay = Metrics.counter reg "resil.fault.wire_delay"
  let wire_cut = Metrics.counter reg "resil.fault.wire_cut"
  let wire_flip = Metrics.counter reg "resil.fault.wire_flip"
  let wire_stall = Metrics.counter reg "resil.fault.wire_stall"
end

let note counter =
  Atomic.incr injected_total;
  if Obs.Metrics.recording () then Obs.Metrics.inc counter 1

(* --- kernel hook ----------------------------------------------------- *)

let attach_counter = Atomic.make 0

let attach ?config man =
  match (match config with Some c -> Some c | None -> armed ()) with
  | None -> ()
  | Some c ->
      let stream = Atomic.fetch_and_add attach_counter 1 in
      let draws = ref 0 in
      let hook () =
        incr draws;
        let u = unit_float (mix (mix c.seed + stream) + !draws) in
        if u < c.p_node_limit then begin
          note M.node_limit;
          raise Bdd.Node_limit
        end
        else if u < c.p_node_limit +. c.p_cache_wipe then begin
          note M.cache_wipe;
          Bdd.clear_caches man
        end
        else if u < c.p_node_limit +. c.p_cache_wipe +. c.p_abort then begin
          note M.abort;
          raise Injected_abort
        end
      in
      Bdd.set_fault_hook man (Some hook)

let on_job_dispatch ~label ~attempt =
  match armed () with
  | None -> ()
  | Some c ->
      if c.p_job_crash > 0. then
        let u = unit_float (mix (mix c.seed + Hashtbl.hash label) + attempt) in
        if u < c.p_job_crash then begin
          note M.job_crash;
          raise Injected_abort
        end

(* --- wire probes ------------------------------------------------------ *)

let unit_draw ~seed ~stream ~draw = unit_float (mix (mix seed + stream) + draw)

type wire_action =
  | Wire_delay of float
  | Wire_cut of int
  | Wire_flip of int
  | Wire_stall of float

(* Fault magnitudes are drawn from a second, decorrelated stream so the
   arm/fire decision and the shape of the fault never share bits.  Delays
   and stalls are bounded well below any sane io timeout x10, so a chaos
   run's wall clock stays bounded even at high probabilities. *)
let on_wire_send ~stream ~seq ~len =
  match armed () with
  | None -> None
  | Some c ->
      let total =
        c.p_wire_delay +. c.p_wire_cut +. c.p_wire_flip +. c.p_wire_stall
      in
      if total <= 0. || len = 0 then None
      else
        let u = unit_draw ~seed:c.seed ~stream:(stream lxor 0x77a3) ~draw:seq in
        let m =
          unit_draw ~seed:c.seed ~stream:(stream lxor 0x19cf) ~draw:seq
        in
        if u < c.p_wire_delay then begin
          note M.wire_delay;
          Some (Wire_delay (0.001 +. (m *. 0.02)))
        end
        else if u < c.p_wire_delay +. c.p_wire_cut then begin
          note M.wire_cut;
          Some (Wire_cut (int_of_float (m *. float_of_int len)))
        end
        else if u < c.p_wire_delay +. c.p_wire_cut +. c.p_wire_flip then begin
          note M.wire_flip;
          Some (Wire_flip (int_of_float (m *. float_of_int (len * 8))))
        end
        else if u < total then begin
          note M.wire_stall;
          Some (Wire_stall (0.005 +. (m *. 0.05)))
        end
        else None
