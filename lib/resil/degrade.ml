(* Degradation ladder for image computation (see the mli). *)

type step = {
  call : int;
  rung : string;
  size_before : int;
  size_after : int;
  density_before : float;
  density_after : float;
}

type info = {
  steps_approximated : int;
  exhausted : bool;
  density_stats : step list;
}

type cert = Exact | Degraded of info

let pp_cert fmt = function
  | Exact -> Format.pp_print_string fmt "exact"
  | Degraded { steps_approximated; exhausted; density_stats } ->
      let gain =
        List.fold_left
          (fun acc s ->
            if s.density_before > 0. then
              max acc (s.density_after /. s.density_before)
            else acc)
          0. density_stats
      in
      Format.fprintf fmt "degraded(%d step%s%s%s)" steps_approximated
        (if steps_approximated = 1 then "" else "s")
        (if gain > 0. then Format.asprintf ", max-density x%.2g" gain else "")
        (if exhausted then ", exhausted" else "")

type t = {
  meth : Approx.meth;
  mutable calls : int;
  mutable napprox : int;
  mutable exhausted : bool;
  mutable steps : step list; (* newest first *)
}

exception Exhausted

let create ?(meth = Approx.HB) () =
  { meth; calls = 0; napprox = 0; exhausted = false; steps = [] }

let steps_approximated t = t.napprox

let certificate ~exact t =
  if exact then Exact
  else
    Degraded
      {
        steps_approximated = t.napprox;
        exhausted = t.exhausted;
        density_stats = List.rev t.steps;
      }

module M = struct
  open Obs

  let reg = Metrics.default
  let steps = Metrics.counter reg "resil.degrade.steps"
  let exhausted = Metrics.counter reg "resil.degrade.exhausted"
  let rung = Metrics.histogram reg "resil.degrade.rung"
end

(* The fault injector may fire at gc entry; a failed collection only
   means less memory was reclaimed, so a forced Node_limit there must not
   abort the ladder. *)
let safe_gc man roots =
  try ignore (Bdd.gc man ~roots:(roots ())) with Bdd.Node_limit -> ()

let image t man ~roots ~reached ~compute frontier =
  t.calls <- t.calls + 1;
  let nothing = Bdd.ff man in
  let exact_try () = (compute frontier, frontier, nothing) in
  try exact_try ()
  with Bdd.Node_limit -> (
    safe_gc man roots;
    try exact_try ()
    with Bdd.Node_limit ->
      Obs.Trace.with_span "resil.degrade" @@ fun () ->
      let size0 = Bdd.size frontier in
      let dens0 = Approx.density man frontier in
      (* the under-approximation thresholds descend geometrically so the
         ladder stays short even for huge frontiers *)
      let rec thresholds acc th =
        if th < 32 then List.rev acc else thresholds (th :: acc) (th / 4)
      in
      let mname = Approx.method_name t.meth in
      let rungs =
        (* restrict-minimization: expanded ⊇ frontier but only over
           already-reached states, so soundness is free and no leftover
           needs tracking *)
        ( "restrict",
          fun () ->
            ( Bdd.restrict man frontier
                (Bdd.bor man frontier (Bdd.bnot man reached)),
              nothing ) )
        :: List.map
             (fun th ->
               ( Printf.sprintf "%s@%d" mname th,
                 fun () ->
                   let g =
                     Approx.under man
                       ~params:{ Approx.default_params with threshold = th }
                       t.meth frontier
                   in
                   (g, Bdd.bdiff man frontier g) ))
             (thresholds [] (max 32 (size0 / 2)))
        @ [
            (* last resort: one state's worth of frontier — at most one
               node per variable *)
            ( "cube",
              fun () ->
                let g =
                  Bdd.cube_of_literals man (Bdd.any_sat man frontier)
                in
                (g, Bdd.bdiff man frontier g) );
          ]
      in
      let record i rung g =
        t.napprox <- t.napprox + 1;
        t.steps <-
          {
            call = t.calls;
            rung;
            size_before = size0;
            size_after = Bdd.size g;
            density_before = dens0;
            density_after = Approx.density man g;
          }
          :: t.steps;
        if Obs.Metrics.recording () then begin
          Obs.Metrics.inc M.steps 1;
          Obs.Metrics.observe M.rung i
        end
      in
      let rec walk i = function
        | [] ->
            t.exhausted <- true;
            if Obs.Metrics.recording () then Obs.Metrics.inc M.exhausted 1;
            raise Exhausted
        | (rung, mk) :: rest -> (
            match
              let g, leftover = mk () in
              if Bdd.is_false g || Bdd.equal g frontier then None
              else
                let v = compute g in
                Some (v, g, leftover)
            with
            | Some (v, g, leftover) ->
                record i rung g;
                (v, g, leftover)
            | None -> walk (i + 1) rest
            | exception Bdd.Node_limit ->
                safe_gc man roots;
                walk (i + 1) rest)
      in
      walk 1 rungs)
