(** Seeded fault injection for chaos testing.

    A fault configuration assigns probabilities to the failure modes the
    rest of the resilience layer must survive: a forced {!Bdd.Node_limit}
    or a computed-cache wipe fired from the kernel's rare-path hook
    ({!Bdd.set_fault_hook}), a simulated operation abort
    ({!Injected_abort}) from the same hook, and a crash at [Mt.Runner]
    job dispatch.  Draws come from a splitmix PRNG seeded from the
    configuration, so a chaos run is reproducible from its seed.

    Injection is armed only explicitly — through {!arm} or the
    [RESIL_FAULTS] environment variable — and every production call site
    is gated on {!enabled}, a single atomic load that is [false] by
    default: with injection disarmed the only cost anywhere is that load
    (plus the kernel's one rare-path branch). *)

type config = {
  seed : int;  (** PRNG seed; every probability stream derives from it *)
  p_node_limit : float;
      (** chance, per kernel beat, of a forced {!Bdd.Node_limit} *)
  p_cache_wipe : float;
      (** chance, per kernel beat, of wiping the computed caches *)
  p_abort : float;
      (** chance, per kernel beat, of raising {!Injected_abort} mid-op *)
  p_job_crash : float;
      (** chance of {!Injected_abort} at [Mt.Runner] job dispatch,
          redrawn per attempt so retries can succeed *)
  p_wire_delay : float;
      (** chance, per frame sent, of delaying the whole frame (1–21 ms) *)
  p_wire_cut : float;
      (** chance, per frame sent, of a mid-frame disconnect (a prefix is
          written, then the connection is torn down) *)
  p_wire_flip : float;
      (** chance, per frame sent, of flipping one payload bit (the
          receiver's CRC must catch it) *)
  p_wire_stall : float;
      (** chance, per frame sent, of stalling mid-frame (half the frame,
          a 5–55 ms pause, then the rest — exercises receiver read
          timeouts) *)
}

exception Injected_abort
(** The simulated crash.  Deliberately not an exception any production
    path raises or catches specially: resilience code must survive it the
    way it survives any unknown exception. *)

val disabled : config
(** Seed 0, every probability 0. *)

val config_of_string : string -> (config, string) result
(** Parse ["seed=42,node_limit=0.01,cache_wipe=0.01,abort=0,job_crash=0.1"]
    (any subset of keys; missing keys default to {!disabled}'s values). *)

val config_to_string : config -> string

val arm : config option -> unit
(** Arm or disarm injection process-wide.  Overrides [RESIL_FAULTS]. *)

val armed : unit -> config option
(** The active configuration.  The first call reads [RESIL_FAULTS] (a
    malformed value disables injection and warns on stderr). *)

val enabled : unit -> bool
(** [armed () <> None], as one atomic load after the lazy env read. *)

val attach : ?config:config -> Bdd.man -> unit
(** Install the kernel fault hook on [man] with its own deterministic
    PRNG stream (derived from the config seed and an attach counter).
    [config] defaults to {!armed}; with injection disarmed and no
    explicit config this is a no-op. *)

val on_job_dispatch : label:string -> attempt:int -> unit
(** Runner dispatch probe: raises {!Injected_abort} with probability
    [p_job_crash], deterministically in (seed, label, attempt).  No-op
    when disarmed. *)

val injected : unit -> int
(** Total faults injected by this process (all kinds), counted even when
    metrics recording is off. *)

(** {1 Wire probes}

    Network-level fault points for the serve layer: the sender draws an
    action per frame, deterministically in (seed, stream, seq), and
    mangles its own writes accordingly — so a chaos/soak run drives
    delayed writes, mid-frame disconnects, bit flips and stalled reads
    from the same [--faults] seed plumbing as the kernel probes.
    [Serve.Client] applies these when created with a chaos stream;
    the receiving server must survive every one of them (CRC rejection,
    read timeout, or clean EOF — never a hung worker). *)

type wire_action =
  | Wire_delay of float  (** sleep this long, then send the whole frame *)
  | Wire_cut of int  (** send only this byte prefix, then hang up *)
  | Wire_flip of int  (** flip this bit index (mod frame bits) *)
  | Wire_stall of float
      (** send half the frame, sleep this long, send the rest *)

val on_wire_send : stream:int -> seq:int -> len:int -> wire_action option
(** Draw the fault (if any) for frame number [seq] of stream [stream],
    [len] bytes long.  [None] when disarmed, when every wire probability
    is zero, or when the draw says this frame passes clean. *)

val unit_draw : seed:int -> stream:int -> draw:int -> float
(** The underlying deterministic uniform draw in [0,1) — exposed so other
    layers (the retrying client's backoff jitter, the load generator's
    churn schedule) can stay on the same reproducible footing. *)
