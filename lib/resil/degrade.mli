(** Graceful degradation of image computation under a node budget.

    The DAC'98 ethos applied at runtime: when an exact image step blows
    the node budget, do not abort — substitute a denser, smaller frontier
    and keep going.  {!image} walks a ladder of increasingly aggressive
    relief measures:

    + collect garbage and retry the exact step;
    + restrict-minimize the frontier against the already-reached states
      (sound: the minimized set lies between the frontier and
      [frontier ∨ reached], so only known-reachable states are expanded);
    + under-approximate the frontier with one of the paper's dense-subset
      algorithms (HB by default) at geometrically shrinking thresholds,
      carrying the left-behind states back to the caller;
    + as a last resort, expand a single satisfying cube of the frontier.

    Every degraded step is recorded with its before/after size and
    density, so the traversal's final result carries a {!cert}ificate:
    either the fixpoint was proved ([Exact]) or the reached set is a
    sound under-approximation tagged with what was given up
    ([Degraded]).  Only when even the single-cube rung cannot complete
    does {!image} raise {!Exhausted} — the engines translate that into a
    graceful stop, never into an escaped {!Bdd.Node_limit}. *)

type step = {
  call : int;  (** which {!image} call degraded (1-based) *)
  rung : string;  (** ["restrict"], ["HB@512"], …, ["cube"] *)
  size_before : int;
  size_after : int;
  density_before : float;
  density_after : float;
}

type info = {
  steps_approximated : int;  (** image calls that needed a degraded rung *)
  exhausted : bool;  (** the traversal stopped because the ladder ran out *)
  density_stats : step list;  (** chronological, one per degraded call *)
}

type cert = Exact | Degraded of info

val pp_cert : Format.formatter -> cert -> unit
(** ["exact"], or e.g. ["degraded(2 steps, min-density x4.7)"]. *)

type t
(** Per-traversal degradation tracker. *)

exception Exhausted
(** Even the last rung could not complete within the node budget. *)

val create : ?meth:Approx.meth -> unit -> t
(** [meth] (default [HB]) is the dense-subset algorithm of the
    under-approximation rungs. *)

val steps_approximated : t -> int

val certificate : exact:bool -> t -> cert
(** [Exact] when the engine proved the fixpoint, else the degradation
    record (possibly with zero approximated steps, when the run was cut
    short by a time or iteration bound instead). *)

val image :
  t ->
  Bdd.man ->
  roots:(unit -> Bdd.t list) ->
  reached:Bdd.t ->
  compute:(Bdd.t -> 'a) ->
  Bdd.t ->
  'a * Bdd.t * Bdd.t
(** [image t man ~roots ~reached ~compute frontier] runs
    [compute frontier], walking the ladder on {!Bdd.Node_limit}.  Returns
    [(value, expanded, leftover)] where [value] is [compute expanded],
    [expanded] is the frontier actually used (between [frontier] and
    [frontier ∨ reached] for the restrict rung, a subset of [frontier]
    for the under-approximation rungs) and [leftover] is
    [frontier ∖ expanded] — states the caller must keep unexpanded.
    [roots] feeds the garbage collections between rungs; [compute] may be
    re-invoked and must tolerate that.  Exceptions other than
    {!Bdd.Node_limit} propagate unchanged.  @raise Exhausted when no rung
    fits the budget. *)
