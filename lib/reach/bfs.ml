let run ?(max_iter = max_int) ?time_limit ?node_limit ?gc_start
    ?(sift = false) trans =
  let man = Trans.man trans in
  let start = Sys.time () in
  let compiled = trans.Trans.compiled in
  let maint = Traversal.make_maintenance ?gc_start sift in
  let trans = ref trans in
  let init = compiled.Compile.init in
  let reached = ref init and frontier = ref init in
  let iterations = ref 0 and images = ref 0 in
  let peak_live = ref (Bdd.unique_size man) and peak_product = ref 0 in
  let exact = ref false in
  let expired () =
    match time_limit with
    | Some l -> Sys.time () -. start > l
    | None -> false
  in
  Bdd.set_node_limit man node_limit;
  let roots () = !reached :: !frontier :: Trans.roots !trans in
  (* one BFS step; Bdd.Node_limit escapes when the node ceiling is hit *)
  let step () =
    Obs.Trace.with_span "bfs.iter" @@ fun () ->
    let img, stats = Image.image !trans !frontier in
    incr images;
    peak_product := max !peak_product stats.Image.peak_product;
    let fresh = Bdd.bdiff man img !reached in
    peak_live := max !peak_live (Bdd.unique_size man);
    if Bdd.is_false fresh then begin
      exact := true;
      raise Exit
    end;
    reached := Bdd.bor man !reached fresh;
    frontier := fresh;
    incr iterations;
    if Reach_obs.on () then
      Reach_obs.note_iteration ~frontier:(Bdd.size fresh)
        ~reached:(Bdd.size !reached);
    match Traversal.maintain maint man (roots ()) with
    | r :: f :: rest ->
        reached := r;
        frontier := f;
        trans := Trans.replace_roots !trans rest
    | _ -> assert false
  in
  (try
     while !iterations < max_iter && not (expired ()) do
       try step ()
       with Bdd.Node_limit -> (
         (* out of "memory": collect and retry the step once; a second
            blowup means the frontier genuinely does not fit *)
         ignore (Bdd.gc man ~roots:(roots ()));
         try step () with Bdd.Node_limit -> raise Exit)
     done
   with Exit -> ());
  Bdd.set_node_limit man None;
  {
    Traversal.reached = !reached;
    states =
      Bdd.count_minterms man !reached
        ~nvars:(Array.length compiled.Compile.latches);
    iterations = !iterations;
    images = !images;
    peak_live_nodes = !peak_live;
    peak_product = !peak_product;
    partial_approximations = 0;
    cpu_seconds = Sys.time () -. start;
    exact = !exact;
  }
