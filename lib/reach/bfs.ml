let run ?(max_iter = max_int) ?time_limit ?node_limit ?gc_start
    ?(sift = false) ?degrade:meth ?checkpoint ?resume ?pool trans =
  let man = Trans.man trans in
  (* with a pool, the frontier bookkeeping joins the image on the workers;
     par_* results are bit-identical to the sequential operations *)
  let bor man f g =
    match pool with
    | Some pool -> Bdd.par_apply pool man `Or f g
    | None -> Bdd.bor man f g
  in
  let bdiff man f g =
    (* f ∧ ¬g as ite(g, false, f) *)
    match pool with
    | Some pool -> Bdd.par_ite pool man g (Bdd.ff man) f
    | None -> Bdd.bdiff man f g
  in
  let start = Sys.time () in
  let compiled = trans.Trans.compiled in
  let maint = Traversal.make_maintenance ?gc_start sift in
  let deg = Resil.Degrade.create ?meth () in
  let trans = ref trans in
  let init = compiled.Compile.init in
  let reached = ref init and frontier = ref init in
  let iterations = ref 0 and images = ref 0 in
  (match Traversal.resume man resume with
  | None -> ()
  | Some (it, im, r, f) ->
      iterations := it;
      images := im;
      reached := r;
      frontier := f);
  let peak_live = ref (Bdd.unique_size man) and peak_product = ref 0 in
  let exact = ref false in
  let expired () =
    match time_limit with
    | Some l -> Sys.time () -. start > l
    | None -> false
  in
  Bdd.set_node_limit man node_limit;
  let roots () = !reached :: !frontier :: Trans.roots !trans in
  (* one BFS step; a node-budget blowup degrades the frontier instead of
     aborting, so [frontier] is in general the whole unexpanded set, not
     just the newest ring *)
  let step () =
    Obs.Trace.with_span "bfs.iter" @@ fun () ->
    let (img, stats), _expanded, leftover =
      Resil.Degrade.image deg man ~roots ~reached:!reached
        ~compute:(fun f -> Image.image ?pool !trans f)
        !frontier
    in
    incr images;
    peak_product := max !peak_product stats.Image.peak_product;
    let fresh = bdiff man img !reached in
    peak_live := max !peak_live (Bdd.unique_size man);
    reached := bor man !reached fresh;
    frontier := bor man leftover fresh;
    if Bdd.is_false !frontier then begin
      exact := true;
      raise Exit
    end;
    incr iterations;
    if Reach_obs.on () then
      Reach_obs.note_iteration ~frontier:(Bdd.size !frontier)
        ~reached:(Bdd.size !reached);
    (match Traversal.maintain maint man (roots ()) with
    | r :: f :: rest ->
        reached := r;
        frontier := f;
        trans := Trans.replace_roots !trans rest
    | _ -> assert false);
    Traversal.checkpoint checkpoint man ~iterations:!iterations
      ~images:!images ~reached:!reached ~frontier:!frontier
  in
  (try
     while !iterations < max_iter && not (expired ()) do
       try step () with
       | Resil.Degrade.Exhausted ->
           (* even a single-cube frontier does not fit: stop gracefully
              with the (sound) reached set accumulated so far *)
           raise Exit
       | Bdd.Node_limit ->
           (* a blowup in the bookkeeping outside the guarded image step
              (or an injected fault there): same graceful stop *)
           raise Exit
     done
   with Exit -> ());
  Bdd.set_node_limit man None;
  {
    Traversal.reached = !reached;
    states =
      Bdd.count_minterms man !reached
        ~nvars:(Array.length compiled.Compile.latches);
    iterations = !iterations;
    images = !images;
    peak_live_nodes = !peak_live;
    peak_product = !peak_product;
    partial_approximations = 0;
    cpu_seconds = Sys.time () -. start;
    exact = !exact;
    degrade = Resil.Degrade.certificate ~exact:!exact deg;
  }
