(** Image computation over a partitioned transition relation.

    [image trans f] computes [Img(f) = (∃ x, w. T(x,w,y) ∧ f(x))] renamed
    back to present-state variables, conjoining clusters left to right and
    quantifying each variable as soon as no later cluster mentions it.

    The [partial] hook implements the paper's partial-image subsetting
    (Table 1's "PImg" column): whenever an intermediate product exceeds
    [limit] nodes it is replaced by [approx] of itself, making the image a
    {e subset} of the exact image — which high-density traversal tolerates
    and exploits.

    The [pool] hook runs each cluster's relational product through
    {!Bdd.par_exist_and} on the given fork/join pool.  The transition
    system's manager must then be shared ([Bdd.create ~shared:true], as
    [Compile.compile ~man] permits); results are bit-identical to the
    sequential path. *)

type stats = { peak_product : int; approximations : int }

val image :
  ?partial:int * (Bdd.t -> Bdd.t) ->
  ?pool:Tpool.t ->
  Trans.t ->
  Bdd.t ->
  Bdd.t * stats
(** [image ?partial ?pool trans f]: [f] ranges over present-state
    variables; the result does too. *)

val exact : Trans.t -> Bdd.t -> Bdd.t
(** [image] without subsetting, dropping the statistics. *)

val preimage : Trans.t -> Bdd.t -> Bdd.t
(** [∃ y, w. T(x,w,y) ∧ f(y)] renamed to present-state variables (used by
    backward analyses and tests). *)
