(** Exact breadth-first reachability analysis — the baseline the paper's
    Table 1 compares high-density traversal against. *)

val run :
  ?max_iter:int ->
  ?time_limit:float ->
  ?node_limit:int ->
  ?gc_start:int ->
  ?sift:bool ->
  ?degrade:Approx.meth ->
  ?checkpoint:Resil.Checkpoint.policy ->
  ?resume:Resil.Checkpoint.reach_state ->
  ?pool:Tpool.t ->
  Trans.t ->
  Traversal.result
(** Least fixpoint of [λR. init ∨ Img(R)] by frontier iteration.
    [time_limit] (CPU seconds) aborts the run, reporting [exact = false]
    — the analogue of the paper's "> 2 weeks" entry.  [node_limit] is the
    analogue of the paper's 256 MB memory ceiling (s1269 needed a 1 GB
    machine; see DESIGN.md on emulating 1998 resource budgets) — but
    instead of aborting, an image step that still blows the ceiling after
    a collection walks the {!Resil.Degrade} ladder: the frontier is
    restrict-minimized, then under-approximated with [degrade] (default
    [HB]), and the states left behind return to the frontier, so the
    search continues on a sound subset and the result's [degrade] field
    records what happened.  Only when even the ladder's last rung cannot
    complete does the run stop, reporting [exact = false] with
    [exhausted = true].  [sift] (default false) enables dynamic variable
    reordering; it invalidates any BDD of the manager not owned by the
    traversal, including the compiled circuit functions.  [checkpoint]
    atomically snapshots the traversal every [every] iterations;
    [resume] restarts from a snapshot loaded with
    {!Resil.Checkpoint.load_reach}.  [pool] forks the image and frontier
    bookkeeping across the given pool's domains (the transition system's
    manager must be [Bdd.create ~shared:true]); results are bit-identical
    to the sequential run. *)
