(* Shared result record and maintenance hooks for the traversal engines. *)

type result = {
  reached : Bdd.t;  (* over present-state variables *)
  states : float;  (* number of reachable states *)
  iterations : int;
  images : int;  (* image computations performed *)
  peak_live_nodes : int;  (* high-water mark of the unique table *)
  peak_product : int;  (* largest intermediate image product *)
  partial_approximations : int;  (* times a product was subsetted *)
  cpu_seconds : float;
  exact : bool;  (* the full fixpoint was provably reached *)
  degrade : Resil.Degrade.cert;  (* Exact, or what was given up *)
}

let pp fmt r =
  Format.fprintf fmt
    "states=%.6g iters=%d images=%d peak=%d product=%d papprox=%d time=%.2fs%s"
    r.states r.iterations r.images r.peak_live_nodes r.peak_product
    r.partial_approximations r.cpu_seconds
    (if r.exact then "" else " (INCOMPLETE)");
  (* exact runs print exactly what they always did; only a run that
     actually degraded says so *)
  match r.degrade with
  | Resil.Degrade.Degraded i when i.steps_approximated > 0 || i.exhausted ->
      Format.fprintf fmt " %a" Resil.Degrade.pp_cert r.degrade
  | _ -> ()

(* Maintenance: collect garbage when the table grows too large, and
   optionally re-sift the variable order.  Returns the (possibly rebuilt)
   traversal roots; the caller must unpack them in order. *)
type maintenance = {
  mutable gc_at : int;
  mutable sift_at : int;
  sift_enabled : bool;
}

let make_maintenance ?(gc_start = 200_000) ?(sift_start = 50_000) sift_enabled
    =
  { gc_at = gc_start; sift_at = sift_start; sift_enabled }

let maintain m man roots =
  let roots = ref roots in
  if m.sift_enabled && Bdd.shared_size !roots > m.sift_at then begin
    roots := Reorder.sift man ~max_vars:10 !roots;
    m.sift_at <- 2 * Bdd.shared_size !roots + m.sift_at
  end;
  if Bdd.unique_size man > m.gc_at then begin
    (* a collection cut short (only possible under fault injection, which
       fires at gc entry) just reclaims nothing — never abort the run *)
    (try ignore (Bdd.gc man ~roots:!roots) with Bdd.Node_limit -> ());
    m.gc_at <- max m.gc_at (2 * Bdd.unique_size man)
  end;
  !roots

(* Crash-safe checkpoint plumbing shared by the engines. *)

let checkpoint policy man ~iterations ~images ~reached ~frontier =
  match policy with
  | Some { Resil.Checkpoint.path; every }
    when every > 0 && iterations > 0 && iterations mod every = 0 ->
      Obs.Trace.with_span "resil.checkpoint" @@ fun () ->
      Resil.Checkpoint.save_reach path
        {
          Resil.Checkpoint.iterations;
          images;
          payload = Bdd.export_list man [ reached; frontier ];
        }
  | _ -> ()

let resume man = function
  | None -> None
  | Some st -> (
      match Bdd.import_list man st.Resil.Checkpoint.payload with
      | [ r; f ] -> Some (st.Resil.Checkpoint.iterations, st.images, r, f)
      | _ -> assert false (* load_reach enforces exactly 2 roots *))
