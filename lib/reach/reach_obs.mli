(** Observability hooks for the traversal engines.

    Thin gated wrappers over {!Obs.Metrics.default} and {!Obs.Trace}:
    [reach.*] counters/histograms for iterations, image and frontier
    sizes, and approximation trigger points.  Everything is a no-op (one
    load and a branch) unless recording or tracing is on; callers should
    gate any size computation they feed in on {!on}. *)

val on : unit -> bool
(** True when metrics recording or tracing is enabled. *)

val note_iteration : frontier:int -> reached:int -> unit
(** One traversal iteration finished with these BDD sizes. *)

val note_image : size:int -> unit
(** An image computation produced a result of this size. *)

val note_partial_approx : size:int -> unit
(** The partial-image clip replaced an intermediate product of [size]
    nodes with an approximation. *)
