type params = {
  meth : Approx.meth;
  threshold : int;
  quality : float;
  pimg : (int * int) option;
}

let default = { meth = Approx.RUA; threshold = 0; quality = 1.0; pimg = None }

exception Out_of_budget

let run ?(max_iter = max_int) ?time_limit ?node_limit ?gc_start
    ?(sift = false) ?(params = default) ?checkpoint ?resume ?pool trans =
  let man = Trans.man trans in
  let start = Sys.time () in
  let nlatches = Array.length trans.Trans.compiled.Compile.latches in
  let maint = Traversal.make_maintenance ?gc_start sift in
  let deg = Resil.Degrade.create ~meth:params.meth () in
  let trans = ref trans in
  let subset_params m threshold =
    { Approx.default_params with threshold; quality = params.quality }
    |> fun p -> Approx.under man ~params:p m
  in
  let partial =
    Option.map
      (fun (limit, threshold) ->
        (limit, fun p -> subset_params params.meth threshold p))
      params.pimg
  in
  let init = (!trans).Trans.compiled.Compile.init in
  let reached = ref init and unexpanded = ref init in
  let iterations = ref 0 and images = ref 0 in
  (match Traversal.resume man resume with
  | None -> ()
  | Some (it, im, r, u) ->
      iterations := it;
      images := im;
      reached := r;
      unexpanded := u);
  let peak_live = ref (Bdd.unique_size man) and peak_product = ref 0 in
  let papprox = ref 0 in
  let expired () =
    match time_limit with
    | Some l -> Sys.time () -. start > l
    | None -> false
  in
  Bdd.set_node_limit man node_limit;
  let roots () = !reached :: !unexpanded :: Trans.roots !trans in
  let step () =
    Obs.Trace.with_span "hd.iter" @@ fun () ->
    let extract () =
      (* below the size target the methods return their input unchanged;
         skip the pass *)
      if params.threshold > 0 && Bdd.size !unexpanded <= params.threshold
      then !unexpanded
      else subset_params params.meth params.threshold !unexpanded
    in
    let dense =
      try extract ()
      with Bdd.Node_limit ->
        (try ignore (Bdd.gc man ~roots:(roots ()))
         with Bdd.Node_limit -> ());
        extract ()
    in
    let dense = if Bdd.is_false dense then !unexpanded else dense in
    (* a node-budget blowup shrinks [dense] down the degradation ladder;
       whatever it leaves behind stays in [unexpanded] because only the
       expanded part is subtracted below *)
    let (img, stats), expanded, _leftover =
      Resil.Degrade.image deg man ~roots ~reached:!reached
        ~compute:(fun d -> Image.image ?partial ?pool !trans d)
        dense
    in
    incr images;
    peak_product := max !peak_product stats.Image.peak_product;
    papprox := !papprox + stats.Image.approximations;
    let fresh = Bdd.bdiff man img !reached in
    reached := Bdd.bor man !reached fresh;
    unexpanded := Bdd.bor man (Bdd.bdiff man !unexpanded expanded) fresh;
    incr iterations;
    peak_live := max !peak_live (Bdd.unique_size man);
    if Reach_obs.on () then
      Reach_obs.note_iteration ~frontier:(Bdd.size !unexpanded)
        ~reached:(Bdd.size !reached);
    (match Traversal.maintain maint man (roots ()) with
    | r :: u :: rest ->
        reached := r;
        unexpanded := u;
        trans := Trans.replace_roots !trans rest
    | _ -> assert false);
    Traversal.checkpoint checkpoint man ~iterations:!iterations
      ~images:!images ~reached:!reached ~frontier:!unexpanded
  in
  (* run a step under the node ceiling: the degradation ladder absorbs
     blowups inside the image; anything it cannot absorb — or a blowup in
     the bookkeeping around it — ends the expansion *)
  let guarded_step () =
    try step ()
    with Resil.Degrade.Exhausted | Bdd.Node_limit -> raise Out_of_budget
  in
  let expand_round () =
    try
      while
        (not (Bdd.is_false !unexpanded))
        && !iterations < max_iter
        && not (expired ())
      do
        guarded_step ()
      done;
      true
    with Out_of_budget -> false
  in
  let in_budget = expand_round () in
  (* partial images may have dropped successors: certify closure with an
     exact image of the result, and resume if states were missed *)
  let exact = ref (in_budget && Bdd.is_false !unexpanded) in
  if params.pimg <> None && !exact then begin
    let closure_image () =
      try Some (fst (Image.image ?pool !trans !reached))
      with Bdd.Node_limit -> None
    in
    let rec closure () =
      Obs.Trace.with_span "hd.closure" @@ fun () ->
      if !iterations >= max_iter || expired () then exact := false
      else
        match closure_image () with
        | None -> exact := false
        | Some img ->
            incr images;
            let missed = Bdd.bdiff man img !reached in
            if Bdd.is_false missed then exact := true
            else begin
              unexpanded := missed;
              reached := Bdd.bor man !reached missed;
              if expand_round () then closure () else exact := false
            end
    in
    closure ()
  end;
  Bdd.set_node_limit man None;
  {
    Traversal.reached = !reached;
    states = Bdd.count_minterms man !reached ~nvars:nlatches;
    iterations = !iterations;
    images = !images;
    peak_live_nodes = !peak_live;
    peak_product = !peak_product;
    partial_approximations = !papprox;
    cpu_seconds = Sys.time () -. start;
    exact = !exact;
    degrade = Resil.Degrade.certificate ~exact:!exact deg;
  }
