(* Handles registered at link time; recording through them is lock-free. *)
let reg = Obs.Metrics.default
let iterations = Obs.Metrics.counter reg "reach.iterations"
let images = Obs.Metrics.counter reg "reach.images"
let partial_approx = Obs.Metrics.counter reg "reach.partial_approximations"
let frontier_size = Obs.Metrics.histogram reg "reach.frontier_size"
let image_size = Obs.Metrics.histogram reg "reach.image_size"
let reached_size = Obs.Metrics.gauge reg "reach.reached_size"

let on () = Obs.Metrics.recording () || Obs.Trace.enabled ()

let note_iteration ~frontier ~reached =
  if Obs.Metrics.recording () then begin
    Obs.Metrics.inc iterations 1;
    Obs.Metrics.observe frontier_size frontier;
    Obs.Metrics.set reached_size reached
  end;
  if Obs.Trace.enabled () then Obs.Trace.counter "reach.frontier_size" frontier

let note_image ~size =
  if Obs.Metrics.recording () then begin
    Obs.Metrics.inc images 1;
    Obs.Metrics.observe image_size size
  end;
  if Obs.Trace.enabled () then Obs.Trace.counter "reach.image_size" size

let note_partial_approx ~size =
  if Obs.Metrics.recording () then Obs.Metrics.inc partial_approx 1;
  if Obs.Trace.enabled () then
    Obs.Trace.instant (Printf.sprintf "reach.partial_approx %d" size)
