type outcome =
  | Holds of Traversal.result
  | Violated of { depth : int; trace : (int * bool) list list }

(* restrict a satisfying path to current-state variables, completing the
   unmentioned latches with [false] so the trace shows full states *)
let state_cube man compiled f =
  let lits = Bdd.any_sat man f in
  let cur = Array.to_list (Compile.cur_vars compiled) in
  List.map
    (fun v ->
      match List.assoc_opt v lits with Some b -> (v, b) | None -> (v, false))
    cur

let check ?(max_iter = max_int) trans ~bad =
  let man = Trans.man trans in
  let compiled = trans.Trans.compiled in
  let init = compiled.Compile.init in
  let start = Sys.time () in
  (* breadth-first rings; ring 0 = init *)
  let rec forward rings reached frontier iterations images peak =
    let hit = Bdd.band man frontier bad in
    if not (Bdd.is_false hit) then `Hit (List.rev rings, iterations)
    else if iterations >= max_iter then `Bound (reached, iterations, images, peak)
    else begin
      let img, stats = Image.image trans frontier in
      let fresh = Bdd.bdiff man img reached in
      if Bdd.is_false fresh then `Fix (reached, iterations, images + 1, peak)
      else
        forward (fresh :: rings)
          (Bdd.bor man reached fresh)
          fresh (iterations + 1) (images + 1)
          (max peak stats.Image.peak_product)
    end
  in
  match forward [ init ] init init 0 0 0 with
  | `Fix (reached, iterations, images, peak) | `Bound (reached, iterations, images, peak)
    ->
      Holds
        {
          Traversal.reached;
          states =
            Bdd.count_minterms man reached
              ~nvars:(Array.length compiled.Compile.latches);
          iterations;
          images;
          peak_live_nodes = Bdd.unique_size man;
          peak_product = peak;
          partial_approximations = 0;
          cpu_seconds = Sys.time () -. start;
          exact = true;
          degrade = Resil.Degrade.Exact;
        }
  | `Hit (rings, depth) ->
      (* rings = [ring0; ring1; …; ring_depth]; walk backwards from a bad
         state in the last ring through preimages *)
      let rings = Array.of_list rings in
      let last = Array.length rings - 1 in
      let target = ref (Bdd.band man rings.(last) bad) in
      let states = ref [] in
      for k = last downto 0 do
        let here = Bdd.band man !target rings.(k) in
        let here = if Bdd.is_false here then !target else here in
        let cube = state_cube man compiled here in
        states := cube :: !states;
        if k > 0 then begin
          let point = Bdd.cube_of_literals man cube in
          target := Bdd.band man (Image.preimage trans point) rings.(k - 1)
        end
      done;
      Violated { depth; trace = !states }

let output_never compiled name =
  let out = List.assoc name compiled.Compile.output_fns in
  let man = compiled.Compile.man in
  let inputs = Bdd.cube man (Array.to_list (Compile.input_var_array compiled)) in
  Bdd.exists man ~vars:inputs out
