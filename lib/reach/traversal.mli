(** Shared result record and maintenance hooks for the traversal engines
    ({!Bfs} and {!High_density}). *)

type result = {
  reached : Bdd.t;  (** the reached set, over present-state variables *)
  states : float;  (** number of states in [reached] *)
  iterations : int;
  images : int;  (** image computations performed *)
  peak_live_nodes : int;  (** high-water mark of the unique table *)
  peak_product : int;  (** largest intermediate image product *)
  partial_approximations : int;  (** times a product was subsetted (PImg) *)
  cpu_seconds : float;
  exact : bool;
      (** the full fixpoint was provably computed; [false] after hitting an
          iteration, time or node budget *)
  degrade : Resil.Degrade.cert;
      (** [Exact] iff [exact]; otherwise the degradation record — which
          image steps fell back to an approximated frontier, with their
          size/density deltas (empty when the run was merely cut short by
          an iteration or time bound) *)
}

val pp : Format.formatter -> result -> unit

(** {1 Maintenance}

    Garbage collection and optional re-sifting between iterations.  The
    traversal passes in every root it owns and unpacks the returned list in
    the same order (reordering rebuilds the roots). *)

type maintenance

val make_maintenance :
  ?gc_start:int -> ?sift_start:int -> bool -> maintenance
(** [make_maintenance sift_enabled] — collection starts once the unique
    table passes [gc_start] (default 200k) nodes and re-arms at twice the
    live size; sifting (when enabled) triggers at [sift_start] (default
    50k) shared root nodes. *)

val maintain : maintenance -> Bdd.man -> Bdd.t list -> Bdd.t list

(** {1 Checkpoints}

    Crash-safe traversal snapshots, shared by the engines'
    [?checkpoint] / [?resume] arguments. *)

val checkpoint :
  Resil.Checkpoint.policy option ->
  Bdd.man ->
  iterations:int ->
  images:int ->
  reached:Bdd.t ->
  frontier:Bdd.t ->
  unit
(** Atomically write [policy.path] when [iterations] is a positive
    multiple of [policy.every]; no-op otherwise. *)

val resume :
  Bdd.man ->
  Resil.Checkpoint.reach_state option ->
  (int * int * Bdd.t * Bdd.t) option
(** Import a loaded checkpoint into the traversal manager:
    [(iterations, images, reached, frontier)]. *)
