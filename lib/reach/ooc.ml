(* Out-of-core reachability (see the mli).

   Two regimes.  Hot: the classic BFS loop, reached and frontier both in
   the unique table, images unguarded (no degrade ladder) — a Node_limit
   triggers a gc, and if the table is still more than half full the
   reached set migrates to the cold tier.  Cold: the reached set is a
   Store.Tiered handle; each iteration images the hot frontier, demotes
   the image, diffs and accumulates it against the cold reached set with
   the streaming apply, and promotes only the fresh states back as the
   next frontier.  The degrade ladder guards the image step in the cold
   regime (its restrict rung is disabled by passing an empty reached set,
   keeping the run exact); only a frontier that cannot be promoted even
   after gc, an exhausted ladder, or a full disk end the run early — all
   soundly, with the states accumulated so far. *)

type result = {
  reached : Bdd.serialized;
  states : float;
  iterations : int;
  images : int;
  migrations : int;
  peak_hot_nodes : int;
  peak_total_nodes : int;
  peak_cold_nodes : int;
  spilled_bytes : int;
  cpu_seconds : float;
  exact : bool;
  degrade : Resil.Degrade.cert;
}

let pp fmt r =
  Format.fprintf fmt
    "states=%.6g iters=%d images=%d migrations=%d peak_hot=%d peak_total=%d \
     cold=%d spilled=%dB time=%.2fs%s"
    r.states r.iterations r.images r.migrations r.peak_hot_nodes
    r.peak_total_nodes r.peak_cold_nodes r.spilled_bytes r.cpu_seconds
    (if r.exact then "" else " (INCOMPLETE)")

type regime =
  | Hot of Bdd.t ref (* reached, in the unique table *)
  | Cold of Store.Tiered.handle ref (* reached, in the cold tier *)

let run ?(max_iter = max_int) ?time_limit ?store_dir ?mem_bound
    ?disk_budget_bytes ~hot_budget trans =
  let man = Trans.man trans in
  let start = Sys.time () in
  let compiled = trans.Trans.compiled in
  let nlatches = Array.length compiled.Compile.latches in
  let deg = Resil.Degrade.create () in
  let store = Store.Tiered.create ?dir:store_dir ?mem_bound ?disk_budget_bytes man in
  let init = compiled.Compile.init in
  let regime = ref (Hot (ref init)) in
  let frontier = ref init in
  let iterations = ref 0 and images = ref 0 and migrations = ref 0 in
  let peak_hot = ref (Bdd.unique_size man) in
  let peak_total = ref !peak_hot in
  let exact = ref false and finished = ref false in
  let hot_faults = ref 0 in
  let expired () =
    match time_limit with
    | Some l -> Sys.time () -. start > l
    | None -> false
  in
  let roots () =
    let base = !frontier :: Trans.roots trans in
    match !regime with Hot r -> !r :: base | Cold _ -> base
  in
  let note_peaks () =
    peak_hot := max !peak_hot (Bdd.unique_size man);
    peak_total :=
      max !peak_total (Bdd.unique_size man + Store.Tiered.cold_nodes store)
  in
  let safe_gc () =
    try ignore (Bdd.gc man ~roots:(roots ())) with Bdd.Node_limit -> ()
  in
  let migrate reached =
    Obs.Trace.with_span "ooc.migrate" @@ fun () ->
    let h = Store.Tiered.demote store !reached in
    (* the run's true peak population: the hot copy (still in the unique
       table until the gc below) plus its fresh cold twin *)
    note_peaks ();
    incr migrations;
    if Obs.Metrics.recording () then
      Obs.Metrics.inc
        (Obs.Metrics.counter Obs.Metrics.default "reach.ooc.migrations")
        1;
    regime := Cold (ref h);
    (* the hot copy of the reached set is garbage now *)
    safe_gc ()
  in
  (* ---- hot regime: plain BFS step, no ladder ---- *)
  let hot_step reached =
    Obs.Trace.with_span "ooc.iter" @@ fun () ->
    let img, _stats = Image.image trans !frontier in
    incr images;
    note_peaks ();
    let fresh = Bdd.bdiff man img !reached in
    reached := Bdd.bor man !reached fresh;
    frontier := fresh;
    note_peaks ();
    hot_faults := 0;
    if Bdd.is_false !frontier then begin
      exact := true;
      finished := true
    end
    else incr iterations
  in
  (* ---- cold regime ---- *)
  let promote_frontier fresh_h leftover =
    match Store.Tiered.promote store fresh_h with
    | fresh_b -> Some (Bdd.bor man fresh_b leftover)
    | exception Bdd.Node_limit -> (
        safe_gc ();
        match Store.Tiered.promote store fresh_h with
        | fresh_b -> Some (Bdd.bor man fresh_b leftover)
        | exception Bdd.Node_limit -> None)
  in
  let cold_step reached_h =
    Obs.Trace.with_span "ooc.iter" @@ fun () ->
    let (img, _stats), _expanded, leftover =
      (* reached = ff disables the restrict rung: expansion may shrink
         (leftover grows) but never adds already-reached states, so the
         fixpoint test below stays exact *)
      Resil.Degrade.image deg man ~roots ~reached:(Bdd.ff man)
        ~compute:(fun f -> Image.image trans f)
        !frontier
    in
    incr images;
    note_peaks ();
    let img_h = Store.Tiered.demote store img in
    note_peaks ();
    (* the unexpanded remainder must stay in [frontier]: it is both the
       rest of the work and the only gc root keeping it alive *)
    frontier := leftover;
    safe_gc ();
    let fresh_h = Store.Tiered.apply store Store.Stream.Diff img_h !reached_h in
    Store.Tiered.drop store img_h;
    note_peaks ();
    if Store.Tiered.is_const store fresh_h = Some 0 && Bdd.is_false !frontier
    then begin
      Store.Tiered.drop store fresh_h;
      exact := true;
      finished := true
    end
    else begin
      let r' = Store.Tiered.apply store Store.Stream.Or !reached_h fresh_h in
      Store.Tiered.drop store !reached_h;
      reached_h := r';
      note_peaks ();
      (match promote_frontier fresh_h !frontier with
      | Some f ->
          Store.Tiered.drop store fresh_h;
          frontier := f;
          incr iterations
      | None ->
          (* the fresh set does not fit hot even after gc: stop soundly
             with the reached set accumulated so far *)
          Store.Tiered.drop store fresh_h;
          finished := true);
      (* keep only metadata mapped between iterations *)
      Store.Tiered.spill store
    end
  in
  Bdd.set_node_limit man (Some hot_budget);
  (try
     while (not !finished) && !iterations < max_iter && not (expired ()) do
       match !regime with
       | Hot reached -> (
           try hot_step reached
           with Bdd.Node_limit ->
             safe_gc ();
             incr hot_faults;
             if 2 * Bdd.unique_size man > hot_budget || !hot_faults >= 3 then
               migrate reached)
       | Cold reached_h -> (
           try cold_step reached_h with
           | Store.Tiered.Disk_full -> finished := true
           | Resil.Degrade.Exhausted -> finished := true
           | Bdd.Node_limit ->
               (* a blowup past both the ladder and the promote retry:
                  retrying the whole step would re-image a half-updated
                  frontier, so stop soundly instead *)
               finished := true)
     done
   with e ->
     Bdd.set_node_limit man None;
     Store.Tiered.close store;
     raise e);
  Bdd.set_node_limit man None;
  let reached_s, states =
    match !regime with
    | Hot reached ->
        ( Bdd.export man !reached,
          Bdd.count_minterms man !reached ~nvars:nlatches )
    | Cold reached_h ->
        (* the streaming count ranges over every manager variable; scale
           back down to the latch variables the set actually mentions *)
        ( Store.Tiered.to_serialized store !reached_h,
          ldexp
            (Store.Tiered.count_minterms store !reached_h)
            (nlatches - Bdd.nvars man) )
  in
  let peak_cold = Store.Tiered.peak_cold_nodes store in
  let spilled = Store.Tiered.spilled_bytes store in
  Store.Tiered.close store;
  {
    reached = reached_s;
    states;
    iterations = !iterations;
    images = !images;
    migrations = !migrations;
    peak_hot_nodes = !peak_hot;
    peak_total_nodes = !peak_total;
    peak_cold_nodes = peak_cold;
    spilled_bytes = spilled;
    cpu_seconds = Sys.time () -. start;
    exact = !exact;
    degrade = Resil.Degrade.certificate ~exact:!exact deg;
  }
