type stats = { peak_product : int; approximations : int }

let image ?partial ?pool trans f =
  Obs.Trace.with_span "reach.image" @@ fun () ->
  let man = Trans.man trans in
  let peak = ref 0 in
  let napprox = ref 0 in
  let clip p =
    let size = Bdd.size p in
    peak := max !peak size;
    match partial with
    | Some (limit, approx) when size > limit ->
        incr napprox;
        Reach_obs.note_partial_approx ~size;
        approx p
    | Some _ | None -> p
  in
  (* cluster products are the expensive step: with a pool, fork the
     relational-product recursion across its workers *)
  let and_exists man ~vars p rel =
    match pool with
    | Some pool -> Bdd.par_exist_and pool man ~vars p rel
    | None -> Bdd.and_exists man ~vars p rel
  in
  (* variables in no cluster can leave the source set immediately *)
  let p0 =
    clip (Bdd.exists man ~vars:trans.Trans.frontier_quantify f)
  in
  let product =
    List.fold_left
      (fun p { Trans.rel; quantify } ->
        if Bdd.is_false p then p
        else clip (and_exists man ~vars:quantify p rel))
      p0 trans.Trans.clusters
  in
  (* [product] is now over next-state variables only *)
  let next = Compile.next_to_cur trans.Trans.compiled product in
  if Reach_obs.on () then Reach_obs.note_image ~size:(Bdd.size next);
  (next, { peak_product = !peak; approximations = !napprox })

let exact trans f = fst (image trans f)

let preimage trans f =
  let man = Trans.man trans in
  let compiled = trans.Trans.compiled in
  let fy = Compile.cur_to_next compiled f in
  (* quantify y and w out of T ∧ f(y) *)
  let vars =
    Bdd.cube man
      (Array.to_list (Compile.next_vars compiled)
      @ Array.to_list (Compile.input_var_array compiled))
  in
  let t = Trans.monolithic compiled in
  Bdd.and_exists man ~vars t fy
