(** Partitioned transition relations with early-quantification schedules
    (the paper's reachability substrate; cf. its refs [3, 10, 22, 28]).

    The relation is kept as an ordered list of clusters
    [T(x, w, y) = ∧ C_j]; each cluster carries the cube of present-state
    and input variables that can be quantified immediately after it is
    conjoined during image computation (because they appear in no later
    cluster). *)

type cluster = {
  rel : Bdd.t;
  quantify : Bdd.t;  (** cube of x/w variables dead after this cluster *)
}

type t = {
  compiled : Compile.t;
  clusters : cluster list;
  frontier_quantify : Bdd.t;
      (** x/w variables appearing in no cluster at all (quantified from the
          source set up front) *)
}

val build :
  ?cluster_limit:int ->
  ?part_order:[ `Declaration | `Support ] ->
  Compile.t ->
  t
(** Conjoin per-latch relations [y_i ≡ δ_i] greedily into clusters of at
    most [cluster_limit] nodes (default 2000), then compute the
    quantification schedule.  [part_order] (default [`Support]) orders the
    parts before clustering so that variables can be quantified as early
    as possible — parts whose support lies highest in the variable order
    come first (an IWLS'95-style heuristic); [`Declaration] keeps latch
    declaration order. *)

val monolithic : Compile.t -> Bdd.t
(** The full relation as one BDD (for tests and small machines). *)

val man : t -> Bdd.man
val roots : t -> Bdd.t list
(** Every BDD the structure owns — for reordering and GC. *)

val replace_roots : t -> Bdd.t list -> t
(** Rebuild the structure from the list produced by {!Bdd.reorder} applied
    to [roots t] (same length and order). *)

(** {1 Cross-manager transfer}

    A partitioned relation can be detached from its manager and rebuilt in
    another — the basis of the fan-out in [bench/main.exe]: the relation
    is built once, exported, and every worker domain imports it into its
    private manager. *)

type exported

val export : t -> exported
(** Serialize the compiled circuit and every partition (cluster relation
    and quantification cube) as plain data. *)

val import : Bdd.man -> exported -> t
(** Rebuild the whole structure inside [dst]; variable numbering and
    cluster order are preserved. *)

val transfer_cluster : src:Bdd.man -> dst:Bdd.man -> cluster -> cluster
(** Move a single partition between live managers (relation and cube share
    one serialization). *)
