type cluster = { rel : Bdd.t; quantify : Bdd.t }

type t = {
  compiled : Compile.t;
  clusters : cluster list;
  frontier_quantify : Bdd.t;
}

let man t = t.compiled.Compile.man

(* variables to be quantified during image computation: x and w *)
let quantifiable compiled =
  let tbl = Hashtbl.create 64 in
  Array.iter (fun v -> Hashtbl.replace tbl v ()) (Compile.cur_vars compiled);
  Array.iter
    (fun v -> Hashtbl.replace tbl v ())
    (Compile.input_var_array compiled);
  tbl

(* Given ordered relation parts, group them into clusters and attach the
   early-quantification schedule. *)
let schedule compiled parts =
  let man = compiled.Compile.man in
  let quantifiable = quantifiable compiled in
  (* for each variable, the index of the last cluster mentioning it *)
  let last_use = Hashtbl.create 64 in
  List.iteri
    (fun j rel ->
      List.iter
        (fun v ->
          if Hashtbl.mem quantifiable v then Hashtbl.replace last_use v j)
        (Bdd.support man rel))
    parts;
  let nclusters = List.length parts in
  let vars_at = Array.make (max 1 nclusters) [] in
  Hashtbl.iter (fun v j -> vars_at.(j) <- v :: vars_at.(j)) last_use;
  let clusters =
    List.mapi
      (fun j rel -> { rel; quantify = Bdd.cube man vars_at.(j) })
      parts
  in
  let unused =
    Hashtbl.fold
      (fun v () acc -> if Hashtbl.mem last_use v then acc else v :: acc)
      quantifiable []
  in
  { compiled; clusters; frontier_quantify = Bdd.cube man unused }

let build ?(cluster_limit = 2000) ?(part_order = `Support) compiled =
  let man = compiled.Compile.man in
  let parts =
    Array.to_list
      (Array.map
         (fun l ->
           Bdd.biff man (Bdd.ithvar man l.Compile.next) l.Compile.fn)
         compiled.Compile.latches)
  in
  let parts =
    match part_order with
    | `Declaration -> parts
    | `Support ->
        (* order the relation parts so that variables can be quantified as
           early as possible: parts whose present-state/input support sits
           highest in the order go first (an IWLS'95-style heuristic) *)
        let quantifiable = quantifiable compiled in
        let key rel =
          let levels =
            List.filter_map
              (fun v ->
                if Hashtbl.mem quantifiable v then
                  Some (Bdd.level_of_var man v)
                else None)
              (Bdd.support man rel)
          in
          match levels with
          | [] -> (max_int, max_int)
          | ls ->
              ( List.fold_left max min_int ls (* deepest support var *),
                List.fold_left min max_int ls )
        in
        List.stable_sort (fun a b -> compare (key a) (key b)) parts
  in
  (* greedy clustering in latch order *)
  let rec clump acc cur = function
    | [] -> List.rev (match cur with None -> acc | Some c -> c :: acc)
    | p :: rest -> (
        match cur with
        | None -> clump acc (Some p) rest
        | Some c ->
            let merged = Bdd.band man c p in
            if Bdd.size merged <= cluster_limit then clump acc (Some merged) rest
            else clump (c :: acc) (Some p) rest)
  in
  schedule compiled (clump [] None parts)

let monolithic compiled =
  let man = compiled.Compile.man in
  Array.fold_left
    (fun acc l ->
      Bdd.band man acc (Bdd.biff man (Bdd.ithvar man l.Compile.next) l.Compile.fn))
    (Bdd.tt man) compiled.Compile.latches

let roots t =
  Compile.roots t.compiled
  @ t.frontier_quantify
    :: List.concat_map (fun c -> [ c.rel; c.quantify ]) t.clusters

type exported = {
  x_compiled : Compile.exported;
  x_bdds : Bdd.serialized;
      (* frontier_quantify followed by rel, quantify per cluster, one
         shared serialization *)
}

let export t =
  let bdds =
    t.frontier_quantify
    :: List.concat_map (fun c -> [ c.rel; c.quantify ]) t.clusters
  in
  { x_compiled = Compile.export t.compiled; x_bdds = Bdd.export_list (man t) bdds }

let import dst x =
  let compiled = Compile.import dst x.x_compiled in
  match Bdd.import_list dst x.x_bdds with
  | frontier_quantify :: rest ->
      let rec pair = function
        | rel :: quantify :: more -> { rel; quantify } :: pair more
        | [] -> []
        | [ _ ] -> invalid_arg "Trans.import: odd cluster list"
      in
      { compiled; clusters = pair rest; frontier_quantify }
  | [] -> invalid_arg "Trans.import: empty root list"

let transfer_cluster ~src ~dst c =
  match Bdd.import_list dst (Bdd.export_list src [ c.rel; c.quantify ]) with
  | [ rel; quantify ] -> { rel; quantify }
  | _ -> assert false

let replace_roots t roots =
  let ncompiled = List.length (Compile.roots t.compiled) in
  let compiled_roots = List.filteri (fun i _ -> i < ncompiled) roots in
  let rest = List.filteri (fun i _ -> i >= ncompiled) roots in
  let compiled = Compile.with_roots t.compiled compiled_roots in
  match rest with
  | frontier_quantify :: rest ->
      let rec pair = function
        | rel :: quantify :: more -> { rel; quantify } :: pair more
        | [] -> []
        | [ _ ] -> invalid_arg "Trans.replace_roots: odd list"
      in
      let clusters = pair rest in
      if List.length clusters <> List.length t.clusters then
        invalid_arg "Trans.replace_roots: length mismatch";
      { compiled; clusters; frontier_quantify }
  | [] -> invalid_arg "Trans.replace_roots: empty list"
