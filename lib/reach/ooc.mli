(** Out-of-core reachability: BFS with a tiered node store.

    [run] behaves like {!Bfs.run} while the state space fits under
    [hot_budget] nodes.  When the hot tier blows its budget, the engine
    migrates the reached set to a {!Store.Tiered} cold tier — mmap'd
    canonical level files on disk — and continues {e exactly}: images are
    still computed in RAM (frontier and transition relation stay hot, the
    levelized cut), but the accumulated reached set lives cold and is
    combined with each image through the streaming apply of
    {!Store.Stream}.  The certificate stays [Exact] as long as the
    fixpoint is proved, no matter how many migrations happened; the
    {!Resil.Degrade} ladder engages only when even the image step cannot
    fit, and {!Store.Tiered.Disk_full} ends the run soundly with the
    under-approximate reached set accumulated so far. *)

type result = {
  reached : Bdd.serialized;
      (** the final reached set, importable into any manager *)
  states : float;  (** reachable states (streaming count when cold) *)
  iterations : int;
  images : int;
  migrations : int;  (** hot-to-cold migrations of the reached set *)
  peak_hot_nodes : int;  (** unique-table high-water mark *)
  peak_total_nodes : int;  (** max over time of hot + cold nodes *)
  peak_cold_nodes : int;
  spilled_bytes : int;  (** bytes the store wrote to disk, cumulative *)
  cpu_seconds : float;
  exact : bool;
  degrade : Resil.Degrade.cert;
}

val pp : Format.formatter -> result -> unit

val run :
  ?max_iter:int ->
  ?time_limit:float ->
  ?store_dir:string ->
  ?mem_bound:int ->
  ?disk_budget_bytes:int ->
  hot_budget:int ->
  Trans.t ->
  result
(** [run ~hot_budget trans] explores [trans] keeping at most [hot_budget]
    hot nodes (enforced through {!Bdd.set_node_limit}).  [store_dir]
    hosts the cold and spill files (default: a fresh temp directory,
    removed on return); [mem_bound] caps the streaming queues;
    [disk_budget_bytes] bounds the cold tier.  The store is always closed
    — and its files deleted — before returning. *)
