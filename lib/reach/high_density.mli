(** High-density reachability analysis (Ravi–Somenzi ICCAD'95), the
    traversal engine of the paper's Table 1.

    Breadth-first search is modified to expand, at each iteration, only a
    {e dense subset} of the states whose successors have not been computed
    yet; the subset is extracted with one of the approximation algorithms
    of Section 2.  States left behind stay in the unexpanded set and are
    reconsidered later, so the traversal is a mixed depth-first /
    breadth-first exploration that terminates with the exact reachable set.

    Additionally, intermediate products of image computation are subsetted
    whenever they exceed a node limit (the paper's "PImg"); in that case a
    final closure check (one exact image of the result) certifies
    exactness, re-seeding the traversal if states were missed. *)

type params = {
  meth : Approx.meth;  (** subset extraction algorithm *)
  threshold : int;  (** size target handed to the approximation *)
  quality : float;  (** RUA quality factor *)
  pimg : (int * int) option;
      (** partial-image subsetting: (trigger node limit, threshold handed
          to the approximation), the two numbers of Table 1's PImg column *)
}

val default : params
(** RUA, threshold 0, quality 1.0, no partial-image subsetting. *)

val run :
  ?max_iter:int ->
  ?time_limit:float ->
  ?node_limit:int ->
  ?gc_start:int ->
  ?sift:bool ->
  ?params:params ->
  ?checkpoint:Resil.Checkpoint.policy ->
  ?resume:Resil.Checkpoint.reach_state ->
  ?pool:Tpool.t ->
  Trans.t ->
  Traversal.result
(** High-density traversal to the exact fixpoint.  [time_limit],
    [node_limit], [gc_start], [sift], [checkpoint], [resume] and [pool]
    as in {!Bfs.run}; an image step that blows the node budget even after a
    collection walks the {!Resil.Degrade} ladder (with [params.meth] as
    its under-approximation method) before the engine concedes
    [exact = false]. *)
