(** Metrics registry: counters, gauges and log-binned histograms with
    lock-free accumulation and a JSON snapshot.

    Registration (the [counter]/[gauge]/[histogram] lookups) takes a
    mutex and may allocate; keep handles around and register once.
    Recording through a handle is lock-free: every metric is backed by an
    array of atomic cells striped by domain id, so concurrent domains
    accumulate without contending on a lock (and without losing updates —
    colliding stripes fall back to [Atomic.fetch_and_add]).  A snapshot
    sums the stripes.

    The process-wide {!default} registry is what the instrumented
    pipelines (Mt.Runner, lib/reach, the kernel observer of
    {!module:Kernel}) feed.  They are gated on {!recording}, which starts
    [false]: with metrics disabled the instrumentation is a single load
    and branch. *)

type t
(** A registry. *)

val create : unit -> t
val default : t

val set_recording : bool -> unit
(** Master switch for the built-in instrumentation sites (process-wide,
    not per registry).  Off by default. *)

val recording : unit -> bool
(** One atomic load: the disabled fast path. *)

type counter
(** Monotone: only ever incremented. *)

type gauge
(** Last-writer-wins sample of a level (queue depth, live nodes). *)

type histogram
(** Log-binned (powers of two) distribution of non-negative ints. *)

val counter : t -> string -> counter
(** Register or look up; @raise Invalid_argument if the name is already
    registered as a different kind. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val inc : counter -> int -> unit
(** [inc c n] with [n >= 0]; negative increments are clamped to 0. *)

val set : gauge -> int -> unit
val observe : histogram -> int -> unit

val counter_value : counter -> int
val gauge_value : gauge -> int
val histogram_count : histogram -> int

val quantile : histogram -> float -> int
(** [quantile h p] (p ∈ [0, 1]) estimates the p-quantile of the observed
    values from the log-binned counts: the upper bound of the first bin
    whose cumulative count reaches [p] of the total (an overestimate by at
    most 2x, the bin width).  0 when nothing was observed.  Used by the
    serve layer to report latency percentiles without keeping samples. *)

val record_stats : t -> prefix:string -> (string * int) list -> unit
(** Surface a [Bdd.stats]-style snapshot as gauges named
    [prefix ^ "." ^ key]. *)

(** {1 Snapshots} *)

val schema_version : string
(** ["obs-metrics/v1"]. *)

val snapshot : t -> Json.t
(** The registry as an [obs-metrics/v1] object: registration-ordered
    [counters], [gauges] and [histograms] arrays (each entry carries its
    [name]), plus [schema] and [unix_time]. *)

val write : t -> string -> unit
(** [snapshot] to a file. *)

val validate : Json.t -> (unit, string) result
(** Structural check of an [obs-metrics/v1] snapshot: schema string,
    every counter non-negative, histogram bin bounds strictly increasing
    and bin counts summing to the histogram count. *)

val counters_of_json : Json.t -> (string * float) list
(** The [counters] section of a snapshot, for cross-snapshot monotonicity
    checks. *)

val gauges_of_json : Json.t -> (string * float) list
(** The [gauges] section of a snapshot (last sampled values). *)
