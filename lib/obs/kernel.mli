(** Bridge from {!Bdd.event} to the metrics registry and the tracer.

    [attach man] installs a {!Bdd.set_observer} hook that feeds the
    kernel's structural events (unique-table growth, cache resizes, gc,
    node-limit hits) into counters and instants, and thins the periodic
    [Progress] beat into a live [unique_size] counter track.

    Metric handles are resolved once at attach time, so the observer
    itself never takes the registry lock.  Attach only when {!observing}
    — an attached observer costs a call per rare event and per progress
    beat even if recording is later switched off. *)

val attach : ?registry:Metrics.t -> ?prefix:string -> Bdd.man -> unit
(** Install the observer on [man] (replacing any previous one).
    Metrics are registered under [prefix] (default ["bdd"]):
    [.ut_grows], [.cache_resizes], [.gc_runs], [.gc_collected_nodes],
    [.node_limit_hits] (counters); [.unique_size], [.nodes_made]
    (gauges); [.gc_live_nodes] (histogram).

    Additionally the manager's {!Bdd.contention} snapshot is delta-fed
    (on every [Progress] and [Gc] beat, while recording) into the fixed,
    process-wide parallel-kernel counters [kernel.cas_retries],
    [kernel.stripe_waits], [kernel.ut_locks], [kernel.cache_races],
    [kernel.cache_inserts] and [kernel.cache_probes] — shared by all
    attached managers, all zero for private (non-[~shared]) managers
    that never contend.  The same beat delta-feeds [kernel.ut_full]
    (refused inserts at the {!Bdd.set_table_capacity} ceiling) and the
    chain-reduction pair [kernel.chain_folds] / [kernel.chain_mk] from
    {!Bdd.chain_stats}, plus the [kernel.chain_hit_ratio] gauge (folds
    per 100 mk calls; 0–100). *)

val detach : Bdd.man -> unit
(** Remove the observer (whoever installed it). *)

val observing : unit -> bool
(** True when metrics recording or tracing is on — the cue for
    pipelines to [attach] freshly created managers. *)
