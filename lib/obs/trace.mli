(** Span tracer emitting Chrome trace-event JSON, loadable in Perfetto
    (or chrome://tracing).

    Events are buffered per domain and flushed to one file by {!stop}.
    Each domain is a track ([tid] = domain id), so {!Mt.Runner} jobs
    render as parallel lanes and nested {!with_span} calls stack inside
    each lane.

    Disabled (the default), every entry point is one atomic load and a
    branch: the instrumented pipelines cost nothing measurable until
    {!start} is called.  Timestamps are wall-clock microseconds since
    {!start}, clamped to be nondecreasing within each track.

    {!stop} must not race live spans: call it after the domains that
    traced have been joined (as {!Mt.Runner.run} does before returning).
    Spans still open at {!stop} are closed synthetically so the emitted
    file always balances. *)

val start : out:string -> unit -> unit
(** Begin recording; the file is only written by {!stop}.  An already
    running session is stopped (and flushed) first. *)

val stop : unit -> unit
(** Write the trace file of the current session and disable tracing.
    No-op when not tracing. *)

val enabled : unit -> bool

val begin_span : ?args:(string * string) list -> string -> unit
(** Open a span on the calling domain's track.  Prefer {!with_span},
    which cannot unbalance the track. *)

val end_span : unit -> unit
(** Close the innermost open span of this domain (ignored if none). *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span; the span closes even on exceptions.
    When tracing is off this is one load-and-branch plus the call. *)

val instant : string -> unit
(** A point event on the calling domain's track. *)

val counter : string -> int -> unit
(** A sample on a named counter track (Perfetto draws these as a line
    chart above the thread lanes). *)

val validate : Json.t -> (int * int, string) result
(** Structural check of a trace file: a [traceEvents] array (or bare
    array) whose begin/end events balance per track with nondecreasing
    timestamps per track.  [Ok (events, tracks)] counts non-metadata
    events and distinct tracks. *)
