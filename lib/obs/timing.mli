(** Wall-clock and GC-delta measurement helpers.

    One home for the timing idiom that used to be hand-rolled in
    bench/main.ml, bench/micro.ml and lib/mt/runner.ml: read the clock,
    run the thunk, subtract, optionally bracket with [Gc.quick_stat] to
    attribute allocation. *)

val wall : unit -> float
(** [Unix.gettimeofday], the one clock every measurement in this
    repository uses (seconds since the epoch; compare differences only). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed wall-clock
    seconds.  The thunk's exceptions propagate unchanged. *)

(** OCaml GC counter deltas over a measured region (end minus start). *)
type gc_delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

val measure : ?full_major:bool -> (unit -> 'a) -> 'a * float * gc_delta
(** [measure f] is [time f] plus the GC counter deltas across the call.
    [full_major] (default [true]) runs [Gc.full_major] first so previous
    work's garbage does not bleed into the numbers. *)

val peak_rss_kb : unit -> int
(** Peak resident set size of this process in kilobytes, read from
    [VmHWM] in [/proc/self/status].  Returns [0] on platforms without
    that interface (the value is then absent, not zero memory). *)
