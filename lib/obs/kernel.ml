let observing () = Metrics.recording () || Trace.enabled ()

let attach ?(registry = Metrics.default) ?(prefix = "bdd") man =
  let counter n = Metrics.counter registry (prefix ^ "." ^ n)
  and gauge n = Metrics.gauge registry (prefix ^ "." ^ n)
  and histogram n = Metrics.histogram registry (prefix ^ "." ^ n) in
  let ut_grows = counter "ut_grows"
  and cache_resizes = counter "cache_resizes"
  and gc_runs = counter "gc_runs"
  and gc_collected = counter "gc_collected_nodes"
  and limit_hits = counter "node_limit_hits"
  and unique_size = gauge "unique_size"
  and nodes_made = gauge "nodes_made"
  and gc_live = histogram "gc_live_nodes" in
  (* Parallel-kernel contention counters live under a fixed "kernel."
     prefix: registration is idempotent, so every attached manager feeds
     the same process-wide counters (deltas only, so sums stay exact). *)
  let kcounter n = Metrics.counter registry ("kernel." ^ n) in
  let k_cas = kcounter "cas_retries"
  and k_waits = kcounter "stripe_waits"
  and k_locks = kcounter "ut_locks"
  and k_races = kcounter "cache_races"
  and k_inserts = kcounter "cache_inserts"
  and k_probes = kcounter "cache_probes"
  and k_ut_full = kcounter "ut_full"
  and k_chain_folds = kcounter "chain_folds"
  and k_chain_mk = kcounter "chain_mk"
  and k_chain_ratio = Metrics.gauge registry "kernel.chain_hit_ratio" in
  let klock = Mutex.create () in
  let klast = ref (Bdd.contention man) in
  let klast_full = ref (Bdd.ut_full_hits man) in
  let klast_chain = ref (Bdd.chain_stats man) in
  let flush_contention () =
    let now = Bdd.contention man in
    let now_full = Bdd.ut_full_hits man in
    let now_chain = Bdd.chain_stats man in
    Mutex.lock klock;
    let last = !klast in
    klast := now;
    let last_full = !klast_full in
    klast_full := now_full;
    let last_folds, last_mk = !klast_chain in
    klast_chain := now_chain;
    Mutex.unlock klock;
    Metrics.inc k_cas (now.Bdd.cas_retries - last.Bdd.cas_retries);
    Metrics.inc k_waits (now.Bdd.stripe_waits - last.Bdd.stripe_waits);
    Metrics.inc k_locks (now.Bdd.ut_locks - last.Bdd.ut_locks);
    Metrics.inc k_races (now.Bdd.cache_races - last.Bdd.cache_races);
    Metrics.inc k_inserts (now.Bdd.cache_inserts - last.Bdd.cache_inserts);
    Metrics.inc k_probes (now.Bdd.cache_probes - last.Bdd.cache_probes);
    Metrics.inc k_ut_full (now_full - last_full);
    let now_folds, now_mk = now_chain in
    Metrics.inc k_chain_folds (now_folds - last_folds);
    Metrics.inc k_chain_mk (now_mk - last_mk);
    (* chain folds per 100 mk calls, cumulative over the provider's
       lifetime (a gauge: ratios don't sum across managers) *)
    if now_mk > 0 then Metrics.set k_chain_ratio (100 * now_folds / now_mk)
  in
  let unique_track = prefix ^ ".unique_size" in
  (* the Progress beat already fires only every few hundred nodes; thin
     the counter-track samples further so traces stay small *)
  let beats = ref 0 in
  let observe ev =
    let rec_on = Metrics.recording () and tr_on = Trace.enabled () in
    match (ev : Bdd.event) with
    | Unique_grow { capacity; live } ->
        if rec_on then begin
          Metrics.inc ut_grows 1;
          Metrics.set unique_size live
        end;
        if tr_on then
          Trace.instant (Printf.sprintf "bdd.ut_grow %d" capacity)
    | Cache_resize { cache; capacity } ->
        if rec_on then Metrics.inc cache_resizes 1;
        if tr_on then
          Trace.instant
            (Printf.sprintf "bdd.cache_resize %s->%d" cache capacity)
    | Gc { collected; live } ->
        if rec_on then begin
          Metrics.inc gc_runs 1;
          Metrics.inc gc_collected collected;
          Metrics.observe gc_live live;
          Metrics.set unique_size live;
          flush_contention ()
        end;
        if tr_on then Trace.instant "bdd.gc"
    | Limit_hit { limit } ->
        if rec_on then Metrics.inc limit_hits 1;
        if tr_on then
          Trace.instant (Printf.sprintf "bdd.node_limit %d" limit)
    | Progress { nodes_made = nm; unique_size = us } ->
        if rec_on then begin
          Metrics.set unique_size us;
          Metrics.set nodes_made nm;
          flush_contention ()
        end;
        if tr_on then begin
          incr beats;
          if !beats land 3 = 0 then Trace.counter unique_track us
        end
  in
  Bdd.set_observer man (Some observe)

let detach man = Bdd.set_observer man None
