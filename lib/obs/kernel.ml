let observing () = Metrics.recording () || Trace.enabled ()

let attach ?(registry = Metrics.default) ?(prefix = "bdd") man =
  let counter n = Metrics.counter registry (prefix ^ "." ^ n)
  and gauge n = Metrics.gauge registry (prefix ^ "." ^ n)
  and histogram n = Metrics.histogram registry (prefix ^ "." ^ n) in
  let ut_grows = counter "ut_grows"
  and cache_resizes = counter "cache_resizes"
  and gc_runs = counter "gc_runs"
  and gc_collected = counter "gc_collected_nodes"
  and limit_hits = counter "node_limit_hits"
  and unique_size = gauge "unique_size"
  and nodes_made = gauge "nodes_made"
  and gc_live = histogram "gc_live_nodes" in
  let unique_track = prefix ^ ".unique_size" in
  (* the Progress beat already fires only every few hundred nodes; thin
     the counter-track samples further so traces stay small *)
  let beats = ref 0 in
  let observe ev =
    let rec_on = Metrics.recording () and tr_on = Trace.enabled () in
    match (ev : Bdd.event) with
    | Unique_grow { capacity; live } ->
        if rec_on then begin
          Metrics.inc ut_grows 1;
          Metrics.set unique_size live
        end;
        if tr_on then
          Trace.instant (Printf.sprintf "bdd.ut_grow %d" capacity)
    | Cache_resize { cache; capacity } ->
        if rec_on then Metrics.inc cache_resizes 1;
        if tr_on then
          Trace.instant
            (Printf.sprintf "bdd.cache_resize %s->%d" cache capacity)
    | Gc { collected; live } ->
        if rec_on then begin
          Metrics.inc gc_runs 1;
          Metrics.inc gc_collected collected;
          Metrics.observe gc_live live;
          Metrics.set unique_size live
        end;
        if tr_on then Trace.instant "bdd.gc"
    | Limit_hit { limit } ->
        if rec_on then Metrics.inc limit_hits 1;
        if tr_on then
          Trace.instant (Printf.sprintf "bdd.node_limit %d" limit)
    | Progress { nodes_made = nm; unique_size = us } ->
        if rec_on then begin
          Metrics.set unique_size us;
          Metrics.set nodes_made nm
        end;
        if tr_on then begin
          incr beats;
          if !beats land 3 = 0 then Trace.counter unique_track us
        end
  in
  Bdd.set_observer man (Some observe)

let detach man = Bdd.set_observer man None
