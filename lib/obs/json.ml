(* Minimal JSON tree, emitter and parser (moved out of bench/micro.ml so
   the metrics registry, the tracer, the benchmark reports and their
   validators all share one implementation). *)

type t =
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let num_int n = Num (float_of_int n)

let buf_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec emit buf indent j =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match j with
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.9g" f)
  | Str s ->
      Buffer.add_char buf '"';
      buf_escape buf s;
      Buffer.add_char buf '"'
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr xs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          emit buf (indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          Buffer.add_char buf '"';
          buf_escape buf k;
          Buffer.add_string buf "\": ";
          emit buf (indent + 2) v)
        kvs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 4096 in
  emit buf 0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

exception Parse_error of string

let parse s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos))
  in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
          | _ -> fail "unsupported escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some ('0' .. '9' | '-') -> Num (parse_number ())
    | _ -> fail "expected a value"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let write_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string j))

let read_file path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse contents

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_float = function Num f -> Some f | _ -> None
