(* Counters, gauges and log-binned histograms over striped atomic cells.

   Domain ids are process-unique and monotonically increasing, so they
   cannot index a fixed per-domain array directly; instead each metric
   owns [stripes] atomic cells and a domain accumulates into cell
   [id land (stripes - 1)].  Distinct live domains almost always land on
   distinct stripes (Mt.Runner's workers get consecutive ids) and then
   never contend; when two domains do share a stripe,
   [Atomic.fetch_and_add] keeps the count exact.  Snapshots sum the
   stripes, so a reader may miss an in-flight increment but never
   observes a torn or decreasing counter. *)

let stripes = 64
let stripe () = (Domain.self () :> int) land (stripes - 1)
let sum cells = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 cells
let make_cells () = Array.init stripes (fun _ -> Atomic.make 0)

type counter = { c_name : string; c_cells : int Atomic.t array }
type gauge = { g_name : string; g_cell : int Atomic.t }

(* Histogram bin [b] holds values whose bit width is [b], i.e. the range
   [2^(b-1), 2^b - 1]; bin 0 holds values <= 0.  63 bins cover every
   OCaml int. *)
let nbins = 64

type histogram = {
  h_name : string;
  h_count : int Atomic.t array;
  h_sum : int Atomic.t array;
  h_bins : int Atomic.t array; (* one cell per bin; fetch_and_add *)
}

type item = C of counter | G of gauge | H of histogram

type t = {
  lock : Mutex.t;
  tbl : (string, item) Hashtbl.t;
  mutable rev_order : item list;
}

let create () =
  { lock = Mutex.create (); tbl = Hashtbl.create 64; rev_order = [] }

let default = create ()

let recording_flag = Atomic.make false
let set_recording b = Atomic.set recording_flag b
let recording () = Atomic.get recording_flag

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register t name make match_item =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some item -> (
          match match_item item with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf "Obs.Metrics: %S is already a %s" name
                   (kind_name item)))
      | None ->
          let item, v = make () in
          Hashtbl.add t.tbl name item;
          t.rev_order <- item :: t.rev_order;
          v)

let counter t name =
  register t name
    (fun () ->
      let c = { c_name = name; c_cells = make_cells () } in
      (C c, c))
    (function C c -> Some c | _ -> None)

let gauge t name =
  register t name
    (fun () ->
      let g = { g_name = name; g_cell = Atomic.make 0 } in
      (G g, g))
    (function G g -> Some g | _ -> None)

let histogram t name =
  register t name
    (fun () ->
      let h =
        {
          h_name = name;
          h_count = make_cells ();
          h_sum = make_cells ();
          h_bins = Array.init nbins (fun _ -> Atomic.make 0);
        }
      in
      (H h, h))
    (function H h -> Some h | _ -> None)

let inc c n =
  if n > 0 then ignore (Atomic.fetch_and_add c.c_cells.(stripe ()) n)

let set g v = Atomic.set g.g_cell v

let bin_of v =
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
  if v <= 0 then 0 else bits 0 v

let observe h v =
  let s = stripe () in
  ignore (Atomic.fetch_and_add h.h_count.(s) 1);
  ignore (Atomic.fetch_and_add h.h_sum.(s) (max 0 v));
  ignore (Atomic.fetch_and_add h.h_bins.(bin_of v) 1)

let counter_value c = sum c.c_cells
let gauge_value g = Atomic.get g.g_cell
let histogram_count h = sum h.h_count

let quantile h p =
  let total = histogram_count h in
  if total = 0 then 0
  else
    let target =
      let t = int_of_float (ceil (p *. float_of_int total)) in
      max 1 (min total t)
    in
    let rec walk b cum =
      if b >= nbins then max_int
      else
        let cum = cum + Atomic.get h.h_bins.(b) in
        if cum >= target then (1 lsl b) - 1 else walk (b + 1) cum
    in
    walk 0 0

let record_stats t ~prefix stats =
  List.iter (fun (key, v) -> set (gauge t (prefix ^ "." ^ key)) v) stats

let schema_version = "obs-metrics/v1"

let snapshot t =
  let items =
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () -> List.rev t.rev_order)
  in
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (function
      | C c ->
          counters :=
            Json.Obj
              [ ("name", Str c.c_name); ("value", Json.num_int (counter_value c)) ]
            :: !counters
      | G g ->
          gauges :=
            Json.Obj
              [ ("name", Str g.g_name); ("value", Json.num_int (gauge_value g)) ]
            :: !gauges
      | H h ->
          let bins = ref [] in
          for b = nbins - 1 downto 0 do
            let n = Atomic.get h.h_bins.(b) in
            if n > 0 then
              (* bin b holds values of bit width b: upper bound 2^b - 1 *)
              bins :=
                Json.Obj
                  [
                    ("le", Json.num_int ((1 lsl b) - 1));
                    ("count", Json.num_int n);
                  ]
                :: !bins
          done;
          histograms :=
            Json.Obj
              [
                ("name", Str h.h_name);
                ("count", Json.num_int (histogram_count h));
                ("sum", Json.num_int (sum h.h_sum));
                ("bins", Arr !bins);
              ]
            :: !histograms)
    items;
  Json.Obj
    [
      ("schema", Str schema_version);
      ("unix_time", Num (Unix.gettimeofday ()));
      ("counters", Arr (List.rev !counters));
      ("gauges", Arr (List.rev !gauges));
      ("histograms", Arr (List.rev !histograms));
    ]

let write t path = Json.write_file path (snapshot t)

(* --- snapshot validation ------------------------------------------- *)

let validate j =
  let ( let* ) = Result.bind in
  let error fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let field what k o =
    match Json.member k o with
    | Some v -> Ok v
    | None -> error "%s: missing field %S" what k
  in
  let number what k o =
    let* v = field what k o in
    match Json.to_float v with
    | Some f -> Ok f
    | None -> error "%s: field %S is not a number" what k
  in
  let name_of what o =
    match Json.member "name" o with
    | Some (Json.Str s) -> Ok s
    | _ -> error "%s: missing or non-string name" what
  in
  let array what k o =
    match Json.member k o with
    | Some (Json.Arr xs) -> Ok xs
    | Some _ -> error "%s: %S is not an array" what k
    | None -> error "%s: missing field %S" what k
  in
  let rec each fn = function
    | [] -> Ok ()
    | x :: rest ->
        let* () = fn x in
        each fn rest
  in
  let* () =
    match Json.member "schema" j with
    | Some (Json.Str s) when s = schema_version -> Ok ()
    | Some (Json.Str s) -> error "schema %S, want %S" s schema_version
    | _ -> error "missing schema string"
  in
  let* _ = number "snapshot" "unix_time" j in
  let* counters = array "snapshot" "counters" j in
  let* () =
    each
      (fun c ->
        let* name = name_of "counter" c in
        let* v = number ("counter " ^ name) "value" c in
        if v < 0. then error "counter %s is negative" name else Ok ())
      counters
  in
  let* gauges = array "snapshot" "gauges" j in
  let* () =
    each
      (fun g ->
        let* name = name_of "gauge" g in
        let* _ = number ("gauge " ^ name) "value" g in
        Ok ())
      gauges
  in
  let* histograms = array "snapshot" "histograms" j in
  each
    (fun h ->
      let* name = name_of "histogram" h in
      let what = "histogram " ^ name in
      let* count = number what "count" h in
      let* _ = number what "sum" h in
      let* bins = array what "bins" h in
      let* total =
        List.fold_left
          (fun acc b ->
            let* prev_le, total = acc in
            let* le = number what "le" b in
            let* n = number what "count" b in
            if le <= prev_le then error "%s: bin bounds not increasing" what
            else Ok (le, total +. n))
          (Ok (-1., 0.))
          bins
      in
      if snd total <> count then
        error "%s: bin counts sum to %.0f, count says %.0f" what (snd total)
          count
      else Ok ())
    histograms

let named_values section j =
  match Json.member section j with
  | Some (Json.Arr cs) ->
      List.filter_map
        (fun c ->
          match (Json.member "name" c, Json.member "value" c) with
          | Some (Json.Str n), Some (Json.Num v) -> Some (n, v)
          | _ -> None)
        cs
  | _ -> []

let counters_of_json = named_values "counters"
let gauges_of_json = named_values "gauges"
