let wall = Unix.gettimeofday

let time f =
  let t0 = wall () in
  let r = f () in
  (r, wall () -. t0)

type gc_delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

let measure ?(full_major = true) f =
  if full_major then Gc.full_major ();
  let g0 = Gc.quick_stat () in
  let r, elapsed = time f in
  let g1 = Gc.quick_stat () in
  ( r,
    elapsed,
    {
      minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
      major_words = g1.Gc.major_words -. g0.Gc.major_words;
      minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
      major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
    } )

(* Peak resident set size, from the kernel's high-water mark.  Linux
   exposes it as VmHWM in /proc/self/status (kB); platforms without that
   file report 0 so callers can emit the field unconditionally. *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec scan () =
            match input_line ic with
            | exception End_of_file -> 0
            | line -> (
                match Scanf.sscanf line "VmHWM: %d kB" (fun v -> v) with
                | v -> v
                | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
                    scan ())
          in
          scan ())
