let wall = Unix.gettimeofday

let time f =
  let t0 = wall () in
  let r = f () in
  (r, wall () -. t0)

type gc_delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

let measure ?(full_major = true) f =
  if full_major then Gc.full_major ();
  let g0 = Gc.quick_stat () in
  let r, elapsed = time f in
  let g1 = Gc.quick_stat () in
  ( r,
    elapsed,
    {
      minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
      major_words = g1.Gc.major_words -. g0.Gc.major_words;
      minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
      major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
    } )
