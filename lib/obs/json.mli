(** A tiny JSON tree: enough to emit the observability reports and to
    validate one.  Shared by {!Metrics} snapshots, {!Trace} files and the
    benchmark reports (bench/micro.exe), which all used to carry private
    copies of the same emitter. *)

type t =
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val num_int : int -> t

val to_string : t -> string
(** Pretty-printed with two-space indentation and a trailing newline.
    Integral [Num]s below 1e15 print without a decimal point. *)

exception Parse_error of string

val parse : string -> t
(** Recursive-descent parser for the validators: full JSON except unicode
    escapes, which {!to_string} never produces.  @raise Parse_error with a
    byte offset on malformed input. *)

val write_file : string -> t -> unit
val read_file : string -> t
(** [read_file path] parses the whole file.  @raise Parse_error and
    [Sys_error] as appropriate. *)

(** {1 Accessors for validators} *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on anything else or a missing key. *)

val to_float : t -> float option
(** The payload of a [Num]. *)
