(* Chrome trace-event tracer with per-domain buffers.

   A session owns a list of per-domain buffers.  A domain finds its
   buffer through domain-local storage, keyed by a session generation
   number so buffers from a previous session are never reused; the
   buffer itself is registered with the session under a mutex (once per
   domain per session) and thereafter the domain appends with no
   synchronization at all — buffers survive the domain's exit because
   the session holds them.

   The enabled flag is the only thing the disabled path reads: one
   atomic load and a branch. *)

type ev = {
  ph : char; (* 'B' begin, 'E' end, 'i' instant, 'C' counter *)
  name : string;
  ts : float; (* microseconds since session start *)
  value : int; (* counter payload *)
  args : (string * string) list;
}

type buf = {
  tid : int;
  mutable evs : ev array;
  mutable len : int;
  mutable last_ts : float;
  mutable depth : int; (* open spans, to synthesize ends at stop *)
}

type session = {
  out : string;
  t0 : float; (* microseconds *)
  lock : Mutex.t;
  mutable bufs : buf list;
}

let enabled_flag = Atomic.make false
let generation = Atomic.make 0
let current : session option ref = ref None

let enabled () = Atomic.get enabled_flag

let dummy_ev = { ph = 'i'; name = ""; ts = 0.; value = 0; args = [] }

let dls_key : (int * buf) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let my_buf s =
  let gen = Atomic.get generation in
  let slot = Domain.DLS.get dls_key in
  match !slot with
  | Some (g, b) when g = gen -> b
  | _ ->
      let b =
        {
          tid = (Domain.self () :> int);
          evs = Array.make 256 dummy_ev;
          len = 0;
          last_ts = 0.;
          depth = 0;
        }
      in
      Mutex.lock s.lock;
      s.bufs <- b :: s.bufs;
      Mutex.unlock s.lock;
      slot := Some (gen, b);
      b

let push b ev =
  if b.len = Array.length b.evs then begin
    let evs = Array.make (2 * b.len) dummy_ev in
    Array.blit b.evs 0 evs 0 b.len;
    b.evs <- evs
  end;
  b.evs.(b.len) <- ev;
  b.len <- b.len + 1

let now_us s b =
  let ts = (Unix.gettimeofday () *. 1e6) -. s.t0 in
  let ts = Float.max ts b.last_ts in
  b.last_ts <- ts;
  ts

let emit ph name value args =
  if Atomic.get enabled_flag then
    match !current with
    | None -> ()
    | Some s ->
        let b = my_buf s in
        (match ph with
        | 'B' -> b.depth <- b.depth + 1
        | 'E' -> b.depth <- b.depth - 1
        | _ -> ());
        push b { ph; name; ts = now_us s b; value; args }

let begin_span ?(args = []) name = emit 'B' name 0 args

let end_span () =
  (* refuse to unbalance the track on a stray end *)
  if Atomic.get enabled_flag then
    match !current with
    | None -> ()
    | Some s ->
        let b = my_buf s in
        if b.depth > 0 then begin
          b.depth <- b.depth - 1;
          push b { ph = 'E'; name = ""; ts = now_us s b; value = 0; args = [] }
        end

let with_span ?args name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    begin_span ?args name;
    Fun.protect ~finally:end_span f
  end

let instant name = emit 'i' name 0 []
let counter name v = emit 'C' name v []

(* --- flushing ------------------------------------------------------ *)

let json_of_ev pid tid ev =
  let base =
    [
      ("pid", Json.num_int pid);
      ("tid", Json.num_int tid);
      ("ts", Json.Num ev.ts);
    ]
  in
  let args_obj kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) kvs) in
  match ev.ph with
  | 'B' ->
      Json.Obj
        (("name", Json.Str ev.name)
        :: ("cat", Json.Str "dac98")
        :: ("ph", Json.Str "B")
        :: base
        @ if ev.args = [] then [] else [ ("args", args_obj ev.args) ])
  | 'E' -> Json.Obj (("ph", Json.Str "E") :: base)
  | 'i' ->
      Json.Obj
        (("name", Json.Str ev.name)
        :: ("cat", Json.Str "dac98")
        :: ("ph", Json.Str "i")
        :: ("s", Json.Str "t")
        :: base)
  | 'C' ->
      Json.Obj
        (("name", Json.Str ev.name)
        :: ("ph", Json.Str "C")
        :: base
        @ [ ("args", Json.Obj [ ("value", Json.num_int ev.value) ]) ])
  | _ -> assert false

let flush s =
  let pid = Unix.getpid () in
  let bufs =
    List.sort (fun a b -> compare a.tid b.tid) s.bufs
  in
  let meta =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.num_int pid);
        ("args", Json.Obj [ ("name", Json.Str "dac98_bdd") ]);
      ]
    :: List.map
         (fun b ->
           Json.Obj
             [
               ("name", Json.Str "thread_name");
               ("ph", Json.Str "M");
               ("pid", Json.num_int pid);
               ("tid", Json.num_int b.tid);
               ( "args",
                 Json.Obj
                   [ ("name", Json.Str (Printf.sprintf "domain %d" b.tid)) ] );
             ])
         bufs
  in
  let events =
    List.concat_map
      (fun b ->
        let evs = ref [] in
        (* close spans the program left open, newest timestamp *)
        for _ = 1 to b.depth do
          evs :=
            json_of_ev pid b.tid
              { ph = 'E'; name = ""; ts = b.last_ts; value = 0; args = [] }
            :: !evs
        done;
        for i = b.len - 1 downto 0 do
          evs := json_of_ev pid b.tid b.evs.(i) :: !evs
        done;
        !evs)
      bufs
  in
  Json.write_file s.out
    (Json.Obj
       [ ("traceEvents", Arr (meta @ events)); ("displayTimeUnit", Str "ms") ])

let stop () =
  Atomic.set enabled_flag false;
  match !current with
  | None -> ()
  | Some s ->
      current := None;
      flush s

let start ~out () =
  stop ();
  ignore (Atomic.fetch_and_add generation 1);
  current :=
    Some
      {
        out;
        t0 = Unix.gettimeofday () *. 1e6;
        lock = Mutex.create ();
        bufs = [];
      };
  Atomic.set enabled_flag true

(* --- validation ---------------------------------------------------- *)

let validate j =
  let error fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let events =
    match j with
    | Json.Arr evs -> Ok evs
    | Json.Obj _ -> (
        match Json.member "traceEvents" j with
        | Some (Json.Arr evs) -> Ok evs
        | _ -> error "missing traceEvents array")
    | _ -> error "trace is neither an object nor an array"
  in
  match events with
  | Error _ as e -> e
  | Ok events -> (
      let tracks : (int, int * float) Hashtbl.t = Hashtbl.create 16 in
      (* tid -> open span count, last timestamp *)
      let count = ref 0 in
      let rec go i = function
        | [] -> Ok ()
        | ev :: rest -> (
            let ph =
              match Json.member "ph" ev with
              | Some (Json.Str s) when String.length s = 1 -> Ok s.[0]
              | _ -> error "event %d: missing ph" i
            in
            match ph with
            | Error _ as e -> e
            | Ok 'M' -> go (i + 1) rest
            | Ok ph -> (
                incr count;
                let tid =
                  match Json.member "tid" ev with
                  | Some (Json.Num t) -> Ok (int_of_float t)
                  | _ -> error "event %d: missing tid" i
                and ts =
                  match Json.member "ts" ev with
                  | Some (Json.Num t) -> Ok t
                  | _ -> error "event %d: missing ts" i
                in
                match (tid, ts) with
                | Error e, _ | _, Error e -> Error e
                | Ok tid, Ok ts ->
                    let depth, last =
                      Option.value ~default:(0, Float.neg_infinity)
                        (Hashtbl.find_opt tracks tid)
                    in
                    if ts < last then
                      error
                        "event %d: timestamp %f goes backwards on track %d" i
                        ts tid
                    else
                      let depth =
                        match ph with 'B' -> depth + 1 | 'E' -> depth - 1 | _ -> depth
                      in
                      if depth < 0 then
                        error "event %d: end without begin on track %d" i tid
                      else begin
                        Hashtbl.replace tracks tid (depth, ts);
                        go (i + 1) rest
                      end))
      in
      match go 0 events with
      | Error _ as e -> e
      | Ok () ->
          let unbalanced = ref None in
          Hashtbl.iter
            (fun tid (depth, _) ->
              if depth <> 0 && !unbalanced = None then
                unbalanced := Some (tid, depth))
            tracks;
          (match !unbalanced with
          | Some (tid, depth) ->
              error "track %d ends with %d unclosed span(s)" tid depth
          | None -> Ok (!count, Hashtbl.length tracks)))
