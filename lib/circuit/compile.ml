type latch = { name : string; init : bool; cur : int; next : int; fn : Bdd.t }

type t = {
  man : Bdd.man;
  circuit : Circuit.t;
  latches : latch array;
  input_vars : (string * int) list;
  output_fns : (string * Bdd.t) list;
  init : Bdd.t;
}

(* Allocate variables in depth-first discovery order from the output and
   next-state roots, pairing each latch's current and next variables. *)
let allocate man c =
  let latch_var = Hashtbl.create 16 in
  (* signal -> (cur, next) *)
  let input_var = Hashtbl.create 16 in
  let seen = Hashtbl.create 64 in
  let pending_latches = Queue.create () in
  let fresh () = Bdd.topvar (Bdd.new_var man) in
  let rec scan s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.add seen s ();
      match Circuit.gate c s with
      | Circuit.Const _ -> ()
      | Circuit.Input n ->
          if not (Hashtbl.mem input_var s) then
            Hashtbl.add input_var s (n, fresh ())
      | Circuit.Not a -> scan a
      | Circuit.And (a, b) | Circuit.Or (a, b) | Circuit.Xor (a, b) ->
          scan a;
          scan b
      | Circuit.Mux (a, b, d) ->
          scan a;
          scan b;
          scan d
      | Circuit.Latch { next; _ } ->
          if not (Hashtbl.mem latch_var s) then begin
            let cur = fresh () in
            let nxt = fresh () in
            Hashtbl.add latch_var s (cur, nxt);
            Queue.add next pending_latches
          end
    end
  in
  List.iter (fun (_, s) -> scan s) (Circuit.outputs c);
  List.iter scan (Circuit.latches c);
  while not (Queue.is_empty pending_latches) do
    scan (Queue.take pending_latches)
  done;
  (latch_var, input_var)

let compile ?man c =
  let man = match man with Some m -> m | None -> Bdd.create () in
  let latch_var, input_var = allocate man c in
  let memo = Hashtbl.create 256 in
  let rec build s =
    match Hashtbl.find_opt memo s with
    | Some f -> f
    | None ->
        let f =
          match Circuit.gate c s with
          | Circuit.Const true -> Bdd.tt man
          | Circuit.Const false -> Bdd.ff man
          | Circuit.Input _ -> Bdd.ithvar man (snd (Hashtbl.find input_var s))
          | Circuit.Not a -> Bdd.bnot man (build a)
          | Circuit.And (a, b) -> Bdd.band man (build a) (build b)
          | Circuit.Or (a, b) -> Bdd.bor man (build a) (build b)
          | Circuit.Xor (a, b) -> Bdd.bxor man (build a) (build b)
          | Circuit.Mux (sel, t, e) ->
              Bdd.ite man (build sel) (build t) (build e)
          | Circuit.Latch _ ->
              Bdd.ithvar man (fst (Hashtbl.find latch_var s))
        in
        Hashtbl.add memo s f;
        f
  in
  let latches =
    Array.of_list
      (List.map
         (fun s ->
           match Circuit.gate c s with
           | Circuit.Latch { init; next; name } ->
               let cur, nxt = Hashtbl.find latch_var s in
               { name; init; cur; next = nxt; fn = build next }
           | _ -> assert false)
         (Circuit.latches c))
  in
  let output_fns = List.map (fun (n, s) -> (n, build s)) (Circuit.outputs c) in
  let init =
    Bdd.cube_of_literals man
      (Array.to_list (Array.map (fun l -> (l.cur, l.init)) latches))
  in
  let input_vars =
    Hashtbl.fold (fun _ nv acc -> nv :: acc) input_var []
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  { man; circuit = c; latches; input_vars; output_fns; init }

let cur_vars t = Array.map (fun l -> l.cur) t.latches
let next_vars t = Array.map (fun l -> l.next) t.latches
let input_var_array t = Array.of_list (List.map snd t.input_vars)

let rename_map ~from_ ~to_ =
  let tbl = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.add tbl v to_.(i)) from_;
  fun v -> Option.value ~default:v (Hashtbl.find_opt tbl v)

let next_to_cur t f =
  Bdd.permute t.man f (rename_map ~from_:(next_vars t) ~to_:(cur_vars t))

let cur_to_next t f =
  Bdd.permute t.man f (rename_map ~from_:(cur_vars t) ~to_:(next_vars t))

let state_count t f =
  (* [f] must range over current-state variables only *)
  Bdd.count_minterms t.man f ~nvars:(Array.length t.latches)

let roots t =
  (t.init :: Array.to_list (Array.map (fun l -> l.fn) t.latches))
  @ List.map snd t.output_fns

type exported = {
  x_circuit : Circuit.t;
  x_latches : (string * bool * int * int) array; (* name, init, cur, next *)
  x_input_vars : (string * int) list;
  x_output_names : string list;
  x_roots : Bdd.serialized; (* shared serialization of [roots] *)
}

let export t =
  {
    x_circuit = t.circuit;
    x_latches = Array.map (fun l -> (l.name, l.init, l.cur, l.next)) t.latches;
    x_input_vars = t.input_vars;
    x_output_names = List.map fst t.output_fns;
    x_roots = Bdd.export_list t.man (roots t);
  }

let import man x =
  (* declare every source variable so the var numbering carried by
     [x_latches] and [x_input_vars] is meaningful in the destination *)
  if x.x_roots.Bdd.s_nvars > 0 then
    ignore (Bdd.ithvar man (x.x_roots.Bdd.s_nvars - 1));
  match Bdd.import_list man x.x_roots with
  | init :: rest ->
      let nl = Array.length x.x_latches in
      let fns = Array.of_list (List.filteri (fun i _ -> i < nl) rest) in
      let outs = List.filteri (fun i _ -> i >= nl) rest in
      if Array.length fns <> nl || List.length outs <> List.length x.x_output_names
      then invalid_arg "Compile.import: root count mismatch";
      {
        man;
        circuit = x.x_circuit;
        latches =
          Array.mapi
            (fun i (name, init, cur, next) ->
              { name; init; cur; next; fn = fns.(i) })
            x.x_latches;
        input_vars = x.x_input_vars;
        output_fns = List.map2 (fun n f -> (n, f)) x.x_output_names outs;
        init;
      }
  | [] -> invalid_arg "Compile.import: empty root list"

let with_roots t roots =
  match roots with
  | init :: rest ->
      let nl = Array.length t.latches in
      let fns = Array.of_list (List.filteri (fun i _ -> i < nl) rest) in
      let outs = List.filteri (fun i _ -> i >= nl) rest in
      if Array.length fns <> nl || List.length outs <> List.length t.output_fns
      then invalid_arg "Compile.with_roots: length mismatch";
      {
        t with
        init;
        latches = Array.mapi (fun i l -> { l with fn = fns.(i) }) t.latches;
        output_fns = List.map2 (fun (n, _) f -> (n, f)) t.output_fns outs;
      }
  | [] -> invalid_arg "Compile.with_roots: empty list"
