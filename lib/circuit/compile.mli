(** Compilation of circuits to BDDs.

    Allocates BDD variables for latches and primary inputs and builds the
    next-state and output functions.  The default variable order interleaves
    each latch's current- and next-state variables and places the leaves in
    depth-first discovery order from the outputs — the standard static
    order for image computation (cf. Jeong et al., the paper's [12]). *)

type latch = {
  name : string;
  init : bool;
  cur : int;  (** current-state BDD variable *)
  next : int;  (** next-state BDD variable *)
  fn : Bdd.t;  (** next-state function over current-state and input vars *)
}

type t = {
  man : Bdd.man;
  circuit : Circuit.t;
  latches : latch array;  (** in {!Circuit.latches} order *)
  input_vars : (string * int) list;
  output_fns : (string * Bdd.t) list;
  init : Bdd.t;  (** the initial-state cube over current-state variables *)
}

val compile : ?man:Bdd.man -> Circuit.t -> t
(** Compile into [man] (fresh by default).  When a manager is supplied its
    existing variables are left alone; new ones are appended. *)

val cur_vars : t -> int array
val next_vars : t -> int array
val input_var_array : t -> int array

val next_to_cur : t -> Bdd.t -> Bdd.t
(** Rename next-state variables to current-state variables. *)

val cur_to_next : t -> Bdd.t -> Bdd.t

val state_count : t -> Bdd.t -> float
(** Number of states in a predicate over current-state variables. *)

val roots : t -> Bdd.t list
(** Every BDD the structure owns (initial cube, next-state and output
    functions) — pass these through {!Bdd.gc} or {!Bdd.reorder} to keep
    the structure valid across maintenance. *)

val with_roots : t -> Bdd.t list -> t
(** Rebuild the structure from the list produced by maintenance applied to
    [roots t] (same length and order). *)

type exported
(** A compiled circuit detached from its manager: plain data plus one
    shared {!Bdd.serialized} of every root, ready to cross a domain
    boundary or be rebuilt elsewhere. *)

val export : t -> exported

val import : Bdd.man -> exported -> t
(** Rebuild in [man] (typically a worker domain's private manager).
    Variable numbering is preserved; all source variables are declared in
    the destination. *)
