(* Compressed decision diagrams: one hash-consed kernel, four node
   semantics.

   Every manager is created in one of four [mode]s and all values built
   in it share that mode's interpretation:

   - [Bdd]   plain ROBDDs: a skipped level is don't-care.
   - [Zdd]   zero-suppressed DDs: a skipped level is "variable = 0";
             the [hi = ff] reduction rule replaces the [hi = lo] rule.
   - [Cbdd]  chain-reduced BDDs (Bryant, TACAS'18 direction): each node
             carries a [top..bot] range meaning "x_top .. x_{bot-1} are
             all 0, then branch on x_bot", folding the long ¬x-chains
             plain BDDs spend most of their nodes on.
   - [Czdd]  chain-reduced ZDDs: the [top..bot-1] run is don't-care,
             folding the DC-chains plain ZDDs spend most of their nodes
             on.

   Whatever the mode, a value denotes an ordinary Boolean function over
   the manager's fixed variable universe [0 .. nvars-1], and the public
   operations (band/bor/bxor/bnot/ite/exists/restrict/eval/counting) are
   function-level: the same inputs denote the same function in every
   mode.  Conversions between modes are semantic and exact.  See
   DESIGN.md §Compressed representations for the reduction rules and the
   canonicity argument. *)

type mode = Bdd | Zdd | Cbdd | Czdd

val mode_name : mode -> string
val mode_of_string : string -> mode option
val all_modes : mode list

type man
type t

(* [create ~nvars ()] makes a manager over the fixed universe
   [0 .. nvars-1].  The universe cannot grow later: in the
   zero-suppressed modes the meaning of every value depends on it.
   [~shared:true] makes the unique table striped and lock-protected so
   the manager can be used from several domains (chain tags are part of
   the hash-cons key in both layouts). *)
val create : nvars:int -> ?shared:bool -> ?mode:mode -> unit -> man

val mode : man -> mode
val is_shared : man -> bool
val nvars : man -> int

(* Constant false / the tautology over the universe.  In [Zdd] mode the
   tautology is a don't-care chain of [nvars] nodes; in [Czdd] it folds
   to a single node; in [Bdd]/[Cbdd] it is the true leaf. *)
val ff : man -> t
val tt : man -> t

val equal : t -> t -> bool
val id : t -> int

(* Structure of a value: either a leaf, or a node covering levels
   [top..bot] (top = bot except in the chain modes) with children below
   level [bot]. *)
val view : t -> [ `Leaf of bool | `Node of int * int * t * t ]

(* The single positive/negative literal as a function (don't-care on
   every other variable), and a conjunction of literals. *)
val ithvar : man -> int -> t
val nithvar : man -> int -> t
val cube_of_literals : man -> (int * bool) list -> t

val bnot : man -> t -> t
val band : man -> t -> t -> t
val bor : man -> t -> t -> t
val bxor : man -> t -> t -> t
val ite : man -> t -> t -> t -> t
val conj : man -> t list -> t
val disj : man -> t list -> t

(* Quantification over a list of variables, and Coudert–Madre-style
   generalized-cofactor simplification: [restrict m f ~care] agrees with
   [f] wherever [care] holds. *)
val exists : man -> vars:int list -> t -> t
val forall : man -> vars:int list -> t -> t
val restrict : man -> t -> care:t -> t

val eval : man -> t -> (int -> bool) -> bool

(* Distinct reachable nodes, leaves included (same convention as
   [Bdd.size]). *)
val size : t -> int

(* Number of satisfying assignments over [nvars] variables; [~nvars]
   greater than the manager's universe scales by the extra don't-care
   dimensions. *)
val count_minterms : man -> t -> nvars:int -> float

(* Conversions.  [of_bdd]/[to_bdd] map source *levels* to variables
   [0..] (for identity-ordered managers this is the identity renaming);
   [to_bdd] grows the target manager as needed.  [convert] requires both
   managers to share the same universe size. *)
val of_bdd : man -> Bdd.man -> Bdd.t -> t
val to_bdd : man -> Bdd.man -> t -> Bdd.t
val convert : src:man -> dst:man -> t -> t

(* Chain-reduction accounting: [chain_counters m] is
   [(folds, mk_calls)] — how many level constructions folded into an
   existing chain node vs. total level constructions.  Feed a [Bdd.man]
   with [Bdd.set_chain_stats] to surface these as [kernel.chain_*]
   metrics. *)
val chain_counters : man -> int * int
val nodes_made : man -> int
val unique_size : man -> int
val stats : man -> (string * int) list

(* Serialization.  The DDC1 frame stores the mode byte, the universe
   size and per-node [(top, bot, hi, lo)] records; import re-canonicalizes
   every record through [mk], so foreign or adversarial frames either
   yield canonical values or raise [Corrupt].  Importing a frame of a
   different mode routes through a temporary manager of the frame's mode
   and a semantic [convert].  [read_string] additionally accepts legacy
   plain-BDD "BDD1" frames (as written by [Bdd.serialized_to_string] and
   embedded in BDC2 checkpoints) into any mode. *)
type serialized = {
  d_mode : mode;
  d_nvars : int;
  d_nodes : (int * int * int * int) array;
      (* (top, bot, hi, lo); refs: 0 = ff, 1 = true leaf, i+2 = node i *)
  d_roots : int array;
}

exception Corrupt of string

val export : man -> t -> serialized
val export_list : man -> t list -> serialized
val import : man -> serialized -> t
val import_list : man -> serialized -> t list
val serialized_to_string : serialized -> string
val serialized_of_string : string -> serialized
val read_string : man -> string -> t list
val save : string -> serialized -> unit
val load : string -> serialized
