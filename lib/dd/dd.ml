(* Four-mode compressed decision-diagram kernel.  See dd.mli for the
   semantics of each mode and DESIGN.md §Compressed representations for
   the reduction rules and why the context-free recursion below is
   sound.

   Conventions used throughout:

   - every value is interpreted "at a context level L": the caller knows
     which levels above the value's top are implicitly skipped.  In the
     Bdd/Cbdd modes a skipped level is don't-care, in Zdd/Czdd it means
     the variable is 0.  Because that implicit prefix is a *product*
     term identical on both operands, it distributes over AND/OR/XOR and
     the apply recursion never needs the context explicitly.
   - a node covers levels [top..bot]: levels top..bot-1 are the chain
     run (forced 0 in Cbdd, don't-care in Czdd; top = bot in the plain
     modes) and the branch on level bot leads to [hi]/[lo], both of
     which live strictly below [bot]. *)

type mode = Bdd | Zdd | Cbdd | Czdd

let mode_name = function
  | Bdd -> "bdd"
  | Zdd -> "zdd"
  | Cbdd -> "cbdd"
  | Czdd -> "czdd"

let mode_of_string = function
  | "bdd" -> Some Bdd
  | "zdd" -> Some Zdd
  | "cbdd" -> Some Cbdd
  | "czdd" -> Some Czdd
  | _ -> None

let all_modes = [ Bdd; Zdd; Cbdd; Czdd ]

type t = { uid : int; node : node }
and node = Leaf of bool | Node of { top : int; bot : int; hi : t; lo : t }

let equal a b = a == b
let id u = u.uid

let view u =
  match u.node with
  | Leaf b -> `Leaf b
  | Node n -> `Node (n.top, n.bot, n.hi, n.lo)

(* effective top level: leaves sort below every variable *)
let etop u = match u.node with Leaf _ -> max_int | Node n -> n.top

(* ---------------------------------------------------------------- *)
(* Unique table: open-addressed stripes keyed (top, bot, hi, lo).
   Sequential managers use a single stripe with no locking; shared
   managers use 64 mutex-protected stripes selected by hash, so the
   chain tags take part in hash-consing under concurrency exactly as
   they do sequentially. *)

type stripe = {
  lock : Mutex.t;
  mutable slots : t array; (* dummy-filled; power-of-two length *)
  mutable count : int;
}

type centry = { ck1 : int; ck2 : int; ck3 : int; cres : t }

(* direct-mapped lossy cache; entries are immutable records written with
   a single pointer store, so concurrent readers never see a torn
   entry *)
type cache = centry option array

type man = {
  mmode : mode;
  mshared : bool;
  m_nvars : int;
  stripes : stripe array;
  smask : int; (* stripes selector mask *)
  dummy : t;
  c_ff : t;
  c_leaf1 : t;
  next_uid : int Atomic.t;
  m_nodes_made : int Atomic.t;
  m_chain_folds : int Atomic.t;
  m_chain_mk : int Atomic.t;
  mutable taut_v : t option;
  mutable op_cache : cache option; (* and/or/xor, tagged *)
  mutable ite_cache : cache option;
  mutable restrict_cache : cache option;
}

let mode m = m.mmode
let is_shared m = m.mshared
let nvars m = m.m_nvars
let ff m = m.c_ff

let n_stripes_shared = 64
let cache_bits = 16

let create ~nvars ?(shared = false) ?(mode = Bdd) () =
  if nvars < 0 then invalid_arg "Dd.create: negative nvars";
  let dummy = { uid = -1; node = Leaf false } in
  let c_ff = { uid = 0; node = Leaf false } in
  let c_leaf1 = { uid = 1; node = Leaf true } in
  let nstripes = if shared then n_stripes_shared else 1 in
  let stripes =
    Array.init nstripes (fun _ ->
        { lock = Mutex.create (); slots = Array.make 64 dummy; count = 0 })
  in
  {
    mmode = mode;
    mshared = shared;
    m_nvars = nvars;
    stripes;
    smask = nstripes - 1;
    dummy;
    c_ff;
    c_leaf1;
    next_uid = Atomic.make 2;
    m_nodes_made = Atomic.make 0;
    m_chain_folds = Atomic.make 0;
    m_chain_mk = Atomic.make 0;
    taut_v = None;
    op_cache = None;
    ite_cache = None;
    restrict_cache = None;
  }

(* 64-bit finalizer-style mixing of the four key fields *)
let mix4 a b c d =
  let h = a * 0x9e3779b1 in
  let h = (h lxor b) * 0x85ebca77 in
  let h = (h lxor c) * 0xc2b2ae3d in
  let h = (h lxor d) * 0x27d4eb2f in
  let h = h lxor (h lsr 29) in
  h land max_int

let stripe_rehash st dummy =
  let old = st.slots in
  let len = 2 * Array.length old in
  let fresh = Array.make len dummy in
  let mask = len - 1 in
  Array.iter
    (fun u ->
      if u != dummy then begin
        match u.node with
        | Leaf _ -> assert false
        | Node n ->
            let h = mix4 n.top n.bot n.hi.uid n.lo.uid in
            let i = ref (h land mask) in
            while fresh.(!i) != dummy do
              i := (!i + 1) land mask
            done;
            fresh.(!i) <- u
      end)
    old;
  st.slots <- fresh

(* find-or-insert the raw node (top, bot, hi, lo); the caller has
   already applied the mode's reduction rules *)
let node_raw man ~top ~bot ~hi ~lo =
  let h = mix4 top bot hi.uid lo.uid in
  let st = man.stripes.(h land man.smask) in
  if man.mshared then Mutex.lock st.lock;
  let slots = st.slots in
  let mask = Array.length slots - 1 in
  let i = ref (h land mask) in
  let found = ref man.dummy in
  (try
     while true do
       let u = slots.(!i) in
       if u == man.dummy then raise Exit;
       (match u.node with
       | Node n
         when n.top = top && n.bot = bot && n.hi == hi && n.lo == lo ->
           found := u;
           raise Exit
       | _ -> ());
       i := (!i + 1) land mask
     done
   with Exit -> ());
  let r =
    if !found != man.dummy then !found
    else begin
      let u =
        { uid = Atomic.fetch_and_add man.next_uid 1; node = Node { top; bot; hi; lo } }
      in
      slots.(!i) <- u;
      st.count <- st.count + 1;
      Atomic.incr man.m_nodes_made;
      if 3 * (st.count + 1) > 2 * (mask + 1) then stripe_rehash st man.dummy;
      u
    end
  in
  if man.mshared then Mutex.unlock st.lock;
  r

(* The canonical per-level constructor: the whole representational
   difference between the four modes lives in these few lines. *)
let mk_node man v t e =
  Atomic.incr man.m_chain_mk;
  match man.mmode with
  | Bdd -> if t == e then t else node_raw man ~top:v ~bot:v ~hi:t ~lo:e
  | Zdd -> if t == man.c_ff then e else node_raw man ~top:v ~bot:v ~hi:t ~lo:e
  | Cbdd ->
      if t == e then t
      else if t == man.c_ff then begin
        match e.node with
        | Node n when n.top = v + 1 ->
            Atomic.incr man.m_chain_folds;
            node_raw man ~top:v ~bot:n.bot ~hi:n.hi ~lo:n.lo
        | _ -> node_raw man ~top:v ~bot:v ~hi:t ~lo:e
      end
      else node_raw man ~top:v ~bot:v ~hi:t ~lo:e
  | Czdd ->
      if t == man.c_ff then e
      else if t == e then begin
        match t.node with
        | Node n when n.top = v + 1 ->
            Atomic.incr man.m_chain_folds;
            node_raw man ~top:v ~bot:n.bot ~hi:n.hi ~lo:n.lo
        | _ -> node_raw man ~top:v ~bot:v ~hi:t ~lo:e
      end
      else node_raw man ~top:v ~bot:v ~hi:t ~lo:e

let zddish man = match man.mmode with Zdd | Czdd -> true | Bdd | Cbdd -> false

(* cofactors of [u] at context level [l] (caller guarantees
   l <= etop u); chain nodes peel one level, re-hash-consing the
   remainder of the run — the remainder satisfies the same node
   invariants because they do not mention [top] *)
let cof_at man l u =
  match u.node with
  | Leaf false -> (u, u)
  | Leaf true -> if zddish man then (man.c_ff, u) else (u, u)
  | Node n ->
      if n.top > l then if zddish man then (man.c_ff, u) else (u, u)
      else if n.top = n.bot then (n.hi, n.lo)
      else begin
        let rest =
          node_raw man ~top:(l + 1) ~bot:n.bot ~hi:n.hi ~lo:n.lo
        in
        match man.mmode with
        | Cbdd -> (man.c_ff, rest)
        | Czdd -> (rest, rest)
        | Bdd | Zdd -> assert false
      end

(* ---------------------------------------------------------------- *)
(* Tautology / literal builders.  Building through every level keeps
   them mode-uniform: [mk v r r] inserts the don't-care node the
   zero-suppressed modes need and melts away in the plain modes. *)

let tt man =
  if not (zddish man) then man.c_leaf1
  else
    match man.taut_v with
    | Some u -> u
    | None ->
        let r = ref man.c_leaf1 in
        for v = man.m_nvars - 1 downto 0 do
          r := mk_node man v !r !r
        done;
        man.taut_v <- Some !r;
        !r

let cube_of_literals man lits =
  List.iter
    (fun (v, _) ->
      if v < 0 || v >= man.m_nvars then
        invalid_arg "Dd.cube_of_literals: variable out of range")
    lits;
  if
    List.exists
      (fun (v, s) -> List.exists (fun (v', s') -> v = v' && s <> s') lits)
      lits
  then man.c_ff
  else begin
    let r = ref man.c_leaf1 in
    (* in the plain modes untouched levels reduce away, so starting from
       the true leaf and walking all levels is uniform *)
    for v = man.m_nvars - 1 downto 0 do
      r :=
        (match List.assoc_opt v lits with
        | Some true -> mk_node man v !r man.c_ff
        | Some false -> mk_node man v man.c_ff !r
        | None -> mk_node man v !r !r)
    done;
    !r
  end

let ithvar man i =
  if i < 0 || i >= man.m_nvars then invalid_arg "Dd.ithvar: out of range";
  cube_of_literals man [ (i, true) ]

let nithvar man i =
  if i < 0 || i >= man.m_nvars then invalid_arg "Dd.nithvar: out of range";
  cube_of_literals man [ (i, false) ]

(* ---------------------------------------------------------------- *)
(* Op caches *)

let cache_for get set man =
  match get man with
  | Some c -> c
  | None ->
      let c = Array.make (1 lsl cache_bits) None in
      set man c;
      c

let op_cache man =
  cache_for (fun m -> m.op_cache) (fun m c -> m.op_cache <- Some c) man

let ite_cache man =
  cache_for (fun m -> m.ite_cache) (fun m c -> m.ite_cache <- Some c) man

let restrict_cache man =
  cache_for
    (fun m -> m.restrict_cache)
    (fun m c -> m.restrict_cache <- Some c)
    man

let cache_mask = (1 lsl cache_bits) - 1

let cache_find (c : cache) k1 k2 k3 =
  match c.(mix4 k1 k2 k3 0 land cache_mask) with
  | Some e when e.ck1 = k1 && e.ck2 = k2 && e.ck3 = k3 -> Some e.cres
  | _ -> None

let cache_add (c : cache) k1 k2 k3 r =
  c.(mix4 k1 k2 k3 0 land cache_mask) <-
    Some { ck1 = k1; ck2 = k2; ck3 = k3; cres = r }

(* ---------------------------------------------------------------- *)
(* Boolean operations.  [min] of the effective tops picks the recursion
   level; termination: both cofactors have strictly larger effective
   top, and every pair of leaves is handled by a terminal case. *)

let tag_and = 0
let tag_or = 1
let tag_xor = 2

let rec apply man tag f g =
  let bddish = not (zddish man) in
  let term =
    if tag = tag_and then
      if f == man.c_ff || g == man.c_ff then Some man.c_ff
      else if f == g then Some f
      else if bddish && f == man.c_leaf1 then Some g
      else if bddish && g == man.c_leaf1 then Some f
      else None
    else if tag = tag_or then
      if f == man.c_ff then Some g
      else if g == man.c_ff then Some f
      else if f == g then Some f
      else if bddish && (f == man.c_leaf1 || g == man.c_leaf1) then
        Some man.c_leaf1
      else None
    else if f == g then Some man.c_ff
    else if f == man.c_ff then Some g
    else if g == man.c_ff then Some f
    else None
  in
  match term with
  | Some r -> r
  | None ->
      let f, g = if f.uid <= g.uid then (f, g) else (g, f) in
      let c = op_cache man in
      (match cache_find c tag f.uid g.uid with
      | Some r -> r
      | None ->
          let m = min (etop f) (etop g) in
          let f1, f0 = cof_at man m f and g1, g0 = cof_at man m g in
          let r1 = apply man tag f1 g1 in
          let r0 = apply man tag f0 g0 in
          let r = mk_node man m r1 r0 in
          cache_add c tag f.uid g.uid r;
          r)

let band man f g = apply man tag_and f g
let bor man f g = apply man tag_or f g
let bxor man f g = apply man tag_xor f g
let bnot man f = bxor man (tt man) f

let rec ite man f g h =
  if f == man.c_ff then h
  else if g == h then g
  else if (not (zddish man)) && f == man.c_leaf1 then g
  else begin
    match (f.node, g.node, h.node) with
    | Leaf true, Leaf gb, Leaf _ ->
        (* zero-suppressed modes only: [f] is the all-zeros point, so the
           result is [g] there and [h] (a leaf, hence 0 away from the
           point) elsewhere *)
        if gb then man.c_leaf1 else man.c_ff
    | _ ->
        let c = ite_cache man in
        (match cache_find c f.uid g.uid h.uid with
        | Some r -> r
        | None ->
            let m = min (etop f) (min (etop g) (etop h)) in
            let f1, f0 = cof_at man m f in
            let g1, g0 = cof_at man m g in
            let h1, h0 = cof_at man m h in
            let r1 = ite man f1 g1 h1 in
            let r0 = ite man f0 g0 h0 in
            let r = mk_node man m r1 r0 in
            cache_add c f.uid g.uid h.uid r;
            r)
  end

let conj man fs = List.fold_left (band man) (tt man) fs
let disj man fs = List.fold_left (bor man) (ff man) fs

(* ---------------------------------------------------------------- *)
(* Quantification *)

let exists man ~vars f =
  let vs = Array.of_list (List.sort_uniq compare vars) in
  Array.iter
    (fun v ->
      if v < 0 || v >= man.m_nvars then
        invalid_arg "Dd.exists: variable out of range")
    vs;
  let n = Array.length vs in
  let memo : (int * int, t) Hashtbl.t = Hashtbl.create 64 in
  let rec ex i f =
    if i >= n then f
    else
      match f.node with
      | Leaf false -> f
      | Leaf true ->
          if zddish man then begin
            (* the all-zeros suffix point with the quantified levels
               turned don't-care *)
            let r = ref man.c_leaf1 in
            for j = n - 1 downto i do
              r := mk_node man vs.(j) !r !r
            done;
            !r
          end
          else f
      | Node _ -> (
          match Hashtbl.find_opt memo (f.uid, i) with
          | Some r -> r
          | None ->
              let v = vs.(i) in
              let tf = etop f in
              let r =
                if tf > v then begin
                  let r = ex (i + 1) f in
                  (* quantifying a level the value skips: don't-care in
                     the plain modes (mk melts), an explicit DC node in
                     the zero-suppressed modes *)
                  mk_node man v r r
                end
                else if tf < v then begin
                  let f1, f0 = cof_at man tf f in
                  mk_node man tf (ex i f1) (ex i f0)
                end
                else begin
                  let f1, f0 = cof_at man v f in
                  let r = bor man (ex (i + 1) f1) (ex (i + 1) f0) in
                  mk_node man v r r
                end
              in
              Hashtbl.add memo (f.uid, i) r;
              r)
  in
  ex 0 f

let forall man ~vars f = bnot man (exists man ~vars (bnot man f))

(* value of [f] on the all-zeros suffix: every mode routes the all-zeros
   assignment through [lo] *)
let rec tail_one f = match f.node with Leaf b -> b | Node n -> tail_one n.lo

let restrict man f ~care =
  let rec go f c =
    if c == man.c_ff then f
    else
      match f.node with
      | Leaf _ -> f
      | Node _ ->
          if (not (zddish man)) && c == man.c_leaf1 then f
          else if zddish man && c == man.c_leaf1 then
            (* care set is the all-zeros point: collapse to f's value
               there *)
            if tail_one f then man.c_leaf1 else man.c_ff
          else begin
            let cc = restrict_cache man in
            match cache_find cc f.uid c.uid 0 with
            | Some r -> r
            | None ->
                let m = min (etop f) (etop c) in
                let f1, f0 = cof_at man m f in
                let c1, c0 = cof_at man m c in
                let r =
                  if c1 == man.c_ff then go f0 c0
                  else if c0 == man.c_ff then
                    if zddish man then mk_node man m (go f1 c1) man.c_ff
                    else go f1 c1
                  else mk_node man m (go f1 c1) (go f0 c0)
                in
                cache_add cc f.uid c.uid 0 r;
                r
          end
  in
  go f care

(* ---------------------------------------------------------------- *)
(* Evaluation and counting *)

let eval man f asg =
  let n = man.m_nvars in
  let zero_run lo hi =
    (* true iff no variable in [lo, hi) is assigned 1 *)
    let ok = ref true in
    for i = lo to hi - 1 do
      if asg i then ok := false
    done;
    !ok
  in
  let rec go l u =
    match u.node with
    | Leaf false -> false
    | Leaf true -> if zddish man then zero_run l n else true
    | Node nd ->
        let pref_ok = if zddish man then zero_run l nd.top else true in
        if not pref_ok then false
        else begin
          let run_ok =
            match man.mmode with
            | Cbdd -> zero_run nd.top nd.bot
            | Czdd | Bdd | Zdd -> true
          in
          if not run_ok then false
          else if asg nd.bot then go (nd.bot + 1) nd.hi
          else go (nd.bot + 1) nd.lo
        end
  in
  go 0 f

let count_minterms man f ~nvars =
  let n = man.m_nvars in
  let zs = zddish man in
  let memo : (int, float) Hashtbl.t = Hashtbl.create 64 in
  (* cnt u = #sat of u interpreted at its own top, over levels
     [top u, n); ext u l rescales to context level l *)
  let rec ext u l =
    match u.node with
    | Leaf false -> 0.0
    | Leaf true -> if zs then 1.0 else Float.pow 2.0 (float_of_int (n - l))
    | Node nd ->
        let c = cnt u in
        if zs then c else c *. Float.pow 2.0 (float_of_int (nd.top - l))
  and cnt u =
    match u.node with
    | Leaf _ -> assert false
    | Node nd -> (
        match Hashtbl.find_opt memo u.uid with
        | Some c -> c
        | None ->
            let sub = ext nd.hi (nd.bot + 1) +. ext nd.lo (nd.bot + 1) in
            let c =
              match man.mmode with
              | Czdd -> Float.pow 2.0 (float_of_int (nd.bot - nd.top)) *. sub
              | Cbdd | Bdd | Zdd -> sub
            in
            Hashtbl.add memo u.uid c;
            c)
  in
  let base = ext f 0 in
  if nvars <= n then base else base *. Float.pow 2.0 (float_of_int (nvars - n))

let size u =
  let seen = Hashtbl.create 64 in
  let rec go u =
    if not (Hashtbl.mem seen u.uid) then begin
      Hashtbl.add seen u.uid ();
      match u.node with
      | Leaf _ -> ()
      | Node n ->
          go n.hi;
          go n.lo
    end
  in
  go u;
  Hashtbl.length seen

(* ---------------------------------------------------------------- *)
(* Conversions: walk levels 0..nvars with the source's cofactors and
   rebuild with the destination's mk, memoized on (level, uid) — the
   level is part of the key because in the zero-suppressed modes the
   same node denotes different functions at different contexts. *)

let of_bdd man bman f =
  let n = man.m_nvars in
  if Bdd.nvars bman > n then
    invalid_arg "Dd.of_bdd: source manager has more variables";
  let memo : (int * int, t) Hashtbl.t = Hashtbl.create 256 in
  let level_of g =
    if Bdd.is_const g then max_int else Bdd.level_of_var bman (Bdd.topvar g)
  in
  let rec go l g =
    if l >= n then
      if Bdd.is_true g then man.c_leaf1
      else begin
        assert (Bdd.is_false g);
        man.c_ff
      end
    else
      match Hashtbl.find_opt memo (l, Bdd.id g) with
      | Some u -> u
      | None ->
          let lg = level_of g in
          assert (lg >= l);
          let u =
            if lg > l then begin
              let d = go (l + 1) g in
              mk_node man l d d
            end
            else mk_node man l (go (l + 1) (Bdd.high g)) (go (l + 1) (Bdd.low g))
          in
          Hashtbl.add memo (l, Bdd.id g) u;
          u
  in
  go 0 f

let to_bdd man bman u =
  let n = man.m_nvars in
  while Bdd.nvars bman < n do
    ignore (Bdd.new_var bman)
  done;
  let memo : (int * int, Bdd.t) Hashtbl.t = Hashtbl.create 256 in
  let rec go l u =
    if l >= n then
      match u.node with
      | Leaf true -> Bdd.tt bman
      | Leaf false -> Bdd.ff bman
      | Node _ -> assert false
    else
      match Hashtbl.find_opt memo (l, u.uid) with
      | Some g -> g
      | None ->
          let u1, u0 = cof_at man l u in
          let g =
            if u1 == u0 then go (l + 1) u1
            else begin
              let h = go (l + 1) u1 and lo = go (l + 1) u0 in
              let v = Bdd.var_at_level bman l in
              Bdd.ite bman (Bdd.ithvar bman v) h lo
            end
          in
          Hashtbl.add memo (l, u.uid) g;
          g
  in
  go 0 u

let convert ~src ~dst u =
  if src == dst then u
  else begin
    if src.m_nvars <> dst.m_nvars then
      invalid_arg "Dd.convert: managers disagree on nvars";
    let n = src.m_nvars in
    let memo : (int * int, t) Hashtbl.t = Hashtbl.create 256 in
    let rec go l u =
      if l >= n then
        match u.node with
        | Leaf true -> dst.c_leaf1
        | Leaf false -> dst.c_ff
        | Node _ -> assert false
      else
        match Hashtbl.find_opt memo (l, u.uid) with
        | Some d -> d
        | None ->
            let u1, u0 = cof_at src l u in
            let d =
              if u1 == u0 then begin
                let d = go (l + 1) u1 in
                mk_node dst l d d
              end
              else mk_node dst l (go (l + 1) u1) (go (l + 1) u0)
            in
            Hashtbl.add memo (l, u.uid) d;
            d
    in
    go 0 u
  end

(* ---------------------------------------------------------------- *)
(* Stats *)

let chain_counters man =
  (Atomic.get man.m_chain_folds, Atomic.get man.m_chain_mk)

let nodes_made man = Atomic.get man.m_nodes_made

let unique_size man =
  Array.fold_left (fun acc st -> acc + st.count) 0 man.stripes

let stats man =
  let folds, mk = chain_counters man in
  [
    ("nodes_made", nodes_made man);
    ("unique_size", unique_size man);
    ("chain_folds", folds);
    ("chain_mk", mk);
  ]

(* ---------------------------------------------------------------- *)
(* Serialization *)

type serialized = {
  d_mode : mode;
  d_nvars : int;
  d_nodes : (int * int * int * int) array;
  d_roots : int array;
}

exception Corrupt of string

let magic = "DDC1"

let mode_byte = function Bdd -> 0 | Zdd -> 1 | Cbdd -> 2 | Czdd -> 3

let mode_of_byte = function
  | 0 -> Bdd
  | 1 -> Zdd
  | 2 -> Cbdd
  | 3 -> Czdd
  | b -> raise (Corrupt (Printf.sprintf "unknown mode byte %d" b))

let export_list man roots =
  let index : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let nodes = ref [] in
  let count = ref 0 in
  let rec visit u =
    match u.node with
    | Leaf false -> 0
    | Leaf true -> 1
    | Node n -> (
        match Hashtbl.find_opt index u.uid with
        | Some i -> i
        | None ->
            let hi = visit n.hi in
            let lo = visit n.lo in
            let i = !count + 2 in
            incr count;
            Hashtbl.add index u.uid i;
            nodes := (n.top, n.bot, hi, lo) :: !nodes;
            i)
  in
  let roots = Array.of_list (List.map visit roots) in
  {
    d_mode = man.mmode;
    d_nvars = man.m_nvars;
    d_nodes = Array.of_list (List.rev !nodes);
    d_roots = roots;
  }

let export man root = export_list man [ root ]

(* semantic rebuild: expand the (top,bot) run back through mk so any
   frame — including a hand-edited one — lands on the canonical value or
   dies with Corrupt *)
let import_same man s =
  if s.d_nvars < 0 || s.d_nvars > man.m_nvars then
    raise
      (Corrupt
         (Printf.sprintf "frame has %d variables, manager has %d" s.d_nvars
            man.m_nvars));
  let nn = Array.length s.d_nodes in
  let built = Array.make nn man.c_ff in
  let resolve i r =
    if r = 0 then man.c_ff
    else if r = 1 then man.c_leaf1
    else if r - 2 < i then built.(r - 2)
    else raise (Corrupt (Printf.sprintf "node %d: forward reference %d" i r))
  in
  Array.iteri
    (fun i (top, bot, hi, lo) ->
      if top < 0 || top > bot || bot >= s.d_nvars then
        raise (Corrupt (Printf.sprintf "node %d: bad level range %d..%d" i top bot));
      (match man.mmode with
      | Bdd | Zdd ->
          if top <> bot then
            raise
              (Corrupt
                 (Printf.sprintf "node %d: chain tag %d..%d in %s mode" i top
                    bot (mode_name man.mmode)))
      | Cbdd | Czdd -> ());
      let hi = resolve i hi and lo = resolve i lo in
      if etop hi <= bot || etop lo <= bot then
        raise (Corrupt (Printf.sprintf "node %d: child above level %d" i bot));
      let u = ref (mk_node man bot hi lo) in
      for v = bot - 1 downto top do
        u :=
          (match man.mmode with
          | Cbdd | Bdd -> mk_node man v man.c_ff !u
          | Czdd | Zdd -> mk_node man v !u !u)
      done;
      built.(i) <- !u)
    s.d_nodes;
  Array.to_list
    (Array.map
       (fun r ->
         if r = 0 then man.c_ff
         else if r = 1 then man.c_leaf1
         else if r - 2 < nn then built.(r - 2)
         else raise (Corrupt (Printf.sprintf "root reference %d out of range" r)))
       s.d_roots)

let import_list man s =
  if s.d_mode = man.mmode then import_same man s
  else begin
    (* route through a scratch manager of the frame's own mode, then
       convert semantically *)
    if s.d_nvars <> man.m_nvars then
      raise
        (Corrupt
           (Printf.sprintf "frame has %d variables, manager has %d" s.d_nvars
              man.m_nvars));
    let tmp = create ~nvars:s.d_nvars ~mode:s.d_mode () in
    List.map (fun u -> convert ~src:tmp ~dst:man u) (import_same tmp s)
  end

let import man s =
  match import_list man s with
  | [ u ] -> u
  | l -> raise (Corrupt (Printf.sprintf "expected 1 root, frame has %d" (List.length l)))

(* LEB128 varints, with the same length-bomb guards the BDD1 codec
   uses: every count is checked against the bytes that could plausibly
   back it *)
let add_varint buf n =
  let n = ref n in
  let continue_ = ref true in
  while !continue_ do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue_ := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let read_varint s pos =
  let len = String.length s in
  let rec go acc shift pos =
    if pos >= len then raise (Corrupt "truncated varint");
    if shift > 62 then raise (Corrupt "varint overflow");
    let b = Char.code s.[pos] in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then (acc, pos + 1) else go acc (shift + 7) (pos + 1)
  in
  go 0 0 pos

let serialized_to_string s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  add_varint buf (mode_byte s.d_mode);
  add_varint buf s.d_nvars;
  add_varint buf (Array.length s.d_nodes);
  Array.iter
    (fun (top, bot, hi, lo) ->
      add_varint buf top;
      add_varint buf bot;
      add_varint buf hi;
      add_varint buf lo)
    s.d_nodes;
  add_varint buf (Array.length s.d_roots);
  Array.iter (fun r -> add_varint buf r) s.d_roots;
  Buffer.contents buf

let serialized_of_string str =
  let len = String.length str in
  if len < 4 || String.sub str 0 4 <> magic then
    raise (Corrupt "bad magic (want DDC1)");
  let mb, pos = read_varint str 4 in
  let d_mode = mode_of_byte mb in
  let d_nvars, pos = read_varint str pos in
  if d_nvars < 0 || d_nvars > 1 lsl 24 then
    raise (Corrupt "implausible variable count");
  let nn, pos = read_varint str pos in
  (* each node record needs at least 4 bytes *)
  if nn < 0 || nn > (len - pos) / 4 then raise (Corrupt "implausible node count");
  let pos = ref pos in
  let d_nodes =
    Array.init nn (fun _ ->
        let top, p = read_varint str !pos in
        let bot, p = read_varint str p in
        let hi, p = read_varint str p in
        let lo, p = read_varint str p in
        pos := p;
        (top, bot, hi, lo))
  in
  let nr, p = read_varint str !pos in
  if nr < 0 || nr > len - p + 1 then raise (Corrupt "implausible root count");
  pos := p;
  let d_roots =
    Array.init nr (fun _ ->
        let r, p = read_varint str !pos in
        pos := p;
        r)
  in
  if !pos <> len then raise (Corrupt "trailing garbage");
  { d_mode; d_nvars; d_nodes; d_roots }

let read_string man str =
  if String.length str >= 4 && String.sub str 0 4 = magic then
    import_list man (serialized_of_string str)
  else begin
    (* legacy plain-BDD frame: decode with the BDD1 codec, materialize
       in a scratch Bdd manager, then convert semantically *)
    let bs =
      try Bdd.serialized_of_string str
      with Bdd.Corrupt m -> raise (Corrupt ("legacy frame: " ^ m))
    in
    let bman = Bdd.create ~nvars:(max 1 man.m_nvars) () in
    let roots =
      try Bdd.import_list bman bs
      with Bdd.Corrupt m -> raise (Corrupt ("legacy frame: " ^ m))
    in
    List.map (fun g -> of_bdd man bman g) roots
  end

let save path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (serialized_to_string s))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      serialized_of_string (really_input_string ic n))
