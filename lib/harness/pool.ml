(* The function pool for the paper's Tables 2–4.

   The paper draws 7157 output and next-state functions from a benchmark
   suite and keeps the 336 with at least 5000 nodes.  The substitute pool
   (DESIGN.md §2) applies the same selection protocol to the functions of
   the synthetic circuits plus structured random netlists, with the node
   threshold scaled to CI-sized experiments. *)

type entry = { man : Bdd.man; f : Bdd.t; label : string; nvars : int }

let entries_of_circuit ~min_nodes c =
  let compiled = Compile.compile c in
  let man = compiled.Compile.man in
  let nvars = Bdd.nvars man in
  let named =
    List.map (fun (n, f) -> (Circuit.name c ^ "." ^ n, f))
      compiled.Compile.output_fns
    @ Array.to_list
        (Array.map
           (fun l -> (Circuit.name c ^ "." ^ l.Compile.name ^ "'", l.Compile.fn))
           compiled.Compile.latches)
  in
  List.filter_map
    (fun (label, f) ->
      if Bdd.size f >= min_nodes then Some { man; f; label; nvars } else None)
    named

let default_circuits () =
  [
    Generate.microsequencer ~addr_bits:5 ~stack_depth:3;
    Generate.microsequencer ~addr_bits:6 ~stack_depth:2;
    Generate.microsequencer ~addr_bits:7 ~stack_depth:3;
    Generate.shifter_datapath ~width:8;
    Generate.shifter_datapath ~width:10;
    Generate.shifter_datapath ~width:12;
    Generate.handshake_pipeline ~stages:10;
    Generate.dense_controller ~latches:28 ~seed:11;
    Generate.dense_controller ~latches:32 ~seed:23;
    Generate.dense_controller ~latches:36 ~seed:37;
    Generate.lfsr ~bits:16;
    Generate.multiplier ~bits:6;
    Generate.multiplier ~bits:7;
    Generate.alu ~width:10;
    Generate.alu ~width:12;
  ]

let default_random () =
  List.concat_map
    (fun seed ->
      [
        Generate.random_netlist ~inputs:16 ~gates:90 ~outputs:6 ~seed;
        Generate.random_netlist ~inputs:20 ~gates:140 ~outputs:6
          ~seed:(seed + 1000);
        Generate.random_netlist ~inputs:24 ~gates:200 ~outputs:4
          ~seed:(seed + 2000);
      ])
    [ 1; 2; 3; 4; 5; 6 ]

(* Sparse entries: conjunctions of output cones.  The paper's pool is
   dominated by next-state functions of industrial FSMs, which are very
   sparse (minterm fractions around 1e-5 of the space); plain random cones
   are dense (fractions near 1/2), a regime that flatters short-path
   subsetting.  Products of three outputs restore the sparse regime. *)
let product_entries_of_circuit ~min_nodes c =
  let compiled = Compile.compile c in
  let man = compiled.Compile.man in
  let nvars = Bdd.nvars man in
  let rec triples k = function
    | a :: b :: c' :: rest ->
        let f = Bdd.band man a (Bdd.band man b c') in
        (Printf.sprintf "%s.and3_%d" (Circuit.name c) k, f)
        :: triples (k + 1) rest
    | _ -> []
  in
  List.filter_map
    (fun (label, f) ->
      if Bdd.size f >= min_nodes then Some { man; f; label; nvars } else None)
    (triples 0 (List.map snd compiled.Compile.output_fns))

let build ?(min_nodes = 500) ?(circuits = None) ?jobs () =
  Obs.Trace.with_span "pool.build" @@ fun () ->
  let circuits =
    match circuits with
    | Some cs -> cs
    | None -> default_circuits () @ default_random ()
  in
  (* one task per circuit compilation; each compiles into its own fresh
     manager, so the tasks are independent and can run on any domain *)
  let tasks =
    List.map (fun c -> (Circuit.name c, fun () -> entries_of_circuit ~min_nodes c))
      circuits
    @ List.map
        (fun c ->
          (Circuit.name c ^ ".and3", fun () ->
            product_entries_of_circuit ~min_nodes c))
        (default_random ())
  in
  match jobs with
  | None -> List.concat_map (fun (_, t) -> t ()) tasks
  | Some jobs ->
      Mt.Runner.run ~jobs
        (List.map
           (fun (label, t) -> Mt.Runner.job ~label (fun _man -> t ()))
           tasks)
      |> List.concat_map (fun (r : _ Mt.Runner.result) ->
             match r.Mt.Runner.outcome with
             | Mt.Runner.Done entries -> entries
             | o ->
                 failwith
                   (Format.asprintf "Pool.build: job %s %a"
                      r.Mt.Runner.report.Mt.Runner.label Mt.Runner.pp_outcome
                      o))

let describe entries =
  let sizes = List.map (fun e -> float_of_int (Bdd.size e.f)) entries in
  Printf.sprintf "%d functions, |f| mean %.1f (min %.0f, max %.0f)"
    (List.length entries)
    (Stats.geometric_mean sizes)
    (List.fold_left min infinity sizes)
    (List.fold_left max neg_infinity sizes)
