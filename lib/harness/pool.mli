(** The function pool for Tables 2–4 (output and next-state functions above
    a node threshold; see DESIGN.md §2 for the substitution). *)

type entry = {
  man : Bdd.man;
  f : Bdd.t;
  label : string;  (** "circuit.function" *)
  nvars : int;  (** variable count used for minterm counting *)
}

val entries_of_circuit : min_nodes:int -> Circuit.t -> entry list
(** Compile a circuit and keep its output and next-state functions of at
    least [min_nodes] nodes. *)

val product_entries_of_circuit : min_nodes:int -> Circuit.t -> entry list
(** Sparse entries: conjunctions of three output cones, restoring the
    sparse-function regime of the paper's industrial pool (see the
    comment in the implementation and EXPERIMENTS.md). *)

val build :
  ?min_nodes:int ->
  ?circuits:Circuit.t list option ->
  ?jobs:int ->
  unit ->
  entry list
(** The default pool: synthetic sequential circuits, structured random
    netlists, and sparse output-products, filtered at [min_nodes]
    (default 500).  With [jobs], circuit compilations fan out over an
    {!Mt.Runner} worker pool (one private manager per circuit either way);
    the entry list is the same, in the same order, for every [jobs]
    value. *)

val describe : entry list -> string
