(** Scoring of approximation and decomposition methods over a function
    pool — the rows of the paper's Tables 2, 3 and 4. *)

type approx_row = {
  name : string;
  nodes : float;  (** geometric mean of result sizes *)
  zdd_nodes : float;
      (** geometric mean of the same results' sizes as ZDDs *)
  cbdd_nodes : float;  (** ... as chain-reduced BDDs *)
  czdd_nodes : float;  (** ... as chain-reduced ZDDs *)
  minterms : float;  (** geometric mean of result minterm counts *)
  density : float;  (** geometric mean of result densities *)
  wins : int;  (** instances where the method alone is densest *)
  ties : int;  (** instances where it shares the best density *)
}

val approx_table :
  ?jobs:int ->
  Pool.entry list ->
  (string * (Bdd.man -> Bdd.t -> Bdd.t)) list ->
  approx_row list
(** Run each method on each pool entry.  Include the identity as ["F"] to
    reproduce the paper's first row.

    Without [jobs], methods run sequentially in each entry's own manager.
    With [jobs], entries fan out over an {!Mt.Runner} worker pool: each
    worker imports the function into a private manager and measures it
    there.  Aggregation happens in submission order, so the table is
    identical for every [jobs] value (including [1]). *)

val approx_headers : string list
val approx_rows : approx_row list -> string list list

type decomp_row = {
  dname : string;
  shared : float;  (** geometric mean shared size of the two factors *)
  g_size : float;
  h_size : float;
  dwins : int;  (** by the size of the larger factor, as in Table 4 *)
  dties : int;
}

val decomp_table :
  ?jobs:int ->
  Pool.entry list ->
  (string * (Bdd.man -> Bdd.t -> Decomp.pair)) list ->
  decomp_row list
(** Same execution model as {!approx_table}. *)

val decomp_headers : string list
val decomp_rows : decomp_row list -> string list list
