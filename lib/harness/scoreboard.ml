(* Scoring of approximation and decomposition methods over a function pool,
   producing the rows of the paper's Tables 2, 3 and 4.

   With [~jobs] the per-function measurements fan out over Mt.Runner: each
   entry's BDD is exported from its pool manager in the calling domain,
   imported into a worker's private manager, measured there, and only
   floats come back.  Results are aggregated in submission order, so the
   tables are identical for every [jobs] value. *)

(* Run [measure] once per pool entry, sequentially in the entry's own
   manager (legacy path, [jobs = None]) or fanned out over worker domains. *)
let sweep ?jobs measure entries =
  Obs.Trace.with_span "scoreboard.sweep" @@ fun () ->
  match jobs with
  | None ->
      List.map
        (fun { Pool.man; f; nvars; _ } -> measure man f nvars)
        entries
  | Some jobs ->
      let inputs =
        List.map
          (fun { Pool.man; f; nvars; label } -> (label, nvars, Bdd.export man f))
          entries
      in
      Mt.Runner.run ~jobs
        (List.map
           (fun (label, nvars, sf) ->
             Mt.Runner.job ~label (fun man ->
                 measure man (Bdd.import man sf) nvars))
           inputs)
      |> List.map (fun (r : _ Mt.Runner.result) ->
             match r.Mt.Runner.outcome with
             | Mt.Runner.Done v -> v
             | o ->
                 failwith
                   (Format.asprintf "Scoreboard: job %s %a"
                      r.Mt.Runner.report.Mt.Runner.label Mt.Runner.pp_outcome o))

type approx_row = {
  name : string;
  nodes : float;
  zdd_nodes : float;
  cbdd_nodes : float;
  czdd_nodes : float;
  minterms : float;
  density : float;
  wins : int;
  ties : int;
}

let approx_table ?jobs entries methods =
  let measure man f nvars =
    (* one compressed manager per mode, shared by every method's result
       for this entry: each result is converted semantically and its
       node count in that representation recorded, so the scoreboard
       judges ZDD/CBDD/CZDD on the paper's own size metric *)
    let dmans =
      List.map
        (fun m -> (m, Dd.create ~nvars:(Bdd.nvars man) ~mode:m ()))
        [ Dd.Zdd; Dd.Cbdd; Dd.Czdd ]
    in
    List.map
      (fun (_, fn) ->
        let g = fn man f in
        let nodes = float_of_int (Bdd.size g) in
        let minterms = Bdd.count_minterms man g ~nvars in
        let mode_nodes =
          List.map
            (fun (_, dman) -> float_of_int (Dd.size (Dd.of_bdd dman man g)))
            dmans
        in
        (nodes, minterms, mode_nodes))
      methods
  in
  let per_entry = sweep ?jobs measure entries in
  let nm = List.length methods in
  let per_method_nodes = Array.make nm []
  and per_method_minterms = Array.make nm []
  and per_method_density = Array.make nm []
  and per_method_modes = Array.make nm [] in
  let per_instance =
    List.rev_map
      (fun measures ->
        Array.of_list
          (List.mapi
             (fun m (nodes, minterms, mode_nodes) ->
               let density = minterms /. max nodes 1. in
               per_method_nodes.(m) <- nodes :: per_method_nodes.(m);
               per_method_minterms.(m) <- minterms :: per_method_minterms.(m);
               per_method_density.(m) <- density :: per_method_density.(m);
               per_method_modes.(m) <- mode_nodes :: per_method_modes.(m);
               density)
             measures))
      per_entry
  in
  (* density: higher is better; equality up to a tiny relative tolerance *)
  let better a b = a >= b -. (1e-9 *. abs_float b) in
  let wt = Stats.wins_and_ties ~better per_instance in
  let mode_mean m i =
    Stats.geometric_mean (List.map (fun l -> List.nth l i) per_method_modes.(m))
  in
  List.mapi
    (fun m (name, _) ->
      (* [wt] is empty when the pool is: every method then scores (0, 0) *)
      let wins, ties = if m < Array.length wt then wt.(m) else (0, 0) in
      {
        name;
        nodes = Stats.geometric_mean per_method_nodes.(m);
        zdd_nodes = mode_mean m 0;
        cbdd_nodes = mode_mean m 1;
        czdd_nodes = mode_mean m 2;
        minterms = Stats.geometric_mean per_method_minterms.(m);
        density = Stats.geometric_mean per_method_density.(m);
        wins;
        ties;
      })
    methods

let approx_headers =
  [ "Method"; "nodes"; "zdd"; "cbdd"; "czdd"; "minterms"; "density"; "wins"; "ties" ]

let approx_rows rows =
  List.map
    (fun r ->
      [
        r.name;
        Tables.f1 r.nodes;
        Tables.f1 r.zdd_nodes;
        Tables.f1 r.cbdd_nodes;
        Tables.f1 r.czdd_nodes;
        Tables.sci r.minterms;
        Tables.sci r.density;
        Tables.int_ r.wins;
        Tables.int_ r.ties;
      ])
    rows

type decomp_row = {
  dname : string;
  shared : float;
  g_size : float;
  h_size : float;
  dwins : int;
  dties : int;
}

let decomp_table ?jobs entries methods =
  let measure man f _nvars =
    List.map
      (fun (_, fn) ->
        let pair = fn man f in
        ( float_of_int (Decomp.shared_size pair),
          float_of_int (Bdd.size pair.Decomp.g),
          float_of_int (Bdd.size pair.Decomp.h),
          (* Table 4 scores by the size of the larger factor *)
          float_of_int (Decomp.max_size pair) ))
      methods
  in
  let per_entry = sweep ?jobs measure entries in
  let n = List.length methods in
  let shared = Array.make n [] and gs = Array.make n [] and hs = Array.make n [] in
  let per_instance =
    List.rev_map
      (fun measures ->
        Array.of_list
          (List.mapi
             (fun m (sh, g, h, max_factor) ->
               shared.(m) <- sh :: shared.(m);
               gs.(m) <- g :: gs.(m);
               hs.(m) <- h :: hs.(m);
               max_factor)
             measures))
      per_entry
  in
  (* smaller max-factor is better *)
  let better a b = a <= b +. (1e-9 *. abs_float b) in
  let wt = Stats.wins_and_ties ~better per_instance in
  List.mapi
    (fun m (dname, _) ->
      let dwins, dties = if m < Array.length wt then wt.(m) else (0, 0) in
      {
        dname;
        shared = Stats.geometric_mean shared.(m);
        g_size = Stats.geometric_mean gs.(m);
        h_size = Stats.geometric_mean hs.(m);
        dwins;
        dties;
      })
    methods

let decomp_headers = [ "Method"; "Shared"; "G"; "H"; "wins"; "ties" ]

let decomp_rows rows =
  List.map
    (fun r ->
      [
        r.dname;
        Tables.f1 r.shared;
        Tables.f1 r.g_size;
        Tables.f1 r.h_size;
        Tables.int_ r.dwins;
        Tables.int_ r.dties;
      ])
    rows
