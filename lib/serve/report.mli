(** The load-generator report: schema [bdd-serve-bench/v1].

    One record per run of bench/loadgen.exe, written as [BENCH_serve.json]
    and validated by [obs_check --serve-bench].  Latencies are in
    microseconds; [throughput_rps] is completed requests per wall-clock
    second over the whole run. *)

val schema : string
(** ["bdd-serve-bench/v1"]. *)

(** The soak-mode section: present only for open-loop soak runs, and the
    part [obs_check --serve-bench] asserts SLOs against. *)
type soak = {
  duration_s : float;  (** requested soak length (wall clock) *)
  arrival_rate : float;  (** target open-loop arrivals per second *)
  churns : int;  (** deliberate reconnects (connection churn) *)
  retries : int;  (** client transport retries (sum over connections) *)
  reconnects : int;  (** client re-dials, churn included *)
  server_exits : int;  (** server deaths observed — must be 0 *)
  slo_p99_ms : float;  (** asserted p99 bound, milliseconds; 0 = none *)
  slo_met : bool;  (** whether p99 stayed under the bound — must be true *)
}

type t = {
  connections : int;
  requests : int;  (** completed request/reply cycles (excludes rejected) *)
  rejected : int;  (** [Overloaded] replies *)
  degraded : int;  (** replies carrying a [Degraded] certificate *)
  errors : int;  (** [Error] replies *)
  wrong : int;  (** replies contradicting the local oracle — must be 0 *)
  elapsed_s : float;
  throughput_rps : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  max_us : float;
  peak_rss_kb : int;
      (** load generator's peak resident set (VmHWM); 0 when the platform
          does not expose it *)
  pipeline_depth : int;
      (** requests per batch frame; 1 = classic unpipelined closed loop *)
  arena_share : float option;
      (** fraction of server-side publish/lookup traffic served by an
          existing shared segment, [hits / (hits + published)] from the
          server's [arena.*] counters; [None] when the server runs
          without an arena *)
  soak : soak option;  (** [None] for closed-loop benchmark runs *)
}

val to_json : t -> Obs.Json.t

val write : string -> t -> unit

val validate : Obs.Json.t -> (unit, string) result
(** Structural + sanity validation: schema tag, every field present and
    numeric, counts non-negative, [p50 <= p95 <= p99 <= max], positive
    throughput when any request completed.  A [soak] section, when
    present, must additionally show [server_exits = 0] and
    [slo_met = true] — a report from a soak that killed the server or
    blew its p99 SLO does not validate. *)

val validate_file : string -> (unit, string) result
(** {!validate} after reading and parsing; IO and parse failures come
    back as [Error]. *)
