(** The load-generator report: schema [bdd-serve-bench/v1].

    One record per run of bench/loadgen.exe, written as [BENCH_serve.json]
    and validated by [obs_check --serve-bench].  Latencies are in
    microseconds; [throughput_rps] is completed requests per wall-clock
    second over the whole run. *)

val schema : string
(** ["bdd-serve-bench/v1"]. *)

type t = {
  connections : int;
  requests : int;  (** completed request/reply cycles (excludes rejected) *)
  rejected : int;  (** [Overloaded] replies *)
  degraded : int;  (** replies carrying a [Degraded] certificate *)
  errors : int;  (** [Error] replies *)
  wrong : int;  (** replies contradicting the local oracle — must be 0 *)
  elapsed_s : float;
  throughput_rps : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  max_us : float;
  peak_rss_kb : int;
      (** load generator's peak resident set (VmHWM); 0 when the platform
          does not expose it *)
}

val to_json : t -> Obs.Json.t

val write : string -> t -> unit

val validate : Obs.Json.t -> (unit, string) result
(** Structural + sanity validation: schema tag, every field present and
    numeric, counts non-negative, [p50 <= p95 <= p99 <= max], positive
    throughput when any request completed. *)

val validate_file : string -> (unit, string) result
(** {!validate} after reading and parsing; IO and parse failures come
    back as [Error]. *)
