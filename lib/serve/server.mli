(** The BDD service: a Unix-domain / TCP accept loop over {!Proto}
    frames, dispatching onto a session-sharded {!Mt.Service} pool.

    Threading model: the accept loop and one reader thread per connection
    are sys-threads on the main domain (they only do blocking IO); the
    [workers] pool shards are OCaml domains.  A session is pinned to
    shard [session_id mod workers], so its private {!Session} manager is
    only ever touched by one domain — hash-consing stays lock-free, and
    requests within a session execute in order.

    Admission control: each shard queue holds at most [queue_depth]
    requests.  A request arriving at a full queue is answered
    {!Proto.Overloaded} immediately by the reader thread — the server
    sheds load explicitly instead of buffering without bound.  [Ping] is
    answered inline by the reader (it touches no manager), so liveness
    probes work even when the compute shards are saturated.

    Feeds [serve.*] metrics when {!Obs.Metrics} recording is on:
    [serve.accepted], [serve.requests], [serve.replies],
    [serve.rejected_overload], [serve.degraded_replies], [serve.errors],
    [serve.bytes_in], [serve.bytes_out] (counters), [serve.sessions]
    (gauge) and [serve.request_us] (histogram). *)

type bind =
  | Unix_path of string  (** Unix-domain socket at this path *)
  | Tcp of int  (** loopback TCP; [0] picks an ephemeral port *)

type config = {
  bind : bind;
  workers : int;
  queue_depth : int;
  limits : Handler.limits;  (** per-request budgets *)
  max_sessions : int;  (** accept backstop; excess connections are closed *)
  on_dispatch : (Proto.request -> unit) option;
      (** test hook, called by the shard worker as it picks a request up
          (lets tests hold a worker busy deterministically) *)
  par_jobs : int;
      (** parallel kernel width: when > 1, a {!Mt.Par} pool of this many
          domains is shared by all shards, session managers are created
          [~shared:true], and each request's boolean connectives and
          reachability images fork across the pool (replies stay
          bit-identical).  1 (the default) keeps the historical
          one-domain-per-session kernel. *)
}

val default_config : config
(** 4 workers, queue depth 64, no limits, 1024 sessions, 1 par job, Unix
    path ["bdd-serve.sock"]. *)

type t

val start : config -> t
(** Bind, listen and return immediately; sessions are served until
    {!drain}.  Ignores [SIGPIPE] process-wide (a peer hanging up mid-
    reply must not kill the server).
    @raise Unix.Unix_error when the address cannot be bound. *)

val address : t -> Unix.sockaddr
(** The bound address — with [Tcp 0], the actual ephemeral port. *)

val drain : t -> unit
(** Graceful shutdown: stop accepting, answer everything queued, join
    the worker domains, close every connection and the listener (and
    unlink a Unix-domain socket path).  Requests that arrive while
    draining get {!Proto.Overloaded}.  Idempotent. *)

val run : t -> stop:(unit -> bool) -> unit
(** Serve until [stop ()] turns true (polled a few times a second — the
    signal-handler-sets-a-flag idiom), then {!drain}. *)

(** {1 Introspection} *)

val sessions : t -> int
val accepted : t -> int
val requests : t -> int
val rejected : t -> int
val degraded_replies : t -> int
val errors : t -> int
