(** The BDD service: a Unix-domain / TCP front end over {!Proto}
    frames, dispatching onto a session-sharded {!Mt.Service} pool.

    Threading model: the socket front end (see {!frontend}), a
    housekeeper and (optionally) the pool supervisor are sys-threads on
    the main domain (they only do IO and registry work); the [workers]
    pool shards are OCaml domains.  A session is pinned to shard
    [session_id mod workers], so its {!Session} manager is only ever
    touched by one domain — hash-consing stays lock-free, and requests
    within a session execute in order.

    With the default [Poll] front end one event-loop thread multiplexes
    every connection through [Unix.select]: frames are parsed
    incrementally off per-connection buffers, so clients may {e
    pipeline} requests (many frames in flight, or a {!Proto.encode_batch}
    envelope) and one slow peer costs a buffer, not a thread.  Replies
    are written opportunistically by the worker that computed them
    (non-blocking) with the loop flushing any residue — reply {e order}
    per session is still submission order, because a session's requests
    all run on one shard.  [Threaded] restores the PR 5/9
    one-blocking-reader-thread-per-connection shape.

    Admission control: each shard queue holds at most [queue_depth]
    weight.  A request arriving at a full queue is answered
    {!Proto.Overloaded} immediately by the front end — the server sheds
    load explicitly instead of buffering without bound; a batch of N
    weighs N (and is refused with N [Overloaded] replies, keeping one
    reply per request).  [Ping] is answered inline by the front end (it
    touches no manager), so liveness probes work even when the compute
    shards are saturated.

    {2 Shared arena}

    [arena = true] backs {e every} session with one process-wide
    {!Arena.t}: compiled models are published once as refcounted
    segments and later sessions resolve them zero-copy from the arena
    catalog (zero re-imports, counted in [arena.hits]); [Put] payloads
    are content-deduplicated the same way.  Per-request [limits] are not
    armed in arena mode (they are manager-global; see {!Handler}).
    [Stats] replies then include the [arena.*] counters.

    {2 Robustness}

    {b Deadlines}: a request carrying {!Proto.meta} [deadline_ms] runs
    under the tighter of that and the configured per-request limits; a
    blown deadline is rescued by the {!Handler} degradation ladder
    (certificate rung ["deadline"]) or answered as a typed [Error].
    {b Socket timeouts} ([io_timeout]) bound every read and write on an
    accepted connection, so slow-loris peers and torn frames release the
    reader instead of pinning it.  {b Durable sessions}: [Attach key]
    rebinds a connection to a keyed session that survives disconnects
    for [session_linger] seconds and is the unit of supervised recovery.
    {b Supervision} ([hang_timeout]): a background supervisor respawns a
    worker domain stuck on one request, kills the poisoned session's
    connection, and rebuilds durable sessions from their {!Session}
    journals — other sessions on the shard keep their state and their
    queued requests.  {b Idempotency}: requests carrying a {!Proto.meta}
    token are deduped per session; a retry of an already-executed
    request replays the recorded reply instead of re-executing.

    Feeds [serve.*] metrics when {!Obs.Metrics} recording is on:
    [serve.accepted], [serve.requests], [serve.replies],
    [serve.rejected_overload], [serve.degraded_replies], [serve.errors],
    [serve.bytes_in], [serve.bytes_out], [serve.io_timeouts],
    [serve.deduped], [serve.quarantined], [serve.rebuilt_sessions],
    [serve.resumed_sessions] (counters), [serve.sessions] (gauge) and
    [serve.request_us] (histogram); [serve.table_full_degraded] is fed
    by the handler's ladder. *)

type bind =
  | Unix_path of string  (** Unix-domain socket at this path *)
  | Tcp of int  (** loopback TCP; [0] picks an ephemeral port *)

(** Socket front end. *)
type frontend =
  | Poll
      (** one event-loop thread multiplexing all connections via
          [Unix.select]: non-blocking sockets, incremental frame
          parsing, pipelining-friendly.  The default.  (Bounded by
          [FD_SETSIZE] — about a thousand concurrent connections; use
          [max_sessions] to stay under it.) *)
  | Threaded
      (** one blocking reader thread per connection with socket-level
          [SO_RCVTIMEO]/[SO_SNDTIMEO] timeouts — the PR 5/9 shape, kept
          as a fallback and a differential oracle for [Poll] *)

type config = {
  bind : bind;
  frontend : frontend;
  workers : int;
  queue_depth : int;
  limits : Handler.limits;  (** per-request budgets *)
  max_sessions : int;  (** accept backstop; excess connections are closed *)
  on_dispatch : (Proto.request -> unit) option;
      (** test hook, called by the shard worker as it picks a request up
          (lets tests hold a worker busy deterministically) *)
  par_jobs : int;
      (** parallel kernel width: when > 1, a {!Mt.Par} pool of this many
          domains is shared by all shards, session managers are created
          [~shared:true], and each request's boolean connectives and
          reachability images fork across the pool (replies stay
          bit-identical).  1 (the default) keeps the historical
          one-domain-per-session kernel. *)
  io_timeout : float option;
      (** socket read/write timeout (seconds) per accepted connection
          ([SO_RCVTIMEO]/[SO_SNDTIMEO]).  [None] (default) keeps blocking
          IO; a server exposed to untrusted or chaotic peers should set
          it — an idle-but-healthy connection that trips it simply
          reconnects. *)
  hang_timeout : float option;
      (** supervisor trigger: respawn a worker domain busy on a single
          request for longer than this many seconds ([None] = no
          supervisor).  Should comfortably exceed the worst honest
          request latency. *)
  session_linger : float;
      (** how long a detached keyed session stays resumable (seconds)
          before the housekeeper reaps it *)
  table_capacity : int option;
      (** {!Bdd.set_table_capacity} ceiling installed on every session
          manager — makes {!Bdd.Table_full} a survivable, ladder-rescued
          condition instead of unbounded growth *)
  session_spool : string option;
      (** directory for {!Session.journal_save} checkpoint files during
          quarantine rebuilds ([None] = rebuild from the in-memory
          journal only) *)
  arena : bool;
      (** back every session with one process-wide {!Arena.t} (shared
          zero-copy segments, compile/put dedup).  Default [false]. *)
}

val default_config : config
(** [Poll] front end, 4 workers, queue depth 64, no limits, 1024
    sessions, 1 par job, Unix path ["bdd-serve.sock"], no io/hang
    timeouts, 30 s session linger, no table capacity, no spool, no
    arena. *)

type t

val start : config -> t
(** Bind, listen and return immediately; sessions are served until
    {!drain}.  Ignores [SIGPIPE] process-wide (a peer hanging up mid-
    reply must not kill the server).  A stale Unix socket path left by a
    crashed predecessor is probed and unlinked; a path with a {e live}
    server behind it raises [EADDRINUSE] untouched.
    @raise Unix.Unix_error when the address cannot be bound. *)

val address : t -> Unix.sockaddr
(** The bound address — with [Tcp 0], the actual ephemeral port. *)

val arena : t -> Arena.t option
(** The process-wide arena, when [config.arena] is set — e.g. for
    in-process inspection of segment/refcount state in tests. *)

val drain : t -> unit
(** Graceful shutdown: stop accepting, answer everything queued, join
    the worker domains, close every connection and the listener (and
    unlink a Unix-domain socket path).  Requests that arrive while
    draining get {!Proto.Overloaded}.  Idempotent. *)

val run : t -> stop:(unit -> bool) -> unit
(** Serve until [stop ()] turns true (polled a few times a second — the
    signal-handler-sets-a-flag idiom), then {!drain}. *)

(** {1 Chaos probes}

    Deterministic worker-failure injection for the chaos suite and the
    soak harness — both submit through the normal queue, so they occupy
    a real worker exactly like a poisoned request would. *)

val inject_worker_hang : t -> shard:int -> seconds:float -> bool
(** Wedge shard [shard]'s worker for [seconds] (bounded, so an
    unsupervised run still terminates).  [false] if the queue was full. *)

val inject_worker_kill : t -> shard:int -> bool
(** Kill shard [shard]'s worker domain via {!Mt.Service.Poison}. *)

(** {1 Introspection} *)

val sessions : t -> int
val durable_sessions : t -> int
val accepted : t -> int
val requests : t -> int
val batches : t -> int
val rejected : t -> int
val degraded_replies : t -> int
val errors : t -> int
val io_timeouts : t -> int
val deduped : t -> int
val respawns : t -> int
val quarantined : t -> int
val rebuilt_sessions : t -> int
val resumed_sessions : t -> int
