(** Blocking client for the BDD service.

    One connection = one server session (a private manager and handle
    namespace).  {!call} is the strict request/reply cycle; {!post} /
    {!receive} split it for pipelining (the load generator uses that to
    probe admission control).  Not thread-safe: one connection per
    thread, which is also the closed-loop shape of {!module:Server}'s
    intended clients.

    {2 The retrying client}

    {!connect_retrying} returns the same [t] armed with the robustness
    loop: socket timeouts, lazy (re)dialing with exponential backoff and
    deterministic jitter, durable-session re-attachment by [key], and
    idempotency tokens.  {!call_idem} is its entry point — a request
    that dies to a torn connection, an IO timeout, a server restart or a
    wire fault is retried under the {e same} token, so a request the
    server already executed replays its recorded reply instead of
    re-executing (exactly-once over the server's dedup window).  When
    created with a [chaos_stream], the client deterministically mangles
    its own sends via {!Resil.Fault.on_wire_send} (delay / mid-frame
    cut / bit flip / stall) — the soak harness's wire-fault generator. *)

type t

(** Retry policy: [attempts] total tries per {!call_idem}, sleeping
    [base_backoff * 2^n] (capped at [max_backoff]) seconds between them,
    scaled by a deterministic jitter in [0.5, 1.0) drawn from the
    client's [seed]. *)
type retry = { attempts : int; base_backoff : float; max_backoff : float }

val default_retry : retry
(** 6 attempts, 20 ms base, 1 s cap. *)

val connect : Server.bind -> t
(** Connect to a {!Server.bind} address ([Tcp] dials loopback).
    @raise Unix.Unix_error when nobody is listening. *)

val connect_sockaddr : Unix.sockaddr -> t

val connect_retrying :
  ?retry:retry ->
  ?io_timeout:float ->
  ?key:string ->
  ?seed:int ->
  ?chaos_stream:int ->
  Server.bind ->
  t
(** A client that (re)dials lazily under [retry] — never raises here,
    even with no server up yet.  [io_timeout] sets
    [SO_RCVTIMEO]/[SO_SNDTIMEO] on each dialed socket.  [key] makes
    every (re)connection [Attach] to that durable server session, so
    handles survive disconnects, server-side worker respawns and
    {!churn}; the [Attach] handshake itself is never wire-mangled, so a
    chaotic client still converges.  [seed] (default 0) feeds both the
    backoff jitter and — together with [chaos_stream] — the
    {!Resil.Fault.on_wire_send} draws that mangle outgoing frames. *)

val close : t -> unit

val churn : t -> unit
(** Drop the connection (keeping the client usable): the next
    {!call_idem} re-dials and re-attaches.  The load generator's
    connection-churn knob. *)

val call : t -> Proto.request -> Proto.reply
(** Send one request and block for its reply.  No metadata, no retries —
    the pre-robustness cycle.
    @raise End_of_file when the server hung up (or this client is not
    currently connected);
    @raise Proto.Bad_frame on a corrupt reply (close the connection). *)

val call_idem : ?deadline_ms:int -> t -> Proto.request -> Proto.reply
(** {!call} under the retry loop.  Stamps a process-unique idempotency
    token (held across all attempts of this logical request) and the
    optional [deadline_ms] into the request's {!Proto.meta}.  Transport
    failures — connection loss, IO timeout, corrupt reply frame, a
    server ["protocol error"] reply to a mangled send — reconnect (and
    re-attach) with backoff and retry; {e semantic} replies including
    [Error] and [Overloaded] are returned as-is.
    @raise Failure when all attempts are exhausted. *)

val post : t -> Proto.request -> unit
(** Send without waiting.  Replies come back in request order (except
    that [Overloaded] rejections and inline [Pong]s can overtake queued
    work — pipelining callers must match replies by kind, or just count
    them). *)

val post_meta : t -> meta:Proto.meta -> Proto.request -> unit
(** {!post} with explicit request metadata (deadline, token). *)

val receive : t -> Proto.reply
(** Block for the next reply. *)

val receive_frame : t -> string
(** Block for the next reply {e frame}, undecoded — for byte-identity
    assertions (a pipelined singleton's reply frame must equal the
    unpipelined one).  @raise End_of_file on hangup. *)

(** {1 Pipelining}

    A batch travels as one {!Proto.encode_batch} frame; the server
    executes its requests in order on the session's worker and streams
    back one ordinary reply frame per request (no batch reply envelope).
    [Attach] cannot ride in a batch (it is connection-level; the server
    answers it with [Error]); [Ping] can, but is then answered by the
    worker in order rather than inline. *)

val post_batch : t -> (Proto.meta * Proto.request) list -> unit
(** Send N requests in one frame without waiting.
    @raise Invalid_argument on an empty batch. *)

val call_batch : t -> (Proto.meta * Proto.request) list -> Proto.reply list
(** {!post_batch}, then block for exactly one reply per request, in
    request order. *)

(** {1 Introspection} *)

val retries : t -> int
(** Transport-failure retries performed by {!call_idem} so far. *)

val reconnects : t -> int
(** Successful re-dials after the first connection (includes {!churn}). *)

val session : t -> int option
(** The attached durable session's server id, when currently attached. *)

(** {1 Convenience wrappers}

    Each sends one request and @raise Failure on an [Error]/[Overloaded]
    or unexpected-shape reply. *)

val ping : t -> unit
val lit : t -> ?phase:bool -> int -> int
(** Returns the handle. *)

val apply : t -> Proto.op -> int * Proto.cert
val fetch : t -> int -> string
val put : t -> string -> int
val count : t -> handle:int -> nvars:int -> float
val free : t -> int list -> int
val compile : t -> name:string -> blif:string -> (string * int * int) list
val stats : t -> (string * int) list
