(** Blocking client for the BDD service.

    One connection = one server session (a private manager and handle
    namespace).  {!call} is the strict request/reply cycle; {!post} /
    {!receive} split it for pipelining (the load generator uses that to
    probe admission control).  Not thread-safe: one connection per
    thread, which is also the closed-loop shape of {!module:Server}'s
    intended clients. *)

type t

val connect : Server.bind -> t
(** Connect to a {!Server.bind} address ([Tcp] dials loopback).
    @raise Unix.Unix_error when nobody is listening. *)

val connect_sockaddr : Unix.sockaddr -> t

val close : t -> unit

val call : t -> Proto.request -> Proto.reply
(** Send one request and block for its reply.
    @raise End_of_file when the server hung up;
    @raise Proto.Bad_frame on a corrupt reply (close the connection). *)

val post : t -> Proto.request -> unit
(** Send without waiting.  Replies come back in request order (except
    that [Overloaded] rejections and inline [Pong]s can overtake queued
    work — pipelining callers must match replies by kind, or just count
    them). *)

val receive : t -> Proto.reply
(** Block for the next reply. *)

(** {1 Convenience wrappers}

    Each sends one request and @raise Failure on an [Error]/[Overloaded]
    or unexpected-shape reply. *)

val ping : t -> unit
val lit : t -> ?phase:bool -> int -> int
(** Returns the handle. *)

val apply : t -> Proto.op -> int * Proto.cert
val fetch : t -> int -> string
val put : t -> string -> int
val count : t -> handle:int -> nvars:int -> float
val free : t -> int list -> int
val compile : t -> name:string -> blif:string -> (string * int * int) list
val stats : t -> (string * int) list
