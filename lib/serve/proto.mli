(** The BDD service wire protocol: length-prefixed, checksummed binary
    frames.

    Frame layout (both directions):

    {v "BSV1" ++ u8 version ++ le32 body-length ++ body ++ le32 crc v}

    with the CRC-32 ({!Resil.Checkpoint.crc32}) taken over everything
    before it — body, magic, version and length — the same trailer
    discipline as {!Resil.Checkpoint}, so a flipped bit or a torn write
    anywhere in a frame raises {!Bad_frame} and can never decode into a
    different well-formed message.  Bodies are opcode-tagged and use the
    LEB128 varints of {!Bdd.serialized_to_string}; BDD payloads ({!Put},
    {!Fetch}) travel as [Bdd.export] bytes and are revalidated by
    [Bdd.import] on arrival.

    Handles are small per-session integers naming BDDs that live in the
    session's private manager on the server; sessions never see each
    other's handles (see DESIGN.md §Serving).

    Every reply that may have walked the degradation ladder carries a
    {!cert}: [Exact], or [Degraded rungs] — the result is a sound
    under-approximation of the exact answer and [rungs] names the relief
    measures taken (["gc"], ["HB\@512"], …), mirroring
    {!Resil.Degrade}. *)

exception Bad_frame of string
(** Malformed frame or body: bad magic, unsupported version, length
    mismatch, checksum mismatch, unknown opcode, truncated or trailing
    body bytes.  A peer receiving this on decode must treat the
    connection as desynchronized and close it. *)

(** Handle-level BDD operations ({!Apply}). *)
type op =
  | Not of int
  | And of int * int
  | Or of int * int
  | Xor of int * int
  | Ite of int * int * int
  | Exists of int list * int  (** quantified variable indices, operand *)
  | Forall of int list * int

type request =
  | Ping
  | Lit of { var : int; phase : bool }
      (** the positive ([phase]) or negative literal of variable [var] *)
  | Put of { bdd : string }  (** [Bdd.serialized_to_string] bytes *)
  | Fetch of { handle : int }
  | Apply of op
  | Compile of { name : string; blif : string }
      (** register the BLIF text as model [name] and build its output
          functions as handles *)
  | Approx of { meth : Approx.meth; threshold : int; handle : int }
  | Decomp of { handle : int; disjunctive : bool }
  | Reach of { model : string; max_iter : int }  (** [0] = unbounded *)
  | Count of { handle : int; nvars : int }
  | Sat of { handle : int }
  | Free of { handles : int list }
  | Stats
  | Attach of { key : string }
      (** bind this connection to the durable session named [key],
          creating it if new and resuming it (handles intact) if a
          previous connection dropped — the basis for safe client
          reconnects.  Handled by the server's reader, not the worker
          pool. *)

type meta = {
  deadline_ms : int;
      (** soft per-request deadline in milliseconds; [0] = none.  The
          server turns it into a kernel tick-hook budget so long
          [Apply]/[Reach] work is cooperatively cancelled and answered
          via the degradation ladder with a ["deadline"] rung. *)
  token : int;
      (** idempotency token; [0] = none.  The server keeps a per-session
          dedup window and replays the recorded reply when a retry
          carries a token it has already served, so retried stateful
          requests ([Compile], [Put]) are exactly-once. *)
}

val no_meta : meta
(** [{ deadline_ms = 0; token = 0 }] — encodes as no envelope at all,
    byte-identical to the PR 5 wire format. *)

type cert = Exact | Degraded of string list

type reply =
  | Pong
  | Handle of { id : int; size : int; cert : cert }
  | Bdd_payload of { bdd : string }
  | Handles of (string * int * int) list  (** name, handle, size *)
  | Pair of { g : int; g_size : int; h : int; h_size : int; shared : int }
  | Reach_done of {
      states : float;
      iterations : int;
      images : int;
      reached : int;  (** handle on the reached set *)
      reached_size : int;
      cert : cert;
    }
  | Count_is of float
  | Sat_is of (int * bool) list option
  | Stats_are of (string * int) list
  | Freed of int
  | Error of string
      (** the request failed; the session and every other handle are
          unaffected *)
  | Overloaded
      (** admission control refused the request; retry later *)
  | Attached of { session : int; resumed : bool; handles : int }
      (** reply to {!Attach}: the durable session id, whether an existing
          session was resumed, and how many handles it holds *)

val pp_request : Format.formatter -> request -> unit
val pp_reply : Format.formatter -> reply -> unit

(** {1 Codec}

    [encode_*] produce a complete frame; [decode_*] take a complete frame
    and @raise Bad_frame on anything the encoder did not produce. *)

val encode_request : ?meta:meta -> request -> string
(** With [meta] = {!no_meta} (the default) the frame is byte-identical
    to the metadata-free PR 5 encoding; otherwise the body is wrapped in
    a metadata envelope (opcode 14) that pre-PR 9 decoders reject as an
    unknown opcode rather than misparse. *)

val decode_request : string -> request
(** Decodes and discards any metadata envelope. *)

val decode_request_meta : string -> meta * request
(** Like {!decode_request} but returns the request metadata ({!no_meta}
    when the frame carries no envelope).  @raise Bad_frame on a batch
    frame — this is exactly what a pre-batch server does with one, so a
    pipelining client talking to an old server gets a clean protocol
    error, never a misparse. *)

(** {2 Pipelining}

    A batch frame (opcode 15) carries N requests at once: a varint
    count, then each request's body — metadata envelope included — as a
    length-prefixed blob, bit-for-bit the body a singleton frame would
    have carried.  The server answers with N ordinary reply frames in
    request order (no batch reply envelope), so replies to a pipelined
    singleton are byte-identical to unpipelined ones.  Batches do not
    nest, and an empty batch is malformed. *)

type envelope = Single of meta * request | Batch of (meta * request) list

val encode_batch : (meta * request) list -> string
(** @raise Invalid_argument on an empty batch. *)

val decode_envelope : string -> envelope
(** Decode either frame shape.  A plain request frame decodes to
    [Single], exactly as {!decode_request_meta} would. *)

val encode_reply : reply -> string
val decode_reply : string -> reply

val max_frame : int
(** Hard bound on the body length (64 MB); both ends enforce it before
    trusting a length field. *)

val frame_size : string -> int option
(** Incremental framing for event-loop readers: given the {e prefix} of
    a frame stream, the total byte length (header + body + trailer) of
    the frame at its head, or [None] while fewer than the 9 header bytes
    have arrived.  @raise Bad_frame on a malformed header or an
    announced body over {!max_frame} — the stream can never resync, so
    the connection must be dropped. *)

(** {1 Frame transport} *)

val read_frame : Unix.file_descr -> string option
(** Read one complete frame.  [None] on clean EOF at a frame boundary.
    @raise Bad_frame on a malformed header, an oversized announced
    length, or EOF mid-frame.  Restarts on [EINTR]. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write the whole frame, looping over short writes. *)
