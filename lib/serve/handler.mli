(** Request execution against a session — the server with the sockets
    taken away.

    {!handle} never raises and never corrupts the session: any failure
    (unknown handle, malformed BLIF, a blown budget the ladder cannot
    rescue, an injected fault) comes back as {!Proto.Error}, and the
    manager is left consistent, so the next request on the same session
    runs unharmed.  The in-process tests and the server share this code
    path, which is what makes the server's replies spot-checkable against
    an oracle.

    {2 Degradation on the wire}

    Requests that build BDDs run under the per-request {!limits}: a node
    budget (ceiling = live nodes at request start + budget) and a
    wall-clock deadline enforced via {!Bdd.set_tick}.  When the exact
    computation blows a limit, the handler walks a {!Resil.Degrade}-style
    ladder: collect the session's garbage and retry; then — for requests
    whose results are monotone in their operands ([And], [Or], [Exists],
    [Approx]) — retry on heavy-branch under-approximated operands at
    geometrically shrinking thresholds.  A rescued reply carries
    [Degraded ["HB\@512"]] and its BDD is a {e sound under-approximation}
    (a subset) of the exact answer; non-monotone requests ([Not], [Xor],
    [Ite], [Forall], [Decomp], [Compile], [Put]) stop after the gc rung
    and reply [Error] rather than return an unsound result.

    {2 Arena-backed sessions}

    When the session carries an {!Arena.t} (see [Session.create]'s
    [arena]), [Compile] consults the arena catalog first — a hit views
    the published output segments zero-copy instead of recompiling — and
    a miss publishes what it compiled for the next session; [Put] goes
    through [Arena.publish_serialized], so identical payloads across
    sessions share one segment.  Per-request {!limits} are {e not} armed
    for arena-backed sessions: node limits and tick hooks are
    manager-global, and the manager is shared by concurrent domains —
    resource use is bounded by the arena's table capacity and the
    server's admission control instead. *)

type limits = {
  node_budget : int option;  (** fresh nodes allowed per request *)
  deadline : float option;  (** wall-clock seconds per request *)
}

val no_limits : limits

val handle :
  ?stats_extra:(unit -> (string * int) list) ->
  ?pool:Tpool.t ->
  limits ->
  Session.t ->
  Proto.request ->
  Proto.reply
(** Execute one request.  [stats_extra] is appended to [Stats] replies
    (the server injects its process-wide counters there).  [pool] forks
    the boolean connectives ([And]/[Or]/[Xor]/[Ite]/[Exists]) and [Reach]
    image computation across the pool's domains; the session must then
    have been created with [Session.create ~shared:true].  Replies are
    bit-identical with and without a pool. *)

val degraded : Proto.reply -> bool
(** The reply carries a [Degraded] certificate (for metrics). *)
