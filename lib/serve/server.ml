(* Socket front-end (see the mli for the threading model).

   Connection lifecycle is refcounted: the reader thread holds one
   reference and every queued request holds one, so a file descriptor is
   only closed when the reader has exited AND no worker still intends to
   write a reply — never while an fd could be written, which would risk
   a reply landing on a recycled descriptor.

   Sessions are decoupled from connections: every accepted connection
   starts on a private anonymous session (dies with the connection,
   exactly the PR 5 behavior), but an [Attach key] frame rebinds the
   connection to a durable keyed session that lingers after disconnect
   and can be resumed — which is what makes the retrying client's
   reconnect-and-continue safe.  The registry (conns, keyed sessions,
   id index) lives under one mutex; per-session BDD state needs none
   because a session's requests are pinned to one worker domain. *)

type bind = Unix_path of string | Tcp of int

type config = {
  bind : bind;
  workers : int;
  queue_depth : int;
  limits : Handler.limits;
  max_sessions : int;
  on_dispatch : (Proto.request -> unit) option;
  par_jobs : int;
  io_timeout : float option;
  hang_timeout : float option;
  session_linger : float;
  table_capacity : int option;
  session_spool : string option;
}

let default_config =
  {
    bind = Unix_path "bdd-serve.sock";
    workers = 4;
    queue_depth = 64;
    limits = Handler.no_limits;
    max_sessions = 1024;
    on_dispatch = None;
    par_jobs = 1;
    io_timeout = None;
    hang_timeout = None;
    session_linger = 30.;
    table_capacity = None;
    session_spool = None;
  }

module M = struct
  open Obs

  let reg = Metrics.default
  let accepted = Metrics.counter reg "serve.accepted"
  let requests = Metrics.counter reg "serve.requests"
  let replies = Metrics.counter reg "serve.replies"
  let rejected = Metrics.counter reg "serve.rejected_overload"
  let degraded = Metrics.counter reg "serve.degraded_replies"
  let errors = Metrics.counter reg "serve.errors"
  let bytes_in = Metrics.counter reg "serve.bytes_in"
  let bytes_out = Metrics.counter reg "serve.bytes_out"
  let io_timeouts = Metrics.counter reg "serve.io_timeouts"
  let deduped = Metrics.counter reg "serve.deduped"
  let quarantined = Metrics.counter reg "serve.quarantined"
  let rebuilt = Metrics.counter reg "serve.rebuilt_sessions"
  let resumed = Metrics.counter reg "serve.resumed_sessions"
  let sessions = Metrics.gauge reg "serve.sessions"
  let request_us = Metrics.histogram reg "serve.request_us"
end

let rec_inc c n = if Obs.Metrics.recording () then Obs.Metrics.inc c n

type conn = {
  sid : int;
  fd : Unix.file_descr;
  mutable sess : sess;
  wlock : Mutex.t;  (* serializes frame writes; also guards refs/dead *)
  mutable refs : int;
  mutable dead : bool;  (* a write failed; stop trying *)
  mutable closed : bool;
}

and sess = {
  mutable s : Session.t;  (* swapped wholesale by a rebuild *)
  mutable conn : conn option;  (* attached connection, if any *)
  mutable detached_at : float;  (* wall time of last detach (keyed only) *)
  mutable rebuilding : bool;  (* quarantined; Attach must wait *)
}

type t = {
  cfg : config;
  listener : Unix.file_descr;
  addr : Unix.sockaddr;
  pool : Mt.Service.t;
  par : Mt.Par.t option;  (* parallel kernel, shared by all shards *)
  lock : Mutex.t;  (* conns + keyed + by_id registries, counters, readers *)
  conns : (int, conn) Hashtbl.t;
  keyed : (string, sess) Hashtbl.t;  (* durable sessions by attach key *)
  by_id : (int, sess) Hashtbl.t;  (* every live session by session id *)
  mutable next_sid : int;
  mutable readers : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable housekeeper_thread : Thread.t option;
  mutable supervisor_thread : Thread.t option;
  mutable stopping : bool;
  mutable drained : bool;
  c_accepted : int Atomic.t;
  c_requests : int Atomic.t;
  c_rejected : int Atomic.t;
  c_degraded : int Atomic.t;
  c_errors : int Atomic.t;
  c_io_timeouts : int Atomic.t;
  c_deduped : int Atomic.t;
  c_quarantined : int Atomic.t;
  c_rebuilt : int Atomic.t;
  c_resumed : int Atomic.t;
}

let address t = t.addr
let accepted t = Atomic.get t.c_accepted
let requests t = Atomic.get t.c_requests
let rejected t = Atomic.get t.c_rejected
let degraded_replies t = Atomic.get t.c_degraded
let errors t = Atomic.get t.c_errors
let io_timeouts t = Atomic.get t.c_io_timeouts
let deduped t = Atomic.get t.c_deduped
let quarantined t = Atomic.get t.c_quarantined
let rebuilt_sessions t = Atomic.get t.c_rebuilt
let resumed_sessions t = Atomic.get t.c_resumed
let respawns t = Mt.Service.respawns t.pool

let sessions t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.conns in
  Mutex.unlock t.lock;
  n

let durable_sessions t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.keyed in
  Mutex.unlock t.lock;
  n

(* --- connection refcounting ------------------------------------------ *)

let retain c =
  Mutex.lock c.wlock;
  c.refs <- c.refs + 1;
  Mutex.unlock c.wlock

(* Under t.lock.  Anonymous sessions die with their connection; keyed
   sessions merely detach and start their linger clock. *)
let detach_session_locked t c =
  let sess = c.sess in
  match sess.conn with
  | Some c' when c' == c ->
      sess.conn <- None;
      sess.detached_at <- Obs.Timing.wall ();
      if Session.key sess.s = None then
        Hashtbl.remove t.by_id (Session.id sess.s)
  | _ -> ()

let release t c =
  Mutex.lock c.wlock;
  c.refs <- c.refs - 1;
  let close_now = c.refs = 0 && not c.closed in
  if close_now then c.closed <- true;
  Mutex.unlock c.wlock;
  if close_now then begin
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Mutex.lock t.lock;
    Hashtbl.remove t.conns c.sid;
    detach_session_locked t c;
    Mutex.unlock t.lock;
    if Obs.Metrics.recording () then Obs.Metrics.set M.sessions (sessions t)
  end

let send_frame t c frame =
  ignore t;
  Mutex.lock c.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.wlock)
    (fun () ->
      if not c.dead then
        try
          Proto.write_frame c.fd frame;
          rec_inc M.replies 1;
          rec_inc M.bytes_out (String.length frame)
        with Unix.Unix_error _ ->
          (* peer hung up (or a send timeout fired) mid-reply: the stream
             is desynchronized, so stop writing and wake the reader out
             of its blocking read so the connection gets torn down *)
          c.dead <- true;
          (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
           with Unix.Unix_error _ -> ()))

let send t c reply = send_frame t c (Proto.encode_reply reply)

(* --- request execution (worker side) --------------------------------- *)

let server_stats t () =
  [
    ("serve.sessions", sessions t);
    ("serve.durable_sessions", durable_sessions t);
    ("serve.accepted", accepted t);
    ("serve.requests", requests t);
    ("serve.rejected_overload", rejected t);
    ("serve.degraded_replies", degraded_replies t);
    ("serve.errors", errors t);
    ("serve.io_timeouts", io_timeouts t);
    ("serve.deduped", deduped t);
    ("serve.respawns", respawns t);
    ("serve.quarantined", quarantined t);
    ("serve.rebuilt_sessions", rebuilt_sessions t);
    ("serve.workers", t.cfg.workers);
    ("serve.queue_pending", Mt.Service.pending t.pool);
    ("serve.p95_request_us", Obs.Metrics.quantile M.request_us 0.95);
  ]

(* Fold a request's wire deadline into the configured per-request limits:
   the tighter of the two wins. *)
let limits_for cfg (meta : Proto.meta) =
  if meta.Proto.deadline_ms <= 0 then cfg.limits
  else
    let d = float_of_int meta.Proto.deadline_ms /. 1000. in
    {
      cfg.limits with
      Handler.deadline =
        Some
          (match cfg.limits.Handler.deadline with
          | None -> d
          | Some d0 -> Float.min d0 d);
    }

(* [sess] is captured by the reader at submit time, NOT re-read from
   [c.sess] here: the shard was chosen from the session id at submit, so
   a pipelined request followed by [Attach] must keep executing against
   the session (and thus the worker domain) it was submitted under — the
   post-attach session runs on its own shard.  Re-reading [c.sess] would
   let the same Session be driven from two domains at once. *)
let process t c sess (meta : Proto.meta) req () =
  Fun.protect
    ~finally:(fun () -> release t c)
    (fun () ->
      Option.iter (fun f -> f req) t.cfg.on_dispatch;
      let rebuilding =
        (* read under t.lock: [quarantine] sets the flag under the same
           lock before it snapshots the journal, so any request that gets
           past this check completed before the fence and none runs
           concurrently with the rebuild *)
        Mutex.lock t.lock;
        let r = sess.rebuilding in
        Mutex.unlock t.lock;
        r
      in
      if rebuilding then begin
        Atomic.incr t.c_errors;
        rec_inc M.errors 1;
        send t c (Proto.Error "session quarantined: rebuilding, retry")
      end
      else
      let s = sess.s in
      match Session.dedup_find s ~token:meta.Proto.token with
      | Some frame ->
          (* a retry of a request we already executed: replay the recorded
             reply verbatim, never re-execute *)
          Atomic.incr t.c_deduped;
          rec_inc M.deduped 1;
          send_frame t c frame
      | None ->
          let t0 = Obs.Timing.wall () in
          let reply =
            Obs.Trace.with_span "serve.request" (fun () ->
                Handler.handle ~stats_extra:(server_stats t)
                  ?pool:(Option.map Mt.Par.pool t.par)
                  (limits_for t.cfg meta) s req)
          in
          (match reply with
          | Proto.Error _ ->
              Atomic.incr t.c_errors;
              rec_inc M.errors 1
          | r when Handler.degraded r ->
              Atomic.incr t.c_degraded;
              rec_inc M.degraded 1
          | _ -> ());
          (* journal successful handle-state changes so a respawned worker
             can rebuild this session; failures change no state *)
          (match reply with
          | Proto.Error _ | Proto.Overloaded -> ()
          | _ -> ( try Session.record_exchange s req reply with _ -> ()));
          let frame = Proto.encode_reply reply in
          send_frame t c frame;
          (* only successful replies enter the dedup window (mirroring
             the record_exchange guard): a transient error — deadline
             exceeded, table full — must re-execute on retry, not replay
             as a sticky failure *)
          (match reply with
          | Proto.Error _ | Proto.Overloaded -> ()
          | _ -> Session.dedup_add s ~token:meta.Proto.token frame);
          if Obs.Metrics.recording () then
            Obs.Metrics.observe M.request_us
              (int_of_float ((Obs.Timing.wall () -. t0) *. 1e6));
          Session.maybe_gc s)

(* --- session attach (reader side) ------------------------------------- *)

let do_attach t c key =
  Mutex.lock t.lock;
  let reply =
    if t.stopping then Proto.Error "server is draining"
    else
      match Hashtbl.find_opt t.keyed key with
      | Some sess when sess.rebuilding ->
          Proto.Error (Printf.sprintf "session %S is rebuilding, retry" key)
      | Some sess when sess.conn <> None ->
          Proto.Error (Printf.sprintf "session %S is attached elsewhere" key)
      | Some sess ->
          detach_session_locked t c;
          sess.conn <- Some c;
          c.sess <- sess;
          Atomic.incr t.c_resumed;
          rec_inc M.resumed 1;
          Proto.Attached
            {
              session = Session.id sess.s;
              resumed = true;
              handles = Session.handle_count sess.s;
            }
      | None ->
          detach_session_locked t c;
          let id = t.next_sid in
          t.next_sid <- id + 1;
          let s =
            Session.create
              ~shared:(t.cfg.par_jobs > 1)
              ?table_capacity:t.cfg.table_capacity ~key ~id ()
          in
          let sess =
            { s; conn = Some c; detached_at = 0.; rebuilding = false }
          in
          Hashtbl.replace t.keyed key sess;
          Hashtbl.replace t.by_id id sess;
          c.sess <- sess;
          Proto.Attached { session = id; resumed = false; handles = 0 }
  in
  Mutex.unlock t.lock;
  send t c reply

(* --- reader threads --------------------------------------------------- *)

let reader t c () =
  let rec loop () =
    match Proto.read_frame c.fd with
    | None -> ()
    | exception Proto.Bad_frame m ->
        (* desynchronized: answer once, then hang up *)
        send t c (Proto.Error (Printf.sprintf "protocol error: %s" m))
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
      ->
        (* the io timeout fired mid-read: a stalled peer (slow-loris, torn
           frame, wire-fault stall) releases this reader instead of
           pinning it; the retrying client reconnects and re-attaches *)
        Atomic.incr t.c_io_timeouts;
        rec_inc M.io_timeouts 1
    | exception Unix.Unix_error _ -> ()
    | Some frame -> (
        rec_inc M.bytes_in (String.length frame);
        match Proto.decode_request_meta frame with
        | exception Proto.Bad_frame m ->
            send t c (Proto.Error (Printf.sprintf "protocol error: %s" m))
        | meta, req -> (
            Atomic.incr t.c_requests;
            rec_inc M.requests 1;
            match req with
            | Proto.Ping ->
                (* liveness probe: answered even when the shards are full *)
                send t c Proto.Pong;
                loop ()
            | Proto.Attach { key } ->
                (* connection-level: rebind the session registry entry
                   without touching any worker *)
                do_attach t c key;
                loop ()
            | req ->
                retain c;
                (* bind the request to the session it was submitted
                   under: shard choice and execution must agree even if
                   an Attach rebinds c.sess while this sits queued *)
                let sess = c.sess in
                let session_id = Session.id sess.s in
                let shard = session_id mod t.cfg.workers in
                let label = Printf.sprintf "s%d" session_id in
                if
                  Mt.Service.submit t.pool ~shard ~label
                    (process t c sess meta req)
                then loop ()
                else begin
                  release t c;
                  Atomic.incr t.c_rejected;
                  rec_inc M.rejected 1;
                  send t c Proto.Overloaded;
                  loop ()
                end))
  in
  Fun.protect ~finally:(fun () -> release t c) loop

(* --- supervision: quarantine + rebuild -------------------------------- *)

let session_of_label label =
  if String.length label > 1 && label.[0] = 's' then
    int_of_string_opt (String.sub label 1 (String.length label - 1))
  else None

(* Wait (bounded) until a marker closure submitted NOW has run on the
   shard.  The shard is a single FIFO worker, so once the marker runs,
   every request queued before the quarantine flag was raised has
   finished — and those queued after it are dropped by [process] — so
   the poisoned session's journal is quiescent on the replacement
   worker's side.  Best-effort: a full queue or a drain in progress
   bounds the wait instead of blocking the supervisor thread. *)
let fence_shard t ~shard =
  let passed = Atomic.make false in
  let deadline = Obs.Timing.wall () +. 2.0 in
  let rec submit_loop () =
    if Obs.Timing.wall () > deadline then false
    else if
      Mt.Service.submit t.pool ~shard ~label:"fence" (fun () ->
          Atomic.set passed true)
    then true
    else begin
      Thread.delay 0.005;
      submit_loop ()
    end
  in
  if submit_loop () then
    let rec wait () =
      if Atomic.get passed || Obs.Timing.wall () > deadline then ()
      else begin
        Thread.delay 0.002;
        wait ()
      end
    in
    wait ()

(* A worker died or wedged mid-request.  The poisoned request's session
   is quarantined: its attached connection is killed (the client's reply
   stream has a hole in it, so letting it continue would desynchronize
   handle mirrors), and — if the session is durable — a fresh session is
   rebuilt from the journal and swapped in for the next Attach.  Other
   sessions on the same shard are untouched: their state lives in their
   own managers and their queued requests survive in the shard queue,
   which the replacement worker drains. *)
let quarantine t ~shard ~quarantined =
  match quarantined with
  | None -> ()
  | Some label -> (
      Atomic.incr t.c_quarantined;
      rec_inc M.quarantined 1;
      match session_of_label label with
      | None -> ()
      | Some session_id -> (
          Mutex.lock t.lock;
          let sess = Hashtbl.find_opt t.by_id session_id in
          (match sess with Some sess -> sess.rebuilding <- true | None -> ());
          Mutex.unlock t.lock;
          match sess with
          | None -> ()
          | Some sess ->
              (match sess.conn with
              | Some c ->
                  Mutex.lock c.wlock;
                  c.dead <- true;
                  Mutex.unlock c.wlock;
                  (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
                   with Unix.Unix_error _ -> ())
              | None -> ());
              let key = Session.key sess.s in
              (match key with
              | None ->
                  (* anonymous: the connection is gone, so the session is
                     unreachable — drop it *)
                  Mutex.lock t.lock;
                  Hashtbl.remove t.by_id session_id;
                  sess.rebuilding <- false;
                  Mutex.unlock t.lock
              | Some _ ->
                  (* durable: replay the journal into a fresh manager.
                     The replacement worker is already draining the shard
                     queue, so fence it first: requests queued before the
                     quarantine run to completion behind the fence marker
                     and later ones are dropped by [process] on the
                     rebuilding flag — only then is the journal quiescent
                     on the live worker's side.  (A wedged-but-alive OLD
                     domain that later unwedges can still touch the old
                     Session object; that mutates state nobody reads any
                     more — the swap below hands out a fresh one — and at
                     worst the snapshot misses its final entry.)  When a
                     spool directory is configured the journal
                     round-trips through a Resil.Checkpoint atomic
                     checksummed file — the same artifact a future
                     cold-start restore would read. *)
                  fence_shard t ~shard;
                  let entries =
                    match t.cfg.session_spool with
                    | None -> Session.journal sess.s
                    | Some dir -> (
                        let path =
                          Filename.concat dir
                            (Printf.sprintf "session-%d.journal" session_id)
                        in
                        try
                          Session.journal_save sess.s path;
                          Session.journal_load path
                        with _ -> Session.journal sess.s)
                  in
                  let fresh =
                    try
                      fst
                        (Session.rebuild
                           ~shared:(t.cfg.par_jobs > 1)
                           ?table_capacity:t.cfg.table_capacity ?key
                           ~id:session_id entries)
                    with _ ->
                      Session.create
                        ~shared:(t.cfg.par_jobs > 1)
                        ?table_capacity:t.cfg.table_capacity ?key
                        ~id:session_id ()
                  in
                  Mutex.lock t.lock;
                  sess.s <- fresh;
                  sess.conn <- None;
                  sess.detached_at <- Obs.Timing.wall ();
                  sess.rebuilding <- false;
                  Mutex.unlock t.lock;
                  Atomic.incr t.c_rebuilt;
                  rec_inc M.rebuilt 1)))

(* --- housekeeping ------------------------------------------------------ *)

let reap_lingering t =
  let now = Obs.Timing.wall () in
  Mutex.lock t.lock;
  let expired =
    Hashtbl.fold
      (fun key sess acc ->
        if
          sess.conn = None && (not sess.rebuilding)
          && now -. sess.detached_at > t.cfg.session_linger
        then (key, sess) :: acc
        else acc)
      t.keyed []
  in
  List.iter
    (fun (key, sess) ->
      Hashtbl.remove t.keyed key;
      Hashtbl.remove t.by_id (Session.id sess.s))
    expired;
  Mutex.unlock t.lock

let housekeeper t () =
  while not t.stopping do
    Thread.delay 0.1;
    if not t.stopping then reap_lingering t
  done

(* --- accept loop ------------------------------------------------------ *)

let accept_conn t fd =
  Mutex.lock t.lock;
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  let too_many = Hashtbl.length t.conns >= t.cfg.max_sessions in
  Mutex.unlock t.lock;
  if too_many || t.stopping then begin
    (try
       Proto.write_frame fd (Proto.encode_reply Proto.Overloaded)
     with Unix.Unix_error _ | Proto.Bad_frame _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  end
  else begin
    (* socket-level timeouts: a peer that stalls mid-frame (slow-loris,
       injected wire stall, network partition) trips EAGAIN in the
       reader / writer instead of pinning the thread forever *)
    (match t.cfg.io_timeout with
    | Some secs when secs > 0. ->
        (try
           Unix.setsockopt_float fd Unix.SO_RCVTIMEO secs;
           Unix.setsockopt_float fd Unix.SO_SNDTIMEO secs
         with Unix.Unix_error _ | Invalid_argument _ -> ())
    | _ -> ());
    let s =
      Session.create
        ~shared:(t.cfg.par_jobs > 1)
        ?table_capacity:t.cfg.table_capacity ~id:sid ()
    in
    let sess = { s; conn = None; detached_at = 0.; rebuilding = false } in
    let c =
      {
        sid;
        fd;
        sess;
        wlock = Mutex.create ();
        refs = 1;
        dead = false;
        closed = false;
      }
    in
    sess.conn <- Some c;
    Mutex.lock t.lock;
    Hashtbl.replace t.conns sid c;
    Hashtbl.replace t.by_id sid sess;
    let th = Thread.create (reader t c) () in
    t.readers <- th :: t.readers;
    Mutex.unlock t.lock;
    Atomic.incr t.c_accepted;
    rec_inc M.accepted 1;
    if Obs.Metrics.recording () then Obs.Metrics.set M.sessions (sessions t)
  end

let accept_loop t () =
  let rec loop () =
    if t.stopping then ()
    else
      match Unix.accept t.listener with
      | fd, _ ->
          accept_conn t fd;
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> () (* listener closed: draining *)
  in
  loop ()

(* --- lifecycle -------------------------------------------------------- *)

(* Bind a Unix socket path, surviving a stale file from a crashed
   predecessor: on EADDRINUSE, probe-connect — a live server answers
   (keep hands off, re-raise), a dead one gives ECONNREFUSED (unlink the
   corpse and bind for real).  Never unlink blindly: that would steal
   the path from a running server. *)
let bind_unix fd path addr =
  match Unix.bind fd addr with
  | () -> ()
  | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
      let live =
        match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
        | exception Unix.Unix_error _ -> true (* cannot probe: assume live *)
        | probe -> (
            Fun.protect
              ~finally:(fun () ->
                try Unix.close probe with Unix.Unix_error _ -> ())
              (fun () ->
                match Unix.connect probe addr with
                | () -> true
                | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> false
                | exception Unix.Unix_error _ -> true))
      in
      if live then
        raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
      else begin
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        Unix.bind fd addr
      end

let start cfg =
  if cfg.workers < 1 then invalid_arg "Serve.Server: workers < 1";
  (* a peer closing mid-write must surface as EPIPE, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listener, addr =
    match cfg.bind with
    | Unix_path path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let addr = Unix.ADDR_UNIX path in
        (try bind_unix fd path addr
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        (fd, addr)
    | Tcp port ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        (fd, Unix.getsockname fd)
  in
  Unix.listen listener 64;
  let t =
    {
      cfg;
      listener;
      addr;
      pool =
        Mt.Service.create ~label:"serve" ~workers:cfg.workers
          ~queue_depth:cfg.queue_depth ();
      par =
        (if cfg.par_jobs > 1 then Some (Mt.Par.create ~jobs:cfg.par_jobs ())
         else None);
      lock = Mutex.create ();
      conns = Hashtbl.create 64;
      keyed = Hashtbl.create 16;
      by_id = Hashtbl.create 64;
      next_sid = 0;
      readers = [];
      accept_thread = None;
      housekeeper_thread = None;
      supervisor_thread = None;
      stopping = false;
      drained = false;
      c_accepted = Atomic.make 0;
      c_requests = Atomic.make 0;
      c_rejected = Atomic.make 0;
      c_degraded = Atomic.make 0;
      c_errors = Atomic.make 0;
      c_io_timeouts = Atomic.make 0;
      c_deduped = Atomic.make 0;
      c_quarantined = Atomic.make 0;
      c_rebuilt = Atomic.make 0;
      c_resumed = Atomic.make 0;
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t.housekeeper_thread <- Some (Thread.create (housekeeper t) ());
  (match cfg.hang_timeout with
  | Some h when h > 0. ->
      t.supervisor_thread <-
        Some
          (Mt.Service.supervise t.pool
             ~interval:(Float.max 0.01 (h /. 4.))
             ~hang_timeout:h ~on_respawn:(quarantine t))
  | _ -> ());
  t

(* --- chaos probes ------------------------------------------------------ *)

let inject_worker_hang t ~shard ~seconds =
  Mt.Service.submit t.pool ~shard ~label:"chaos-hang" (fun () ->
      Thread.delay seconds)

let inject_worker_kill t ~shard =
  Mt.Service.submit t.pool ~shard ~label:"chaos-kill" (fun () ->
      raise Mt.Service.Poison)

let drain t =
  let already =
    Mutex.lock t.lock;
    let a = t.drained in
    if not a then t.stopping <- true;
    Mutex.unlock t.lock;
    a
  in
  if not already then begin
    (* 1. stop accepting: shutdown usually wakes a blocked accept; a
       throwaway self-connection covers platforms where it does not
       (accept_conn sees [stopping] and closes it straight away) *)
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (let domain =
       match t.addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
     in
     match Unix.socket domain Unix.SOCK_STREAM 0 with
     | exception Unix.Unix_error _ -> ()
     | fd ->
         (try Unix.connect fd t.addr with Unix.Unix_error _ -> ());
         (try Unix.close fd with Unix.Unix_error _ -> ()));
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (match t.cfg.bind with
    | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ());
    (* 2. answer everything queued and park the worker domains (only then
       is the parallel kernel quiescent and safe to join); the supervisor
       thread notices the pool draining and exits on its own *)
    Mt.Service.drain t.pool;
    Option.iter Thread.join t.supervisor_thread;
    Option.iter Mt.Par.shutdown t.par;
    Option.iter Thread.join t.housekeeper_thread;
    (* 3. hang up: shutdown wakes readers blocked in read *)
    Mutex.lock t.lock;
    let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    let readers = t.readers in
    Mutex.unlock t.lock;
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    List.iter Thread.join readers;
    Mutex.lock t.lock;
    t.drained <- true;
    Mutex.unlock t.lock
  end

let run t ~stop =
  let rec wait () =
    if stop () then ()
    else begin
      Thread.delay 0.1;
      wait ()
    end
  in
  wait ();
  drain t
