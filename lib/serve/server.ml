(* Socket front-end (see the mli for the threading model).

   Two interchangeable front ends parse frames off the sockets:

   - [Poll] (default): one event-loop thread multiplexes every accepted
     connection (plus the listener and a self-pipe) through
     [Unix.select], accumulates inbound bytes per connection, and peels
     complete frames off incrementally — so one slow or stalled client
     costs a buffer, not a thread, and a client may pipeline frames
     back-to-back without waiting for replies.  Workers write replies
     opportunistically (non-blocking, under the connection's write
     lock); whatever does not fit in the socket buffer is queued and
     flushed by the loop when the fd turns writable.

   - [Threaded]: the historical PR 5/9 shape — one blocking reader
     thread per connection, socket-level SO_RCVTIMEO/SO_SNDTIMEO
     timeouts.  Kept as a fallback and as a differential oracle for the
     event loop.

   Connection lifecycle is refcounted: the front end (reader thread or
   event loop) holds one reference and every queued request holds one,
   so a file descriptor is only closed when the front end has let go AND
   no worker still intends to write a reply — never while an fd could be
   written, which would risk a reply landing on a recycled descriptor.

   Sessions are decoupled from connections: every accepted connection
   starts on a private anonymous session (dies with the connection,
   exactly the PR 5 behavior), but an [Attach key] frame rebinds the
   connection to a durable keyed session that lingers after disconnect
   and can be resumed — which is what makes the retrying client's
   reconnect-and-continue safe.  The registry (conns, keyed sessions,
   id index) lives under one mutex; per-session BDD state needs none
   because a session's requests are pinned to one worker domain.

   With [arena = true] every session is arena-backed: one process-wide
   shared manager, compiled models published once and viewed zero-copy
   by later sessions (see Arena and Handler's arena paths). *)

type bind = Unix_path of string | Tcp of int
type frontend = Poll | Threaded

type config = {
  bind : bind;
  frontend : frontend;
  workers : int;
  queue_depth : int;
  limits : Handler.limits;
  max_sessions : int;
  on_dispatch : (Proto.request -> unit) option;
  par_jobs : int;
  io_timeout : float option;
  hang_timeout : float option;
  session_linger : float;
  table_capacity : int option;
  session_spool : string option;
  arena : bool;
}

let default_config =
  {
    bind = Unix_path "bdd-serve.sock";
    frontend = Poll;
    workers = 4;
    queue_depth = 64;
    limits = Handler.no_limits;
    max_sessions = 1024;
    on_dispatch = None;
    par_jobs = 1;
    io_timeout = None;
    hang_timeout = None;
    session_linger = 30.;
    table_capacity = None;
    session_spool = None;
    arena = false;
  }

module M = struct
  open Obs

  let reg = Metrics.default
  let accepted = Metrics.counter reg "serve.accepted"
  let requests = Metrics.counter reg "serve.requests"
  let replies = Metrics.counter reg "serve.replies"
  let batches = Metrics.counter reg "serve.batches"
  let rejected = Metrics.counter reg "serve.rejected_overload"
  let degraded = Metrics.counter reg "serve.degraded_replies"
  let errors = Metrics.counter reg "serve.errors"
  let bytes_in = Metrics.counter reg "serve.bytes_in"
  let bytes_out = Metrics.counter reg "serve.bytes_out"
  let io_timeouts = Metrics.counter reg "serve.io_timeouts"
  let deduped = Metrics.counter reg "serve.deduped"
  let quarantined = Metrics.counter reg "serve.quarantined"
  let rebuilt = Metrics.counter reg "serve.rebuilt_sessions"
  let resumed = Metrics.counter reg "serve.resumed_sessions"
  let sessions = Metrics.gauge reg "serve.sessions"
  let request_us = Metrics.histogram reg "serve.request_us"
end

let rec_inc c n = if Obs.Metrics.recording () then Obs.Metrics.inc c n

(* Slow-consumer bound on queued outbound bytes (poll front end): a peer
   that stops reading while replies pile up is cut off rather than
   allowed to hold frame memory without bound. *)
let out_cap = 2 * Proto.max_frame

type conn = {
  sid : int;
  fd : Unix.file_descr;
  mutable sess : sess;
  wlock : Mutex.t;  (* serializes frame writes; also guards refs/dead/outq *)
  mutable refs : int;
  mutable dead : bool;  (* a write failed; stop trying *)
  mutable closed : bool;
  (* poll front end only — outbound residue the event loop flushes *)
  outq : string Queue.t;
  mutable out_off : int;  (* bytes of the queue head already written *)
  mutable out_bytes : int;  (* total queued, for the slow-consumer cap *)
}

and sess = {
  mutable s : Session.t;  (* swapped wholesale by a rebuild *)
  mutable conn : conn option;  (* attached connection, if any *)
  mutable detached_at : float;  (* wall time of last detach (keyed only) *)
  mutable rebuilding : bool;  (* quarantined; Attach must wait *)
}

type t = {
  cfg : config;
  listener : Unix.file_descr;
  addr : Unix.sockaddr;
  pool : Mt.Service.t;
  par : Mt.Par.t option;  (* parallel kernel, shared by all shards *)
  arena : Arena.t option;  (* process-wide shared segments, if enabled *)
  lock : Mutex.t;  (* conns + keyed + by_id registries, counters, readers *)
  conns : (int, conn) Hashtbl.t;
  keyed : (string, sess) Hashtbl.t;  (* durable sessions by attach key *)
  by_id : (int, sess) Hashtbl.t;  (* every live session by session id *)
  mutable next_sid : int;
  mutable readers : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable loop_thread : Thread.t option;  (* poll front end *)
  mutable loop_stop : bool;
  wake_wr : Unix.file_descr option;  (* poll self-pipe, write end *)
  mutable housekeeper_thread : Thread.t option;
  mutable supervisor_thread : Thread.t option;
  mutable stopping : bool;
  mutable drained : bool;
  c_accepted : int Atomic.t;
  c_requests : int Atomic.t;
  c_batches : int Atomic.t;
  c_rejected : int Atomic.t;
  c_degraded : int Atomic.t;
  c_errors : int Atomic.t;
  c_io_timeouts : int Atomic.t;
  c_deduped : int Atomic.t;
  c_quarantined : int Atomic.t;
  c_rebuilt : int Atomic.t;
  c_resumed : int Atomic.t;
}

let address t = t.addr
let arena t = t.arena
let accepted t = Atomic.get t.c_accepted
let requests t = Atomic.get t.c_requests
let batches t = Atomic.get t.c_batches
let rejected t = Atomic.get t.c_rejected
let degraded_replies t = Atomic.get t.c_degraded
let errors t = Atomic.get t.c_errors
let io_timeouts t = Atomic.get t.c_io_timeouts
let deduped t = Atomic.get t.c_deduped
let quarantined t = Atomic.get t.c_quarantined
let rebuilt_sessions t = Atomic.get t.c_rebuilt
let resumed_sessions t = Atomic.get t.c_resumed
let respawns t = Mt.Service.respawns t.pool

let sessions t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.conns in
  Mutex.unlock t.lock;
  n

let durable_sessions t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.keyed in
  Mutex.unlock t.lock;
  n

(* wake the event loop out of select (poll front end only) *)
let wake t =
  match t.wake_wr with
  | None -> ()
  | Some fd -> (
      try ignore (Unix.write_substring fd "x" 0 1) with Unix.Unix_error _ -> ())

(* --- connection refcounting ------------------------------------------ *)

let retain c =
  Mutex.lock c.wlock;
  c.refs <- c.refs + 1;
  Mutex.unlock c.wlock

(* Under t.lock.  Anonymous sessions die with their connection; keyed
   sessions merely detach and start their linger clock. *)
let detach_session_locked t c =
  let sess = c.sess in
  match sess.conn with
  | Some c' when c' == c ->
      sess.conn <- None;
      sess.detached_at <- Obs.Timing.wall ();
      if Session.key sess.s = None then begin
        Hashtbl.remove t.by_id (Session.id sess.s);
        Session.close sess.s
      end
  | _ -> ()

let release t c =
  Mutex.lock c.wlock;
  c.refs <- c.refs - 1;
  let close_now = c.refs = 0 && not c.closed in
  if close_now then c.closed <- true;
  Mutex.unlock c.wlock;
  if close_now then begin
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Mutex.lock t.lock;
    Hashtbl.remove t.conns c.sid;
    detach_session_locked t c;
    Mutex.unlock t.lock;
    if Obs.Metrics.recording () then Obs.Metrics.set M.sessions (sessions t)
  end

(* --- outbound writes --------------------------------------------------- *)

let conn_broken c =
  (* the stream is desynchronized or the peer is gone: stop writing and
     wake the front end so the connection gets torn down *)
  c.dead <- true;
  try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* Write as much of [s.[off..]] as the (non-blocking) socket accepts;
   returns the new offset.  @raise on real errors; EAGAIN just stops. *)
let rec write_some fd s off =
  let len = String.length s - off in
  if len = 0 then off
  else
    match Unix.write_substring fd s off len with
    | n -> if n = len then off + len else write_some fd s (off + n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> off
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_some fd s off

(* Flush the queued outbound residue (wlock held).  True when drained. *)
let flush_outq c =
  let rec go () =
    match Queue.peek_opt c.outq with
    | None -> true
    | Some s -> (
        match write_some c.fd s c.out_off with
        | off when off = String.length s ->
            ignore (Queue.pop c.outq);
            c.out_bytes <- c.out_bytes - (off - c.out_off);
            c.out_off <- 0;
            go ()
        | off ->
            c.out_bytes <- c.out_bytes - (off - c.out_off);
            c.out_off <- off;
            false
        | exception Unix.Unix_error _ ->
            conn_broken c;
            true)
  in
  go ()

let send_frame t c frame =
  Mutex.lock c.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.wlock)
    (fun () ->
      if not c.dead then
        match t.cfg.frontend with
        | Threaded -> (
            try
              Proto.write_frame c.fd frame;
              rec_inc M.replies 1;
              rec_inc M.bytes_out (String.length frame)
            with Unix.Unix_error _ ->
              (* peer hung up (or a send timeout fired) mid-reply *)
              conn_broken c)
        | Poll ->
            rec_inc M.replies 1;
            rec_inc M.bytes_out (String.length frame);
            if Queue.is_empty c.outq then begin
              (* opportunistic direct write: most replies fit the socket
                 buffer, so the common case never waits for the loop *)
              match write_some c.fd frame 0 with
              | off when off = String.length frame -> ()
              | off ->
                  Queue.add frame c.outq;
                  c.out_off <- off;
                  c.out_bytes <- String.length frame - off;
                  wake t
              | exception Unix.Unix_error _ -> conn_broken c
            end
            else begin
              Queue.add frame c.outq;
              c.out_bytes <- c.out_bytes + String.length frame;
              if c.out_bytes > out_cap then conn_broken c
            end)

let send t c reply = send_frame t c (Proto.encode_reply reply)

(* --- request execution (worker side) --------------------------------- *)

let server_stats t () =
  [
    ("serve.sessions", sessions t);
    ("serve.durable_sessions", durable_sessions t);
    ("serve.accepted", accepted t);
    ("serve.requests", requests t);
    ("serve.batches", batches t);
    ("serve.rejected_overload", rejected t);
    ("serve.degraded_replies", degraded_replies t);
    ("serve.errors", errors t);
    ("serve.io_timeouts", io_timeouts t);
    ("serve.deduped", deduped t);
    ("serve.respawns", respawns t);
    ("serve.quarantined", quarantined t);
    ("serve.rebuilt_sessions", rebuilt_sessions t);
    ("serve.workers", t.cfg.workers);
    ("serve.queue_pending", Mt.Service.pending t.pool);
    ("serve.p95_request_us", Obs.Metrics.quantile M.request_us 0.95);
  ]
  @ match t.arena with Some a -> Arena.stats a | None -> []

(* Fold a request's wire deadline into the configured per-request limits:
   the tighter of the two wins. *)
let limits_for cfg (meta : Proto.meta) =
  if meta.Proto.deadline_ms <= 0 then cfg.limits
  else
    let d = float_of_int meta.Proto.deadline_ms /. 1000. in
    {
      cfg.limits with
      Handler.deadline =
        Some
          (match cfg.limits.Handler.deadline with
          | None -> d
          | Some d0 -> Float.min d0 d);
    }

(* [sess] is captured by the front end at submit time, NOT re-read from
   [c.sess] here: the shard was chosen from the session id at submit, so
   a pipelined request followed by [Attach] must keep executing against
   the session (and thus the worker domain) it was submitted under — the
   post-attach session runs on its own shard.  Re-reading [c.sess] would
   let the same Session be driven from two domains at once. *)
let process_one t c sess (meta : Proto.meta) req =
  Option.iter (fun f -> f req) t.cfg.on_dispatch;
  let rebuilding =
    (* read under t.lock: [quarantine] sets the flag under the same
       lock before it snapshots the journal, so any request that gets
       past this check completed before the fence and none runs
       concurrently with the rebuild *)
    Mutex.lock t.lock;
    let r = sess.rebuilding in
    Mutex.unlock t.lock;
    r
  in
  if rebuilding then begin
    Atomic.incr t.c_errors;
    rec_inc M.errors 1;
    send t c (Proto.Error "session quarantined: rebuilding, retry")
  end
  else
    let s = sess.s in
    match Session.dedup_find s ~token:meta.Proto.token with
    | Some frame ->
        (* a retry of a request we already executed: replay the recorded
           reply verbatim, never re-execute *)
        Atomic.incr t.c_deduped;
        rec_inc M.deduped 1;
        send_frame t c frame
    | None ->
        let t0 = Obs.Timing.wall () in
        let reply =
          Obs.Trace.with_span "serve.request" (fun () ->
              Handler.handle ~stats_extra:(server_stats t)
                ?pool:(Option.map Mt.Par.pool t.par)
                (limits_for t.cfg meta) s req)
        in
        (match reply with
        | Proto.Error _ ->
            Atomic.incr t.c_errors;
            rec_inc M.errors 1
        | r when Handler.degraded r ->
            Atomic.incr t.c_degraded;
            rec_inc M.degraded 1
        | _ -> ());
        (* journal successful handle-state changes so a respawned worker
           can rebuild this session; failures change no state *)
        (match reply with
        | Proto.Error _ | Proto.Overloaded -> ()
        | _ -> ( try Session.record_exchange s req reply with _ -> ()));
        let frame = Proto.encode_reply reply in
        send_frame t c frame;
        (* only successful replies enter the dedup window (mirroring
           the record_exchange guard): a transient error — deadline
           exceeded, table full — must re-execute on retry, not replay
           as a sticky failure *)
        (match reply with
        | Proto.Error _ | Proto.Overloaded -> ()
        | _ -> Session.dedup_add s ~token:meta.Proto.token frame);
        if Obs.Metrics.recording () then
          Obs.Metrics.observe M.request_us
            (int_of_float ((Obs.Timing.wall () -. t0) *. 1e6));
        Session.maybe_gc s

let process t c sess meta req () =
  Fun.protect
    ~finally:(fun () -> release t c)
    (fun () -> process_one t c sess meta req)

(* A whole batch is ONE closure on the session's shard: replies stream
   strictly in request order, each frame byte-identical to what the same
   request would have produced unpipelined. *)
let process_batch t c sess items () =
  Fun.protect
    ~finally:(fun () -> release t c)
    (fun () ->
      List.iter (fun (meta, req) -> process_one t c sess meta req) items)

(* --- session attach (front-end side) ----------------------------------- *)

let do_attach t c key =
  Mutex.lock t.lock;
  let reply =
    if t.stopping then Proto.Error "server is draining"
    else
      match Hashtbl.find_opt t.keyed key with
      | Some sess when sess.rebuilding ->
          Proto.Error (Printf.sprintf "session %S is rebuilding, retry" key)
      | Some sess when sess.conn <> None ->
          Proto.Error (Printf.sprintf "session %S is attached elsewhere" key)
      | Some sess ->
          detach_session_locked t c;
          sess.conn <- Some c;
          c.sess <- sess;
          Atomic.incr t.c_resumed;
          rec_inc M.resumed 1;
          Proto.Attached
            {
              session = Session.id sess.s;
              resumed = true;
              handles = Session.handle_count sess.s;
            }
      | None ->
          detach_session_locked t c;
          let id = t.next_sid in
          t.next_sid <- id + 1;
          let s =
            Session.create
              ~shared:(t.cfg.par_jobs > 1)
              ?table_capacity:t.cfg.table_capacity ?arena:t.arena ~key ~id ()
          in
          let sess =
            { s; conn = Some c; detached_at = 0.; rebuilding = false }
          in
          Hashtbl.replace t.keyed key sess;
          Hashtbl.replace t.by_id id sess;
          c.sess <- sess;
          Proto.Attached { session = id; resumed = false; handles = 0 }
  in
  Mutex.unlock t.lock;
  send t c reply

(* --- frame dispatch (both front ends) ---------------------------------- *)

let dispatch_request t c meta req =
  Atomic.incr t.c_requests;
  rec_inc M.requests 1;
  match req with
  | Proto.Ping ->
      (* liveness probe: answered even when the shards are full *)
      send t c Proto.Pong
  | Proto.Attach { key } ->
      (* connection-level: rebind the session registry entry without
         touching any worker *)
      do_attach t c key
  | req ->
      retain c;
      (* bind the request to the session it was submitted under: shard
         choice and execution must agree even if an Attach rebinds
         c.sess while this sits queued *)
      let sess = c.sess in
      let session_id = Session.id sess.s in
      let shard = session_id mod t.cfg.workers in
      let label = Printf.sprintf "s%d" session_id in
      if
        not
          (Mt.Service.submit t.pool ~shard ~label (process t c sess meta req))
      then begin
        release t c;
        Atomic.incr t.c_rejected;
        rec_inc M.rejected 1;
        send t c Proto.Overloaded
      end

let dispatch_batch t c items =
  let n = List.length items in
  Atomic.incr t.c_batches;
  rec_inc M.batches 1;
  ignore (Atomic.fetch_and_add t.c_requests n);
  rec_inc M.requests n;
  retain c;
  let sess = c.sess in
  let session_id = Session.id sess.s in
  let shard = session_id mod t.cfg.workers in
  let label = Printf.sprintf "s%d" session_id in
  (* weight = batch size: N pipelined requests must not sneak past
     admission control as if they were one *)
  if
    not
      (Mt.Service.submit t.pool ~shard ~label ~weight:n
         (process_batch t c sess items))
  then begin
    release t c;
    ignore (Atomic.fetch_and_add t.c_rejected n);
    rec_inc M.rejected n;
    (* still exactly one reply per request, in order *)
    List.iter (fun _ -> send t c Proto.Overloaded) items
  end

let dispatch_frame t c frame =
  rec_inc M.bytes_in (String.length frame);
  match Proto.decode_envelope frame with
  | exception Proto.Bad_frame m ->
      send t c (Proto.Error (Printf.sprintf "protocol error: %s" m));
      false
  | Proto.Single (meta, req) ->
      dispatch_request t c meta req;
      true
  | Proto.Batch items ->
      dispatch_batch t c items;
      true

(* --- threaded front end: reader threads ------------------------------- *)

let reader t c () =
  let rec loop () =
    match Proto.read_frame c.fd with
    | None -> ()
    | exception Proto.Bad_frame m ->
        (* desynchronized: answer once, then hang up *)
        send t c (Proto.Error (Printf.sprintf "protocol error: %s" m))
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
      ->
        (* the io timeout fired mid-read: a stalled peer (slow-loris, torn
           frame, wire-fault stall) releases this reader instead of
           pinning it; the retrying client reconnects and re-attaches *)
        Atomic.incr t.c_io_timeouts;
        rec_inc M.io_timeouts 1
    | exception Unix.Unix_error _ -> ()
    | Some frame -> if dispatch_frame t c frame then loop ()
  in
  Fun.protect ~finally:(fun () -> release t c) loop

(* --- supervision: quarantine + rebuild -------------------------------- *)

let session_of_label label =
  if String.length label > 1 && label.[0] = 's' then
    int_of_string_opt (String.sub label 1 (String.length label - 1))
  else None

(* Wait (bounded) until a marker closure submitted NOW has run on the
   shard.  The shard is a single FIFO worker, so once the marker runs,
   every request queued before the quarantine flag was raised has
   finished — and those queued after it are dropped by [process] — so
   the poisoned session's journal is quiescent on the replacement
   worker's side.  Best-effort: a full queue or a drain in progress
   bounds the wait instead of blocking the supervisor thread. *)
let fence_shard t ~shard =
  let passed = Atomic.make false in
  let deadline = Obs.Timing.wall () +. 2.0 in
  let rec submit_loop () =
    if Obs.Timing.wall () > deadline then false
    else if
      Mt.Service.submit t.pool ~shard ~label:"fence" (fun () ->
          Atomic.set passed true)
    then true
    else begin
      Thread.delay 0.005;
      submit_loop ()
    end
  in
  if submit_loop () then
    let rec wait () =
      if Atomic.get passed || Obs.Timing.wall () > deadline then ()
      else begin
        Thread.delay 0.002;
        wait ()
      end
    in
    wait ()

(* A worker died or wedged mid-request.  The poisoned request's session
   is quarantined: its attached connection is killed (the client's reply
   stream has a hole in it, so letting it continue would desynchronize
   handle mirrors), and — if the session is durable — a fresh session is
   rebuilt from the journal and swapped in for the next Attach.  Other
   sessions on the same shard are untouched: their state lives in their
   own managers and their queued requests survive in the shard queue,
   which the replacement worker drains. *)
let quarantine t ~shard ~quarantined =
  match quarantined with
  | None -> ()
  | Some label -> (
      Atomic.incr t.c_quarantined;
      rec_inc M.quarantined 1;
      match session_of_label label with
      | None -> ()
      | Some session_id -> (
          Mutex.lock t.lock;
          let sess = Hashtbl.find_opt t.by_id session_id in
          (match sess with Some sess -> sess.rebuilding <- true | None -> ());
          Mutex.unlock t.lock;
          match sess with
          | None -> ()
          | Some sess ->
              (match sess.conn with
              | Some c ->
                  Mutex.lock c.wlock;
                  c.dead <- true;
                  Mutex.unlock c.wlock;
                  (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
                   with Unix.Unix_error _ -> ());
                  wake t
              | None -> ());
              let key = Session.key sess.s in
              (match key with
              | None ->
                  (* anonymous: the connection is gone, so the session is
                     unreachable — drop it *)
                  Mutex.lock t.lock;
                  Hashtbl.remove t.by_id session_id;
                  Session.close sess.s;
                  sess.rebuilding <- false;
                  Mutex.unlock t.lock
              | Some _ ->
                  (* durable: replay the journal into a fresh manager.
                     The replacement worker is already draining the shard
                     queue, so fence it first: requests queued before the
                     quarantine run to completion behind the fence marker
                     and later ones are dropped by [process] on the
                     rebuilding flag — only then is the journal quiescent
                     on the live worker's side.  (A wedged-but-alive OLD
                     domain that later unwedges can still touch the old
                     Session object; that mutates state nobody reads any
                     more — the swap below hands out a fresh one — and at
                     worst the snapshot misses its final entry.)  When a
                     spool directory is configured the journal
                     round-trips through a Resil.Checkpoint atomic
                     checksummed file — the same artifact a future
                     cold-start restore would read. *)
                  fence_shard t ~shard;
                  let entries =
                    match t.cfg.session_spool with
                    | None -> Session.journal sess.s
                    | Some dir -> (
                        let path =
                          Filename.concat dir
                            (Printf.sprintf "session-%d.journal" session_id)
                        in
                        try
                          Session.journal_save sess.s path;
                          Session.journal_load path
                        with _ -> Session.journal sess.s)
                  in
                  let fresh =
                    try
                      fst
                        (Session.rebuild
                           ~shared:(t.cfg.par_jobs > 1)
                           ?table_capacity:t.cfg.table_capacity
                           ?arena:t.arena ?key ~id:session_id entries)
                    with _ ->
                      Session.create
                        ~shared:(t.cfg.par_jobs > 1)
                        ?table_capacity:t.cfg.table_capacity ?arena:t.arena
                        ?key ~id:session_id ()
                  in
                  Mutex.lock t.lock;
                  let stale = sess.s in
                  sess.s <- fresh;
                  sess.conn <- None;
                  sess.detached_at <- Obs.Timing.wall ();
                  sess.rebuilding <- false;
                  Mutex.unlock t.lock;
                  Session.close stale;
                  Atomic.incr t.c_rebuilt;
                  rec_inc M.rebuilt 1)))

(* --- housekeeping ------------------------------------------------------ *)

let reap_lingering t =
  let now = Obs.Timing.wall () in
  Mutex.lock t.lock;
  let expired =
    Hashtbl.fold
      (fun key sess acc ->
        if
          sess.conn = None && (not sess.rebuilding)
          && now -. sess.detached_at > t.cfg.session_linger
        then (key, sess) :: acc
        else acc)
      t.keyed []
  in
  List.iter
    (fun (key, sess) ->
      Hashtbl.remove t.keyed key;
      Hashtbl.remove t.by_id (Session.id sess.s);
      Session.close sess.s)
    expired;
  Mutex.unlock t.lock

let housekeeper t () =
  while not t.stopping do
    Thread.delay 0.1;
    if not t.stopping then reap_lingering t
  done

(* --- connection setup (both front ends) -------------------------------- *)

let accept_conn t fd =
  Mutex.lock t.lock;
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  let too_many = Hashtbl.length t.conns >= t.cfg.max_sessions in
  Mutex.unlock t.lock;
  if too_many || t.stopping then begin
    (try Proto.write_frame fd (Proto.encode_reply Proto.Overloaded)
     with Unix.Unix_error _ | Proto.Bad_frame _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    None
  end
  else begin
    (match t.cfg.frontend with
    | Threaded -> (
        (* socket-level timeouts: a peer that stalls mid-frame
           (slow-loris, injected wire stall, network partition) trips
           EAGAIN in the reader / writer instead of pinning the thread *)
        match t.cfg.io_timeout with
        | Some secs when secs > 0. -> (
            try
              Unix.setsockopt_float fd Unix.SO_RCVTIMEO secs;
              Unix.setsockopt_float fd Unix.SO_SNDTIMEO secs
            with Unix.Unix_error _ | Invalid_argument _ -> ())
        | _ -> ())
    | Poll ->
        (* the event loop owns stall detection (last-receive clock) *)
        Unix.set_nonblock fd);
    let s =
      Session.create
        ~shared:(t.cfg.par_jobs > 1)
        ?table_capacity:t.cfg.table_capacity ?arena:t.arena ~id:sid ()
    in
    let sess = { s; conn = None; detached_at = 0.; rebuilding = false } in
    let c =
      {
        sid;
        fd;
        sess;
        wlock = Mutex.create ();
        refs = 1;
        dead = false;
        closed = false;
        outq = Queue.create ();
        out_off = 0;
        out_bytes = 0;
      }
    in
    sess.conn <- Some c;
    Mutex.lock t.lock;
    Hashtbl.replace t.conns sid c;
    Hashtbl.replace t.by_id sid sess;
    Mutex.unlock t.lock;
    Atomic.incr t.c_accepted;
    rec_inc M.accepted 1;
    if Obs.Metrics.recording () then Obs.Metrics.set M.sessions (sessions t);
    Some c
  end

(* --- threaded front end: accept loop ----------------------------------- *)

let accept_loop t () =
  let rec loop () =
    if t.stopping then ()
    else
      match Unix.accept t.listener with
      | fd, _ ->
          (match accept_conn t fd with
          | None -> ()
          | Some c ->
              let th = Thread.create (reader t c) () in
              Mutex.lock t.lock;
              t.readers <- th :: t.readers;
              Mutex.unlock t.lock);
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> () (* listener closed: draining *)
  in
  loop ()

(* --- poll front end: the event loop ------------------------------------ *)

(* Per-connection event-loop state.  Only the loop thread touches it, so
   no lock: [inbuf] accumulates raw bytes until whole frames can be
   peeled off; [last_rx] drives the io_timeout stall check; [closing]
   means "flush outbound, then tear down" (set after a protocol error,
   mirroring the threaded reader's answer-once-then-hang-up). *)
type pconn = {
  pc : conn;
  inbuf : Buffer.t;
  mutable last_rx : float;
  mutable closing : bool;
  mutable gone : bool;
}

let poll_loop t wake_rd () =
  let by_fd : (Unix.file_descr, pconn) Hashtbl.t = Hashtbl.create 64 in
  let rbuf = Bytes.create 65536 in
  let teardown p =
    if not p.gone then begin
      p.gone <- true;
      Hashtbl.remove by_fd p.pc.fd;
      release t p.pc (* the loop's reference — mirrors the reader's *)
    end
  in
  let protocol_error p m =
    (* answer once, then hang up — after the reply has drained *)
    send t p.pc (Proto.Error (Printf.sprintf "protocol error: %s" m));
    p.closing <- true;
    Buffer.clear p.inbuf
  in
  (* Peel complete frames off the inbound accumulator.  The header is
     peeked incrementally (9 bytes), so a stalled peer costs exactly the
     bytes it sent; a malformed header can never resync and closes the
     connection after one typed error, like the threaded reader. *)
  let parse_frames p =
    let again = ref true in
    while !again && not (p.closing || p.pc.dead) do
      let have = Buffer.length p.inbuf in
      let head = Buffer.sub p.inbuf 0 (min have 16) in
      match Proto.frame_size head with
      | exception Proto.Bad_frame m ->
          protocol_error p m;
          again := false
      | None -> again := false
      | Some total ->
          if have < total then again := false
          else begin
            let all = Buffer.contents p.inbuf in
            let frame = String.sub all 0 total in
            Buffer.clear p.inbuf;
            Buffer.add_substring p.inbuf all total (have - total);
            if not (dispatch_frame t p.pc frame) then begin
              (* typed error already sent; hang up once it drains *)
              p.closing <- true;
              Buffer.clear p.inbuf;
              again := false
            end
          end
    done
  in
  let readable p =
    match Unix.read p.pc.fd rbuf 0 (Bytes.length rbuf) with
    | 0 -> teardown p (* EOF — mid-frame or not, the stream is over *)
    | n ->
        p.last_rx <- Obs.Timing.wall ();
        Buffer.add_subbytes p.inbuf rbuf 0 n;
        parse_frames p
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> teardown p
  in
  let writable p =
    Mutex.lock p.pc.wlock;
    ignore (flush_outq p.pc);
    Mutex.unlock p.pc.wlock
  in
  let accept_burst () =
    let rec go () =
      match Unix.accept t.listener with
      | fd, _ ->
          (match accept_conn t fd with
          | None -> ()
          | Some c ->
              let p =
                {
                  pc = c;
                  inbuf = Buffer.create 256;
                  last_rx = Obs.Timing.wall ();
                  closing = false;
                  gone = false;
                }
              in
              Hashtbl.replace by_fd c.fd p);
          go ()
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error _ -> () (* listener closed: draining *)
    in
    go ()
  in
  while not t.loop_stop do
    (* build interest sets; collect already-dead / fully-flushed-closing
       connections for teardown outside the iteration *)
    let rds = ref [ wake_rd ] in
    if not t.stopping then rds := t.listener :: !rds;
    let wrs = ref [] and doomed = ref [] in
    Hashtbl.iter
      (fun _ p ->
        Mutex.lock p.pc.wlock;
        let dead = p.pc.dead and pending = p.pc.out_bytes > 0 in
        Mutex.unlock p.pc.wlock;
        if dead || (p.closing && not pending) then doomed := p :: !doomed
        else begin
          if not p.closing then rds := p.pc.fd :: !rds;
          if pending then wrs := p.pc.fd :: !wrs
        end)
      by_fd;
    List.iter teardown !doomed;
    (match Unix.select !rds !wrs [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> Thread.delay 0.01
    | r, w, _ ->
        if List.memq wake_rd r then (
          try ignore (Unix.read wake_rd rbuf 0 (Bytes.length rbuf))
          with Unix.Unix_error _ -> ());
        if (not t.stopping) && List.memq t.listener r then accept_burst ();
        List.iter
          (fun fd ->
            match Hashtbl.find_opt by_fd fd with
            | Some p when not p.gone -> writable p
            | _ -> ())
          w;
        List.iter
          (fun fd ->
            if fd != wake_rd && fd != t.listener then
              match Hashtbl.find_opt by_fd fd with
              | Some p when not p.gone -> readable p
              | _ -> ())
          r);
    (* stall detection: the poll analogue of SO_RCVTIMEO — any peer
       silent for longer than io_timeout is timed out and dropped *)
    match t.cfg.io_timeout with
    | Some secs when secs > 0. ->
        let now = Obs.Timing.wall () in
        let stalled =
          Hashtbl.fold
            (fun _ p acc ->
              if (not p.gone) && now -. p.last_rx > secs then p :: acc else acc)
            by_fd []
        in
        List.iter
          (fun p ->
            Atomic.incr t.c_io_timeouts;
            rec_inc M.io_timeouts 1;
            teardown p)
          stalled
    | _ -> ()
  done;
  (* loop shutdown: flush whatever replies are still queued (bounded,
     best-effort), then drop the loop's references *)
  let deadline = Obs.Timing.wall () +. 1.0 in
  let rec final_flush () =
    let pending = ref false in
    Hashtbl.iter
      (fun _ p ->
        Mutex.lock p.pc.wlock;
        if (not p.pc.dead) && not (flush_outq p.pc) then pending := true;
        Mutex.unlock p.pc.wlock)
      by_fd;
    if !pending && Obs.Timing.wall () < deadline then begin
      Thread.delay 0.01;
      final_flush ()
    end
  in
  final_flush ();
  let all = Hashtbl.fold (fun _ p acc -> p :: acc) by_fd [] in
  List.iter teardown all;
  try Unix.close wake_rd with Unix.Unix_error _ -> ()

(* --- lifecycle -------------------------------------------------------- *)

(* Bind a Unix socket path, surviving a stale file from a crashed
   predecessor: on EADDRINUSE, probe-connect — a live server answers
   (keep hands off, re-raise), a dead one gives ECONNREFUSED (unlink the
   corpse and bind for real).  Never unlink blindly: that would steal
   the path from a running server. *)
let bind_unix fd path addr =
  match Unix.bind fd addr with
  | () -> ()
  | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
      let live =
        match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
        | exception Unix.Unix_error _ -> true (* cannot probe: assume live *)
        | probe -> (
            Fun.protect
              ~finally:(fun () ->
                try Unix.close probe with Unix.Unix_error _ -> ())
              (fun () ->
                match Unix.connect probe addr with
                | () -> true
                | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> false
                | exception Unix.Unix_error _ -> true))
      in
      if live then
        raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
      else begin
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        Unix.bind fd addr
      end

let start cfg =
  if cfg.workers < 1 then invalid_arg "Serve.Server: workers < 1";
  (* a peer closing mid-write must surface as EPIPE, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listener, addr =
    match cfg.bind with
    | Unix_path path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let addr = Unix.ADDR_UNIX path in
        (try bind_unix fd path addr
         with e ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           raise e);
        (fd, addr)
    | Tcp port ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        (fd, Unix.getsockname fd)
  in
  Unix.listen listener 64;
  let wake_rd, wake_wr =
    match cfg.frontend with
    | Threaded -> (None, None)
    | Poll ->
        Unix.set_nonblock listener;
        let rd, wr = Unix.pipe () in
        Unix.set_nonblock rd;
        Unix.set_nonblock wr;
        (Some rd, Some wr)
  in
  let t =
    {
      cfg;
      listener;
      addr;
      pool =
        Mt.Service.create ~label:"serve" ~workers:cfg.workers
          ~queue_depth:cfg.queue_depth ();
      par =
        (if cfg.par_jobs > 1 then Some (Mt.Par.create ~jobs:cfg.par_jobs ())
         else None);
      arena =
        (if cfg.arena then
           Some (Arena.create ?table_capacity:cfg.table_capacity ())
         else None);
      lock = Mutex.create ();
      conns = Hashtbl.create 64;
      keyed = Hashtbl.create 16;
      by_id = Hashtbl.create 64;
      next_sid = 0;
      readers = [];
      accept_thread = None;
      loop_thread = None;
      loop_stop = false;
      wake_wr;
      housekeeper_thread = None;
      supervisor_thread = None;
      stopping = false;
      drained = false;
      c_accepted = Atomic.make 0;
      c_requests = Atomic.make 0;
      c_batches = Atomic.make 0;
      c_rejected = Atomic.make 0;
      c_degraded = Atomic.make 0;
      c_errors = Atomic.make 0;
      c_io_timeouts = Atomic.make 0;
      c_deduped = Atomic.make 0;
      c_quarantined = Atomic.make 0;
      c_rebuilt = Atomic.make 0;
      c_resumed = Atomic.make 0;
    }
  in
  (match cfg.frontend with
  | Threaded -> t.accept_thread <- Some (Thread.create (accept_loop t) ())
  | Poll ->
      t.loop_thread <-
        Some (Thread.create (poll_loop t (Option.get wake_rd)) ()));
  t.housekeeper_thread <- Some (Thread.create (housekeeper t) ());
  (match cfg.hang_timeout with
  | Some h when h > 0. ->
      t.supervisor_thread <-
        Some
          (Mt.Service.supervise t.pool
             ~interval:(Float.max 0.01 (h /. 4.))
             ~hang_timeout:h ~on_respawn:(quarantine t))
  | _ -> ());
  t

(* --- chaos probes ------------------------------------------------------ *)

let inject_worker_hang t ~shard ~seconds =
  Mt.Service.submit t.pool ~shard ~label:"chaos-hang" (fun () ->
      Thread.delay seconds)

let inject_worker_kill t ~shard =
  Mt.Service.submit t.pool ~shard ~label:"chaos-kill" (fun () ->
      raise Mt.Service.Poison)

let drain t =
  let already =
    Mutex.lock t.lock;
    let a = t.drained in
    if not a then t.stopping <- true;
    Mutex.unlock t.lock;
    a
  in
  if not already then begin
    match t.cfg.frontend with
    | Threaded ->
        (* 1. stop accepting: shutdown usually wakes a blocked accept; a
           throwaway self-connection covers platforms where it does not
           (accept_conn sees [stopping] and closes it straight away) *)
        (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
         with Unix.Unix_error _ -> ());
        (let domain =
           match t.addr with
           | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
           | _ -> Unix.PF_INET
         in
         match Unix.socket domain Unix.SOCK_STREAM 0 with
         | exception Unix.Unix_error _ -> ()
         | fd ->
             (try Unix.connect fd t.addr with Unix.Unix_error _ -> ());
             (try Unix.close fd with Unix.Unix_error _ -> ()));
        Option.iter Thread.join t.accept_thread;
        (try Unix.close t.listener with Unix.Unix_error _ -> ());
        (match t.cfg.bind with
        | Unix_path path -> (
            try Unix.unlink path with Unix.Unix_error _ -> ())
        | Tcp _ -> ());
        (* 2. answer everything queued and park the worker domains (only
           then is the parallel kernel quiescent and safe to join); the
           supervisor thread notices the pool draining and exits on its
           own *)
        Mt.Service.drain t.pool;
        Option.iter Thread.join t.supervisor_thread;
        Option.iter Mt.Par.shutdown t.par;
        Option.iter Thread.join t.housekeeper_thread;
        (* 3. hang up: shutdown wakes readers blocked in read *)
        Mutex.lock t.lock;
        let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
        let readers = t.readers in
        Mutex.unlock t.lock;
        List.iter
          (fun c ->
            try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ())
          conns;
        List.iter Thread.join readers;
        (match t.arena with
        | Some a -> ignore (Arena.reclaim a ())
        | None -> ());
        Mutex.lock t.lock;
        t.drained <- true;
        Mutex.unlock t.lock
    | Poll ->
        (* 1. stop accepting: [stopping] drops the listener from the
           loop's interest set at its next iteration *)
        wake t;
        (* 2. answer everything queued; the loop keeps flushing replies
           while the pool drains *)
        Mt.Service.drain t.pool;
        Option.iter Thread.join t.supervisor_thread;
        Option.iter Mt.Par.shutdown t.par;
        Option.iter Thread.join t.housekeeper_thread;
        (* 3. stop the loop: it final-flushes outbound residue and
           releases every connection on its way out *)
        t.loop_stop <- true;
        wake t;
        Option.iter Thread.join t.loop_thread;
        (try Unix.close t.listener with Unix.Unix_error _ -> ());
        (match t.cfg.bind with
        | Unix_path path -> (
            try Unix.unlink path with Unix.Unix_error _ -> ())
        | Tcp _ -> ());
        (match t.wake_wr with
        | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
        | None -> ());
        (* worker domains are parked: the shared table is quiescent, so
           the arena can finally sweep unreferenced segment nodes *)
        (match t.arena with
        | Some a -> ignore (Arena.reclaim a ())
        | None -> ());
        Mutex.lock t.lock;
        t.drained <- true;
        Mutex.unlock t.lock
  end

let run t ~stop =
  let rec wait () =
    if stop () then ()
    else begin
      Thread.delay 0.1;
      wait ()
    end
  in
  wait ();
  drain t
