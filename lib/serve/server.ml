(* Socket front-end (see the mli for the threading model).

   Connection lifecycle is refcounted: the reader thread holds one
   reference and every queued request holds one, so a file descriptor is
   only closed when the reader has exited AND no worker still intends to
   write a reply — never while an fd could be written, which would risk
   a reply landing on a recycled descriptor. *)

type bind = Unix_path of string | Tcp of int

type config = {
  bind : bind;
  workers : int;
  queue_depth : int;
  limits : Handler.limits;
  max_sessions : int;
  on_dispatch : (Proto.request -> unit) option;
  par_jobs : int;
}

let default_config =
  {
    bind = Unix_path "bdd-serve.sock";
    workers = 4;
    queue_depth = 64;
    limits = Handler.no_limits;
    max_sessions = 1024;
    on_dispatch = None;
    par_jobs = 1;
  }

module M = struct
  open Obs

  let reg = Metrics.default
  let accepted = Metrics.counter reg "serve.accepted"
  let requests = Metrics.counter reg "serve.requests"
  let replies = Metrics.counter reg "serve.replies"
  let rejected = Metrics.counter reg "serve.rejected_overload"
  let degraded = Metrics.counter reg "serve.degraded_replies"
  let errors = Metrics.counter reg "serve.errors"
  let bytes_in = Metrics.counter reg "serve.bytes_in"
  let bytes_out = Metrics.counter reg "serve.bytes_out"
  let sessions = Metrics.gauge reg "serve.sessions"
  let request_us = Metrics.histogram reg "serve.request_us"
end

let rec_inc c n = if Obs.Metrics.recording () then Obs.Metrics.inc c n

type conn = {
  sid : int;
  fd : Unix.file_descr;
  session : Session.t;
  wlock : Mutex.t;  (* serializes frame writes; also guards refs/dead *)
  mutable refs : int;
  mutable dead : bool;  (* a write failed; stop trying *)
  mutable closed : bool;
}

type t = {
  cfg : config;
  listener : Unix.file_descr;
  addr : Unix.sockaddr;
  pool : Mt.Service.t;
  par : Mt.Par.t option;  (* parallel kernel, shared by all shards *)
  lock : Mutex.t;  (* conns registry + counters + reader list *)
  conns : (int, conn) Hashtbl.t;
  mutable next_sid : int;
  mutable readers : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable stopping : bool;
  mutable drained : bool;
  c_accepted : int Atomic.t;
  c_requests : int Atomic.t;
  c_rejected : int Atomic.t;
  c_degraded : int Atomic.t;
  c_errors : int Atomic.t;
}

let address t = t.addr
let accepted t = Atomic.get t.c_accepted
let requests t = Atomic.get t.c_requests
let rejected t = Atomic.get t.c_rejected
let degraded_replies t = Atomic.get t.c_degraded
let errors t = Atomic.get t.c_errors

let sessions t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.conns in
  Mutex.unlock t.lock;
  n

(* --- connection refcounting ------------------------------------------ *)

let retain c =
  Mutex.lock c.wlock;
  c.refs <- c.refs + 1;
  Mutex.unlock c.wlock

let release t c =
  Mutex.lock c.wlock;
  c.refs <- c.refs - 1;
  let close_now = c.refs = 0 && not c.closed in
  if close_now then c.closed <- true;
  Mutex.unlock c.wlock;
  if close_now then begin
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Mutex.lock t.lock;
    Hashtbl.remove t.conns c.sid;
    Mutex.unlock t.lock;
    if Obs.Metrics.recording () then Obs.Metrics.set M.sessions (sessions t)
  end

let send _t c reply =
  let frame = Proto.encode_reply reply in
  Mutex.lock c.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock c.wlock)
    (fun () ->
      if not c.dead then
        try
          Proto.write_frame c.fd frame;
          rec_inc M.replies 1;
          rec_inc M.bytes_out (String.length frame)
        with Unix.Unix_error _ ->
          (* peer hung up mid-reply; the reader will see EOF and clean up *)
          c.dead <- true)

(* --- request execution (worker side) --------------------------------- *)

let server_stats t () =
  [
    ("serve.sessions", sessions t);
    ("serve.accepted", accepted t);
    ("serve.requests", requests t);
    ("serve.rejected_overload", rejected t);
    ("serve.degraded_replies", degraded_replies t);
    ("serve.errors", errors t);
    ("serve.workers", t.cfg.workers);
    ("serve.queue_pending", Mt.Service.pending t.pool);
    ("serve.p95_request_us", Obs.Metrics.quantile M.request_us 0.95);
  ]

let process t c req () =
  Fun.protect
    ~finally:(fun () -> release t c)
    (fun () ->
      Option.iter (fun f -> f req) t.cfg.on_dispatch;
      let t0 = Obs.Timing.wall () in
      let reply =
        Obs.Trace.with_span "serve.request" (fun () ->
            Handler.handle ~stats_extra:(server_stats t)
              ?pool:(Option.map Mt.Par.pool t.par) t.cfg.limits c.session req)
      in
      (match reply with
      | Proto.Error _ ->
          Atomic.incr t.c_errors;
          rec_inc M.errors 1
      | r when Handler.degraded r ->
          Atomic.incr t.c_degraded;
          rec_inc M.degraded 1
      | _ -> ());
      send t c reply;
      if Obs.Metrics.recording () then
        Obs.Metrics.observe M.request_us
          (int_of_float ((Obs.Timing.wall () -. t0) *. 1e6));
      Session.maybe_gc c.session)

(* --- reader threads --------------------------------------------------- *)

let reader t c () =
  let rec loop () =
    match Proto.read_frame c.fd with
    | None -> ()
    | exception Proto.Bad_frame m ->
        (* desynchronized: answer once, then hang up *)
        send t c (Proto.Error (Printf.sprintf "protocol error: %s" m))
    | exception Unix.Unix_error _ -> ()
    | Some frame -> (
        rec_inc M.bytes_in (String.length frame);
        match Proto.decode_request frame with
        | exception Proto.Bad_frame m ->
            send t c (Proto.Error (Printf.sprintf "protocol error: %s" m))
        | req -> (
            Atomic.incr t.c_requests;
            rec_inc M.requests 1;
            match req with
            | Proto.Ping ->
                (* liveness probe: answered even when the shards are full *)
                send t c Proto.Pong;
                loop ()
            | req ->
                retain c;
                let shard = c.sid mod t.cfg.workers in
                if Mt.Service.submit t.pool ~shard (process t c req) then
                  loop ()
                else begin
                  release t c;
                  Atomic.incr t.c_rejected;
                  rec_inc M.rejected 1;
                  send t c Proto.Overloaded;
                  loop ()
                end))
  in
  Fun.protect ~finally:(fun () -> release t c) loop

(* --- accept loop ------------------------------------------------------ *)

let accept_conn t fd =
  Mutex.lock t.lock;
  let sid = t.next_sid in
  t.next_sid <- sid + 1;
  let too_many = Hashtbl.length t.conns >= t.cfg.max_sessions in
  Mutex.unlock t.lock;
  if too_many || t.stopping then begin
    (try
       Proto.write_frame fd (Proto.encode_reply Proto.Overloaded)
     with Unix.Unix_error _ | Proto.Bad_frame _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  end
  else begin
    let c =
      {
        sid;
        fd;
        session = Session.create ~shared:(t.cfg.par_jobs > 1) ~id:sid ();
        wlock = Mutex.create ();
        refs = 1;
        dead = false;
        closed = false;
      }
    in
    Mutex.lock t.lock;
    Hashtbl.replace t.conns sid c;
    let th = Thread.create (reader t c) () in
    t.readers <- th :: t.readers;
    Mutex.unlock t.lock;
    Atomic.incr t.c_accepted;
    rec_inc M.accepted 1;
    if Obs.Metrics.recording () then Obs.Metrics.set M.sessions (sessions t)
  end

let accept_loop t () =
  let rec loop () =
    if t.stopping then ()
    else
      match Unix.accept t.listener with
      | fd, _ ->
          accept_conn t fd;
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> () (* listener closed: draining *)
  in
  loop ()

(* --- lifecycle -------------------------------------------------------- *)

let start cfg =
  if cfg.workers < 1 then invalid_arg "Serve.Server: workers < 1";
  (* a peer closing mid-write must surface as EPIPE, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listener, addr =
    match cfg.bind with
    | Unix_path path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let addr = Unix.ADDR_UNIX path in
        Unix.bind fd addr;
        (fd, addr)
    | Tcp port ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        (fd, Unix.getsockname fd)
  in
  Unix.listen listener 64;
  let t =
    {
      cfg;
      listener;
      addr;
      pool =
        Mt.Service.create ~label:"serve" ~workers:cfg.workers
          ~queue_depth:cfg.queue_depth ();
      par =
        (if cfg.par_jobs > 1 then Some (Mt.Par.create ~jobs:cfg.par_jobs ())
         else None);
      lock = Mutex.create ();
      conns = Hashtbl.create 64;
      next_sid = 0;
      readers = [];
      accept_thread = None;
      stopping = false;
      drained = false;
      c_accepted = Atomic.make 0;
      c_requests = Atomic.make 0;
      c_rejected = Atomic.make 0;
      c_degraded = Atomic.make 0;
      c_errors = Atomic.make 0;
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let drain t =
  let already =
    Mutex.lock t.lock;
    let a = t.drained in
    if not a then t.stopping <- true;
    Mutex.unlock t.lock;
    a
  in
  if not already then begin
    (* 1. stop accepting: shutdown usually wakes a blocked accept; a
       throwaway self-connection covers platforms where it does not
       (accept_conn sees [stopping] and closes it straight away) *)
    (try Unix.shutdown t.listener Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (let domain =
       match t.addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
     in
     match Unix.socket domain Unix.SOCK_STREAM 0 with
     | exception Unix.Unix_error _ -> ()
     | fd ->
         (try Unix.connect fd t.addr with Unix.Unix_error _ -> ());
         (try Unix.close fd with Unix.Unix_error _ -> ()));
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (match t.cfg.bind with
    | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ());
    (* 2. answer everything queued and park the worker domains (only then
       is the parallel kernel quiescent and safe to join) *)
    Mt.Service.drain t.pool;
    Option.iter Mt.Par.shutdown t.par;
    (* 3. hang up: shutdown wakes readers blocked in read *)
    Mutex.lock t.lock;
    let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
    let readers = t.readers in
    Mutex.unlock t.lock;
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    List.iter Thread.join readers;
    Mutex.lock t.lock;
    t.drained <- true;
    Mutex.unlock t.lock
  end

let run t ~stop =
  let rec wait () =
    if stop () then ()
    else begin
      Thread.delay 0.1;
      wait ()
    end
  in
  wait ();
  drain t
