(* Blocking client (see the mli). *)

type t = { fd : Unix.file_descr; mutable closed : bool }

let connect_sockaddr addr =
  let domain =
    match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; closed = false }

let connect = function
  | Server.Unix_path path -> connect_sockaddr (Unix.ADDR_UNIX path)
  | Server.Tcp port ->
      connect_sockaddr (Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let post t req = Proto.write_frame t.fd (Proto.encode_request req)

let receive t =
  match Proto.read_frame t.fd with
  | None -> raise End_of_file
  | Some frame -> Proto.decode_reply frame

let call t req =
  post t req;
  receive t

(* --- wrappers --------------------------------------------------------- *)

let unexpected what reply =
  match reply with
  | Proto.Error m -> failwith (Printf.sprintf "%s: server error: %s" what m)
  | Proto.Overloaded -> failwith (Printf.sprintf "%s: server overloaded" what)
  | r -> failwith (Format.asprintf "%s: unexpected reply %a" what Proto.pp_reply r)

let ping t =
  match call t Proto.Ping with Proto.Pong -> () | r -> unexpected "ping" r

let lit t ?(phase = true) var =
  match call t (Proto.Lit { var; phase }) with
  | Proto.Handle { id; _ } -> id
  | r -> unexpected "lit" r

let apply t op =
  match call t (Proto.Apply op) with
  | Proto.Handle { id; cert; _ } -> (id, cert)
  | r -> unexpected "apply" r

let fetch t handle =
  match call t (Proto.Fetch { handle }) with
  | Proto.Bdd_payload { bdd } -> bdd
  | r -> unexpected "fetch" r

let put t bdd =
  match call t (Proto.Put { bdd }) with
  | Proto.Handle { id; _ } -> id
  | r -> unexpected "put" r

let count t ~handle ~nvars =
  match call t (Proto.Count { handle; nvars }) with
  | Proto.Count_is n -> n
  | r -> unexpected "count" r

let free t handles =
  match call t (Proto.Free { handles }) with
  | Proto.Freed n -> n
  | r -> unexpected "free" r

let compile t ~name ~blif =
  match call t (Proto.Compile { name; blif }) with
  | Proto.Handles hs -> hs
  | r -> unexpected "compile" r

let stats t =
  match call t Proto.Stats with
  | Proto.Stats_are kvs -> kvs
  | r -> unexpected "stats" r
