(* Blocking client (see the mli).

   The plain [connect] client is the PR 5 one: one dial, no metadata, any
   failure surfaces to the caller.  [connect_retrying] layers the
   robustness loop on top: socket timeouts, lazy (re)dialing with
   exponential backoff and deterministic jitter, session re-attachment by
   key, idempotency tokens on every call, and — when given a chaos
   stream — deterministic wire-fault mangling of its own sends, so the
   soak harness can drive torn/corrupt/stalled frames at the server from
   the same seed as the kernel faults. *)

type retry = { attempts : int; base_backoff : float; max_backoff : float }

let default_retry = { attempts = 6; base_backoff = 0.02; max_backoff = 1.0 }

exception Retryable of string

type t = {
  addr : Unix.sockaddr;
  io_timeout : float option;
  retry : retry option;
  key : string option;
  seed : int;
  chaos_stream : int option;
  mutable fd : Unix.file_descr option;
  mutable closed : bool;
  mutable ever_connected : bool;
  mutable seq : int;  (* frames sent; the wire-fault draw counter *)
  mutable attached : int option;  (* server session id after Attach *)
  mutable retries : int;
  mutable reconnects : int;
}

let retries t = t.retries
let reconnects t = t.reconnects
let session t = t.attached

let the_fd t =
  match t.fd with Some fd when not t.closed -> fd | _ -> raise End_of_file

let disconnect t =
  (match t.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.fd <- None;
  t.attached <- None

(* --- dialing ----------------------------------------------------------- *)

let dial t =
  disconnect t;
  let domain =
    match t.addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd t.addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (match t.io_timeout with
  | Some secs when secs > 0. -> (
      try
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO secs;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO secs
      with Unix.Unix_error _ | Invalid_argument _ -> ())
  | _ -> ());
  t.fd <- Some fd;
  if t.ever_connected then t.reconnects <- t.reconnects + 1;
  t.ever_connected <- true;
  (* re-attach the durable session.  Attach is a control frame: it is
     deliberately not wire-mangled, so a reconnect always converges —
     chaos keeps hitting the data frames that follow. *)
  match t.key with
  | None -> ()
  | Some key -> (
      (try Proto.write_frame fd (Proto.encode_request (Proto.Attach { key }))
       with Unix.Unix_error (e, _, _) ->
         disconnect t;
         raise (Retryable ("attach send: " ^ Unix.error_message e)));
      match Proto.read_frame fd with
      | exception Unix.Unix_error (e, _, _) ->
          disconnect t;
          raise (Retryable ("attach read: " ^ Unix.error_message e))
      | exception Proto.Bad_frame m ->
          disconnect t;
          raise (Retryable ("attach frame: " ^ m))
      | None ->
          disconnect t;
          raise (Retryable "attach: server hung up")
      | Some frame -> (
          match Proto.decode_reply frame with
          | Proto.Attached { session; _ } -> t.attached <- Some session
          | Proto.Error m ->
              (* e.g. "session is rebuilding, retry": back off and come
                 back once the supervisor has swapped the session in *)
              disconnect t;
              raise (Retryable ("attach refused: " ^ m))
          | r ->
              disconnect t;
              raise
                (Retryable
                   (Format.asprintf "attach: unexpected reply %a"
                      Proto.pp_reply r))))

let ensure_connected t = if t.fd = None then dial t

let make ?retry ?io_timeout ?key ?(seed = 0) ?chaos_stream addr =
  {
    addr;
    io_timeout;
    retry;
    key;
    seed;
    chaos_stream;
    fd = None;
    closed = false;
    ever_connected = false;
    seq = 0;
    attached = None;
    retries = 0;
    reconnects = 0;
  }

let connect_sockaddr addr =
  let t = make addr in
  dial t;
  t

let sockaddr_of_bind = function
  | Server.Unix_path path -> Unix.ADDR_UNIX path
  | Server.Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let connect bind = connect_sockaddr (sockaddr_of_bind bind)

let connect_retrying ?(retry = default_retry) ?io_timeout ?key ?seed
    ?chaos_stream bind =
  (* dial lazily: the first call (re)connects under the retry loop, so a
     server that is briefly down or mid-restart is not fatal *)
  make ~retry ?io_timeout ?key ?seed ?chaos_stream (sockaddr_of_bind bind)

let close t =
  if not t.closed then begin
    disconnect t;
    t.closed <- true
  end

let churn t = if not t.closed then disconnect t

(* --- frame send, with optional wire-fault mangling --------------------- *)

let rec write_chunk fd b off len =
  if len > 0 then
    match Unix.write fd b off len with
    | n -> write_chunk fd b (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_chunk fd b off len

let write_sub fd s off len = write_chunk fd (Bytes.unsafe_of_string s) off len

let raw_send t fd frame =
  let seq = t.seq in
  t.seq <- seq + 1;
  let len = String.length frame in
  match t.chaos_stream with
  | None -> Proto.write_frame fd frame
  | Some stream -> (
      match Resil.Fault.on_wire_send ~stream ~seq ~len with
      | None -> Proto.write_frame fd frame
      | Some (Resil.Fault.Wire_delay d) ->
          Thread.delay d;
          Proto.write_frame fd frame
      | Some (Resil.Fault.Wire_cut n) ->
          (* mid-frame disconnect: a strict prefix, then hang up *)
          let n = max 0 (min n (len - 1)) in
          (try write_sub fd frame 0 n with Unix.Unix_error _ -> ());
          disconnect t;
          raise (Retryable "wire fault: cut")
      | Some (Resil.Fault.Wire_flip bit) ->
          let bit = ((bit mod (len * 8)) + (len * 8)) mod (len * 8) in
          let b = Bytes.of_string frame in
          Bytes.set b (bit / 8)
            (Char.chr (Char.code (Bytes.get b (bit / 8)) lxor (1 lsl (bit land 7))));
          write_chunk fd b 0 len
      | Some (Resil.Fault.Wire_stall d) ->
          let half = len / 2 in
          write_sub fd frame 0 half;
          Thread.delay d;
          write_sub fd frame half (len - half))

let post_meta t ~meta req = raw_send t (the_fd t) (Proto.encode_request ~meta req)
let post t req = post_meta t ~meta:Proto.no_meta req

let receive_frame t =
  match Proto.read_frame (the_fd t) with
  | None -> raise End_of_file
  | Some frame -> frame

let receive t = Proto.decode_reply (receive_frame t)

let call t req =
  post t req;
  receive t

(* --- pipelining --------------------------------------------------------- *)

let post_batch t items = raw_send t (the_fd t) (Proto.encode_batch items)

let call_batch t items =
  post_batch t items;
  List.map (fun _ -> receive t) items

(* --- the retry loop ---------------------------------------------------- *)

(* The server answers a frame it cannot decode (bit flip, truncation)
   with "protocol error: ..." and hangs up — the request never executed,
   so it is as retryable as a torn connection. *)
let is_protocol_error m =
  String.length m >= 14 && String.sub m 0 14 = "protocol error"

let backoff_delay t ~attempt r =
  let base = r.base_backoff *. (2. ** float_of_int attempt) in
  let capped = Float.min r.max_backoff base in
  let jitter =
    Resil.Fault.unit_draw ~seed:t.seed ~stream:0x6a1b ~draw:(t.seq + attempt)
  in
  capped *. (0.5 +. (0.5 *. jitter))

let token_counter = Atomic.make 1

let call_idem ?(deadline_ms = 0) t req =
  if t.closed then raise End_of_file;
  let deadline_ms = max 0 deadline_ms in
  match t.retry with
  | None ->
      let meta = { Proto.deadline_ms; token = 0 } in
      post_meta t ~meta req;
      receive t
  | Some r ->
      (* one token for all attempts of this logical request: a retry the
         server already executed replays the recorded reply (dedup) *)
      let token = Atomic.fetch_and_add token_counter 1 in
      let meta = { Proto.deadline_ms; token } in
      let rec attempt n =
        let retry_after msg =
          if n + 1 >= r.attempts then
            failwith
              (Printf.sprintf "request failed after %d attempts: %s" r.attempts
                 msg)
          else begin
            t.retries <- t.retries + 1;
            disconnect t;
            Thread.delay (backoff_delay t ~attempt:n r);
            attempt (n + 1)
          end
        in
        match
          ensure_connected t;
          post_meta t ~meta req;
          receive t
        with
        | Proto.Error m when is_protocol_error m -> retry_after m
        | reply -> reply
        | exception End_of_file -> retry_after "connection lost"
        | exception Unix.Unix_error (e, _, _) -> retry_after (Unix.error_message e)
        | exception Proto.Bad_frame m -> retry_after ("bad reply frame: " ^ m)
        | exception Retryable m -> retry_after m
      in
      attempt 0

(* --- wrappers --------------------------------------------------------- *)

let unexpected what reply =
  match reply with
  | Proto.Error m -> failwith (Printf.sprintf "%s: server error: %s" what m)
  | Proto.Overloaded -> failwith (Printf.sprintf "%s: server overloaded" what)
  | r -> failwith (Format.asprintf "%s: unexpected reply %a" what Proto.pp_reply r)

let ping t =
  match call t Proto.Ping with Proto.Pong -> () | r -> unexpected "ping" r

let lit t ?(phase = true) var =
  match call t (Proto.Lit { var; phase }) with
  | Proto.Handle { id; _ } -> id
  | r -> unexpected "lit" r

let apply t op =
  match call t (Proto.Apply op) with
  | Proto.Handle { id; cert; _ } -> (id, cert)
  | r -> unexpected "apply" r

let fetch t handle =
  match call t (Proto.Fetch { handle }) with
  | Proto.Bdd_payload { bdd } -> bdd
  | r -> unexpected "fetch" r

let put t bdd =
  match call t (Proto.Put { bdd }) with
  | Proto.Handle { id; _ } -> id
  | r -> unexpected "put" r

let count t ~handle ~nvars =
  match call t (Proto.Count { handle; nvars }) with
  | Proto.Count_is n -> n
  | r -> unexpected "count" r

let free t handles =
  match call t (Proto.Free { handles }) with
  | Proto.Freed n -> n
  | r -> unexpected "free" r

let compile t ~name ~blif =
  match call t (Proto.Compile { name; blif }) with
  | Proto.Handles hs -> hs
  | r -> unexpected "compile" r

let stats t =
  match call t Proto.Stats with
  | Proto.Stats_are kvs -> kvs
  | r -> unexpected "stats" r
