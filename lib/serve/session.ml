(* Per-connection state (see the mli).  Only ever touched from the
   session's shard worker, so plain mutable structures suffice. *)

let gc_arm_floor = 200_000

type t = {
  id : int;
  man : Bdd.man;
  handles : (int, Bdd.t) Hashtbl.t;
  models : (string, Circuit.t) Hashtbl.t;
  mutable next_handle : int;
  mutable gc_arm : int;
  mutable requests : int;
}

let create ?(shared = false) ~id () =
  let man = Bdd.create ~shared () in
  (* sessions participate in observability and chaos exactly like
     Mt.Runner job managers do *)
  if Obs.Kernel.observing () then Obs.Kernel.attach man;
  if Resil.Fault.enabled () then Resil.Fault.attach man;
  {
    id;
    man;
    handles = Hashtbl.create 64;
    models = Hashtbl.create 4;
    next_handle = 1;
    gc_arm = gc_arm_floor;
    requests = 0;
  }

let id t = t.id
let man t = t.man

let put t f =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  Hashtbl.replace t.handles h f;
  h

let get t h = Hashtbl.find t.handles h

let free t hs =
  List.fold_left
    (fun n h ->
      if Hashtbl.mem t.handles h then begin
        Hashtbl.remove t.handles h;
        n + 1
      end
      else n)
    0 hs

let handle_count t = Hashtbl.length t.handles
let add_model t name c = Hashtbl.replace t.models name c
let model t name = Hashtbl.find_opt t.models name
let roots t = Hashtbl.fold (fun _ f acc -> f :: acc) t.handles []
let gc t = Bdd.gc t.man ~roots:(roots t)

let maybe_gc t =
  if Bdd.unique_size t.man > t.gc_arm then begin
    ignore (gc t);
    t.gc_arm <- max gc_arm_floor (2 * Bdd.unique_size t.man)
  end

let requests t = t.requests
let note_request t = t.requests <- t.requests + 1
