(* Per-connection state (see the mli).  Only ever touched from the
   session's shard worker, so plain mutable structures suffice — except
   the fields the server's reader/supervisor threads look at, which stay
   on the server side (Serve.Server's registry). *)

let gc_arm_floor = 200_000
let journal_cap = 512
let dedup_window = 64

(* One entry per handle-creating (or -freeing) exchange, enough to
   rebuild the session on a fresh manager.  Deterministic exact results
   replay as operations; everything whose bytes are cheaper or whose
   recomputation is not bit-stable (degraded results, approximations,
   reach sets, decompositions) replays as exported BDD bytes. *)
type journal_entry =
  | J_lit of { handle : int; var : int; phase : bool }
  | J_op of { handle : int; op : Proto.op }
  | J_bytes of { handle : int; bdd : string }
  | J_compile of { name : string; blif : string; handles : int list }
  | J_model of { name : string; blif : string }
  | J_free of int list

type t = {
  id : int;
  key : string option;
  man : Bdd.man;
  arena : Arena.t option;
      (* when set, [man] IS the arena's shared manager: handles resolve
         zero-copy, gc is the arena's business ([reclaim]), and the
         session must give back its retained segment refs at [close] *)
  mutable arena_handles : Arena.handle list;  (* refs this session owns *)
  mutable closed : bool;
  handles : (int, Bdd.t) Hashtbl.t;
  models : (string, Circuit.t) Hashtbl.t;
  model_src : (string, string) Hashtbl.t;  (* name -> BLIF text, for journal *)
  mutable next_handle : int;
  mutable gc_arm : int;
  mutable requests : int;
  mutable journal : journal_entry list;  (* newest first *)
  mutable journal_len : int;
  dedup : (int * string) option array;  (* token -> encoded reply frame *)
  mutable dedup_next : int;
}

let create ?(shared = false) ?table_capacity ?arena ?key ~id () =
  let man =
    match arena with
    | Some a -> Arena.man a  (* zero-copy: overlay on the shared table *)
    | None ->
        let man = Bdd.create ~shared () in
        (* sessions participate in observability and chaos exactly like
           Mt.Runner job managers do *)
        if Obs.Kernel.observing () then Obs.Kernel.attach man;
        if Resil.Fault.enabled () then Resil.Fault.attach man;
        (match table_capacity with
        | Some cap -> Bdd.set_table_capacity man (Some cap)
        | None -> ());
        man
  in
  {
    id;
    key;
    man;
    arena;
    arena_handles = [];
    closed = false;
    handles = Hashtbl.create 64;
    models = Hashtbl.create 4;
    model_src = Hashtbl.create 4;
    next_handle = 1;
    gc_arm = gc_arm_floor;
    requests = 0;
    journal = [];
    journal_len = 0;
    dedup = Array.make dedup_window None;
    dedup_next = 0;
  }

let id t = t.id
let key t = t.key
let man t = t.man
let arena t = t.arena
let arena_backed t = t.arena <> None

let adopt_arena t h =
  (* take ownership of one existing reference to segment [h]; it is
     released when the session closes *)
  t.arena_handles <- h :: t.arena_handles

let retain_arena t h =
  match t.arena with
  | None -> invalid_arg "Session.retain_arena: not arena-backed"
  | Some a ->
      Arena.retain a h;
      adopt_arena t h

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.arena with
    | None -> ()
    | Some a ->
        List.iter
          (fun h -> try Arena.release a h with Not_found | Invalid_argument _ -> ())
          t.arena_handles;
        t.arena_handles <- []
  end

let put t f =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  Hashtbl.replace t.handles h f;
  h

let put_at t ~handle f =
  Hashtbl.replace t.handles handle f;
  if handle >= t.next_handle then t.next_handle <- handle + 1

let get t h = Hashtbl.find t.handles h

let free t hs =
  List.fold_left
    (fun n h ->
      if Hashtbl.mem t.handles h then begin
        Hashtbl.remove t.handles h;
        n + 1
      end
      else n)
    0 hs

let handle_count t = Hashtbl.length t.handles
let add_model t name c = Hashtbl.replace t.models name c
let model t name = Hashtbl.find_opt t.models name
let roots t = Hashtbl.fold (fun _ f acc -> f :: acc) t.handles []

(* Arena-backed sessions never collect from request context: their
   manager is the process-wide shared table, other sessions' overlays
   live in it concurrently, and a sweep requires quiescence — that is
   {!Arena.reclaim}'s job, driven by the server at a safe point. *)
let gc t =
  if t.arena <> None then 0 else Bdd.gc t.man ~roots:(roots t)

let maybe_gc t =
  if t.arena = None && Bdd.unique_size t.man > t.gc_arm then begin
    ignore (gc t);
    t.gc_arm <- max gc_arm_floor (2 * Bdd.unique_size t.man)
  end

let requests t = t.requests
let note_request t = t.requests <- t.requests + 1

(* --- idempotency dedup ------------------------------------------------ *)

let dedup_find t ~token =
  if token = 0 then None
  else
    let rec scan i =
      if i >= dedup_window then None
      else
        match t.dedup.(i) with
        | Some (tok, reply) when tok = token -> Some reply
        | _ -> scan (i + 1)
    in
    scan 0

let dedup_add t ~token reply =
  if token <> 0 then begin
    t.dedup.(t.dedup_next) <- Some (token, reply);
    t.dedup_next <- (t.dedup_next + 1) mod dedup_window
  end

(* --- journal ----------------------------------------------------------- *)

let journal_length t = t.journal_len

let export_handle t h =
  Bdd.serialized_to_string (Bdd.export t.man (Hashtbl.find t.handles h))

(* Compaction: the replay log collapses to "the models, plus the live
   handles as bytes".  Freed handles, superseded ops and stale byte
   snapshots all disappear; what remains is proportional to live state,
   which is what keeps the journal lightweight over a long session. *)
let compact t =
  let models =
    Hashtbl.fold
      (fun name blif acc -> J_model { name; blif } :: acc)
      t.model_src []
  in
  let live =
    Hashtbl.fold (fun h _ acc -> h :: acc) t.handles []
    |> List.sort compare
    |> List.map (fun h -> J_bytes { handle = h; bdd = export_handle t h })
  in
  (* newest first, so the replay order (oldest first) is models then
     handles *)
  t.journal <- List.rev (models @ live);
  t.journal_len <- List.length t.journal

let record t entry =
  t.journal <- entry :: t.journal;
  t.journal_len <- t.journal_len + 1;
  (* compact only when it can actually shrink the log: a compacted
     journal is one entry per live handle + model, so a session holding
     more live handles than journal_cap must not re-compact on every
     record (each compaction exports every live BDD to bytes) *)
  let compacted_size = Hashtbl.length t.handles + Hashtbl.length t.model_src in
  if t.journal_len > max journal_cap (2 * compacted_size) then compact t

let journal t = List.rev t.journal

(* Derive the journal entry (if any) from a served exchange.  Exact
   apply results are deterministic — they replay as ops; degraded ones
   depend on budget state at serve time, so they snapshot as bytes. *)
let record_exchange t req (rep : Proto.reply) =
  match (req, rep) with
  | Proto.Lit { var; phase }, Proto.Handle { id = handle; _ } ->
      record t (J_lit { handle; var; phase })
  | Proto.Put { bdd }, Proto.Handle { id = handle; _ } ->
      record t (J_bytes { handle; bdd })
  | Proto.Apply op, Proto.Handle { id = handle; cert = Proto.Exact; _ } ->
      record t (J_op { handle; op })
  | Proto.Apply _, Proto.Handle { id = handle; cert = Proto.Degraded _; _ }
  | Proto.Approx _, Proto.Handle { id = handle; _ } ->
      record t (J_bytes { handle; bdd = export_handle t handle })
  | Proto.Compile { name; blif }, Proto.Handles hs ->
      Hashtbl.replace t.model_src name blif;
      record t (J_compile { name; blif; handles = List.map (fun (_, h, _) -> h) hs })
  | Proto.Decomp _, Proto.Pair { g; h; _ } ->
      record t (J_bytes { handle = g; bdd = export_handle t g });
      record t (J_bytes { handle = h; bdd = export_handle t h })
  | Proto.Reach { model; _ }, Proto.Reach_done { reached; _ } ->
      (* the model was registered by an earlier Compile on this session,
         so only the reached set itself needs snapshotting *)
      ignore model;
      record t (J_bytes { handle = reached; bdd = export_handle t reached })
  | Proto.Free { handles }, Proto.Freed n when n > 0 -> record t (J_free handles)
  | _ -> ()

(* --- rebuild ----------------------------------------------------------- *)

let exec_op t op =
  let man = t.man in
  let g h = Hashtbl.find t.handles h in
  let vars vs =
    List.iter (fun v -> ignore (Bdd.ithvar man v)) vs;
    Bdd.cube man vs
  in
  match op with
  | Proto.Not a -> Bdd.bnot man (g a)
  | Proto.And (a, b) -> Bdd.band man (g a) (g b)
  | Proto.Or (a, b) -> Bdd.bor man (g a) (g b)
  | Proto.Xor (a, b) -> Bdd.bxor man (g a) (g b)
  | Proto.Ite (a, b, c) -> Bdd.ite man (g a) (g b) (g c)
  | Proto.Exists (vs, a) -> Bdd.exists man ~vars:(vars vs) (g a)
  | Proto.Forall (vs, a) -> Bdd.forall man ~vars:(vars vs) (g a)

let replay t entry =
  match entry with
  | J_lit { handle; var; phase } ->
      put_at t ~handle
        (if phase then Bdd.ithvar t.man var else Bdd.nithvar t.man var)
  | J_op { handle; op } -> put_at t ~handle (exec_op t op)
  | J_bytes { handle; bdd } ->
      put_at t ~handle (Bdd.import t.man (Bdd.serialized_of_string bdd))
  | J_compile { name; blif; handles } ->
      let circuit = Blif.parse_string blif in
      let compiled = Compile.compile ~man:t.man circuit in
      let outs = List.map snd compiled.Compile.output_fns in
      if List.length outs <> List.length handles then
        failwith "journal compile arity mismatch";
      add_model t name circuit;
      Hashtbl.replace t.model_src name blif;
      List.iter2 (fun handle f -> put_at t ~handle f) handles outs
  | J_model { name; blif } ->
      let circuit = Blif.parse_string blif in
      add_model t name circuit;
      Hashtbl.replace t.model_src name blif
  | J_free hs -> ignore (free t hs)

let rebuild ?shared ?table_capacity ?arena ?key ~id entries =
  let t = create ?shared ?table_capacity ?arena ?key ~id () in
  let dropped = ref 0 in
  List.iter
    (fun e ->
      match replay t e with
      | () ->
          t.journal <- e :: t.journal;
          t.journal_len <- t.journal_len + 1
      | exception _ -> incr dropped)
    entries;
  (t, !dropped)

(* --- journal persistence ----------------------------------------------- *)

(* "BSJ1" ++ varint count ++ entries ++ le32 crc, with the CRC-32 taken
   over everything before it — the Resil.Checkpoint trailer discipline,
   written through its atomic temp+fsync+rename primitive. *)

let add_varint buf n =
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  if n < 0 then invalid_arg "Session journal: negative varint";
  go n

let add_str buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let add_list buf f xs =
  add_varint buf (List.length xs);
  List.iter (f buf) xs

let add_op buf op =
  match op with
  | Proto.Not a ->
      add_varint buf 0;
      add_varint buf a
  | Proto.And (a, b) ->
      add_varint buf 1;
      add_varint buf a;
      add_varint buf b
  | Proto.Or (a, b) ->
      add_varint buf 2;
      add_varint buf a;
      add_varint buf b
  | Proto.Xor (a, b) ->
      add_varint buf 3;
      add_varint buf a;
      add_varint buf b
  | Proto.Ite (a, b, c) ->
      add_varint buf 4;
      add_varint buf a;
      add_varint buf b;
      add_varint buf c
  | Proto.Exists (vs, a) ->
      add_varint buf 5;
      add_list buf add_varint vs;
      add_varint buf a
  | Proto.Forall (vs, a) ->
      add_varint buf 6;
      add_list buf add_varint vs;
      add_varint buf a

let add_entry buf e =
  match e with
  | J_lit { handle; var; phase } ->
      add_varint buf 0;
      add_varint buf handle;
      add_varint buf var;
      Buffer.add_char buf (if phase then '\001' else '\000')
  | J_op { handle; op } ->
      add_varint buf 1;
      add_varint buf handle;
      add_op buf op
  | J_bytes { handle; bdd } ->
      add_varint buf 2;
      add_varint buf handle;
      add_str buf bdd
  | J_compile { name; blif; handles } ->
      add_varint buf 3;
      add_str buf name;
      add_str buf blif;
      add_list buf add_varint handles
  | J_model { name; blif } ->
      add_varint buf 4;
      add_str buf name;
      add_str buf blif
  | J_free hs ->
      add_varint buf 5;
      add_list buf add_varint hs

let journal_to_string entries =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "BSJ1";
  add_list buf add_entry entries;
  let body = Buffer.contents buf in
  let crc = Resil.Checkpoint.crc32 body in
  let trailer = Bytes.create 4 in
  Bytes.set_int32_le trailer 0 (Int32.of_int crc);
  body ^ Bytes.to_string trailer

let corrupt fmt = Printf.ksprintf (fun m -> raise (Bdd.Corrupt m)) fmt

type reader = { s : string; mutable pos : int }

let r_byte r =
  if r.pos >= String.length r.s then corrupt "journal truncated";
  let c = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  c

let r_varint r =
  let rec go shift acc =
    if shift > 62 then corrupt "journal varint overflow";
    let b = r_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let r_str r =
  let n = r_varint r in
  if n < 0 || r.pos + n > String.length r.s then corrupt "journal truncated";
  let s = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  s

let r_list r f =
  let n = r_varint r in
  if n < 0 || n > 1_000_000 then corrupt "journal list length %d" n;
  List.init n (fun _ -> f r)

let r_op r =
  match r_varint r with
  | 0 -> Proto.Not (r_varint r)
  | 1 ->
      let a = r_varint r in
      Proto.And (a, r_varint r)
  | 2 ->
      let a = r_varint r in
      Proto.Or (a, r_varint r)
  | 3 ->
      let a = r_varint r in
      Proto.Xor (a, r_varint r)
  | 4 ->
      let a = r_varint r in
      let b = r_varint r in
      Proto.Ite (a, b, r_varint r)
  | 5 ->
      let vs = r_list r r_varint in
      Proto.Exists (vs, r_varint r)
  | 6 ->
      let vs = r_list r r_varint in
      Proto.Forall (vs, r_varint r)
  | n -> corrupt "journal op tag %d" n

let r_entry r =
  match r_varint r with
  | 0 ->
      let handle = r_varint r in
      let var = r_varint r in
      J_lit { handle; var; phase = r_byte r <> 0 }
  | 1 ->
      let handle = r_varint r in
      J_op { handle; op = r_op r }
  | 2 ->
      let handle = r_varint r in
      J_bytes { handle; bdd = r_str r }
  | 3 ->
      let name = r_str r in
      let blif = r_str r in
      J_compile { name; blif; handles = r_list r r_varint }
  | 4 ->
      let name = r_str r in
      J_model { name; blif = r_str r }
  | 5 -> J_free (r_list r r_varint)
  | n -> corrupt "journal entry tag %d" n

let journal_of_string s =
  let len = String.length s in
  if len < 8 then corrupt "journal too short";
  let body = String.sub s 0 (len - 4) in
  let crc =
    Int32.to_int (Bytes.get_int32_le (Bytes.of_string s) (len - 4))
    land 0xFFFFFFFF
  in
  if Resil.Checkpoint.crc32 body <> crc then corrupt "journal checksum mismatch";
  if String.sub body 0 4 <> "BSJ1" then corrupt "journal bad magic";
  let r = { s = body; pos = 4 } in
  let entries = r_list r r_entry in
  if r.pos <> String.length body then corrupt "journal trailing bytes";
  entries

let journal_save t path =
  Resil.Checkpoint.write_atomic path (journal_to_string (journal t))

let journal_load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      journal_of_string (really_input_string ic n))
