(** Per-connection server state: a private BDD manager, the handle
    namespace, registered models — plus the two pieces of robustness
    state that let a session outlive its worker and its connection: a
    replay {e journal} and an idempotency {e dedup window}.

    One session = one manager.  Sessions share nothing (no cross-session
    unique table, no shared caches), so they evict independently:
    {!maybe_gc} collects a session's manager against its own live handles
    without ever invalidating another session's BDDs.  The server routes
    every request of a session to the same worker domain ({!Mt.Service}
    shard), so none of this needs locks.

    {2 Journals}

    {!record_exchange} appends one entry per handle-creating exchange:
    deterministic exact results ([Lit], exact [Apply]) as replayable
    operations, everything else ([Put], degraded applies, [Approx],
    [Decomp], [Reach]) as exported BDD bytes — so {!rebuild} on a fresh
    manager reproduces {e semantically identical} handles under the same
    ids, which is what lets the server respawn a crashed worker without
    clients noticing more than a latency blip.  The journal self-compacts
    down to "models + live handles" once it exceeds both ~512 entries and
    twice that compacted size (so huge sessions never re-compact on every
    request), keeping it proportional to live state, and round-trips through
    {!Resil.Checkpoint}-style checksummed atomic files
    ({!journal_save} / {!journal_load}). *)

type t

(** One step of the replay log. *)
type journal_entry =
  | J_lit of { handle : int; var : int; phase : bool }
  | J_op of { handle : int; op : Proto.op }
      (** an exact, deterministic apply: replays by re-execution *)
  | J_bytes of { handle : int; bdd : string }
      (** a result snapshotted as [Bdd.export] bytes *)
  | J_compile of { name : string; blif : string; handles : int list }
  | J_model of { name : string; blif : string }
      (** model registration without handles (from compaction) *)
  | J_free of int list

val create :
  ?shared:bool ->
  ?table_capacity:int ->
  ?arena:Arena.t ->
  ?key:string ->
  id:int ->
  unit ->
  t
(** [shared] (default false) creates the session's manager with
    [Bdd.create ~shared:true] so a parallel-kernel pool may fork requests
    across domains ({!Handler.handle}'s [pool]); single-domain sessions
    keep the private, lock-free layout.  [table_capacity] installs a
    {!Bdd.set_table_capacity} ceiling on the manager (the serve layer's
    {!Bdd.Table_full} degradation path).  [key] marks the session as
    durable — attachable by name across connections (see
    {!Proto.Attach}).

    [arena] makes the session {e arena-backed}: it builds no manager of
    its own but overlays {!Arena.man} — published segments resolve
    zero-copy, request-local results are ordinary nodes in the shared
    table, and [shared]/[table_capacity] are ignored (the arena already
    fixed both).  {!gc}/{!maybe_gc} become no-ops (reclamation is
    {!Arena.reclaim}, at quiescence), and segment references the session
    retains are given back at {!close}. *)

val id : t -> int
val key : t -> string option
val man : t -> Bdd.man
val arena : t -> Arena.t option
val arena_backed : t -> bool

val adopt_arena : t -> Arena.handle -> unit
(** Take ownership of one {e existing} reference to an arena segment
    (e.g. the one {!Arena.publish} hands back); released at {!close}. *)

val retain_arena : t -> Arena.handle -> unit
(** {!Arena.retain} plus {!adopt_arena}.  @raise Invalid_argument on a
    session that is not arena-backed. *)

val close : t -> unit
(** Release every arena reference the session owns.  Idempotent; a
    no-op for non-arena sessions.  Call when the session is permanently
    done (connection gone for anonymous sessions, linger expiry or
    drain for durable ones). *)

val put : t -> Bdd.t -> int
(** Register a BDD under a fresh handle (handles start at 1 and are never
    reused within a session). *)

val put_at : t -> handle:int -> Bdd.t -> unit
(** Register a BDD under a specific handle (journal replay), advancing
    the fresh-handle counter past it. *)

val get : t -> int -> Bdd.t
(** @raise Not_found on an unknown or freed handle. *)

val free : t -> int list -> int
(** Drop handles; unknown ones are ignored.  Returns how many were
    actually freed.  The nodes are reclaimed by the next {!maybe_gc}. *)

val handle_count : t -> int

val add_model : t -> string -> Circuit.t -> unit
(** Register (or replace) a named circuit for later {!Proto.Reach}
    requests.  Circuits are plain data — they hold no BDDs, so models
    survive {!maybe_gc} trivially. *)

val model : t -> string -> Circuit.t option

val roots : t -> Bdd.t list
(** Every BDD the session owns (the live handles). *)

val gc : t -> int
(** Collect the manager against {!roots} now; returns nodes collected. *)

val maybe_gc : t -> unit
(** Amortized eviction: collect once the unique table passes an arming
    threshold, then re-arm at twice the live size (the
    {!Traversal.make_maintenance} policy, per session). *)

val requests : t -> int
val note_request : t -> unit
(** Served-request counter, for the stats reply. *)

(** {1 Idempotency dedup}

    A bounded ring of [(token, encoded reply)] pairs.  The server
    consults it before executing any request that carries a non-zero
    {!Proto.meta} token: a hit replays the recorded reply verbatim, so a
    client retry after a torn frame cannot re-execute a stateful request
    (exactly-once over the last {!dedup_window} tokens per session). *)

val dedup_window : int

val dedup_find : t -> token:int -> string option
(** The reply frame previously recorded for [token], if still in the
    window.  Token [0] never matches. *)

val dedup_add : t -> token:int -> string -> unit
(** Record the reply frame served for [token] (no-op for token [0]). *)

(** {1 Journal} *)

val record_exchange : t -> Proto.request -> Proto.reply -> unit
(** Append the journal entry (if any) a served exchange implies.  Call
    only for exchanges that actually executed (not deduped replays). *)

val record : t -> journal_entry -> unit
val journal : t -> journal_entry list
(** Oldest first — the replay order. *)

val journal_length : t -> int

val rebuild :
  ?shared:bool ->
  ?table_capacity:int ->
  ?arena:Arena.t ->
  ?key:string ->
  id:int ->
  journal_entry list ->
  t * int
(** Replay a journal into a brand-new session (fresh manager).  Returns
    the session and the number of entries that failed to replay (their
    handles are simply absent — a later request on one gets a clean
    "unknown handle" error, never corruption). *)

val journal_to_string : journal_entry list -> string
val journal_of_string : string -> journal_entry list
(** Checksummed ["BSJ1"] encoding; [journal_of_string] raises
    {!Bdd.Corrupt} on truncation, bit flips, or trailing bytes. *)

val journal_save : t -> string -> unit
(** Atomic checksummed write of {!journal} via
    {!Resil.Checkpoint.write_atomic}. *)

val journal_load : string -> journal_entry list
(** @raise Bdd.Corrupt on any mismatch. *)
