(** Per-connection server state: a private BDD manager, the handle
    namespace, and registered models.

    One session = one connection = one manager.  Sessions share nothing
    (no cross-session unique table, no shared caches), so they evict
    independently: {!maybe_gc} collects a session's manager against its
    own live handles without ever invalidating another session's BDDs.
    The server routes every request of a session to the same worker
    domain ({!Mt.Service} shard), so none of this needs locks. *)

type t

val create : ?shared:bool -> id:int -> unit -> t
(** [shared] (default false) creates the session's manager with
    [Bdd.create ~shared:true] so a parallel-kernel pool may fork requests
    across domains ({!Handler.handle}'s [pool]); single-domain sessions
    keep the private, lock-free layout. *)

val id : t -> int
val man : t -> Bdd.man

val put : t -> Bdd.t -> int
(** Register a BDD under a fresh handle (handles start at 1 and are never
    reused within a session). *)

val get : t -> int -> Bdd.t
(** @raise Not_found on an unknown or freed handle. *)

val free : t -> int list -> int
(** Drop handles; unknown ones are ignored.  Returns how many were
    actually freed.  The nodes are reclaimed by the next {!maybe_gc}. *)

val handle_count : t -> int

val add_model : t -> string -> Circuit.t -> unit
(** Register (or replace) a named circuit for later {!Proto.Reach}
    requests.  Circuits are plain data — they hold no BDDs, so models
    survive {!maybe_gc} trivially. *)

val model : t -> string -> Circuit.t option

val roots : t -> Bdd.t list
(** Every BDD the session owns (the live handles). *)

val gc : t -> int
(** Collect the manager against {!roots} now; returns nodes collected. *)

val maybe_gc : t -> unit
(** Amortized eviction: collect once the unique table passes an arming
    threshold, then re-arm at twice the live size (the
    {!Traversal.make_maintenance} policy, per session). *)

val requests : t -> int
val note_request : t -> unit
(** Served-request counter, for the stats reply. *)
