(* The bdd-serve-bench/v1 record (see mli). *)

let schema = "bdd-serve-bench/v1"

type soak = {
  duration_s : float;
  arrival_rate : float;
  churns : int;
  retries : int;
  reconnects : int;
  server_exits : int;
  slo_p99_ms : float;
  slo_met : bool;
}

type t = {
  connections : int;
  requests : int;
  rejected : int;
  degraded : int;
  errors : int;
  wrong : int;
  elapsed_s : float;
  throughput_rps : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
  max_us : float;
  peak_rss_kb : int;
  pipeline_depth : int;
  arena_share : float option;
  soak : soak option;
}

let soak_to_json s =
  Obs.Json.Obj
    [
      ("duration_s", Obs.Json.Num s.duration_s);
      ("arrival_rate", Obs.Json.Num s.arrival_rate);
      ("churns", Obs.Json.num_int s.churns);
      ("retries", Obs.Json.num_int s.retries);
      ("reconnects", Obs.Json.num_int s.reconnects);
      ("server_exits", Obs.Json.num_int s.server_exits);
      ("slo_p99_ms", Obs.Json.Num s.slo_p99_ms);
      ("slo_met", Obs.Json.Bool s.slo_met);
    ]

let to_json r =
  Obs.Json.Obj
    ([
      ("schema", Obs.Json.Str schema);
      ("connections", Obs.Json.num_int r.connections);
      ("requests", Obs.Json.num_int r.requests);
      ("rejected", Obs.Json.num_int r.rejected);
      ("degraded", Obs.Json.num_int r.degraded);
      ("errors", Obs.Json.num_int r.errors);
      ("wrong", Obs.Json.num_int r.wrong);
      ("elapsed_s", Obs.Json.Num r.elapsed_s);
      ("throughput_rps", Obs.Json.Num r.throughput_rps);
      ("p50_us", Obs.Json.Num r.p50_us);
      ("p95_us", Obs.Json.Num r.p95_us);
      ("p99_us", Obs.Json.Num r.p99_us);
      ("max_us", Obs.Json.Num r.max_us);
      ("peak_rss_kb", Obs.Json.num_int r.peak_rss_kb);
      ("pipeline_depth", Obs.Json.num_int r.pipeline_depth);
    ]
    @ (match r.arena_share with
      | None -> []
      | Some s -> [ ("arena_share", Obs.Json.Num s) ])
    @ match r.soak with None -> [] | Some s -> [ ("soak", soak_to_json s) ])

let write path r = Obs.Json.write_file path (to_json r)

(* --- validation -------------------------------------------------------- *)

let ( let* ) = Result.bind

let field j name =
  match Obs.Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match Obs.Json.to_float v with
      | Some f when Float.is_finite f -> Ok f
      | _ -> Error (Printf.sprintf "field %S is not a finite number" name))

let non_negative name v =
  if v < 0.0 then Error (Printf.sprintf "field %S is negative" name) else Ok v

let validate j =
  let* () =
    match Obs.Json.member "schema" j with
    | Some (Obs.Json.Str s) when s = schema -> Ok ()
    | Some (Obs.Json.Str s) ->
        Error (Printf.sprintf "schema mismatch: expected %S, got %S" schema s)
    | _ -> Error "missing schema tag"
  in
  let num name =
    let* v = field j name in
    non_negative name v
  in
  let* _connections = num "connections" in
  let* requests = num "requests" in
  let* _rejected = num "rejected" in
  let* _degraded = num "degraded" in
  let* _errors = num "errors" in
  let* wrong = num "wrong" in
  let* _elapsed = num "elapsed_s" in
  let* throughput = num "throughput_rps" in
  let* p50 = num "p50_us" in
  let* p95 = num "p95_us" in
  let* p99 = num "p99_us" in
  let* max_us = num "max_us" in
  let* () =
    (* optional: reports written before the field existed still validate *)
    match Obs.Json.member "peak_rss_kb" j with
    | None -> Ok ()
    | Some _ ->
        let* _rss = num "peak_rss_kb" in
        Ok ()
  in
  let* () =
    (* optional (pre-pipelining reports); when present, at least 1 *)
    match Obs.Json.member "pipeline_depth" j with
    | None -> Ok ()
    | Some _ ->
        let* d = num "pipeline_depth" in
        if d < 1.0 then Error "pipeline_depth must be at least 1" else Ok ()
  in
  let* () =
    (* optional (only arena-backed servers report it); a ratio *)
    match Obs.Json.member "arena_share" j with
    | None -> Ok ()
    | Some _ ->
        let* s = num "arena_share" in
        if s > 1.0 then Error "arena_share must be within [0, 1]" else Ok ()
  in
  let* () =
    if p50 <= p95 && p95 <= p99 && p99 <= max_us then Ok ()
    else Error "latency quantiles are not monotone (p50 <= p95 <= p99 <= max)"
  in
  let* () =
    if requests > 0.0 && throughput <= 0.0 then
      Error "throughput_rps must be positive when requests completed"
    else Ok ()
  in
  let* () =
    (* optional: closed-loop runs (and pre-soak reports) have no section *)
    match Obs.Json.member "soak" j with
    | None -> Ok ()
    | Some s ->
        let snum name =
          let* v = field s name in
          non_negative ("soak." ^ name) v
        in
        let* duration = snum "duration_s" in
        let* _arrival = snum "arrival_rate" in
        let* _churns = snum "churns" in
        let* _retries = snum "retries" in
        let* _reconnects = snum "reconnects" in
        let* exits = snum "server_exits" in
        let* _slo = snum "slo_p99_ms" in
        let* met =
          match Obs.Json.member "slo_met" s with
          | Some (Obs.Json.Bool b) -> Ok b
          | _ -> Error "soak.slo_met is not a boolean"
        in
        let* () =
          if duration <= 0.0 then Error "soak.duration_s must be positive"
          else Ok ()
        in
        let* () =
          if exits > 0.0 then
            Error "soak.server_exits > 0: the server died under fault load"
          else Ok ()
        in
        if not met then Error "soak.slo_met is false: p99 blew the SLO"
        else Ok ()
  in
  if wrong > 0.0 then Error "wrong > 0: server contradicted the oracle"
  else Ok ()

let validate_file path =
  match Obs.Json.read_file path with
  | exception Sys_error m -> Error m
  | exception Obs.Json.Parse_error m -> Error (Printf.sprintf "parse error: %s" m)
  | j -> validate j
