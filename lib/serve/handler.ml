(* Request execution and the per-request degradation ladder (see mli). *)

type limits = { node_budget : int option; deadline : float option }

let no_limits = { node_budget = None; deadline = None }

exception Deadline
exception Refused of string
(* A failure with a clean message for the Error reply (unknown handle,
   exhausted ladder, out-of-range argument). *)

let refuse fmt = Printf.ksprintf (fun s -> raise (Refused s)) fmt

(* Guard rails on client-supplied indices: a hostile Lit/Exists request
   must not make the server allocate per-variable arrays without bound. *)
let var_cap = 65_536

let check_var v = if v < 0 || v >= var_cap then refuse "variable %d out of range" v

let get session h =
  try Session.get session h with Not_found -> refuse "unknown handle %d" h

(* --- per-request limits ---------------------------------------------- *)

let with_limits limits man f =
  if limits.node_budget = None && limits.deadline = None then f ()
  else begin
    (match limits.node_budget with
    | Some b -> Bdd.set_node_limit man (Some (Bdd.unique_size man + b))
    | None -> ());
    (match limits.deadline with
    | Some d ->
        let cutoff = Obs.Timing.wall () +. d in
        Bdd.set_tick man
          (Some (fun () -> if Obs.Timing.wall () > cutoff then raise Deadline))
    | None -> ());
    Fun.protect
      ~finally:(fun () ->
        Bdd.set_node_limit man None;
        Bdd.set_tick man None)
      f
  end

module M = struct
  let table_full_degraded =
    Obs.Metrics.counter Obs.Metrics.default "serve.table_full_degraded"
end

let note c = if Obs.Metrics.recording () then Obs.Metrics.inc c 1

(* The ladder: exact -> gc + exact retry -> (monotone only) heavy-branch
   under-approximated operands at shrinking thresholds.  Each rung runs
   under a freshly armed limit; the session is collected between rungs so
   failed attempts' garbage does not eat the next rung's budget.

   Three budget failures descend it: [Node_limit] (per-request budget),
   [Deadline] (the tick hook fired — the deadline re-arms per rung, so a
   cancelled exact attempt still leaves the cheaper rungs their full
   allowance and the worst-case wall clock is O(rungs) x deadline), and
   [Bdd.Table_full] (the shared unique table hit its capacity: the gc
   rung frees slots and the HB rungs shrink the footprint).  A rescued
   reply names what it was rescued from — ["deadline"], ["table-full"] —
   ahead of the ["HB\@t"] rung that saved it. *)
let budgeted limits session ~monotone compute =
  let man = Session.man session in
  let deadline_hit = ref false and table_hit = ref false in
  let attempt thr =
    match with_limits limits man (fun () -> compute thr) with
    | f -> Some f
    | exception Bdd.Node_limit -> None
    | exception Deadline ->
        deadline_hit := true;
        None
    | exception Bdd.Table_full ->
        table_hit := true;
        None
  in
  let reasons () =
    (if !deadline_hit then [ "deadline" ] else [])
    @ if !table_hit then [ "table-full" ] else []
  in
  match attempt None with
  | Some f -> (f, Proto.Exact)
  | None -> (
      ignore (Session.gc session);
      match attempt None with
      | Some f -> (f, Proto.Exact)
      | None ->
          if not monotone then
            refuse "budget exhausted (request is not degradable)";
          let start =
            match limits.node_budget with
            | Some b -> max 16 (b / 8)
            | None -> 4096
          in
          let rec rung t =
            if t < 16 then refuse "budget exhausted (ladder ran dry)"
            else begin
              ignore (Session.gc session);
              match attempt (Some t) with
              | Some f ->
                  if !table_hit then note M.table_full_degraded;
                  (f, Proto.Degraded (reasons () @ [ Printf.sprintf "HB@%d" t ]))
              | None -> rung (t / 4)
            end
          in
          rung start)

(* Heavy-branch subset of an operand for the degraded rungs: strictly
   below f, so any monotone combination of subsets stays below the exact
   answer. *)
let shrink man thr f =
  match thr with
  | None -> f
  | Some t ->
      Approx.under man
        ~params:{ Approx.default_params with threshold = t }
        Approx.HB f

(* --- certificates ----------------------------------------------------- *)

let cert_of_degrade (c : Resil.Degrade.cert) ~exact =
  match c with
  | Resil.Degrade.Exact ->
      if exact then Proto.Exact else Proto.Degraded [ "cut-short" ]
  | Resil.Degrade.Degraded info ->
      let rungs =
        List.fold_left
          (fun acc (s : Resil.Degrade.step) ->
            if List.mem s.rung acc then acc else s.rung :: acc)
          []
          info.Resil.Degrade.density_stats
      in
      let rungs = List.rev rungs in
      let rungs =
        if info.Resil.Degrade.exhausted then rungs @ [ "exhausted" ]
        else rungs
      in
      Proto.Degraded (if rungs = [] then [ "cut-short" ] else rungs)

let degraded = function
  | Proto.Handle { cert = Proto.Degraded _; _ }
  | Proto.Reach_done { cert = Proto.Degraded _; _ } ->
      true
  | _ -> false

(* --- request execution ------------------------------------------------ *)

let apply ?pool limits session op =
  let man = Session.man session in
  (* with a pool, the boolean connectives fork across its domains; the
     par_* kernels are bit-identical to the sequential ones, so replies
     (and their certificates) do not depend on the pool's presence *)
  let band man a b =
    match pool with
    | Some p -> Bdd.par_apply p man `And a b
    | None -> Bdd.band man a b
  and bor man a b =
    match pool with
    | Some p -> Bdd.par_apply p man `Or a b
    | None -> Bdd.bor man a b
  and bxor man a b =
    match pool with
    | Some p -> Bdd.par_apply p man `Xor a b
    | None -> Bdd.bxor man a b
  and ite man a b c =
    match pool with
    | Some p -> Bdd.par_ite p man a b c
    | None -> Bdd.ite man a b c
  and exists man ~vars a =
    (* ∃vars. a  =  ∃vars. a ∧ ⊤ *)
    match pool with
    | Some p -> Bdd.par_exist_and p man ~vars a (Bdd.tt man)
    | None -> Bdd.exists man ~vars a
  in
  let monotone =
    match op with
    | Proto.And _ | Proto.Or _ | Proto.Exists _ -> true
    | Proto.Not _ | Proto.Xor _ | Proto.Ite _ | Proto.Forall _ -> false
  in
  (* resolve handles before entering the ladder so an unknown handle is a
     clean error, not a budget failure *)
  let f, cert =
    match op with
    | Proto.Not a ->
        let a = get session a in
        budgeted limits session ~monotone (fun _ -> Bdd.bnot man a)
    | Proto.And (a, b) ->
        let a = get session a and b = get session b in
        budgeted limits session ~monotone (fun thr ->
            band man (shrink man thr a) (shrink man thr b))
    | Proto.Or (a, b) ->
        let a = get session a and b = get session b in
        budgeted limits session ~monotone (fun thr ->
            bor man (shrink man thr a) (shrink man thr b))
    | Proto.Xor (a, b) ->
        let a = get session a and b = get session b in
        budgeted limits session ~monotone (fun _ -> bxor man a b)
    | Proto.Ite (a, b, c) ->
        let a = get session a and b = get session b and c = get session c in
        budgeted limits session ~monotone (fun _ -> ite man a b c)
    | Proto.Exists (vs, a) ->
        List.iter check_var vs;
        (* materialize the variables: Bdd.cube rejects indices the manager
           has not seen, but quantifying an absent variable is just a no-op *)
        List.iter (fun v -> ignore (Bdd.ithvar man v)) vs;
        let a = get session a in
        budgeted limits session ~monotone (fun thr ->
            exists man ~vars:(Bdd.cube man vs) (shrink man thr a))
    | Proto.Forall (vs, a) ->
        List.iter check_var vs;
        List.iter (fun v -> ignore (Bdd.ithvar man v)) vs;
        let a = get session a in
        budgeted limits session ~monotone (fun _ ->
            Bdd.forall man ~vars:(Bdd.cube man vs) a)
  in
  Proto.Handle { id = Session.put session f; size = Bdd.size f; cert }

let compile limits session ~name ~blif =
  let man = Session.man session in
  let circuit =
    try Blif.parse_string blif
    with Blif.Parse_error m -> refuse "BLIF parse error: %s" m
  in
  match Session.arena session with
  | Some arena -> (
      (* content-addressed sharing: the first session to compile this
         BLIF publishes its outputs as arena segments; every later
         session views them zero-copy — no recompile, no re-import.
         The claim is single-flight: concurrent compiles of the same
         source block on the first one's publish instead of racing to
         publish duplicates *)
      Session.add_model session name circuit;
      match Arena.catalog_claim arena ~key:blif with
      | `Found entries ->
          Proto.Handles
            (List.map
               (fun (out, h) ->
                 Session.retain_arena session h;
                 let f = Arena.view arena h in
                 (name ^ "." ^ out, Session.put session f, Bdd.size f))
               entries)
      | `Claimed ->
          let entries =
            try
              let compiled, _cert =
                budgeted limits session ~monotone:false (fun _ ->
                    Compile.compile ~man circuit)
              in
              let entries =
                List.map
                  (fun (out, f) ->
                    let h =
                      Arena.publish_root arena ~name:(name ^ "." ^ out) f
                    in
                    Session.adopt_arena session h;
                    (out, h))
                  compiled.Compile.output_fns
              in
              Arena.catalog_put arena ~key:blif entries;
              entries
            with e ->
              (* a blocked claimant takes over the compute *)
              Arena.catalog_abort arena ~key:blif;
              raise e
          in
          Proto.Handles
            (List.map
               (fun (out, h) ->
                 let f = Arena.view arena h in
                 (name ^ "." ^ out, Session.put session f, Bdd.size f))
               entries))
  | None ->
      let compiled, _cert =
        budgeted limits session ~monotone:false (fun _ ->
            Compile.compile ~man circuit)
      in
      Session.add_model session name circuit;
      let handles =
        List.map
          (fun (out, f) ->
            (name ^ "." ^ out, Session.put session f, Bdd.size f))
          compiled.Compile.output_fns
      in
      Proto.Handles handles

let reach ?pool limits session ~model ~max_iter =
  let circuit =
    match Session.model session model with
    | Some c -> c
    | None -> refuse "unknown model %S (compile it first)" model
  in
  (* Reachability runs in a fresh manager: the engine (and the
     Resil.Degrade ladder inside it) collects garbage against its own
     roots, which would invalidate every other handle if it shared the
     session manager.  Only the reached set crosses back, via export. *)
  let shared =
    match pool with Some p -> Tpool.size p > 1 | None -> false
  in
  let rman = Bdd.create ~shared () in
  if Obs.Kernel.observing () then Obs.Kernel.attach rman;
  if Resil.Fault.enabled () then Resil.Fault.attach rman;
  let compiled = Compile.compile ~man:rman circuit in
  let trans = Trans.build compiled in
  (* the node budget is headroom on top of the compiled machine *)
  let node_limit =
    Option.map (fun b -> Bdd.unique_size rman + b) limits.node_budget
  in
  let result =
    Bfs.run
      ?max_iter:(if max_iter = 0 then None else Some max_iter)
      ?time_limit:limits.deadline ?node_limit ?pool trans
  in
  let reached =
    Bdd.import (Session.man session) (Bdd.export rman result.Traversal.reached)
  in
  let id = Session.put session reached in
  Proto.Reach_done
    {
      states = result.Traversal.states;
      iterations = result.Traversal.iterations;
      images = result.Traversal.images;
      reached = id;
      reached_size = Bdd.size reached;
      cert = cert_of_degrade result.Traversal.degrade ~exact:result.Traversal.exact;
    }

let handle ?(stats_extra = fun () -> []) ?pool limits session req =
  let man = Session.man session in
  (* Arena-backed sessions share one manager across concurrent domains;
     node limits and tick hooks are manager-global, so arming them for
     one request would cancel its neighbors.  Admission control and the
     arena's table capacity still bound arena-mode resource use. *)
  let limits = if Session.arena_backed session then no_limits else limits in
  Session.note_request session;
  try
    (* chaos probe: under --faults this simulates a worker crash at
       dispatch (per session, per request).  It lands inside the handler's
       own try, so an injected crash surfaces as an Error reply — the
       contract is that injection never takes the server down. *)
    if Resil.Fault.enabled () then
      Resil.Fault.on_job_dispatch
        ~label:(Printf.sprintf "serve.%d" (Session.id session))
        ~attempt:(Session.requests session);
    match req with
    | Proto.Ping -> Proto.Pong
    | Proto.Lit { var; phase } ->
        check_var var;
        let f = if phase then Bdd.ithvar man var else Bdd.nithvar man var in
        Proto.Handle
          { id = Session.put session f; size = Bdd.size f; cert = Proto.Exact }
    | Proto.Put { bdd } -> (
        match Session.arena session with
        | Some arena ->
            (* published (content-deduplicated) rather than imported: N
               sessions putting the same payload share one segment *)
            let h = Arena.publish_serialized arena bdd in
            Session.adopt_arena session h;
            let f = Arena.view arena h in
            Proto.Handle
              {
                id = Session.put session f;
                size = Bdd.size f;
                cert = Proto.Exact;
              }
        | None ->
            let f =
              with_limits limits man (fun () ->
                  Bdd.import man (Bdd.serialized_of_string bdd))
            in
            Proto.Handle
              {
                id = Session.put session f;
                size = Bdd.size f;
                cert = Proto.Exact;
              })
    | Proto.Fetch { handle } ->
        let f = get session handle in
        Proto.Bdd_payload { bdd = Bdd.serialized_to_string (Bdd.export man f) }
    | Proto.Apply op -> apply ?pool limits session op
    | Proto.Compile { name; blif } -> compile limits session ~name ~blif
    | Proto.Approx { meth; threshold; handle } ->
        let f = get session handle in
        if threshold < 0 then refuse "negative threshold";
        let g, cert =
          budgeted limits session ~monotone:true (fun thr ->
              let threshold =
                match thr with
                | None -> threshold
                | Some t -> if threshold = 0 then t else min threshold t
              in
              Approx.under man
                ~params:{ Approx.default_params with threshold }
                meth f)
        in
        Proto.Handle { id = Session.put session g; size = Bdd.size g; cert }
    | Proto.Decomp { handle; disjunctive } ->
        let f = get session handle in
        if Bdd.is_const f then refuse "cannot decompose a constant";
        let pair, _cert =
          budgeted limits session ~monotone:false (fun _ ->
              if disjunctive then Decomp.disj_cofactor man f
              else Decomp.conj_cofactor man f)
        in
        let { Decomp.g; h } = pair in
        Proto.Pair
          {
            g = Session.put session g;
            g_size = Bdd.size g;
            h = Session.put session h;
            h_size = Bdd.size h;
            shared = Decomp.shared_size pair;
          }
    | Proto.Reach { model; max_iter } ->
        reach ?pool limits session ~model ~max_iter
    | Proto.Count { handle; nvars } ->
        let f = get session handle in
        if nvars < 0 || nvars > var_cap then refuse "nvars out of range";
        Proto.Count_is (Bdd.count_minterms man f ~nvars)
    | Proto.Sat { handle } ->
        let f = get session handle in
        Proto.Sat_is
          (try Some (Bdd.any_sat man f) with Not_found -> None)
    | Proto.Attach _ ->
        (* session attachment is a connection-level concern; the server's
           reader answers it before anything reaches the worker pool *)
        refuse "attach must be the first frame on a connection"
    | Proto.Free { handles } -> Proto.Freed (Session.free session handles)
    | Proto.Stats ->
        Proto.Stats_are
          (("serve.session.id", Session.id session)
          :: ("serve.session.handles", Session.handle_count session)
          :: ("serve.session.requests", Session.requests session)
          :: (stats_extra () @ Bdd.stats man))
  with
  | Refused m -> Proto.Error m
  | Bdd.Corrupt m -> Proto.Error (Printf.sprintf "corrupt BDD payload: %s" m)
  | Bdd.Node_limit -> Proto.Error "node budget exhausted"
  | Bdd.Table_full -> Proto.Error "shared node table full"
  | Deadline -> Proto.Error "deadline exceeded"
  | Resil.Degrade.Exhausted -> Proto.Error "degradation ladder exhausted"
  | e -> Proto.Error (Printf.sprintf "request failed: %s" (Printexc.to_string e))
