(* Wire protocol codec (see the mli for the frame grammar).

   Decoding is paranoid by construction: every read checks its bounds,
   the body must be consumed exactly, and the whole frame is covered by a
   CRC-32 — the same discipline as Resil.Checkpoint, so the corruption
   properties of test_serialize.ml carry over to every frame kind. *)

exception Bad_frame of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_frame s)) fmt

type op =
  | Not of int
  | And of int * int
  | Or of int * int
  | Xor of int * int
  | Ite of int * int * int
  | Exists of int list * int
  | Forall of int list * int

type request =
  | Ping
  | Lit of { var : int; phase : bool }
  | Put of { bdd : string }
  | Fetch of { handle : int }
  | Apply of op
  | Compile of { name : string; blif : string }
  | Approx of { meth : Approx.meth; threshold : int; handle : int }
  | Decomp of { handle : int; disjunctive : bool }
  | Reach of { model : string; max_iter : int }
  | Count of { handle : int; nvars : int }
  | Sat of { handle : int }
  | Free of { handles : int list }
  | Stats
  | Attach of { key : string }

type meta = { deadline_ms : int; token : int }

let no_meta = { deadline_ms = 0; token = 0 }

type cert = Exact | Degraded of string list

type reply =
  | Pong
  | Handle of { id : int; size : int; cert : cert }
  | Bdd_payload of { bdd : string }
  | Handles of (string * int * int) list
  | Pair of { g : int; g_size : int; h : int; h_size : int; shared : int }
  | Reach_done of {
      states : float;
      iterations : int;
      images : int;
      reached : int;
      reached_size : int;
      cert : cert;
    }
  | Count_is of float
  | Sat_is of (int * bool) list option
  | Stats_are of (string * int) list
  | Freed of int
  | Error of string
  | Overloaded
  | Attached of { session : int; resumed : bool; handles : int }

(* --- printers -------------------------------------------------------- *)

let pp_op fmt = function
  | Not a -> Format.fprintf fmt "not %d" a
  | And (a, b) -> Format.fprintf fmt "and %d %d" a b
  | Or (a, b) -> Format.fprintf fmt "or %d %d" a b
  | Xor (a, b) -> Format.fprintf fmt "xor %d %d" a b
  | Ite (a, b, c) -> Format.fprintf fmt "ite %d %d %d" a b c
  | Exists (vs, a) ->
      Format.fprintf fmt "exists [%s] %d"
        (String.concat "," (List.map string_of_int vs))
        a
  | Forall (vs, a) ->
      Format.fprintf fmt "forall [%s] %d"
        (String.concat "," (List.map string_of_int vs))
        a

let pp_request fmt = function
  | Ping -> Format.pp_print_string fmt "ping"
  | Lit { var; phase } ->
      Format.fprintf fmt "lit %s%d" (if phase then "" else "!") var
  | Put { bdd } -> Format.fprintf fmt "put <%d bytes>" (String.length bdd)
  | Fetch { handle } -> Format.fprintf fmt "fetch %d" handle
  | Apply op -> Format.fprintf fmt "apply (%a)" pp_op op
  | Compile { name; blif } ->
      Format.fprintf fmt "compile %s <%d bytes>" name (String.length blif)
  | Approx { meth; threshold; handle } ->
      Format.fprintf fmt "approx %s@%d %d" (Approx.method_name meth) threshold
        handle
  | Decomp { handle; disjunctive } ->
      Format.fprintf fmt "decomp%s %d" (if disjunctive then " -disj" else "")
        handle
  | Reach { model; max_iter } ->
      Format.fprintf fmt "reach %s max_iter=%d" model max_iter
  | Count { handle; nvars } ->
      Format.fprintf fmt "count %d over %d vars" handle nvars
  | Sat { handle } -> Format.fprintf fmt "sat %d" handle
  | Free { handles } ->
      Format.fprintf fmt "free [%s]"
        (String.concat "," (List.map string_of_int handles))
  | Stats -> Format.pp_print_string fmt "stats"
  | Attach { key } -> Format.fprintf fmt "attach %S" key

let pp_cert fmt = function
  | Exact -> Format.pp_print_string fmt "exact"
  | Degraded rungs ->
      Format.fprintf fmt "degraded(%s)" (String.concat ";" rungs)

let pp_reply fmt = function
  | Pong -> Format.pp_print_string fmt "pong"
  | Handle { id; size; cert } ->
      Format.fprintf fmt "handle %d size=%d %a" id size pp_cert cert
  | Bdd_payload { bdd } ->
      Format.fprintf fmt "bdd <%d bytes>" (String.length bdd)
  | Handles hs ->
      Format.fprintf fmt "handles [%s]"
        (String.concat "; "
           (List.map
              (fun (n, id, sz) -> Printf.sprintf "%s=%d(%d)" n id sz)
              hs))
  | Pair { g; g_size; h; h_size; shared } ->
      Format.fprintf fmt "pair g=%d(%d) h=%d(%d) shared=%d" g g_size h h_size
        shared
  | Reach_done { states; iterations; images; reached; reached_size; cert } ->
      Format.fprintf fmt
        "reach %.0f states in %d iterations (%d images) -> %d(%d) %a" states
        iterations images reached reached_size pp_cert cert
  | Count_is n -> Format.fprintf fmt "count %.0f" n
  | Sat_is None -> Format.pp_print_string fmt "unsat"
  | Sat_is (Some cube) ->
      Format.fprintf fmt "sat [%s]"
        (String.concat ","
           (List.map
              (fun (v, b) -> Printf.sprintf "%s%d" (if b then "" else "!") v)
              cube))
  | Stats_are kvs -> Format.fprintf fmt "stats (%d keys)" (List.length kvs)
  | Freed n -> Format.fprintf fmt "freed %d" n
  | Error m -> Format.fprintf fmt "error %S" m
  | Overloaded -> Format.pp_print_string fmt "overloaded"
  | Attached { session; resumed; handles } ->
      Format.fprintf fmt "attached session=%d %s (%d handle(s))" session
        (if resumed then "resumed" else "fresh")
        handles

(* --- body encoding primitives ---------------------------------------- *)

let add_varint buf n =
  if n < 0 then invalid_arg "Serve.Proto: negative integer";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let add_zigzag buf n = add_varint buf ((n lsl 1) lxor (n asr 62))
let add_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

let add_str buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let add_f64 buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let add_list buf add xs =
  add_varint buf (List.length xs);
  List.iter (add buf) xs

type reader = { body : string; mutable pos : int }

let r_varint r =
  let len = String.length r.body in
  let rec go shift acc =
    if r.pos >= len then bad "truncated integer";
    if shift > 62 then bad "integer overflow";
    let b = Char.code r.body.[r.pos] in
    r.pos <- r.pos + 1;
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let r_zigzag r =
  let n = r_varint r in
  (n lsr 1) lxor (-(n land 1))

let r_bool r =
  if r.pos >= String.length r.body then bad "truncated boolean";
  let c = r.body.[r.pos] in
  r.pos <- r.pos + 1;
  match c with
  | '\000' -> false
  | '\001' -> true
  | c -> bad "bad boolean byte %d" (Char.code c)

let r_str r =
  let n = r_varint r in
  if n > String.length r.body - r.pos then bad "truncated string";
  let s = String.sub r.body r.pos n in
  r.pos <- r.pos + n;
  s

let r_f64 r =
  if r.pos + 8 > String.length r.body then bad "truncated float";
  let bits = String.get_int64_le r.body r.pos in
  r.pos <- r.pos + 8;
  Int64.float_of_bits bits

let r_list r elt =
  let n = r_varint r in
  (* an adversarial count cannot exceed the bytes that must back it *)
  if n > String.length r.body - r.pos then bad "list longer than body";
  List.init n (fun _ -> elt r)

(* --- framing ---------------------------------------------------------- *)

let magic = "BSV1"
let version = 1
let max_frame = 1 lsl 26
let header_len = 4 + 1 + 4
let trailer_len = 4

let frame body =
  if String.length body > max_frame then
    invalid_arg "Serve.Proto: frame body over max_frame";
  let buf = Buffer.create (String.length body + header_len + trailer_len) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  Buffer.add_int32_le buf (Int32.of_int (String.length body));
  Buffer.add_string buf body;
  Buffer.add_int32_le buf
    (Int32.of_int (Resil.Checkpoint.crc32 (Buffer.contents buf)));
  Buffer.contents buf

let check_header s =
  (* [s] holds at least the header; returns the announced body length *)
  if String.sub s 0 4 <> magic then bad "bad magic";
  let v = Char.code s.[4] in
  if v <> version then bad "unsupported protocol version %d" v;
  let blen = Int32.to_int (String.get_int32_le s 5) land 0xFFFFFFFF in
  if blen > max_frame then bad "announced body of %d bytes over limit" blen;
  blen

(* Incremental variant of [check_header] for the event-loop front end:
   how long will the frame at the head of [s] be, once complete?  [None]
   while fewer than [header_len] bytes have arrived. *)
let frame_size s =
  if String.length s < header_len then None
  else Some (header_len + check_header s + trailer_len)

let unframe s =
  let len = String.length s in
  if len < header_len + trailer_len then bad "frame too short (%d bytes)" len;
  let blen = check_header s in
  if len <> header_len + blen + trailer_len then
    bad "frame length mismatch (announced %d, got %d)" blen
      (len - header_len - trailer_len);
  let stored = Int32.to_int (String.get_int32_le s (len - 4)) land 0xFFFFFFFF in
  let actual = Resil.Checkpoint.crc32 (String.sub s 0 (len - 4)) in
  if stored <> actual then
    bad "frame checksum mismatch (stored %08x, computed %08x)" stored actual;
  String.sub s header_len blen

let decode_body what s parse =
  let r = { body = unframe s; pos = 0 } in
  let v = parse r in
  if r.pos <> String.length r.body then
    bad "%d trailing byte(s) after %s" (String.length r.body - r.pos) what;
  v

(* --- requests --------------------------------------------------------- *)

let add_request buf ~meta req =
  (* Requests carrying a deadline or idempotency token travel inside an
     envelope (opcode 14): the metadata fields, then the plain request
     body.  A request without metadata encodes exactly as it did before
     the envelope existed, so the extension is wire-compatible. *)
  if meta.deadline_ms < 0 || meta.token < 0 then
    invalid_arg "Serve.Proto: negative request metadata";
  if meta <> no_meta then begin
    add_varint buf 14;
    add_varint buf meta.deadline_ms;
    add_varint buf meta.token
  end;
  (match req with
  | Ping -> add_varint buf 0
  | Lit { var; phase } ->
      add_varint buf 1;
      add_varint buf var;
      add_bool buf phase
  | Put { bdd } ->
      add_varint buf 2;
      add_str buf bdd
  | Fetch { handle } ->
      add_varint buf 3;
      add_varint buf handle
  | Apply op ->
      add_varint buf 4;
      (match op with
      | Not a ->
          add_varint buf 0;
          add_varint buf a
      | And (a, b) ->
          add_varint buf 1;
          add_varint buf a;
          add_varint buf b
      | Or (a, b) ->
          add_varint buf 2;
          add_varint buf a;
          add_varint buf b
      | Xor (a, b) ->
          add_varint buf 3;
          add_varint buf a;
          add_varint buf b
      | Ite (a, b, c) ->
          add_varint buf 4;
          add_varint buf a;
          add_varint buf b;
          add_varint buf c
      | Exists (vs, a) ->
          add_varint buf 5;
          add_list buf add_varint vs;
          add_varint buf a
      | Forall (vs, a) ->
          add_varint buf 6;
          add_list buf add_varint vs;
          add_varint buf a)
  | Compile { name; blif } ->
      add_varint buf 5;
      add_str buf name;
      add_str buf blif
  | Approx { meth; threshold; handle } ->
      add_varint buf 6;
      add_str buf (Approx.method_name meth);
      add_varint buf threshold;
      add_varint buf handle
  | Decomp { handle; disjunctive } ->
      add_varint buf 7;
      add_varint buf handle;
      add_bool buf disjunctive
  | Reach { model; max_iter } ->
      add_varint buf 8;
      add_str buf model;
      add_varint buf max_iter
  | Count { handle; nvars } ->
      add_varint buf 9;
      add_varint buf handle;
      add_varint buf nvars
  | Sat { handle } ->
      add_varint buf 10;
      add_varint buf handle
  | Free { handles } ->
      add_varint buf 11;
      add_list buf add_varint handles
  | Stats -> add_varint buf 12
  | Attach { key } ->
      add_varint buf 13;
      add_str buf key)

let encode_request ?(meta = no_meta) req =
  let buf = Buffer.create 64 in
  add_request buf ~meta req;
  frame (Buffer.contents buf)

(* A batch (opcode 15) carries each pipelined request as a
   length-prefixed copy of the exact body a singleton frame would have
   carried — metadata envelope and all — so pipelining adds framing, not
   a second encoding.  Replies stream back as N ordinary reply frames in
   request order; there is no batch reply envelope. *)
let batch_opcode = 15

type envelope = Single of meta * request | Batch of (meta * request) list

let encode_batch items =
  if items = [] then invalid_arg "Serve.Proto.encode_batch: empty batch";
  let buf = Buffer.create 256 in
  add_varint buf batch_opcode;
  add_list buf
    (fun buf (meta, req) ->
      let b = Buffer.create 64 in
      add_request b ~meta req;
      add_str buf (Buffer.contents b))
    items;
  frame (Buffer.contents buf)

let parse_request r =
      let rec go meta depth =
        match r_varint r with
        | 0 -> (meta, Ping)
        | 1 ->
            let var = r_varint r in
            let phase = r_bool r in
            (meta, Lit { var; phase })
        | 2 -> (meta, Put { bdd = r_str r })
        | 3 -> (meta, Fetch { handle = r_varint r })
        | 4 ->
            ( meta,
              Apply
                (match r_varint r with
                | 0 -> Not (r_varint r)
                | 1 ->
                    let a = r_varint r in
                    And (a, r_varint r)
                | 2 ->
                    let a = r_varint r in
                    Or (a, r_varint r)
                | 3 ->
                    let a = r_varint r in
                    Xor (a, r_varint r)
                | 4 ->
                    let a = r_varint r in
                    let b = r_varint r in
                    Ite (a, b, r_varint r)
                | 5 ->
                    let vs = r_list r r_varint in
                    Exists (vs, r_varint r)
                | 6 ->
                    let vs = r_list r r_varint in
                    Forall (vs, r_varint r)
                | n -> bad "unknown apply opcode %d" n) )
        | 5 ->
            let name = r_str r in
            (meta, Compile { name; blif = r_str r })
        | 6 ->
            let m = r_str r in
            let meth =
              match Approx.method_of_string m with
              | Some meth -> meth
              | None -> bad "unknown approximation method %S" m
            in
            let threshold = r_varint r in
            (meta, Approx { meth; threshold; handle = r_varint r })
        | 7 ->
            let handle = r_varint r in
            (meta, Decomp { handle; disjunctive = r_bool r })
        | 8 ->
            let model = r_str r in
            (meta, Reach { model; max_iter = r_varint r })
        | 9 ->
            let handle = r_varint r in
            (meta, Count { handle; nvars = r_varint r })
        | 10 -> (meta, Sat { handle = r_varint r })
        | 11 -> (meta, Free { handles = r_list r r_varint })
        | 12 -> (meta, Stats)
        | 13 -> (meta, Attach { key = r_str r })
        | 14 ->
            (* metadata envelope: deadline, token, then the inner request.
               One level only — a nested envelope is an encoding bug, not
               a forward-compatibility affordance. *)
            if depth > 0 then bad "nested request envelope";
            let deadline_ms = r_varint r in
            let token = r_varint r in
            go { deadline_ms; token } (depth + 1)
        | n -> bad "unknown request opcode %d" n
      in
      go no_meta 0

let decode_envelope s =
  decode_body "request" s (fun r ->
      let saved = r.pos in
      if r_varint r = batch_opcode then begin
        let items =
          r_list r (fun r ->
              let sub = r_str r in
              let sr = { body = sub; pos = 0 } in
              (* a nested batch hits the unknown-opcode arm of the item
                 parser: batches do not recurse *)
              let v = parse_request sr in
              if sr.pos <> String.length sub then
                bad "%d trailing byte(s) after batch item"
                  (String.length sub - sr.pos);
              v)
        in
        if items = [] then bad "empty batch";
        Batch items
      end
      else begin
        r.pos <- saved;
        let meta, req = parse_request r in
        Single (meta, req)
      end)

let decode_request_meta s =
  match decode_envelope s with
  | Single (meta, req) -> (meta, req)
  | Batch _ -> bad "unexpected batch envelope (peer assumed pipelining)"

let decode_request s = snd (decode_request_meta s)

(* --- replies ---------------------------------------------------------- *)

let add_cert buf = function
  | Exact -> add_varint buf 0
  | Degraded rungs ->
      add_varint buf 1;
      add_list buf add_str rungs

let r_cert r =
  match r_varint r with
  | 0 -> Exact
  | 1 -> Degraded (r_list r r_str)
  | n -> bad "unknown certificate tag %d" n

let encode_reply rep =
  let buf = Buffer.create 64 in
  (match rep with
  | Pong -> add_varint buf 0
  | Handle { id; size; cert } ->
      add_varint buf 1;
      add_varint buf id;
      add_varint buf size;
      add_cert buf cert
  | Bdd_payload { bdd } ->
      add_varint buf 2;
      add_str buf bdd
  | Handles hs ->
      add_varint buf 3;
      add_list buf
        (fun buf (name, id, size) ->
          add_str buf name;
          add_varint buf id;
          add_varint buf size)
        hs
  | Pair { g; g_size; h; h_size; shared } ->
      add_varint buf 4;
      add_varint buf g;
      add_varint buf g_size;
      add_varint buf h;
      add_varint buf h_size;
      add_varint buf shared
  | Reach_done { states; iterations; images; reached; reached_size; cert } ->
      add_varint buf 5;
      add_f64 buf states;
      add_varint buf iterations;
      add_varint buf images;
      add_varint buf reached;
      add_varint buf reached_size;
      add_cert buf cert
  | Count_is n ->
      add_varint buf 6;
      add_f64 buf n
  | Sat_is cube ->
      add_varint buf 7;
      (match cube with
      | None -> add_bool buf false
      | Some lits ->
          add_bool buf true;
          add_list buf
            (fun buf (v, b) ->
              add_varint buf v;
              add_bool buf b)
            lits)
  | Stats_are kvs ->
      add_varint buf 8;
      add_list buf
        (fun buf (k, v) ->
          add_str buf k;
          add_zigzag buf v)
        kvs
  | Freed n ->
      add_varint buf 9;
      add_varint buf n
  | Error m ->
      add_varint buf 10;
      add_str buf m
  | Overloaded -> add_varint buf 11
  | Attached { session; resumed; handles } ->
      add_varint buf 12;
      add_varint buf session;
      add_bool buf resumed;
      add_varint buf handles);
  frame (Buffer.contents buf)

let decode_reply s =
  decode_body "reply" s (fun r ->
      match r_varint r with
      | 0 -> Pong
      | 1 ->
          let id = r_varint r in
          let size = r_varint r in
          Handle { id; size; cert = r_cert r }
      | 2 -> Bdd_payload { bdd = r_str r }
      | 3 ->
          Handles
            (r_list r (fun r ->
                 let name = r_str r in
                 let id = r_varint r in
                 (name, id, r_varint r)))
      | 4 ->
          let g = r_varint r in
          let g_size = r_varint r in
          let h = r_varint r in
          let h_size = r_varint r in
          Pair { g; g_size; h; h_size; shared = r_varint r }
      | 5 ->
          let states = r_f64 r in
          let iterations = r_varint r in
          let images = r_varint r in
          let reached = r_varint r in
          let reached_size = r_varint r in
          Reach_done
            { states; iterations; images; reached; reached_size;
              cert = r_cert r }
      | 6 -> Count_is (r_f64 r)
      | 7 ->
          Sat_is
            (if r_bool r then
               Some
                 (r_list r (fun r ->
                      let v = r_varint r in
                      (v, r_bool r)))
             else None)
      | 8 ->
          Stats_are
            (r_list r (fun r ->
                 let k = r_str r in
                 (k, r_zigzag r)))
      | 9 -> Freed (r_varint r)
      | 10 -> Error (r_str r)
      | 11 -> Overloaded
      | 12 ->
          let session = r_varint r in
          let resumed = r_bool r in
          Attached { session; resumed; handles = r_varint r }
      | n -> bad "unknown reply opcode %d" n)

(* --- transport -------------------------------------------------------- *)

let rec retry_read fd buf off len =
  try Unix.read fd buf off len
  with Unix.Unix_error (Unix.EINTR, _, _) -> retry_read fd buf off len

(* Fill exactly [len] bytes; [`Eof n] reports how many arrived first. *)
let really_read fd buf off len =
  let rec go off len =
    if len = 0 then `Ok
    else
      match retry_read fd buf off len with
      | 0 -> `Eof (off + len - len)
      | n -> go (off + n) (len - n)
  in
  go off len

let read_frame fd =
  let header = Bytes.create header_len in
  match retry_read fd header 0 header_len with
  | 0 -> None
  | n ->
      let fill_header =
        if n = header_len then `Ok
        else
          match really_read fd header n (header_len - n) with
          | `Ok -> `Ok
          | `Eof _ -> `Eof
      in
      (match fill_header with
      | `Eof -> bad "EOF inside frame header"
      | `Ok -> ());
      let hs = Bytes.to_string header in
      let blen = check_header hs in
      let rest = Bytes.create (blen + trailer_len) in
      (match really_read fd rest 0 (blen + trailer_len) with
      | `Ok -> ()
      | `Eof _ -> bad "EOF inside frame body");
      Some (hs ^ Bytes.to_string rest)

let write_frame fd s =
  let len = String.length s in
  let rec go off =
    if off < len then begin
      let n =
        try Unix.write_substring fd s off (len - off)
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (off + n)
    end
  in
  go 0
