(* Append-only fixed-arity tuple buffer with single-file overflow. *)

type t = {
  arity : int;
  bound : int;
  dir : string;
  mutable mem : int array; (* arity-strided, [0, mem_n) live *)
  mutable mem_n : int;
  mutable oc : out_channel option; (* overflow sink, opened lazily *)
  mutable path : string option;
  mutable file_n : int; (* tuples in the overflow file *)
  mutable bytes : int;
  mutable closed : bool;
}

let default_bound = 1 lsl 18

let create ?(mem_bound = default_bound) ~dir ~arity () =
  if arity <= 0 then invalid_arg "Store.Spillbuf.create: arity must be positive";
  let bound = max 64 mem_bound in
  {
    arity;
    bound;
    dir;
    mem = Array.make (min bound 1024 * arity) 0;
    mem_n = 0;
    oc = None;
    path = None;
    file_n = 0;
    bytes = 0;
    closed = false;
  }

let write_word oc n =
  for i = 0 to 7 do
    output_byte oc ((n lsr (8 * i)) land 0xFF)
  done

let read_word ic =
  let n = ref 0 in
  for i = 0 to 7 do
    n := !n lor (input_byte ic lsl (8 * i))
  done;
  !n

let push t tup =
  if t.closed then invalid_arg "Store.Spillbuf.push: closed buffer";
  if Array.length tup <> t.arity then
    invalid_arg "Store.Spillbuf.push: tuple arity mismatch";
  Array.iter
    (fun v -> if v < 0 then invalid_arg "Store.Spillbuf.push: negative field")
    tup;
  if t.mem_n < t.bound then begin
    let need = (t.mem_n + 1) * t.arity in
    if need > Array.length t.mem then begin
      let grown =
        Array.make (min (2 * Array.length t.mem) (t.bound * t.arity)) 0
      in
      Array.blit t.mem 0 grown 0 (t.mem_n * t.arity);
      t.mem <- grown
    end;
    Array.blit tup 0 t.mem (t.mem_n * t.arity) t.arity;
    t.mem_n <- t.mem_n + 1
  end
  else begin
    let oc =
      match t.oc with
      | Some oc -> oc
      | None ->
          let path = Filename.temp_file ~temp_dir:t.dir "spillbuf" ".buf" in
          let oc = open_out_bin path in
          t.path <- Some path;
          t.oc <- Some oc;
          oc
    in
    Array.iter (write_word oc) tup;
    t.file_n <- t.file_n + 1;
    t.bytes <- t.bytes + (8 * t.arity)
  end

let length t = t.mem_n + t.file_n
let spilled_bytes t = t.bytes

let iter t f =
  let scratch = Array.make t.arity 0 in
  (match t.path with
  | None -> ()
  | Some path ->
      (match t.oc with Some oc -> flush oc | None -> ());
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          for _ = 1 to t.file_n do
            for k = 0 to t.arity - 1 do
              scratch.(k) <- read_word ic
            done;
            f scratch
          done));
  for i = 0 to t.mem_n - 1 do
    Array.blit t.mem (i * t.arity) scratch 0 t.arity;
    f scratch
  done

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.mem_n <- 0;
    t.mem <- [||];
    (match t.oc with Some oc -> close_out_noerr oc | None -> ());
    t.oc <- None;
    (match t.path with
    | Some p -> ( try Sys.remove p with Sys_error _ -> ())
    | None -> ());
    t.path <- None
  end
