(* Levelized streaming apply + reduce (see the mli for the big picture).

   Apply (top-down): requests are (level, fa, gb, parent_uid, dir) tuples
   in a priority queue, popped in lexicographic order, so all requests for
   one (level, fa, gb) pair are adjacent and the pair becomes exactly one
   unreduced output node.  Each request records a parent arc; children
   either resolve to a terminal (recorded in a per-level terminal-arc
   buffer) or become deeper requests.

   Reduce (bottom-up): levels are processed deepest first.  A level's
   nodes get their resolved children from the terminal-arc buffer and a
   forwarding queue fed by deeper levels; redundant nodes (hi = lo)
   forward their child, duplicates merge under an (hi, lo) sort, and the
   survivors' final handles are forwarded to their parents' arcs.  Unique
   node words append to a temp body file that Level_file.save_stream
   copies into the final checksummed output. *)

type op = And | Or | Diff | Xor

type apply_stats = {
  requests : int;
  unreduced : int;
  reduced : int;
  spilled_bytes : int;
}

(* Both-terminal pairs always resolve; one-terminal pairs resolve only
   when the operator short-circuits (otherwise the copy/negation of the
   remaining operand emerges from descending into it). *)
let term_result op a b =
  match op with
  | And ->
      if a = 0 || b = 0 then Some 0
      else if a = 1 && b = 1 then Some 1
      else None
  | Or ->
      if a = 1 || b = 1 then Some 1
      else if a = 0 && b = 0 then Some 0
      else None
  | Diff ->
      if a = 0 || b = 1 then Some 0
      else if a = 1 && b = 0 then Some 1
      else None
  | Xor -> if a < 2 && b < 2 then Some (a lxor b) else None

(* Output-node uid: level in the high bits, per-level sequence number in
   the low 40.  The root sentinel sits above any real uid. *)
let seq_bits = 40
let seq_mask = (1 lsl seq_bits) - 1
let root_uid = 1 lsl 60

let write_word oc n =
  for i = 0 to 7 do
    output_byte oc ((n lsr (8 * i)) land 0xFF)
  done

let apply ~dir ?mem_bound ~path op f g =
  let nlv = Level_file.nvars f in
  if nlv <> Level_file.nvars g || Level_file.order f <> Level_file.order g then
    invalid_arg "Store.Stream.apply: operands disagree on variable order";
  let order = Level_file.order f in
  let lvl_f h = Level_file.level_of_handle f h
  and lvl_g h = Level_file.level_of_handle g h in
  let constant v =
    Level_file.save_stream path ~nvars:nlv ~order ~levels:[||] ~nnodes:0
      ~root:v ~write_nodes:(fun ~emit:_ -> ())
  in
  match term_result op (Level_file.root f) (Level_file.root g) with
  | Some v ->
      constant v;
      ( Level_file.open_map path,
        { requests = 0; unreduced = 0; reduced = 0; spilled_bytes = 0 } )
  | None ->
      let reqs = Pq.create ?mem_bound ~dir ~arity:5 () in
      let width = Array.make nlv 0 in
      let int_arcs =
        Array.init nlv (fun _ -> Spillbuf.create ?mem_bound ~dir ~arity:3 ())
      and term_arcs =
        Array.init nlv (fun _ -> Spillbuf.create ?mem_bound ~dir ~arity:3 ())
      in
      let spilled = ref 0 in
      let tup3 = Array.make 3 0 and tup4 = Array.make 4 0 in
      let push_req lv fa gb parent dir =
        Pq.push reqs [| lv; fa; gb; parent; dir |]
      in
      push_req
        (min (lvl_f (Level_file.root f)) (lvl_g (Level_file.root g)))
        (Level_file.root f) (Level_file.root g) root_uid 0;
      (* ---- top-down request sweep ---- *)
      let requests = ref 0 in
      let cur = Array.make 5 0 in
      let grp_valid = ref false in
      let grp_lv = ref 0 and grp_fa = ref 0 and grp_gb = ref 0 in
      let grp_seq = ref 0 in
      while Pq.pop reqs cur do
        let lv = cur.(0) and fa = cur.(1) and gb = cur.(2) in
        let parent = cur.(3) and dir = cur.(4) in
        let seq =
          if !grp_valid && !grp_lv = lv && !grp_fa = fa && !grp_gb = gb then
            !grp_seq
          else begin
            incr requests;
            let s = width.(lv) in
            width.(lv) <- s + 1;
            grp_valid := true;
            grp_lv := lv;
            grp_fa := fa;
            grp_gb := gb;
            grp_seq := s;
            (* expand children once per (lv, fa, gb) group *)
            let fh, fl =
              if lvl_f fa = lv then (Level_file.hi f fa, Level_file.lo f fa)
              else (fa, fa)
            and gh, gl =
              if lvl_g gb = lv then (Level_file.hi g gb, Level_file.lo g gb)
              else (gb, gb)
            in
            let uid = (lv lsl seq_bits) lor s in
            let child cdir ca cb =
              match term_result op ca cb with
              | Some v ->
                  tup3.(0) <- s;
                  tup3.(1) <- cdir;
                  tup3.(2) <- v;
                  Spillbuf.push term_arcs.(lv) tup3
              | None -> push_req (min (lvl_f ca) (lvl_g cb)) ca cb uid cdir
            in
            child 1 fh gh;
            child 0 fl gl;
            s
          end
        in
        tup3.(0) <- parent;
        tup3.(1) <- dir;
        tup3.(2) <- seq;
        Spillbuf.push int_arcs.(lv) tup3
      done;
      spilled := !spilled + Pq.spilled_bytes reqs;
      Pq.close reqs;
      (* ---- bottom-up reduce ---- *)
      let fwd = Pq.create ?mem_bound ~dir ~arity:4 () in
      let body_path = Filename.temp_file ~temp_dir:dir "reduce" ".body" in
      let body_oc = open_out_bin body_path in
      let levels_acc = ref [] in
      let base = ref 0 in
      let root_result = ref (-1) in
      let unreduced = ref 0 in
      for lv = nlv - 1 downto 0 do
        let w = width.(lv) in
        if w > 0 then begin
          unreduced := !unreduced + w;
          let hi_res = Array.make w (-1) and lo_res = Array.make w (-1) in
          Spillbuf.iter term_arcs.(lv) (fun t ->
              if t.(1) = 1 then hi_res.(t.(0)) <- t.(2)
              else lo_res.(t.(0)) <- t.(2));
          let key1 = nlv - lv in
          while Pq.peek fwd tup4 && tup4.(0) = key1 do
            ignore (Pq.pop fwd tup4);
            if tup4.(2) = 1 then hi_res.(tup4.(1)) <- tup4.(3)
            else lo_res.(tup4.(1)) <- tup4.(3)
          done;
          let res = Array.make w (-1) in
          let cands = ref [] in
          for seq = w - 1 downto 0 do
            let h = hi_res.(seq) and l = lo_res.(seq) in
            if h < 0 || l < 0 then
              raise (Bdd.Corrupt "streaming apply: unresolved child arc");
            if h = l then res.(seq) <- h else cands := seq :: !cands
          done;
          let cands = Array.of_list !cands in
          Array.sort
            (fun s1 s2 ->
              compare (hi_res.(s1), lo_res.(s1)) (hi_res.(s2), lo_res.(s2)))
            cands;
          let uniq = ref 0 and ph = ref (-1) and pl = ref (-1) in
          Array.iter
            (fun seq ->
              let h = hi_res.(seq) and l = lo_res.(seq) in
              if h <> !ph || l <> !pl then begin
                write_word body_oc h;
                write_word body_oc l;
                ph := h;
                pl := l;
                incr uniq
              end;
              res.(seq) <- !base + !uniq - 1 + 2)
            cands;
          if !uniq > 0 then levels_acc := (order.(lv), !uniq) :: !levels_acc;
          base := !base + !uniq;
          Spillbuf.iter int_arcs.(lv) (fun t ->
              let h = res.(t.(2)) in
              if t.(0) = root_uid then root_result := h
              else begin
                tup4.(0) <- nlv - (t.(0) lsr seq_bits);
                tup4.(1) <- t.(0) land seq_mask;
                tup4.(2) <- t.(1);
                tup4.(3) <- h;
                Pq.push fwd tup4
              end)
        end;
        spilled :=
          !spilled
          + Spillbuf.spilled_bytes int_arcs.(lv)
          + Spillbuf.spilled_bytes term_arcs.(lv);
        Spillbuf.close int_arcs.(lv);
        Spillbuf.close term_arcs.(lv)
      done;
      close_out body_oc;
      spilled := !spilled + Pq.spilled_bytes fwd;
      Pq.close fwd;
      let root = !root_result in
      let nnodes = !base in
      Fun.protect
        ~finally:(fun () ->
          try Sys.remove body_path with Sys_error _ -> ())
        (fun () ->
          if root < 0 then
            raise (Bdd.Corrupt "streaming apply: root never resolved")
          else if root < 2 then
            (* everything reduced away to a constant *)
            constant root
          else
            Level_file.save_stream path ~nvars:nlv ~order
              ~levels:(Array.of_list (List.rev !levels_acc))
              ~nnodes ~root ~write_nodes:(fun ~emit ->
                let ic = open_in_bin body_path in
                Fun.protect
                  ~finally:(fun () -> close_in_noerr ic)
                  (fun () ->
                    let buf = Bytes.create 65536 in
                    let left = ref (2 * nnodes * 8) in
                    while !left > 0 do
                      let k = min !left (Bytes.length buf) in
                      really_input ic buf 0 k;
                      emit buf 0 k;
                      left := !left - k
                    done)));
      let out = Level_file.open_map path in
      ( out,
        {
          requests = !requests;
          unreduced = !unreduced;
          reduced = nnodes;
          spilled_bytes = !spilled;
        } )

(* ---- streaming minterm count ----------------------------------------- *)

(* Top-down contribution forwarding: the root carries 2^(root level)
   (the free variables above it), each arc multiplies by 2^(gap - 1) for
   the levels it skips, and arcs into tt accumulate.  Handles are visited
   in decreasing order — parents always precede children because the file
   is children-before-parents — so a node's full weight is known when it
   is popped.  Float weights ride in the queue as their IEEE bits split
   into two non-negative 32-bit fields. *)
let count_minterms ~dir ?mem_bound t =
  let root = Level_file.root t in
  let nv = Level_file.nvars t in
  if root = 0 then 0.0
  else if root = 1 then ldexp 1.0 nv
  else begin
    let maxh = Level_file.node_count t + 2 in
    let pq = Pq.create ?mem_bound ~dir ~arity:3 () in
    let tup = Array.make 3 0 in
    let push_weight h w =
      let bits = Int64.bits_of_float w in
      tup.(0) <- maxh - h;
      tup.(1) <- Int64.to_int (Int64.shift_right_logical bits 32);
      tup.(2) <- Int64.to_int (Int64.logand bits 0xFFFFFFFFL);
      Pq.push pq tup
    in
    let weight_of a =
      Int64.float_of_bits
        (Int64.logor
           (Int64.shift_left (Int64.of_int a.(1)) 32)
           (Int64.of_int a.(2)))
    in
    push_weight root (ldexp 1.0 (Level_file.level_of_handle t root));
    let acc = ref 0.0 in
    let cur = Array.make 3 0 in
    while Pq.pop pq cur do
      let h = maxh - cur.(0) in
      let w = ref (weight_of cur) in
      while Pq.peek pq cur && maxh - cur.(0) = h do
        ignore (Pq.pop pq cur);
        w := !w +. weight_of cur
      done;
      let lv = Level_file.level_of_handle t h in
      let child c =
        if c = 1 then acc := !acc +. ldexp !w (nv - lv - 1)
        else if c >= 2 then
          push_weight c (ldexp !w (Level_file.level_of_handle t c - lv - 1))
      in
      child (Level_file.hi t h);
      child (Level_file.lo t h)
    done;
    Pq.close pq;
    !acc
  end
