(* The tiered node store (see the mli). *)

type slot = {
  s_path : string;
  s_nnodes : int;
  s_bytes : int;
  s_root : int;
  mutable s_file : Level_file.t option; (* None = spilled / unmapped *)
  mutable s_rc : int;
}

type t = {
  man : Bdd.man;
  dir : string;
  own_dir : bool;
  mem_bound : int;
  disk_budget : int option;
  slots : (int, slot) Hashtbl.t;
  mutable next_id : int;
  mutable cold : int;
  mutable peak_cold : int;
  mutable spilled : int; (* cumulative bytes written, monotone *)
  mutable disk_used : int; (* live cold-file bytes *)
  mutable closed : bool;
}

type handle = int

exception Disk_full

(* ---- global file registry, for SIGINT / abnormal-exit cleanup -------- *)

let reg_mutex = Mutex.create ()
let reg_files : (string, unit) Hashtbl.t = Hashtbl.create 32
let reg_dirs : (string, unit) Hashtbl.t = Hashtbl.create 4

let locked f =
  Mutex.lock reg_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_mutex) f

let register p = locked (fun () -> Hashtbl.replace reg_files p ())
let unregister p = locked (fun () -> Hashtbl.remove reg_files p)

let cleanup_files () =
  let files, dirs =
    locked (fun () ->
        let fs = Hashtbl.fold (fun p () acc -> p :: acc) reg_files [] in
        let ds = Hashtbl.fold (fun p () acc -> p :: acc) reg_dirs [] in
        Hashtbl.reset reg_files;
        Hashtbl.reset reg_dirs;
        (fs, ds))
  in
  let n = ref 0 in
  List.iter
    (fun p ->
      try
        Sys.remove p;
        incr n
      with Sys_error _ -> ())
    files;
  (* stores also spill queue runs and reduce temps into their own dirs *)
  List.iter
    (fun d ->
      (try
         Array.iter
           (fun name ->
             try
               Sys.remove (Filename.concat d name);
               incr n
             with Sys_error _ -> ())
           (Sys.readdir d)
       with Sys_error _ -> ());
      try Unix.rmdir d with Unix.Unix_error _ -> ())
    dirs;
  !n

(* ---- observability helpers ------------------------------------------- *)

let m_inc name n =
  if Obs.Metrics.recording () then
    Obs.Metrics.inc (Obs.Metrics.counter Obs.Metrics.default name) n

let m_set name v =
  if Obs.Metrics.recording () then
    Obs.Metrics.set (Obs.Metrics.gauge Obs.Metrics.default name) v

let update_gauges t =
  m_set "store.cold_nodes" t.cold;
  m_set "store.disk_used_bytes" t.disk_used

(* ---- store lifecycle -------------------------------------------------- *)

let create ?dir ?(mem_bound = 1 lsl 18) ?disk_budget_bytes man =
  let dir, own_dir =
    match dir with
    | Some d ->
        if not (Sys.file_exists d) then Unix.mkdir d 0o755;
        (d, false)
    | None ->
        let d = Filename.temp_file "bddstore" ".d" in
        Sys.remove d;
        Unix.mkdir d 0o700;
        (d, true)
  in
  if own_dir then locked (fun () -> Hashtbl.replace reg_dirs dir ());
  let t =
    {
      man;
      dir;
      own_dir;
      mem_bound;
      disk_budget = disk_budget_bytes;
      slots = Hashtbl.create 64;
      next_id = 0;
      cold = 0;
      peak_cold = 0;
      spilled = 0;
      disk_used = 0;
      closed = false;
    }
  in
  Bdd.set_store_stats man
    (Some (fun () -> (Bdd.unique_size man, t.cold, t.spilled)));
  t

let check_open t =
  if t.closed then invalid_arg "Store.Tiered: store is closed"

let slot t h =
  check_open t;
  match Hashtbl.find_opt t.slots h with
  | Some s when s.s_rc > 0 -> s
  | _ -> invalid_arg "Store.Tiered: dead or unknown handle"

let file_of_slot s =
  match s.s_file with
  | Some f -> f
  | None ->
      (* remap — re-verifies the checksum trailer *)
      m_inc "store.remaps" 1;
      let f = Level_file.open_map s.s_path in
      s.s_file <- Some f;
      f

let fresh_path t =
  let id = t.next_id in
  t.next_id <- id + 1;
  (id, Filename.concat t.dir (Printf.sprintf "cold%06d.blv" id))

(* Account a newly written level file as slot [id]; enforces the disk
   budget, removing the file before raising. *)
let adopt t id path lf =
  let bytes = Level_file.file_bytes lf in
  (match t.disk_budget with
  | Some budget when t.disk_used + bytes > budget ->
      (try Sys.remove path with Sys_error _ -> ());
      unregister path;
      m_inc "store.disk_full" 1;
      raise Disk_full
  | _ -> ());
  let s =
    {
      s_path = path;
      s_nnodes = Level_file.node_count lf;
      s_bytes = bytes;
      s_root = Level_file.root lf;
      s_file = Some lf;
      s_rc = 1;
    }
  in
  Hashtbl.replace t.slots id s;
  t.cold <- t.cold + s.s_nnodes;
  if t.cold > t.peak_cold then t.peak_cold <- t.cold;
  t.spilled <- t.spilled + bytes;
  t.disk_used <- t.disk_used + bytes;
  m_inc "store.spilled_bytes" bytes;
  update_gauges t;
  id

(* ---- tier movement ---------------------------------------------------- *)

let demote t b =
  check_open t;
  Obs.Trace.with_span "store.demote" (fun () ->
      let s = Bdd.export t.man b in
      let id, path = fresh_path t in
      register path;
      let lf = Level_file.of_serialized path s in
      m_inc "store.demotions" 1;
      adopt t id path lf)

let promote t h =
  let s = slot t h in
  Obs.Trace.with_span "store.promote" (fun () ->
      let b = Bdd.import t.man (Level_file.to_serialized (file_of_slot s)) in
      m_inc "store.promotions" 1;
      b)

let apply t op a b =
  let sa = slot t a and sb = slot t b in
  Obs.Trace.with_span "store.apply" (fun () ->
      let fa = file_of_slot sa and fb = file_of_slot sb in
      let id, path = fresh_path t in
      register path;
      let lf, st = Stream.apply ~dir:t.dir ~mem_bound:t.mem_bound ~path op fa fb in
      t.spilled <- t.spilled + st.Stream.spilled_bytes;
      m_inc "store.apply_ops" 1;
      m_inc "store.spilled_bytes" st.Stream.spilled_bytes;
      if st.Stream.spilled_bytes > 0 then m_inc "store.pq_spills" 1;
      adopt t id path lf)

(* ---- handle management ------------------------------------------------ *)

let retain t h =
  let s = slot t h in
  s.s_rc <- s.s_rc + 1

let drop t h =
  let s = slot t h in
  s.s_rc <- s.s_rc - 1;
  if s.s_rc = 0 then begin
    Hashtbl.remove t.slots h;
    t.cold <- t.cold - s.s_nnodes;
    t.disk_used <- t.disk_used - s.s_bytes;
    (try Sys.remove s.s_path with Sys_error _ -> ());
    unregister s.s_path;
    update_gauges t
  end

let spill t =
  check_open t;
  Hashtbl.iter (fun _ s -> s.s_file <- None) t.slots;
  m_inc "store.spills" 1

(* ---- queries ----------------------------------------------------------- *)

let is_const t h =
  let s = slot t h in
  if s.s_root < 2 then Some s.s_root else None

let node_count t h = (slot t h).s_nnodes

let count_minterms t h =
  let s = slot t h in
  Stream.count_minterms ~dir:t.dir ~mem_bound:t.mem_bound (file_of_slot s)

let to_serialized t h = Level_file.to_serialized (file_of_slot (slot t h))

let equal t a b =
  let sa = slot t a and sb = slot t b in
  if sa == sb then true
  else Level_file.equal (file_of_slot sa) (file_of_slot sb)

let cold_nodes t = t.cold
let peak_cold_nodes t = t.peak_cold
let spilled_bytes t = t.spilled
let disk_used_bytes t = t.disk_used

let close t =
  if not t.closed then begin
    t.closed <- true;
    Hashtbl.iter
      (fun _ s ->
        (try Sys.remove s.s_path with Sys_error _ -> ());
        unregister s.s_path)
      t.slots;
    Hashtbl.reset t.slots;
    t.cold <- 0;
    t.disk_used <- 0;
    update_gauges t;
    Bdd.set_store_stats t.man None;
    if t.own_dir then begin
      (* sweep stray queue runs / reduce temps, then the dir itself *)
      (try
         Array.iter
           (fun name ->
             try Sys.remove (Filename.concat t.dir name) with Sys_error _ -> ())
           (Sys.readdir t.dir)
       with Sys_error _ -> ());
      (try Unix.rmdir t.dir with Unix.Unix_error _ -> ());
      locked (fun () -> Hashtbl.remove reg_dirs t.dir)
    end
  end
