(** Levelized streaming apply / reduce over cold-tier level files.

    The external-memory algorithm of the Adiar family, sized for this
    repository: instead of pointer-chasing recursion over an in-RAM unique
    table, {!apply} runs top-down over two {!Level_file.t} inputs, keeping
    node-pair requests in a bounded-memory priority queue ({!Pq}) ordered
    by level, and {!apply}'s built-in bottom-up reduce re-canonicalizes
    the unreduced output level by level, forwarding resolved child handles
    to parent arcs through a second priority queue.  RAM use is bounded by
    the queue memory bounds plus the widest single level of the unreduced
    output (the per-level resolution arrays — the levelized cut); node
    data beyond that streams through temp files in [dir].

    Inputs must share [nvars] and the variable order.  The output is
    written with {!Level_file.save_stream}, so it is canonical: equal
    functions yield word-for-word equal files. *)

type op = And | Or | Diff | Xor
(** [Diff] is [a AND NOT b].  Negation is [Xor] against [tt]. *)

type apply_stats = {
  requests : int;  (** node-pair requests processed (post-dedup) *)
  unreduced : int;  (** output nodes before reduction *)
  reduced : int;  (** output nodes after reduction *)
  spilled_bytes : int;
      (** bytes the priority queues and arc buffers spilled to temp files *)
}

val apply :
  dir:string ->
  ?mem_bound:int ->
  path:string ->
  op ->
  Level_file.t ->
  Level_file.t ->
  Level_file.t * apply_stats
(** [apply ~dir ~path op f g] computes [op f g] entirely out of core and
    writes the canonical result to [path] (atomically, checksummed),
    returning it opened.  A constant result still produces a (tiny) level
    file.  [mem_bound] caps each internal queue and buffer in tuples.
    @raise Invalid_argument if [f] and [g] disagree on variables or
    order. *)

val count_minterms : dir:string -> ?mem_bound:int -> Level_file.t -> float
(** Number of satisfying assignments over all [nvars] variables, computed
    by one top-down streaming sweep forwarding path-weight contributions
    through a priority queue — no recursion, no memo table. *)
