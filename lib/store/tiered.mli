(** The tiered node store: hot manager, mmap'd cold tier, spill files.

    A store pairs a {!Bdd.man} (the hot tier — PR 2's packed unique
    table) with a directory of canonical {!Level_file} files (the cold
    tier).  BDDs too big for the hot tier are {!demote}d: exported,
    canonicalized, written as a checksummed level file, and addressed from
    then on by a stable integer {!handle}.  Cold BDDs are combined with
    {!apply} — the levelized streaming operations of {!Stream}, which
    never materialize operands in RAM — and can be {!promote}d back into
    the hot tier when they fit.  {!spill} drops the memory mappings
    (address space, page cache) of all cold files; the next access remaps
    and re-verifies the checksum.

    Creating a store registers a {!Bdd.set_store_stats} callback on the
    manager, so [Bdd.stats] reports [hot_nodes] / [cold_nodes] /
    [spilled_bytes] for it.  When [Obs.Metrics.recording] is on, the
    store maintains [store.*] counters and gauges and wraps demote /
    promote / apply in trace spans.

    Handles are reference-counted: {!demote} and {!apply} return a handle
    with one reference; {!drop} releases it, deleting the backing file at
    zero.  Stores are single-threaded, like the manager they wrap. *)

type t
type handle

exception Disk_full
(** Raised when a write would push the store past [disk_budget_bytes].
    The partial output file is removed first; the store stays usable —
    callers fall down the {!Resil.Degrade} ladder from here. *)

val create :
  ?dir:string -> ?mem_bound:int -> ?disk_budget_bytes:int -> Bdd.man -> t
(** [create man] opens a store for [man].  [dir] is where cold and spill
    files live (default: a fresh directory under the system temp dir,
    removed by {!close}).  [mem_bound] caps the streaming queues and
    buffers in tuples (default [1 lsl 18]).  [disk_budget_bytes] makes
    writes beyond that total raise {!Disk_full}. *)

val demote : t -> Bdd.t -> handle
(** Move a hot BDD to the cold tier (the hot nodes themselves are freed
    by the caller's next [Bdd.gc]).  Constants demote to tiny files. *)

val promote : t -> handle -> Bdd.t
(** Rebuild a cold BDD in the hot tier.  The handle stays valid.
    @raise Bdd.Node_limit if it does not fit under the manager's limit. *)

val apply : t -> Stream.op -> handle -> handle -> handle
(** [apply t op a b] combines two cold BDDs out of core and returns a
    handle on the result.  @raise Disk_full per {!create}. *)

val drop : t -> handle -> unit
(** Release one reference; the backing file is deleted at zero.  Using a
    fully dropped handle is an error. *)

val retain : t -> handle -> unit
(** Add a reference. *)

val spill : t -> unit
(** Unmap every cold file (metadata stays).  Next access remaps and
    re-verifies the checksum — @raise Bdd.Corrupt then if the file was
    damaged while unmapped. *)

val is_const : t -> handle -> int option
(** [Some 0] / [Some 1] for a constant cold BDD, [None] otherwise. *)

val node_count : t -> handle -> int
val count_minterms : t -> handle -> float
(** Satisfying assignments, by streaming sweep ({!Stream.count_minterms}). *)

val to_serialized : t -> handle -> Bdd.serialized
(** Materialize for transfer — promotion without a manager. *)

val equal : t -> handle -> handle -> bool
(** Canonical-file comparison: semantic equality, no manager needed. *)

val cold_nodes : t -> int
(** Decision nodes currently in the cold tier (live handles). *)

val peak_cold_nodes : t -> int
val spilled_bytes : t -> int
(** Cumulative bytes written to cold and spill files (monotone). *)

val disk_used_bytes : t -> int
(** Bytes of live cold files right now. *)

val close : t -> unit
(** Drop all handles, delete the store's files (and its directory if the
    store created it), deregister the stats callback.  Idempotent. *)

val cleanup_files : unit -> int
(** Remove every file any live store has on disk — the SIGINT /
    abnormal-exit path, alongside {!Resil.Checkpoint.cleanup_pending}.
    Returns the number of files removed. *)
