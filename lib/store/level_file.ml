(* Levelized on-disk BDD files.  Layout (64-bit little-endian words):

     word 0             magic "BLV1" (low four bytes)
     word 1             nvars
     word 2             nlevels (non-empty levels)
     word 3             nnodes
     word 4             root handle
     words 5 ..         order: level -> var            (nvars words)
     then               level table: (var, count)      (2 * nlevels words,
                                                        deepest level first)
     then               nodes: (hi, lo)                (2 * nnodes words,
                                                        grouped by level
                                                        deepest first, each
                                                        level sorted
                                                        ascending)
     then               Checkpoint.write_stream trailer (16 bytes)

   Handle 0 = ff, 1 = tt, node at position j = handle j + 2. *)

let magic_word = 0x31564C42 (* 'B' 'L' 'V' '1', little-endian *)
let hdr_words = 5
let trailer_bytes = 16

type t = {
  nvars : int;
  order : int array; (* level -> var *)
  levels : (int * int) array; (* (var, count), deepest first *)
  bucket_level : int array; (* global level per level-table entry *)
  starts : int array; (* starts.(i) = first node position of bucket i;
                         length nlevels + 1 *)
  data : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
  base : int; (* word index of the first node word *)
  nnodes : int;
  root : int;
  path : string;
  bytes : int; (* on-disk size, trailer included *)
}

let corrupt msg = raise (Bdd.Corrupt ("level file: " ^ msg))

(* --- canonicalization of a serialized BDD ----------------------------- *)

(* Returns (nvars, order, levels deepest-first, node words, nnodes, root). *)
let canonicalize (s : Bdd.serialized) =
  if Array.length s.s_roots <> 1 then
    invalid_arg "Store.Level_file: exactly one root required";
  let nvars = s.s_nvars in
  if nvars < 0 then corrupt "negative nvars";
  if Array.length s.s_order <> nvars then corrupt "order length mismatch";
  let var_level = Array.make nvars (-1) in
  Array.iteri
    (fun lv v ->
      if v < 0 || v >= nvars || var_level.(v) >= 0 then
        corrupt "order is not a permutation";
      var_level.(v) <- lv)
    s.s_order;
  let n = Array.length s.s_nodes in
  let buckets = Array.make (max nvars 1) [] in
  Array.iteri
    (fun j (v, hi, lo) ->
      if v < 0 || v >= nvars then corrupt "node variable out of range";
      if hi < 0 || hi >= j + 2 || lo < 0 || lo >= j + 2 then
        corrupt "child index out of range";
      let lv = var_level.(v) in
      buckets.(lv) <- j :: buckets.(lv))
    s.s_nodes;
  let remap = Array.make (n + 2) (-1) in
  remap.(0) <- 0;
  remap.(1) <- 1;
  let data = Array.make (2 * n) 0 in
  let levels = ref [] in
  let base = ref 0 in
  for lv = nvars - 1 downto 0 do
    match buckets.(lv) with
    | [] -> ()
    | js ->
        let pairs =
          List.rev_map
            (fun j ->
              let _, h, l = s.s_nodes.(j) in
              let nh = remap.(h) and nl = remap.(l) in
              if nh < 0 || nl < 0 then
                corrupt "child not at a strictly deeper level";
              (nh, nl, j))
            js
          |> Array.of_list
        in
        Array.sort
          (fun (h1, l1, _) (h2, l2, _) -> compare (h1, l1) (h2, l2))
          pairs;
        Array.iteri
          (fun pos (nh, nl, j) ->
            if nh = nl then corrupt "redundant node (hi = lo)";
            if pos > 0 then begin
              let ph, pl, _ = pairs.(pos - 1) in
              if ph = nh && pl = nl then corrupt "duplicate node within level"
            end;
            let idx = !base + pos in
            data.(2 * idx) <- nh;
            data.((2 * idx) + 1) <- nl;
            remap.(j + 2) <- idx + 2)
          pairs;
        levels := (s.s_order.(lv), Array.length pairs) :: !levels;
        base := !base + Array.length pairs
  done;
  let r = s.s_roots.(0) in
  if r < 0 || r >= n + 2 then corrupt "root index out of range";
  let root = remap.(r) in
  if root < 0 then corrupt "root unresolved" (* unreachable for valid input *);
  (nvars, Array.copy s.s_order, Array.of_list (List.rev !levels), data, n, root)

(* --- writing ---------------------------------------------------------- *)

(* A buffered word emitter over Checkpoint.write_stream's byte emit. *)
let word_emitter emit =
  let buf = Bytes.create 65536 in
  let pos = ref 0 in
  let word w =
    if !pos + 8 > Bytes.length buf then begin
      emit buf 0 !pos;
      pos := 0
    end;
    Bytes.set_int64_le buf !pos (Int64.of_int w);
    pos := !pos + 8
  in
  let flush () =
    if !pos > 0 then begin
      emit buf 0 !pos;
      pos := 0
    end
  in
  (word, flush)

let emit_header ~word ~nvars ~order ~(levels : (int * int) array) ~nnodes ~root
    =
  word magic_word;
  word nvars;
  word (Array.length levels);
  word nnodes;
  word root;
  Array.iter word order;
  Array.iter
    (fun (v, c) ->
      word v;
      word c)
    levels

let write path s =
  let nvars, order, levels, data, nnodes, root = canonicalize s in
  Resil.Checkpoint.write_stream path (fun ~emit ->
      let word, flush = word_emitter emit in
      emit_header ~word ~nvars ~order ~levels ~nnodes ~root;
      Array.iter word data;
      flush ())

let save_stream path ~nvars ~order ~levels ~nnodes ~root ~write_nodes =
  Resil.Checkpoint.write_stream path (fun ~emit ->
      let word, flush = word_emitter emit in
      emit_header ~word ~nvars ~order ~levels ~nnodes ~root;
      flush ();
      write_nodes ~emit)

(* --- reading ---------------------------------------------------------- *)

let open_map path =
  let body_len = Resil.Checkpoint.verify_stream path in
  if body_len < hdr_words * 8 || body_len mod 8 <> 0 then
    corrupt "body is not a whole number of words";
  let nwords = body_len / 8 in
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let data =
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Bigarray.array1_of_genarray
          (Unix.map_file fd Bigarray.int Bigarray.c_layout false [| nwords |]))
  in
  if data.{0} <> magic_word then corrupt "bad magic";
  let nvars = data.{1}
  and nlevels = data.{2}
  and nnodes = data.{3}
  and root = data.{4} in
  if nvars < 0 || nlevels < 0 || nnodes < 0 then corrupt "negative header field";
  if nwords <> hdr_words + nvars + (2 * nlevels) + (2 * nnodes) then
    corrupt "size does not match header";
  let order = Array.init nvars (fun i -> data.{hdr_words + i}) in
  let var_level = Array.make nvars (-1) in
  Array.iteri
    (fun lv v ->
      if v < 0 || v >= nvars || var_level.(v) >= 0 then
        corrupt "order is not a permutation";
      var_level.(v) <- lv)
    order;
  let lt_off = hdr_words + nvars in
  let levels =
    Array.init nlevels (fun i ->
        (data.{lt_off + (2 * i)}, data.{lt_off + (2 * i) + 1}))
  in
  let bucket_level = Array.make nlevels 0 in
  let starts = Array.make (nlevels + 1) 0 in
  let prev = ref nvars in
  Array.iteri
    (fun i (v, c) ->
      if v < 0 || v >= nvars then corrupt "level-table variable out of range";
      if c <= 0 then corrupt "empty level-table entry";
      let lv = var_level.(v) in
      if lv >= !prev then corrupt "level table not deepest-first";
      prev := lv;
      bucket_level.(i) <- lv;
      starts.(i + 1) <- starts.(i) + c)
    levels;
  if starts.(nlevels) <> nnodes then corrupt "level counts do not sum to nnodes";
  if root < 0 || root >= nnodes + 2 then corrupt "root handle out of range";
  if (nnodes = 0) <> (root < 2) then corrupt "root inconsistent with node count";
  let base = lt_off + (2 * nlevels) in
  for i = 0 to nlevels - 1 do
    for p = starts.(i) to starts.(i + 1) - 1 do
      let h = data.{base + (2 * p)} and l = data.{base + (2 * p) + 1} in
      let check_child c =
        if c < 0 || c >= nnodes + 2 then corrupt "child handle out of range";
        if c >= 2 && c - 2 >= starts.(i) then
          corrupt "child not at a strictly deeper level"
      in
      check_child h;
      check_child l;
      if h = l then corrupt "redundant node (hi = lo)";
      if p > starts.(i) then begin
        let ph = data.{base + (2 * (p - 1))}
        and pl = data.{base + (2 * (p - 1)) + 1} in
        if ph > h || (ph = h && pl >= l) then corrupt "level not sorted"
      end
    done
  done;
  {
    nvars;
    order;
    levels;
    bucket_level;
    starts;
    data;
    base;
    nnodes;
    root;
    path;
    bytes = body_len + trailer_bytes;
  }

let of_serialized path s =
  write path s;
  open_map path

(* --- accessors -------------------------------------------------------- *)

let nvars t = t.nvars
let order t = Array.copy t.order
let node_count t = t.nnodes
let root t = t.root
let levels t = Array.copy t.levels
let path t = t.path
let file_bytes t = t.bytes

let check_handle t h =
  if h < 2 || h >= t.nnodes + 2 then
    invalid_arg "Store.Level_file: not a decision-node handle"

let hi t h =
  check_handle t h;
  t.data.{t.base + (2 * (h - 2))}

let lo t h =
  check_handle t h;
  t.data.{t.base + (2 * (h - 2)) + 1}

(* bucket containing node position [pos], by binary search over starts *)
let bucket_of_pos t pos =
  let lo = ref 0 and hi = ref (Array.length t.bucket_level - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.starts.(mid) <= pos then lo := mid else hi := mid - 1
  done;
  !lo

let level_of_handle t h =
  if h < 0 || h >= t.nnodes + 2 then
    invalid_arg "Store.Level_file: handle out of range";
  if h < 2 then t.nvars else t.bucket_level.(bucket_of_pos t (h - 2))

let var_of_handle t h =
  check_handle t h;
  t.order.(t.bucket_level.(bucket_of_pos t (h - 2)))

let to_serialized t =
  let s_nodes = Array.make t.nnodes (0, 0, 0) in
  Array.iteri
    (fun i (v, _) ->
      for p = t.starts.(i) to t.starts.(i + 1) - 1 do
        s_nodes.(p) <-
          (v, t.data.{t.base + (2 * p)}, t.data.{t.base + (2 * p) + 1})
      done)
    t.levels;
  {
    Bdd.s_nvars = t.nvars;
    s_order = Array.copy t.order;
    s_nodes;
    s_roots = [| t.root |];
  }

let equal a b =
  a.nvars = b.nvars && a.nnodes = b.nnodes && a.root = b.root
  && a.order = b.order && a.levels = b.levels
  &&
  let rec go i =
    i >= 2 * a.nnodes
    || (a.data.{a.base + i} = b.data.{b.base + i} && go (i + 1))
  in
  go 0
