(* Bounded-memory spillable priority queue (see the mli). *)

type run = {
  r_path : string;
  r_ic : in_channel;
  mutable r_left : int; (* elements after the head still unread *)
  r_head : int array; (* the run's smallest unconsumed tuple *)
  mutable r_live : bool; (* false once drained (file already removed) *)
}

type t = {
  arity : int;
  bound : int;
  dir : string;
  heap : int array; (* arity-strided tuples, [0, n) live *)
  mutable n : int;
  mutable runs : run list;
  mutable nruns : int;
  mutable run_bytes : int;
  mutable closed : bool;
  scratch : int array; (* one tuple, for heap swaps *)
}

let default_bound = 1 lsl 18

let create ?(mem_bound = default_bound) ~dir ~arity () =
  if arity <= 0 then invalid_arg "Store.Pq.create: arity must be positive";
  let bound = max 64 mem_bound in
  {
    arity;
    bound;
    dir;
    heap = Array.make (bound * arity) 0;
    n = 0;
    runs = [];
    nruns = 0;
    run_bytes = 0;
    closed = false;
    scratch = Array.make arity 0;
  }

(* lexicographic compare of two strided tuples *)
let cmp_at h1 o1 h2 o2 arity =
  let rec go k =
    if k = arity then 0
    else
      let a = Array.unsafe_get h1 (o1 + k)
      and b = Array.unsafe_get h2 (o2 + k) in
      if a < b then -1 else if a > b then 1 else go (k + 1)
  in
  go 0

let swap t i j =
  let a = t.arity in
  Array.blit t.heap (i * a) t.scratch 0 a;
  Array.blit t.heap (j * a) t.heap (i * a) a;
  Array.blit t.scratch 0 t.heap (j * a) a

let sift_up t i =
  let a = t.arity in
  let i = ref i in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    cmp_at t.heap (!i * a) t.heap (p * a) a < 0
  do
    let p = (!i - 1) / 2 in
    swap t !i p;
    i := p
  done

let sift_down t i =
  let a = t.arity in
  let i = ref i and break = ref false in
  while not !break do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let s = ref !i in
    if l < t.n && cmp_at t.heap (l * a) t.heap (!s * a) a < 0 then s := l;
    if r < t.n && cmp_at t.heap (r * a) t.heap (!s * a) a < 0 then s := r;
    if !s = !i then break := true
    else begin
      swap t !i !s;
      i := !s
    end
  done

(* --- run files: count word, then tuples as unsigned le64 words -------- *)

let le64 buf n =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xFF))
  done

let read_word ic =
  let n = ref 0 in
  for i = 0 to 7 do
    n := !n lor (input_byte ic lsl (8 * i))
  done;
  !n

let read_tuple ic dst arity =
  for k = 0 to arity - 1 do
    dst.(k) <- read_word ic
  done

(* Sort the heap contents and write them out as one run, emptying the
   heap.  Sorting an index array keeps the tuple moves to one final
   permutation pass. *)
let spill t =
  let a = t.arity and n = t.n in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun i j -> cmp_at t.heap (i * a) t.heap (j * a) a) idx;
  let path = Filename.temp_file ~temp_dir:t.dir "pqrun" ".run" in
  let oc = open_out_bin path in
  (try
     let buf = Buffer.create 65536 in
     le64 buf n;
     Array.iter
       (fun i ->
         for k = 0 to a - 1 do
           le64 buf t.heap.((i * a) + k)
         done;
         if Buffer.length buf > 60000 then begin
           Buffer.output_buffer oc buf;
           Buffer.clear buf
         end)
       idx;
     Buffer.output_buffer oc buf;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove path with Sys_error _ -> ());
     raise e);
  t.run_bytes <- t.run_bytes + (8 * ((n * a) + 1));
  t.nruns <- t.nruns + 1;
  t.n <- 0;
  let ic = open_in_bin path in
  let left = read_word ic in
  let head = Array.make a 0 in
  read_tuple ic head a;
  t.runs <- { r_path = path; r_ic = ic; r_left = left - 1; r_head = head; r_live = true } :: t.runs

let push t tup =
  if t.closed then invalid_arg "Store.Pq.push: closed queue";
  if Array.length tup <> t.arity then
    invalid_arg "Store.Pq.push: tuple arity mismatch";
  Array.iter
    (fun v -> if v < 0 then invalid_arg "Store.Pq.push: negative field")
    tup;
  if t.n >= t.bound then spill t;
  Array.blit tup 0 t.heap (t.n * t.arity) t.arity;
  t.n <- t.n + 1;
  sift_up t (t.n - 1)

let drop_run t r =
  r.r_live <- false;
  close_in_noerr r.r_ic;
  (try Sys.remove r.r_path with Sys_error _ -> ());
  t.runs <- List.filter (fun x -> x.r_live) t.runs

(* The run (if any) whose head is the global minimum, and whether it beats
   the heap top. *)
let min_source t =
  let best = ref None in
  List.iter
    (fun r ->
      match !best with
      | None -> best := Some r
      | Some b -> if cmp_at r.r_head 0 b.r_head 0 t.arity < 0 then best := Some r)
    t.runs;
  match !best with
  | None -> `Heap
  | Some r ->
      if t.n = 0 || cmp_at r.r_head 0 t.heap 0 t.arity <= 0 then `Run r
      else `Heap

let peek t dst =
  if t.n = 0 && t.runs = [] then false
  else begin
    (match min_source t with
    | `Heap -> Array.blit t.heap 0 dst 0 t.arity
    | `Run r -> Array.blit r.r_head 0 dst 0 t.arity);
    true
  end

let pop t dst =
  if t.n = 0 && t.runs = [] then false
  else begin
    (match min_source t with
    | `Heap ->
        Array.blit t.heap 0 dst 0 t.arity;
        t.n <- t.n - 1;
        if t.n > 0 then begin
          Array.blit t.heap (t.n * t.arity) t.heap 0 t.arity;
          sift_down t 0
        end
    | `Run r ->
        Array.blit r.r_head 0 dst 0 t.arity;
        if r.r_left > 0 then begin
          read_tuple r.r_ic r.r_head t.arity;
          r.r_left <- r.r_left - 1
        end
        else drop_run t r);
    true
  end

let length t =
  List.fold_left (fun acc r -> acc + r.r_left + 1) t.n t.runs

let runs_spilled t = t.nruns
let spilled_bytes t = t.run_bytes

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.n <- 0;
    List.iter
      (fun r ->
        close_in_noerr r.r_ic;
        try Sys.remove r.r_path with Sys_error _ -> ())
      t.runs;
    t.runs <- []
  end
