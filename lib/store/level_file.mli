(** Levelized on-disk BDD files — the cold tier's node format.

    A level file holds one ROBDD in the canonical levelized layout the
    streaming operations consume and produce: a fixed header, the
    level-to-variable order, a level table (deepest level first), then the
    [(hi, lo)] node words grouped by level deepest-first — so children
    always precede parents — and finally the checksummed trailer of
    {!Resil.Checkpoint.write_stream} (truncation or bit-flips surface as
    {!Bdd.Corrupt} when the file is opened).

    {b Handles.}  Handle [0] is [ff], handle [1] is [tt], and the node at
    0-based position [j] in the node area is handle [j + 2] — the same
    convention as {!Bdd.serialized} indices.  A node's variable is implied
    by its level group and never stored per node.

    {b Canonical form.}  Within each level the nodes are sorted in strictly
    ascending [(hi, lo)] order.  Because child handles are themselves
    canonical, two level files over the same order are word-for-word equal
    iff they denote the same function — {!equal} is a flat compare, and a
    BDD demoted from the hot tier matches the same function produced by a
    streaming apply bit-for-bit.

    Files are opened with [Unix.map_file], so a cold BDD occupies address
    space but no OCaml heap; the OS pages node words in on demand. *)

type t

(** {1 Writing} *)

val write : string -> Bdd.serialized -> unit
(** [write path s] converts [s] — which must export exactly one root — to
    canonical levelized form and writes it atomically to [path].
    @raise Invalid_argument if [s.s_roots] has [<> 1] entry.
    @raise Bdd.Corrupt if [s] is malformed. *)

val of_serialized : string -> Bdd.serialized -> t
(** [write] followed by {!open_map} (which re-verifies the checksum —
    a free end-to-end check of the write path). *)

val save_stream :
  string ->
  nvars:int ->
  order:int array ->
  levels:(int * int) array ->
  nnodes:int ->
  root:int ->
  write_nodes:(emit:(Bytes.t -> int -> int -> unit) -> unit) ->
  unit
(** [save_stream path ... ~write_nodes] writes a level file whose node
    area is produced by [write_nodes] — the bounded-memory output path of
    the streaming reduce, which knows the level table and root only after
    its bottom-up pass and streams the node body from a temp file.
    [write_nodes ~emit] must emit exactly [2 * nnodes] little-endian
    64-bit words ([(hi, lo)] per node, deepest level first, each level
    sorted ascending); [levels] lists [(var, count)] deepest level
    first.  The caller guarantees canonical form — {!open_map} checks. *)

(** {1 Reading} *)

val open_map : string -> t
(** Verify the trailer checksum, memory-map the file, and validate the
    header and node structure (order permutation, level table deepest
    first, children strictly deeper and already emitted, per-level sort).
    @raise Bdd.Corrupt on any truncation, bit-flip, or structural lie. *)

val to_serialized : t -> Bdd.serialized
(** The inverse of {!write}: node handles map to serialized indices
    unchanged.  Materializes the node array in RAM — promotion back to
    the hot tier, not a streaming path. *)

(** {1 Accessors} *)

val nvars : t -> int
val order : t -> int array
(** The level-to-variable order (a copy). *)

val node_count : t -> int
(** Decision nodes in the file (terminals excluded). *)

val root : t -> int
(** Root handle; [0] or [1] when the function is constant. *)

val levels : t -> (int * int) array
(** [(var, count)] per non-empty level, deepest level first (a copy). *)

val hi : t -> int -> int
val lo : t -> int -> int
(** Children of a decision node handle.
    @raise Invalid_argument on a terminal or out-of-range handle. *)

val level_of_handle : t -> int -> int
(** Global level (position in the order) of a handle's variable;
    [nvars t] for the terminals [0] and [1]. *)

val var_of_handle : t -> int -> int
(** Variable tested by a decision node handle.
    @raise Invalid_argument on a terminal or out-of-range handle. *)

val equal : t -> t -> bool
(** Word-for-word structural equality — semantic equality for canonical
    files sharing a variable order. *)

val path : t -> string
(** The file backing this mapping. *)

val file_bytes : t -> int
(** Total on-disk size, trailer included. *)
