(** Append-only buffer of fixed-arity int tuples with a RAM bound.

    The streaming apply ({!module:Stream}) records per-level parent arcs
    and terminal arcs as it descends; reduce replays them bottom-up.
    Arrival order carries no meaning, so the buffer keeps the first
    [mem_bound] tuples in a flat int array and appends the overflow to a
    single temp file in [dir].  [iter] replays everything, file contents
    first, in unspecified order.  Fields must be non-negative. *)

type t

val create : ?mem_bound:int -> dir:string -> arity:int -> unit -> t
(** [create ~dir ~arity ()] makes an empty buffer.  [mem_bound] (default
    [1 lsl 18] tuples) caps the in-memory portion; overflow goes to one
    temp file under [dir]. *)

val push : t -> int array -> unit
(** Append a copy of the tuple.
    @raise Invalid_argument on a wrong length or a negative field. *)

val length : t -> int
(** Tuples stored so far. *)

val spilled_bytes : t -> int
(** Bytes written to the overflow file (monotone). *)

val iter : t -> (int array -> unit) -> unit
(** [iter b f] calls [f] once per stored tuple, reusing one scratch array
    across calls — [f] must not retain its argument.  The buffer is
    read-only during iteration ([push] mid-iteration is not allowed). *)

val close : t -> unit
(** Drop the buffer and remove the overflow file, if any.  Idempotent. *)
