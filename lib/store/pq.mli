(** Bounded-memory priority queue over fixed-arity int tuples.

    The workhorse of the levelized streaming operations ({!module:Stream}):
    apply pushes node-pair requests and pops them in (level, pair) order,
    reduce forwards child resolutions to parent arcs the same way.  The
    queue keeps at most [mem_bound] tuples in a flat int-array binary heap
    (no boxing, no per-element allocation); when the heap fills, its
    contents are sorted and written to a run file in [dir], and pops merge
    the heap with the open run heads.  RAM is therefore bounded by
    [mem_bound] tuples plus one head per run, regardless of how many
    tuples pass through — the external-memory priority queue of the Adiar
    algorithm family, sized for this repository.

    Tuples are ordered lexicographically over all fields.  Fields must be
    non-negative (they are written to run files as unsigned 64-bit
    words). *)

type t

val create : ?mem_bound:int -> dir:string -> arity:int -> unit -> t
(** [create ~dir ~arity ()] makes an empty queue of [arity]-field tuples
    spilling to fresh temp files under [dir].  [mem_bound] (default
    [1 lsl 18] tuples) caps the in-memory heap. *)

val push : t -> int array -> unit
(** [push q tup] inserts a copy of [tup] (length [arity], fields [>= 0]).
    @raise Invalid_argument on a wrong length or a negative field. *)

val pop : t -> int array -> bool
(** [pop q dst] moves the smallest tuple into [dst] (length [arity]) and
    returns [true], or returns [false] when the queue is empty. *)

val peek : t -> int array -> bool
(** Like {!pop} without removing: the smallest tuple, if any. *)

val length : t -> int
(** Tuples currently queued (heap + unread run elements). *)

val runs_spilled : t -> int
(** Run files written so far (monotone). *)

val spilled_bytes : t -> int
(** Bytes written to run files so far (monotone). *)

val close : t -> unit
(** Drop the heap and remove any run files.  The queue must not be used
    afterwards; calling [close] twice is harmless. *)
