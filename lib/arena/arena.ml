(* Refcounted segment registry over one shared manager (see the mli).

   One mutex guards everything: the handle and digest indexes, the
   catalog, every refcount and every counter.  Refcount traffic is a few
   dozen ns of critical section, so a single lock is simpler and cheaper
   than striping until the arena itself shows up in a profile — the hot
   path the arena exists to serve (kernel work on already-resolved
   nodes) never touches it.

   Reclamation is two-phase, deliberately: dropping the last reference
   removes the segment from the registry immediately (any later retain
   or view raises Not_found — a dead handle is never resurrected), but
   the nodes stay in the shared table until [reclaim] sweeps it at a
   quiescent point.  Splitting the phases is what makes release safe to
   call from any domain at any time: gc on a shared table requires
   quiescence, registry surgery does not. *)

type handle = int

type segment = {
  h : handle;
  name : string;
  digest : string;
  bytes : string;  (* canonical form; confirms digest hits exactly *)
  root : Bdd.t;
  mutable refcount : int;  (* 0 = dead, gone from every index *)
}

type t = {
  man : Bdd.man;
  lock : Mutex.t;
  cond : Condition.t;  (* signalled when an in-flight catalog key settles *)
  by_handle : (handle, segment) Hashtbl.t;
  by_digest : (string, segment list) Hashtbl.t;
  catalog : (string, (string * handle) list) Hashtbl.t;
  in_flight : (string, unit) Hashtbl.t;  (* catalog keys being computed *)
  mutable next : handle;
  (* counters (under lock; read via stats) *)
  mutable publishes : int;
  mutable published : int;
  mutable published_bytes : int;
  mutable hits : int;
  mutable attaches : int;
  mutable refs_total : int;
  mutable reclaimed : int;
  mutable reclaimed_bytes : int;
}

module M = struct
  open Obs

  let reg = Metrics.default
  let publishes = Metrics.counter reg "arena.publishes"
  let published = Metrics.counter reg "arena.published"
  let published_bytes = Metrics.counter reg "arena.published_bytes"
  let hits = Metrics.counter reg "arena.hits"
  let attaches = Metrics.counter reg "arena.attaches"
  let reclaimed = Metrics.counter reg "arena.reclaimed"
  let reclaimed_bytes = Metrics.counter reg "arena.reclaimed_bytes"
  let live_segments = Metrics.gauge reg "arena.live_segments"
  let live_refs = Metrics.gauge reg "arena.live_refs"
end

let rec_inc c n = if Obs.Metrics.recording () then Obs.Metrics.inc c n

(* call under t.lock *)
let sync_gauges t =
  if Obs.Metrics.recording () then begin
    Obs.Metrics.set M.live_segments (Hashtbl.length t.by_handle);
    Obs.Metrics.set M.live_refs t.refs_total
  end

let create ?nvars ?table_capacity () =
  let man = Bdd.create ?nvars ~shared:true () in
  (* the arena manager participates in observability and chaos exactly
     like session managers do *)
  if Obs.Kernel.observing () then Obs.Kernel.attach man;
  if Resil.Fault.enabled () then Resil.Fault.attach man;
  (match table_capacity with
  | Some cap -> Bdd.set_table_capacity man (Some cap)
  | None -> ());
  {
    man;
    lock = Mutex.create ();
    cond = Condition.create ();
    by_handle = Hashtbl.create 64;
    by_digest = Hashtbl.create 64;
    catalog = Hashtbl.create 16;
    in_flight = Hashtbl.create 4;
    next = 1;
    publishes = 0;
    published = 0;
    published_bytes = 0;
    hits = 0;
    attaches = 0;
    refs_total = 0;
    reclaimed = 0;
    reclaimed_bytes = 0;
  }

let man t = t.man

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find_live_locked t h =
  match Hashtbl.find_opt t.by_handle h with
  | Some seg -> seg
  | None -> raise Not_found

let publish_serialized t ?(name = "") bytes =
  (* decode outside the lock: malformed bytes must not poison the arena,
     and the import below may be the expensive part of a cold publish *)
  let s = Bdd.serialized_of_string bytes in
  let digest = Bdd.serialized_digest s in
  let reuse =
    locked t (fun () ->
        t.publishes <- t.publishes + 1;
        rec_inc M.publishes 1;
        match
          List.find_opt
            (fun seg -> seg.bytes = bytes)
            (Option.value ~default:[] (Hashtbl.find_opt t.by_digest digest))
        with
        | Some seg ->
            seg.refcount <- seg.refcount + 1;
            t.refs_total <- t.refs_total + 1;
            t.hits <- t.hits + 1;
            rec_inc M.hits 1;
            sync_gauges t;
            Some seg.h
        | None -> None)
  in
  match reuse with
  | Some h -> h
  | None ->
      (* import outside the lock: concurrent publishes of different
         content may both build nodes (the shared table is made for
         that); only the registry insert re-checks for a racing twin *)
      let root = Bdd.import t.man s in
      locked t (fun () ->
          match
            List.find_opt
              (fun seg -> seg.bytes = bytes)
              (Option.value ~default:[] (Hashtbl.find_opt t.by_digest digest))
          with
          | Some seg ->
              (* a twin won the race: fold into it (its root is the very
                 same hash-consed node, so nothing leaks) *)
              seg.refcount <- seg.refcount + 1;
              t.refs_total <- t.refs_total + 1;
              t.hits <- t.hits + 1;
              rec_inc M.hits 1;
              sync_gauges t;
              seg.h
          | None ->
              let h = t.next in
              t.next <- h + 1;
              let seg = { h; name; digest; bytes; root; refcount = 1 } in
              Hashtbl.replace t.by_handle h seg;
              Hashtbl.replace t.by_digest digest
                (seg
                :: Option.value ~default:[] (Hashtbl.find_opt t.by_digest digest));
              t.published <- t.published + 1;
              t.published_bytes <- t.published_bytes + String.length bytes;
              t.refs_total <- t.refs_total + 1;
              rec_inc M.published 1;
              rec_inc M.published_bytes (String.length bytes);
              sync_gauges t;
              h)

let publish t ?name ~src f =
  publish_serialized t ?name (Bdd.serialized_to_string (Bdd.export src f))

let publish_root t ?name f =
  publish_serialized t ?name (Bdd.serialized_to_string (Bdd.export t.man f))

let view t h =
  locked t (fun () ->
      let seg = find_live_locked t h in
      t.attaches <- t.attaches + 1;
      rec_inc M.attaches 1;
      seg.root)

let retain t h =
  locked t (fun () ->
      let seg = find_live_locked t h in
      seg.refcount <- seg.refcount + 1;
      t.refs_total <- t.refs_total + 1;
      sync_gauges t)

let release t h =
  locked t (fun () ->
      let seg = find_live_locked t h in
      if seg.refcount <= 0 then invalid_arg "Arena.release: refcount underflow";
      seg.refcount <- seg.refcount - 1;
      t.refs_total <- t.refs_total - 1;
      if seg.refcount = 0 then begin
        Hashtbl.remove t.by_handle h;
        (match Hashtbl.find_opt t.by_digest seg.digest with
        | Some segs -> (
            match List.filter (fun s -> s.h <> h) segs with
            | [] -> Hashtbl.remove t.by_digest seg.digest
            | rest -> Hashtbl.replace t.by_digest seg.digest rest)
        | None -> ());
        t.reclaimed <- t.reclaimed + 1;
        t.reclaimed_bytes <- t.reclaimed_bytes + String.length seg.bytes;
        rec_inc M.reclaimed 1;
        rec_inc M.reclaimed_bytes (String.length seg.bytes)
      end;
      sync_gauges t)

let refs t h =
  locked t (fun () ->
      Option.map (fun seg -> seg.refcount) (Hashtbl.find_opt t.by_handle h))

let name t h =
  locked t (fun () ->
      Option.map (fun seg -> seg.name) (Hashtbl.find_opt t.by_handle h))

let live_segments t = locked t (fun () -> Hashtbl.length t.by_handle)
let live_refs t = locked t (fun () -> t.refs_total)

let reclaim t ?(roots = []) () =
  let live =
    locked t (fun () ->
        Hashtbl.fold (fun _ seg acc -> seg.root :: acc) t.by_handle [])
  in
  Bdd.gc t.man ~roots:(live @ roots)

(* --- catalog ----------------------------------------------------------- *)

let catalog_put t ~key entries =
  let pinned =
    locked t (fun () ->
        Hashtbl.remove t.in_flight key;
        Condition.broadcast t.cond;
        if Hashtbl.mem t.catalog key then false
        else begin
          List.iter
            (fun (_, h) ->
              let seg = find_live_locked t h in
              seg.refcount <- seg.refcount + 1;
              t.refs_total <- t.refs_total + 1)
            entries;
          Hashtbl.replace t.catalog key entries;
          sync_gauges t;
          true
        end)
  in
  ignore pinned

let catalog_abort t ~key =
  locked t (fun () ->
      Hashtbl.remove t.in_flight key;
      Condition.broadcast t.cond)

let catalog_claim t ~key =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let rec settle () =
        match Hashtbl.find_opt t.catalog key with
        | Some entries ->
            t.hits <- t.hits + List.length entries;
            rec_inc M.hits (List.length entries);
            `Found entries
        | None ->
            if Hashtbl.mem t.in_flight key then begin
              (* another publisher is computing this key: wait for it to
                 settle rather than duplicating the work — under a shared
                 manager a racing duplicate is not even byte-dedupable,
                 because the variable order may grow between the two
                 publishes *)
              Condition.wait t.cond t.lock;
              settle ()
            end
            else begin
              Hashtbl.replace t.in_flight key ();
              `Claimed
            end
      in
      settle ())

let catalog_find t ~key =
  locked t (fun () ->
      match Hashtbl.find_opt t.catalog key with
      | None -> None
      | Some entries ->
          t.hits <- t.hits + List.length entries;
          rec_inc M.hits (List.length entries);
          Some entries)

let stats t =
  locked t (fun () ->
      [
        ("arena.publishes", t.publishes);
        ("arena.published", t.published);
        ("arena.published_bytes", t.published_bytes);
        ("arena.hits", t.hits);
        ("arena.attaches", t.attaches);
        ("arena.live_segments", Hashtbl.length t.by_handle);
        ("arena.live_refs", t.refs_total);
        ("arena.reclaimed", t.reclaimed);
        ("arena.reclaimed_bytes", t.reclaimed_bytes);
      ])
