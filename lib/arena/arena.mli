(** Process-wide read-only node arena.

    The arena owns one {e shared} kernel manager (the PR 7 striped
    publish-then-resolve unique table), so its nodes are readable from
    any worker domain concurrently.  Compiled BDDs are {e published}
    once into it as immutable segments with stable integer handles;
    sessions on any domain {e view} a handle zero-copy — the returned
    [Bdd.t] is the node in the shared table, never a per-session
    re-import — and layer their own request-local results on top by
    building further nodes in the same manager (their mutable overlay is
    their private handle table; the arena itself never changes under
    them).

    Ownership is refcount-based, ViewStore-style: [publish] hands the
    caller one reference, [retain]/[release] move ownership across
    sessions, and the segment is reclaimed from the registry when the
    last reference drops.  Node {e memory} is returned to the table
    later, by [reclaim], which requires quiescence (no concurrent kernel
    operations) — the registry-level reclaim itself is safe at any time.

    All registry and refcount state lives under one internal mutex, so
    every function here is domain-safe unless its doc says otherwise. *)

type t

type handle = int
(** Stable integer name of a published segment.  Handles are never
    reused within one arena. *)

val create : ?nvars:int -> ?table_capacity:int -> unit -> t
(** A fresh arena around a new shared manager.  [table_capacity] caps
    the shared unique table exactly as [Bdd.set_table_capacity] does. *)

val man : t -> Bdd.man
(** The shared manager.  Sessions backed by the arena run their
    request-local kernel work here; treat published nodes as read-only
    and never [Bdd.gc] this manager directly — use {!reclaim}. *)

val publish : t -> ?name:string -> src:Bdd.man -> Bdd.t -> handle
(** Export [f] from [src] and publish it.  Content-deduplicated: if a
    live segment with identical canonical bytes exists, its refcount is
    bumped and its handle returned (counted as a hit — the import was
    avoided).  Otherwise the bytes are imported once into the shared
    manager.  Either way the caller owns one reference. *)

val publish_serialized : t -> ?name:string -> string -> handle
(** [publish] from the canonical byte form ([Bdd.serialized_to_string]).
    @raise Bdd.Corrupt on malformed bytes. *)

val publish_root : t -> ?name:string -> Bdd.t -> handle
(** Publish a root that already lives in the arena's own manager (e.g. a
    session-overlay result worth sharing).  No node is copied; the
    export only computes the canonical bytes for dedup/accounting. *)

val view : t -> handle -> Bdd.t
(** Zero-copy resolution: the segment's root in the shared manager.
    Does not transfer ownership.  @raise Not_found if the handle was
    never published or already reclaimed. *)

val retain : t -> handle -> unit
(** Take one more reference.  @raise Not_found on a dead handle — a
    reclaimed segment is never resurrected. *)

val release : t -> handle -> unit
(** Drop one reference.  At zero the segment leaves the registry
    (counted in [arena.reclaimed]/[arena.reclaimed_bytes]); its nodes
    are swept by the next {!reclaim}.  @raise Not_found on a dead
    handle; @raise Invalid_argument on a double release. *)

val refs : t -> handle -> int option
(** Live reference count, [None] once reclaimed. *)

val name : t -> handle -> string option
(** The name given at publish time (possibly [""]), [None] once
    reclaimed. *)

val live_segments : t -> int
val live_refs : t -> int

val reclaim : t -> ?roots:Bdd.t list -> unit -> int
(** Sweep the shared table down to the live segments plus [roots] (any
    session-overlay state that must survive).  Returns the number of
    nodes freed.  Requires quiescence: no kernel operation may run on
    {!man} concurrently. *)

(** {2 Catalog}

    A tiny content-addressed directory on top of segments, used by the
    serve layer to share compiled models: the first session to compile a
    model publishes its outputs and files them under the model's content
    key; later sessions find them and attach zero-copy instead of
    recompiling.  The catalog holds one pinning reference per filed
    handle for the arena's lifetime. *)

val catalog_put : t -> key:string -> (string * handle) list -> unit
(** File named handles under [key] (first writer wins; a concurrent
    duplicate put releases nothing and is ignored).  Retains each
    handle, and settles any in-flight {!catalog_claim} on [key]. *)

val catalog_find : t -> key:string -> (string * handle) list option
(** Look [key] up.  A hit counts one avoided import per filed handle. *)

val catalog_claim : t -> key:string -> [ `Found of (string * handle) list | `Claimed ]
(** Single-flight lookup: [`Found] is a {!catalog_find} hit; [`Claimed]
    means the caller now owns the compute for [key] and must settle it
    with {!catalog_put} (success) or {!catalog_abort} (failure).  A
    claim racing an in-flight compute blocks until the owner settles,
    then re-probes — so N sessions compiling the same model do the work
    exactly once, instead of racing to publish N un-dedupable copies
    (under a shared manager the variable order can grow between two
    publishes of the same function, changing its canonical bytes). *)

val catalog_abort : t -> key:string -> unit
(** Release a [`Claimed] key without filing anything; a blocked claimant
    (if any) wakes up and takes over the compute. *)

val stats : t -> (string * int) list
(** Counters, all prefixed [arena.]: [publishes] (calls), [published]
    (unique segments created), [published_bytes], [hits] (imports
    avoided: publish dedup + catalog finds), [attaches] (zero-copy
    views), [live_segments], [live_refs], [reclaimed],
    [reclaimed_bytes].  Invariants: [published <= publishes],
    [reclaimed <= published], [reclaimed_bytes <= published_bytes],
    [live_segments = published - reclaimed].  The same counters feed the
    [Obs.Metrics] registry when recording. *)
