(* Mutex-guarded work-stealing deque.

   The owner pushes and pops at the bottom (newest first, cache-warm);
   thieves steal from the top (oldest first), the classic work-stealing
   discipline.  Units of work in this codebase are coarse — whole
   benchmark trials, reachability runs, or forked cofactor subtrees above
   the parallel-apply cutoff — so one uncontended lock per operation is
   noise next to the work itself and buys us none of the subtlety of a
   Chase–Lev buffer.  [steal] pays O(n) to reach the oldest element; n is
   bounded by the items dealt to one worker.

   This lives in lib/bdd (rather than lib/mt, where it started) so the
   kernel's own fork/join pool ({!Tpool}) can use it; {!Mt.Deque} re-exports
   it unchanged for the job runner. *)

type 'a t = { lock : Mutex.t; mutable items : 'a list (* head = bottom *) }

let create () = { lock = Mutex.create (); items = [] }

let locked d f =
  Mutex.lock d.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock d.lock) f

let push d x = locked d (fun () -> d.items <- x :: d.items)

let pop d =
  locked d (fun () ->
      match d.items with
      | [] -> None
      | x :: rest ->
          d.items <- rest;
          Some x)

let steal d =
  locked d (fun () ->
      match List.rev d.items with
      | [] -> None
      | oldest :: rest ->
          d.items <- List.rev rest;
          Some oldest)
