(** Reduced Ordered Binary Decision Diagrams.

    A from-scratch ROBDD package in the style of CUDD [Somenzi 98], built as
    the substrate for the DAC'98 approximation and decomposition algorithms.
    Nodes are hash-consed per manager, so two BDDs built in the same manager
    represent the same function if and only if they are physically equal.

    Unlike CUDD this package does not use complement arcs: every node denotes
    a positive function.  This removes the complementation-parity
    restrictions of the paper's Section 2.1.3 at the cost of an O(|f|)
    negation (see DESIGN.md).

    All operations take the manager explicitly.  Mixing BDDs from different
    managers is a programming error and is not detected. *)

type man
(** A BDD manager: unique table, operation caches, and the variable order. *)

type t
(** A BDD rooted at some node of a manager. *)

(** The shape of a BDD root, for algorithms that traverse the DAG. *)
type view =
  | False
  | True
  | Node of { var : int; hi : t; lo : t }
      (** [Node {var; hi; lo}] denotes [var·hi + var'·lo]; [hi] and [lo] are
          distinct and their top variables lie strictly below [var] in the
          order. *)

(** {1 Managers and variables} *)

val create : ?nvars:int -> ?shared:bool -> unit -> man
(** [create ()] returns a fresh manager.  [nvars] pre-declares that many
    variables (they can also be added on demand with {!ithvar}).

    [~shared:true] arms the manager for concurrent use from several
    domains (DESIGN.md §Parallel kernel): the unique table is striped
    with per-stripe insert locks, probes stay lock-free, and the lossy
    operation caches tolerate races (they may lose entries, never return
    a wrong one).  Hash-consing canonicity — physical equality iff
    functional equality — holds across domains.  The default private
    manager skips all locking and must stay confined to one domain at a
    time.  {!gc}, {!reorder}, {!clear_caches} and {!set_cache_limit}
    require quiescence even on a shared manager: no concurrent operation
    may be running during the call.

    The first [create] of the process also tunes the OCaml GC for BDD
    workloads (larger minor heap, higher [space_overhead]; see DESIGN.md
    §Kernel).  Existing settings are never lowered; set the environment
    variable [BDD_GC_TUNE=0] to disable, or call [Gc.set] afterwards to
    override. *)

val is_shared : man -> bool
(** Whether the manager was created with [~shared:true]. *)

val nvars : man -> int
(** Number of declared variables. *)

val new_var : man -> t
(** Declare a fresh variable at the bottom of the order and return its
    positive literal. *)

val ithvar : man -> int -> t
(** [ithvar man i] is the positive literal of variable [i], declaring
    variables [nvars man .. i] if needed. *)

val nithvar : man -> int -> t
(** Negative literal of variable [i]. *)

val level_of_var : man -> int -> int
(** Current position of a variable in the order (0 = top). *)

val var_at_level : man -> int -> int
(** Inverse of {!level_of_var}. *)

val order : man -> int array
(** [order man] is the current order as a level-to-variable array (a copy). *)

(** {1 Structure} *)

val tt : man -> t
val ff : man -> t

val id : t -> int
(** Unique id of the root node within its manager.  [ff] has id 0, [tt] id
    1.  Ids are stable for the lifetime of the manager (they survive
    {!gc} but reordering creates new nodes with new ids). *)

val view : t -> view
val equal : t -> t -> bool

val is_const : t -> bool
val is_true : t -> bool
val is_false : t -> bool

val topvar : t -> int
(** Top variable of a non-constant BDD.  @raise Invalid_argument on
    constants. *)

val high : t -> t
(** Then-child. @raise Invalid_argument on constants. *)

val low : t -> t
(** Else-child. @raise Invalid_argument on constants. *)

val mk : man -> var:int -> hi:t -> lo:t -> t
(** Checked hash-consed constructor: returns the node [var·hi + var'·lo].
    Returns [hi] when [hi == lo].  @raise Invalid_argument if the top
    variable of [hi] or [lo] is not strictly below [var] in the order. *)

(** {1 Boolean connectives} *)

val bnot : man -> t -> t
val band : man -> t -> t -> t
val bor : man -> t -> t -> t
val bxor : man -> t -> t -> t
val bnand : man -> t -> t -> t
val bnor : man -> t -> t -> t
val biff : man -> t -> t -> t
val bimp : man -> t -> t -> t
(** [bimp man f g] is [¬f ∨ g]. *)

val bdiff : man -> t -> t -> t
(** [bdiff man f g] is [f ∧ ¬g]. *)

val ite : man -> t -> t -> t -> t
(** [ite man f g h] is [f·g + f'·h]. *)

val conj : man -> t list -> t
(** Conjunction of a list (tt for []). *)

val disj : man -> t list -> t
(** Disjunction of a list (ff for []). *)

val leq : man -> t -> t -> bool
(** [leq man f g] tests functional containment [f ≤ g] (implication),
    without building the implication BDD. *)

(** {1 Parallel operations}

    Fork/join variants of the core recursions, executing on a {!Tpool.t}
    over a [~shared:true] manager.  Each forks the two cofactor branches
    onto the pool down to a depth cutoff of [log2(workers) + 4] and runs
    the plain sequential recursion (same caches, same unique table)
    below it, so results are {e bit-identical} to the sequential kernel:
    hash-consing canonicity means the schedule can only decide which
    domain publishes a node first, never which node represents a
    function.

    With a pool of size 1 these are exactly the sequential operations
    and work on any manager.  With a larger pool they
    @raise Invalid_argument unless the manager is shared. *)

val par_apply : Tpool.t -> man -> [ `And | `Or | `Xor ] -> t -> t -> t
(** Parallel {!band} / {!bor} / {!bxor}. *)

val par_ite : Tpool.t -> man -> t -> t -> t -> t
(** Parallel {!ite}. *)

val par_exist_and : Tpool.t -> man -> vars:t -> t -> t -> t
(** Parallel {!and_exists} (relational product), the workhorse of image
    computation. *)

type contention = {
  cas_retries : int;
      (** unique-table publish races lost: the re-probe under a stripe
          lock found the node another domain had just created *)
  stripe_waits : int;
      (** stripe-lock acquisitions that found the lock already held *)
  ut_locks : int;  (** total stripe-lock acquisitions on the insert path *)
  cache_races : int;
      (** computed-cache overwrites that re-stored the very same key —
          two domains solved the same subproblem concurrently *)
  cache_inserts : int;  (** total computed-cache stores *)
  cache_probes : int;  (** total computed-cache probes (hits + misses) *)
}
(** Contention counters of the parallel kernel, all cumulative and
    monotone.  [cache_races <= cache_inserts] and
    [stripe_waits <= ut_locks >= cas_retries] always hold; on a private
    manager everything except [cache_inserts] and [cache_probes] stays
    0.  Exported to metrics as the [kernel.*] counters by
    [Obs.Kernel.attach]. *)

val contention : man -> contention

val intersects : man -> t -> t -> bool
(** [intersects man f g] tests [f ∧ g ≠ 0] without building the
    conjunction (with early exit on the first satisfying path). *)

(** {1 Cofactors, composition, quantification} *)

val cofactor : man -> t -> var:int -> bool -> t
(** Shannon cofactor with respect to a literal. *)

val compose : man -> t -> var:int -> t -> t
(** [compose man f ~var g] substitutes [g] for [var] in [f]. *)

val vector_compose : man -> t -> (int -> t option) -> t
(** Simultaneous substitution: every variable [v] with [subst v = Some g]
    is replaced by [g] in one pass. *)

val cube : man -> int list -> t
(** Positive cube (conjunction) of a set of variables. *)

val cube_of_literals : man -> (int * bool) list -> t
(** Cube of literals: [(v, true)] contributes [v], [(v, false)] [v']. *)

val exists : man -> vars:t -> t -> t
(** [exists man ~vars f] existentially quantifies the variables of the
    positive cube [vars] out of [f]. *)

val forall : man -> vars:t -> t -> t

val and_exists : man -> vars:t -> t -> t -> t
(** Relational product: [∃ vars. f ∧ g] without building [f ∧ g]. *)

val constrain : man -> t -> t -> t
(** Coudert–Madre generalized cofactor ("constrain"): [constrain man f c]
    agrees with [f] on [c] and satisfies
    [f ∧ c = c ∧ constrain man f c].  [c] must not be [ff]. *)

val restrict : man -> t -> t -> t
(** Coudert–Madre sibling-substitution minimization ("restrict"):
    [restrict man f c] agrees with [f] wherever [c] holds and is
    heuristically small.  [c] must not be [ff]. *)

val squeeze : man -> lower:t -> upper:t -> t
(** Interval minimization: returns some [g] with [lower ≤ g ≤ upper],
    heuristically small ([lower ≤ upper] required). *)

val permute : man -> t -> (int -> int) -> t
(** [permute man f p] renames every variable [v] of [f] to [p v].  The
    renaming must be injective on the support of [f]. *)

(** {1 Counting and analysis} *)

val size : t -> int
(** Number of internal (non-constant) nodes of the DAG, as in the paper's
    [|f|]. *)

val shared_size : t list -> int
(** Internal nodes of the union of the DAGs. *)

val weight : man -> t -> float
(** Fraction of variable assignments (over all declared variables) that
    satisfy [f]; in [0, 1].  Cached per node. *)

val count_minterms : man -> t -> nvars:int -> float
(** The paper's [||f||]: number of minterms of [f] viewed as a function of
    [nvars] variables. *)

val density : man -> t -> nvars:int -> float
(** [||f|| / |f|], the paper's δ(f).  Infinite for [tt], 0 for [ff]. *)

val count_paths : man -> t -> float
(** Number of paths from the root to either constant. *)

val support : man -> t -> int list
(** Variables [f] depends on, sorted by current level. *)

val support_cube : man -> t -> t
(** Support as a positive cube. *)

val eval : man -> t -> (int -> bool) -> bool
(** Evaluate under an assignment. *)

val any_sat : man -> t -> (int * bool) list
(** One satisfying path as a list of literals.  @raise Not_found on [ff]. *)

val iter_sat : man -> ?limit:int -> t -> ((int * bool) list -> unit) -> unit
(** Iterate over satisfying paths (cubes), at most [limit] of them. *)

val iter_nodes : (t -> unit) -> t -> unit
(** Apply a function to every internal node of the DAG, once each,
    children before parents. *)

val nodes : t -> t list
(** All internal nodes, children before parents. *)

val fold_nodes : ('a -> t -> 'a) -> 'a -> t -> 'a

(** {1 Manager maintenance} *)

val clear_caches : man -> unit
(** Drop all operation caches (kept results remain valid). *)

val gc : man -> roots:t list -> int
(** Remove from the unique table every node not reachable from [roots] and
    clear the caches.  Returns the number of nodes collected.  BDDs other
    than (subgraphs of) [roots] must not be used afterwards. *)

val unique_size : man -> int
(** Number of live internal nodes in the unique table. *)

exception Node_limit
(** Raised by any node-creating operation once the unique table holds
    {!set_node_limit} nodes — the analogue of CUDD running out of memory.
    The manager stays consistent: collect garbage and either raise the
    limit or abandon the computation. *)

val set_node_limit : man -> int option -> unit
(** Install or clear the hard ceiling on live nodes. *)

exception Table_full
(** Raised by a node-creating operation when the insert would push a
    unique-table stripe past 2/3 load and {!set_table_capacity} forbids
    doubling it.  Refusing the insert at the load-factor threshold is
    what keeps the open-addressed probe loop away from the ~100%-full
    regime where it could spin without finding a free slot.  The manager
    stays consistent: raise the ceiling (or clear it) and retry, or
    abandon the computation.  Each refusal is counted in the [ut_full]
    key of {!stats} and surfaced as the [kernel.ut_full] metric. *)

val set_table_capacity : man -> int option -> unit
(** Install or clear a hard ceiling on unique-table *slots* (summed over
    stripes; the ceiling is apportioned per stripe, so a striped shared
    manager may refuse slightly before the exact total).  By default the
    table grows without bound.  With a ceiling installed, an insert that
    would require growing a stripe past its share raises {!Table_full}
    instead of growing. *)

val table_capacity : man -> int option
(** The ceiling installed by {!set_table_capacity}, if any. *)

val ut_full_hits : man -> int
(** Times {!Table_full} has been raised by this manager. *)

val set_cache_limit : man -> int -> unit
(** Capacity bound on each computed cache (default 2M entries).  The
    caches are lossy direct-mapped arrays in the style of CUDD's computed
    table: a colliding insert overwrites, so memory is hard-bounded and a
    lost entry only costs recomputation.  Caches start small and double as
    traffic warrants, never past the largest power of two within the
    limit; lowering the limit shrinks them immediately (dropping their
    contents — results already returned stay valid). *)

val node_limit : man -> int option

val set_tick : man -> (unit -> unit) option -> unit
(** Install (or clear) a hook invoked from inside node creation every few
    hundred nodes made.  The hook may raise to abandon a runaway
    computation cooperatively — the manager stays consistent, exactly as
    with {!Node_limit} — which is how {!module:Mt}'s runner enforces
    per-job deadlines without being able to kill a domain. *)

val stats : man -> (string * int) list
(** Internal counters, for logging.  Keys: [nodes_made], [unique_size],
    [peak_unique], [cache_hits], [cache_misses] (cumulative over every
    computed cache; monotone within a manager's lifetime), [ite_cache] and
    [op_cache] (occupied slots), [n_vars], [unique_capacity] (slots summed
    over the unique-table stripes), [cache_entries] and [cache_capacity] (occupied
    and total slots summed over all computed caches — [cache_entries]
    never exceeds [cache_capacity], which {!set_cache_limit} bounds),
    [cache_overwrites] (computed-cache inserts that evicted a prior
    entry), [ut_grows] (unique-table stripe doublings), [gc_runs] and
    [gc_collected] (cumulative over {!gc} calls), [node_limit_hits]
    (times {!Node_limit} was raised), the tiered-store trio
    [hot_nodes], [cold_nodes], [spilled_bytes] (all 0 unless a store
    registered itself with {!set_store_stats}), and the parallel-kernel
    contention counters [cas_retries], [stripe_waits], [ut_locks],
    [cache_races], [cache_inserts] (see {!contention}), [ut_full]
    (times {!Table_full} was raised), and the chain-reduction pair
    [chain_folds], [chain_mk] (0 unless a compressed-representation
    manager registered itself with {!set_chain_stats}). *)

val set_store_stats : man -> (unit -> int * int * int) option -> unit
(** Install (or clear) the provider of the [hot_nodes], [cold_nodes] and
    [spilled_bytes] entries of {!stats}.  [Store.Tiered.create]
    (lib/store) registers its manager here; with no provider installed
    the three keys read 0.  The callback must not call back into this
    manager. *)

val set_chain_stats : man -> (unit -> int * int) option -> unit
(** Install (or clear) the provider of the [chain_folds] and [chain_mk]
    entries of {!stats}: [(folds, mk_calls)] from a chain-reduced
    decision-diagram manager ([Dd], lib/dd) working alongside this one.
    With no provider installed both keys read 0.  The callback must not
    call back into this manager. *)

val chain_stats : man -> int * int
(** The provider's current [(chain_folds, chain_mk)], or [(0, 0)]. *)

(** {1 Observation}

    Low-frequency structural events, for metrics and tracing.  The hook
    fires only on the rare paths (table growth, cache resize, {!gc},
    {!Node_limit}) plus a progress beat every few hundred fresh nodes;
    with no observer installed the cost on the node-creation path is one
    branch. *)

type event =
  | Unique_grow of { capacity : int; live : int }
      (** The unique table doubled to [capacity] slots. *)
  | Cache_resize of { cache : string; capacity : int }
      (** The named computed cache ("ite", "op", …, "weight") grew. *)
  | Gc of { collected : int; live : int }  (** A {!gc} finished. *)
  | Limit_hit of { limit : int }
      (** {!Node_limit} is about to be raised. *)
  | Progress of { nodes_made : int; unique_size : int }
      (** Periodic beat from node creation (same cadence as the
          {!set_tick} hook). *)

val set_observer : man -> (event -> unit) option -> unit
(** Install (or clear) the event hook.  Called synchronously from inside
    kernel operations: it must not call back into this manager, and
    should return quickly.  [Progress] observers run before the
    {!set_tick} hook of the same beat (which may raise). *)

val set_fault_hook : man -> (unit -> unit) option -> unit
(** Install (or clear) a fault-injection hook for chaos testing (see
    [Resil.Fault]).  The hook fires only on rare maintenance paths — the
    node-creation beat (same cadence as {!set_tick}), computed-cache
    growth, and {!gc} entry — so with no hook installed the cost is one
    branch on paths already off the hot loop.  The hook may raise (a
    forced {!Node_limit}, a simulated abort) or wipe the caches with
    {!clear_caches}; either leaves the manager consistent, exactly as the
    tick hook does.  Production code never installs one. *)

(** {1 Serialization and cross-manager transfer}

    A BDD (or a list of BDDs sharing one DAG) can be exported to a compact
    topologically-sorted array form, moved between managers — including
    managers owned by other domains, or with a different variable order —
    and saved to or loaded from disk for checkpointing.  Node [i] of
    {!serialized.s_nodes} may only reference constants (indices 0 and 1)
    or earlier nodes (index [j + 2] is node [j]), so a valid value can
    always be rebuilt bottom-up in one pass. *)

type serialized = {
  s_nvars : int;  (** declared variables of the source manager *)
  s_order : int array;
      (** the source level-to-variable order (metadata: {!import} rebuilds
          under the {e destination} order) *)
  s_nodes : (int * int * int) array;
      (** [(var, hi, lo)] triples, children before parents; indices 0 and 1
          are the [ff] and [tt] constants, node [j] has index [j + 2] *)
  s_roots : int array;  (** indices of the exported roots *)
}

exception Corrupt of string
(** Raised by {!import}, {!import_list}, {!serialized_of_string} and
    {!load} on malformed input, with a human-readable reason.  Any prefix
    of work already done stays in the destination manager but no invalid
    node is ever created. *)

val export : man -> t -> serialized
val export_list : man -> t list -> serialized
(** [export_list man fs] serializes the shared DAG of [fs] once; the roots
    come back in the same order from {!import_list}. *)

val import : man -> serialized -> t
(** Rebuild an exported BDD inside [man] (a different manager is the
    point; the same manager merely returns the identical node).  Variables
    are identified by index and declared on demand.  When the destination
    variable order differs from the source's, the result is rebuilt
    correctly under the destination order (at ITE cost for the reordered
    region).  @raise Corrupt on malformed input or a root count other than
    one. *)

val import_list : man -> serialized -> t list

val serialized_to_string : serialized -> string
(** Compact binary encoding (magic + LEB128 varints). *)

val serialized_of_string : string -> serialized
(** @raise Corrupt on anything {!serialized_to_string} did not produce. *)

val serialized_digest : serialized -> string
(** Stable 16-hex-char content digest (FNV-1a 64) of the canonical byte
    encoding.  Cheap index key for registries of published BDDs; it is
    not collision-free, so exactness-critical consumers must confirm a
    hit against the full bytes. *)

val save : string -> serialized -> unit
(** Write the binary encoding to a file. *)

val load : string -> serialized
(** Read a file written by {!save}.  @raise Corrupt on malformed bytes. *)

val reorder : man -> order:int array -> roots:t list -> t list
(** [reorder man ~order ~roots] installs [order] (a level-to-variable
    permutation of length [nvars man]) as the new variable order, rebuilds
    [roots] under it and returns them, in order.  Every other BDD of the
    manager becomes invalid: this is the price of hash-consed immutable
    nodes (CUDD sifts in place; see DESIGN.md).  Sifting heuristics that
    choose a good [order] live in {!module:Reorder}. *)
