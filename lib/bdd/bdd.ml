type t = { uid : int; node : node }

and node =
  | Leaf of bool
  | N of { var : int; hi : t; lo : t }

type view =
  | False
  | True
  | Node of { var : int; hi : t; lo : t }

exception Node_limit

(* Instrumentation events (see the mli).  All fire on rare maintenance
   paths — growth, resize, collection, limits, or one progress beat every
   few hundred fresh nodes — never per probe, so an installed observer
   costs nothing measurable and an absent one is a single branch. *)
type event =
  | Unique_grow of { capacity : int; live : int }
  | Cache_resize of { cache : string; capacity : int }
  | Gc of { collected : int; live : int }
  | Limit_hit of { limit : int }
  | Progress of { nodes_made : int; unique_size : int }

(* ------------------------------------------------------------------ *)
(* Packed hash tables (DESIGN.md §Kernel)                             *)
(* ------------------------------------------------------------------ *)

(* Every table on the hot path is open-addressed over parallel unboxed
   [int array]s keyed by node uids, in the style of CUDD's unique and
   computed tables: a probe mixes three machine ints, compares three
   machine ints, and allocates nothing.  The polymorphic [Hashtbl]s they
   replace boxed a fresh tuple key per probe and ran generic structural
   hashing on it — measured at ~6 minor-heap words per probe by
   bench/micro.exe, against 0 for these tables. *)

(* Multiplicative mixing hash over three unboxed ints (Murmur-style
   finalizer; constants fit OCaml's 63-bit int).  Callers mask the result
   to index a power-of-two table, which keeps it non-negative. *)
let[@inline] mix3 a b c =
  let h = a lxor (b * 0x9e3779b1) lxor (c * 0x85ebca77) in
  let h = (h lxor (h lsr 16)) * 0xc2b2ae35 in
  h lxor (h lsr 13)

(* --- unique table: (var, hi.uid, lo.uid) -> node, exact ------------- *)

(* The table is split into independent stripes, each a power-of-two
   open-addressed array of node pointers with its own lock.  Probes are
   lock-free on every path: they snapshot the stripe's array pointer once
   and scan without synchronization.  Inserts in a shared manager take
   the stripe lock and re-probe the current array before publishing
   (publish-then-resolve: losing a race to another domain costs one
   counted re-probe, never a duplicate node), so canonicity — one
   physical node per (var, hi, lo) — survives any interleaving.  A
   private manager has a single stripe and never touches the lock.

   Why node pointers instead of the packed parallel [int array]s this
   table used before: a slot must be publishable in one atomic step for
   concurrent readers.  A word-sized pointer store is such a step under
   the OCaml 5 memory model — plain racy reads return some
   previously-written value, never a torn one, and initialization safety
   guarantees the immutable record behind the pointer is fully visible.
   Four separate int stores are not.  The price is one dereference per
   occupied slot a probe visits. *)

type stripe = {
  st_lock : Mutex.t;
  mutable st_node : t array; (* slots; the manager's nil marks empty *)
  mutable st_count : int; (* occupied slots; written under the lock *)
}

type utable = {
  u_stripes : stripe array; (* length is a power of two *)
  u_shift : int; (* log2 (length u_stripes): hash bits spent on striping *)
  u_total : int Atomic.t; (* live nodes across all stripes *)
}

let ut_init_cap = 8192 (* initial capacity, summed across stripes *)
let ut_shared_stripes = 64

let rec ilog2 n = if n <= 1 then 0 else 1 + ilog2 (n lsr 1)

let stripe_make fill cap =
  { st_lock = Mutex.create (); st_node = Array.make cap fill; st_count = 0 }

let ut_stripe_cap nstripes = max 64 (ut_init_cap / nstripes)

let ut_make fill nstripes =
  {
    u_stripes =
      Array.init nstripes (fun _ -> stripe_make fill (ut_stripe_cap nstripes));
    u_shift = ilog2 nstripes;
    u_total = Atomic.make 0;
  }

(* Linear scan of one stripe snapshot: the index holding (var, hi, lo),
   or [lnot i] for the first free slot [i] of its chain.  Tail recursion,
   no allocation; the unsafe reads are in bounds because every index is
   masked.  Callers pass an array read once from [st_node] — scanning a
   snapshot is what makes the probe safe against a concurrent grow. *)
let rec ut_scan arr mask var hi lo i =
  let n = Array.unsafe_get arr i in
  if n.uid < 0 then lnot i
  else
    match n.node with
    | N { var = v; hi = h; lo = l } when v = var && h.uid = hi && l.uid = lo
      ->
        i
    | _ -> ut_scan arr mask var hi lo ((i + 1) land mask)

(* Quiescent placement of a node into a stripe array known to have room
   and to lack the node: rehashing on grow, gc rebuild, reorder. *)
let place_node shift arr node =
  match node.node with
  | N { var; hi; lo } ->
      let mask = Array.length arr - 1 in
      let rec go i =
        if (Array.unsafe_get arr i).uid < 0 then Array.unsafe_set arr i node
        else go ((i + 1) land mask)
      in
      go ((mix3 var hi.uid lo.uid lsr shift) land mask)
  | Leaf _ -> assert false

(* Double one stripe (amortized, at 2/3 load).  Runs under the stripe
   lock in a shared manager; racing probes keep scanning their old
   snapshot, and any miss they report is re-checked under the lock, so
   the swap is invisible to correctness. *)
let stripe_grow fill shift st =
  let old = st.st_node in
  let arr = Array.make (2 * Array.length old) fill in
  Array.iter (fun n -> if n.uid >= 0 then place_node shift arr n) old;
  st.st_node <- arr

let ut_capacity u =
  Array.fold_left (fun acc st -> acc + Array.length st.st_node) 0 u.u_stripes

(* Quiescent only (reorder): no concurrent operation may be running. *)
let ut_reset fill u =
  let cap = ut_stripe_cap (Array.length u.u_stripes) in
  Array.iter
    (fun st ->
      st.st_node <- Array.make cap fill;
      st.st_count <- 0)
    u.u_stripes;
  Atomic.set u.u_total 0

let ut_iter fn u =
  Array.iter
    (fun st -> Array.iter (fun n -> if n.uid >= 0 then fn n) st.st_node)
    u.u_stripes

(* --- computed caches: lossy, direct-mapped ------------------------- *)

(* One slot per hash; a colliding insert overwrites (CUDD's computed
   table).  Loses results, never correctness: a lost entry is recomputed.

   A slot is a single mutable pointer to an immutable entry record, which
   makes the cache race-tolerant by construction: a concurrent reader
   dereferences either the old entry or the new one, each internally
   consistent because key and value were published together.  A data race
   can therefore cost a hit or duplicate a computation, but it can never
   pair one operation's key with another operation's value — the only
   failure mode that would be wrong rather than slow.  (The parallel
   [int array]s this cache used before could: four separate stores tear
   under concurrent readers.)

   Keys are up to three non-negative ints (uids and operation tags);
   unused key positions hold 0, and every empty slot shares one entry
   with q1 = -1, which no real key matches.  A probe returns the
   manager's [nil] sentinel (uid -1, never escapes the module) on a miss
   so the hit path allocates no option. *)

type centry = { q1 : int; q2 : int; q3 : int; cv : t }

type cache = {
  c_name : string; (* for Cache_resize events *)
  c_empty : centry; (* the shared empty-slot entry *)
  mutable c_slots : centry array; (* length is a power of two *)
  mutable c_filled : int; (* occupied slots; approximate under races *)
  mutable c_inserts : int; (* stores since creation/resize: drives growth *)
}

let cache_init_cap = 4096

let cache_make name fill cap =
  let empty = { q1 = -1; q2 = 0; q3 = 0; cv = fill } in
  {
    c_name = name;
    c_empty = empty;
    c_slots = Array.make cap empty;
    c_filled = 0;
    c_inserts = 0;
  }

(* Dropping the contents on resize is fine for a lossy cache; the bounded
   number of doublings makes the recomputation cost a one-time warmup.
   Installing a fresh array (rather than refilling in place) is also what
   makes resize and clear safe next to racing probes: each keeps reading
   whichever snapshot of the slot array it already holds. *)
let cache_resize c cap =
  c.c_slots <- Array.make cap c.c_empty;
  c.c_filled <- 0;
  c.c_inserts <- 0

(* fresh array, so a cleared cache retains no dead nodes *)
let cache_clear c = cache_resize c (Array.length c.c_slots)

(* --- float cache: uid -> float, for weight ------------------------- *)

(* Same single-pointer-slot shape with a float payload; the sentinel key
   is -1 and a miss returns nan (no stored weight is nan: weights live in
   [0, 1]). *)
type fentry = { fq : int; fv : float }

type fcache = {
  f_empty : fentry;
  mutable f_slots : fentry array;
  mutable f_filled : int;
  mutable f_inserts : int;
}

let fcache_make cap =
  let empty = { fq = -1; fv = 0. } in
  {
    f_empty = empty;
    f_slots = Array.make cap empty;
    f_filled = 0;
    f_inserts = 0;
  }

let fcache_resize c cap =
  c.f_slots <- Array.make cap c.f_empty;
  c.f_filled <- 0;
  c.f_inserts <- 0

let fcache_clear c = fcache_resize c (Array.length c.f_slots)

(* --- striped hot counters ------------------------------------------ *)

(* Cache hit/miss/overwrite tallies are bumped on every probe, so neither
   a plain mutable field (updates lost under races) nor an [Atomic.t] (a
   contended read-modify-write on the hottest path) will do.  Instead:
   one slot per domain, padded to its own cache line (stride 8 words),
   summed on read.  Counts are exact as long as concurrently running
   domains occupy distinct slots — true up to 64 domains, far beyond the
   pool sizes here — and each domain's view stays monotone. *)

let sc_stripes = 64
let sc_stride = 8

type scounter = int array

let sc_make () : scounter = Array.make (sc_stripes * sc_stride) 0

let[@inline] sc_incr (sc : scounter) =
  let i = ((Domain.self () :> int) land (sc_stripes - 1)) * sc_stride in
  Array.unsafe_set sc i (Array.unsafe_get sc i + 1)

let sc_read (sc : scounter) =
  let total = ref 0 in
  for i = 0 to sc_stripes - 1 do
    total := !total + Array.unsafe_get sc (i * sc_stride)
  done;
  !total

type man = {
  ff : t;
  tt : t;
  nil : t; (* cache-miss sentinel: uid -1, never escapes this module *)
  shared : bool; (* created ~shared:true — locks armed, multi-domain safe *)
  mutable node_limit : int option;
  mutable cache_limit : int;
  mutable cache_cap : int; (* largest power of two <= cache_limit *)
  next_uid : int Atomic.t;
  unique : utable;
  var_lock : Mutex.t; (* serializes grow_vars in shared mode *)
  cache_lock : Mutex.t; (* serializes cache resizes in shared mode *)
  mutable var_level : int array; (* variable -> level *)
  mutable level_var : int array; (* level -> variable *)
  mutable n_vars : int;
  ite_cache : cache; (* (f, g, h) *)
  op_cache : cache; (* (tag, f, g) *)
  not_cache : cache; (* (f, 0, 0), kept in both directions *)
  exist_cache : cache; (* (f, cube, 0) *)
  andex_cache : cache; (* (f, g, cube) *)
  constrain_cache : cache; (* (f, c, 0) *)
  restrict_cache : cache; (* (f, c, 0) *)
  leq_cache : cache; (* (f, g, 0) -> tt/ff *)
  weight_cache : fcache;
  nodes_made : int Atomic.t;
  peak_unique : int Atomic.t;
  sc_hits : scounter;
  sc_misses : scounter;
  sc_overwrites : scounter; (* computed-cache inserts into occupied slots *)
  sc_races : scounter; (* overwrites that re-stored the very same key *)
  sc_inserts : scounter;
  ut_grows : int Atomic.t; (* stripe doublings *)
  ut_locks : int Atomic.t; (* stripe-lock acquisitions on the insert path *)
  stripe_waits : int Atomic.t; (* acquisitions that found the lock held *)
  cas_retries : int Atomic.t;
      (* publish races lost: the re-probe under the stripe lock found the
         node another domain created between our probe and the lock *)
  node_limit_hits : int Atomic.t;
  mutable gc_runs : int;
  mutable gc_collected : int;
  mutable observer : (event -> unit) option;
  mutable tick : (unit -> unit) option;
  mutable tick_countdown : int;
  mutable fault : (unit -> unit) option;
  mutable store_stats : (unit -> int * int * int) option;
      (* (hot, cold, spilled bytes) supplied by a tiered store (lib/store);
         None when no store is attached, in which case {!stats} reports 0 *)
  mutable table_cap : int option; (* requested hard unique-table ceiling *)
  mutable stripe_cap : int; (* per-stripe slot ceiling derived from it *)
  ut_full_hits : int Atomic.t; (* inserts refused at the ceiling *)
  mutable chain_stats : (unit -> int * int) option;
      (* (chain folds, chain mk calls) supplied by an attached
         compressed-representation manager (lib/dd); None reports 0 *)
}

exception Table_full

(* Rare-path hook for fault injection (lib/resil): invoked from the node
   creation beat, cache growth and gc entry — never per probe, so with no
   hook installed the cost is one branch on paths already off the hot
   loop.  The hook may raise (forced Node_limit, simulated abort) or wipe
   the caches; either leaves the manager consistent, exactly as the tick
   hook does. *)
let[@inline] fault_point man =
  match man.fault with None -> () | Some fn -> fn ()

let tag_and = 0
let tag_or = 1
let tag_xor = 2

(* Node creations between two invocations of the tick hook: frequent enough
   that a runaway operation is interrupted promptly, rare enough that the
   hook costs nothing on the hot path. *)
let tick_period = 256

(* ------------------------------------------------------------------ *)
(* Managers and variables                                             *)
(* ------------------------------------------------------------------ *)

let rec pow2_le n k = if 2 * k <= n then pow2_le n (2 * k) else k
let pow2_le n = pow2_le (max n 1024) 1024

(* One-time OCaml GC tuning for BDD workloads (DESIGN.md §Kernel): the
   kernel allocates a torrent of small long-lived nodes, so a bigger
   per-domain minor heap (16 MB instead of the 2 MB default) keeps the
   build phase of an operation out of the promotion treadmill, and a
   higher space_overhead trades heap slack for fewer major slices.  Set
   BDD_GC_TUNE=0 to opt out, or call Gc.set after the first Bdd.create to
   override; existing user settings are never lowered. *)
let gc_tuned = Atomic.make false

let tune_gc () =
  if not (Atomic.exchange gc_tuned true) then
    match Sys.getenv_opt "BDD_GC_TUNE" with
    | Some ("0" | "off" | "no" | "false") -> ()
    | Some _ | None ->
        let g = Gc.get () in
        Gc.set
          {
            g with
            Gc.minor_heap_size = max g.Gc.minor_heap_size (1 lsl 21);
            space_overhead = max g.Gc.space_overhead 200;
          }

let create ?(nvars = 0) ?(shared = false) () =
  tune_gc ();
  let ff = { uid = 0; node = Leaf false } in
  let tt = { uid = 1; node = Leaf true } in
  let nil = { uid = -1; node = Leaf false } in
  let man =
    {
      ff;
      tt;
      nil;
      shared;
      node_limit = None;
      cache_limit = 2_000_000;
      cache_cap = pow2_le 2_000_000;
      next_uid = Atomic.make 2;
      unique = ut_make nil (if shared then ut_shared_stripes else 1);
      var_lock = Mutex.create ();
      cache_lock = Mutex.create ();
      var_level = Array.init (max nvars 16) (fun i -> i);
      level_var = Array.init (max nvars 16) (fun i -> i);
      n_vars = nvars;
      ite_cache = cache_make "ite" nil cache_init_cap;
      op_cache = cache_make "op" nil cache_init_cap;
      not_cache = cache_make "not" nil cache_init_cap;
      exist_cache = cache_make "exist" nil cache_init_cap;
      andex_cache = cache_make "andex" nil cache_init_cap;
      constrain_cache = cache_make "constrain" nil cache_init_cap;
      restrict_cache = cache_make "restrict" nil cache_init_cap;
      leq_cache = cache_make "leq" nil cache_init_cap;
      weight_cache = fcache_make cache_init_cap;
      nodes_made = Atomic.make 0;
      peak_unique = Atomic.make 0;
      sc_hits = sc_make ();
      sc_misses = sc_make ();
      sc_overwrites = sc_make ();
      sc_races = sc_make ();
      sc_inserts = sc_make ();
      ut_grows = Atomic.make 0;
      ut_locks = Atomic.make 0;
      stripe_waits = Atomic.make 0;
      cas_retries = Atomic.make 0;
      node_limit_hits = Atomic.make 0;
      gc_runs = 0;
      gc_collected = 0;
      observer = None;
      tick = None;
      tick_countdown = tick_period;
      fault = None;
      store_stats = None;
      table_cap = None;
      stripe_cap = max_int;
      ut_full_hits = Atomic.make 0;
      chain_stats = None;
    }
  in
  man

let is_shared man = man.shared

let nvars man = man.n_vars
let tt man = man.tt
let ff man = man.ff
let id f = f.uid
let equal f g = f == g

let view f =
  match f.node with
  | Leaf false -> False
  | Leaf true -> True
  | N { var; hi; lo } -> Node { var; hi; lo }

let is_const f = match f.node with Leaf _ -> true | N _ -> false
let is_true f = f.uid = 1
let is_false f = f.uid = 0

let topvar f =
  match f.node with
  | N { var; _ } -> var
  | Leaf _ -> invalid_arg "Bdd.topvar: constant"

let high f =
  match f.node with
  | N { hi; _ } -> hi
  | Leaf _ -> invalid_arg "Bdd.high: constant"

let low f =
  match f.node with
  | N { lo; _ } -> lo
  | Leaf _ -> invalid_arg "Bdd.low: constant"

let level_of_var man v =
  if v < 0 || v >= man.n_vars then invalid_arg "Bdd.level_of_var";
  man.var_level.(v)

let var_at_level man l =
  if l < 0 || l >= man.n_vars then invalid_arg "Bdd.var_at_level";
  man.level_var.(l)

let order man = Array.sub man.level_var 0 man.n_vars

(* Level of the root node; constants sink below every variable. *)
let level man f =
  match f.node with Leaf _ -> max_int | N { var; _ } -> man.var_level.(var)

let grow_vars_quiet man n =
  let cap = Array.length man.var_level in
  if n > cap then begin
    let cap' = max n (2 * cap) in
    (* Identity-initialized, so slots beyond [n_vars] already hold the
       value the fresh-variable loop below would write.  A concurrent
       reader holding a stale array pointer therefore still sees correct
       levels for every variable that existed when it fetched it, and the
       in-place writes below are value-preserving no-ops for any racing
       reader of the current array. *)
    let vl = Array.init cap' (fun i -> i)
    and lv = Array.init cap' (fun i -> i) in
    Array.blit man.var_level 0 vl 0 man.n_vars;
    Array.blit man.level_var 0 lv 0 man.n_vars;
    man.var_level <- vl;
    man.level_var <- lv
  end;
  (* fresh variables enter at the bottom of the order *)
  for v = man.n_vars to n - 1 do
    man.var_level.(v) <- v;
    man.level_var.(v) <- v
  done;
  man.n_vars <- max man.n_vars n

let grow_vars man n =
  if man.shared then begin
    Mutex.lock man.var_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock man.var_lock)
      (fun () -> grow_vars_quiet man n)
  end
  else grow_vars_quiet man n

(* Raise Table_full; never called while holding a stripe lock.  A stripe
   that may neither grow nor take the insert while staying under 2/3
   load would otherwise creep toward the full-table regime where the
   open-addressed probe loop can no longer find a free slot — refusing
   the insert keeps the failure prompt, documented, and counted. *)
let table_full_hit man =
  Atomic.incr man.ut_full_hits;
  raise Table_full

(* Raise Node_limit; never called while holding a stripe lock. *)
let limit_hit man limit =
  Atomic.incr man.node_limit_hits;
  (match man.observer with
  | None -> ()
  | Some obs -> obs (Limit_hit { limit }));
  raise Node_limit

(* Monotone CAS-max, for peak_unique. *)
let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let grow_event man =
  Atomic.incr man.ut_grows;
  match man.observer with
  | None -> ()
  | Some obs ->
      obs
        (Unique_grow
           {
             capacity = ut_capacity man.unique;
             live = Atomic.get man.unique.u_total;
           })

(* Bookkeeping after a fresh node is published; runs outside any stripe
   lock.  One countdown per fresh node feeds both the cooperative tick
   hook and the observer's progress beat; the decrement-and-test is the
   whole disabled-path cost.  The countdown is a plain mutable field —
   concurrent decrements can lose a step, which only shifts when the hook
   fires, never whether it keeps firing. *)
let node_made man =
  Atomic.incr man.nodes_made;
  atomic_max man.peak_unique (Atomic.get man.unique.u_total);
  man.tick_countdown <- man.tick_countdown - 1;
  if man.tick_countdown <= 0 then begin
    man.tick_countdown <- tick_period;
    (match man.observer with
    | None -> ()
    | Some obs ->
        obs
          (Progress
             {
               nodes_made = Atomic.get man.nodes_made;
               unique_size = Atomic.get man.unique.u_total;
             }));
    fault_point man;
    match man.tick with None -> () | Some fn -> fn ()
  end

(* Shared-manager miss path: take the stripe lock, re-probe the current
   array, and only then publish (publish-then-resolve).  Losing the race
   to another domain costs one counted re-probe, never a duplicate
   node — the winner's entry is found and returned. *)
let mk_shared man st h var hi lo =
  let u = man.unique in
  if not (Mutex.try_lock st.st_lock) then begin
    Atomic.incr man.stripe_waits;
    Mutex.lock st.st_lock
  end;
  Atomic.incr man.ut_locks;
  let arr = st.st_node in
  let mask = Array.length arr - 1 in
  let s = ut_scan arr mask var hi.uid lo.uid ((h lsr u.u_shift) land mask) in
  if s >= 0 then begin
    (* another domain published it between our probe and the lock *)
    let n = Array.unsafe_get arr s in
    Mutex.unlock st.st_lock;
    Atomic.incr man.cas_retries;
    n
  end
  else begin
    (match man.node_limit with
    | Some limit when Atomic.get u.u_total >= limit ->
        Mutex.unlock st.st_lock;
        limit_hit man limit
    | Some _ | None -> ());
    if
      3 * (st.st_count + 1) > 2 * (mask + 1)
      && 2 * (mask + 1) > man.stripe_cap
    then begin
      Mutex.unlock st.st_lock;
      table_full_hit man
    end;
    let n =
      { uid = Atomic.fetch_and_add man.next_uid 1; node = N { var; hi; lo } }
    in
    Array.unsafe_set arr (lnot s) n;
    st.st_count <- st.st_count + 1;
    Atomic.incr u.u_total;
    let grew =
      if 3 * st.st_count > 2 * (mask + 1) then begin
        stripe_grow man.nil u.u_shift st;
        true
      end
      else false
    in
    Mutex.unlock st.st_lock;
    if grew then grow_event man;
    node_made man;
    n
  end

(* Unchecked hash-consed constructor: callers guarantee the ordering
   invariant.  The hit path — shared or private — is a lock-free masked
   scan over one stripe snapshot and allocates nothing. *)
let mk_raw man var hi lo =
  if hi == lo then hi
  else
    let u = man.unique in
    let hid = hi.uid and lod = lo.uid in
    let h = mix3 var hid lod in
    let st =
      Array.unsafe_get u.u_stripes (h land (Array.length u.u_stripes - 1))
    in
    let arr = st.st_node in
    let mask = Array.length arr - 1 in
    let s = ut_scan arr mask var hid lod ((h lsr u.u_shift) land mask) in
    if s >= 0 then Array.unsafe_get arr s
    else if man.shared then mk_shared man st h var hi lo
    else begin
      (* private manager: single stripe, single domain, no locking; the
         limit check against the exact count keeps Node_limit precise *)
      (match man.node_limit with
      | Some limit when Atomic.get u.u_total >= limit -> limit_hit man limit
      | Some _ | None -> ());
      if
        3 * (st.st_count + 1) > 2 * (mask + 1)
        && 2 * (mask + 1) > man.stripe_cap
      then table_full_hit man;
      let n =
        { uid = Atomic.fetch_and_add man.next_uid 1; node = N { var; hi; lo } }
      in
      Array.unsafe_set arr (lnot s) n;
      st.st_count <- st.st_count + 1;
      Atomic.incr u.u_total;
      if 3 * st.st_count > 2 * (mask + 1) then begin
        stripe_grow man.nil u.u_shift st;
        grow_event man
      end;
      node_made man;
      n
    end

let mk man ~var ~hi ~lo =
  if var < 0 || var >= man.n_vars then invalid_arg "Bdd.mk: unknown variable";
  let lv = man.var_level.(var) in
  if level man hi <= lv || level man lo <= lv then
    invalid_arg "Bdd.mk: children must lie below the variable";
  mk_raw man var hi lo

let ithvar man i =
  if i < 0 then invalid_arg "Bdd.ithvar";
  if i >= man.n_vars then grow_vars man (i + 1);
  mk_raw man i man.tt man.ff

let nithvar man i =
  if i < 0 then invalid_arg "Bdd.nithvar";
  if i >= man.n_vars then grow_vars man (i + 1);
  mk_raw man i man.ff man.tt

let new_var man = ithvar man man.n_vars

(* Cofactors of [f] with respect to the variable at level [lv]. *)
let cofactors man f lv =
  match f.node with
  | Leaf _ -> (f, f)
  | N { var; hi; lo } -> if man.var_level.(var) = lv then (hi, lo) else (f, f)

(* Computed-cache probe with hit/miss accounting for {!stats}: one masked
   read, one dereference, three int compares, no allocation.  Returns
   [man.nil] on a miss; callers test [r.uid >= 0] (every real node has a
   non-negative uid). *)
let[@inline] cache_find man c a b k =
  let arr = c.c_slots in
  let e = Array.unsafe_get arr (mix3 a b k land (Array.length arr - 1)) in
  if e.q1 = a && e.q2 = b && e.q3 = k then begin
    sc_incr man.sc_hits;
    e.cv
  end
  else begin
    sc_incr man.sc_misses;
    man.nil
  end

(* Lossy insertion: overwrite whatever occupies the slot with one freshly
   built immutable entry — a single racy pointer store, wrong-answer-free
   by the argument at the type above.  The capacity doubles when inserts
   outrun it — a cheap churn signal — but never past [cache_limit], so
   each cache's memory is hard-bounded (CUDD sizes its computed table the
   same way).  In a shared manager the resize is serialized by
   [cache_lock] and re-checked under it, so two domains cannot install
   competing arrays. *)
let cache_add man c a b k v =
  let cap = Array.length c.c_slots in
  if c.c_inserts >= 2 * cap && 2 * cap <= man.cache_cap then begin
    let resized =
      if man.shared then begin
        Mutex.lock man.cache_lock;
        let cap = Array.length c.c_slots in
        let ok = c.c_inserts >= 2 * cap && 2 * cap <= man.cache_cap in
        if ok then cache_resize c (2 * cap);
        Mutex.unlock man.cache_lock;
        ok
      end
      else begin
        cache_resize c (2 * cap);
        true
      end
    in
    if resized then begin
      (match man.observer with
      | None -> ()
      | Some obs ->
          obs
            (Cache_resize
               { cache = c.c_name; capacity = Array.length c.c_slots }));
      fault_point man
    end
  end;
  let arr = c.c_slots in
  let i = mix3 a b k land (Array.length arr - 1) in
  let old = Array.unsafe_get arr i in
  if old.q1 < 0 then c.c_filled <- c.c_filled + 1
  else begin
    sc_incr man.sc_overwrites;
    (* same key re-stored: two domains computed the same subproblem *)
    if old.q1 = a && old.q2 = b && old.q3 = k then sc_incr man.sc_races
  end;
  Array.unsafe_set arr i { q1 = a; q2 = b; q3 = k; cv = v };
  c.c_inserts <- c.c_inserts + 1;
  sc_incr man.sc_inserts

let[@inline] fcache_find man c k =
  let arr = c.f_slots in
  let e = Array.unsafe_get arr (mix3 k 0 0 land (Array.length arr - 1)) in
  if e.fq = k then begin
    sc_incr man.sc_hits;
    e.fv
  end
  else begin
    sc_incr man.sc_misses;
    Float.nan
  end

let fcache_add man c k v =
  let cap = Array.length c.f_slots in
  if c.f_inserts >= 2 * cap && 2 * cap <= man.cache_cap then begin
    let resized =
      if man.shared then begin
        Mutex.lock man.cache_lock;
        let cap = Array.length c.f_slots in
        let ok = c.f_inserts >= 2 * cap && 2 * cap <= man.cache_cap in
        if ok then fcache_resize c (2 * cap);
        Mutex.unlock man.cache_lock;
        ok
      end
      else begin
        fcache_resize c (2 * cap);
        true
      end
    in
    if resized then begin
      (match man.observer with
      | None -> ()
      | Some obs ->
          obs
            (Cache_resize
               { cache = "weight"; capacity = Array.length c.f_slots }));
      fault_point man
    end
  end;
  let arr = c.f_slots in
  let i = mix3 k 0 0 land (Array.length arr - 1) in
  if (Array.unsafe_get arr i).fq < 0 then c.f_filled <- c.f_filled + 1
  else sc_incr man.sc_overwrites;
  Array.unsafe_set arr i { fq = k; fv = v };
  c.f_inserts <- c.f_inserts + 1;
  sc_incr man.sc_inserts

(* ------------------------------------------------------------------ *)
(* ITE and the binary connectives                                     *)
(* ------------------------------------------------------------------ *)

let rec ite man f g h =
  if is_true f then g
  else if is_false f then h
  else if g == h then g
  else if is_true g && is_false h then f
  else if f == g then ite man f man.tt h
  else if f == h then ite man f g man.ff
  else
    let r = cache_find man man.ite_cache f.uid g.uid h.uid in
    if r.uid >= 0 then r
    else begin
      let lv = min (level man f) (min (level man g) (level man h)) in
      let v = man.level_var.(lv) in
      let f1, f0 = cofactors man f lv
      and g1, g0 = cofactors man g lv
      and h1, h0 = cofactors man h lv in
      let r1 = ite man f1 g1 h1 and r0 = ite man f0 g0 h0 in
      let r = mk_raw man v r1 r0 in
      cache_add man man.ite_cache f.uid g.uid h.uid r;
      r
    end

let rec bnot man f =
  if is_true f then man.ff
  else if is_false f then man.tt
  else
    let r = cache_find man man.not_cache f.uid 0 0 in
    if r.uid >= 0 then r
    else begin
      let r = mk_raw man (topvar f) (bnot man (high f)) (bnot man (low f)) in
      (* negation is an involution: cache both directions *)
      cache_add man man.not_cache f.uid 0 0 r;
      cache_add man man.not_cache r.uid 0 0 f;
      r
    end

(* Binary apply with terminal-case functions, sharing one tagged cache. *)
let rec apply man tag term f g =
  match term man f g with
  | Some r -> r
  | None ->
      (* commutative: normalize the argument order for better cache reuse *)
      let f, g = if f.uid <= g.uid then (f, g) else (g, f) in
      let r = cache_find man man.op_cache tag f.uid g.uid in
      if r.uid >= 0 then r
      else begin
        let lv = min (level man f) (level man g) in
        let v = man.level_var.(lv) in
        let f1, f0 = cofactors man f lv and g1, g0 = cofactors man g lv in
        let r1 = apply man tag term f1 g1
        and r0 = apply man tag term f0 g0 in
        let r = mk_raw man v r1 r0 in
        cache_add man man.op_cache tag f.uid g.uid r;
        r
      end

let and_term man f g =
  if is_false f || is_false g then Some man.ff
  else if is_true f then Some g
  else if is_true g then Some f
  else if f == g then Some f
  else None

let or_term man f g =
  if is_true f || is_true g then Some man.tt
  else if is_false f then Some g
  else if is_false g then Some f
  else if f == g then Some f
  else None

let xor_term man f g =
  if f == g then Some man.ff
  else if is_false f then Some g
  else if is_false g then Some f
  else if is_true f then Some (bnot man g)
  else if is_true g then Some (bnot man f)
  else None

let band man f g = apply man tag_and and_term f g
let bor man f g = apply man tag_or or_term f g
let bxor man f g = apply man tag_xor xor_term f g
let bnand man f g = bnot man (band man f g)
let bnor man f g = bnot man (bor man f g)
let biff man f g = bnot man (bxor man f g)
let bimp man f g = ite man f g man.tt
let bdiff man f g = ite man g man.ff f
let conj man fs = List.fold_left (band man) man.tt fs
let disj man fs = List.fold_left (bor man) man.ff fs

(* satisfiability of a conjunction without building it *)
let intersects man f g =
  let seen = Hashtbl.create 64 in
  let rec go f g =
    if is_false f || is_false g then false
    else if is_true f || is_true g || f == g then true
    else
      let f, g = if f.uid <= g.uid then (f, g) else (g, f) in
      let key = (f.uid, g.uid) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        let lv = min (level man f) (level man g) in
        let f1, f0 = cofactors man f lv and g1, g0 = cofactors man g lv in
        go f1 g1 || go f0 g0
      end
  in
  go f g

let rec leq man f g =
  if f == g || is_false f || is_true g then true
  else if is_true f || is_false g then false
  else
    (* boolean result, stored as the tt/ff node *)
    let r = cache_find man man.leq_cache f.uid g.uid 0 in
    if r.uid >= 0 then is_true r
    else begin
      let lv = min (level man f) (level man g) in
      let f1, f0 = cofactors man f lv and g1, g0 = cofactors man g lv in
      let r = leq man f1 g1 && leq man f0 g0 in
      cache_add man man.leq_cache f.uid g.uid 0 (if r then man.tt else man.ff);
      r
    end

(* ------------------------------------------------------------------ *)
(* Cofactors, composition                                             *)
(* ------------------------------------------------------------------ *)

let cofactor man f ~var b =
  if var < 0 || var >= man.n_vars then invalid_arg "Bdd.cofactor";
  let lv = man.var_level.(var) in
  let memo = Hashtbl.create 64 in
  let rec go f =
    if level man f > lv then f
    else if level man f = lv then if b then high f else low f
    else
      match Hashtbl.find_opt memo f.uid with
      | Some r -> r
      | None ->
          let r = mk_raw man (topvar f) (go (high f)) (go (low f)) in
          Hashtbl.add memo f.uid r;
          r
  in
  go f

let vector_compose man f subst =
  let memo = Hashtbl.create 64 in
  let rec go f =
    match f.node with
    | Leaf _ -> f
    | N { var; hi; lo } -> (
        match Hashtbl.find_opt memo f.uid with
        | Some r -> r
        | None ->
            let hi' = go hi and lo' = go lo in
            let gv =
              match subst var with Some g -> g | None -> ithvar man var
            in
            let r = ite man gv hi' lo' in
            Hashtbl.add memo f.uid r;
            r)
  in
  go f

let compose man f ~var g =
  vector_compose man f (fun v -> if v = var then Some g else None)

let permute man f p =
  vector_compose man f (fun v -> Some (ithvar man (p v)))

(* ------------------------------------------------------------------ *)
(* Cubes and quantification                                           *)
(* ------------------------------------------------------------------ *)

let cube man vars =
  let vars =
    List.sort_uniq
      (fun a b -> compare (level_of_var man b) (level_of_var man a))
      vars
  in
  (* deepest variable first so that mk_raw builds bottom-up *)
  List.fold_left (fun acc v -> mk_raw man v acc man.ff) man.tt vars

let cube_of_literals man lits =
  let lits =
    List.sort_uniq
      (fun (a, _) (b, _) ->
        compare (level_of_var man b) (level_of_var man a))
      lits
  in
  List.fold_left
    (fun acc (v, b) ->
      if b then mk_raw man v acc man.ff else mk_raw man v man.ff acc)
    man.tt lits

let rec exists man ~vars f =
  if is_const f || is_true vars then f
  else if is_false vars then invalid_arg "Bdd.exists: not a cube"
  else
    let lf = level man f and lc = level man vars in
    if lc < lf then exists man ~vars:(high vars) f
    else
      let r = cache_find man man.exist_cache f.uid vars.uid 0 in
      if r.uid >= 0 then r
      else begin
        let r =
          if lc = lf then
            let vars = high vars in
            bor man (exists man ~vars (high f)) (exists man ~vars (low f))
          else
            mk_raw man (topvar f)
              (exists man ~vars (high f))
              (exists man ~vars (low f))
        in
        cache_add man man.exist_cache f.uid vars.uid 0 r;
        r
      end

let forall man ~vars f = bnot man (exists man ~vars (bnot man f))

let rec and_exists man ~vars f g =
  if is_false f || is_false g then man.ff
  else if is_true vars then band man f g
  else if is_true f then exists man ~vars g
  else if is_true g then exists man ~vars f
  else if f == g then exists man ~vars f
  else
    let f, g = if f.uid <= g.uid then (f, g) else (g, f) in
    let r = cache_find man man.andex_cache f.uid g.uid vars.uid in
    if r.uid >= 0 then r
    else begin
      let lf = level man f and lg = level man g and lc = level man vars in
      let lv = min lf lg in
      let r =
        if lc < lv then and_exists man ~vars:(high vars) f g
        else
          let v = man.level_var.(lv) in
          let f1, f0 = cofactors man f lv
          and g1, g0 = cofactors man g lv in
          if lc = lv then
            let vars = high vars in
            bor man
              (and_exists man ~vars f1 g1)
              (and_exists man ~vars f0 g0)
          else
            mk_raw man v
              (and_exists man ~vars f1 g1)
              (and_exists man ~vars f0 g0)
      in
      cache_add man man.andex_cache f.uid g.uid vars.uid r;
      r
    end

(* ------------------------------------------------------------------ *)
(* Generalized cofactors                                              *)
(* ------------------------------------------------------------------ *)

let rec constrain_rec man f c =
  if is_true c || is_const f then f
  else if f == c then man.tt
  else
    let r = cache_find man man.constrain_cache f.uid c.uid 0 in
    if r.uid >= 0 then r
    else begin
      let lv = min (level man f) (level man c) in
      let v = man.level_var.(lv) in
      let f1, f0 = cofactors man f lv and c1, c0 = cofactors man c lv in
      let r =
        if is_false c0 then constrain_rec man f1 c1
        else if is_false c1 then constrain_rec man f0 c0
        else mk_raw man v (constrain_rec man f1 c1) (constrain_rec man f0 c0)
      in
      cache_add man man.constrain_cache f.uid c.uid 0 r;
      r
    end

let constrain man f c =
  if is_false c then invalid_arg "Bdd.constrain: empty care set";
  constrain_rec man f c

let rec restrict_rec man f c =
  if is_true c || is_const f then f
  else if f == c then man.tt
  else
    let r = cache_find man man.restrict_cache f.uid c.uid 0 in
    if r.uid >= 0 then r
    else begin
      let lf = level man f and lc = level man c in
      let r =
        if lc < lf then
          (* the care set constrains a variable f does not mention:
             quantify it out of c *)
          restrict_rec man f (bor man (high c) (low c))
        else
          let v = topvar f in
          let c1, c0 = if lc = lf then (high c, low c) else (c, c) in
          if is_false c0 then restrict_rec man (high f) c1
          else if is_false c1 then restrict_rec man (low f) c0
          else
            mk_raw man v
              (restrict_rec man (high f) c1)
              (restrict_rec man (low f) c0)
      in
      cache_add man man.restrict_cache f.uid c.uid 0 r;
      r
    end

let restrict man f c =
  if is_false c then invalid_arg "Bdd.restrict: empty care set";
  restrict_rec man f c

(* ------------------------------------------------------------------ *)
(* Counting and analysis                                              *)
(* ------------------------------------------------------------------ *)

let iter_nodes fn f =
  let seen = Hashtbl.create 64 in
  let rec go f =
    match f.node with
    | Leaf _ -> ()
    | N { hi; lo; _ } ->
        if not (Hashtbl.mem seen f.uid) then begin
          Hashtbl.add seen f.uid ();
          go hi;
          go lo;
          fn f
        end
  in
  go f

let fold_nodes fn acc f =
  let acc = ref acc in
  iter_nodes (fun n -> acc := fn !acc n) f;
  !acc

let nodes f = List.rev (fold_nodes (fun acc n -> n :: acc) [] f)
let size f = fold_nodes (fun n _ -> n + 1) 0 f

let shared_size fs =
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  let rec go f =
    match f.node with
    | Leaf _ -> ()
    | N { hi; lo; _ } ->
        if not (Hashtbl.mem seen f.uid) then begin
          Hashtbl.add seen f.uid ();
          incr count;
          go hi;
          go lo
        end
  in
  List.iter go fs;
  !count

let rec weight man f =
  if is_false f then 0.
  else if is_true f then 1.
  else
    let w = fcache_find man man.weight_cache f.uid in
    if Float.is_nan w then begin
      let w = 0.5 *. (weight man (high f) +. weight man (low f)) in
      fcache_add man man.weight_cache f.uid w;
      w
    end
    else w

let count_minterms man f ~nvars = ldexp (weight man f) nvars

let density man f ~nvars =
  count_minterms man f ~nvars /. float_of_int (max 1 (size f))

let count_paths _man f =
  let memo = Hashtbl.create 64 in
  let rec go f =
    match f.node with
    | Leaf _ -> 1.
    | N { hi; lo; _ } -> (
        match Hashtbl.find_opt memo f.uid with
        | Some p -> p
        | None ->
            let p = go hi +. go lo in
            Hashtbl.add memo f.uid p;
            p)
  in
  go f

let support man f =
  let seen = Hashtbl.create 16 in
  iter_nodes (fun n -> Hashtbl.replace seen (topvar n) ()) f;
  let vars = Hashtbl.fold (fun v () acc -> v :: acc) seen [] in
  List.sort
    (fun a b -> compare (level_of_var man a) (level_of_var man b))
    vars

let support_cube man f = cube man (support man f)

let eval _man f asg =
  let rec go f =
    match f.node with
    | Leaf b -> b
    | N { var; hi; lo } -> if asg var then go hi else go lo
  in
  go f

let any_sat _man f =
  let rec go acc f =
    match f.node with
    | Leaf true -> List.rev acc
    | Leaf false -> raise Not_found
    | N { var; hi; lo } ->
        if is_false hi then go ((var, false) :: acc) lo
        else go ((var, true) :: acc) hi
  in
  go [] f

let iter_sat _man ?(limit = max_int) f fn =
  let remaining = ref limit in
  let exception Done in
  let rec go acc f =
    if !remaining <= 0 then raise Done;
    match f.node with
    | Leaf false -> ()
    | Leaf true ->
        decr remaining;
        fn (List.rev acc)
    | N { var; hi; lo } ->
        go ((var, true) :: acc) hi;
        go ((var, false) :: acc) lo
  in
  try go [] f with Done -> ()

(* ------------------------------------------------------------------ *)
(* Interval minimization                                              *)
(* ------------------------------------------------------------------ *)

let squeeze man ~lower ~upper =
  if not (leq man lower upper) then invalid_arg "Bdd.squeeze: lower > upper";
  if lower == upper then lower
  else
    let care = bor man lower (bnot man upper) in
    let candidates =
      if is_false care then [ lower; upper ]
      else [ restrict man lower care; lower; upper ]
    in
    let best g acc = if size g < size acc then g else acc in
    match candidates with
    | [] -> lower
    | first :: rest -> List.fold_left (fun acc g -> best g acc) first rest

(* ------------------------------------------------------------------ *)
(* Manager maintenance                                                *)
(* ------------------------------------------------------------------ *)

let caches man =
  [
    man.ite_cache; man.op_cache; man.not_cache; man.exist_cache;
    man.andex_cache; man.constrain_cache; man.restrict_cache; man.leq_cache;
  ]

let clear_caches man =
  List.iter cache_clear (caches man);
  fcache_clear man.weight_cache

(* Quiescent only: gc rebuilds the stripe arrays in place, so no other
   domain may be running operations on a shared manager during the call
   (callers in this codebase collect between requests or between image
   steps, never mid-operation). *)
let gc man ~roots =
  fault_point man;
  let live = Hashtbl.create 1024 in
  let rec mark f =
    match f.node with
    | Leaf _ -> ()
    | N { hi; lo; _ } ->
        if not (Hashtbl.mem live f.uid) then begin
          Hashtbl.add live f.uid ();
          mark hi;
          mark lo
        end
  in
  List.iter mark roots;
  let u = man.unique in
  let before = Atomic.get u.u_total in
  let nstripes = Array.length u.u_stripes in
  let survivors = Array.make nstripes [] in
  let counts = Array.make nstripes 0 in
  let total = ref 0 in
  ut_iter
    (fun node ->
      if Hashtbl.mem live node.uid then begin
        let s =
          match node.node with
          | N { var; hi; lo } -> mix3 var hi.uid lo.uid land (nstripes - 1)
          | Leaf _ -> assert false
        in
        survivors.(s) <- node :: survivors.(s);
        counts.(s) <- counts.(s) + 1;
        incr total
      end)
    u;
  (* rebuild each stripe at a capacity fitted to its survivors (the dead
     nodes' records stay valid but leave the table, exactly as before) *)
  Array.iteri
    (fun s st ->
      let cap = ref (ut_stripe_cap nstripes) in
      while 3 * counts.(s) > 2 * !cap do
        cap := 2 * !cap
      done;
      let arr = Array.make !cap man.nil in
      List.iter (place_node u.u_shift arr) survivors.(s);
      st.st_node <- arr;
      st.st_count <- counts.(s))
    u.u_stripes;
  Atomic.set u.u_total !total;
  clear_caches man;
  let collected = before - !total in
  man.gc_runs <- man.gc_runs + 1;
  man.gc_collected <- man.gc_collected + collected;
  (match man.observer with
  | None -> ()
  | Some obs -> obs (Gc { collected; live = !total }));
  collected

let unique_size man = Atomic.get man.unique.u_total
let set_node_limit man limit = man.node_limit <- limit

let set_cache_limit man n =
  man.cache_limit <- max 1024 n;
  man.cache_cap <- pow2_le man.cache_limit;
  (* shrink any cache already above the new ceiling *)
  List.iter
    (fun c ->
      if Array.length c.c_slots > man.cache_cap then
        cache_resize c man.cache_cap)
    (caches man);
  if Array.length man.weight_cache.f_slots > man.cache_cap then
    fcache_resize man.weight_cache man.cache_cap

let node_limit man = man.node_limit

let set_tick man fn =
  man.tick <- fn;
  man.tick_countdown <- tick_period

let set_observer man fn = man.observer <- fn
let set_fault_hook man fn = man.fault <- fn
let set_store_stats man fn = man.store_stats <- fn
let set_chain_stats man fn = man.chain_stats <- fn

let chain_stats man =
  match man.chain_stats with None -> (0, 0) | Some fn -> fn ()

let set_table_capacity man cap =
  (match cap with
  | Some n when n <= 0 ->
      invalid_arg "Bdd.set_table_capacity: capacity must be positive"
  | Some _ | None -> ());
  man.table_cap <- cap;
  man.stripe_cap <-
    (match cap with
    | None -> max_int
    | Some n -> max 64 (n / Array.length man.unique.u_stripes))

let table_capacity man = man.table_cap
let ut_full_hits man = Atomic.get man.ut_full_hits

let stats man =
  let hot, cold, spilled =
    match man.store_stats with None -> (0, 0, 0) | Some fn -> fn ()
  in
  (* filled counts are maintained racily in a shared manager; clamp so
     reported entries can never exceed the capacity they sit in *)
  let filled c = min c.c_filled (Array.length c.c_slots) in
  let wfilled =
    min man.weight_cache.f_filled (Array.length man.weight_cache.f_slots)
  in
  let cache_entries =
    List.fold_left (fun acc c -> acc + filled c) wfilled (caches man)
  and cache_capacity =
    List.fold_left
      (fun acc c -> acc + Array.length c.c_slots)
      (Array.length man.weight_cache.f_slots)
      (caches man)
  in
  [
    ("nodes_made", Atomic.get man.nodes_made);
    ("unique_size", Atomic.get man.unique.u_total);
    ("peak_unique", Atomic.get man.peak_unique);
    ("cache_hits", sc_read man.sc_hits);
    ("cache_misses", sc_read man.sc_misses);
    ("ite_cache", filled man.ite_cache);
    ("op_cache", filled man.op_cache);
    ("n_vars", man.n_vars);
    ("unique_capacity", ut_capacity man.unique);
    ("cache_entries", cache_entries);
    ("cache_capacity", cache_capacity);
    ("cache_overwrites", sc_read man.sc_overwrites);
    ("ut_grows", Atomic.get man.ut_grows);
    ("gc_runs", man.gc_runs);
    ("gc_collected", man.gc_collected);
    ("node_limit_hits", Atomic.get man.node_limit_hits);
    ("hot_nodes", hot);
    ("cold_nodes", cold);
    ("spilled_bytes", spilled);
    ("cas_retries", Atomic.get man.cas_retries);
    ("stripe_waits", Atomic.get man.stripe_waits);
    ("ut_locks", Atomic.get man.ut_locks);
    ("cache_races", sc_read man.sc_races);
    ("cache_inserts", sc_read man.sc_inserts);
    ("ut_full", Atomic.get man.ut_full_hits);
    ("chain_folds", fst (chain_stats man));
    ("chain_mk", snd (chain_stats man));
  ]

let reorder man ~order:level_var ~roots =
  if Array.length level_var <> man.n_vars then
    invalid_arg "Bdd.reorder: bad permutation length";
  let seen = Array.make man.n_vars false in
  Array.iter
    (fun v ->
      if v < 0 || v >= man.n_vars || seen.(v) then
        invalid_arg "Bdd.reorder: not a permutation";
      seen.(v) <- true)
    level_var;
  (* Old nodes stay valid records but leave the unique table; new nodes are
     built under the new order. *)
  ut_reset man.nil man.unique;
  clear_caches man;
  for l = 0 to man.n_vars - 1 do
    man.level_var.(l) <- level_var.(l);
    man.var_level.(level_var.(l)) <- l
  done;
  let memo = Hashtbl.create 1024 in
  let rec rebuild f =
    match f.node with
    | Leaf _ -> f
    | N { var; hi; lo } -> (
        match Hashtbl.find_opt memo f.uid with
        | Some r -> r
        | None ->
            let hi' = rebuild hi and lo' = rebuild lo in
            let r = ite man (ithvar man var) hi' lo' in
            Hashtbl.add memo f.uid r;
            r)
  in
  List.map rebuild roots

(* ------------------------------------------------------------------ *)
(* Serialization and cross-manager transfer                           *)
(* ------------------------------------------------------------------ *)

type serialized = {
  s_nvars : int;
  s_order : int array;
  s_nodes : (int * int * int) array;
  s_roots : int array;
}

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let export_list man roots =
  let index = Hashtbl.create 256 in
  (* uid -> serialized index *)
  let idx f =
    if is_false f then 0
    else if is_true f then 1
    else Hashtbl.find index f.uid
  in
  let rev_nodes = ref [] and count = ref 0 in
  let rec go f =
    match f.node with
    | Leaf _ -> ()
    | N { var; hi; lo } ->
        if not (Hashtbl.mem index f.uid) then begin
          go hi;
          go lo;
          (* children first, so every child index is already assigned *)
          rev_nodes := (var, idx hi, idx lo) :: !rev_nodes;
          Hashtbl.add index f.uid (!count + 2);
          incr count
        end
  in
  List.iter go roots;
  {
    s_nvars = man.n_vars;
    s_order = Array.sub man.level_var 0 man.n_vars;
    s_nodes = Array.of_list (List.rev !rev_nodes);
    s_roots = Array.of_list (List.map idx roots);
  }

let export man f = export_list man [ f ]

let import_list man s =
  if s.s_nvars < 0 then corrupt "Bdd.import: negative variable count";
  if Array.length s.s_order <> s.s_nvars then
    corrupt "Bdd.import: order length %d does not match %d variables"
      (Array.length s.s_order) s.s_nvars;
  let seen_order = Array.make s.s_nvars false in
  Array.iter
    (fun v ->
      if v < 0 || v >= s.s_nvars then
        corrupt "Bdd.import: order entry %d outside [0,%d)" v s.s_nvars;
      if seen_order.(v) then
        corrupt "Bdd.import: order lists variable %d twice (not a permutation)"
          v;
      seen_order.(v) <- true)
    s.s_order;
  let n = Array.length s.s_nodes in
  let built = Array.make (n + 2) man.ff in
  built.(1) <- man.tt;
  Array.iteri
    (fun i (var, hi, lo) ->
      if var < 0 || var >= s.s_nvars then
        corrupt "Bdd.import: node %d has variable %d outside [0,%d)" i var
          s.s_nvars;
      if hi < 0 || hi >= i + 2 then
        corrupt "Bdd.import: node %d has then-child %d (not below it)" i hi;
      if lo < 0 || lo >= i + 2 then
        corrupt "Bdd.import: node %d has else-child %d (not below it)" i lo;
      let hi = built.(hi) and lo = built.(lo) in
      if var >= man.n_vars then grow_vars man (var + 1);
      let lv = man.var_level.(var) in
      let r =
        (* Fast path when the destination order agrees with the source
           layering at this node: a plain hash-consed constructor.  When
           the orders differ (or the input is dubious) fall back to a full
           ITE against the variable, which is correct under any order. *)
        if level man hi > lv && level man lo > lv then mk_raw man var hi lo
        else ite man (ithvar man var) hi lo
      in
      built.(i + 2) <- r)
    s.s_nodes;
  Array.to_list
    (Array.map
       (fun r ->
         if r < 0 || r >= n + 2 then
           corrupt "Bdd.import: root index %d out of range" r;
         built.(r))
       s.s_roots)

let import man s =
  match s.s_roots with
  | [| _ |] -> List.hd (import_list man s)
  | _ ->
      corrupt "Bdd.import: expected exactly one root, found %d"
        (Array.length s.s_roots)

(* Binary format: the magic string "BDD1" followed by unsigned LEB128
   varints — nvars, the order array, the node count, (var, hi, lo) per
   node, the root count, and the root indices. *)

let add_varint buf n =
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  if n < 0 then invalid_arg "Bdd: cannot serialize a negative integer";
  go n

let magic = "BDD1"

let serialized_to_string s =
  let buf = Buffer.create (16 + (4 * Array.length s.s_nodes)) in
  Buffer.add_string buf magic;
  add_varint buf s.s_nvars;
  Array.iter (add_varint buf) s.s_order;
  add_varint buf (Array.length s.s_nodes);
  Array.iter
    (fun (v, h, l) ->
      add_varint buf v;
      add_varint buf h;
      add_varint buf l)
    s.s_nodes;
  add_varint buf (Array.length s.s_roots);
  Array.iter (add_varint buf) s.s_roots;
  Buffer.contents buf

(* FNV-1a (64-bit) over the canonical byte encoding: a cheap stable
   content key for registries that index published BDDs.  Collisions are
   possible, so any exactness-critical consumer must confirm a digest hit
   by comparing the full bytes — the digest only narrows the search. *)
let serialized_digest s =
  let bytes = serialized_to_string s in
  let h = ref (-3750763034362895579L) (* 0xcbf29ce484222325 *) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
             1099511628211L)
    bytes;
  Printf.sprintf "%016Lx" !h

let serialized_of_string str =
  let len = String.length str in
  if len < 4 || String.sub str 0 4 <> magic then
    corrupt "Bdd.serialized_of_string: bad magic";
  let pos = ref 4 in
  let byte () =
    if !pos >= len then corrupt "Bdd.serialized_of_string: truncated input";
    let c = Char.code str.[!pos] in
    incr pos;
    c
  in
  let varint () =
    let rec go shift acc =
      if shift > 62 then corrupt "Bdd.serialized_of_string: varint overflow";
      let b = byte () in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0
  in
  (* every element takes at least one byte, so an announced length beyond
     the remaining input is corrupt — checked before allocating *)
  let counted what n =
    if n > len - !pos then
      corrupt "Bdd.serialized_of_string: %s count %d exceeds input" what n;
    n
  in
  let nvars = varint () in
  let order = Array.init (counted "order" nvars) (fun _ -> varint ()) in
  let nnodes = varint () in
  (* a node is three varints, at least three bytes: a tighter bound than
     the generic one-byte-per-element check, applied before allocating *)
  if nnodes > (len - !pos) / 3 then
    corrupt
      "Bdd.serialized_of_string: node count %d needs %d bytes, only %d remain"
      nnodes (3 * nnodes) (len - !pos);
  let nodes =
    Array.init nnodes (fun _ ->
        let v = varint () in
        let h = varint () in
        let l = varint () in
        (v, h, l))
  in
  let nroots = varint () in
  let roots = Array.init (counted "root" nroots) (fun _ -> varint ()) in
  if !pos <> len then corrupt "Bdd.serialized_of_string: trailing garbage";
  { s_nvars = nvars; s_order = order; s_nodes = nodes; s_roots = roots }

let save path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (serialized_to_string s))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> serialized_of_string (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Parallel operations (DESIGN.md §Parallel kernel)                    *)
(* ------------------------------------------------------------------ *)

type contention = {
  cas_retries : int;
  stripe_waits : int;
  ut_locks : int;
  cache_races : int;
  cache_inserts : int;
  cache_probes : int;
}

let contention (man : man) =
  {
    cas_retries = Atomic.get man.cas_retries;
    stripe_waits = Atomic.get man.stripe_waits;
    ut_locks = Atomic.get man.ut_locks;
    cache_races = sc_read man.sc_races;
    cache_inserts = sc_read man.sc_inserts;
    cache_probes = sc_read man.sc_hits + sc_read man.sc_misses;
  }

(* Forked subproblems stop at a depth cutoff and fall back to the plain
   sequential recursions — same caches, same unique table — so the fork
   count per operation is O(2^cutoff) regardless of operand size.  A few
   levels beyond log2(workers) keeps every worker fed even when the
   cofactor tree is skewed, without drowning the deques in tiny tasks.
   Results are bit-identical to the sequential kernel by construction:
   both build canonical nodes in the same hash-consing table, so the
   schedule can only change which domain publishes a node first, never
   which node represents a function. *)
let par_cutoff pool = ilog2 (Tpool.size pool) + 4

let check_shared name pool man =
  if Tpool.size pool > 1 && not man.shared then
    invalid_arg (name ^ ": manager was not created with ~shared:true")

(* Fork the hi-branch, compute the lo-branch inline, join.  On an
   exception from the inline branch (Node_limit, a deadline tick), the
   forked task is cancelled-or-awaited before unwinding so it cannot
   outlive the operation and race a later quiescent gc. *)
let fork_join pool go1 go0 =
  let fut = Tpool.fork pool go1 in
  let r0 =
    try go0 ()
    with e ->
      Tpool.cancel pool fut;
      raise e
  in
  let r1 = Tpool.join pool fut in
  (r1, r0)

let par_apply pool man op f g =
  let tag, term =
    match op with
    | `And -> (tag_and, and_term)
    | `Or -> (tag_or, or_term)
    | `Xor -> (tag_xor, xor_term)
  in
  if Tpool.size pool <= 1 then apply man tag term f g
  else begin
    check_shared "Bdd.par_apply" pool man;
    let cutoff = par_cutoff pool in
    let rec go depth f g =
      match term man f g with
      | Some r -> r
      | None ->
          let f, g = if f.uid <= g.uid then (f, g) else (g, f) in
          let r = cache_find man man.op_cache tag f.uid g.uid in
          if r.uid >= 0 then r
          else if depth >= cutoff then apply man tag term f g
          else begin
            let lv = min (level man f) (level man g) in
            let v = man.level_var.(lv) in
            let f1, f0 = cofactors man f lv and g1, g0 = cofactors man g lv in
            let r1, r0 =
              fork_join pool
                (fun () -> go (depth + 1) f1 g1)
                (fun () -> go (depth + 1) f0 g0)
            in
            let r = mk_raw man v r1 r0 in
            cache_add man man.op_cache tag f.uid g.uid r;
            r
          end
    in
    go 0 f g
  end

let par_ite pool man f g h =
  if Tpool.size pool <= 1 then ite man f g h
  else begin
    check_shared "Bdd.par_ite" pool man;
    let cutoff = par_cutoff pool in
    (* same terminal rewrite chain as the sequential [ite] *)
    let rec go depth f g h =
      if is_true f then g
      else if is_false f then h
      else if g == h then g
      else if is_true g && is_false h then f
      else if f == g then go depth f man.tt h
      else if f == h then go depth f g man.ff
      else
        let r = cache_find man man.ite_cache f.uid g.uid h.uid in
        if r.uid >= 0 then r
        else if depth >= cutoff then ite man f g h
        else begin
          let lv = min (level man f) (min (level man g) (level man h)) in
          let v = man.level_var.(lv) in
          let f1, f0 = cofactors man f lv
          and g1, g0 = cofactors man g lv
          and h1, h0 = cofactors man h lv in
          let r1, r0 =
            fork_join pool
              (fun () -> go (depth + 1) f1 g1 h1)
              (fun () -> go (depth + 1) f0 g0 h0)
          in
          let r = mk_raw man v r1 r0 in
          cache_add man man.ite_cache f.uid g.uid h.uid r;
          r
        end
    in
    go 0 f g h
  end

let par_exist_and pool man ~vars f g =
  if Tpool.size pool <= 1 then and_exists man ~vars f g
  else begin
    check_shared "Bdd.par_exist_and" pool man;
    let cutoff = par_cutoff pool in
    let rec go depth vars f g =
      if is_false f || is_false g then man.ff
      else if is_true vars then band man f g
      else if is_true f then exists man ~vars g
      else if is_true g then exists man ~vars f
      else if f == g then exists man ~vars f
      else
        let f, g = if f.uid <= g.uid then (f, g) else (g, f) in
        let r = cache_find man man.andex_cache f.uid g.uid vars.uid in
        if r.uid >= 0 then r
        else if depth >= cutoff then and_exists man ~vars f g
        else begin
          let lf = level man f and lg = level man g and lc = level man vars in
          let lv = min lf lg in
          let r =
            if lc < lv then go depth (high vars) f g
            else
              let v = man.level_var.(lv) in
              let f1, f0 = cofactors man f lv
              and g1, g0 = cofactors man g lv in
              if lc = lv then begin
                let vars = high vars in
                let r1, r0 =
                  fork_join pool
                    (fun () -> go (depth + 1) vars f1 g1)
                    (fun () -> go (depth + 1) vars f0 g0)
                in
                bor man r1 r0
              end
              else
                let r1, r0 =
                  fork_join pool
                    (fun () -> go (depth + 1) vars f1 g1)
                    (fun () -> go (depth + 1) vars f0 g0)
                in
                mk_raw man v r1 r0
          in
          cache_add man man.andex_cache f.uid g.uid vars.uid r;
          r
        end
    in
    go 0 vars f g
  end
