type t = { uid : int; node : node }

and node =
  | Leaf of bool
  | N of { var : int; hi : t; lo : t }

type view =
  | False
  | True
  | Node of { var : int; hi : t; lo : t }

exception Node_limit

type man = {
  ff : t;
  tt : t;
  mutable node_limit : int option;
  mutable cache_limit : int;
  mutable next_uid : int;
  unique : (int * int * int, t) Hashtbl.t;
  mutable var_level : int array; (* variable -> level *)
  mutable level_var : int array; (* level -> variable *)
  mutable n_vars : int;
  ite_cache : (int * int * int, t) Hashtbl.t;
  op_cache : (int * int * int, t) Hashtbl.t; (* (tag, uid1, uid2) *)
  not_cache : (int, t) Hashtbl.t;
  exist_cache : (int * int, t) Hashtbl.t;
  andex_cache : (int * int * int, t) Hashtbl.t;
  constrain_cache : (int * int, t) Hashtbl.t;
  restrict_cache : (int * int, t) Hashtbl.t;
  leq_cache : (int * int, bool) Hashtbl.t;
  weight_cache : (int, float) Hashtbl.t;
  mutable nodes_made : int;
  mutable peak_unique : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable tick : (unit -> unit) option;
  mutable tick_countdown : int;
}

let tag_and = 0
let tag_or = 1
let tag_xor = 2

(* Node creations between two invocations of the tick hook: frequent enough
   that a runaway operation is interrupted promptly, rare enough that the
   hook costs nothing on the hot path. *)
let tick_period = 256

(* ------------------------------------------------------------------ *)
(* Managers and variables                                             *)
(* ------------------------------------------------------------------ *)

let create ?(nvars = 0) () =
  let ff = { uid = 0; node = Leaf false } in
  let tt = { uid = 1; node = Leaf true } in
  let man =
    {
      ff;
      tt;
      node_limit = None;
      cache_limit = 2_000_000;
      next_uid = 2;
      unique = Hashtbl.create 4096;
      var_level = Array.init (max nvars 16) (fun i -> i);
      level_var = Array.init (max nvars 16) (fun i -> i);
      n_vars = nvars;
      ite_cache = Hashtbl.create 4096;
      op_cache = Hashtbl.create 4096;
      not_cache = Hashtbl.create 1024;
      exist_cache = Hashtbl.create 1024;
      andex_cache = Hashtbl.create 1024;
      constrain_cache = Hashtbl.create 256;
      restrict_cache = Hashtbl.create 256;
      leq_cache = Hashtbl.create 1024;
      weight_cache = Hashtbl.create 1024;
      nodes_made = 0;
      peak_unique = 0;
      cache_hits = 0;
      cache_misses = 0;
      tick = None;
      tick_countdown = tick_period;
    }
  in
  man

let nvars man = man.n_vars
let tt man = man.tt
let ff man = man.ff
let id f = f.uid
let equal f g = f == g

let view f =
  match f.node with
  | Leaf false -> False
  | Leaf true -> True
  | N { var; hi; lo } -> Node { var; hi; lo }

let is_const f = match f.node with Leaf _ -> true | N _ -> false
let is_true f = f.uid = 1
let is_false f = f.uid = 0

let topvar f =
  match f.node with
  | N { var; _ } -> var
  | Leaf _ -> invalid_arg "Bdd.topvar: constant"

let high f =
  match f.node with
  | N { hi; _ } -> hi
  | Leaf _ -> invalid_arg "Bdd.high: constant"

let low f =
  match f.node with
  | N { lo; _ } -> lo
  | Leaf _ -> invalid_arg "Bdd.low: constant"

let level_of_var man v =
  if v < 0 || v >= man.n_vars then invalid_arg "Bdd.level_of_var";
  man.var_level.(v)

let var_at_level man l =
  if l < 0 || l >= man.n_vars then invalid_arg "Bdd.var_at_level";
  man.level_var.(l)

let order man = Array.sub man.level_var 0 man.n_vars

(* Level of the root node; constants sink below every variable. *)
let level man f =
  match f.node with Leaf _ -> max_int | N { var; _ } -> man.var_level.(var)

let grow_vars man n =
  let cap = Array.length man.var_level in
  if n > cap then begin
    let cap' = max n (2 * cap) in
    let vl = Array.init cap' (fun i -> i)
    and lv = Array.init cap' (fun i -> i) in
    Array.blit man.var_level 0 vl 0 man.n_vars;
    Array.blit man.level_var 0 lv 0 man.n_vars;
    man.var_level <- vl;
    man.level_var <- lv
  end;
  (* fresh variables enter at the bottom of the order *)
  for v = man.n_vars to n - 1 do
    man.var_level.(v) <- v;
    man.level_var.(v) <- v
  done;
  man.n_vars <- max man.n_vars n

(* Unchecked hash-consed constructor: callers guarantee the ordering
   invariant. *)
let mk_raw man var hi lo =
  if hi == lo then hi
  else
    let key = (var, hi.uid, lo.uid) in
    match Hashtbl.find_opt man.unique key with
    | Some n -> n
    | None ->
        (match man.node_limit with
        | Some limit when Hashtbl.length man.unique >= limit ->
            raise Node_limit
        | Some _ | None -> ());
        let n = { uid = man.next_uid; node = N { var; hi; lo } } in
        man.next_uid <- man.next_uid + 1;
        man.nodes_made <- man.nodes_made + 1;
        Hashtbl.add man.unique key n;
        let live = Hashtbl.length man.unique in
        if live > man.peak_unique then man.peak_unique <- live;
        (match man.tick with
        | None -> ()
        | Some fn ->
            man.tick_countdown <- man.tick_countdown - 1;
            if man.tick_countdown <= 0 then begin
              man.tick_countdown <- tick_period;
              fn ()
            end);
        n

let mk man ~var ~hi ~lo =
  if var < 0 || var >= man.n_vars then invalid_arg "Bdd.mk: unknown variable";
  let lv = man.var_level.(var) in
  if level man hi <= lv || level man lo <= lv then
    invalid_arg "Bdd.mk: children must lie below the variable";
  mk_raw man var hi lo

let ithvar man i =
  if i < 0 then invalid_arg "Bdd.ithvar";
  if i >= man.n_vars then grow_vars man (i + 1);
  mk_raw man i man.tt man.ff

let nithvar man i =
  if i < 0 then invalid_arg "Bdd.nithvar";
  if i >= man.n_vars then grow_vars man (i + 1);
  mk_raw man i man.ff man.tt

let new_var man = ithvar man man.n_vars

(* Cofactors of [f] with respect to the variable at level [lv]. *)
let cofactors man f lv =
  match f.node with
  | Leaf _ -> (f, f)
  | N { var; hi; lo } -> if man.var_level.(var) = lv then (hi, lo) else (f, f)

(* Bounded cache insertion: operation caches are unbounded hash tables, so
   a single huge operation could otherwise grow them far beyond the live
   node count (CUDD bounds its computed table the same way). *)
let cache_add man tbl key v =
  if Hashtbl.length tbl >= man.cache_limit then Hashtbl.reset tbl;
  Hashtbl.add tbl key v

(* Operation-cache probe with hit/miss accounting for {!stats}. *)
let cache_find man tbl key =
  match Hashtbl.find_opt tbl key with
  | Some _ as r ->
      man.cache_hits <- man.cache_hits + 1;
      r
  | None ->
      man.cache_misses <- man.cache_misses + 1;
      None

(* ------------------------------------------------------------------ *)
(* ITE and the binary connectives                                     *)
(* ------------------------------------------------------------------ *)

let rec ite man f g h =
  if is_true f then g
  else if is_false f then h
  else if g == h then g
  else if is_true g && is_false h then f
  else if f == g then ite man f man.tt h
  else if f == h then ite man f g man.ff
  else
    let key = (f.uid, g.uid, h.uid) in
    match cache_find man man.ite_cache key with
    | Some r -> r
    | None ->
        let lv = min (level man f) (min (level man g) (level man h)) in
        let v = man.level_var.(lv) in
        let f1, f0 = cofactors man f lv
        and g1, g0 = cofactors man g lv
        and h1, h0 = cofactors man h lv in
        let r1 = ite man f1 g1 h1 and r0 = ite man f0 g0 h0 in
        let r = mk_raw man v r1 r0 in
        cache_add man man.ite_cache key r;
        r

let rec bnot man f =
  if is_true f then man.ff
  else if is_false f then man.tt
  else
    match cache_find man man.not_cache f.uid with
    | Some r -> r
    | None ->
        let r = mk_raw man (topvar f) (bnot man (high f)) (bnot man (low f)) in
        Hashtbl.add man.not_cache f.uid r;
        Hashtbl.replace man.not_cache r.uid f;
        r

(* Binary apply with terminal-case functions, sharing one tagged cache. *)
let rec apply man tag term f g =
  match term man f g with
  | Some r -> r
  | None -> (
      (* commutative: normalize the argument order for better cache reuse *)
      let f, g = if f.uid <= g.uid then (f, g) else (g, f) in
      let key = (tag, f.uid, g.uid) in
      match cache_find man man.op_cache key with
      | Some r -> r
      | None ->
          let lv = min (level man f) (level man g) in
          let v = man.level_var.(lv) in
          let f1, f0 = cofactors man f lv and g1, g0 = cofactors man g lv in
          let r1 = apply man tag term f1 g1
          and r0 = apply man tag term f0 g0 in
          let r = mk_raw man v r1 r0 in
          cache_add man man.op_cache key r;
          r)

let and_term man f g =
  if is_false f || is_false g then Some man.ff
  else if is_true f then Some g
  else if is_true g then Some f
  else if f == g then Some f
  else None

let or_term man f g =
  if is_true f || is_true g then Some man.tt
  else if is_false f then Some g
  else if is_false g then Some f
  else if f == g then Some f
  else None

let xor_term man f g =
  if f == g then Some man.ff
  else if is_false f then Some g
  else if is_false g then Some f
  else if is_true f then Some (bnot man g)
  else if is_true g then Some (bnot man f)
  else None

let band man f g = apply man tag_and and_term f g
let bor man f g = apply man tag_or or_term f g
let bxor man f g = apply man tag_xor xor_term f g
let bnand man f g = bnot man (band man f g)
let bnor man f g = bnot man (bor man f g)
let biff man f g = bnot man (bxor man f g)
let bimp man f g = ite man f g man.tt
let bdiff man f g = ite man g man.ff f
let conj man fs = List.fold_left (band man) man.tt fs
let disj man fs = List.fold_left (bor man) man.ff fs

(* satisfiability of a conjunction without building it *)
let intersects man f g =
  let seen = Hashtbl.create 64 in
  let rec go f g =
    if is_false f || is_false g then false
    else if is_true f || is_true g || f == g then true
    else
      let f, g = if f.uid <= g.uid then (f, g) else (g, f) in
      let key = (f.uid, g.uid) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        let lv = min (level man f) (level man g) in
        let f1, f0 = cofactors man f lv and g1, g0 = cofactors man g lv in
        go f1 g1 || go f0 g0
      end
  in
  go f g

let rec leq man f g =
  if f == g || is_false f || is_true g then true
  else if is_true f || is_false g then false
  else
    let key = (f.uid, g.uid) in
    match cache_find man man.leq_cache key with
    | Some r -> r
    | None ->
        let lv = min (level man f) (level man g) in
        let f1, f0 = cofactors man f lv and g1, g0 = cofactors man g lv in
        let r = leq man f1 g1 && leq man f0 g0 in
        cache_add man man.leq_cache key r;
        r

(* ------------------------------------------------------------------ *)
(* Cofactors, composition                                             *)
(* ------------------------------------------------------------------ *)

let cofactor man f ~var b =
  if var < 0 || var >= man.n_vars then invalid_arg "Bdd.cofactor";
  let lv = man.var_level.(var) in
  let memo = Hashtbl.create 64 in
  let rec go f =
    if level man f > lv then f
    else if level man f = lv then if b then high f else low f
    else
      match Hashtbl.find_opt memo f.uid with
      | Some r -> r
      | None ->
          let r = mk_raw man (topvar f) (go (high f)) (go (low f)) in
          Hashtbl.add memo f.uid r;
          r
  in
  go f

let vector_compose man f subst =
  let memo = Hashtbl.create 64 in
  let rec go f =
    match f.node with
    | Leaf _ -> f
    | N { var; hi; lo } -> (
        match Hashtbl.find_opt memo f.uid with
        | Some r -> r
        | None ->
            let hi' = go hi and lo' = go lo in
            let gv =
              match subst var with Some g -> g | None -> ithvar man var
            in
            let r = ite man gv hi' lo' in
            Hashtbl.add memo f.uid r;
            r)
  in
  go f

let compose man f ~var g =
  vector_compose man f (fun v -> if v = var then Some g else None)

let permute man f p =
  vector_compose man f (fun v -> Some (ithvar man (p v)))

(* ------------------------------------------------------------------ *)
(* Cubes and quantification                                           *)
(* ------------------------------------------------------------------ *)

let cube man vars =
  let vars =
    List.sort_uniq
      (fun a b -> compare (level_of_var man b) (level_of_var man a))
      vars
  in
  (* deepest variable first so that mk_raw builds bottom-up *)
  List.fold_left (fun acc v -> mk_raw man v acc man.ff) man.tt vars

let cube_of_literals man lits =
  let lits =
    List.sort_uniq
      (fun (a, _) (b, _) ->
        compare (level_of_var man b) (level_of_var man a))
      lits
  in
  List.fold_left
    (fun acc (v, b) ->
      if b then mk_raw man v acc man.ff else mk_raw man v man.ff acc)
    man.tt lits

let rec exists man ~vars f =
  if is_const f || is_true vars then f
  else if is_false vars then invalid_arg "Bdd.exists: not a cube"
  else
    let lf = level man f and lc = level man vars in
    if lc < lf then exists man ~vars:(high vars) f
    else
      let key = (f.uid, vars.uid) in
      match cache_find man man.exist_cache key with
      | Some r -> r
      | None ->
          let r =
            if lc = lf then
              let vars = high vars in
              bor man (exists man ~vars (high f)) (exists man ~vars (low f))
            else
              mk_raw man (topvar f)
                (exists man ~vars (high f))
                (exists man ~vars (low f))
          in
          cache_add man man.exist_cache key r;
          r

let forall man ~vars f = bnot man (exists man ~vars (bnot man f))

let rec and_exists man ~vars f g =
  if is_false f || is_false g then man.ff
  else if is_true vars then band man f g
  else if is_true f then exists man ~vars g
  else if is_true g then exists man ~vars f
  else if f == g then exists man ~vars f
  else
    let f, g = if f.uid <= g.uid then (f, g) else (g, f) in
    let key = (f.uid, g.uid, vars.uid) in
    match cache_find man man.andex_cache key with
    | Some r -> r
    | None ->
        let lf = level man f and lg = level man g and lc = level man vars in
        let lv = min lf lg in
        let r =
          if lc < lv then and_exists man ~vars:(high vars) f g
          else
            let v = man.level_var.(lv) in
            let f1, f0 = cofactors man f lv
            and g1, g0 = cofactors man g lv in
            if lc = lv then
              let vars = high vars in
              bor man
                (and_exists man ~vars f1 g1)
                (and_exists man ~vars f0 g0)
            else
              mk_raw man v
                (and_exists man ~vars f1 g1)
                (and_exists man ~vars f0 g0)
        in
        cache_add man man.andex_cache key r;
        r

(* ------------------------------------------------------------------ *)
(* Generalized cofactors                                              *)
(* ------------------------------------------------------------------ *)

let rec constrain_rec man f c =
  if is_true c || is_const f then f
  else if f == c then man.tt
  else
    let key = (f.uid, c.uid) in
    match cache_find man man.constrain_cache key with
    | Some r -> r
    | None ->
        let lv = min (level man f) (level man c) in
        let v = man.level_var.(lv) in
        let f1, f0 = cofactors man f lv and c1, c0 = cofactors man c lv in
        let r =
          if is_false c0 then constrain_rec man f1 c1
          else if is_false c1 then constrain_rec man f0 c0
          else mk_raw man v (constrain_rec man f1 c1) (constrain_rec man f0 c0)
        in
        cache_add man man.constrain_cache key r;
        r

let constrain man f c =
  if is_false c then invalid_arg "Bdd.constrain: empty care set";
  constrain_rec man f c

let rec restrict_rec man f c =
  if is_true c || is_const f then f
  else if f == c then man.tt
  else
    let key = (f.uid, c.uid) in
    match cache_find man man.restrict_cache key with
    | Some r -> r
    | None ->
        let lf = level man f and lc = level man c in
        let r =
          if lc < lf then
            (* the care set constrains a variable f does not mention:
               quantify it out of c *)
            restrict_rec man f (bor man (high c) (low c))
          else
            let v = topvar f in
            let c1, c0 = if lc = lf then (high c, low c) else (c, c) in
            if is_false c0 then restrict_rec man (high f) c1
            else if is_false c1 then restrict_rec man (low f) c0
            else
              mk_raw man v
                (restrict_rec man (high f) c1)
                (restrict_rec man (low f) c0)
        in
        cache_add man man.restrict_cache key r;
        r

let restrict man f c =
  if is_false c then invalid_arg "Bdd.restrict: empty care set";
  restrict_rec man f c

(* ------------------------------------------------------------------ *)
(* Counting and analysis                                              *)
(* ------------------------------------------------------------------ *)

let iter_nodes fn f =
  let seen = Hashtbl.create 64 in
  let rec go f =
    match f.node with
    | Leaf _ -> ()
    | N { hi; lo; _ } ->
        if not (Hashtbl.mem seen f.uid) then begin
          Hashtbl.add seen f.uid ();
          go hi;
          go lo;
          fn f
        end
  in
  go f

let fold_nodes fn acc f =
  let acc = ref acc in
  iter_nodes (fun n -> acc := fn !acc n) f;
  !acc

let nodes f = List.rev (fold_nodes (fun acc n -> n :: acc) [] f)
let size f = fold_nodes (fun n _ -> n + 1) 0 f

let shared_size fs =
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  let rec go f =
    match f.node with
    | Leaf _ -> ()
    | N { hi; lo; _ } ->
        if not (Hashtbl.mem seen f.uid) then begin
          Hashtbl.add seen f.uid ();
          incr count;
          go hi;
          go lo
        end
  in
  List.iter go fs;
  !count

let rec weight man f =
  if is_false f then 0.
  else if is_true f then 1.
  else
    match Hashtbl.find_opt man.weight_cache f.uid with
    | Some w -> w
    | None ->
        let w = 0.5 *. (weight man (high f) +. weight man (low f)) in
        Hashtbl.add man.weight_cache f.uid w;
        w

let count_minterms man f ~nvars = ldexp (weight man f) nvars

let density man f ~nvars =
  count_minterms man f ~nvars /. float_of_int (max 1 (size f))

let count_paths _man f =
  let memo = Hashtbl.create 64 in
  let rec go f =
    match f.node with
    | Leaf _ -> 1.
    | N { hi; lo; _ } -> (
        match Hashtbl.find_opt memo f.uid with
        | Some p -> p
        | None ->
            let p = go hi +. go lo in
            Hashtbl.add memo f.uid p;
            p)
  in
  go f

let support man f =
  let seen = Hashtbl.create 16 in
  iter_nodes (fun n -> Hashtbl.replace seen (topvar n) ()) f;
  let vars = Hashtbl.fold (fun v () acc -> v :: acc) seen [] in
  List.sort
    (fun a b -> compare (level_of_var man a) (level_of_var man b))
    vars

let support_cube man f = cube man (support man f)

let eval _man f asg =
  let rec go f =
    match f.node with
    | Leaf b -> b
    | N { var; hi; lo } -> if asg var then go hi else go lo
  in
  go f

let any_sat _man f =
  let rec go acc f =
    match f.node with
    | Leaf true -> List.rev acc
    | Leaf false -> raise Not_found
    | N { var; hi; lo } ->
        if is_false hi then go ((var, false) :: acc) lo
        else go ((var, true) :: acc) hi
  in
  go [] f

let iter_sat _man ?(limit = max_int) f fn =
  let remaining = ref limit in
  let exception Done in
  let rec go acc f =
    if !remaining <= 0 then raise Done;
    match f.node with
    | Leaf false -> ()
    | Leaf true ->
        decr remaining;
        fn (List.rev acc)
    | N { var; hi; lo } ->
        go ((var, true) :: acc) hi;
        go ((var, false) :: acc) lo
  in
  try go [] f with Done -> ()

(* ------------------------------------------------------------------ *)
(* Interval minimization                                              *)
(* ------------------------------------------------------------------ *)

let squeeze man ~lower ~upper =
  if not (leq man lower upper) then invalid_arg "Bdd.squeeze: lower > upper";
  if lower == upper then lower
  else
    let care = bor man lower (bnot man upper) in
    let candidates =
      if is_false care then [ lower; upper ]
      else [ restrict man lower care; lower; upper ]
    in
    let best g acc = if size g < size acc then g else acc in
    match candidates with
    | [] -> lower
    | first :: rest -> List.fold_left (fun acc g -> best g acc) first rest

(* ------------------------------------------------------------------ *)
(* Manager maintenance                                                *)
(* ------------------------------------------------------------------ *)

let clear_caches man =
  Hashtbl.reset man.ite_cache;
  Hashtbl.reset man.op_cache;
  Hashtbl.reset man.not_cache;
  Hashtbl.reset man.exist_cache;
  Hashtbl.reset man.andex_cache;
  Hashtbl.reset man.constrain_cache;
  Hashtbl.reset man.restrict_cache;
  Hashtbl.reset man.leq_cache;
  Hashtbl.reset man.weight_cache

let gc man ~roots =
  let live = Hashtbl.create 1024 in
  let rec mark f =
    match f.node with
    | Leaf _ -> ()
    | N { hi; lo; _ } ->
        if not (Hashtbl.mem live f.uid) then begin
          Hashtbl.add live f.uid ();
          mark hi;
          mark lo
        end
  in
  List.iter mark roots;
  let before = Hashtbl.length man.unique in
  let dead = ref [] in
  Hashtbl.iter
    (fun key n -> if not (Hashtbl.mem live n.uid) then dead := key :: !dead)
    man.unique;
  List.iter (Hashtbl.remove man.unique) !dead;
  clear_caches man;
  before - Hashtbl.length man.unique

let unique_size man = Hashtbl.length man.unique
let set_node_limit man limit = man.node_limit <- limit
let set_cache_limit man n = man.cache_limit <- max 1024 n
let node_limit man = man.node_limit

let set_tick man fn =
  man.tick <- fn;
  man.tick_countdown <- tick_period

let stats man =
  [
    ("nodes_made", man.nodes_made);
    ("unique_size", Hashtbl.length man.unique);
    ("peak_unique", man.peak_unique);
    ("cache_hits", man.cache_hits);
    ("cache_misses", man.cache_misses);
    ("ite_cache", Hashtbl.length man.ite_cache);
    ("op_cache", Hashtbl.length man.op_cache);
    ("n_vars", man.n_vars);
  ]

let reorder man ~order:level_var ~roots =
  if Array.length level_var <> man.n_vars then
    invalid_arg "Bdd.reorder: bad permutation length";
  let seen = Array.make man.n_vars false in
  Array.iter
    (fun v ->
      if v < 0 || v >= man.n_vars || seen.(v) then
        invalid_arg "Bdd.reorder: not a permutation";
      seen.(v) <- true)
    level_var;
  (* Old nodes stay valid records but leave the unique table; new nodes are
     built under the new order. *)
  Hashtbl.reset man.unique;
  clear_caches man;
  for l = 0 to man.n_vars - 1 do
    man.level_var.(l) <- level_var.(l);
    man.var_level.(level_var.(l)) <- l
  done;
  let memo = Hashtbl.create 1024 in
  let rec rebuild f =
    match f.node with
    | Leaf _ -> f
    | N { var; hi; lo } -> (
        match Hashtbl.find_opt memo f.uid with
        | Some r -> r
        | None ->
            let hi' = rebuild hi and lo' = rebuild lo in
            let r = ite man (ithvar man var) hi' lo' in
            Hashtbl.add memo f.uid r;
            r)
  in
  List.map rebuild roots

(* ------------------------------------------------------------------ *)
(* Serialization and cross-manager transfer                           *)
(* ------------------------------------------------------------------ *)

type serialized = {
  s_nvars : int;
  s_order : int array;
  s_nodes : (int * int * int) array;
  s_roots : int array;
}

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let export_list man roots =
  let index = Hashtbl.create 256 in
  (* uid -> serialized index *)
  let idx f =
    if is_false f then 0
    else if is_true f then 1
    else Hashtbl.find index f.uid
  in
  let rev_nodes = ref [] and count = ref 0 in
  let rec go f =
    match f.node with
    | Leaf _ -> ()
    | N { var; hi; lo } ->
        if not (Hashtbl.mem index f.uid) then begin
          go hi;
          go lo;
          (* children first, so every child index is already assigned *)
          rev_nodes := (var, idx hi, idx lo) :: !rev_nodes;
          Hashtbl.add index f.uid (!count + 2);
          incr count
        end
  in
  List.iter go roots;
  {
    s_nvars = man.n_vars;
    s_order = Array.sub man.level_var 0 man.n_vars;
    s_nodes = Array.of_list (List.rev !rev_nodes);
    s_roots = Array.of_list (List.map idx roots);
  }

let export man f = export_list man [ f ]

let import_list man s =
  if s.s_nvars < 0 then corrupt "Bdd.import: negative variable count";
  if Array.length s.s_order <> s.s_nvars then
    corrupt "Bdd.import: order length %d does not match %d variables"
      (Array.length s.s_order) s.s_nvars;
  Array.iter
    (fun v ->
      if v < 0 || v >= s.s_nvars then
        corrupt "Bdd.import: order entry %d out of range" v)
    s.s_order;
  let n = Array.length s.s_nodes in
  let built = Array.make (n + 2) man.ff in
  built.(1) <- man.tt;
  Array.iteri
    (fun i (var, hi, lo) ->
      if var < 0 || var >= s.s_nvars then
        corrupt "Bdd.import: node %d has variable %d outside [0,%d)" i var
          s.s_nvars;
      if hi < 0 || hi >= i + 2 then
        corrupt "Bdd.import: node %d has then-child %d (not below it)" i hi;
      if lo < 0 || lo >= i + 2 then
        corrupt "Bdd.import: node %d has else-child %d (not below it)" i lo;
      let hi = built.(hi) and lo = built.(lo) in
      if var >= man.n_vars then grow_vars man (var + 1);
      let lv = man.var_level.(var) in
      let r =
        (* Fast path when the destination order agrees with the source
           layering at this node: a plain hash-consed constructor.  When
           the orders differ (or the input is dubious) fall back to a full
           ITE against the variable, which is correct under any order. *)
        if level man hi > lv && level man lo > lv then mk_raw man var hi lo
        else ite man (ithvar man var) hi lo
      in
      built.(i + 2) <- r)
    s.s_nodes;
  Array.to_list
    (Array.map
       (fun r ->
         if r < 0 || r >= n + 2 then
           corrupt "Bdd.import: root index %d out of range" r;
         built.(r))
       s.s_roots)

let import man s =
  match s.s_roots with
  | [| _ |] -> List.hd (import_list man s)
  | _ ->
      corrupt "Bdd.import: expected exactly one root, found %d"
        (Array.length s.s_roots)

(* Binary format: the magic string "BDD1" followed by unsigned LEB128
   varints — nvars, the order array, the node count, (var, hi, lo) per
   node, the root count, and the root indices. *)

let add_varint buf n =
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  if n < 0 then invalid_arg "Bdd: cannot serialize a negative integer";
  go n

let magic = "BDD1"

let serialized_to_string s =
  let buf = Buffer.create (16 + (4 * Array.length s.s_nodes)) in
  Buffer.add_string buf magic;
  add_varint buf s.s_nvars;
  Array.iter (add_varint buf) s.s_order;
  add_varint buf (Array.length s.s_nodes);
  Array.iter
    (fun (v, h, l) ->
      add_varint buf v;
      add_varint buf h;
      add_varint buf l)
    s.s_nodes;
  add_varint buf (Array.length s.s_roots);
  Array.iter (add_varint buf) s.s_roots;
  Buffer.contents buf

let serialized_of_string str =
  let len = String.length str in
  if len < 4 || String.sub str 0 4 <> magic then
    corrupt "Bdd.serialized_of_string: bad magic";
  let pos = ref 4 in
  let byte () =
    if !pos >= len then corrupt "Bdd.serialized_of_string: truncated input";
    let c = Char.code str.[!pos] in
    incr pos;
    c
  in
  let varint () =
    let rec go shift acc =
      if shift > 62 then corrupt "Bdd.serialized_of_string: varint overflow";
      let b = byte () in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0
  in
  (* every element takes at least one byte, so an announced length beyond
     the remaining input is corrupt — checked before allocating *)
  let counted what n =
    if n > len - !pos then
      corrupt "Bdd.serialized_of_string: %s count %d exceeds input" what n;
    n
  in
  let nvars = varint () in
  let order = Array.init (counted "order" nvars) (fun _ -> varint ()) in
  let nnodes = varint () in
  let nodes =
    Array.init (counted "node" nnodes) (fun _ ->
        let v = varint () in
        let h = varint () in
        let l = varint () in
        (v, h, l))
  in
  let nroots = varint () in
  let roots = Array.init (counted "root" nroots) (fun _ -> varint ()) in
  if !pos <> len then corrupt "Bdd.serialized_of_string: trailing garbage";
  { s_nvars = nvars; s_order = order; s_nodes = nodes; s_roots = roots }

let save path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (serialized_to_string s))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> serialized_of_string (really_input_string ic (in_channel_length ic)))
