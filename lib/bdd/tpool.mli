(** Fork/join task pool over work-stealing deques.

    The execution substrate of the parallel kernel operations
    ({!Bdd.par_apply}, {!Bdd.par_ite}, {!Bdd.par_exist_and}): a fixed set
    of helper domains plus the calling domain, fed through per-slot
    {!Wsdeque}s.  Joining a pending future {e helps} — the joiner runs
    other queued tasks instead of blocking — so fork/join trees of any
    depth cannot deadlock on a finite pool, and a pool of size 1 simply
    runs everything inline.

    A pool is manager-agnostic (tasks are plain thunks) and safe to share
    between concurrent operations and managers.  Callers higher up the
    stack usually want {!Mt.Par}, which adds metrics. *)

type t

type 'a future

val create : workers:int -> t
(** [create ~workers] spawns [workers - 1] helper domains (the calling
    domain is the pool's remaining worker whenever it forks and joins).
    [workers] is clamped to at least 1; [create ~workers:1] spawns
    nothing. *)

val size : t -> int
(** Total workers, helpers plus the caller.  [size t = 1] means fully
    sequential. *)

val fork : t -> (unit -> 'a) -> 'a future
(** Queue a task.  It may run on any helper domain, or inline in whoever
    joins it first. *)

val join : t -> 'a future -> 'a
(** Wait for a task, running other queued tasks while it is pending; the
    task's exception, if any, is re-raised here.
    @raise Invalid_argument on a cancelled future. *)

val cancel : t -> 'a future -> unit
(** Make sure the future's thunk is finished or will never start, then
    return.  The exception-safety valve: call it on a pending fork before
    unwinding so no orphan task outlives the operation that forked it.
    Idempotent; a completed future is left untouched. *)

val try_run_one : t -> bool
(** Run one queued task if any (false when all deques are empty).  Lets
    an idle external domain donate cycles to the pool. *)

val shutdown : t -> unit
(** Stop and join the helper domains.  Pending unclaimed tasks are not
    run.  The pool must not be used afterwards. *)

val stats : t -> int * int * int
(** [(forks, execs, steals)] since creation: tasks forked, tasks actually
    executed (forked minus cancelled-before-claim), and executions that
    crossed deques. *)
