(* Fork/join task pool over work-stealing deques (DESIGN.md §Parallel
   kernel).

   One pool = [workers - 1] helper domains plus whichever domain calls
   into it: a caller that joins a pending future does not block, it runs
   other tasks (a "helping" join), so the caller is always the pool's
   extra worker.  Tasks are forked by the parallel apply/ITE recursions in
   {!Bdd} above a depth cutoff, so their number per operation is small and
   bounded; the mutex-guarded {!Wsdeque} per slot is plenty.

   Claim protocol.  A future holds one atomic state cell:

     Todo f  --CAS-->  Running  -->  Done v | Raised e        (executed)
     Todo f  --CAS-->  Dropped                                 (cancelled)

   Whoever wins the CAS out of [Todo] owns the thunk.  The deque entry is
   a wrapper that tries the CAS and no-ops if it lost, so a future can sit
   in a deque after being claimed inline by a joiner or dropped by
   [cancel] — stale entries cost a failed CAS and nothing else.

   [join] re-raises an exception captured in the task.  [cancel] is the
   exception-safety valve for fork/compute/join sequences: after it
   returns, the future's thunk is either finished or will never run, so
   the caller may unwind (e.g. on [Bdd.Node_limit]) without leaving an
   orphan task mutating the shared manager behind its back.

   Idle helpers park on a condition variable.  A forker always takes the
   pool lock to broadcast; a helper re-checks the fork stamp under that
   same lock before sleeping, so the classic lost-wakeup interleaving
   (fork lands between the helper's last steal attempt and its wait)
   is impossible.  Fork rate is bounded by the recursion cutoffs, so the
   lock is quiet. *)

type 'a state =
  | Todo of (unit -> 'a)
  | Running
  | Done of 'a
  | Raised of exn
  | Dropped

type 'a future = { st : 'a state Atomic.t }

(* Deque items are pre-wrapped thunks so deques of one pool can carry
   futures of every result type. *)
type t = {
  size : int; (* helpers + the calling domain *)
  deques : (unit -> unit) Wsdeque.t array;
  stamp : int Atomic.t; (* bumped on every fork; sleep guard *)
  lock : Mutex.t;
  cond : Condition.t;
  mutable sleepers : int; (* guarded by [lock] *)
  stop : bool Atomic.t;
  mutable domains : unit Domain.t list;
  forks : int Atomic.t;
  execs : int Atomic.t;
  steals : int Atomic.t;
}

let size t = t.size

(* Every domain — helper, caller, or a foreign joiner — addresses the
   deque array by its domain id, so pushes always have a home slot and
   pops prefer it.  Collisions (two domains mapping to one slot) are
   harmless: the deque is mutex-guarded. *)
let[@inline] home t = (Domain.self () :> int) mod Array.length t.deques

let try_pop_or_steal t =
  let n = Array.length t.deques in
  let h = home t in
  match Wsdeque.pop t.deques.(h) with
  | Some _ as it -> it
  | None ->
      let rec scan i =
        if i >= n then None
        else
          let k = (h + i) mod n in
          match Wsdeque.steal t.deques.(k) with
          | Some _ as it ->
              Atomic.incr t.steals;
              it
          | None -> scan (i + 1)
      in
      scan 1

(* Run one pending task if any; the helping step of [join] and the body
   of the worker loop. *)
let try_run_one t =
  match try_pop_or_steal t with
  | Some task ->
      task ();
      true
  | None -> false

let rec worker_loop t =
  if not (Atomic.get t.stop) then begin
    let stamp = Atomic.get t.stamp in
    if try_run_one t then worker_loop t
    else begin
      Mutex.lock t.lock;
      (* sleep only if no fork landed since the failed scan: a forker
         bumps the stamp before taking this lock to broadcast *)
      if Atomic.get t.stamp = stamp && not (Atomic.get t.stop) then begin
        t.sleepers <- t.sleepers + 1;
        Condition.wait t.cond t.lock;
        t.sleepers <- t.sleepers - 1
      end;
      Mutex.unlock t.lock;
      worker_loop t
    end
  end

let create ~workers =
  let workers = max 1 workers in
  let n = max 1 workers in
  let t =
    {
      size = workers;
      deques = Array.init n (fun _ -> Wsdeque.create ());
      stamp = Atomic.make 0;
      lock = Mutex.create ();
      cond = Condition.create ();
      sleepers = 0;
      stop = Atomic.make false;
      domains = [];
      forks = Atomic.make 0;
      execs = Atomic.make 0;
      steals = Atomic.make 0;
    }
  in
  t.domains <-
    List.init (workers - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Atomic.set t.stop true;
  Mutex.lock t.lock;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- []

(* Claim the thunk out of [Todo] and run it.  Used by both the deque
   wrapper and the inline fast path of [join]. *)
let claim_and_run t fut =
  match Atomic.get fut.st with
  | Todo f as old ->
      if Atomic.compare_and_set fut.st old Running then begin
        Atomic.incr t.execs;
        match f () with
        | v -> Atomic.set fut.st (Done v)
        | exception e -> Atomic.set fut.st (Raised e)
      end
  | Running | Done _ | Raised _ | Dropped -> ()

let fork t f =
  let fut = { st = Atomic.make (Todo f) } in
  Wsdeque.push t.deques.(home t) (fun () -> claim_and_run t fut);
  Atomic.incr t.forks;
  Atomic.incr t.stamp;
  if t.size > 1 then begin
    Mutex.lock t.lock;
    if t.sleepers > 0 then Condition.broadcast t.cond;
    Mutex.unlock t.lock
  end;
  fut

let rec join t fut =
  match Atomic.get fut.st with
  | Todo _ ->
      claim_and_run t fut;
      join t fut
  | Running ->
      (* help: run someone else's task rather than spin *)
      if not (try_run_one t) then Domain.cpu_relax ();
      join t fut
  | Done v -> v
  | Raised e -> raise e
  | Dropped -> invalid_arg "Tpool.join: cancelled future"

let rec cancel t fut =
  match Atomic.get fut.st with
  | Todo _ as old ->
      if not (Atomic.compare_and_set fut.st old Dropped) then cancel t fut
  | Running ->
      (* someone is executing it right now: wait (helping) until it lands
         so the caller can unwind without leaving an orphan task *)
      if not (try_run_one t) then Domain.cpu_relax ();
      cancel t fut
  | Done _ | Raised _ | Dropped -> ()

let stats t =
  (Atomic.get t.forks, Atomic.get t.execs, Atomic.get t.steals)
