(** Work-stealing deque shared by {!Tpool} and [Mt.Runner]: the owning
    worker pushes and pops LIFO at the bottom, thieves steal FIFO from the
    top.  Safe for concurrent use from any number of domains. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
val steal : 'a t -> 'a option
