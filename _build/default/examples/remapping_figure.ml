(* Figure 1 of the paper: remapping in restrict.

   The figure shows f = x·f_t + x'·f_e minimized against a care set c whose
   else-branch is 0: sibling substitution replaces f_e by f_t, the x node
   becomes redundant, and the result is the remapped r.  This example
   builds the exact situation, runs Bdd.restrict, and prints both DAGs in
   DOT format (solid = then arcs, dashed = else arcs, as in the figure).

   Run with: dune exec examples/remapping_figure.exe *)

let () =
  let man = Bdd.create ~nvars:4 () in
  let x = Bdd.ithvar man 0 in
  let y = Bdd.ithvar man 1 in
  let z = Bdd.ithvar man 2 in
  (* f_t and f_e differ below x, so f tests x; the care set ignores x' *)
  let f_t = Bdd.bor man y z in
  let f_e = Bdd.bxor man y z in
  let f = Bdd.ite man x f_t f_e in
  let c = x in
  (* c = x: the else-child of the care set is the constant 0 *)
  let r = Bdd.restrict man f c in
  Printf.printf "f (size %d):\n%s\n" (Bdd.size f) (Dot.to_string man [ f ]);
  Printf.printf "care set c = x\n\n";
  Printf.printf "r = f ⇓ c (size %d):\n%s\n" (Bdd.size r)
    (Dot.to_string man [ r ]);
  (* the remapping contract: r agrees with f wherever c holds, and the x
     node is gone *)
  assert (Bdd.is_false (Bdd.band man c (Bdd.bxor man f r)));
  assert (Bdd.equal r f_t);
  Printf.printf
    "r agrees with f on c, and equals f_t: the else branch was remapped to\n\
     the then branch exactly as in Figure 1.\n"
