(* CTL model checking of the traffic-light controller: the liveness and
   safety questions the paper's introduction motivates, answered over the
   BDD substrate.

   Run with: dune exec examples/model_check_ctl.exe *)

let verdict name ok = Printf.printf "  %-44s %s\n" name (if ok then "holds" else "FAILS")

let () =
  let circuit = Generate.traffic_light () in
  Printf.printf "Circuit: %s\n\n" (Circuit.stats circuit);
  let trans = Trans.build (Compile.compile circuit) in
  let ck = Ctl.make trans in
  let ns = Ctl.output_possibly ck "ns_green" in
  let ew = Ctl.output_possibly ck "ew_green" in
  Printf.printf "CTL properties:\n";
  (* safety: the two greens are mutually exclusive everywhere *)
  verdict "AG ¬(ns_green ∧ ew_green)" (Ctl.holds ck (Ctl.AG (Ctl.Not (Ctl.And (ns, ew)))));
  (* possibility: from every state a north-south green is reachable *)
  verdict "AG EF ns_green" (Ctl.holds ck (Ctl.AG (Ctl.EF ns)));
  (* and an east-west green too *)
  verdict "AG EF ew_green" (Ctl.holds ck (Ctl.AG (Ctl.EF ew)));
  (* liveness that fails: without a car, the east-west light never comes *)
  verdict "AF ew_green (fails: needs a car)" (Ctl.holds ck (Ctl.AF ew));
  (* the conditional version does hold: once east-west is green it will
     hand the road back *)
  verdict "AG (ew_green → AF ns_green)"
    (Ctl.holds ck (Ctl.AG (Ctl.Implies (ew, Ctl.AF ns))));

  (* and a datapath example: the FIFO controller *)
  let fifo = Generate.fifo_controller ~depth:4 in
  Printf.printf "\nCircuit: %s\n\n" (Circuit.stats fifo);
  let compiled = Compile.compile fifo in
  let trans = Trans.build compiled in
  let ck = Ctl.make trans in
  let full = Ctl.output_possibly ck "full" in
  let empty = Ctl.output_possibly ck "empty" in
  Printf.printf "CTL properties:\n";
  verdict "AG ¬(full ∧ empty)" (Ctl.holds ck (Ctl.AG (Ctl.Not (Ctl.And (full, empty)))));
  verdict "AG EF full" (Ctl.holds ck (Ctl.AG (Ctl.EF full)));
  verdict "AG EF empty" (Ctl.holds ck (Ctl.AG (Ctl.EF empty)));
  verdict "AG (full → EX ¬full)" (Ctl.holds ck (Ctl.AG (Ctl.Implies (full, Ctl.EX (Ctl.Not full)))))
