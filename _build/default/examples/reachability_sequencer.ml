(* Reachability analysis of the am2910-like microprogram sequencer: exact
   breadth-first search vs. high-density traversal with RUA subsetting
   (the paper's Table 1 experiment, at example scale).

   Run with: dune exec examples/reachability_sequencer.exe *)

let run_engine name f =
  let t0 = Sys.time () in
  let r = f () in
  Printf.printf "  %-22s %12.6g states, %4d iterations, %5d images, %.2fs%s\n%!"
    name r.Traversal.states r.Traversal.iterations r.Traversal.images
    (Sys.time () -. t0)
    (if r.Traversal.exact then "" else "  [incomplete]")

let () =
  let circuit = Generate.microsequencer ~addr_bits:4 ~stack_depth:2 in
  Printf.printf "Circuit: %s\n" (Circuit.stats circuit);
  let fresh () = Trans.build (Compile.compile circuit) in
  Printf.printf "Traversals:\n";
  run_engine "BFS (exact)" (fun () -> Bfs.run (fresh ()));
  run_engine "HD + RUA" (fun () ->
      High_density.run
        ~params:{ High_density.default with meth = Approx.RUA }
        (fresh ()));
  run_engine "HD + SP (th 500)" (fun () ->
      High_density.run
        ~params:
          { High_density.default with meth = Approx.SP; threshold = 500 }
        (fresh ()));
  run_engine "HD + RUA + PImg" (fun () ->
      High_density.run
        ~params:{ High_density.default with pimg = Some (5000, 2000) }
        (fresh ()))
