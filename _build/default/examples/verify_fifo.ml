(* Safety verification of the FIFO controller: prove that the occupancy
   counter never overflows, then ask for a counterexample to the (false)
   claim that the FIFO never fills, and print the trace.

   Run with: dune exec examples/verify_fifo.exe *)

let () =
  let depth = 6 in
  let circuit = Generate.fifo_controller ~depth in
  Printf.printf "Circuit: %s\n\n" (Circuit.stats circuit);
  let compiled = Compile.compile circuit in
  let man = compiled.Compile.man in
  let trans = Trans.build compiled in
  let cur = Compile.cur_vars compiled in
  let count_is k =
    Bdd.cube_of_literals man
      (Array.to_list (Array.mapi (fun i v -> (v, k land (1 lsl i) <> 0)) cur))
  in
  (* property 1: the counter stays within [0, depth] *)
  let overflow =
    Bdd.disj man
      (List.filter_map
         (fun k -> if k > depth then Some (count_is k) else None)
         (List.init ((1 lsl Array.length cur)) Fun.id))
  in
  (match Invariant.check trans ~bad:overflow with
  | Invariant.Holds r ->
      Format.printf "overflow impossible: proved over %a@." Traversal.pp r
  | Invariant.Violated { depth; _ } ->
      Format.printf "BUG: overflow reachable in %d steps@." depth);
  (* property 2 (false): the FIFO never becomes full *)
  Printf.printf "\nChecking the false claim \"never full\":\n";
  match Invariant.check trans ~bad:(count_is depth) with
  | Invariant.Holds _ -> print_endline "unexpectedly proved!"
  | Invariant.Violated { depth = d; trace } ->
      Printf.printf "counterexample of length %d:\n" d;
      List.iteri
        (fun t cube ->
          let value =
            List.fold_left
              (fun acc (v, b) ->
                if b then
                  let bit =
                    (* position of v within the counter word *)
                    let rec find i =
                      if cur.(i) = v then i else find (i + 1)
                    in
                    find 0
                  in
                  acc lor (1 lsl bit)
                else acc)
              0 cube
          in
          Printf.printf "  step %2d: count = %d\n" t value)
        trace
