(* Quickstart: build a few BDDs, underapproximate them with every method of
   the paper, and decompose one conjunctively.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* a manager and some variables *)
  let man = Bdd.create ~nvars:12 () in
  let v = Bdd.ithvar man in

  (* an awkward function: a disjunction of overlapping products *)
  let f =
    Bdd.disj man
      [
        Bdd.conj man [ v 0; v 2; v 4 ];
        Bdd.conj man [ v 1; v 3; v 5 ];
        Bdd.conj man [ v 0; v 5; Bdd.bnot man (v 7) ];
        Bdd.conj man [ v 6; v 8; v 10 ];
        Bdd.conj man [ v 9; Bdd.bnot man (v 2); v 11 ];
      ]
  in
  let nvars = Bdd.nvars man in
  let describe name g =
    Printf.printf "  %-4s |g| = %3d  ||g|| = %10.0f  density = %8.2f  g ≤ f: %b\n"
      name (Bdd.size g)
      (Bdd.count_minterms man g ~nvars)
      (Bdd.density man g ~nvars)
      (Bdd.leq man g f)
  in
  Printf.printf "Underapproximations of f (Section 2 of the paper):\n";
  describe "F" f;
  List.iter
    (fun m -> describe (Approx.method_name m) (Approx.under man m f))
    Approx.all_methods;

  (* overapproximation by duality *)
  let over = Approx.over man Approx.RUA f in
  Printf.printf "\nOverapproximation (dual RUA): |g| = %d, f ≤ g: %b\n"
    (Bdd.size over) (Bdd.leq man f over);

  (* conjunctive decomposition (Section 3) *)
  Printf.printf "\nConjunctive decompositions of f:\n";
  let show name (p : Decomp.pair) =
    Printf.printf "  %-8s |G| = %3d  |H| = %3d  shared = %3d  G∧H = f: %b\n"
      name (Bdd.size p.Decomp.g) (Bdd.size p.Decomp.h) (Decomp.shared_size p)
      (Decomp.verify_conj man f p)
  in
  show "Cofactor" (Decomp.conj_cofactor man f);
  show "Band" (Decomp_points.band man f);
  show "Disjoint" (Decomp_points.disjoint man f);
  let gs = Mcmillan.decompose man f in
  Printf.printf "  McMillan %d factors, sizes [%s], ∧ = f: %b\n"
    (List.length gs)
    (String.concat "; " (List.map (fun g -> string_of_int (Bdd.size g)) gs))
    (Mcmillan.verify man f gs)
