(* Decompose the large next-state functions of a synthetic datapath with
   the three methods of the paper's Table 4 and report balance and shared
   size.

   Run with: dune exec examples/decompose_large.exe *)

let () =
  let entries =
    Pool.entries_of_circuit ~min_nodes:200
      (Generate.shifter_datapath ~width:10)
    @ Pool.entries_of_circuit ~min_nodes:200
        (Generate.random_netlist ~inputs:18 ~gates:120 ~outputs:4 ~seed:9)
  in
  Printf.printf "Pool: %s\n\n" (Pool.describe entries);
  List.iter
    (fun { Pool.man; f; label; _ } ->
      Printf.printf "%s  (|f| = %d)\n" label (Bdd.size f);
      List.iter
        (fun (name, fn) ->
          let p = fn man f in
          Printf.printf
            "  %-8s  |G| = %5d  |H| = %5d  shared = %5d  balance = %.2f  ok = %b\n"
            name (Bdd.size p.Decomp.g) (Bdd.size p.Decomp.h)
            (Decomp.shared_size p) (Decomp.balance p)
            (Decomp.verify_conj man f p))
        [
          ("Cofactor", Decomp.conj_cofactor);
          ("Band", fun m g -> Decomp_points.band m g);
          ("Disjoint", fun m g -> Decomp_points.disjoint m g);
        ])
    entries
