examples/remapping_figure.mli:
