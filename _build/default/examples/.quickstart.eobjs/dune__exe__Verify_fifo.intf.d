examples/verify_fifo.mli:
