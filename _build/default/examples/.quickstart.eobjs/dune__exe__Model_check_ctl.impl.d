examples/model_check_ctl.ml: Circuit Compile Ctl Generate Printf Trans
