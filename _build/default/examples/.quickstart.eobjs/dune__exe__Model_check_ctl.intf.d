examples/model_check_ctl.mli:
