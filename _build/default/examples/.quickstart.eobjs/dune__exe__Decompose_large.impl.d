examples/decompose_large.ml: Bdd Decomp Decomp_points Generate List Pool Printf
