examples/reachability_sequencer.ml: Approx Bfs Circuit Compile Generate High_density Printf Sys Trans Traversal
