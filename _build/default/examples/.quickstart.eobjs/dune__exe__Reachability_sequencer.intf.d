examples/reachability_sequencer.mli:
