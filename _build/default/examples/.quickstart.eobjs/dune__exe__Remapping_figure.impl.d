examples/remapping_figure.ml: Bdd Dot Printf
