examples/verify_fifo.ml: Array Bdd Circuit Compile Format Fun Generate Invariant List Printf Trans Traversal
