examples/quickstart.ml: Approx Bdd Decomp Decomp_points List Mcmillan Printf String
