examples/quickstart.mli:
