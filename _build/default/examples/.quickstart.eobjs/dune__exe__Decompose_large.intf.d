examples/decompose_large.mli:
