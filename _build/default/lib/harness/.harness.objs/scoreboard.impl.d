lib/harness/scoreboard.ml: Array Bdd Decomp List Pool Stats Tables
