lib/harness/tables.mli:
