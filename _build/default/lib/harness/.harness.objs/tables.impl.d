lib/harness/tables.ml: Array Buffer Float List Printf String
