lib/harness/stats.mli:
