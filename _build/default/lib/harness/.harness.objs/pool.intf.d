lib/harness/pool.mli: Bdd Circuit
