lib/harness/pool.ml: Array Bdd Circuit Compile Generate List Printf Stats
