lib/harness/scoreboard.mli: Bdd Decomp Pool
