(** Scoring of approximation and decomposition methods over a function
    pool — the rows of the paper's Tables 2, 3 and 4. *)

type approx_row = {
  name : string;
  nodes : float;  (** geometric mean of result sizes *)
  minterms : float;  (** geometric mean of result minterm counts *)
  density : float;  (** geometric mean of result densities *)
  wins : int;  (** instances where the method alone is densest *)
  ties : int;  (** instances where it shares the best density *)
}

val approx_table :
  Pool.entry list ->
  (string * (Bdd.man -> Bdd.t -> Bdd.t)) list ->
  approx_row list
(** Run each method on each pool entry.  Include the identity as ["F"] to
    reproduce the paper's first row. *)

val approx_headers : string list
val approx_rows : approx_row list -> string list list

type decomp_row = {
  dname : string;
  shared : float;  (** geometric mean shared size of the two factors *)
  g_size : float;
  h_size : float;
  dwins : int;  (** by the size of the larger factor, as in Table 4 *)
  dties : int;
}

val decomp_table :
  Pool.entry list ->
  (string * (Bdd.man -> Bdd.t -> Decomp.pair)) list ->
  decomp_row list

val decomp_headers : string list
val decomp_rows : decomp_row list -> string list list
