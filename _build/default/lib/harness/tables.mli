(** Plain-text table rendering for benchmark reports. *)

val render : headers:string list -> rows:string list list -> string
val print : headers:string list -> rows:string list list -> unit

(** Cell formatters. *)

val f1 : float -> string
(** One decimal, like the paper's node counts. *)

val sci : float -> string
(** Scientific notation, like the paper's minterm counts. *)

val int_ : int -> string
val secs : float -> string
