(* Plain-text table rendering for the benchmark reports. *)

let render ~headers ~rows =
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure headers;
  List.iter measure rows;
  let buf = Buffer.create 256 in
  let line row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  line headers;
  line (List.init ncols (fun i -> String.make widths.(i) '-'));
  List.iter line rows;
  Buffer.contents buf

let print ~headers ~rows = print_string (render ~headers ~rows)

let f1 x =
  if Float.is_nan x then "-"
  else if Float.is_integer x && abs_float x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.1f" x

let sci x =
  if Float.is_nan x then "-"
  else if abs_float x < 1e-200 then "0" (* geometric-mean clamp artifact *)
  else Printf.sprintf "%.2e" x

let int_ n = string_of_int n
let secs x = Printf.sprintf "%.2f" x
