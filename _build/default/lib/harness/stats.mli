(** Summary statistics for the experiment tables (the paper reports
    geometric means and wins/ties). *)

val geometric_mean : float list -> float
val arithmetic_mean : float list -> float
val median : float list -> float

val wins_and_ties :
  better:(float -> float -> bool) -> float array list -> (int * int) array
(** [wins_and_ties ~better scores] — [scores] holds one array per instance,
    indexed by method; [better a b] says score [a] is at least as good as
    [b].  Returns per-method (wins, ties): a win is being strictly best
    alone on an instance, a tie is sharing the best score (the paper's
    Tables 2–4 convention). *)

val pct_change : from_:float -> to_:float -> float
