(* Scoring of approximation and decomposition methods over a function pool,
   producing the rows of the paper's Tables 2, 3 and 4. *)

type approx_row = {
  name : string;
  nodes : float;
  minterms : float;
  density : float;
  wins : int;
  ties : int;
}

let approx_table entries methods =
  let per_method_nodes = Array.make (List.length methods) []
  and per_method_minterms = Array.make (List.length methods) []
  and per_method_density = Array.make (List.length methods) [] in
  let per_instance = ref [] in
  List.iter
    (fun { Pool.man; f; nvars; _ } ->
      let scores =
        Array.of_list
          (List.mapi
             (fun m (_, fn) ->
               let g = fn man f in
               let nodes = float_of_int (Bdd.size g) in
               let minterms = Bdd.count_minterms man g ~nvars in
               let density = minterms /. max nodes 1. in
               per_method_nodes.(m) <- nodes :: per_method_nodes.(m);
               per_method_minterms.(m) <- minterms :: per_method_minterms.(m);
               per_method_density.(m) <- density :: per_method_density.(m);
               density)
             methods)
      in
      per_instance := scores :: !per_instance)
    entries;
  (* density: higher is better; equality up to a tiny relative tolerance *)
  let better a b = a >= b -. (1e-9 *. abs_float b) in
  let wt = Stats.wins_and_ties ~better !per_instance in
  List.mapi
    (fun m (name, _) ->
      let wins, ties = wt.(m) in
      {
        name;
        nodes = Stats.geometric_mean per_method_nodes.(m);
        minterms = Stats.geometric_mean per_method_minterms.(m);
        density = Stats.geometric_mean per_method_density.(m);
        wins;
        ties;
      })
    methods

let approx_headers = [ "Method"; "nodes"; "minterms"; "density"; "wins"; "ties" ]

let approx_rows rows =
  List.map
    (fun r ->
      [
        r.name;
        Tables.f1 r.nodes;
        Tables.sci r.minterms;
        Tables.sci r.density;
        Tables.int_ r.wins;
        Tables.int_ r.ties;
      ])
    rows

type decomp_row = {
  dname : string;
  shared : float;
  g_size : float;
  h_size : float;
  dwins : int;
  dties : int;
}

let decomp_table entries methods =
  let n = List.length methods in
  let shared = Array.make n []
  and gs = Array.make n []
  and hs = Array.make n [] in
  let per_instance = ref [] in
  List.iter
    (fun { Pool.man; f; _ } ->
      let scores =
        Array.of_list
          (List.mapi
             (fun m (_, fn) ->
               let pair = fn man f in
               shared.(m) <-
                 float_of_int (Decomp.shared_size pair) :: shared.(m);
               gs.(m) <- float_of_int (Bdd.size pair.Decomp.g) :: gs.(m);
               hs.(m) <- float_of_int (Bdd.size pair.Decomp.h) :: hs.(m);
               (* Table 4 scores by the size of the larger factor *)
               float_of_int (Decomp.max_size pair))
             methods)
      in
      per_instance := scores :: !per_instance)
    entries;
  (* smaller max-factor is better *)
  let better a b = a <= b +. (1e-9 *. abs_float b) in
  let wt = Stats.wins_and_ties ~better !per_instance in
  List.mapi
    (fun m (dname, _) ->
      let dwins, dties = wt.(m) in
      {
        dname;
        shared = Stats.geometric_mean shared.(m);
        g_size = Stats.geometric_mean gs.(m);
        h_size = Stats.geometric_mean hs.(m);
        dwins;
        dties;
      })
    methods

let decomp_headers = [ "Method"; "Shared"; "G"; "H"; "wins"; "ties" ]

let decomp_rows rows =
  List.map
    (fun r ->
      [
        r.dname;
        Tables.f1 r.shared;
        Tables.f1 r.g_size;
        Tables.f1 r.h_size;
        Tables.int_ r.dwins;
        Tables.int_ r.dties;
      ])
    rows
