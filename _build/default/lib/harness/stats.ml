(* Summary statistics for the experiment tables. *)

let geometric_mean xs =
  match xs with
  | [] -> nan
  | _ ->
      let n = List.length xs in
      (* sum of logs; zero entries are clamped to keep the mean finite *)
      let logsum =
        List.fold_left (fun acc x -> acc +. log (max x 1e-300)) 0. xs
      in
      exp (logsum /. float_of_int n)

let arithmetic_mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let median xs =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
      let n = List.length sorted in
      if n mod 2 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.

(* wins/ties per the paper: a method wins on an instance when it is strictly
   best alone; it ties when it is best together with others.  [better a b]
   returns true when a is at least as good as b up to tolerance. *)
let wins_and_ties ~better per_instance_scores =
  (* per_instance_scores : score array list, one array per instance, indexed
     by method *)
  match per_instance_scores with
  | [] -> [||]
  | first :: _ ->
      let nmethods = Array.length first in
      let wins = Array.make nmethods 0 and ties = Array.make nmethods 0 in
      List.iter
        (fun scores ->
          let best_count = ref 0 in
          let is_best = Array.make nmethods false in
          for m = 0 to nmethods - 1 do
            let beats_all = ref true in
            for m' = 0 to nmethods - 1 do
              if m' <> m && not (better scores.(m) scores.(m')) then
                beats_all := false
            done;
            if !beats_all then begin
              is_best.(m) <- true;
              incr best_count
            end
          done;
          Array.iteri
            (fun m best ->
              if best then
                if !best_count = 1 then wins.(m) <- wins.(m) + 1
                else ties.(m) <- ties.(m) + 1)
            is_best)
        per_instance_scores;
      Array.init nmethods (fun m -> (wins.(m), ties.(m)))

let pct_change ~from_ ~to_ =
  if from_ = 0. then nan else 100. *. (to_ -. from_) /. from_
