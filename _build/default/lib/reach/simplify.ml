let minimize_one man care f =
  let g = Bdd.restrict man f care in
  if Bdd.size g < Bdd.size f then g else f

let with_care_set compiled ~care =
  let man = compiled.Compile.man in
  if Bdd.is_false care then invalid_arg "Simplify.with_care_set: empty care";
  let roots = Compile.roots compiled in
  match roots with
  | init :: rest ->
      Compile.with_roots compiled
        (init :: List.map (minimize_one man care) rest)
  | [] -> compiled

let with_reachable ?(engine = `Bfs) compiled =
  let trans = Trans.build compiled in
  let result =
    match engine with
    | `Bfs -> Bfs.run trans
    | `Hd -> High_density.run trans
  in
  let reached = result.Traversal.reached in
  (with_care_set compiled ~care:reached, reached)

let total_size compiled =
  (* skip the initial-state cube: only the functional roots matter *)
  match Compile.roots compiled with
  | _init :: fns -> Bdd.shared_size fns
  | [] -> 0
