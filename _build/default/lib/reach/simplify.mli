(** Don't-care minimization of a compiled circuit against its reachable
    states — the original use of the {e restrict} operator the paper
    builds on (Coudert–Madre): unreachable states are don't-cares, so every
    next-state and output function may be freely rewritten outside the
    reached set, usually shrinking the BDDs. *)

val with_care_set : Compile.t -> care:Bdd.t -> Compile.t
(** Rewrite every next-state and output function [f] as
    [Bdd.restrict f care] — each result agrees with the original wherever
    [care] holds (guarded to never grow: the original is kept when
    restrict backfires).  [care] ranges over current-state variables and
    must not be empty. *)

val with_reachable : ?engine:[ `Bfs | `Hd ] -> Compile.t -> Compile.t * Bdd.t
(** Compute the reachable states (default engine [`Bfs]) and minimize
    against them.  Returns the minimized circuit and the reached set.
    The minimized machine has exactly the same behaviour from the initial
    states: its reachable set and the restriction of every function to the
    reached states are unchanged (property-tested). *)

val total_size : Compile.t -> int
(** Shared size of all next-state and output functions (for before/after
    comparisons). *)
