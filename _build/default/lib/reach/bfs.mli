(** Exact breadth-first reachability analysis — the baseline the paper's
    Table 1 compares high-density traversal against. *)

val run :
  ?max_iter:int ->
  ?time_limit:float ->
  ?node_limit:int ->
  ?gc_start:int ->
  ?sift:bool ->
  Trans.t ->
  Traversal.result
(** Least fixpoint of [λR. init ∨ Img(R)] by frontier iteration.
    [time_limit] (CPU seconds) aborts the run, reporting [exact = false]
    — the analogue of the paper's "> 2 weeks" entry.  [node_limit] aborts
    when the live-node count still exceeds the limit after a collection —
    the analogue of the paper's 256 MB memory ceiling (s1269 needed a 1 GB
    machine; see DESIGN.md on emulating 1998 resource budgets).  [sift]
    (default false) enables dynamic variable reordering; it invalidates
    any BDD of the manager not owned by the traversal, including the
    compiled circuit functions. *)
