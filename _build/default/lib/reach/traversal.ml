(* Shared result record and maintenance hooks for the traversal engines. *)

type result = {
  reached : Bdd.t;  (* over present-state variables *)
  states : float;  (* number of reachable states *)
  iterations : int;
  images : int;  (* image computations performed *)
  peak_live_nodes : int;  (* high-water mark of the unique table *)
  peak_product : int;  (* largest intermediate image product *)
  partial_approximations : int;  (* times a product was subsetted *)
  cpu_seconds : float;
  exact : bool;  (* the full fixpoint was provably reached *)
}

let pp fmt r =
  Format.fprintf fmt
    "states=%.6g iters=%d images=%d peak=%d product=%d papprox=%d time=%.2fs%s"
    r.states r.iterations r.images r.peak_live_nodes r.peak_product
    r.partial_approximations r.cpu_seconds
    (if r.exact then "" else " (INCOMPLETE)")

(* Maintenance: collect garbage when the table grows too large, and
   optionally re-sift the variable order.  Returns the (possibly rebuilt)
   traversal roots; the caller must unpack them in order. *)
type maintenance = {
  mutable gc_at : int;
  mutable sift_at : int;
  sift_enabled : bool;
}

let make_maintenance ?(gc_start = 200_000) ?(sift_start = 50_000) sift_enabled
    =
  { gc_at = gc_start; sift_at = sift_start; sift_enabled }

let maintain m man roots =
  let roots = ref roots in
  if m.sift_enabled && Bdd.shared_size !roots > m.sift_at then begin
    roots := Reorder.sift man ~max_vars:10 !roots;
    m.sift_at <- 2 * Bdd.shared_size !roots + m.sift_at
  end;
  if Bdd.unique_size man > m.gc_at then begin
    ignore (Bdd.gc man ~roots:!roots);
    m.gc_at <- max m.gc_at (2 * Bdd.unique_size man)
  end;
  !roots
