(** Approximate FSM traversal by state-space decomposition (Cho, Hachtel,
    Macii, Plessier, Somenzi — the paper's reference [7]): the complement
    of Section 2's underapproximations.  The machine is partitioned into
    blocks of latches; each block is traversed with the other blocks'
    state variables treated as free (or constrained to the current
    estimate), and the product of the per-block reached sets is an
    {e overapproximation} of the reachable states — cheap to compute and
    usable as a care set or as a proof that bad states are unreachable. *)

val blocks : Compile.t -> max_block:int -> int list list
(** Partition the latch indices into blocks of at most [max_block],
    greedily grouping latches whose next-state functions share
    current-state support. *)

val run : ?max_block:int -> ?refine:int -> Trans.t -> Bdd.t
(** Machine-by-machine traversal: every block computes its reached set
    with the other blocks constrained to the running product
    (starting from free), and the refinement loop repeats until the
    product stabilizes or [refine] rounds (default 4) pass.
    [max_block] defaults to 4 latches per block.

    The result is an overapproximation of the reachable state set, over
    current-state variables: it contains the initial states and every
    state reachable from them (property-tested against exact BFS). *)

val states : Trans.t -> Bdd.t -> float
(** State count of a predicate (convenience re-export). *)
