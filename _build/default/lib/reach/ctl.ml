type formula =
  | True
  | False
  | Atom of Bdd.t
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | EX of formula
  | EF of formula
  | EG of formula
  | EU of formula * formula
  | AX of formula
  | AF of formula
  | AG of formula
  | AU of formula * formula

type checker = {
  man : Bdd.man;
  compiled : Compile.t;
  relation : Bdd.t; (* T(x, w, y) *)
  pre_quantify : Bdd.t; (* cube of y and w *)
}

let make trans =
  let compiled = trans.Trans.compiled in
  let man = compiled.Compile.man in
  {
    man;
    compiled;
    relation = Trans.monolithic compiled;
    pre_quantify =
      Bdd.cube man
        (Array.to_list (Compile.next_vars compiled)
        @ Array.to_list (Compile.input_var_array compiled));
  }

(* EX φ: states with a successor (under some input) satisfying φ *)
let ex ck phi =
  let phi_next = Compile.cur_to_next ck.compiled phi in
  Bdd.and_exists ck.man ~vars:ck.pre_quantify ck.relation phi_next

let rec lfp step z =
  let z' = step z in
  if Bdd.equal z z' then z else lfp step z'

let rec sat ck = function
  | True -> Bdd.tt ck.man
  | False -> Bdd.ff ck.man
  | Atom p -> p
  | Not f -> Bdd.bnot ck.man (sat ck f)
  | And (f, g) -> Bdd.band ck.man (sat ck f) (sat ck g)
  | Or (f, g) -> Bdd.bor ck.man (sat ck f) (sat ck g)
  | Implies (f, g) -> Bdd.bimp ck.man (sat ck f) (sat ck g)
  | EX f -> ex ck (sat ck f)
  | EF f ->
      let p = sat ck f in
      lfp (fun z -> Bdd.bor ck.man p (ex ck z)) (Bdd.ff ck.man)
  | EG f ->
      let p = sat ck f in
      lfp (fun z -> Bdd.band ck.man p (ex ck z)) (Bdd.tt ck.man)
  | EU (f, g) ->
      let p = sat ck f and q = sat ck g in
      lfp
        (fun z -> Bdd.bor ck.man q (Bdd.band ck.man p (ex ck z)))
        (Bdd.ff ck.man)
  | AX f -> Bdd.bnot ck.man (ex ck (Bdd.bnot ck.man (sat ck f)))
  | AF f -> sat ck (Not (EG (Not f)))
  | AG f -> sat ck (Not (EF (Not f)))
  | AU (f, g) ->
      (* A(f U g) = ¬(E(¬g U ¬f∧¬g) ∨ EG ¬g) *)
      sat ck (Not (Or (EU (Not g, And (Not f, Not g)), EG (Not g))))

let holds ck f = Bdd.leq ck.man ck.compiled.Compile.init (sat ck f)

let input_cube ck =
  Bdd.cube ck.man (Array.to_list (Compile.input_var_array ck.compiled))

let output ck name =
  let f = List.assoc name ck.compiled.Compile.output_fns in
  Atom (Bdd.forall ck.man ~vars:(input_cube ck) f)

let output_possibly ck name =
  let f = List.assoc name ck.compiled.Compile.output_fns in
  Atom (Bdd.exists ck.man ~vars:(input_cube ck) f)
