(** CTL model checking over a compiled circuit — together with
    {!Invariant}, the model-checking client the paper's introduction
    motivates for its BDD machinery.

    Formulas are interpreted over the total transition system of the
    circuit (primary inputs are resolved existentially by [EX], so
    [EX φ] holds in a state when {e some} input drives it into a φ-state,
    and dually [AX φ] requires {e every} input to).  State predicates
    range over current-state variables. *)

type formula =
  | True
  | False
  | Atom of Bdd.t  (** predicate over current-state variables *)
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | EX of formula
  | EF of formula
  | EG of formula
  | EU of formula * formula
  | AX of formula
  | AF of formula
  | AG of formula
  | AU of formula * formula

type checker
(** Precomputed transition relation and quantification cubes. *)

val make : Trans.t -> checker

val sat : checker -> formula -> Bdd.t
(** The set of states satisfying the formula (over the full state space,
    not just the reachable part), by the standard fixpoint
    characterizations: [EF φ = μZ. φ ∨ EX Z], [EG φ = νZ. φ ∧ EX Z],
    [E(φ U ψ) = μZ. ψ ∨ (φ ∧ EX Z)], and the universal operators by
    duality. *)

val holds : checker -> formula -> bool
(** Whether every initial state satisfies the formula. *)

val output : checker -> string -> formula
(** [output ck name]: the atom "output [name] is asserted under every
    input" (inputs quantified universally, so the atom is a pure state
    predicate).  @raise Not_found if there is no such output. *)

val output_possibly : checker -> string -> formula
(** Same with inputs quantified existentially: "some input asserts the
    output". *)
