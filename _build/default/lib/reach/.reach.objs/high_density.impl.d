lib/reach/high_density.ml: Approx Array Bdd Compile Image Option Sys Trans Traversal
