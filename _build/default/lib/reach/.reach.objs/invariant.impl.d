lib/reach/invariant.ml: Array Bdd Compile Image List Sys Trans Traversal
