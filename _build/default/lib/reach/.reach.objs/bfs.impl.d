lib/reach/bfs.ml: Array Bdd Compile Image Sys Trans Traversal
