lib/reach/ctl.mli: Bdd Trans
