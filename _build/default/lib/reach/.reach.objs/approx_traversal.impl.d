lib/reach/approx_traversal.ml: Array Bdd Compile Hashtbl List Option Trans
