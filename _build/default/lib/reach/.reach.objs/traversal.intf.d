lib/reach/traversal.mli: Bdd Format
