lib/reach/simplify.ml: Bdd Bfs Compile High_density List Trans Traversal
