lib/reach/approx_traversal.mli: Bdd Compile Trans
