lib/reach/invariant.mli: Bdd Compile Trans Traversal
