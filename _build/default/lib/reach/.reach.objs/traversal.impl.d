lib/reach/traversal.ml: Bdd Format Reorder
