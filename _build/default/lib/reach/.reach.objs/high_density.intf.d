lib/reach/high_density.mli: Approx Trans Traversal
