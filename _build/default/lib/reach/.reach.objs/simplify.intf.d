lib/reach/simplify.mli: Bdd Compile
