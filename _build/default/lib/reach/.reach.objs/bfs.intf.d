lib/reach/bfs.mli: Trans Traversal
