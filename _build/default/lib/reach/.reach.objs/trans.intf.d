lib/reach/trans.mli: Bdd Compile
