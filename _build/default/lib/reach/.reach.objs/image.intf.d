lib/reach/image.mli: Bdd Trans
