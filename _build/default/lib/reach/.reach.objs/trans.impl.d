lib/reach/trans.ml: Array Bdd Compile Hashtbl List
