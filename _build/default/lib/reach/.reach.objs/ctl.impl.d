lib/reach/ctl.ml: Array Bdd Compile List Trans
