lib/reach/image.ml: Array Bdd Compile List Trans
