(** Invariant checking on top of the reachability engines — the kind of
    client the paper's introduction motivates (symbolic model checking of
    safety properties).

    [check] decides whether any state satisfying [bad] is reachable.  When
    it is, a minimal-length counterexample trace is reconstructed from the
    breadth-first onion rings by walking preimages backwards. *)

type outcome =
  | Holds of Traversal.result
      (** no bad state is reachable; the traversal statistics are those of
          the exact fixpoint computation *)
  | Violated of {
      depth : int;  (** steps from the initial state *)
      trace : (int * bool) list list;
          (** one state per step as current-state-variable literals,
              beginning at the initial state and ending in [bad] *)
    }

val check : ?max_iter:int -> Trans.t -> bad:Bdd.t -> outcome
(** [check trans ~bad] — [bad] is a predicate over current-state
    variables.  Runs breadth-first (rings are needed for trace
    reconstruction), stopping as soon as [bad] is hit. *)

val output_never : Compile.t -> string -> Bdd.t
(** [output_never compiled name] builds the bad-state predicate "output
    [name] can be asserted under some input", i.e. [∃ inputs. out].
    @raise Not_found if there is no such output. *)
