let support_set man f =
  let tbl = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace tbl v ()) (Bdd.support man f);
  tbl

let blocks compiled ~max_block =
  let man = compiled.Compile.man in
  let latches = compiled.Compile.latches in
  let n = Array.length latches in
  let cur_of = Hashtbl.create 16 in
  Array.iteri (fun i l -> Hashtbl.replace cur_of l.Compile.cur i) latches;
  let supports =
    Array.map (fun l -> support_set man l.Compile.fn) latches
  in
  (* affinity: how many of j's current-state variables appear in i's
     next-state support (symmetrized) *)
  let affinity i j =
    let count a b =
      if Hashtbl.mem supports.(a) latches.(b).Compile.cur then 1 else 0
    in
    count i j + count j i
  in
  let assigned = Array.make n false in
  let out = ref [] in
  for i = 0 to n - 1 do
    if not assigned.(i) then begin
      assigned.(i) <- true;
      let block = ref [ i ] in
      (* greedily add the most affine unassigned latches *)
      let rec grow () =
        if List.length !block < max_block then begin
          let best = ref (-1) and best_score = ref 0 in
          for j = 0 to n - 1 do
            if not assigned.(j) then begin
              let score =
                List.fold_left (fun acc k -> acc + affinity j k) 0 !block
              in
              if score > !best_score then begin
                best := j;
                best_score := score
              end
            end
          done;
          if !best >= 0 then begin
            assigned.(!best) <- true;
            block := !best :: !block;
            grow ()
          end
        end
      in
      grow ();
      out := List.rev !block :: !out
    end
  done;
  List.rev !out

let run ?(max_block = 4) ?(refine = 4) trans =
  let compiled = trans.Trans.compiled in
  let man = compiled.Compile.man in
  let latches = compiled.Compile.latches in
  let groups = blocks compiled ~max_block in
  let all_cur = Array.to_list (Compile.cur_vars compiled) in
  let input_vars = Array.to_list (Compile.input_var_array compiled) in
  (* per-block machinery *)
  let block_data =
    List.map
      (fun group ->
        let rel =
          Bdd.conj man
            (List.map
               (fun i ->
                 let l = latches.(i) in
                 Bdd.biff man (Bdd.ithvar man l.Compile.next) l.Compile.fn)
               group)
        in
        let block_cur = List.map (fun i -> latches.(i).Compile.cur) group in
        let init_b =
          (* projection of the initial states onto the block *)
          let others =
            List.filter (fun v -> not (List.mem v block_cur)) all_cur
          in
          Bdd.exists man ~vars:(Bdd.cube man others) compiled.Compile.init
        in
        let quantify = Bdd.cube man (all_cur @ input_vars) in
        let rename =
          let tbl = Hashtbl.create 8 in
          List.iter
            (fun i ->
              Hashtbl.replace tbl latches.(i).Compile.next
                latches.(i).Compile.cur)
            group;
          fun v -> Option.value ~default:v (Hashtbl.find_opt tbl v)
        in
        (rel, init_b, quantify, rename))
      groups
  in
  let data = Array.of_list block_data in
  let reached = Array.map (fun (_, i, _, _) -> i) data in
  let product () = Bdd.conj man (Array.to_list reached) in
  (* block-local traversal from the block's initial projection, with the
     other blocks held inside [constraint_] *)
  let traverse b constraint_ =
    let rel, init_b, quantify, rename = data.(b) in
    let rec fix r =
      let src = Bdd.band man r constraint_ in
      let img =
        Bdd.permute man (Bdd.and_exists man ~vars:quantify rel src) rename
      in
      let r' = Bdd.bor man r img in
      if Bdd.equal r r' then r else fix r'
    in
    fix init_b
  in
  (* first round: the other blocks are free, so every block's result is a
     true overapproximation of its projection of the reachable set *)
  Array.iteri (fun b _ -> reached.(b) <- traverse b (Bdd.tt man)) data;
  (* refinement: re-traverse each block constrained by the current product.
     The constraint is an overapproximation of the reachable states, so the
     result still covers the projection, but it can only shrink. *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < refine do
    changed := false;
    incr rounds;
    Array.iteri
      (fun b _ ->
        let r' = traverse b (product ()) in
        if not (Bdd.equal r' reached.(b)) then begin
          reached.(b) <- r';
          changed := true
        end)
      data
  done;
  product ()

let states trans f = Compile.state_count trans.Trans.compiled f
