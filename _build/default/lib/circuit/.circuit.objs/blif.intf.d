lib/circuit/blif.mli: Circuit
