lib/circuit/circuit.ml: Array Hashtbl List Printf
