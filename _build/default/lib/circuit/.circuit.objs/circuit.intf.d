lib/circuit/circuit.mli:
