lib/circuit/blif.ml: Buffer Circuit Fun Hashtbl List Printf String
