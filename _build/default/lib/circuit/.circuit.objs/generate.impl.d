lib/circuit/generate.ml: Array Circuit Fun List Printf
