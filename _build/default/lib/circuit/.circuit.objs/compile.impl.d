lib/circuit/compile.ml: Array Bdd Circuit Hashtbl List Option Queue
