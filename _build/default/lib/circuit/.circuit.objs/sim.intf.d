lib/circuit/sim.mli: Circuit Hashtbl
