lib/circuit/compile.mli: Bdd Circuit
