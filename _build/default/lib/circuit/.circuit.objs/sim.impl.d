lib/circuit/sim.ml: Array Circuit Hashtbl List Queue
