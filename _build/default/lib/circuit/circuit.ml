type signal = int

type gate =
  | Const of bool
  | Input of string
  | Not of signal
  | And of signal * signal
  | Or of signal * signal
  | Xor of signal * signal
  | Mux of signal * signal * signal
  | Latch of { init : bool; next : signal; name : string }

type t = { name : string; gates : gate array; outputs : (string * signal) list }

let name c = c.name
let gate c s = c.gates.(s)
let num_signals c = Array.length c.gates
let outputs c = c.outputs

let latches c =
  let out = ref [] in
  Array.iteri
    (fun i g -> match g with Latch _ -> out := i :: !out | _ -> ())
    c.gates;
  List.rev !out

let inputs c =
  let out = ref [] in
  Array.iteri
    (fun i g -> match g with Input n -> out := (n, i) :: !out | _ -> ())
    c.gates;
  List.rev !out

let num_latches c = List.length (latches c)
let num_inputs c = List.length (inputs c)

let stats c =
  let n = Array.length c.gates in
  Printf.sprintf "%s: %d inputs, %d latches, %d gates, %d outputs" c.name
    (num_inputs c) (num_latches c)
    (n - num_inputs c - num_latches c)
    (List.length c.outputs)

module Builder = struct
  (* latches are built in two steps, so the builder keeps a pending-next
     table and materializes the final immutable gate array in [finish] *)
  type pre_gate =
    | PGate of gate
    | PLatch of { init : bool; name : string }

  type b = {
    bname : string;
    mutable cells : pre_gate array;
    mutable len : int;
    nexts : (signal, signal) Hashtbl.t;
    mutable outs : (string * signal) list;
    share : (gate, signal) Hashtbl.t; (* structural hashing of gates *)
  }

  let create bname =
    {
      bname;
      cells = Array.make 64 (PGate (Const false));
      len = 0;
      nexts = Hashtbl.create 16;
      outs = [];
      share = Hashtbl.create 256;
    }

  let push b cell =
    if b.len = Array.length b.cells then begin
      let bigger = Array.make (2 * b.len) (PGate (Const false)) in
      Array.blit b.cells 0 bigger 0 b.len;
      b.cells <- bigger
    end;
    b.cells.(b.len) <- cell;
    b.len <- b.len + 1;
    b.len - 1

  (* structurally hash pure gates so repeated subcircuits share nets *)
  let gate_signal b g =
    match Hashtbl.find_opt b.share g with
    | Some s -> s
    | None ->
        let s = push b (PGate g) in
        Hashtbl.add b.share g s;
        s

  let const b v = gate_signal b (Const v)
  let input b n = push b (PGate (Input n))
  let not_ b a = gate_signal b (Not a)

  let comm b mk a c =
    (* normalize commutative operands for better sharing *)
    let a, c = if a <= c then (a, c) else (c, a) in
    gate_signal b (mk a c)

  let and_ b a c = comm b (fun x y -> And (x, y)) a c
  let or_ b a c = comm b (fun x y -> Or (x, y)) a c
  let xor_ b a c = comm b (fun x y -> Xor (x, y)) a c
  let nand_ b a c = not_ b (and_ b a c)
  let nor_ b a c = not_ b (or_ b a c)
  let xnor_ b a c = not_ b (xor_ b a c)
  let mux b ~sel ~t_ ~e = gate_signal b (Mux (sel, t_, e))

  let and_list b = function
    | [] -> const b true
    | s :: rest -> List.fold_left (and_ b) s rest

  let or_list b = function
    | [] -> const b false
    | s :: rest -> List.fold_left (or_ b) s rest

  let latch b ?(init = false) name = push b (PLatch { init; name })

  let connect b l ~next =
    (match b.cells.(l) with
    | PLatch _ -> ()
    | PGate _ -> invalid_arg "Circuit.Builder.connect: not a latch");
    if Hashtbl.mem b.nexts l then
      invalid_arg "Circuit.Builder.connect: latch already connected";
    Hashtbl.add b.nexts l next

  let output b n s = b.outs <- (n, s) :: b.outs

  let finish b =
    let gates =
      Array.init b.len (fun i ->
          match b.cells.(i) with
          | PGate g -> g
          | PLatch { init; name } -> (
              match Hashtbl.find_opt b.nexts i with
              | Some next -> Latch { init; next; name }
              | None ->
                  invalid_arg
                    (Printf.sprintf
                       "Circuit.Builder.finish: latch %s not connected" name)))
    in
    (* combinational cycle check: DFS treating latches as sources *)
    let state = Array.make b.len 0 in
    (* 0 unseen, 1 active, 2 done *)
    let rec visit s =
      if state.(s) = 1 then
        invalid_arg "Circuit.Builder.finish: combinational cycle";
      if state.(s) = 0 then begin
        state.(s) <- 1;
        (match gates.(s) with
        | Const _ | Input _ | Latch _ -> ()
        | Not a -> visit a
        | And (a, c) | Or (a, c) | Xor (a, c) ->
            visit a;
            visit c
        | Mux (a, c, d) ->
            visit a;
            visit c;
            visit d);
        state.(s) <- 2
      end
    in
    Array.iteri
      (fun _ g -> match g with Latch { next; _ } -> visit next | _ -> ())
      gates;
    List.iter (fun (_, s) -> visit s) b.outs;
    { name = b.bname; gates; outputs = List.rev b.outs }

  (* ---------------- word-level helpers ---------------- *)

  let const_word b ~width k =
    Array.init width (fun i -> const b (k land (1 lsl i) <> 0))

  let latch_word b ?(init = 0) name ~width =
    Array.init width (fun i ->
        latch b
          ~init:(init land (1 lsl i) <> 0)
          (Printf.sprintf "%s.%d" name i))

  let connect_word b word ~next =
    if Array.length word <> Array.length next then
      invalid_arg "Circuit.Builder.connect_word: width mismatch";
    Array.iteri (fun i l -> connect b l ~next:next.(i)) word

  let mux_word b ~sel ~t_ ~e =
    if Array.length t_ <> Array.length e then
      invalid_arg "Circuit.Builder.mux_word: width mismatch";
    Array.mapi (fun i t -> mux b ~sel ~t_:t ~e:e.(i)) t_

  let incr_word b w =
    let carry = ref (const b true) in
    Array.map
      (fun bit ->
        let s = xor_ b bit !carry in
        carry := and_ b bit !carry;
        s)
      w

  let decr_word b w =
    let borrow = ref (const b true) in
    Array.map
      (fun bit ->
        let s = xor_ b bit !borrow in
        borrow := and_ b (not_ b bit) !borrow;
        s)
      w

  let add_word b x y =
    if Array.length x <> Array.length y then
      invalid_arg "Circuit.Builder.add_word: width mismatch";
    let carry = ref (const b false) in
    Array.mapi
      (fun i xb ->
        let yb = y.(i) in
        let s = xor_ b (xor_ b xb yb) !carry in
        let c =
          or_ b (and_ b xb yb) (and_ b !carry (or_ b xb yb))
        in
        carry := c;
        s)
      x

  let eq_word b x y =
    if Array.length x <> Array.length y then
      invalid_arg "Circuit.Builder.eq_word: width mismatch";
    and_list b (Array.to_list (Array.mapi (fun i xb -> xnor_ b xb y.(i)) x))

  let eq_const b w k = eq_word b w (const_word b ~width:(Array.length w) k)

  let is_zero b w =
    not_ b (or_list b (Array.to_list w))
end
