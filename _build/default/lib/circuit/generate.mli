(** Synthetic benchmark circuits.

    The paper evaluates on s3330, s1269, s5378opt and am2910, which are not
    redistributable; these generators produce parameterized machines with
    the same reachability character (see DESIGN.md §3 for the mapping).
    The small machines at the top have closed-form reachable-state counts
    used by the tests. *)

(** {1 Small machines with known reachable sets} *)

val counter : bits:int -> Circuit.t
(** Free-running binary counter; 2^bits reachable states. *)

val counter_enabled : bits:int -> Circuit.t
(** Counter with an enable input; 2^bits reachable states. *)

val ring : bits:int -> Circuit.t
(** One-hot ring counter initialized to 1; [bits] reachable states. *)

val johnson : bits:int -> Circuit.t
(** Johnson (twisted-ring) counter; [2·bits] reachable states. *)

val lfsr : bits:int -> Circuit.t
(** Fibonacci LFSR with primitive feedback (bits ∈ 3..8, 16); seeded with 1,
    so [2^bits - 1] reachable states.  @raise Invalid_argument for widths
    without a built-in primitive polynomial. *)

val fifo_controller : depth:int -> Circuit.t
(** Push/pop occupancy counter clamped to [0, depth]; [depth + 1] reachable
    states (the remaining codes of the binary counter are unreachable). *)

val arbiter : clients:int -> Circuit.t
(** Rotating-token round-robin arbiter with request inputs and grant
    outputs; [clients] reachable states. *)

val traffic_light : unit -> Circuit.t
(** Four-phase intersection controller with a car sensor and a timer bit;
    5 reachable states out of 8 codes. *)

(** {1 Scaled stand-ins for the paper's Table 1 circuits} *)

val microsequencer : addr_bits:int -> stack_depth:int -> Circuit.t
(** am2910-like microprogram sequencer: a micro-PC, a loop counter, a
    [stack_depth]-deep subroutine stack and a stack pointer, driven by a
    3-bit instruction, a condition-code input and an [addr_bits]-wide data
    bus.  Deep, irregular state graph: BFS needs many iterations with wide
    frontiers. *)

val microprogram : addr_bits:int -> stack_depth:int -> seed:int -> Circuit.t
(** {!microsequencer} driven by a synthesized pseudo-random control store:
    the instruction and branch target are ROM functions of the micro-PC
    and only the condition code remains a free input.  The machine must
    execute its microprogram step by step, giving the deep state graphs on
    which breadth-first search needs very many iterations — the paper's
    am2910 scenario. *)

val shifter_datapath : width:int -> Circuit.t
(** s1269-like shift/accumulate datapath: a [width]-bit shift register and
    accumulator under a 2-bit control FSM with a ripple adder in the loop —
    small latch count, large intermediate BDDs. *)

val handshake_pipeline : stages:int -> Circuit.t
(** s3330-like chain of req/ack handshake stages, each holding a valid bit
    and a token bit. *)

val dense_controller : latches:int -> seed:int -> Circuit.t
(** s5378-like random-logic controller: each latch's next-state function is
    a random 3–4-literal function of other latches and a few inputs
    (deterministic in [seed]). *)

(** {1 Combinational pool circuits} *)

val multiplier : bits:int -> Circuit.t
(** Combinational [bits]×[bits] shift-and-add multiplier; the middle
    product bits are implicant-poor, BDD-hard cones. *)

val alu : width:int -> Circuit.t
(** Combinational ALU slice (add / subtract / and / xor by a 2-bit
    opcode). *)

(** {1 Function pools} *)

val random_netlist :
  inputs:int -> gates:int -> outputs:int -> seed:int -> Circuit.t
(** Structured random combinational netlist (for the Table 2–4 function
    pool). *)
