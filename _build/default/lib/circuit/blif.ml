exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexing: logical lines with continuations and comments              *)
(* ------------------------------------------------------------------ *)

let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let strip_comment l =
    match String.index_opt l '#' with
    | Some i -> String.sub l 0 i
    | None -> l
  in
  (* join backslash-continued lines *)
  let rec join acc pending = function
    | [] -> List.rev (if pending = "" then acc else pending :: acc)
    | l :: rest ->
        let l = strip_comment l in
        let l = String.trim l in
        if l = "" then join acc pending rest
        else if String.length l > 0 && l.[String.length l - 1] = '\\' then
          let chunk = String.sub l 0 (String.length l - 1) in
          join acc (pending ^ chunk ^ " ") rest
        else join ((pending ^ l) :: acc) "" rest
  in
  join [] "" raw

let tokens line =
  line |> String.split_on_char ' '
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

(* ------------------------------------------------------------------ *)
(* Parsing into declarations                                          *)
(* ------------------------------------------------------------------ *)

type decl =
  | Dinput of string
  | Doutput of string
  | Dlatch of { out : string; in_ : string; init : bool }
  | Dnames of { out : string; ins : string list; rows : (string * char) list }

let parse_decls lines =
  let model = ref "blif" in
  let decls = ref [] in
  let rec go = function
    | [] -> ()
    | line :: rest -> (
        match tokens line with
        | [] -> go rest
        | ".model" :: name :: _ ->
            model := name;
            go rest
        | ".inputs" :: names ->
            List.iter (fun n -> decls := Dinput n :: !decls) names;
            go rest
        | ".outputs" :: names ->
            List.iter (fun n -> decls := Doutput n :: !decls) names;
            go rest
        | ".latch" :: args -> (
            (* .latch <input> <output> [<type> <control>] [<init>] *)
            match args with
            | in_ :: out :: tail ->
                let init =
                  match List.rev tail with
                  | last :: _ when last = "1" -> true
                  | last :: _ when last = "0" || last = "2" || last = "3" ->
                      false
                  | _ -> false
                in
                decls := Dlatch { out; in_; init } :: !decls;
                go rest
            | _ -> fail "malformed .latch: %s" line)
        | [ ".names"; out ] ->
            (* constant: rows give the value *)
            let rows, rest = collect_rows [] rest in
            decls := Dnames { out; ins = []; rows } :: !decls;
            go rest
        | ".names" :: args ->
            let rev = List.rev args in
            let out = List.hd rev and ins = List.rev (List.tl rev) in
            let rows, rest = collect_rows [] rest in
            decls := Dnames { out; ins; rows } :: !decls;
            go rest
        | ".end" :: _ -> ()
        | (".exdc" | ".wire_load_slope" | ".default_input_arrival") :: _ ->
            go rest
        | cmd :: _ when String.length cmd > 0 && cmd.[0] = '.' ->
            fail "unsupported construct: %s" cmd
        | _ -> fail "unexpected line: %s" line)
  and collect_rows acc = function
    | line :: rest when String.length line > 0 && line.[0] <> '.' -> (
        match tokens line with
        | [ cube; out ] when String.length out = 1 ->
            collect_rows ((cube, out.[0]) :: acc) rest
        | [ out ] when out = "0" || out = "1" ->
            (* constant row *)
            collect_rows (("", out.[0]) :: acc) rest
        | _ -> fail "malformed PLA row: %s" line)
    | rest -> (List.rev acc, rest)
  in
  go lines;
  (!model, List.rev !decls)

(* ------------------------------------------------------------------ *)
(* Elaboration                                                         *)
(* ------------------------------------------------------------------ *)

let elaborate (model, decls) =
  let module B = Circuit.Builder in
  let b = B.create model in
  let defs = Hashtbl.create 64 in
  (* name -> decl *)
  let sigs = Hashtbl.create 64 in
  (* name -> signal *)
  List.iter
    (fun d ->
      match d with
      | Dinput n | Dlatch { out = n; _ } | Dnames { out = n; _ } ->
          if Hashtbl.mem defs n then fail "net %s multiply defined" n;
          Hashtbl.add defs n d
      | Doutput _ -> ())
    decls;
  (* create all latches first so feedback resolves *)
  List.iter
    (fun d ->
      match d with
      | Dlatch { out; init; _ } ->
          Hashtbl.add sigs out (B.latch b ~init out)
      | Dinput _ | Doutput _ | Dnames _ -> ())
    decls;
  let building = Hashtbl.create 16 in
  let rec net n =
    match Hashtbl.find_opt sigs n with
    | Some s -> s
    | None ->
        if Hashtbl.mem building n then fail "combinational cycle through %s" n;
        Hashtbl.add building n ();
        let s =
          match Hashtbl.find_opt defs n with
          | None -> fail "undefined net %s" n
          | Some (Dinput name) -> B.input b name
          | Some (Dlatch _) -> assert false (* pre-created *)
          | Some (Doutput _) -> assert false
          | Some (Dnames { ins; rows; _ }) -> build_cover ins rows
        in
        Hashtbl.remove building n;
        Hashtbl.add sigs n s;
        s
  and build_cover ins rows =
    match rows with
    | [] -> B.const b false
    | (_, phase) :: _ ->
        if not (List.for_all (fun (_, p) -> p = phase) rows) then
          fail "mixed-phase PLA cover";
        let in_sigs = List.map net ins in
        let product cube =
          if String.length cube <> List.length in_sigs then
            fail "PLA row width mismatch";
          let terms =
            List.mapi
              (fun i s ->
                match cube.[i] with
                | '1' -> Some s
                | '0' -> Some (B.not_ b s)
                | '-' -> None
                | c -> fail "bad PLA character %c" c)
              in_sigs
            |> List.filter_map Fun.id
          in
          B.and_list b terms
        in
        let sum = B.or_list b (List.map (fun (cube, _) -> product cube) rows) in
        if phase = '1' then sum
        else if phase = '0' then B.not_ b sum
        else fail "bad PLA output phase %c" phase
  in
  (* connect latches *)
  List.iter
    (fun d ->
      match d with
      | Dlatch { out; in_; _ } ->
          B.connect b (Hashtbl.find sigs out) ~next:(net in_)
      | Dinput _ | Doutput _ | Dnames _ -> ())
    decls;
  (* outputs *)
  List.iter
    (fun d -> match d with Doutput n -> B.output b n (net n) | _ -> ())
    decls;
  B.finish b

let parse_string text = elaborate (parse_decls (logical_lines text))

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let to_string c =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let net_name = Hashtbl.create 64 in
  let name_of s =
    match Hashtbl.find_opt net_name s with
    | Some n -> n
    | None ->
        let n =
          match Circuit.gate c s with
          | Circuit.Input n -> n
          | Circuit.Latch { name; _ } -> name
          | _ -> Printf.sprintf "n%d" s
        in
        Hashtbl.add net_name s n;
        n
  in
  pr ".model %s\n" (Circuit.name c);
  let ins = Circuit.inputs c in
  if ins <> [] then
    pr ".inputs %s\n" (String.concat " " (List.map fst ins));
  if Circuit.outputs c <> [] then
    pr ".outputs %s\n"
      (String.concat " "
         (List.map (fun (n, _) -> n ^ "_out") (Circuit.outputs c)));
  List.iter
    (fun l ->
      match Circuit.gate c l with
      | Circuit.Latch { init; next; name } ->
          pr ".latch %s %s %d\n" (name_of next) name (if init then 1 else 0)
      | _ -> ())
    (Circuit.latches c);
  for s = 0 to Circuit.num_signals c - 1 do
    match Circuit.gate c s with
    | Circuit.Input _ | Circuit.Latch _ -> ()
    | Circuit.Const v -> pr ".names %s\n%s" (name_of s) (if v then "1\n" else "")
    | Circuit.Not a -> pr ".names %s %s\n0 1\n" (name_of a) (name_of s)
    | Circuit.And (a, b) ->
        pr ".names %s %s %s\n11 1\n" (name_of a) (name_of b) (name_of s)
    | Circuit.Or (a, b) ->
        pr ".names %s %s %s\n1- 1\n-1 1\n" (name_of a) (name_of b) (name_of s)
    | Circuit.Xor (a, b) ->
        pr ".names %s %s %s\n10 1\n01 1\n" (name_of a) (name_of b) (name_of s)
    | Circuit.Mux (sel, t, e) ->
        pr ".names %s %s %s %s\n11- 1\n0-1 1\n" (name_of sel) (name_of t)
          (name_of e) (name_of s)
  done;
  List.iter
    (fun (n, s) -> pr ".names %s %s_out\n1 1\n" (name_of s) n)
    (Circuit.outputs c);
  pr ".end\n";
  Buffer.contents buf

let to_file path c =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc
