type state = bool array

let latch_index c =
  let tbl = Hashtbl.create 16 in
  List.iteri (fun i s -> Hashtbl.add tbl s i) (Circuit.latches c);
  tbl

let initial_state c =
  let ls = Circuit.latches c in
  Array.of_list
    (List.map
       (fun s ->
         match Circuit.gate c s with
         | Circuit.Latch { init; _ } -> init
         | _ -> assert false)
       ls)

(* memoized net evaluation for one cycle *)
let eval_nets c s input =
  let idx = latch_index c in
  let memo = Hashtbl.create 64 in
  let rec value net =
    match Hashtbl.find_opt memo net with
    | Some v -> v
    | None ->
        let v =
          match Circuit.gate c net with
          | Circuit.Const b -> b
          | Circuit.Input n -> input n
          | Circuit.Not a -> not (value a)
          | Circuit.And (a, b) -> value a && value b
          | Circuit.Or (a, b) -> value a || value b
          | Circuit.Xor (a, b) -> value a <> value b
          | Circuit.Mux (sel, t, e) -> if value sel then value t else value e
          | Circuit.Latch _ -> s.(Hashtbl.find idx net)
        in
        Hashtbl.add memo net v;
        v
  in
  value

let step c s input =
  let value = eval_nets c s input in
  let next =
    Array.of_list
      (List.map
         (fun l ->
           match Circuit.gate c l with
           | Circuit.Latch { next; _ } -> value next
           | _ -> assert false)
         (Circuit.latches c))
  in
  let outs = List.map (fun (n, sg) -> (n, value sg)) (Circuit.outputs c) in
  (next, outs)

let eval_output c s input name =
  let value = eval_nets c s input in
  value (List.assoc name (Circuit.outputs c))

let encode s =
  if Array.length s > 62 then invalid_arg "Sim.encode: too many latches";
  let v = ref 0 in
  Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) s;
  !v

let decode ~nlatches v = Array.init nlatches (fun i -> v land (1 lsl i) <> 0)

let reachable ?(max_states = 1_000_000) c =
  let ins = List.map fst (Circuit.inputs c) in
  if List.length ins > 20 then
    invalid_arg "Sim.reachable: too many inputs for explicit search";
  let nin = List.length ins in
  let input_of_mask mask =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i n -> Hashtbl.add tbl n (mask land (1 lsl i) <> 0)) ins;
    fun n -> Hashtbl.find tbl n
  in
  let seen = Hashtbl.create 1024 in
  let nlatches = Circuit.num_latches c in
  let queue = Queue.create () in
  let start = encode (initial_state c) in
  Hashtbl.add seen start ();
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let cur = Queue.take queue in
    let s = decode ~nlatches cur in
    for mask = 0 to (1 lsl nin) - 1 do
      let next, _ = step c s (input_of_mask mask) in
      let code = encode next in
      if not (Hashtbl.mem seen code) then begin
        if Hashtbl.length seen >= max_states then
          failwith "Sim.reachable: state limit exceeded";
        Hashtbl.add seen code ();
        Queue.add code queue
      end
    done
  done;
  seen
