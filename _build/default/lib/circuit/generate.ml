module B = Circuit.Builder

(* Deterministic xorshift PRNG so generated circuits are reproducible. *)
let rng seed =
  let s = ref (if seed = 0 then 0x9E3779B9 else seed land max_int) in
  fun bound ->
    let x = !s in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    s := x land max_int;
    if bound <= 0 then 0 else !s mod bound

(* mux chain: first matching condition wins, [default] otherwise *)
let select_word b cases ~default =
  List.fold_right
    (fun (cond, word) acc -> B.mux_word b ~sel:cond ~t_:word ~e:acc)
    cases default

(* ------------------------------------------------------------------ *)
(* Small machines with known reachable sets                            *)
(* ------------------------------------------------------------------ *)

let counter ~bits =
  let b = B.create (Printf.sprintf "counter%d" bits) in
  let w = B.latch_word b "c" ~width:bits in
  B.connect_word b w ~next:(B.incr_word b w);
  B.output b "msb" w.(bits - 1);
  B.finish b

let counter_enabled ~bits =
  let b = B.create (Printf.sprintf "counter_en%d" bits) in
  let en = B.input b "en" in
  let w = B.latch_word b "c" ~width:bits in
  B.connect_word b w ~next:(B.mux_word b ~sel:en ~t_:(B.incr_word b w) ~e:w);
  B.output b "msb" w.(bits - 1);
  B.finish b

let ring ~bits =
  let b = B.create (Printf.sprintf "ring%d" bits) in
  let w =
    Array.init bits (fun i -> B.latch b ~init:(i = 0) (Printf.sprintf "r.%d" i))
  in
  Array.iteri (fun i l -> B.connect b l ~next:w.((i + bits - 1) mod bits)) w;
  B.output b "last" w.(bits - 1);
  B.finish b

let johnson ~bits =
  let b = B.create (Printf.sprintf "johnson%d" bits) in
  let w = B.latch_word b "j" ~width:bits in
  let feedback = B.not_ b w.(bits - 1) in
  Array.iteri
    (fun i l -> B.connect b l ~next:(if i = 0 then feedback else w.(i - 1)))
    w;
  B.output b "last" w.(bits - 1);
  B.finish b

(* primitive feedback polynomials (tap positions, 1-based) *)
let lfsr_taps = function
  | 3 -> [ 3; 2 ]
  | 4 -> [ 4; 3 ]
  | 5 -> [ 5; 3 ]
  | 6 -> [ 6; 5 ]
  | 7 -> [ 7; 6 ]
  | 8 -> [ 8; 6; 5; 4 ]
  | 16 -> [ 16; 15; 13; 4 ]
  | n -> invalid_arg (Printf.sprintf "Generate.lfsr: no taps for width %d" n)

let lfsr ~bits =
  let taps = lfsr_taps bits in
  let b = B.create (Printf.sprintf "lfsr%d" bits) in
  let w =
    Array.init bits (fun i -> B.latch b ~init:(i = 0) (Printf.sprintf "l.%d" i))
  in
  let feedback =
    List.fold_left
      (fun acc t -> B.xor_ b acc w.(t - 1))
      (B.const b false) taps
  in
  Array.iteri
    (fun i l -> B.connect b l ~next:(if i = 0 then feedback else w.(i - 1)))
    w;
  B.output b "out" w.(bits - 1);
  B.finish b

let ceil_log2 n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  go 0

let fifo_controller ~depth =
  let bits = max 1 (ceil_log2 (depth + 1)) in
  let b = B.create (Printf.sprintf "fifo%d" depth) in
  let push = B.input b "push" and pop = B.input b "pop" in
  let count = B.latch_word b "n" ~width:bits in
  let full = B.eq_const b count depth in
  let empty = B.is_zero b count in
  let do_push = B.and_ b push (B.not_ b full) in
  let do_pop = B.and_ b pop (B.not_ b empty) in
  let up = B.and_ b do_push (B.not_ b do_pop) in
  let down = B.and_ b do_pop (B.not_ b do_push) in
  let next =
    select_word b
      [ (up, B.incr_word b count); (down, B.decr_word b count) ]
      ~default:count
  in
  B.connect_word b count ~next;
  B.output b "full" full;
  B.output b "empty" empty;
  B.finish b

let arbiter ~clients =
  let b = B.create (Printf.sprintf "arbiter%d" clients) in
  let reqs = Array.init clients (fun i -> B.input b (Printf.sprintf "req%d" i)) in
  let token =
    Array.init clients (fun i ->
        B.latch b ~init:(i = 0) (Printf.sprintf "t.%d" i))
  in
  Array.iteri
    (fun i l -> B.connect b l ~next:token.((i + clients - 1) mod clients))
    token;
  Array.iteri
    (fun i r ->
      B.output b (Printf.sprintf "gnt%d" i) (B.and_ b token.(i) r))
    reqs;
  B.finish b

let traffic_light () =
  let b = B.create "traffic" in
  let car = B.input b "car" in
  let p = B.latch_word b "p" ~width:2 in
  let t = B.latch b "t" in
  B.connect b t ~next:(B.not_ b t);
  (* phases: 0 NS-green, 1 NS-yellow, 2 EW-green, 3 EW-yellow *)
  let phase k = B.eq_const b p k in
  let next_p =
    select_word b
      [
        ( phase 0,
          B.mux_word b
            ~sel:(B.and_ b car t)
            ~t_:(B.const_word b ~width:2 1)
            ~e:(B.const_word b ~width:2 0) );
        (phase 1, B.const_word b ~width:2 2);
        ( phase 2,
          B.mux_word b ~sel:t
            ~t_:(B.const_word b ~width:2 3)
            ~e:(B.const_word b ~width:2 2) );
      ]
      ~default:(B.const_word b ~width:2 0)
  in
  B.connect_word b p ~next:next_p;
  B.output b "ns_green" (phase 0);
  B.output b "ew_green" (phase 2);
  B.finish b

(* ------------------------------------------------------------------ *)
(* am2910-like microprogram sequencer                                  *)
(* ------------------------------------------------------------------ *)

let microsequencer ~addr_bits ~stack_depth =
  if addr_bits < 2 || stack_depth < 1 then
    invalid_arg "Generate.microsequencer";
  let b =
    B.create (Printf.sprintf "useq_a%d_s%d" addr_bits stack_depth)
  in
  let instr = Array.init 3 (fun i -> B.input b (Printf.sprintf "i%d" i)) in
  let cc = B.input b "cc" in
  let data = Array.init addr_bits (fun i -> B.input b (Printf.sprintf "d%d" i)) in
  let upc = B.latch_word b "upc" ~width:addr_bits in
  let ctr = B.latch_word b "ctr" ~width:addr_bits in
  let sp_bits = max 1 (ceil_log2 (stack_depth + 1)) in
  let sp = B.latch_word b "sp" ~width:sp_bits in
  let stack =
    Array.init stack_depth (fun k ->
        B.latch_word b (Printf.sprintf "stk%d" k) ~width:addr_bits)
  in
  let dec k = B.eq_const b instr k in
  let upc1 = B.incr_word b upc in
  let zeros = B.const_word b ~width:addr_bits 0 in
  (* top of stack: stack[sp-1] *)
  let top =
    select_word b
      (List.init stack_depth (fun k -> (B.eq_const b sp (k + 1), stack.(k))))
      ~default:zeros
  in
  let sp_lt_depth =
    B.or_list b (List.init stack_depth (fun k -> B.eq_const b sp k))
  in
  let sp_gt_0 = B.not_ b (B.is_zero b sp) in
  let ctr_nz = B.not_ b (B.is_zero b ctr) in
  (* instructions: 0 CONT, 1 JMP, 2 CJP, 3 PUSH (and load counter),
     4 RTN, 5 CRTN, 6 RFCT, 7 JZ *)
  let push = B.and_ b (dec 3) sp_lt_depth in
  let pop_rtn = dec 4 in
  let pop_crtn = B.and_ b (dec 5) cc in
  let pop_rfct = B.and_ b (dec 6) (B.not_ b ctr_nz) in
  let pop =
    B.and_ b (B.or_list b [ pop_rtn; pop_crtn; pop_rfct ]) sp_gt_0
  in
  let upc_next =
    select_word b
      [
        (dec 1, data);
        (dec 2, B.mux_word b ~sel:cc ~t_:data ~e:upc1);
        (dec 4, top);
        (dec 5, B.mux_word b ~sel:cc ~t_:top ~e:upc1);
        (dec 6, B.mux_word b ~sel:ctr_nz ~t_:top ~e:upc1);
        (dec 7, zeros);
      ]
      ~default:upc1
  in
  let ctr_next =
    select_word b
      [
        (dec 3, data);
        (B.and_ b (dec 6) ctr_nz, B.decr_word b ctr);
        (dec 7, zeros);
      ]
      ~default:ctr
  in
  let sp_next =
    select_word b
      [
        (dec 7, B.const_word b ~width:sp_bits 0);
        (push, B.incr_word b sp);
        (pop, B.decr_word b sp);
      ]
      ~default:sp
  in
  B.connect_word b upc ~next:upc_next;
  B.connect_word b ctr ~next:ctr_next;
  B.connect_word b sp ~next:sp_next;
  Array.iteri
    (fun k slot ->
      let write = B.and_ b push (B.eq_const b sp k) in
      B.connect_word b slot ~next:(B.mux_word b ~sel:write ~t_:upc1 ~e:slot))
    stack;
  Array.iteri (fun i s -> B.output b (Printf.sprintf "y%d" i) s) upc;
  B.finish b

(* A microprogram sequencer driven by a synthesized control store: the
   instruction and branch target come from a pseudo-random ROM addressed by
   the micro-PC, leaving only the condition code as a free input.  The
   machine must walk its microprogram step by step, which gives the deep,
   narrow-frontier state graphs that starve breadth-first traversal (the
   am2910 effect in the paper's Table 1). *)
let microprogram ~addr_bits ~stack_depth ~seed =
  if addr_bits < 2 || stack_depth < 1 then invalid_arg "Generate.microprogram";
  let rand = rng seed in
  let b =
    B.create (Printf.sprintf "uprog_a%d_s%d_%d" addr_bits stack_depth seed)
  in
  let cc = B.input b "cc" in
  let upc = B.latch_word b "upc" ~width:addr_bits in
  let ctr = B.latch_word b "ctr" ~width:addr_bits in
  let sp_bits = max 1 (ceil_log2 (stack_depth + 1)) in
  let sp = B.latch_word b "sp" ~width:sp_bits in
  let stack =
    Array.init stack_depth (fun k ->
        B.latch_word b (Printf.sprintf "stk%d" k) ~width:addr_bits)
  in
  let rom_size = 1 lsl addr_bits in
  (* a crafted microprogram with a long counted loop: address 0 loads the
     counter and pushes the loop head; the body mixes sequential flow with
     condition-code branches (forward, within the body); the loop tail is
     RFCT, so the machine re-executes the body ctr times before falling
     through and restarting.  The walk is O(rom_size^2) steps deep, which
     is what starves breadth-first traversal. *)
  let body_lo = 1 and body_hi = rom_size - 3 in
  let rom =
    Array.init rom_size (fun a ->
        if a = 0 then (3, rom_size - 1) (* PUSH: ctr := max, push body_lo *)
        else if a = rom_size - 2 then (6, 0) (* RFCT: loop on the counter *)
        else if a = rom_size - 1 then (7, 0) (* JZ: restart *)
        else if a >= body_lo && a <= body_hi && rand 3 = 0 then
          (* conditional forward branch inside the body *)
          (2, min body_hi (a + 1 + rand (max 1 (body_hi - a))))
        else (0, 0) (* CONT *))
  in
  (* decode the ROM as a function of upc *)
  let addressed k = B.eq_const b upc k in
  let instr_bit j =
    B.or_list b
      (List.filter_map
         (fun a ->
           let op, _ = rom.(a) in
           if op land (1 lsl j) <> 0 then Some (addressed a) else None)
         (List.init rom_size Fun.id))
  in
  let data_bit j =
    B.or_list b
      (List.filter_map
         (fun a ->
           let _, d = rom.(a) in
           if d land (1 lsl j) <> 0 then Some (addressed a) else None)
         (List.init rom_size Fun.id))
  in
  let instr = Array.init 3 instr_bit in
  let data = Array.init addr_bits data_bit in
  let dec k = B.eq_const b instr k in
  let upc1 = B.incr_word b upc in
  let zeros = B.const_word b ~width:addr_bits 0 in
  let top =
    select_word b
      (List.init stack_depth (fun k -> (B.eq_const b sp (k + 1), stack.(k))))
      ~default:zeros
  in
  let sp_lt_depth =
    B.or_list b (List.init stack_depth (fun k -> B.eq_const b sp k))
  in
  let sp_gt_0 = B.not_ b (B.is_zero b sp) in
  let ctr_nz = B.not_ b (B.is_zero b ctr) in
  let push = B.and_ b (dec 3) sp_lt_depth in
  let pop_rtn = dec 4 in
  let pop_crtn = B.and_ b (dec 5) cc in
  let pop_rfct = B.and_ b (dec 6) (B.not_ b ctr_nz) in
  let pop = B.and_ b (B.or_list b [ pop_rtn; pop_crtn; pop_rfct ]) sp_gt_0 in
  let upc_next =
    select_word b
      [
        (dec 1, data);
        (dec 2, B.mux_word b ~sel:cc ~t_:data ~e:upc1);
        (dec 4, top);
        (dec 5, B.mux_word b ~sel:cc ~t_:top ~e:upc1);
        (dec 6, B.mux_word b ~sel:ctr_nz ~t_:top ~e:upc1);
        (dec 7, zeros);
      ]
      ~default:upc1
  in
  let ctr_next =
    select_word b
      [
        (dec 3, data);
        (B.and_ b (dec 6) ctr_nz, B.decr_word b ctr);
        (dec 7, zeros);
      ]
      ~default:ctr
  in
  let sp_next =
    select_word b
      [
        (dec 7, B.const_word b ~width:sp_bits 0);
        (push, B.incr_word b sp);
        (pop, B.decr_word b sp);
      ]
      ~default:sp
  in
  B.connect_word b upc ~next:upc_next;
  B.connect_word b ctr ~next:ctr_next;
  B.connect_word b sp ~next:sp_next;
  Array.iteri
    (fun k slot ->
      let write = B.and_ b push (B.eq_const b sp k) in
      B.connect_word b slot ~next:(B.mux_word b ~sel:write ~t_:upc1 ~e:slot))
    stack;
  Array.iteri (fun i s -> B.output b (Printf.sprintf "y%d" i) s) upc;
  B.finish b

(* ------------------------------------------------------------------ *)
(* s1269-like shift/accumulate datapath                                *)
(* ------------------------------------------------------------------ *)

let shifter_datapath ~width =
  if width < 2 then invalid_arg "Generate.shifter_datapath";
  let b = B.create (Printf.sprintf "shiftacc%d" width) in
  let start = B.input b "start" in
  let din = Array.init width (fun i -> B.input b (Printf.sprintf "din%d" i)) in
  let sr = B.latch_word b "sr" ~width in
  let acc = B.latch_word b "acc" ~width in
  let cnt_bits = max 1 (ceil_log2 (width + 1)) in
  let cnt = B.latch_word b "cnt" ~width:cnt_bits in
  let st = B.latch_word b "st" ~width:2 in
  (* states: 0 IDLE, 1 RUN, 2 DONE *)
  let idle = B.eq_const b st 0
  and run = B.eq_const b st 1
  and done_ = B.eq_const b st 2 in
  let go = B.and_ b idle start in
  let rotl = Array.init width (fun i -> sr.((i + width - 1) mod width)) in
  let sum = B.add_word b acc sr in
  let cnt1 = B.incr_word b cnt in
  let last = B.eq_const b cnt1 width in
  let zw = B.const_word b ~width 0 in
  let zc = B.const_word b ~width:cnt_bits 0 in
  B.connect_word b sr
    ~next:(select_word b [ (go, din); (run, rotl) ] ~default:sr);
  B.connect_word b acc
    ~next:(select_word b [ (go, zw); (run, sum) ] ~default:acc);
  B.connect_word b cnt
    ~next:(select_word b [ (go, zc); (run, cnt1) ] ~default:cnt);
  let st_next =
    select_word b
      [
        (go, B.const_word b ~width:2 1);
        (B.and_ b run last, B.const_word b ~width:2 2);
        (done_, B.const_word b ~width:2 0);
      ]
      ~default:st
  in
  B.connect_word b st ~next:st_next;
  Array.iteri (fun i s -> B.output b (Printf.sprintf "acc%d" i) s) acc;
  B.output b "done" done_;
  B.finish b

(* ------------------------------------------------------------------ *)
(* s3330-like handshake pipeline                                       *)
(* ------------------------------------------------------------------ *)

let handshake_pipeline ~stages =
  if stages < 1 then invalid_arg "Generate.handshake_pipeline";
  let b = B.create (Printf.sprintf "handshake%d" stages) in
  let in_valid = B.input b "in_valid" in
  let in_bit = B.input b "in_bit" in
  let out_ready = B.input b "out_ready" in
  let v = Array.init stages (fun i -> B.latch b (Printf.sprintf "v.%d" i)) in
  let d = Array.init stages (fun i -> B.latch b (Printf.sprintf "d.%d" i)) in
  (* ready ripples backwards from the consumer *)
  let ready_after = Array.make (stages + 1) (B.const b false) in
  ready_after.(stages) <- out_ready;
  for i = stages - 1 downto 0 do
    ready_after.(i) <-
      B.or_ b (B.not_ b v.(i)) (B.and_ b v.(i) ready_after.(i + 1))
  done;
  for i = 0 to stages - 1 do
    let go_out = B.and_ b v.(i) ready_after.(i + 1) in
    let incoming =
      if i = 0 then B.and_ b in_valid ready_after.(0)
      else B.and_ b v.(i - 1) ready_after.(i)
    in
    let incoming_bit = if i = 0 then in_bit else d.(i - 1) in
    B.connect b v.(i)
      ~next:(B.or_ b incoming (B.and_ b v.(i) (B.not_ b go_out)));
    B.connect b d.(i) ~next:(B.mux b ~sel:incoming ~t_:incoming_bit ~e:d.(i))
  done;
  B.output b "out_valid" v.(stages - 1);
  B.output b "out_bit" d.(stages - 1);
  B.finish b

(* ------------------------------------------------------------------ *)
(* s5378-like random controller and random combinational pools         *)
(* ------------------------------------------------------------------ *)

(* combinational shift-and-add array multiplier: the middle product bits
   are classic implicant-poor, BDD-hard cones *)
let multiplier ~bits =
  if bits < 2 then invalid_arg "Generate.multiplier";
  let b = B.create (Printf.sprintf "mult%d" bits) in
  let x = Array.init bits (fun i -> B.input b (Printf.sprintf "x%d" i)) in
  let y = Array.init bits (fun i -> B.input b (Printf.sprintf "y%d" i)) in
  let width = 2 * bits in
  let zero = B.const b false in
  let acc = ref (Array.make width zero) in
  for i = 0 to bits - 1 do
    (* partial product x·y_i shifted left by i *)
    let partial =
      Array.init width (fun j ->
          if j < i || j >= i + bits then zero
          else B.and_ b x.(j - i) y.(i))
    in
    acc := B.add_word b !acc partial
  done;
  Array.iteri (fun j s -> B.output b (Printf.sprintf "p%d" j) s) !acc;
  B.finish b

(* combinational ALU slice: op selects among add, subtract, and, xor *)
let alu ~width =
  if width < 2 then invalid_arg "Generate.alu";
  let b = B.create (Printf.sprintf "alu%d" width) in
  let x = Array.init width (fun i -> B.input b (Printf.sprintf "a%d" i)) in
  let y = Array.init width (fun i -> B.input b (Printf.sprintf "b%d" i)) in
  let op = Array.init 2 (fun i -> B.input b (Printf.sprintf "op%d" i)) in
  let sum = B.add_word b x y in
  let diff =
    (* x - y = x + ¬y + 1 *)
    let noty = Array.map (B.not_ b) y in
    B.incr_word b (B.add_word b x noty)
  in
  let ands = Array.mapi (fun i xb -> B.and_ b xb y.(i)) x in
  let xors = Array.mapi (fun i xb -> B.xor_ b xb y.(i)) x in
  let sel0 = B.eq_const b op 0
  and sel1 = B.eq_const b op 1
  and sel2 = B.eq_const b op 2 in
  let result =
    select_word b [ (sel0, sum); (sel1, diff); (sel2, ands) ] ~default:xors
  in
  Array.iteri (fun i s -> B.output b (Printf.sprintf "r%d" i) s) result;
  B.output b "zero" (B.is_zero b result);
  B.finish b

let random_fn b rand sources =
  let pick () =
    let s = sources.(rand (Array.length sources)) in
    if rand 3 = 0 then B.not_ b s else s
  in
  let op x y =
    match rand 4 with
    | 0 -> B.and_ b x y
    | 1 -> B.or_ b x y
    | 2 -> B.xor_ b x y
    | _ -> B.mux b ~sel:(pick ()) ~t_:x ~e:y
  in
  let arity = 3 + rand 2 in
  let rec build k = if k <= 1 then pick () else op (pick ()) (build (k - 1)) in
  build arity

let dense_controller ~latches ~seed =
  if latches < 4 then invalid_arg "Generate.dense_controller";
  let rand = rng seed in
  let b = B.create (Printf.sprintf "dense%d_s%d" latches seed) in
  let nin = max 2 (latches / 8) in
  let ins = Array.init nin (fun i -> B.input b (Printf.sprintf "w%d" i)) in
  let regs =
    Array.init latches (fun i -> B.latch b (Printf.sprintf "q.%d" i))
  in
  let sources = Array.append regs ins in
  Array.iteri
    (fun i l ->
      (* bias towards local feedback so the machine has memory *)
      let f = random_fn b rand sources in
      let next =
        if rand 4 = 0 then B.mux b ~sel:(ins.(rand nin)) ~t_:f ~e:regs.(i)
        else f
      in
      B.connect b l ~next)
    regs;
  B.output b "o" (random_fn b rand sources);
  B.finish b

let random_netlist ~inputs ~gates ~outputs ~seed =
  if inputs < 2 || gates < 1 || outputs < 1 then
    invalid_arg "Generate.random_netlist";
  let rand = rng seed in
  let b = B.create (Printf.sprintf "rand_i%d_g%d_s%d" inputs gates seed) in
  let nets = ref [||] in
  let ins = Array.init inputs (fun i -> B.input b (Printf.sprintf "x%d" i)) in
  nets := ins;
  for _ = 1 to gates do
    let g = random_fn b rand !nets in
    nets := Array.append !nets [| g |]
  done;
  let total = Array.length !nets in
  for k = 0 to outputs - 1 do
    (* bias outputs towards the deepest cones *)
    let pick = total - 1 - rand (max 1 (total / 3)) in
    B.output b (Printf.sprintf "y%d" k) !nets.(pick)
  done;
  B.finish b
