(** Gate-level sequential circuits.

    The paper's experiments run on benchmark FSMs inside VIS; this module is
    the corresponding substrate: a minimal netlist IR with a builder DSL,
    validation, and structural queries.  Synthetic benchmark circuits are in
    {!Generate}, BLIF I/O in {!Blif}, BDD compilation in {!Compile}, and
    explicit-state simulation in {!Sim}. *)

type signal = int
(** A net, identified by its index in the gate array. *)

(** The driver of a net. *)
type gate =
  | Const of bool
  | Input of string  (** primary input *)
  | Not of signal
  | And of signal * signal
  | Or of signal * signal
  | Xor of signal * signal
  | Mux of signal * signal * signal  (** [Mux (sel, t, e)]: if sel then t else e *)
  | Latch of { init : bool; next : signal; name : string }
      (** state element: value at time 0 is [init], then follows [next] *)

type t = private {
  name : string;
  gates : gate array;
  outputs : (string * signal) list;
}

val name : t -> string
val gate : t -> signal -> gate
val num_signals : t -> int
val outputs : t -> (string * signal) list

val latches : t -> signal list
(** Latch nets, in declaration order. *)

val inputs : t -> (string * signal) list
(** Primary inputs, in declaration order. *)

val num_latches : t -> int
val num_inputs : t -> int

val stats : t -> string
(** One-line summary: name, #inputs, #latches, #gates. *)

(** Imperative netlist construction.  Latches are declared first and their
    next-state nets connected later, allowing feedback; {!Builder.finish}
    checks that every latch is connected and that the combinational part is
    acyclic. *)
module Builder : sig
  type b

  val create : string -> b
  val const : b -> bool -> signal
  val input : b -> string -> signal
  val not_ : b -> signal -> signal
  val and_ : b -> signal -> signal -> signal
  val or_ : b -> signal -> signal -> signal
  val xor_ : b -> signal -> signal -> signal
  val xnor_ : b -> signal -> signal -> signal
  val nand_ : b -> signal -> signal -> signal
  val nor_ : b -> signal -> signal -> signal
  val mux : b -> sel:signal -> t_:signal -> e:signal -> signal
  val and_list : b -> signal list -> signal
  val or_list : b -> signal list -> signal

  val latch : b -> ?init:bool -> string -> signal
  (** Declare a state element; connect its next-state net with {!connect}
      before {!finish}. *)

  val connect : b -> signal -> next:signal -> unit
  (** [connect b l ~next] sets the next-state net of latch [l].
      @raise Invalid_argument if [l] is not a latch or already connected. *)

  val output : b -> string -> signal -> unit

  val finish : b -> t
  (** @raise Invalid_argument on unconnected latches or combinational
      cycles. *)

  (** {2 Word-level helpers} *)

  val const_word : b -> width:int -> int -> signal array
  (** Little-endian constant. *)

  val latch_word : b -> ?init:int -> string -> width:int -> signal array
  (** A register of [width] latches named [name.<i>]. *)

  val connect_word : b -> signal array -> next:signal array -> unit
  val mux_word : b -> sel:signal -> t_:signal array -> e:signal array -> signal array

  val incr_word : b -> signal array -> signal array
  (** Ripple increment (wraps). *)

  val decr_word : b -> signal array -> signal array
  (** Ripple decrement (wraps). *)

  val add_word : b -> signal array -> signal array -> signal array
  (** Ripple adder (sum truncated to the operand width). *)

  val eq_word : b -> signal array -> signal array -> signal
  val eq_const : b -> signal array -> int -> signal
  val is_zero : b -> signal array -> signal
end
