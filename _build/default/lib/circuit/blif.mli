(** BLIF (Berkeley Logic Interchange Format) reader and writer.

    Supports the subset used by the classic benchmark sets: [.model],
    [.inputs], [.outputs], [.names] (single-output PLA covers, both
    phases), [.latch] (with optional type/control fields and initial
    value) and [.end], with [\\] line continuations and [#] comments. *)

exception Parse_error of string

val parse_string : string -> Circuit.t
(** @raise Parse_error on malformed input. *)

val parse_file : string -> Circuit.t

val to_string : Circuit.t -> string
(** Write a circuit as BLIF ([.names] covers with one row per gate). *)

val to_file : string -> Circuit.t -> unit
