(** Explicit-state simulation of circuits — the reference semantics used by
    the tests to validate symbolic reachability, and by the examples to
    print traces. *)

type state = bool array
(** Latch values, indexed in the order of {!Circuit.latches}. *)

val initial_state : Circuit.t -> state

val step :
  Circuit.t -> state -> (string -> bool) -> state * (string * bool) list
(** [step c s input] returns the next state and the output values under the
    given input assignment (by input name). *)

val eval_output : Circuit.t -> state -> (string -> bool) -> string -> bool
(** Value of one named output. @raise Not_found if no such output. *)

val encode : state -> int
(** Little-endian packing (≤ 62 latches). *)

val decode : nlatches:int -> int -> state

val reachable : ?max_states:int -> Circuit.t -> (int, unit) Hashtbl.t
(** Explicit breadth-first reachability over all input combinations.
    Intended for small circuits: requires at most 20 inputs and stops with
    @raise Failure once [max_states] (default 1_000_000) states are seen. *)
