(* Generalized conjunctive decomposition by decomposition points (paper
   Section 3, Fig. 5).

   Factors are built bottom-up.  At a decomposition point with top variable
   v the factors are Equation (1)'s (v + f_e, v' + f_t); above a point the
   children's factors are combined either straight or crossed:

     g = v·g_t + v'·g_e ; h = v·h_t + v'·h_e     or
     g = v·g_t + v'·h_e ; h = v·h_t + v'·g_e

   Either way g·h = v·(g_t·h_t) + v'·(g_e·h_e) = f, so the product is
   preserved by induction.  The combination is chosen to balance the factor
   sizes, using a memoized tree-size estimate (cheap, monotone with the
   actual size) rather than exact DAG sizes. *)

let tree_estimate () =
  let memo = Hashtbl.create 256 in
  let rec est f =
    match Bdd.view f with
    | Bdd.False | Bdd.True -> 0.
    | Bdd.Node { hi; lo; _ } -> (
        match Hashtbl.find_opt memo (Bdd.id f) with
        | Some e -> e
        | None ->
            let e = 1. +. est hi +. est lo in
            Hashtbl.add memo (Bdd.id f) e;
            e)
  in
  est

let decompose man ~is_point f =
  let est = tree_estimate () in
  let cache = Hashtbl.create 256 in
  let rec go f =
    match Bdd.view f with
    | Bdd.False | Bdd.True -> (f, Bdd.tt man)
    | Bdd.Node { var; hi; lo } -> (
        match Hashtbl.find_opt cache (Bdd.id f) with
        | Some gh -> gh
        | None ->
            let gh =
              if is_point f then
                ( Bdd.mk man ~var ~hi:(Bdd.tt man) ~lo,
                  Bdd.mk man ~var ~hi ~lo:(Bdd.tt man) )
              else begin
                let gt, ht = go hi and ge, he = go lo in
                let straight =
                  (Bdd.mk man ~var ~hi:gt ~lo:ge, Bdd.mk man ~var ~hi:ht ~lo:he)
                and crossed =
                  (Bdd.mk man ~var ~hi:gt ~lo:he, Bdd.mk man ~var ~hi:ht ~lo:ge)
                in
                let skew (g, h) = abs_float (est g -. est h) in
                if skew straight <= skew crossed then straight else crossed
              end
            in
            Hashtbl.add cache (Bdd.id f) gh;
            gh)
  in
  let g, h = go f in
  { Decomp.g; h }

(* ------------------------------------------------------------------ *)
(* Band selection                                                      *)
(* ------------------------------------------------------------------ *)

let heights f =
  let tbl = Hashtbl.create 256 in
  let height n =
    match Bdd.view n with
    | Bdd.False | Bdd.True -> 0
    | Bdd.Node _ -> Hashtbl.find tbl (Bdd.id n)
  in
  (* Bdd.iter_nodes visits children before parents *)
  Bdd.iter_nodes
    (fun n ->
      Hashtbl.replace tbl (Bdd.id n)
        (1 + max (height (Bdd.high n)) (height (Bdd.low n))))
    f;
  (tbl, height)

let band_points man ?(band = (0.35, 0.65)) f =
  ignore man;
  let lo_frac, hi_frac = band in
  if Bdd.is_const f then fun _ -> false
  else begin
    let _, height = heights f in
    let top = float_of_int (height f) in
    let lo = lo_frac *. top and hi = hi_frac *. top in
    fun n ->
      match Bdd.view n with
      | Bdd.False | Bdd.True -> false
      | Bdd.Node _ ->
          let h = float_of_int (height n) in
          h >= lo && h <= hi
  end

let band man ?band:b f =
  decompose man ~is_point:(band_points man ?band:b f) f

(* ------------------------------------------------------------------ *)
(* Disjoint selection                                                  *)
(* ------------------------------------------------------------------ *)

let disjoint_points man ?(sample = 256) ?(max_sharing = 0.25)
    ?(min_balance = 0.4) f =
  if Bdd.is_const f then fun _ -> false
  else begin
    (* scan candidates top-down; measuring sharing is one DAG traversal per
       candidate (quadratic in the worst case, hence the sample cap — the
       paper makes the same concession) *)
    let points = Hashtbl.create 64 in
    let q = Levelq.create man in
    ignore (Levelq.push q f);
    let budget = ref sample in
    let rec scan () =
      if !budget <= 0 then ()
      else
        match Levelq.pop q with
        | None -> ()
        | Some n ->
            (match Bdd.view n with
            | Bdd.False | Bdd.True -> ()
            | Bdd.Node { hi; lo; _ } ->
                if not (Bdd.is_const hi || Bdd.is_const lo) then begin
                  decr budget;
                  let sh = Bdd.size hi and sl = Bdd.size lo in
                  let shared = Bdd.shared_size [ hi; lo ] in
                  let overlap =
                    float_of_int (sh + sl - shared)
                    /. float_of_int (max 1 (min sh sl))
                  in
                  let bal =
                    float_of_int (min sh sl) /. float_of_int (max 1 (max sh sl))
                  in
                  if overlap <= max_sharing && bal >= min_balance then
                    Hashtbl.replace points (Bdd.id n) ()
                end;
                ignore (Levelq.push q hi);
                ignore (Levelq.push q lo));
            scan ()
    in
    scan ();
    fun n -> Hashtbl.mem points (Bdd.id n)
  end

let disjoint man ?sample ?max_sharing ?min_balance f =
  decompose man
    ~is_point:(disjoint_points man ?sample ?max_sharing ?min_balance f)
    f

(* ------------------------------------------------------------------ *)
(* Disjunctive duals                                                   *)
(* ------------------------------------------------------------------ *)

(* The paper notes that disjunctive partitioning "is completely symmetric
   to the conjunctive method": f = g ∨ h is obtained from a conjunctive
   decomposition of ¬f by De Morgan. *)
let disjunctive_of man conj_method f =
  let { Decomp.g; h } = conj_method man (Bdd.bnot man f) in
  { Decomp.g = Bdd.bnot man g; h = Bdd.bnot man h }

let disj_band man ?band:b f = disjunctive_of man (fun m g -> band m ?band:b g) f

let disj_disjoint man ?sample ?max_sharing ?min_balance f =
  disjunctive_of man
    (fun m g -> disjoint m ?sample ?max_sharing ?min_balance g)
    f
