(** McMillan's canonical conjunctive decomposition (CAV'96) — the prior
    approach discussed in the paper's Section 3.  Produces up to one factor
    per support variable; the conjunction of the factors is exactly the
    input, and the total size is linear in the number of factors times the
    input size. *)

val decompose : Bdd.man -> Bdd.t -> Bdd.t list
(** [decompose man f] returns factors [g_1 … g_k] with [∧ g_i = f]
    (trivial [tt] factors are dropped). *)

val verify : Bdd.man -> Bdd.t -> Bdd.t list -> bool
(** Check [∧ g_i = f]. *)
