type stats = {
  replacements : int;
  remaps : int;
  grandchild : int;
  zeroes : int;
  estimated_size : int;
  estimated_minterm_fraction : float;
}

(* Replacement status of a node (paper 2.1.1).  [Grandchild] keeps the
   shared grandchild on one side and 0 on the other. *)
type status =
  | Keep
  | Zero
  | Child of Bdd.t
  | Grandchild of { var : int; hi : Bdd.t; lo : Bdd.t }

type info = {
  man : Bdd.man;
  func_ref : (int, int) Hashtbl.t; (* live arcs into each node, +1 for root *)
  fnodes : (int, unit) Hashtbl.t; (* nodes of f (plus created grandchildren) *)
  status : (int, status) Hashtbl.t;
  dead : (int, unit) Hashtbl.t; (* nodes eliminated by a committed repl. *)
  mutable minterms : float; (* running result weight (exact) *)
  mutable size : int; (* running upper bound on |result| *)
}

let get_ref info n = Option.value ~default:0 (Hashtbl.find_opt info.func_ref (Bdd.id n))

let add_ref info n d =
  if not (Bdd.is_const n) then
    Hashtbl.replace info.func_ref (Bdd.id n) (get_ref info n + d)

(* First pass (Fig. 2): minterm weights are delegated to the manager's
   per-node cache; here we collect reference counts and the node set. *)
let analyze man f =
  let info =
    {
      man;
      func_ref = Hashtbl.create 256;
      fnodes = Hashtbl.create 256;
      status = Hashtbl.create 64;
      dead = Hashtbl.create 64;
      minterms = Bdd.weight man f;
      size = Bdd.size f;
    }
  in
  Bdd.iter_nodes
    (fun n ->
      Hashtbl.replace info.fnodes (Bdd.id n) ();
      add_ref info (Bdd.high n) 1;
      add_ref info (Bdd.low n) 1)
    f;
  add_ref info f 1;
  (* the external reference to the root *)
  info

(* findReplacement: first applicable of remap, replace-by-grandchild,
   replace-by-0. *)
let find_replacement info n =
  let man = info.man in
  let hi = Bdd.high n and lo = Bdd.low n in
  if Bdd.leq man lo hi then Child lo
  else if Bdd.leq man hi lo then Child hi
  else
    match (Bdd.view hi, Bdd.view lo) with
    | ( Bdd.Node { var = vh; hi = hh; lo = hl },
        Bdd.Node { var = vl; hi = lh; lo = ll } )
      when vh = vl ->
        if Bdd.equal hh lh && not (Bdd.is_false hh) then
          Grandchild { var = vh; hi = hh; lo = Bdd.ff man }
        else if Bdd.equal hl ll && not (Bdd.is_false hl) then
          Grandchild { var = vh; hi = Bdd.ff man; lo = hl }
        else Zero
    | (Bdd.False | Bdd.True | Bdd.Node _), _ -> Zero

let replacement_weight info = function
  | Keep -> invalid_arg "replacement_weight"
  | Zero -> 0.
  | Child c -> Bdd.weight info.man c
  | Grandchild { hi; lo; _ } ->
      0.5 *. (Bdd.weight info.man hi +. Bdd.weight info.man lo)

(* The node the replacement redirects to, which must survive even when all
   of its references come from eliminated nodes. *)
let protected_id = function
  | Keep | Zero -> -1
  | Child c -> if Bdd.is_const c then -1 else Bdd.id c
  | Grandchild { hi; lo; _ } ->
      let g = if Bdd.is_const hi then lo else hi in
      if Bdd.is_const g then -1 else Bdd.id g

(* nodesSaved (Fig. 4): count the nodes dominated by [n], i.e. eliminated
   when [n]'s incoming arcs are redirected to the replacement.  A node dies
   when all of its live references come from dying nodes.  Returns the lower
   bound on the node savings, the eliminated set, and the (possibly new)
   grandchild node. *)
let nodes_saved info n repl =
  let man = info.man in
  let protect = protected_id repl in
  let q = Levelq.create man in
  let local = Hashtbl.create 32 in
  let eliminated = ref [ n ] in
  let elim_set = Hashtbl.create 32 in
  Hashtbl.add elim_set (Bdd.id n) ();
  let bump c =
    if not (Bdd.is_const c) then begin
      let cur = Option.value ~default:0 (Hashtbl.find_opt local (Bdd.id c)) in
      Hashtbl.replace local (Bdd.id c) (cur + 1);
      ignore (Levelq.push q c)
    end
  in
  bump (Bdd.high n);
  bump (Bdd.low n);
  let rec drain () =
    match Levelq.pop q with
    | None -> ()
    | Some v ->
        let idv = Bdd.id v in
        if
          idv <> protect
          && (not (Hashtbl.mem info.dead idv))
          && Hashtbl.find local idv = get_ref info v
        then begin
          eliminated := v :: !eliminated;
          Hashtbl.add elim_set idv ();
          bump (Bdd.high v);
          bump (Bdd.low v)
        end;
        drain ()
  in
  drain ();
  (* a replace-by-grandchild may add one node that is not part of f *)
  let nd, extra =
    match repl with
    | Grandchild { var; hi; lo } ->
        let nd = Bdd.mk man ~var ~hi ~lo in
        let fresh =
          (not (Hashtbl.mem info.fnodes (Bdd.id nd)))
          || Hashtbl.mem info.dead (Bdd.id nd)
          || Hashtbl.mem elim_set (Bdd.id nd)
        in
        (Some nd, if fresh then 1 else 0)
    | Keep | Zero | Child _ -> (None, 0)
  in
  (List.length !eliminated - extra, !eliminated, nd)

(* updateInfo: commit an accepted replacement — mark the eliminated nodes
   dead, rewire the reference counts, update the running totals. *)
let commit info n repl ~lost ~saved ~eliminated ~nd =
  let nrefs = get_ref info n in
  List.iter
    (fun v ->
      Hashtbl.replace info.dead (Bdd.id v) ();
      add_ref info (Bdd.high v) (-1);
      add_ref info (Bdd.low v) (-1))
    eliminated;
  (match repl with
  | Keep -> assert false
  | Zero -> ()
  | Child c -> add_ref info c nrefs
  | Grandchild { hi; lo; _ } ->
      let nd = Option.get nd in
      let alive =
        Hashtbl.mem info.fnodes (Bdd.id nd)
        && not (Hashtbl.mem info.dead (Bdd.id nd))
      in
      if alive then add_ref info nd nrefs
      else begin
        (* fresh (or resurrected) node: it contributes its own arcs *)
        Hashtbl.replace info.fnodes (Bdd.id nd) ();
        Hashtbl.remove info.dead (Bdd.id nd);
        Hashtbl.replace info.func_ref (Bdd.id nd) nrefs;
        add_ref info hi 1;
        add_ref info lo 1
      end);
  Hashtbl.replace info.status (Bdd.id n) repl;
  info.minterms <- info.minterms -. lost;
  info.size <- info.size - saved

(* Second pass (Fig. 3). *)
let mark_nodes info f ~threshold ~quality =
  let man = info.man in
  let q = Levelq.create man in
  let pathw = Hashtbl.create 256 in
  let add_path c w =
    if not (Bdd.is_const c) then begin
      let cur =
        Option.value ~default:0. (Hashtbl.find_opt pathw (Bdd.id c))
      in
      Hashtbl.replace pathw (Bdd.id c) (cur +. w);
      ignore (Levelq.push q c)
    end
  in
  add_path f 1.0;
  let rec loop () =
    if info.size <= threshold then ()
    else
      match Levelq.pop q with
      | None -> ()
      | Some n ->
          (* every enqueued node is a child of a live kept node or the
             target of a redirect, and neither can be eliminated later *)
          assert (not (Hashtbl.mem info.dead (Bdd.id n)));
          let p = Hashtbl.find pathw (Bdd.id n) in
          let repl = find_replacement info n in
          let lost = p *. (Bdd.weight man n -. replacement_weight info repl) in
          let saved, eliminated, nd = nodes_saved info n repl in
          let w = info.minterms and s = float_of_int info.size in
          let w' = w -. lost and s' = float_of_int (info.size - saved) in
          let ratio =
            if s' < 1. || w <= 0. then neg_infinity
            else w' /. s' /. (w /. s)
          in
          if ratio > quality then begin
            commit info n repl ~lost ~saved ~eliminated ~nd;
            (* paths into [n] now flow into the replacement: enqueue it
               with the full weight (the paper's enqueueChildren with the
               replacement) so that its own processing sees correct path
               fractions even when it is an existing node of f *)
            match repl with
            | Keep -> assert false
            | Zero -> ()
            | Child c -> add_path c p
            | Grandchild _ -> add_path (Option.get nd) p
          end
          else begin
            add_path (Bdd.high n) (p /. 2.);
            add_path (Bdd.low n) (p /. 2.)
          end;
          loop ()
  in
  loop ()

(* Third pass: rebuild applying the recorded statuses. *)
let build_result info f =
  let man = info.man in
  let memo = Hashtbl.create 256 in
  let rec build n =
    if Bdd.is_const n then n
    else
      match Hashtbl.find_opt memo (Bdd.id n) with
      | Some r -> r
      | None ->
          let r =
            match
              Option.value ~default:Keep
                (Hashtbl.find_opt info.status (Bdd.id n))
            with
            | Zero -> Bdd.ff man
            | Child c -> build c
            | Grandchild { var; hi; lo } ->
                (* the replacement node may itself carry a replacement
                   status (it was enqueued by markNodes), so route the
                   rebuild through it rather than constructing directly *)
                build (Bdd.mk man ~var ~hi ~lo)
            | Keep ->
                Bdd.mk man ~var:(Bdd.topvar n) ~hi:(build (Bdd.high n))
                  ~lo:(build (Bdd.low n))
          in
          Hashtbl.add memo (Bdd.id n) r;
          r
  in
  build f

let approximate_with_stats man ?(threshold = 0) ?(quality = 1.0) f =
  if Bdd.is_const f then
    ( f,
      {
        replacements = 0;
        remaps = 0;
        grandchild = 0;
        zeroes = 0;
        estimated_size = 0;
        estimated_minterm_fraction = Bdd.weight man f;
      } )
  else begin
    let info = analyze man f in
    mark_nodes info f ~threshold ~quality;
    let result = build_result info f in
    let count pred =
      Hashtbl.fold (fun _ s acc -> if pred s then acc + 1 else acc) info.status 0
    in
    let stats =
      {
        replacements = count (fun s -> s <> Keep);
        remaps = count (function Child _ -> true | _ -> false);
        grandchild = count (function Grandchild _ -> true | _ -> false);
        zeroes = count (function Zero -> true | _ -> false);
        estimated_size = info.size;
        estimated_minterm_fraction = info.minterms;
      }
    in
    (result, stats)
  end

let approximate man ?threshold ?quality f =
  fst (approximate_with_stats man ?threshold ?quality f)
