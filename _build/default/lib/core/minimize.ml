(* Safe minimization μ(l,u) (paper Section 2.2 and [Hong et al., DAC'97]).

   μ(l,u) returns a function in the interval [l,u].  It is *safe* when the
   result is never larger than either bound.  Sibling substitution
   (Bdd.restrict) minimizes within the interval but offers no size
   guarantee, so safety is obtained by falling back on the smaller bound. *)

let minimize man ~lower ~upper =
  if not (Bdd.leq man lower upper) then
    invalid_arg "Minimize.minimize: lower > upper";
  Bdd.squeeze man ~lower ~upper

let restrict_to_interval man ~lower ~upper =
  if not (Bdd.leq man lower upper) then
    invalid_arg "Minimize.restrict_to_interval: lower > upper";
  if Bdd.equal lower upper then lower
  else
    (* the care set: where the interval pins the value *)
    let care = Bdd.bor man lower (Bdd.bnot man upper) in
    if Bdd.is_false care then lower else Bdd.restrict man lower care

let is_safe man ~lower ~upper result =
  Bdd.size result <= Bdd.size lower
  && Bdd.size result <= Bdd.size upper
  && Bdd.leq man lower result
  && Bdd.leq man result upper
