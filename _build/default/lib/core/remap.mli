(** [remapUnderApprox] (RUA) — the paper's Section 2.1.

    A safe underapproximation algorithm: it derives from [f] a BDD [g ≤ f]
    by replacing selected nodes with (a) one of their children when the
    function is unate in the node's variable ({e remap}, as in constrain),
    (b) a shared grandchild ({e replace-by-grandchild}), or (c) the constant
    0 ({e replace-by-0}).  Replacements are accepted only when a lower bound
    on the resulting density gain exceeds the [quality] factor, so with
    [quality >= 1.] the algorithm is {e safe}: [density(g) >= density(f)]
    (Definition 1 of the paper).

    The implementation follows the paper's three passes: [analyze]
    (minterm weights and reference counts, Fig. 2), [markNodes] (top-down
    replacement marking with a by-level priority queue, Fig. 3, using the
    dominator-counting [nodesSaved] of Fig. 4), and [buildResult]. *)

type stats = {
  replacements : int;  (** nodes marked for replacement *)
  remaps : int;  (** of which: replaced by a child *)
  grandchild : int;  (** of which: replaced by a grandchild *)
  zeroes : int;  (** of which: replaced by the constant 0 *)
  estimated_size : int;  (** markNodes' final upper bound on |result| *)
  estimated_minterm_fraction : float;
      (** markNodes' exact count of remaining minterms (as a fraction of
          all assignments) *)
}

val approximate :
  Bdd.man -> ?threshold:int -> ?quality:float -> Bdd.t -> Bdd.t
(** [approximate man ~threshold ~quality f] returns an underapproximation
    of [f].  [threshold] (default [0]) stops the marking pass early once
    the estimated result size falls to the threshold or below; [0] lets it
    examine every node, as in the paper's experiments.  [quality]
    (default [1.0]) is the minimum acceptable ratio of new to old density;
    values below 1 make the algorithm more aggressive (and unsafe), values
    above 1 more conservative. *)

val approximate_with_stats :
  Bdd.man -> ?threshold:int -> ?quality:float -> Bdd.t -> Bdd.t * stats
(** Same, also reporting what the marking pass did. *)
