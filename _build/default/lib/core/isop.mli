(** Irredundant sum-of-products covers from BDDs (Minato–Morreale ISOP).

    Short-path subsetting works because short BDD paths are large
    implicants; ISOP makes that structure explicit: it extracts, from an
    interval [l ≤ u], an irredundant cover of cubes [c] with
    [l ≤ c ≤ u].  With [l = u = f] the cover is exactly [f]. *)

type cube = (int * bool) list
(** A product term as literals (variable, phase). *)

val isop : Bdd.man -> lower:Bdd.t -> upper:Bdd.t -> cube list * Bdd.t
(** [isop man ~lower ~upper] returns the cubes and their disjunction [c],
    with [lower ≤ c ≤ upper] and each cube an implicant of [upper]
    containing at least one [lower]-minterm no other cube covers
    (irredundancy, property-tested).
    @raise Invalid_argument if [lower ≰ upper]. *)

val cover : Bdd.man -> Bdd.t -> cube list
(** [cover man f]: an irredundant cover of exactly [f]. *)

val cube_to_bdd : Bdd.man -> cube -> Bdd.t
