type pair = { g : Bdd.t; h : Bdd.t }

let shared_size { g; h } = Bdd.shared_size [ g; h ]
let max_size { g; h } = max (Bdd.size g) (Bdd.size h)

let balance { g; h } =
  let a = float_of_int (Bdd.size g) and b = float_of_int (Bdd.size h) in
  if a = 0. && b = 0. then 1. else min a b /. max a b

let verify_conj man f { g; h } = Bdd.equal f (Bdd.band man g h)
let verify_disj man f { g; h } = Bdd.equal f (Bdd.bor man g h)

(* Choose the splitting variable minimizing the size of the larger cofactor
   (our rendering of [Cabodi et al. 96] / [Narayan et al. 97]; the paper
   Section 4 uses exactly this cost function).  The estimation cost is
   linear in #variables × |f|. *)
let best_split_var man f =
  match Bdd.support man f with
  | [] -> invalid_arg "Decomp.best_split_var: constant"
  | sup ->
      let cost v =
        let s1 = Bdd.size (Bdd.cofactor man f ~var:v true)
        and s0 = Bdd.size (Bdd.cofactor man f ~var:v false) in
        (max s1 s0, s1 + s0)
      in
      let best, _ =
        List.fold_left
          (fun (bv, bc) v ->
            let c = cost v in
            if c < bc then (v, c) else (bv, bc))
          (List.hd sup, cost (List.hd sup))
          (List.tl sup)
      in
      best

(* Equation (1): f = g·h with g = x + f_x' and h = x' + f_x. *)
let conj_cofactor_at man f v =
  let fx = Bdd.cofactor man f ~var:v true
  and fx' = Bdd.cofactor man f ~var:v false in
  let x = Bdd.ithvar man v and x' = Bdd.nithvar man v in
  { g = Bdd.bor man x fx'; h = Bdd.bor man x' fx }

(* The symmetric disjunctive split: f = x·f_x + x'·f_x'. *)
let disj_cofactor_at man f v =
  let fx = Bdd.cofactor man f ~var:v true
  and fx' = Bdd.cofactor man f ~var:v false in
  let x = Bdd.ithvar man v and x' = Bdd.nithvar man v in
  { g = Bdd.band man x fx; h = Bdd.band man x' fx' }

let conj_cofactor man f =
  if Bdd.is_const f then { g = f; h = Bdd.tt man }
  else conj_cofactor_at man f (best_split_var man f)

let disj_cofactor man f =
  if Bdd.is_const f then { g = f; h = Bdd.ff man }
  else disj_cofactor_at man f (best_split_var man f)
