type cube = (int * bool) list

let cube_to_bdd man c = Bdd.cube_of_literals man c

(* Minato–Morreale recursion.  At each variable v the cover splits into
   cubes containing v', cubes containing v, and cubes without v; the
   variable-free residue recurses on what neither signed part covered. *)
let isop man ~lower ~upper =
  if not (Bdd.leq man lower upper) then invalid_arg "Isop.isop: lower > upper";
  let rec go l u =
    if Bdd.is_false l then ([], Bdd.ff man)
    else if Bdd.is_true u then ([ [] ], Bdd.tt man)
    else begin
      let v =
        (* top variable of the pair *)
        let lv vv =
          if Bdd.is_const vv then max_int
          else Bdd.level_of_var man (Bdd.topvar vv)
        in
        let choose = if lv l <= lv u then l else u in
        Bdd.topvar choose
      in
      let l1 = Bdd.cofactor man l ~var:v true
      and l0 = Bdd.cofactor man l ~var:v false
      and u1 = Bdd.cofactor man u ~var:v true
      and u0 = Bdd.cofactor man u ~var:v false in
      (* cubes that must carry the literal v' (resp. v): lower-minterms on
         one side that the other side's upper cannot absorb *)
      let cubes0, c0 = go (Bdd.bdiff man l0 u1) u0 in
      let cubes1, c1 = go (Bdd.bdiff man l1 u0) u1 in
      (* what remains needed on both sides, coverable without v *)
      let l0' = Bdd.bdiff man l0 c0 and l1' = Bdd.bdiff man l1 c1 in
      let ld = Bdd.bor man l0' l1' in
      let cubesd, cd = go ld (Bdd.band man u0 u1) in
      let cover =
        Bdd.disj man
          [
            Bdd.band man (Bdd.nithvar man v) c0;
            Bdd.band man (Bdd.ithvar man v) c1;
            cd;
          ]
      in
      ( List.map (fun c -> (v, false) :: c) cubes0
        @ List.map (fun c -> (v, true) :: c) cubes1
        @ cubesd,
        cover )
    end
  in
  go lower upper

let cover man f = fst (isop man ~lower:f ~upper:f)
