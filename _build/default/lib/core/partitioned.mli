(** Partitioned ROBDDs (Narayan et al., the paper's references [19, 20]) —
    the representation that Section 3's decompositions feed.

    A function is kept as an orthogonal list of windows
    [f = ∨ᵢ (wᵢ ∧ fᵢ)] where the window functions [wᵢ] are pairwise
    disjoint and cover the whole space, and each [fᵢ] is only meaningful
    inside its window (it is stored constrained by [wᵢ]).  Each window can
    be far smaller than the monolithic BDD, and windows never need to
    coexist in full during manipulation. *)

type t
(** A partitioned representation.  Invariants (checked by {!well_formed}):
    windows pairwise disjoint, windows cover the space. *)

val windows : t -> (Bdd.t * Bdd.t) list
(** The [(wᵢ, fᵢ)] pairs. *)

val of_bdd : Bdd.man -> ?parts:int -> Bdd.t -> t
(** Split along the best cofactoring variables (those minimizing the larger
    cofactor, as in the paper's {e Cofactor} method), producing at most
    [parts] windows (default 4; rounded down to a power of two).  Each
    [fᵢ] is minimized against its window with the generalized cofactor. *)

val of_windows : Bdd.man -> (Bdd.t * Bdd.t) list -> t
(** Use the given window/function pairs.
    @raise Invalid_argument if the windows are not orthogonal. *)

val to_bdd : Bdd.man -> t -> Bdd.t
(** [∨ᵢ (wᵢ ∧ fᵢ)]. *)

val well_formed : Bdd.man -> t -> bool

val apply : Bdd.man -> (Bdd.t -> Bdd.t -> Bdd.t) -> t -> t -> t
(** Pointwise binary operation.  The two representations are refined to a
    common orthogonal window set first (the pairwise products of their
    windows), so any window structures combine. *)

val map : Bdd.man -> (Bdd.t -> Bdd.t) -> t -> t
(** Pointwise unary operation (e.g. negation) within each window. *)

val band : Bdd.man -> t -> t -> t
val bor : Bdd.man -> t -> t -> t
val bnot : Bdd.man -> t -> t

val is_false : Bdd.man -> t -> bool
(** Satisfiability without rebuilding the monolithic BDD. *)

val equal : Bdd.man -> t -> t -> bool
(** Functional equality (windows may differ). *)

val shared_size : t -> int
(** Shared node count of all windows and functions — the "decomposed
    representation" size the paper's Section 3 wants reduced. *)

val max_window_size : t -> int
(** The largest [|wᵢ ∧ fᵢ|-ish] component: max over windows of
    [|wᵢ| + |fᵢ|] — the "individual sizes (for easier manipulation)". *)
