(* Short-path subsetting (SP) [Ravi–Somenzi, ICCAD'95; paper Section 2].

   Short paths to the constant 1 correspond to large implicants represented
   with few nodes.  The first pass labels every node with the length of the
   shortest root-to-1 path through it; the second keeps the nodes whose
   label does not exceed a bound chosen so that at most [threshold] nodes
   survive, redirecting arcs into discarded nodes to the constant 0. *)

let infinity_len = max_int / 4

let approximate man ~threshold f =
  if Bdd.is_const f || Bdd.size f <= threshold then f
  else begin
    let all = Bdd.nodes f in
    (* children-first list; reverse for a parents-first sweep *)
    let parents_first = List.rev all in
    let dist_root = Hashtbl.create 256 in
    let dist_one = Hashtbl.create 256 in
    let get tbl n default =
      Option.value ~default (Hashtbl.find_opt tbl (Bdd.id n))
    in
    Hashtbl.replace dist_root (Bdd.id f) 0;
    List.iter
      (fun n ->
        let d = get dist_root n infinity_len in
        let relax c =
          if not (Bdd.is_const c) then begin
            let cur = get dist_root c infinity_len in
            if d + 1 < cur then Hashtbl.replace dist_root (Bdd.id c) (d + 1)
          end
        in
        relax (Bdd.high n);
        relax (Bdd.low n))
      parents_first;
    let dist_to_one n =
      match Bdd.view n with
      | Bdd.True -> 0
      | Bdd.False -> infinity_len
      | Bdd.Node _ -> get dist_one n infinity_len
    in
    List.iter
      (fun n ->
        let d =
          1 + min (dist_to_one (Bdd.high n)) (dist_to_one (Bdd.low n))
        in
        Hashtbl.replace dist_one (Bdd.id n) d)
      all;
    let splen n = get dist_root n infinity_len + dist_to_one n in
    (* choose the largest bound keeping at most [threshold] nodes *)
    let lens = List.map splen all in
    let sorted = List.sort compare lens in
    let shortest = match sorted with [] -> 0 | l :: _ -> l in
    let bound =
      let rec pick best count = function
        | [] -> best
        | l :: rest ->
            if count + 1 > threshold then best
            else pick (max best l) (count + 1) rest
      in
      max (pick (-1) 0 sorted) shortest
      (* always keep at least the shortest paths, even if they overshoot
         the threshold (CUDD applies a hard limit instead; see mli) *)
    in
    let keep n = splen n <= bound in
    let memo = Hashtbl.create 256 in
    let rec rebuild n =
      if Bdd.is_const n then n
      else if not (keep n) then Bdd.ff man
      else
        match Hashtbl.find_opt memo (Bdd.id n) with
        | Some r -> r
        | None ->
            let r =
              Bdd.mk man ~var:(Bdd.topvar n) ~hi:(rebuild (Bdd.high n))
                ~lo:(rebuild (Bdd.low n))
            in
            Hashtbl.add memo (Bdd.id n) r;
            r
    in
    rebuild f
  end
