(** Uniform entry point to the paper's approximation algorithms.

    An underapproximation algorithm α returns [α(f) ≤ f]; it is {e safe}
    (paper, Definition 1) when it never decreases density
    [δ(f) = ||f|| / |f|].  Overapproximations are obtained by duality:
    [¬α(¬f) ≥ f]. *)

(** The methods compared in the paper's Tables 2 and 3. *)
type meth =
  | HB  (** heavy-branch subsetting ({!Heavy_branch}) *)
  | SP  (** short-path subsetting ({!Short_paths}) *)
  | UA  (** bddUnderApprox ({!Under_approx}) *)
  | RUA  (** remapUnderApprox ({!Remap}) *)
  | C1  (** RUA then safe minimization ({!Compound.c1}) *)
  | C2  (** SP then RUA then safe minimization ({!Compound.c2}) *)

val all_methods : meth list
val method_name : meth -> string
val method_of_string : string -> meth option

val is_simple : meth -> bool
(** Simple vs. compound (paper Section 2.2). *)

val is_safe : meth -> bool
(** Whether the method is safe at default parameters (quality 1). *)

type params = {
  threshold : int;
      (** size target: early-stop bound for UA/RUA, node budget for HB/SP.
          [0] means "no budget": UA/RUA examine every node, HB/SP fall back
          to the size RUA produces (the paper's Table 2 protocol). *)
  quality : float;  (** RUA quality factor *)
  ua_weight : float;  (** UA convex-combination weight α *)
}

val default_params : params
(** [{threshold = 0; quality = 1.0; ua_weight = 0.5}]. *)

val under : Bdd.man -> ?params:params -> meth -> Bdd.t -> Bdd.t
(** Run an underapproximation method. *)

val over : Bdd.man -> ?params:params -> meth -> Bdd.t -> Bdd.t
(** The dual overapproximation: [¬under(¬f) ≥ f]. *)

val density : Bdd.man -> Bdd.t -> float
(** δ(f) over all the manager's variables. *)
