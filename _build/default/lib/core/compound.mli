(** Compound approximation algorithms (paper Section 2.2, Table 3). *)

val c1 : Bdd.man -> ?quality:float -> Bdd.t -> Bdd.t
(** C1: RUA followed by safe minimization, [μ(RUA(f), f)].  Never loses to
    plain RUA in density when both components are safe. *)

val c2 : Bdd.man -> ?quality:float -> ?sp_threshold:int -> Bdd.t -> Bdd.t
(** C2: SP followed by RUA followed by safe minimization,
    [μ(RUA(SP(f)), f)].  [sp_threshold] sizes the SP stage; by default it
    is set to the size plain RUA would produce on [f] (the paper's Table 2
    protocol for sizing SP and HB). *)

val iterated_rua : Bdd.man -> ?qualities:float list -> Bdd.t -> Bdd.t
(** Repeated RUA with a decreasing quality schedule ending at 1 — the
    paper's example of mitigating RUA's greediness.  Safe if every quality
    is ≥ 1. *)
