(** Two-way BDD decomposition (paper Section 3): the {e Cofactor} baseline.

    A conjunctive decomposition writes [f = g ∧ h]; Equation (1) of the
    paper obtains one from any variable [x]:
    [g = x + f_x'], [h = x' + f_x].  The baseline method ({e Cofactor} in
    Table 4, after Cabodi et al. and Narayan et al.) picks the variable
    that minimizes the size of the larger cofactor.  The generalized
    decomposition-point method lives in {!Decomp_points}. *)

type pair = { g : Bdd.t; h : Bdd.t }

val shared_size : pair -> int
(** Nodes of the shared DAG of both factors (Table 4's "Shared"). *)

val max_size : pair -> int
(** Size of the larger factor — Table 4's win criterion. *)

val balance : pair -> float
(** [min(|g|,|h|) / max(|g|,|h|)] ∈ [0,1]; 1 is perfectly balanced. *)

val verify_conj : Bdd.man -> Bdd.t -> pair -> bool
(** Check [g ∧ h = f]. *)

val verify_disj : Bdd.man -> Bdd.t -> pair -> bool
(** Check [g ∨ h = f]. *)

val best_split_var : Bdd.man -> Bdd.t -> int
(** The support variable minimizing [max(|f_x|, |f_x'|)].
    @raise Invalid_argument on constants. *)

val conj_cofactor_at : Bdd.man -> Bdd.t -> int -> pair
(** Equation (1) at a given variable. *)

val disj_cofactor_at : Bdd.man -> Bdd.t -> int -> pair
(** The symmetric disjunctive split at a given variable:
    [f = (x·f_x) ∨ (x'·f_x')]. *)

val conj_cofactor : Bdd.man -> Bdd.t -> pair
(** {e Cofactor}: Equation (1) at {!best_split_var}. *)

val disj_cofactor : Bdd.man -> Bdd.t -> pair
(** Disjunctive {e Cofactor} at {!best_split_var}. *)
