(** Short-path subsetting (SP) — the second ICCAD'95 underapproximation
    procedure the paper compares against.

    Keeps the nodes that lie on short root-to-1 paths (short paths are
    large implicants using few nodes) and redirects every arc into a
    discarded node to the constant 0. *)

val approximate : Bdd.man -> threshold:int -> Bdd.t -> Bdd.t
(** [approximate man ~threshold f] returns a subset of [f].  The path-length
    bound is the largest one that keeps at most [threshold] nodes; when even
    the shortest paths involve more nodes than the threshold the result may
    exceed it (CUDD's implementation prunes further with a hard limit — we
    keep the overshoot to preserve at least one implicant).  Returns [f]
    unchanged when it already fits. *)
