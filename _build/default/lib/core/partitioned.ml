type t = { parts : (Bdd.t * Bdd.t) list }

let windows t = t.parts

let orthogonal man parts =
  let rec disjoint = function
    | [] -> true
    | (w, _) :: rest ->
        List.for_all (fun (w', _) -> not (Bdd.intersects man w w')) rest
        && disjoint rest
  in
  let cover = Bdd.disj man (List.map fst parts) in
  disjoint parts && Bdd.is_true cover

let of_windows man parts =
  if not (orthogonal man parts) then
    invalid_arg "Partitioned.of_windows: windows not orthogonal";
  { parts }

let of_bdd man ?(parts = 4) f =
  (* split variables chosen one at a time by the Cofactor criterion *)
  let rec split k f =
    if k <= 1 || Bdd.is_const f then [ (Bdd.tt man, f) ]
    else
      let v = Decomp.best_split_var man f in
      let hi = Bdd.cofactor man f ~var:v true
      and lo = Bdd.cofactor man f ~var:v false in
      let pos = Bdd.ithvar man v and neg = Bdd.nithvar man v in
      List.map (fun (w, g) -> (Bdd.band man pos w, g)) (split (k / 2) hi)
      @ List.map (fun (w, g) -> (Bdd.band man neg w, g)) (split (k / 2) lo)
  in
  let rec pow2_floor k = if k < 2 then 1 else 2 * pow2_floor (k / 2) in
  let raw = split (pow2_floor (max 1 parts)) f in
  (* minimize each function against its window *)
  let parts =
    List.map
      (fun (w, g) ->
        if Bdd.is_false w then (w, g)
        else (w, Bdd.constrain man g w))
      raw
    |> List.filter (fun (w, _) -> not (Bdd.is_false w))
  in
  { parts }

let to_bdd man t =
  Bdd.disj man (List.map (fun (w, g) -> Bdd.band man w g) t.parts)

let well_formed man t = orthogonal man t.parts

(* refine both representations onto the pairwise products of their
   windows, dropping empty intersections *)
let refine man a b =
  List.concat_map
    (fun (wa, fa) ->
      List.filter_map
        (fun (wb, fb) ->
          let w = Bdd.band man wa wb in
          if Bdd.is_false w then None else Some (w, fa, fb))
        b.parts)
    a.parts

let apply man op a b =
  let parts =
    List.map
      (fun (w, fa, fb) -> (w, Bdd.constrain man (op fa fb) w))
      (refine man a b)
  in
  { parts }

let map man fn t =
  { parts = List.map (fun (w, f) -> (w, Bdd.constrain man (fn f) w)) t.parts }

let band man = apply man (Bdd.band man)
let bor man = apply man (Bdd.bor man)
let bnot man = map man (Bdd.bnot man)

let is_false man t =
  List.for_all (fun (w, f) -> not (Bdd.intersects man w f)) t.parts

let equal man a b =
  List.for_all
    (fun (w, fa, fb) ->
      (* inside w the two functions must agree *)
      not (Bdd.intersects man w (Bdd.bxor man fa fb)))
    (refine man a b)

let shared_size t =
  Bdd.shared_size (List.concat_map (fun (w, f) -> [ w; f ]) t.parts)

let max_window_size t =
  List.fold_left
    (fun acc (w, f) -> max acc (Bdd.size w + Bdd.size f))
    0 t.parts
