type meth = HB | SP | UA | RUA | C1 | C2

let all_methods = [ HB; SP; UA; RUA; C1; C2 ]

let method_name = function
  | HB -> "HB"
  | SP -> "SP"
  | UA -> "UA"
  | RUA -> "RUA"
  | C1 -> "C1"
  | C2 -> "C2"

let method_of_string s =
  match String.uppercase_ascii s with
  | "HB" -> Some HB
  | "SP" -> Some SP
  | "UA" -> Some UA
  | "RUA" -> Some RUA
  | "C1" -> Some C1
  | "C2" -> Some C2
  | _ -> None

let is_simple = function HB | SP | UA | RUA -> true | C1 | C2 -> false
let is_safe = function RUA | C1 | C2 -> true | HB | SP | UA -> false

type params = { threshold : int; quality : float; ua_weight : float }

let default_params = { threshold = 0; quality = 1.0; ua_weight = 0.5 }

let under man ?(params = default_params) meth f =
  match meth with
  | HB ->
      (* HB needs a positive size budget; as in the paper's experiments,
         absent one we aim at what RUA would produce *)
      let threshold =
        if params.threshold > 0 then params.threshold
        else Bdd.size (Remap.approximate man ~quality:params.quality f)
      in
      Heavy_branch.approximate man ~threshold f
  | SP ->
      let threshold =
        if params.threshold > 0 then params.threshold
        else Bdd.size (Remap.approximate man ~quality:params.quality f)
      in
      Short_paths.approximate man ~threshold f
  | UA ->
      Under_approx.approximate man
        ~params:
          { Under_approx.threshold = params.threshold; weight = params.ua_weight }
        f
  | RUA ->
      Remap.approximate man ~threshold:params.threshold
        ~quality:params.quality f
  | C1 -> Compound.c1 man ~quality:params.quality f
  | C2 ->
      let sp_threshold =
        if params.threshold > 0 then Some params.threshold else None
      in
      Compound.c2 man ~quality:params.quality ?sp_threshold f

let over man ?params meth f =
  (* α(f) ≥ f obtained as ¬α'(¬f) from the underapproximation α' *)
  Bdd.bnot man (under man ?params meth (Bdd.bnot man f))

let density man f = Bdd.density man f ~nvars:(Bdd.nvars man)
