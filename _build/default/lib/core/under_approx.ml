(* bddUnderApprox (UA) [Shiple et al., UCB/ERL M97/73; paper Section 2.1.3].

   The ancestor of RUA: same three-pass structure, but only replace-by-0 is
   used and the acceptance criterion is a convex combination of the node
   savings and the minterm loss instead of the density ratio.  With the
   original's complement arcs the algorithm is not safe; here the possible
   unsafety is the criterion itself, which can accept replacements that
   decrease density. *)

type params = {
  threshold : int;  (** stop once the estimated size reaches this *)
  weight : float;  (** α ∈ [0,1]: weight of node savings vs. minterm loss *)
}

let default = { threshold = 0; weight = 0.5 }

let approximate man ?(params = default) f =
  if Bdd.is_const f then f
  else begin
    let size0 = float_of_int (Bdd.size f) in
    let weight0 = Bdd.weight man f in
    let func_ref = Hashtbl.create 256 in
    let dead = Hashtbl.create 64 in
    let zeroed = Hashtbl.create 64 in
    let get_ref n =
      Option.value ~default:0 (Hashtbl.find_opt func_ref (Bdd.id n))
    in
    let add_ref n d =
      if not (Bdd.is_const n) then
        Hashtbl.replace func_ref (Bdd.id n) (get_ref n + d)
    in
    Bdd.iter_nodes
      (fun n ->
        add_ref (Bdd.high n) 1;
        add_ref (Bdd.low n) 1)
      f;
    add_ref f 1;
    let est_size = ref (Bdd.size f) in
    (* dominated-node count for replace-by-0, as in RUA's nodesSaved *)
    let saved_by n =
      let q = Levelq.create man in
      let local = Hashtbl.create 32 in
      let out = ref [ n ] in
      let bump c =
        if not (Bdd.is_const c) then begin
          let cur =
            Option.value ~default:0 (Hashtbl.find_opt local (Bdd.id c))
          in
          Hashtbl.replace local (Bdd.id c) (cur + 1);
          ignore (Levelq.push q c)
        end
      in
      bump (Bdd.high n);
      bump (Bdd.low n);
      let rec drain () =
        match Levelq.pop q with
        | None -> ()
        | Some v ->
            if
              (not (Hashtbl.mem dead (Bdd.id v)))
              && Hashtbl.find local (Bdd.id v) = get_ref v
            then begin
              out := v :: !out;
              bump (Bdd.high v);
              bump (Bdd.low v)
            end;
            drain ()
      in
      drain ();
      !out
    in
    let q = Levelq.create man in
    let pathw = Hashtbl.create 256 in
    let add_path c w =
      if not (Bdd.is_const c) then begin
        let cur =
          Option.value ~default:0. (Hashtbl.find_opt pathw (Bdd.id c))
        in
        Hashtbl.replace pathw (Bdd.id c) (cur +. w);
        ignore (Levelq.push q c)
      end
    in
    add_path f 1.0;
    let rec loop () =
      if !est_size <= params.threshold then ()
      else
        match Levelq.pop q with
        | None -> ()
        | Some n ->
            let p = Hashtbl.find pathw (Bdd.id n) in
            let eliminated = saved_by n in
            let saved = List.length eliminated in
            let lost = p *. Bdd.weight man n in
            let gain = params.weight *. (float_of_int saved /. size0) in
            let pain = (1. -. params.weight) *. (lost /. weight0) in
            if gain > pain then begin
              Hashtbl.replace zeroed (Bdd.id n) ();
              List.iter
                (fun v ->
                  Hashtbl.replace dead (Bdd.id v) ();
                  add_ref (Bdd.high v) (-1);
                  add_ref (Bdd.low v) (-1))
                eliminated;
              est_size := !est_size - saved
            end
            else begin
              add_path (Bdd.high n) (p /. 2.);
              add_path (Bdd.low n) (p /. 2.)
            end;
            loop ()
    in
    loop ();
    let memo = Hashtbl.create 256 in
    let rec rebuild n =
      if Bdd.is_const n then n
      else if Hashtbl.mem zeroed (Bdd.id n) then Bdd.ff man
      else
        match Hashtbl.find_opt memo (Bdd.id n) with
        | Some r -> r
        | None ->
            let r =
              Bdd.mk man ~var:(Bdd.topvar n) ~hi:(rebuild (Bdd.high n))
                ~lo:(rebuild (Bdd.low n))
            in
            Hashtbl.add memo (Bdd.id n) r;
            r
    in
    rebuild f
  end
