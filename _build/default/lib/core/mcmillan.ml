(* McMillan's canonical conjunctive decomposition [CAV'96], the "different
   approach" discussed under Prior Work in the paper's Section 3.

   Project f onto growing prefixes of the variable order:
   c_k = ∃ v_{k+1} … v_n . f, with c_0 = ∃ all . f.  Each factor is the
   generalized cofactor g_k = constrain(c_k, c_{k-1}); since c_k ≤ c_{k-1}
   and f ∧ c = c ∧ constrain(f, c), induction gives ∧_{j ≤ k} g_j = c_k,
   so the conjunction of all factors is exactly f.  One (possibly trivial)
   factor per variable, as in the original. *)

let decompose man f =
  if Bdd.is_false f then [ f ]
  else begin
    let sup = Bdd.support man f in
    (* projections: drop support variables from the bottom of the order up *)
    let projections =
      (* c for prefixes of length k = n, n-1, …, 0 *)
      let rec peel acc c = function
        | [] -> acc (* acc ends with c_0 *)
        | v :: above ->
            let c' = Bdd.exists man ~vars:(Bdd.cube man [ v ]) c in
            peel (c' :: acc) c' above
      in
      peel [ f ] f (List.rev sup)
    in
    (* projections = [c_0; c_1; …; c_n = f] *)
    let rec factors = function
      | prev :: (cur :: _ as rest) ->
          Bdd.constrain man cur prev :: factors rest
      | [ _ ] | [] -> []
    in
    match projections with
    | [] -> [ f ]
    | c0 :: _ ->
        if Bdd.is_false c0 then [ Bdd.ff man ]
        else List.filter (fun g -> not (Bdd.is_true g)) (factors projections)
  end

let verify man f gs = Bdd.equal f (Bdd.conj man gs)
