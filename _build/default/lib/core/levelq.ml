(* Priority queue over BDD nodes keyed by the level of their top variable,
   as used by the top-down passes of remapUnderApprox (paper, Figs. 3–4).
   Each node enters at most once.  Pops return the node with the smallest
   level; pushes at levels at or above the current pop position are allowed
   because a node's parents always lie strictly above it. *)

type t = {
  man : Bdd.man;
  buckets : Bdd.t list array; (* level -> nodes *)
  seen : (int, unit) Hashtbl.t;
  mutable cursor : int; (* no non-empty bucket below this level *)
}

let create man =
  {
    man;
    buckets = Array.make (max 1 (Bdd.nvars man)) [];
    seen = Hashtbl.create 64;
    cursor = 0;
  }

(* true if the node was not already present *)
let push q f =
  match Bdd.view f with
  | Bdd.False | Bdd.True -> false
  | Bdd.Node { var; _ } ->
      if Hashtbl.mem q.seen (Bdd.id f) then false
      else begin
        Hashtbl.add q.seen (Bdd.id f) ();
        let lv = Bdd.level_of_var q.man var in
        q.buckets.(lv) <- f :: q.buckets.(lv);
        if lv < q.cursor then q.cursor <- lv;
        true
      end

let mem q f = Hashtbl.mem q.seen (Bdd.id f)

let rec pop q =
  if q.cursor >= Array.length q.buckets then None
  else
    match q.buckets.(q.cursor) with
    | [] ->
        q.cursor <- q.cursor + 1;
        pop q
    | f :: rest ->
        q.buckets.(q.cursor) <- rest;
        Some f
