(* Compound approximation algorithms (paper Section 2.2).

   μ(α(f), f) and α1(α2(f)) are approximation algorithms; both are safe when
   their components are.  C1 and C2 are the two compounds evaluated in the
   paper's Table 3. *)

let c1 man ?(quality = 1.0) f =
  let rua = Remap.approximate man ~quality f in
  Minimize.minimize man ~lower:rua ~upper:f

let c2 man ?(quality = 1.0) ?sp_threshold f =
  let sp_threshold =
    (* the paper sizes SP by what RUA achieves; by default aim at the size
       RUA alone would produce *)
    match sp_threshold with
    | Some t -> t
    | None -> Bdd.size (Remap.approximate man ~quality f)
  in
  let sp = Short_paths.approximate man ~threshold:sp_threshold f in
  let rua = Remap.approximate man ~quality sp in
  Minimize.minimize man ~lower:rua ~upper:f

let iterated_rua man ?(qualities = [ 1.5; 1.2; 1.0 ]) f =
  (* mitigate RUA's greediness: start with a demanding quality factor and
     relax it towards 1 (paper Section 2.2) *)
  List.fold_left (fun g q -> Remap.approximate man ~quality:q g) f qualities
