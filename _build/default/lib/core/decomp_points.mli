(** Generalized conjunctive decomposition by {e decomposition points}
    (paper Section 3, Fig. 5) with the two point-selection heuristics the
    paper evaluates in Table 4: {e Band} and {e Disjoint}. *)

val decompose : Bdd.man -> is_point:(Bdd.t -> bool) -> Bdd.t -> Decomp.pair
(** Bottom-up factor construction: Equation (1) at each decomposition
    point, balanced straight/crossed combination above them.  For any
    point predicate the result satisfies [g ∧ h = f]. *)

val band_points : Bdd.man -> ?band:float * float -> Bdd.t -> Bdd.t -> bool
(** {e Band}: nodes whose height (longest distance from the constants) lies
    within the given fractional band of the root's height (default
    [(0.35, 0.65)] — the "middle band").  One pass over the BDD. *)

val band : Bdd.man -> ?band:float * float -> Bdd.t -> Decomp.pair
(** {!decompose} with {!band_points}. *)

val disjoint_points :
  Bdd.man ->
  ?sample:int ->
  ?max_sharing:float ->
  ?min_balance:float ->
  Bdd.t ->
  Bdd.t ->
  bool
(** {e Disjoint}: nodes whose children share few nodes ([overlap <=
    max_sharing], where overlap is shared nodes over the smaller child)
    and are balanced ([min|.| / max|.| >= min_balance]).  Measuring a
    candidate costs a traversal, so at most [sample] candidates (default
    256) are examined top-down, mirroring the paper's "only a fraction of
    the nodes are sampled". *)

val disjoint :
  Bdd.man ->
  ?sample:int ->
  ?max_sharing:float ->
  ?min_balance:float ->
  Bdd.t ->
  Decomp.pair
(** {!decompose} with {!disjoint_points}. *)

val disjunctive_of :
  Bdd.man -> (Bdd.man -> Bdd.t -> Decomp.pair) -> Bdd.t -> Decomp.pair
(** Disjunctive decomposition by duality (the paper notes the disjunctive
    method is completely symmetric): conjunctively decompose [¬f] and
    negate the factors, giving [g ∨ h = f]. *)

val disj_band : Bdd.man -> ?band:float * float -> Bdd.t -> Decomp.pair
(** {!band} through {!disjunctive_of}: [g ∨ h = f]. *)

val disj_disjoint :
  Bdd.man ->
  ?sample:int ->
  ?max_sharing:float ->
  ?min_balance:float ->
  Bdd.t ->
  Decomp.pair
(** {!disjoint} through {!disjunctive_of}: [g ∨ h = f]. *)
