(** [bddUnderApprox] (UA) — the original underapproximation algorithm of
    Shiple et al. that RUA refines (paper Section 2.1.3).

    Only replace-by-0 is used, and a replacement is accepted when a convex
    combination of the (relative) node savings and minterm loss improves:
    [α·saved/|f| > (1-α)·lost/||f||].  Not safe: density can decrease. *)

type params = {
  threshold : int;  (** stop once the estimated size reaches this *)
  weight : float;  (** α ∈ [0,1]: weight of node savings vs. minterm loss *)
}

val default : params
(** [{threshold = 0; weight = 0.5}] — the paper's Table 2 setting
    (threshold 0). *)

val approximate : Bdd.man -> ?params:params -> Bdd.t -> Bdd.t
(** [approximate man ~params f] returns an underapproximation of [f]. *)
