(** Safe BDD minimization μ(l,u) (paper Section 2.2, after Hong et al.).

    Given [l ≤ u], a minimization algorithm returns some [g] with
    [l ≤ g ≤ u]; it is {e safe} when [|g| ≤ |l|] and [|g| ≤ |u|].  Composing
    a safe μ with a safe underapproximation α as [μ(α(f), f)] yields the
    paper's compound approximation algorithms (see {!Compound}). *)

val minimize : Bdd.man -> lower:Bdd.t -> upper:Bdd.t -> Bdd.t
(** Safe minimization: sibling substitution on the interval with a
    fall-back on whichever bound is smaller.  @raise Invalid_argument if
    [lower ≰ upper]. *)

val restrict_to_interval : Bdd.man -> lower:Bdd.t -> upper:Bdd.t -> Bdd.t
(** Pure sibling substitution against the interval's care set
    [lower ∨ ¬upper] — minimizing but not safe (may grow). *)

val is_safe : Bdd.man -> lower:Bdd.t -> upper:Bdd.t -> Bdd.t -> bool
(** Check both the interval membership and the safety size bounds. *)
