lib/core/levelq.ml: Array Bdd Hashtbl
