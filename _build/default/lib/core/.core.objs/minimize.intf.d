lib/core/minimize.mli: Bdd
