lib/core/decomp.ml: Bdd List
