lib/core/heavy_branch.ml: Bdd List
