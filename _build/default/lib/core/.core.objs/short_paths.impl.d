lib/core/short_paths.ml: Bdd Hashtbl List Option
