lib/core/partitioned.mli: Bdd
