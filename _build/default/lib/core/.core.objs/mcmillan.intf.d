lib/core/mcmillan.mli: Bdd
