lib/core/isop.ml: Bdd List
