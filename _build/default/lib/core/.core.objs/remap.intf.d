lib/core/remap.mli: Bdd
