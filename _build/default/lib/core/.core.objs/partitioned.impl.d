lib/core/partitioned.ml: Bdd Decomp List
