lib/core/short_paths.mli: Bdd
