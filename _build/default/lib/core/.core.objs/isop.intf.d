lib/core/isop.mli: Bdd
