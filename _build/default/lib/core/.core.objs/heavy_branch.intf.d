lib/core/heavy_branch.mli: Bdd
