lib/core/remap.ml: Bdd Hashtbl Levelq List Option
