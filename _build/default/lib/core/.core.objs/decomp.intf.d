lib/core/decomp.mli: Bdd
