lib/core/under_approx.mli: Bdd
