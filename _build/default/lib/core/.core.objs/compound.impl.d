lib/core/compound.ml: Bdd List Minimize Remap Short_paths
