lib/core/mcmillan.ml: Bdd List
