lib/core/decomp_points.mli: Bdd Decomp
