lib/core/approx.mli: Bdd
