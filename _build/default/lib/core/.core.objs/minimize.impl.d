lib/core/minimize.ml: Bdd
