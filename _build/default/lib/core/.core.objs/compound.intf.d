lib/core/compound.mli: Bdd
