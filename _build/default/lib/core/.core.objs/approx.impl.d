lib/core/approx.ml: Bdd Compound Heavy_branch Remap Short_paths String Under_approx
