lib/core/under_approx.ml: Bdd Hashtbl Levelq List Option
