lib/core/decomp_points.ml: Bdd Decomp Hashtbl Levelq
