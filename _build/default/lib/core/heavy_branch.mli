(** Heavy-branch subsetting (HB) — the first of the two ICCAD'95
    underapproximation procedures the paper compares against.

    Walks from the root discarding the light branch (the child with fewer
    minterms) of each node until the residual BDD fits in the threshold:
    the result is a chain of nodes, each with one constant-0 child, ending
    in an intact subgraph of [f]. *)

val approximate : Bdd.man -> threshold:int -> Bdd.t -> Bdd.t
(** [approximate man ~threshold f] returns a subset of [f] of at most
    [threshold] nodes (except when even a bare chain from the root exceeds
    it, in which case the heavy path itself — one node per level — is
    returned).  Returns [f] unchanged when it already fits. *)
