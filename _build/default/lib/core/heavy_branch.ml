(* Heavy-branch subsetting (HB) [Ravi–Somenzi, ICCAD'95; paper Section 2].

   Two passes: the analysis pass computes the minterm weight of every node
   (delegated to the manager's cache); the building pass walks down from the
   root always keeping the heavy child — the one with more minterms — and
   discarding the light one, until what remains fits in the threshold.  The
   result is a BDD with a string of nodes at the top, each with one child
   equal to the constant 0, ending in an intact subgraph of f. *)

let approximate man ~threshold f =
  if Bdd.is_const f || Bdd.size f <= threshold then f
  else begin
    (* heavy path from the root: (node, took_hi) pairs *)
    let rec path acc n =
      match Bdd.view n with
      | Bdd.False | Bdd.True -> (List.rev acc, n)
      | Bdd.Node { hi; lo; _ } ->
          let whi = Bdd.weight man hi and wlo = Bdd.weight man lo in
          if whi >= wlo then path ((n, true) :: acc) hi
          else path ((n, false) :: acc) lo
    in
    let chain, _leaf = path [] f in
    (* pick the highest cut point k such that k chain nodes plus the intact
       subgraph rooted at the k-th heavy descendant fit in the threshold *)
    let rec descend k = function
      | [] -> None
      | (n, _) :: rest ->
          if k + Bdd.size n <= threshold then Some (k, n)
          else descend (k + 1) rest
    in
    let cut =
      match descend 0 chain with
      | Some cut -> cut
      | None ->
          (* not even a bare chain fits: keep the full heavy path, which has
             one node per chain element (minimal non-trivial subset) *)
          (List.length chain, _leaf)
    in
    let k, tail = cut in
    (* rebuild the chain of the first k nodes above [tail] *)
    let rec rebuild i chain =
      if i >= k then tail
      else
        match chain with
        | [] -> tail
        | (n, took_hi) :: rest ->
            let below = rebuild (i + 1) rest in
            if took_hi then
              Bdd.mk man ~var:(Bdd.topvar n) ~hi:below ~lo:(Bdd.ff man)
            else Bdd.mk man ~var:(Bdd.topvar n) ~hi:(Bdd.ff man) ~lo:below
    in
    rebuild 0 chain
  end
