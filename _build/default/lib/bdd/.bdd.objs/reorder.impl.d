lib/bdd/reorder.ml: Array Bdd Fun Hashtbl List
