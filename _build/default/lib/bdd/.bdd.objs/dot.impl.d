lib/bdd/dot.ml: Bdd Format Hashtbl List Option Printf
