lib/bdd/dot.mli: Bdd Format
