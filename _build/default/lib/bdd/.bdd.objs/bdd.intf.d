lib/bdd/bdd.mli:
