(** DOT (graphviz) export of BDDs.

    Edge conventions follow the paper's Figure 1: solid lines are
    {e then} arcs, dashed lines are {e else} arcs (this package has no
    complement arcs). *)

val pp :
  Bdd.man ->
  ?var_name:(int -> string) ->
  ?root_name:(int -> string) ->
  Format.formatter ->
  Bdd.t list ->
  unit
(** Print a DOT digraph of the shared DAG of the given roots.  Nodes are
    ranked by level.  [var_name] labels internal nodes (default ["x<i>"]),
    [root_name] labels the root pointers (default ["f<k>"]). *)

val to_string : Bdd.man -> ?var_name:(int -> string) -> Bdd.t list -> string

val to_file :
  Bdd.man -> ?var_name:(int -> string) -> string -> Bdd.t list -> unit
