let pp man ?(var_name = fun v -> Printf.sprintf "x%d" v)
    ?(root_name = fun k -> Printf.sprintf "f%d" k) fmt roots =
  let open Format in
  fprintf fmt "digraph bdd {@.";
  fprintf fmt "  rankdir = TB;@.";
  (* collect shared nodes, grouped by level for ranking *)
  let by_level = Hashtbl.create 16 in
  let seen = Hashtbl.create 64 in
  let rec collect f =
    match Bdd.view f with
    | Bdd.False | Bdd.True -> ()
    | Bdd.Node { var; hi; lo } ->
        if not (Hashtbl.mem seen (Bdd.id f)) then begin
          Hashtbl.add seen (Bdd.id f) ();
          let lv = Bdd.level_of_var man var in
          let cur = Option.value ~default:[] (Hashtbl.find_opt by_level lv) in
          Hashtbl.replace by_level lv (f :: cur);
          collect hi;
          collect lo
        end
  in
  List.iter collect roots;
  let levels =
    List.sort compare (Hashtbl.fold (fun l _ acc -> l :: acc) by_level [])
  in
  List.iter
    (fun lv ->
      fprintf fmt "  { rank = same;";
      List.iter
        (fun f ->
          fprintf fmt " n%d [label=\"%s\"];" (Bdd.id f)
            (var_name (Bdd.topvar f)))
        (Hashtbl.find by_level lv);
      fprintf fmt " }@.")
    levels;
  fprintf fmt "  n0 [shape=box,label=\"0\"]; n1 [shape=box,label=\"1\"];@.";
  Hashtbl.reset seen;
  let rec edges f =
    match Bdd.view f with
    | Bdd.False | Bdd.True -> ()
    | Bdd.Node { hi; lo; _ } ->
        if not (Hashtbl.mem seen (Bdd.id f)) then begin
          Hashtbl.add seen (Bdd.id f) ();
          fprintf fmt "  n%d -> n%d [style=solid];@." (Bdd.id f) (Bdd.id hi);
          fprintf fmt "  n%d -> n%d [style=dashed];@." (Bdd.id f) (Bdd.id lo);
          edges hi;
          edges lo
        end
  in
  List.iter edges roots;
  List.iteri
    (fun k f ->
      fprintf fmt "  r%d [shape=plaintext,label=\"%s\"];@." k (root_name k);
      fprintf fmt "  r%d -> n%d;@." k (Bdd.id f))
    roots;
  fprintf fmt "}@."

let to_string man ?var_name roots =
  Format.asprintf "%a" (fun fmt -> pp man ?var_name fmt) roots

let to_file man ?var_name path roots =
  let oc = open_out path in
  let fmt = Format.formatter_of_out_channel oc in
  pp man ?var_name fmt roots;
  Format.pp_print_flush fmt ();
  close_out oc
