let shared = Bdd.shared_size

(* Move the element at index [i] of [order] to index [j]. *)
let move_to order i j =
  let n = Array.length order in
  let v = order.(i) in
  let out = Array.make n 0 in
  let k = ref 0 in
  for idx = 0 to n - 1 do
    if idx <> i then begin
      if !k = j then incr k;
      out.(!k) <- order.(idx);
      incr k
    end
  done;
  out.(j) <- v;
  out

(* Number of root nodes labelled by each variable. *)
let occurrences man roots =
  let occ = Array.make (Bdd.nvars man) 0 in
  let seen = Hashtbl.create 256 in
  let rec go f =
    match Bdd.view f with
    | Bdd.False | Bdd.True -> ()
    | Bdd.Node { var; hi; lo } ->
        if not (Hashtbl.mem seen (Bdd.id f)) then begin
          Hashtbl.add seen (Bdd.id f) ();
          occ.(var) <- occ.(var) + 1;
          go hi;
          go lo
        end
  in
  List.iter go roots;
  occ

let sift man ?(max_vars = 12) ?(max_growth = 1.2) roots =
  let n = Bdd.nvars man in
  if n <= 2 then roots
  else begin
    let occ = occurrences man roots in
    let candidates =
      let vars = List.init n (fun v -> v) in
      let sorted = List.sort (fun a b -> compare occ.(b) occ.(a)) vars in
      List.filteri (fun i v -> i < max_vars && occ.(v) > 0) sorted
    in
    let roots = ref roots in
    let try_order order =
      roots := Bdd.reorder man ~order ~roots:!roots;
      shared !roots
    in
    let sift_var v =
      let start = Bdd.level_of_var man v in
      let best_size = ref (shared !roots) in
      let best_pos = ref start in
      let scan step =
        let rec go pos last_size =
          let pos' = pos + step in
          if pos' < 0 || pos' >= n then ()
          else begin
            let size = try_order (move_to (Bdd.order man) (Bdd.level_of_var man v) pos') in
            if size < !best_size then begin
              best_size := size;
              best_pos := pos'
            end;
            if
              float_of_int size
              <= max_growth *. float_of_int (min last_size !best_size)
            then go pos' size
          end
        in
        go (Bdd.level_of_var man v) max_int
      in
      (* go down first, then back up through the start *)
      scan 1;
      scan (-1);
      let final = Bdd.level_of_var man v in
      if final <> !best_pos then
        ignore (try_order (move_to (Bdd.order man) final !best_pos))
    in
    List.iter sift_var candidates;
    !roots
  end

let window3 man ?(passes = 1) roots =
  let n = Bdd.nvars man in
  if n < 3 then roots
  else begin
    let roots = ref roots in
    let try_order order =
      roots := Bdd.reorder man ~order ~roots:!roots;
      shared !roots
    in
    (* index permutations of a window of three *)
    let perms = [ [| 0; 2; 1 |]; [| 1; 0; 2 |]; [| 1; 2; 0 |]; [| 2; 0; 1 |]; [| 2; 1; 0 |] ] in
    for _ = 1 to passes do
      for l = 0 to n - 3 do
        let base_size = shared !roots in
        let base = Bdd.order man in
        let best = ref base_size and best_order = ref None in
        List.iter
          (fun p ->
            let cand = Array.copy base in
            for k = 0 to 2 do
              cand.(l + k) <- base.(l + p.(k))
            done;
            let size = try_order cand in
            if size < !best then begin
              best := size;
              best_order := Some cand
            end)
          perms;
        (* land on the best order seen for this window *)
        let target = match !best_order with Some o -> o | None -> base in
        if Bdd.order man <> target then ignore (try_order target)
      done
    done;
    !roots
  end

let interleave groups =
  let total = List.fold_left (fun acc g -> acc + Array.length g) 0 groups in
  let out = Array.make total 0 in
  let k = ref 0 in
  let longest = List.fold_left (fun acc g -> max acc (Array.length g)) 0 groups in
  for i = 0 to longest - 1 do
    List.iter
      (fun g ->
        if i < Array.length g then begin
          out.(!k) <- g.(i);
          incr k
        end)
      groups
  done;
  out

(* enumerate permutations of [items] (Heap's algorithm), calling [visit]
   on each *)
let permutations items visit =
  let a = Array.copy items in
  let n = Array.length a in
  let swap i j =
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  in
  let rec go k =
    if k = 1 then visit a
    else begin
      for i = 0 to k - 1 do
        go (k - 1);
        if k mod 2 = 0 then swap i (k - 1) else swap 0 (k - 1)
      done
    end
  in
  if n = 0 then visit a else go n

let exact man ?(max_support = 8) roots =
  (* the union of the roots' supports; all other variables keep their
     relative positions *)
  let sup = Hashtbl.create 16 in
  List.iter
    (fun f -> List.iter (fun v -> Hashtbl.replace sup v ()) (Bdd.support man f))
    roots;
  let sup_vars = Hashtbl.fold (fun v () acc -> v :: acc) sup [] in
  if List.length sup_vars > max_support then
    invalid_arg "Reorder.exact: support too large";
  if List.length sup_vars <= 1 then roots
  else begin
    let base = Bdd.order man in
    (* positions currently holding support variables, in level order *)
    let slots =
      Array.of_list
        (List.filter (fun l -> Hashtbl.mem sup base.(l))
           (List.init (Array.length base) Fun.id))
    in
    let sup_arr =
      Array.of_list
        (List.sort
           (fun a b -> compare (Bdd.level_of_var man a) (Bdd.level_of_var man b))
           sup_vars)
    in
    let roots = ref roots in
    let best_size = ref (shared !roots) in
    let best_perm = ref (Array.copy sup_arr) in
    permutations sup_arr (fun perm ->
        let order = Array.copy (Bdd.order man) in
        Array.iteri (fun k slot -> order.(slot) <- perm.(k)) slots;
        roots := Bdd.reorder man ~order ~roots:!roots;
        let size = shared !roots in
        if size < !best_size then begin
          best_size := size;
          best_perm := Array.copy perm
        end);
    (* land on the best order found *)
    let order = Array.copy (Bdd.order man) in
    Array.iteri (fun k slot -> order.(slot) <- !best_perm.(k)) slots;
    roots := Bdd.reorder man ~order ~roots:!roots;
    !roots
  end
