(** Variable-reordering heuristics.

    CUDD sifts variables in place inside the unique table; with immutable
    hash-consed nodes this package instead evaluates candidate orders by
    rebuilding the live roots through {!Bdd.reorder} (see DESIGN.md).  All
    functions here therefore take and return the complete set of live roots:
    every BDD the caller intends to keep using must be passed in, and the
    returned list (same length, same order) replaces it. *)

val sift :
  Bdd.man ->
  ?max_vars:int ->
  ?max_growth:float ->
  Bdd.t list ->
  Bdd.t list
(** Rudell-style sifting.  Variables are visited in decreasing order of the
    number of nodes labelled by them ([max_vars] of them, default 12); each
    is tentatively moved through the order, stopping in a direction when the
    shared size exceeds [max_growth] (default 1.2) times the best size seen,
    and committed to its best position. *)

val window3 : Bdd.man -> ?passes:int -> Bdd.t list -> Bdd.t list
(** Exhaustive permutation of every window of three adjacent levels,
    repeated [passes] times (default 1).  Cheaper than {!sift} but local. *)

val interleave : int array list -> int array
(** [interleave groups] builds a level-to-variable order that round-robins
    the given variable groups: e.g. [[|x0;x1|]; [|y0;y1|]] yields
    [x0 y0 x1 y1].  Groups may have different lengths.  Standard static
    order for current/next state variable pairs in transition relations. *)

val exact : Bdd.man -> ?max_support:int -> Bdd.t list -> Bdd.t list
(** Exhaustive search over all orders of the roots' support variables
    (other variables keep their relative positions): the optimal order,
    used mainly as an oracle for judging {!sift}.  Exponential — refuses
    supports larger than [max_support] (default 8).
    @raise Invalid_argument when the united support is too large. *)
