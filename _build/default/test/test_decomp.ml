(* Tests for the paper's Section 3: cofactor decomposition, the
   decomposition-point algorithm with Band and Disjoint selection, and
   McMillan's canonical conjunctive decomposition. *)

let nvars = 7
let arb = Tgen.arbitrary_expr ~nvars ~depth:7

let qtest ?(count = 300) name prop_arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name prop_arb prop)

(* ------------------------------------------------------------------ *)
(* Unit tests                                                         *)
(* ------------------------------------------------------------------ *)

let test_cofactor_constant () =
  let man = Bdd.create ~nvars:3 () in
  let p = Decomp.conj_cofactor man (Bdd.tt man) in
  Alcotest.(check bool) "g = tt" true (Bdd.is_true p.Decomp.g);
  Alcotest.(check bool) "h = tt" true (Bdd.is_true p.Decomp.h);
  let p = Decomp.disj_cofactor man (Bdd.ff man) in
  Alcotest.(check bool) "g = ff" true (Bdd.is_false p.Decomp.g)

let test_equation_1 () =
  (* Equation (1) at a named variable on a hand-made function *)
  let man = Bdd.create ~nvars:4 () in
  let v i = Bdd.ithvar man i in
  let f =
    Bdd.bor man
      (Bdd.band man (v 0) (v 1))
      (Bdd.band man (v 2) (Bdd.bnot man (v 3)))
  in
  List.iter
    (fun x ->
      let p = Decomp.conj_cofactor_at man f x in
      Alcotest.(check bool)
        (Printf.sprintf "g·h = f at %d" x)
        true
        (Decomp.verify_conj man f p))
    (Bdd.support man f)

let test_best_split_var_raises () =
  let man = Bdd.create ~nvars:2 () in
  Alcotest.check_raises "constant"
    (Invalid_argument "Decomp.best_split_var: constant") (fun () ->
      ignore (Decomp.best_split_var man (Bdd.tt man)))

let test_band_points_middle () =
  let man = Bdd.create ~nvars:8 () in
  let f = Bdd.conj man (List.init 8 (Bdd.ithvar man)) in
  (* a cube: heights run 8 at the root down to 1; the default band keeps
     heights in [2.8, 5.2], i.e. nodes 3..5 levels above the constants *)
  let is_point = Decomp_points.band_points man f in
  let count = ref 0 in
  Bdd.iter_nodes (fun n -> if is_point n then incr count) f;
  Alcotest.(check int) "3 nodes in band" 3 !count

let test_mcmillan_cube () =
  let man = Bdd.create ~nvars:4 () in
  let f = Bdd.conj man (List.init 4 (Bdd.ithvar man)) in
  let gs = Mcmillan.decompose man f in
  Alcotest.(check bool) "verifies" true (Mcmillan.verify man f gs);
  Alcotest.(check int) "one factor per variable" 4 (List.length gs);
  List.iter
    (fun g -> Alcotest.(check int) "each factor is a literal" 1 (Bdd.size g))
    gs

let test_mcmillan_const () =
  let man = Bdd.create ~nvars:3 () in
  Alcotest.(check bool) "tt" true
    (Mcmillan.verify man (Bdd.tt man) (Mcmillan.decompose man (Bdd.tt man)));
  Alcotest.(check bool) "ff" true
    (Mcmillan.verify man (Bdd.ff man) (Mcmillan.decompose man (Bdd.ff man)))

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let prop_conj_cofactor =
  qtest "Cofactor: g ∧ h = f" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      Decomp.verify_conj man f (Decomp.conj_cofactor man f))

let prop_disj_cofactor =
  qtest "disjunctive Cofactor: g ∨ h = f" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      Decomp.verify_disj man f (Decomp.disj_cofactor man f))

let prop_decompose_arbitrary_points =
  qtest "decomposition points may be arbitrary nodes: g ∧ h = f"
    QCheck.(pair arb (int_range 1 7))
    (fun (e, modulus) ->
      let man, f, _ = Tgen.setup ~nvars e in
      (* a pseudo-random but deterministic point set *)
      let is_point n = Bdd.id n mod modulus = 0 in
      let p = Decomp_points.decompose man ~is_point f in
      Decomp.verify_conj man f p)

let prop_band =
  qtest "Band: g ∧ h = f" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      Decomp.verify_conj man f (Decomp_points.band man f))

let prop_disjoint =
  qtest ~count:120 "Disjoint: g ∧ h = f" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      Decomp.verify_conj man f (Decomp_points.disjoint man f))

let prop_all_points =
  qtest "every node a point: g ∧ h = f" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      let p = Decomp_points.decompose man ~is_point:(fun _ -> true) f in
      Decomp.verify_conj man f p)

let prop_mcmillan =
  qtest "McMillan: conjunction of factors = f, ≤ one per variable" arb
    (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      let gs = Mcmillan.decompose man f in
      Mcmillan.verify man f gs
      && List.length gs <= max 1 (List.length (Bdd.support man f)))

let prop_disj_band =
  qtest ~count:150 "disjunctive Band: g ∨ h = f" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      Decomp.verify_disj man f (Decomp_points.disj_band man f))

let prop_disj_disjoint =
  qtest ~count:100 "disjunctive Disjoint: g ∨ h = f" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      Decomp.verify_disj man f (Decomp_points.disj_disjoint man f))

let prop_balance_bounds =
  qtest "balance and shared size are coherent" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      QCheck.assume (not (Bdd.is_const f));
      let p = Decomp_points.band man f in
      let b = Decomp.balance p in
      b >= 0. && b <= 1.
      && Decomp.shared_size p
         <= Bdd.size p.Decomp.g + Bdd.size p.Decomp.h
      && Decomp.max_size p <= Decomp.shared_size p)

let tests =
  ( "decomp",
    [
      Alcotest.test_case "cofactor constant" `Quick test_cofactor_constant;
      Alcotest.test_case "equation (1)" `Quick test_equation_1;
      Alcotest.test_case "best_split_var raises" `Quick
        test_best_split_var_raises;
      Alcotest.test_case "band points middle" `Quick test_band_points_middle;
      Alcotest.test_case "mcmillan cube" `Quick test_mcmillan_cube;
      Alcotest.test_case "mcmillan constants" `Quick test_mcmillan_const;
      prop_conj_cofactor;
      prop_disj_cofactor;
      prop_decompose_arbitrary_points;
      prop_band;
      prop_disjoint;
      prop_all_points;
      prop_mcmillan;
      prop_disj_band;
      prop_disj_disjoint;
      prop_balance_bounds;
    ] )
