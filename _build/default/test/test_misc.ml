(* Assorted edge-case tests across the libraries. *)

let test_order_maps_are_inverse () =
  let man = Bdd.create ~nvars:6 () in
  let f = Bdd.bxor man (Bdd.ithvar man 0) (Bdd.ithvar man 5) in
  let order = [| 3; 1; 5; 0; 4; 2 |] in
  ignore (Bdd.reorder man ~order ~roots:[ f ]);
  for l = 0 to 5 do
    Alcotest.(check int) (Printf.sprintf "level %d" l) l
      (Bdd.level_of_var man (Bdd.var_at_level man l))
  done;
  Alcotest.(check (list int)) "order readback" (Array.to_list order)
    (Array.to_list (Bdd.order man))

let test_reorder_rejects_bad_perm () =
  let man = Bdd.create ~nvars:3 () in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Bdd.reorder: not a permutation") (fun () ->
      ignore (Bdd.reorder man ~order:[| 0; 0; 2 |] ~roots:[]));
  Alcotest.check_raises "length"
    (Invalid_argument "Bdd.reorder: bad permutation length") (fun () ->
      ignore (Bdd.reorder man ~order:[| 0; 1 |] ~roots:[]))

let test_support_cube () =
  let man = Bdd.create ~nvars:5 () in
  let f = Bdd.band man (Bdd.ithvar man 1) (Bdd.bnot man (Bdd.ithvar man 3)) in
  let cube = Bdd.support_cube man f in
  Alcotest.(check bool) "cube = x1 x3" true
    (Bdd.equal cube (Bdd.cube man [ 1; 3 ]))

let test_iter_sat_limit () =
  let man = Bdd.create ~nvars:5 () in
  let f = Bdd.bor man (Bdd.ithvar man 0) (Bdd.ithvar man 2) in
  let count = ref 0 in
  Bdd.iter_sat man ~limit:1 f (fun _ -> incr count);
  Alcotest.(check int) "one cube" 1 !count

let test_node_limit_manager () =
  let man = Bdd.create ~nvars:10 () in
  Bdd.set_node_limit man (Some 5);
  Alcotest.check_raises "blows up" Bdd.Node_limit (fun () ->
      ignore (Bdd.conj man (List.init 10 (Bdd.ithvar man))));
  (* clearing the limit lets the same computation finish *)
  Bdd.set_node_limit man None;
  let f = Bdd.conj man (List.init 10 (Bdd.ithvar man)) in
  Alcotest.(check int) "cube built" 10 (Bdd.size f)

let test_compile_into_shared_manager () =
  (* two circuits in one manager must not clash *)
  let man = Bdd.create () in
  let a = Compile.compile ~man (Generate.counter ~bits:3) in
  let b = Compile.compile ~man (Generate.ring ~bits:4) in
  let vars c =
    Array.to_list (Compile.cur_vars c)
    @ Array.to_list (Compile.next_vars c)
    @ Array.to_list (Compile.input_var_array c)
  in
  List.iter
    (fun v ->
      Alcotest.(check bool) "disjoint vars" false (List.mem v (vars b)))
    (vars a);
  (* and both traverse correctly in the shared manager *)
  let ra = Bfs.run (Trans.build a) and rb = Bfs.run (Trans.build b) in
  Alcotest.(check (float 1e-9)) "counter" 8.0 ra.Traversal.states;
  Alcotest.(check (float 1e-9)) "ring" 4.0 rb.Traversal.states

let test_interleave_uneven () =
  Alcotest.(check (list int)) "uneven groups" [ 0; 9; 1; 2 ]
    (Array.to_list (Reorder.interleave [ [| 0; 1; 2 |]; [| 9 |] ]))

let test_method_classes () =
  Alcotest.(check bool) "RUA simple" true (Approx.is_simple Approx.RUA);
  Alcotest.(check bool) "C1 compound" false (Approx.is_simple Approx.C1);
  Alcotest.(check bool) "RUA safe" true (Approx.is_safe Approx.RUA);
  Alcotest.(check bool) "HB not safe" false (Approx.is_safe Approx.HB)

let test_render_empty_rows () =
  let s = Tables.render ~headers:[ "a"; "b" ] ~rows:[] in
  Alcotest.(check bool) "headers only" true (String.length s > 0)

let test_tiny_cache_limit_still_correct () =
  (* a pathologically small cache bound forces constant recomputation but
     must never change results *)
  let man = Bdd.create ~nvars:8 () in
  Bdd.set_cache_limit man 0;
  (* clamped to a small positive bound internally *)
  let v = Bdd.ithvar man in
  let f =
    Bdd.bxor man
      (Bdd.conj man [ v 0; v 3; v 6 ])
      (Bdd.disj man [ v 1; Bdd.band man (v 4) (v 7) ])
  in
  let g = Bdd.exists man ~vars:(Bdd.cube man [ 3; 4 ]) f in
  let man2 = Bdd.create ~nvars:8 () in
  let v2 = Bdd.ithvar man2 in
  let f2 =
    Bdd.bxor man2
      (Bdd.conj man2 [ v2 0; v2 3; v2 6 ])
      (Bdd.disj man2 [ v2 1; Bdd.band man2 (v2 4) (v2 7) ])
  in
  let g2 = Bdd.exists man2 ~vars:(Bdd.cube man2 [ 3; 4 ]) f2 in
  for idx = 0 to 255 do
    let asg i = idx land (1 lsl i) <> 0 in
    Alcotest.(check bool)
      (Printf.sprintf "agree at %d" idx)
      (Bdd.eval man2 g2 asg) (Bdd.eval man g asg)
  done

let test_gc_keeps_weight_correct () =
  let man = Bdd.create ~nvars:6 () in
  let f = Bdd.bor man (Bdd.ithvar man 0) (Bdd.band man (Bdd.ithvar man 1) (Bdd.ithvar man 2)) in
  let w = Bdd.weight man f in
  ignore (Bdd.gc man ~roots:[ f ]);
  Alcotest.(check (float 1e-12)) "weight survives gc" w (Bdd.weight man f)

let tests =
  ( "misc",
    [
      Alcotest.test_case "order maps inverse" `Quick test_order_maps_are_inverse;
      Alcotest.test_case "reorder rejects bad perm" `Quick
        test_reorder_rejects_bad_perm;
      Alcotest.test_case "support cube" `Quick test_support_cube;
      Alcotest.test_case "iter_sat limit" `Quick test_iter_sat_limit;
      Alcotest.test_case "manager node limit" `Quick test_node_limit_manager;
      Alcotest.test_case "shared-manager compile" `Quick
        test_compile_into_shared_manager;
      Alcotest.test_case "interleave uneven" `Quick test_interleave_uneven;
      Alcotest.test_case "method classes" `Quick test_method_classes;
      Alcotest.test_case "render empty" `Quick test_render_empty_rows;
      Alcotest.test_case "tiny cache limit correct" `Quick
        test_tiny_cache_limit_still_correct;
      Alcotest.test_case "weight survives gc" `Quick
        test_gc_keeps_weight_correct;
    ] )
