(* Unit and property tests for the BDD engine. *)

let nvars = 6
let arb = Tgen.arbitrary_expr ~nvars ~depth:6

let qtest ?(count = 300) name prop_arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name prop_arb prop)

let check_same man f o =
  Oracle.equal (Oracle.of_bdd man nvars f) o

(* ------------------------------------------------------------------ *)
(* Unit tests                                                         *)
(* ------------------------------------------------------------------ *)

let test_constants () =
  let man = Bdd.create () in
  Alcotest.(check bool) "tt is true" true (Bdd.is_true (Bdd.tt man));
  Alcotest.(check bool) "ff is false" true (Bdd.is_false (Bdd.ff man));
  Alcotest.(check bool) "tt <> ff" false (Bdd.equal (Bdd.tt man) (Bdd.ff man));
  Alcotest.(check int) "|tt| = 0" 0 (Bdd.size (Bdd.tt man));
  Alcotest.(check int) "ff id" 0 (Bdd.id (Bdd.ff man));
  Alcotest.(check int) "tt id" 1 (Bdd.id (Bdd.tt man))

let test_var_structure () =
  let man = Bdd.create () in
  let x = Bdd.ithvar man 0 in
  Alcotest.(check int) "topvar" 0 (Bdd.topvar x);
  Alcotest.(check bool) "hi = tt" true (Bdd.is_true (Bdd.high x));
  Alcotest.(check bool) "lo = ff" true (Bdd.is_false (Bdd.low x));
  Alcotest.(check int) "|x| = 1" 1 (Bdd.size x);
  let x' = Bdd.ithvar man 0 in
  Alcotest.(check bool) "hash-consed" true (Bdd.equal x x');
  let nx = Bdd.nithvar man 0 in
  Alcotest.(check bool) "nithvar = bnot" true
    (Bdd.equal nx (Bdd.bnot man x))

let test_const_accessors_raise () =
  let man = Bdd.create () in
  Alcotest.check_raises "topvar tt" (Invalid_argument "Bdd.topvar: constant")
    (fun () -> ignore (Bdd.topvar (Bdd.tt man)));
  Alcotest.check_raises "high ff" (Invalid_argument "Bdd.high: constant")
    (fun () -> ignore (Bdd.high (Bdd.ff man)))

let test_mk_checks_order () =
  let man = Bdd.create ~nvars:3 () in
  let x2 = Bdd.ithvar man 2 in
  (* building a node for var 2 whose child is labelled by var 2 *)
  Alcotest.check_raises "mk bad order"
    (Invalid_argument "Bdd.mk: children must lie below the variable")
    (fun () -> ignore (Bdd.mk man ~var:2 ~hi:x2 ~lo:(Bdd.ff man)));
  let n = Bdd.mk man ~var:0 ~hi:x2 ~lo:(Bdd.ff man) in
  Alcotest.(check int) "mk ok" 0 (Bdd.topvar n)

let test_parity_size () =
  let man = Bdd.create ~nvars:8 () in
  let parity =
    List.fold_left
      (fun acc v -> Bdd.bxor man acc (Bdd.ithvar man v))
      (Bdd.ff man)
      (List.init 8 Fun.id)
  in
  (* without complement arcs the parity of n variables takes 2n-1 nodes *)
  Alcotest.(check int) "|parity8| = 15" 15 (Bdd.size parity);
  Alcotest.(check (float 1e-9)) "weight 1/2" 0.5 (Bdd.weight man parity)

let test_majority () =
  let man = Bdd.create ~nvars:3 () in
  let v i = Bdd.ithvar man i in
  let maj =
    Bdd.disj man
      [ Bdd.band man (v 0) (v 1); Bdd.band man (v 0) (v 2); Bdd.band man (v 1) (v 2) ]
  in
  Alcotest.(check int) "|maj3| = 4" 4 (Bdd.size maj);
  Alcotest.(check (float 1e-9)) "||maj3|| = 4" 4.0
    (Bdd.count_minterms man maj ~nvars:3)

let test_cube () =
  let man = Bdd.create ~nvars:4 () in
  let c = Bdd.cube man [ 2; 0 ] in
  Alcotest.(check int) "|cube| = 2" 2 (Bdd.size c);
  Alcotest.(check (float 1e-9)) "cube minterms" 4.0
    (Bdd.count_minterms man c ~nvars:4);
  let c2 = Bdd.band man (Bdd.ithvar man 0) (Bdd.ithvar man 2) in
  Alcotest.(check bool) "cube = conj" true (Bdd.equal c c2);
  let lits = Bdd.cube_of_literals man [ (1, false); (3, true) ] in
  let expect = Bdd.band man (Bdd.nithvar man 1) (Bdd.ithvar man 3) in
  Alcotest.(check bool) "literal cube" true (Bdd.equal lits expect)

let test_shared_size () =
  let man = Bdd.create ~nvars:4 () in
  let f = Bdd.band man (Bdd.ithvar man 0) (Bdd.ithvar man 1) in
  let g = Bdd.band man (Bdd.ithvar man 1) (Bdd.ithvar man 0) in
  Alcotest.(check bool) "f == g" true (Bdd.equal f g);
  Alcotest.(check int) "shared of same" (Bdd.size f) (Bdd.shared_size [ f; g ]);
  let h = Bdd.bor man (Bdd.ithvar man 2) f in
  Alcotest.(check bool) "shared <= sum" true
    (Bdd.shared_size [ f; h ] <= Bdd.size f + Bdd.size h);
  Alcotest.(check bool) "shared >= max" true
    (Bdd.shared_size [ f; h ] >= max (Bdd.size f) (Bdd.size h))

let test_gc () =
  let man = Bdd.create ~nvars:6 () in
  let keep = Bdd.band man (Bdd.ithvar man 0) (Bdd.ithvar man 1) in
  let _garbage =
    Bdd.bxor man
      (Bdd.bor man (Bdd.ithvar man 2) (Bdd.ithvar man 3))
      (Bdd.ithvar man 4)
  in
  let before = Bdd.unique_size man in
  let collected = Bdd.gc man ~roots:[ keep ] in
  Alcotest.(check bool) "collected > 0" true (collected > 0);
  Alcotest.(check int) "unique = before - collected"
    (before - collected) (Bdd.unique_size man);
  (* the kept root still works *)
  let again = Bdd.band man (Bdd.ithvar man 0) (Bdd.ithvar man 1) in
  Alcotest.(check bool) "hash-consing intact" true (Bdd.equal keep again)

let test_any_sat_ff () =
  let man = Bdd.create ~nvars:2 () in
  Alcotest.check_raises "any_sat ff" Not_found (fun () ->
      ignore (Bdd.any_sat man (Bdd.ff man)))

let test_interleave () =
  let o = Reorder.interleave [ [| 0; 1; 2 |]; [| 3; 4 |] ] in
  Alcotest.(check (list int)) "interleave" [ 0; 3; 1; 4; 2 ]
    (Array.to_list o)

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let prop_semantics =
  qtest "build matches oracle" arb (fun e ->
      let man, f, o = Tgen.setup ~nvars e in
      check_same man f o)

let prop_canonical =
  qtest "canonicity: same function, same node" arb (fun e ->
      let man, f, o = Tgen.setup ~nvars e in
      Bdd.equal f (Oracle.to_bdd man o))

let prop_not_involutive =
  qtest "bnot involutive" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      Bdd.equal f (Bdd.bnot man (Bdd.bnot man f)))

let prop_leq =
  qtest "leq matches oracle"
    QCheck.(pair arb arb)
    (fun (e1, e2) ->
      let man = Bdd.create ~nvars () in
      let f = Tgen.build_bdd man e1 and g = Tgen.build_bdd man e2 in
      let fo = Tgen.build_oracle nvars e1 and go = Tgen.build_oracle nvars e2 in
      Bdd.leq man f g = Oracle.leq fo go)

let prop_exists =
  qtest "exists matches oracle"
    QCheck.(pair arb (make (Tgen.var_subset_gen nvars)))
    (fun (e, vs) ->
      let man, f, o = Tgen.setup ~nvars e in
      let r = Bdd.exists man ~vars:(Bdd.cube man vs) f in
      check_same man r (Oracle.exists o vs))

let prop_forall =
  qtest "forall matches oracle"
    QCheck.(pair arb (make (Tgen.var_subset_gen nvars)))
    (fun (e, vs) ->
      let man, f, o = Tgen.setup ~nvars e in
      let r = Bdd.forall man ~vars:(Bdd.cube man vs) f in
      check_same man r (Oracle.forall o vs))

let prop_and_exists =
  qtest "and_exists = exists of conjunction"
    QCheck.(triple arb arb (make (Tgen.var_subset_gen nvars)))
    (fun (e1, e2, vs) ->
      let man = Bdd.create ~nvars () in
      let f = Tgen.build_bdd man e1 and g = Tgen.build_bdd man e2 in
      let cube = Bdd.cube man vs in
      Bdd.equal
        (Bdd.and_exists man ~vars:cube f g)
        (Bdd.exists man ~vars:cube (Bdd.band man f g)))

let prop_cofactor =
  qtest "cofactor matches oracle"
    QCheck.(triple arb (int_bound (nvars - 1)) bool)
    (fun (e, v, b) ->
      let man, f, o = Tgen.setup ~nvars e in
      check_same man (Bdd.cofactor man f ~var:v b) (Oracle.cofactor o v b))

let prop_compose =
  qtest "compose matches oracle"
    QCheck.(triple arb (int_bound (nvars - 1)) arb)
    (fun (e, v, eg) ->
      let man, f, o = Tgen.setup ~nvars e in
      let g = Tgen.build_bdd man eg and go = Tgen.build_oracle nvars eg in
      check_same man (Bdd.compose man f ~var:v g) (Oracle.compose o v go))

let prop_constrain_identity =
  qtest "f ∧ c = c ∧ constrain(f,c)"
    QCheck.(pair arb arb)
    (fun (e1, e2) ->
      let man = Bdd.create ~nvars () in
      let f = Tgen.build_bdd man e1 and c = Tgen.build_bdd man e2 in
      QCheck.assume (not (Bdd.is_false c));
      Bdd.equal (Bdd.band man f c) (Bdd.band man c (Bdd.constrain man f c)))

let prop_restrict_care =
  qtest "restrict agrees with f on the care set"
    QCheck.(pair arb arb)
    (fun (e1, e2) ->
      let man = Bdd.create ~nvars () in
      let f = Tgen.build_bdd man e1 and c = Tgen.build_bdd man e2 in
      QCheck.assume (not (Bdd.is_false c));
      let r = Bdd.restrict man f c in
      (* (r ⊕ f) ∧ c = 0 *)
      Bdd.is_false (Bdd.band man (Bdd.bxor man r f) c))

let prop_squeeze =
  qtest "squeeze stays in the interval and is no larger"
    QCheck.(pair arb arb)
    (fun (e1, e2) ->
      let man = Bdd.create ~nvars () in
      let f = Tgen.build_bdd man e1 and g = Tgen.build_bdd man e2 in
      let lower = Bdd.band man f g and upper = Bdd.bor man f g in
      let s = Bdd.squeeze man ~lower ~upper in
      Bdd.leq man lower s && Bdd.leq man s upper
      && Bdd.size s <= min (Bdd.size lower) (Bdd.size upper))

let prop_weight =
  qtest "weight = |ones| / 2^n" arb (fun e ->
      let man, f, o = Tgen.setup ~nvars e in
      let expect = float_of_int (Oracle.count o) /. float_of_int (1 lsl nvars) in
      abs_float (Bdd.weight man f -. expect) < 1e-9)

let prop_minterms =
  qtest "count_minterms matches oracle count" arb (fun e ->
      let man, f, o = Tgen.setup ~nvars e in
      abs_float
        (Bdd.count_minterms man f ~nvars -. float_of_int (Oracle.count o))
      < 1e-6)

let prop_permute =
  qtest "permute matches oracle rename"
    QCheck.(pair arb (make (Tgen.permutation_gen nvars)))
    (fun (e, p) ->
      let man, f, o = Tgen.setup ~nvars e in
      let g = Bdd.permute man f (fun v -> p.(v)) in
      check_same man g (Oracle.rename o (fun v -> p.(v))))

let prop_reorder =
  qtest "reorder preserves semantics"
    QCheck.(pair arb (make (Tgen.permutation_gen nvars)))
    (fun (e, order) ->
      let man, f, o = Tgen.setup ~nvars e in
      match Bdd.reorder man ~order ~roots:[ f ] with
      | [ f' ] ->
          check_same man f' o
          && Array.to_list (Bdd.order man) = Array.to_list order
      | _ -> false)

let prop_sift =
  qtest ~count:60 "sift preserves semantics and never grows"
    arb
    (fun e ->
      let man, f, o = Tgen.setup ~nvars e in
      let size0 = Bdd.size f in
      match Reorder.sift man [ f ] with
      | [ f' ] -> check_same man f' o && Bdd.size f' <= size0
      | _ -> false)

let prop_window3 =
  qtest ~count:60 "window3 preserves semantics and never grows"
    arb
    (fun e ->
      let man, f, o = Tgen.setup ~nvars e in
      let size0 = Bdd.size f in
      match Reorder.window3 man [ f ] with
      | [ f' ] -> check_same man f' o && Bdd.size f' <= size0
      | _ -> false)

let prop_exact_reorder =
  qtest ~count:40 "exact reordering is optimal (never beaten by sift)"
    (Tgen.arbitrary_expr ~nvars:5 ~depth:5)
    (fun e ->
      let man, f, o = Tgen.setup ~nvars:5 e in
      match Reorder.exact man [ f ] with
      | [ best ] ->
          let best_size = Bdd.size best in
          (* semantics preserved (note: evaluation is order-independent) *)
          Oracle.equal (Oracle.of_bdd man 5 best) o
          &&
          (* sift from the exact order cannot improve on it *)
          (match Reorder.sift man [ best ] with
          | [ sifted ] -> Bdd.size sifted >= best_size || Bdd.size sifted = best_size
          | _ -> false)
      | _ -> false)

let test_exact_reorder_refuses_large () =
  let man = Bdd.create ~nvars:12 () in
  let f = Bdd.conj man (List.init 12 (Bdd.ithvar man)) in
  Alcotest.check_raises "too large"
    (Invalid_argument "Reorder.exact: support too large") (fun () ->
      ignore (Reorder.exact man [ f ]))

let test_exact_reorder_known () =
  (* f = x0·x3 + x1·x4 + x2·x5 has size 2^k-ish under the interleaved-bad
     order but only 6 nodes under the paired order; exact must find 6 *)
  let man = Bdd.create ~nvars:6 () in
  let v = Bdd.ithvar man in
  let f =
    Bdd.disj man
      [ Bdd.band man (v 0) (v 3); Bdd.band man (v 1) (v 4);
        Bdd.band man (v 2) (v 5) ]
  in
  match Reorder.exact man [ f ] with
  | [ best ] -> Alcotest.(check int) "optimal size" 6 (Bdd.size best)
  | _ -> Alcotest.fail "expected one root"

let prop_support =
  qtest "support is exactly the essential variables" arb (fun e ->
      let man, f, o = Tgen.setup ~nvars e in
      let sup = Bdd.support man f in
      List.for_all
        (fun v ->
          let essential =
            not (Oracle.equal (Oracle.cofactor o v true) (Oracle.cofactor o v false))
          in
          essential = List.mem v sup)
        (List.init nvars Fun.id))

let prop_any_sat =
  qtest "any_sat returns a satisfying cube" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      if Bdd.is_false f then true
      else
        let lits = Bdd.any_sat man f in
        let asg v =
          match List.assoc_opt v lits with Some b -> b | None -> false
        in
        Bdd.eval man f asg)

let prop_iter_sat =
  qtest "iter_sat cubes cover exactly the minterms" arb (fun e ->
      let man, f, o = Tgen.setup ~nvars e in
      let total = ref 0. in
      Bdd.iter_sat man f (fun lits ->
          total := !total +. ldexp 1.0 (nvars - List.length lits));
      abs_float (!total -. float_of_int (Oracle.count o)) < 1e-6)

let prop_count_paths =
  qtest "count_paths = paths to both constants" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      (* reference: recursive path count on the view *)
      let memo = Hashtbl.create 16 in
      let rec paths f =
        match Bdd.view f with
        | Bdd.False | Bdd.True -> 1.
        | Bdd.Node { hi; lo; _ } -> (
            match Hashtbl.find_opt memo (Bdd.id f) with
            | Some p -> p
            | None ->
                let p = paths hi +. paths lo in
                Hashtbl.add memo (Bdd.id f) p;
                p)
      in
      abs_float (Bdd.count_paths man f -. paths f) < 1e-9)

let prop_nodes_ordered =
  qtest "iter_nodes yields children before parents" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      ignore man;
      let seen = Hashtbl.create 16 in
      let ok = ref true in
      Bdd.iter_nodes
        (fun n ->
          let child_ok c =
            match Bdd.view c with
            | Bdd.False | Bdd.True -> true
            | Bdd.Node _ -> Hashtbl.mem seen (Bdd.id c)
          in
          if not (child_ok (Bdd.high n) && child_ok (Bdd.low n)) then
            ok := false;
          Hashtbl.add seen (Bdd.id n) ())
        f;
      !ok)

let prop_intersects =
  qtest "intersects = (f ∧ g ≠ 0)"
    QCheck.(pair arb arb)
    (fun (e1, e2) ->
      let man = Bdd.create ~nvars () in
      let f = Tgen.build_bdd man e1 and g = Tgen.build_bdd man e2 in
      Bdd.intersects man f g = not (Bdd.is_false (Bdd.band man f g)))

let prop_vector_compose =
  qtest "vector_compose = iterated compose on disjoint targets"
    QCheck.(triple arb arb arb)
    (fun (e, e1, e2) ->
      let man = Bdd.create ~nvars () in
      let f = Tgen.build_bdd man e in
      let g1 = Tgen.build_bdd man e1 and g2 = Tgen.build_bdd man e2 in
      let o = Tgen.build_oracle nvars e in
      let o1 = Tgen.build_oracle nvars e1 and o2 = Tgen.build_oracle nvars e2 in
      let subst v = if v = 0 then Some g1 else if v = 1 then Some g2 else None in
      let r = Bdd.vector_compose man f subst in
      (* oracle: simultaneous substitution *)
      let expect =
        Oracle.create nvars (fun asg ->
            let idx = ref 0 in
            let enc = ref 0 in
            for v = 0 to nvars - 1 do
              if asg v then enc := !enc lor (1 lsl v)
            done;
            for v = 0 to nvars - 1 do
              let value =
                if v = 0 then Oracle.eval o1 !enc
                else if v = 1 then Oracle.eval o2 !enc
                else asg v
              in
              if value then idx := !idx lor (1 lsl v)
            done;
            Oracle.eval o !idx)
      in
      check_same man r expect)

let tests =
  ( "bdd",
    [
      Alcotest.test_case "constants" `Quick test_constants;
      Alcotest.test_case "var structure" `Quick test_var_structure;
      Alcotest.test_case "const accessors raise" `Quick
        test_const_accessors_raise;
      Alcotest.test_case "mk checks order" `Quick test_mk_checks_order;
      Alcotest.test_case "parity size" `Quick test_parity_size;
      Alcotest.test_case "majority" `Quick test_majority;
      Alcotest.test_case "cube" `Quick test_cube;
      Alcotest.test_case "shared size" `Quick test_shared_size;
      Alcotest.test_case "gc" `Quick test_gc;
      Alcotest.test_case "any_sat ff raises" `Quick test_any_sat_ff;
      Alcotest.test_case "interleave" `Quick test_interleave;
      prop_semantics;
      prop_canonical;
      prop_not_involutive;
      prop_leq;
      prop_exists;
      prop_forall;
      prop_and_exists;
      prop_cofactor;
      prop_compose;
      prop_constrain_identity;
      prop_restrict_care;
      prop_squeeze;
      prop_weight;
      prop_minterms;
      prop_permute;
      prop_reorder;
      prop_sift;
      prop_window3;
      prop_exact_reorder;
      Alcotest.test_case "exact reorder refuses large" `Quick
        test_exact_reorder_refuses_large;
      Alcotest.test_case "exact reorder known optimum" `Quick
        test_exact_reorder_known;
      prop_support;
      prop_any_sat;
      prop_iter_sat;
      prop_count_paths;
      prop_nodes_ordered;
      prop_intersects;
      prop_vector_compose;
    ] )
