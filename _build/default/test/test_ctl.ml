(* CTL model checking validated against an explicit-state evaluator. *)

(* ------------------------------------------------------------------ *)
(* Explicit-state CTL                                                  *)
(* ------------------------------------------------------------------ *)

type model = { n : int; succ : int -> int list }

let model_of_circuit c =
  let nl = Circuit.num_latches c in
  let ins = List.map fst (Circuit.inputs c) in
  let nin = List.length ins in
  let succ code =
    let s = Sim.decode ~nlatches:nl code in
    let out = ref [] in
    for mask = 0 to (1 lsl nin) - 1 do
      let input n =
        let rec idx i = function
          | [] -> assert false
          | x :: _ when x = n -> i
          | _ :: rest -> idx (i + 1) rest
        in
        mask land (1 lsl idx 0 ins) <> 0
      in
      let next, _ = Sim.step c s input in
      let t = Sim.encode next in
      if not (List.mem t !out) then out := t :: !out
    done;
    !out
  in
  { n = nl; succ }

(* sets of states as boolean arrays over all 2^n codes *)
let universe m = Array.make (1 lsl m.n) true
let empty m = Array.make (1 lsl m.n) false

let eset_ex m s =
  Array.init (Array.length s) (fun code ->
      List.exists (fun t -> s.(t)) (m.succ code))

let rec efix step z =
  let z' = step z in
  if z = z' then z else efix step z'

type eformula =
  | ETrue
  | EAtom of int (* seed for a pseudo-random predicate *)
  | ENot of eformula
  | EAnd of eformula * eformula
  | EOr of eformula * eformula
  | Eex of eformula
  | Eef of eformula
  | Eeg of eformula
  | Eeu of eformula * eformula
  | Eax of eformula
  | Eaf of eformula
  | Eag of eformula
  | Eau of eformula * eformula

let atom_pred seed code = Hashtbl.hash (seed, code) land 7 < 3

let rec esat m = function
  | ETrue -> universe m
  | EAtom seed ->
      Array.init (1 lsl m.n) (fun code -> atom_pred seed code)
  | ENot f -> Array.map not (esat m f)
  | EAnd (f, g) -> Array.map2 ( && ) (esat m f) (esat m g)
  | EOr (f, g) -> Array.map2 ( || ) (esat m f) (esat m g)
  | Eex f -> eset_ex m (esat m f)
  | Eef f ->
      let p = esat m f in
      efix (fun z -> Array.map2 ( || ) p (eset_ex m z)) (empty m)
  | Eeg f ->
      let p = esat m f in
      efix (fun z -> Array.map2 ( && ) p (eset_ex m z)) (universe m)
  | Eeu (f, g) ->
      let p = esat m f and q = esat m g in
      efix
        (fun z -> Array.map2 ( || ) q (Array.map2 ( && ) p (eset_ex m z)))
        (empty m)
  | Eax f -> Array.map not (eset_ex m (Array.map not (esat m f)))
  | Eaf f -> esat m (ENot (Eeg (ENot f)))
  | Eag f -> esat m (ENot (Eef (ENot f)))
  | Eau (f, g) ->
      esat m (ENot (EOr (Eeu (ENot g, EAnd (ENot f, ENot g)), Eeg (ENot g))))

(* translate to the symbolic formula, building atom BDDs from the same
   pseudo-random predicates *)
let rec symbolic man cur = function
  | ETrue -> Ctl.True
  | EAtom seed ->
      let nl = Array.length cur in
      let atom = ref (Bdd.ff man) in
      for code = 0 to (1 lsl nl) - 1 do
        if atom_pred seed code then
          atom :=
            Bdd.bor man !atom
              (Bdd.cube_of_literals man
                 (Array.to_list
                    (Array.mapi (fun i v -> (v, code land (1 lsl i) <> 0)) cur)))
      done;
      Ctl.Atom !atom
  | ENot f -> Ctl.Not (symbolic man cur f)
  | EAnd (f, g) -> Ctl.And (symbolic man cur f, symbolic man cur g)
  | EOr (f, g) -> Ctl.Or (symbolic man cur f, symbolic man cur g)
  | Eex f -> Ctl.EX (symbolic man cur f)
  | Eef f -> Ctl.EF (symbolic man cur f)
  | Eeg f -> Ctl.EG (symbolic man cur f)
  | Eeu (f, g) -> Ctl.EU (symbolic man cur f, symbolic man cur g)
  | Eax f -> Ctl.AX (symbolic man cur f)
  | Eaf f -> Ctl.AF (symbolic man cur f)
  | Eag f -> Ctl.AG (symbolic man cur f)
  | Eau (f, g) -> Ctl.AU (symbolic man cur f, symbolic man cur g)

let formula_gen depth =
  let open QCheck.Gen in
  let leaf =
    frequency [ (1, return ETrue); (6, map (fun s -> EAtom s) (int_bound 1000)) ]
  in
  fix
    (fun self d ->
      if d <= 0 then leaf
      else
        frequency
          [
            (2, leaf);
            (2, map (fun f -> ENot f) (self (d - 1)));
            (2, map2 (fun f g -> EAnd (f, g)) (self (d - 1)) (self (d - 1)));
            (2, map2 (fun f g -> EOr (f, g)) (self (d - 1)) (self (d - 1)));
            (2, map (fun f -> Eex f) (self (d - 1)));
            (2, map (fun f -> Eef f) (self (d - 1)));
            (2, map (fun f -> Eeg f) (self (d - 1)));
            (1, map2 (fun f g -> Eeu (f, g)) (self (d - 1)) (self (d - 1)));
            (1, map (fun f -> Eax f) (self (d - 1)));
            (1, map (fun f -> Eaf f) (self (d - 1)));
            (1, map (fun f -> Eag f) (self (d - 1)));
            (1, map2 (fun f g -> Eau (f, g)) (self (d - 1)) (self (d - 1)));
          ])
    depth

let check_circuit c ef =
  let m = model_of_circuit c in
  let expected = esat m ef in
  let compiled = Compile.compile c in
  let man = compiled.Compile.man in
  let trans = Trans.build compiled in
  let ck = Ctl.make trans in
  let got = Ctl.sat ck (symbolic man (Compile.cur_vars compiled) ef) in
  let cur = Compile.cur_vars compiled in
  let ok = ref true in
  Array.iteri
    (fun code expect ->
      let asg v =
        let rec find i = if cur.(i) = v then i else find (i + 1) in
        (* variables outside the current-state set do not occur *)
        code land (1 lsl find 0) <> 0
      in
      if Bdd.eval man got asg <> expect then ok := false)
    expected;
  !ok

let prop_ctl_matches_explicit =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"symbolic CTL = explicit CTL"
       (QCheck.make (formula_gen 3))
       (fun ef ->
         List.for_all
           (fun c -> check_circuit c ef)
           [
             Generate.traffic_light ();
             Generate.fifo_controller ~depth:3;
             Generate.dense_controller ~latches:5 ~seed:9;
           ]))

let test_ctl_classics () =
  (* the traffic light: from every state one can reach an NS-green state,
     and the two greens are mutually exclusive globally *)
  let c = Generate.traffic_light () in
  let trans = Trans.build (Compile.compile c) in
  let ck = Ctl.make trans in
  Alcotest.(check bool) "AG EF ns_green" true
    (Ctl.holds ck (Ctl.AG (Ctl.EF (Ctl.output_possibly ck "ns_green"))));
  Alcotest.(check bool) "AG not both" true
    (Ctl.holds ck
       (Ctl.AG
          (Ctl.Not
             (Ctl.And
                (Ctl.output_possibly ck "ns_green",
                 Ctl.output_possibly ck "ew_green")))));
  (* liveness that should fail: the light is not always eventually green
     for EW — the car sensor may never trigger the phase change *)
  Alcotest.(check bool) "AF ew_green fails" false
    (Ctl.holds ck (Ctl.AF (Ctl.output_possibly ck "ew_green")))

let test_ctl_counter () =
  let bits = 4 in
  let c = Generate.counter ~bits in
  let compiled = Compile.compile c in
  let man = compiled.Compile.man in
  let trans = Trans.build compiled in
  let ck = Ctl.make trans in
  let max_state =
    Bdd.cube man (Array.to_list (Compile.cur_vars compiled))
  in
  (* the free-running counter always eventually reaches the max value *)
  Alcotest.(check bool) "AF max" true (Ctl.holds ck (Ctl.AF (Ctl.Atom max_state)));
  Alcotest.(check bool) "AG EF max" true
    (Ctl.holds ck (Ctl.AG (Ctl.EF (Ctl.Atom max_state))))

let tests =
  ( "ctl",
    [
      Alcotest.test_case "classics on traffic light" `Quick test_ctl_classics;
      Alcotest.test_case "counter liveness" `Quick test_ctl_counter;
      prop_ctl_matches_explicit;
    ] )
