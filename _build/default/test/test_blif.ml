(* Dedicated BLIF parser/writer tests beyond the round-trips in
   test_circuit.ml. *)

let parse = Blif.parse_string

let test_continuation_lines () =
  let c =
    parse
      ".model cont\n.inputs a b \\\nc\n.outputs o\n.names a b c o\n111 1\n.end\n"
  in
  Alcotest.(check int) "3 inputs" 3 (Circuit.num_inputs c);
  let s = Sim.initial_state c in
  let out input = List.assoc "o" (snd (Sim.step c s input)) in
  Alcotest.(check bool) "and gate" true (out (fun _ -> true));
  Alcotest.(check bool) "and gate 0" false (out (fun n -> n <> "b"))

let test_comments_everywhere () =
  let c =
    parse
      "# header\n.model cmt # trailing\n.inputs a\n.outputs o\n# middle\n.names a o\n1 1\n.end\n# after\n"
  in
  Alcotest.(check int) "1 input" 1 (Circuit.num_inputs c)

let test_constant_names () =
  let c =
    parse ".model k\n.outputs t f\n.names t\n1\n.names f\n.end\n"
  in
  let s = Sim.initial_state c in
  let _, outs = Sim.step c s (fun _ -> false) in
  Alcotest.(check bool) "true net" true (List.assoc "t" outs);
  Alcotest.(check bool) "false net" false (List.assoc "f" outs)

let test_zero_phase_cover () =
  (* off-set cover: o = NOT(a AND b) *)
  let c = parse ".model z\n.inputs a b\n.outputs o\n.names a b o\n11 0\n.end\n" in
  let s = Sim.initial_state c in
  let out input = List.assoc "o" (snd (Sim.step c s input)) in
  Alcotest.(check bool) "nand 11" false (out (fun _ -> true));
  Alcotest.(check bool) "nand 10" true (out (fun n -> n = "a"))

let test_latch_init_values () =
  let c =
    parse
      ".model li\n.outputs o\n.latch n q0 0\n.latch n q1 1\n.latch n q2 2\n.latch n q3 3\n.latch n q4\n.names q1 o\n1 1\n.names n\n.end\n"
  in
  let s = Sim.initial_state c in
  (* only the latch declared with init 1 starts true *)
  let trues = Array.to_list s |> List.filter Fun.id |> List.length in
  Alcotest.(check int) "one true" 1 trues

let test_latch_with_type_control () =
  let c =
    parse ".model tc\n.inputs clk\n.outputs o\n.latch d q re clk 0\n.names q o\n1 1\n.names q d\n0 1\n.end\n"
  in
  Alcotest.(check int) "1 latch" 1 (Circuit.num_latches c)

let expect_error text fragment =
  match parse text with
  | exception Blif.Parse_error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %s (got %s)" fragment msg)
        true
        (let rec contains i =
           i + String.length fragment <= String.length msg
           && (String.sub msg i (String.length fragment) = fragment
              || contains (i + 1))
         in
         contains 0)
  | _ -> Alcotest.fail "expected a parse error"

let test_errors () =
  expect_error ".model e\n.inputs a\n.outputs o\n.names a o\n1 1\n.names a o\n0 1\n.end\n"
    "multiply defined";
  expect_error ".model e\n.outputs o\n.end\n" "undefined net";
  expect_error ".model e\n.inputs a b\n.outputs o\n.names a b o\n1 1\n.end\n"
    "width mismatch";
  expect_error ".model e\n.inputs a\n.outputs o\n.names a o\n1 1\n0 0\n.end\n"
    "mixed-phase";
  expect_error ".model e\n.latch x\n.end\n" "malformed .latch";
  expect_error ".model e\n.inputs a\n.outputs a\n.gate foo\n.end\n"
    "unsupported construct"

let test_combinational_cycle_detected () =
  expect_error
    ".model cyc\n.outputs o\n.names b a\n1 1\n.names a b\n1 1\n.names a o\n1 1\n.end\n"
    "cycle"

let test_writer_escapes_nothing_weird () =
  (* writer output must parse back for every generator *)
  List.iter
    (fun c ->
      let c' = Blif.parse_string (Blif.to_string c) in
      Alcotest.(check int)
        (Circuit.name c)
        (Circuit.num_latches c) (Circuit.num_latches c'))
    [
      Generate.lfsr ~bits:8;
      Generate.arbiter ~clients:3;
      Generate.johnson ~bits:6;
      Generate.alu ~width:4;
      Generate.multiplier ~bits:3;
      Generate.microprogram ~addr_bits:3 ~stack_depth:1 ~seed:7;
    ]

let tests =
  ( "blif",
    [
      Alcotest.test_case "continuation lines" `Quick test_continuation_lines;
      Alcotest.test_case "comments" `Quick test_comments_everywhere;
      Alcotest.test_case "constant names" `Quick test_constant_names;
      Alcotest.test_case "zero-phase cover" `Quick test_zero_phase_cover;
      Alcotest.test_case "latch init values" `Quick test_latch_init_values;
      Alcotest.test_case "latch type/control" `Quick
        test_latch_with_type_control;
      Alcotest.test_case "parse errors" `Quick test_errors;
      Alcotest.test_case "combinational cycle" `Quick
        test_combinational_cycle_detected;
      Alcotest.test_case "writer round-trips" `Quick
        test_writer_escapes_nothing_weird;
    ] )
