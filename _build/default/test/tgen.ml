(* Random boolean expressions for property-based tests: each expression is
   evaluated both through the BDD engine and through the truth-table
   oracle. *)

type expr =
  | T
  | F
  | V of int
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr
  | Imp of expr * expr
  | Ite of expr * expr * expr

let rec pp_expr fmt = function
  | T -> Format.fprintf fmt "1"
  | F -> Format.fprintf fmt "0"
  | V i -> Format.fprintf fmt "x%d" i
  | Not e -> Format.fprintf fmt "!%a" pp_expr e
  | And (a, b) -> Format.fprintf fmt "(%a & %a)" pp_expr a pp_expr b
  | Or (a, b) -> Format.fprintf fmt "(%a | %a)" pp_expr a pp_expr b
  | Xor (a, b) -> Format.fprintf fmt "(%a ^ %a)" pp_expr a pp_expr b
  | Imp (a, b) -> Format.fprintf fmt "(%a -> %a)" pp_expr a pp_expr b
  | Ite (a, b, c) ->
      Format.fprintf fmt "ite(%a,%a,%a)" pp_expr a pp_expr b pp_expr c

let expr_gen ~nvars ~depth =
  let open QCheck.Gen in
  let leaf = frequency [ (8, map (fun v -> V v) (int_bound (nvars - 1))); (1, return T); (1, return F) ] in
  fix
    (fun self d ->
      if d <= 0 then leaf
      else
        frequency
          [
            (2, leaf);
            (2, map (fun e -> Not e) (self (d - 1)));
            (3, map2 (fun a b -> And (a, b)) (self (d - 1)) (self (d - 1)));
            (3, map2 (fun a b -> Or (a, b)) (self (d - 1)) (self (d - 1)));
            (2, map2 (fun a b -> Xor (a, b)) (self (d - 1)) (self (d - 1)));
            (1, map2 (fun a b -> Imp (a, b)) (self (d - 1)) (self (d - 1)));
            ( 1,
              map3
                (fun a b c -> Ite (a, b, c))
                (self (d - 1)) (self (d - 1)) (self (d - 1)) );
          ])
    depth

let arbitrary_expr ~nvars ~depth =
  QCheck.make ~print:(Format.asprintf "%a" pp_expr) (expr_gen ~nvars ~depth)

let rec build_bdd man = function
  | T -> Bdd.tt man
  | F -> Bdd.ff man
  | V i -> Bdd.ithvar man i
  | Not e -> Bdd.bnot man (build_bdd man e)
  | And (a, b) -> Bdd.band man (build_bdd man a) (build_bdd man b)
  | Or (a, b) -> Bdd.bor man (build_bdd man a) (build_bdd man b)
  | Xor (a, b) -> Bdd.bxor man (build_bdd man a) (build_bdd man b)
  | Imp (a, b) -> Bdd.bimp man (build_bdd man a) (build_bdd man b)
  | Ite (a, b, c) ->
      Bdd.ite man (build_bdd man a) (build_bdd man b) (build_bdd man c)

let rec build_oracle n = function
  | T -> Oracle.const n true
  | F -> Oracle.const n false
  | V i -> Oracle.var n i
  | Not e -> Oracle.not_ (build_oracle n e)
  | And (a, b) -> Oracle.and_ (build_oracle n a) (build_oracle n b)
  | Or (a, b) -> Oracle.or_ (build_oracle n a) (build_oracle n b)
  | Xor (a, b) -> Oracle.xor_ (build_oracle n a) (build_oracle n b)
  | Imp (a, b) -> Oracle.imp (build_oracle n a) (build_oracle n b)
  | Ite (a, b, c) ->
      Oracle.ite (build_oracle n a) (build_oracle n b) (build_oracle n c)

(* A fresh manager with [nvars] variables plus the expression compiled in
   both semantics. *)
let setup ~nvars e =
  let man = Bdd.create ~nvars () in
  let f = build_bdd man e in
  let o = build_oracle nvars e in
  (man, f, o)

let permutation_gen n =
  let open QCheck.Gen in
  map
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let a = Array.init n (fun i -> i) in
      for i = n - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let t = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- t
      done;
      a)
    int

let var_subset_gen n =
  let open QCheck.Gen in
  map
    (fun mask -> List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id))
    (int_bound ((1 lsl n) - 1))
