(* Truth-table reference semantics for testing the BDD engine.

   A function of [n] variables (n small) is an array of 2^n booleans indexed
   by assignments encoded as bit vectors: bit i of the index is the value of
   variable i. *)

type t = { n : int; bits : bool array }

let create n f =
  { n;
    bits = Array.init (1 lsl n) (fun idx -> f (fun v -> idx land (1 lsl v) <> 0))
  }

let const n b = { n; bits = Array.make (1 lsl n) b }
let var n v = create n (fun asg -> asg v)
let eval o asg = o.bits.(asg)

let map2 fn a b =
  assert (a.n = b.n);
  { n = a.n; bits = Array.init (1 lsl a.n) (fun i -> fn a.bits.(i) b.bits.(i)) }

let not_ a = { a with bits = Array.map not a.bits }
let and_ = map2 ( && )
let or_ = map2 ( || )
let xor_ = map2 ( <> )
let imp = map2 (fun x y -> (not x) || y)

let ite f g h =
  assert (f.n = g.n && g.n = h.n);
  { n = f.n;
    bits =
      Array.init (1 lsl f.n) (fun i ->
          if f.bits.(i) then g.bits.(i) else h.bits.(i))
  }

let equal a b = a.n = b.n && a.bits = b.bits
let leq a b = Array.for_all Fun.id (map2 (fun x y -> (not x) || y) a b).bits
let count a = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 a.bits

(* Shannon cofactor of variable [v] set to [b]. *)
let cofactor a v b =
  { a with
    bits =
      Array.init (1 lsl a.n) (fun i ->
          let i' =
            if b then i lor (1 lsl v) else i land Stdlib.lnot (1 lsl v)
          in
          a.bits.(i'))
  }

let exists a vs =
  List.fold_left (fun a v -> or_ (cofactor a v true) (cofactor a v false)) a vs

let forall a vs =
  List.fold_left (fun a v -> and_ (cofactor a v true) (cofactor a v false)) a vs

(* Substitute [v := g] in [f]. *)
let compose f v g =
  assert (f.n = g.n);
  { n = f.n;
    bits =
      Array.init (1 lsl f.n) (fun i ->
          let i' =
            if g.bits.(i) then i lor (1 lsl v)
            else i land Stdlib.lnot (1 lsl v)
          in
          f.bits.(i'))
  }

(* [rename f p]: the function g with g(asg) = f(v ↦ asg(p v)), matching
   Bdd.permute. *)
let rename f p =
  create f.n (fun asg ->
      let idx = ref 0 in
      for v = 0 to f.n - 1 do
        if asg (p v) then idx := !idx lor (1 lsl v)
      done;
      eval f !idx)

(* Conversions to and from BDDs (manager must have ≥ n variables). *)

let to_bdd man o =
  (* Shannon expansion over variables in index order *)
  let rec build v idx =
    if v = o.n then if o.bits.(idx) then Bdd.tt man else Bdd.ff man
    else
      let hi = build (v + 1) (idx lor (1 lsl v)) and lo = build (v + 1) idx in
      Bdd.ite man (Bdd.ithvar man v) hi lo
  in
  build 0 0

let of_bdd man n f = create n (fun asg -> Bdd.eval man f asg)
let pp fmt o = Format.fprintf fmt "{n=%d; ones=%d}" o.n (count o)
