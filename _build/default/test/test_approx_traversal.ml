(* Tests for the approximate (overapproximating) traversal. *)

let qtest ?(count = 40) name prop_arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name prop_arb prop)

let over_contains_exact c =
  let compiled = Compile.compile c in
  let man = compiled.Compile.man in
  let trans = Trans.build compiled in
  let over = Approx_traversal.run trans in
  let exact = (Bfs.run trans).Traversal.reached in
  Bdd.leq man exact over && Bdd.leq man compiled.Compile.init over

let test_over_small_machines () =
  List.iter
    (fun c ->
      Alcotest.(check bool) (Circuit.name c) true (over_contains_exact c))
    [
      Generate.counter ~bits:5;
      Generate.ring ~bits:6;
      Generate.johnson ~bits:5;
      Generate.lfsr ~bits:6;
      Generate.fifo_controller ~depth:6;
      Generate.traffic_light ();
      Generate.microsequencer ~addr_bits:3 ~stack_depth:2;
      Generate.handshake_pipeline ~stages:4;
    ]

let test_blocks_partition () =
  let c = Generate.microsequencer ~addr_bits:3 ~stack_depth:2 in
  let compiled = Compile.compile c in
  let n = Array.length compiled.Compile.latches in
  let groups = Approx_traversal.blocks compiled ~max_block:3 in
  (* every latch exactly once, block sizes bounded *)
  let seen = Array.make n 0 in
  List.iter
    (fun g ->
      Alcotest.(check bool) "size bound" true (List.length g <= 3);
      List.iter (fun i -> seen.(i) <- seen.(i) + 1) g)
    groups;
  Array.iteri
    (fun i k -> Alcotest.(check int) (Printf.sprintf "latch %d" i) 1 k)
    seen

let test_exact_when_one_block () =
  (* with a block big enough for the whole machine, the "approximation"
     is the exact reached set *)
  let c = Generate.johnson ~bits:4 in
  let compiled = Compile.compile c in
  let trans = Trans.build compiled in
  let over = Approx_traversal.run ~max_block:16 trans in
  let exact = (Bfs.run trans).Traversal.reached in
  Alcotest.(check bool) "equal" true (Bdd.equal over exact)

let test_refinement_shrinks () =
  let c = Generate.microsequencer ~addr_bits:3 ~stack_depth:2 in
  let trans = Trans.build (Compile.compile c) in
  let loose = Approx_traversal.run ~refine:0 trans in
  let trans = Trans.build (Compile.compile c) in
  let tight = Approx_traversal.run ~refine:4 trans in
  let man = Trans.man trans in
  Alcotest.(check bool) "tight ⊆ loose" true (Bdd.leq man tight loose)

let prop_random_controllers_over =
  qtest "overapproximation contains the exact reached set"
    QCheck.(int_range 1 300)
    (fun seed ->
      over_contains_exact (Generate.dense_controller ~latches:9 ~seed))

let tests =
  ( "approx_traversal",
    [
      Alcotest.test_case "small machines" `Quick test_over_small_machines;
      Alcotest.test_case "blocks partition" `Quick test_blocks_partition;
      Alcotest.test_case "single block is exact" `Quick
        test_exact_when_one_block;
      Alcotest.test_case "refinement shrinks" `Quick test_refinement_shrinks;
      prop_random_controllers_over;
    ] )
