test/test_decomp.ml: Alcotest Bdd Decomp Decomp_points List Mcmillan Printf QCheck QCheck_alcotest Tgen
