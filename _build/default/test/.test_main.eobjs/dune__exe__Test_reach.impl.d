test/test_reach.ml: Alcotest Approx Array Bdd Bfs Circuit Compile Generate Hashtbl High_density Image List Printf Sim Trans Traversal
