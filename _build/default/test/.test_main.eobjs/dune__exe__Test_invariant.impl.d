test/test_invariant.ml: Alcotest Array Bdd Circuit Compile Generate Hashtbl Invariant List QCheck QCheck_alcotest Sim Trans Traversal
