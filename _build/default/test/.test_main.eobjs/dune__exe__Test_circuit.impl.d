test/test_circuit.ml: Alcotest Array Bdd Blif Circuit Compile Generate Hashtbl List Option Printf QCheck QCheck_alcotest Sim String
