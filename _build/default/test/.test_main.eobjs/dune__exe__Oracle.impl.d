test/oracle.ml: Array Bdd Format Fun List Stdlib
