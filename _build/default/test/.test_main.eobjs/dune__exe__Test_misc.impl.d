test/test_misc.ml: Alcotest Approx Array Bdd Bfs Compile Generate List Printf Reorder String Tables Trans Traversal
