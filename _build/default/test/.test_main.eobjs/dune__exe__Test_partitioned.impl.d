test/test_partitioned.ml: Alcotest Bdd Generate List Partitioned Pool QCheck QCheck_alcotest Tgen
