test/test_harness.ml: Alcotest Array Bdd Decomp Decomp_points Float Gen Generate List Pool QCheck QCheck_alcotest Remap Scoreboard Stats String Tables
