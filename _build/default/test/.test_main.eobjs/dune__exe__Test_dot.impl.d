test/test_dot.ml: Alcotest Bdd Dot Filename String Sys
