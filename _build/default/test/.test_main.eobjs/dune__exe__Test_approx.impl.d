test/test_approx.ml: Alcotest Approx Bdd Compound Heavy_branch List Minimize Option QCheck QCheck_alcotest Remap Short_paths Tgen Under_approx
