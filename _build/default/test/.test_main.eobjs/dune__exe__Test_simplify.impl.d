test/test_simplify.ml: Alcotest Array Bdd Bfs Circuit Compile Generate Hashtbl List Printf Sim Simplify Trans Traversal
