test/test_approx_traversal.ml: Alcotest Approx_traversal Array Bdd Bfs Circuit Compile Generate List Printf QCheck QCheck_alcotest Trans Traversal
