test/test_ctl.ml: Alcotest Array Bdd Circuit Compile Ctl Generate Hashtbl List QCheck QCheck_alcotest Sim Trans
