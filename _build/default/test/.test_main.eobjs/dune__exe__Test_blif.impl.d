test/test_blif.ml: Alcotest Array Blif Circuit Fun Generate List Printf Sim String
