test/tgen.ml: Array Bdd Format Fun List Oracle QCheck Random
