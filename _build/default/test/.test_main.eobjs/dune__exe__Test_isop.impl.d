test/test_isop.ml: Alcotest Bdd Isop List QCheck QCheck_alcotest Tgen
