test/test_bdd.ml: Alcotest Array Bdd Fun Hashtbl List Oracle QCheck QCheck_alcotest Reorder Tgen
