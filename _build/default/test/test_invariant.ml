(* Tests for invariant checking and counterexample reconstruction. *)

let cur_index compiled =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun i l -> Hashtbl.add tbl l.Compile.cur i)
    compiled.Compile.latches;
  tbl

let state_of_cube compiled cube =
  let idx = cur_index compiled in
  let s = Array.make (Array.length compiled.Compile.latches) false in
  List.iter (fun (v, b) -> s.(Hashtbl.find idx v) <- b) cube;
  s

(* a trace is valid when it starts at the initial state and every step is
   possible under some input assignment *)
let trace_valid circuit compiled trace =
  let states = List.map (state_of_cube compiled) trace in
  match states with
  | [] -> false
  | first :: _ ->
      first = Sim.initial_state circuit
      && (let ins = List.map fst (Circuit.inputs circuit) in
          let nin = List.length ins in
          let step_possible s s' =
            let rec try_mask mask =
              if mask >= 1 lsl nin then false
              else
                let input n =
                  let rec idx i = function
                    | [] -> assert false
                    | x :: _ when x = n -> i
                    | _ :: rest -> idx (i + 1) rest
                  in
                  mask land (1 lsl idx 0 ins) <> 0
                in
                let next, _ = Sim.step circuit s input in
                next = s' || try_mask (mask + 1)
            in
            try_mask 0
          in
          let rec pairs = function
            | a :: (b :: _ as rest) -> step_possible a b && pairs rest
            | [ _ ] | [] -> true
          in
          pairs states)

let test_counter_reaches_max () =
  let bits = 4 in
  let circuit = Generate.counter ~bits in
  let compiled = Compile.compile circuit in
  let trans = Trans.build compiled in
  let man = compiled.Compile.man in
  (* bad: all counter bits set *)
  let bad =
    Bdd.cube man (Array.to_list (Compile.cur_vars compiled))
  in
  match Invariant.check trans ~bad with
  | Invariant.Holds _ -> Alcotest.fail "max state is reachable"
  | Invariant.Violated { depth; trace } ->
      Alcotest.(check int) "depth" ((1 lsl bits) - 1) depth;
      Alcotest.(check int) "trace length" (1 lsl bits) (List.length trace);
      Alcotest.(check bool) "trace valid" true
        (trace_valid circuit compiled trace)

let test_fifo_never_overflows () =
  let circuit = Generate.fifo_controller ~depth:5 in
  let compiled = Compile.compile circuit in
  let trans = Trans.build compiled in
  let man = compiled.Compile.man in
  (* count can never exceed depth: counts 6 and 7 are unreachable *)
  let cur = Compile.cur_vars compiled in
  let count_is k =
    Bdd.cube_of_literals man
      (Array.to_list (Array.mapi (fun i v -> (v, k land (1 lsl i) <> 0)) cur))
  in
  let bad = Bdd.bor man (count_is 6) (count_is 7) in
  (match Invariant.check trans ~bad with
  | Invariant.Holds r ->
      Alcotest.(check (float 1e-6)) "6 states" 6.0 r.Traversal.states
  | Invariant.Violated _ -> Alcotest.fail "overflow reported");
  (* but "never full" is violated at depth exactly [depth] *)
  match Invariant.check trans ~bad:(count_is 5) with
  | Invariant.Holds _ -> Alcotest.fail "full is reachable"
  | Invariant.Violated { depth; trace } ->
      Alcotest.(check int) "depth" 5 depth;
      Alcotest.(check bool) "trace valid" true
        (trace_valid circuit compiled trace)

let test_traffic_mutual_exclusion () =
  let circuit = Generate.traffic_light () in
  let compiled = Compile.compile circuit in
  let trans = Trans.build compiled in
  let man = compiled.Compile.man in
  let ns = Invariant.output_never compiled "ns_green" in
  let ew = Invariant.output_never compiled "ew_green" in
  match Invariant.check trans ~bad:(Bdd.band man ns ew) with
  | Invariant.Holds r ->
      Alcotest.(check bool) "exact" true r.Traversal.exact
  | Invariant.Violated _ -> Alcotest.fail "both green at once"

let test_bad_initial_state () =
  let circuit = Generate.ring ~bits:3 in
  let compiled = Compile.compile circuit in
  let trans = Trans.build compiled in
  match Invariant.check trans ~bad:compiled.Compile.init with
  | Invariant.Violated { depth; trace } ->
      Alcotest.(check int) "depth 0" 0 depth;
      Alcotest.(check int) "single state" 1 (List.length trace)
  | Invariant.Holds _ -> Alcotest.fail "initial state is bad"

let qtest ?(count = 25) name prop_arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name prop_arb prop)

let prop_invariant_agrees_with_explicit =
  qtest "invariant verdicts agree with explicit search"
    QCheck.(pair (int_range 1 500) (int_range 0 255))
    (fun (seed, bad_code) ->
      let circuit = Generate.dense_controller ~latches:8 ~seed in
      let compiled = Compile.compile circuit in
      let man = compiled.Compile.man in
      let trans = Trans.build compiled in
      let cur = Compile.cur_vars compiled in
      let bad =
        Bdd.cube_of_literals man
          (Array.to_list
             (Array.mapi (fun i v -> (v, bad_code land (1 lsl i) <> 0)) cur))
      in
      let reachable = Sim.reachable circuit in
      let expected = Hashtbl.mem reachable bad_code in
      match Invariant.check trans ~bad with
      | Invariant.Violated { trace; _ } ->
          expected && trace_valid circuit compiled trace
      | Invariant.Holds _ -> not expected)

let tests =
  ( "invariant",
    [
      Alcotest.test_case "counter reaches max" `Quick test_counter_reaches_max;
      Alcotest.test_case "fifo never overflows" `Quick
        test_fifo_never_overflows;
      Alcotest.test_case "traffic mutual exclusion" `Quick
        test_traffic_mutual_exclusion;
      Alcotest.test_case "bad initial state" `Quick test_bad_initial_state;
      prop_invariant_agrees_with_explicit;
    ] )
