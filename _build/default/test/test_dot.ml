(* Tests for the DOT exporter. *)

let test_structure () =
  let man = Bdd.create ~nvars:3 () in
  let f =
    Bdd.bor man
      (Bdd.band man (Bdd.ithvar man 0) (Bdd.ithvar man 1))
      (Bdd.ithvar man 2)
  in
  let s = Dot.to_string man [ f ] in
  let count_substring sub =
    let n = String.length s and m = String.length sub in
    let c = ref 0 in
    for i = 0 to n - m do
      if String.sub s i m = sub then incr c
    done;
    !c
  in
  Alcotest.(check bool) "digraph" true (count_substring "digraph" = 1);
  (* one solid and one dashed edge per internal node *)
  Alcotest.(check int) "solid edges" (Bdd.size f)
    (count_substring "style=solid");
  Alcotest.(check int) "dashed edges" (Bdd.size f)
    (count_substring "style=dashed");
  (* both constants boxed, root pointer present *)
  Alcotest.(check bool) "constants" true (count_substring "shape=box" >= 1);
  Alcotest.(check bool) "root" true (count_substring "r0 ->" = 1)

let test_to_file () =
  let man = Bdd.create ~nvars:2 () in
  let f = Bdd.bxor man (Bdd.ithvar man 0) (Bdd.ithvar man 1) in
  let path = Filename.temp_file "bdd" ".dot" in
  Dot.to_file man path [ f ];
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "first line" "digraph bdd {" line

let tests =
  ( "dot",
    [
      Alcotest.test_case "structure" `Quick test_structure;
      Alcotest.test_case "to_file" `Quick test_to_file;
    ] )
