(* Tests for partitioned ROBDDs (Narayan et al.). *)

let nvars = 7
let arb = Tgen.arbitrary_expr ~nvars ~depth:7

let qtest ?(count = 200) name prop_arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name prop_arb prop)

let prop_roundtrip =
  qtest "of_bdd / to_bdd round-trips"
    QCheck.(pair arb (int_range 1 8))
    (fun (e, parts) ->
      let man, f, _ = Tgen.setup ~nvars e in
      let p = Partitioned.of_bdd man ~parts f in
      Partitioned.well_formed man p && Bdd.equal (Partitioned.to_bdd man p) f)

let prop_ops_pointwise =
  qtest "apply agrees with the monolithic operation"
    QCheck.(triple arb arb (int_range 2 4))
    (fun (e1, e2, parts) ->
      let man = Bdd.create ~nvars () in
      let f = Tgen.build_bdd man e1 and g = Tgen.build_bdd man e2 in
      let pf = Partitioned.of_bdd man ~parts f
      and pg = Partitioned.of_bdd man ~parts:2 g in
      Bdd.equal
        (Partitioned.to_bdd man (Partitioned.band man pf pg))
        (Bdd.band man f g)
      && Bdd.equal
           (Partitioned.to_bdd man (Partitioned.bor man pf pg))
           (Bdd.bor man f g)
      && Bdd.equal
           (Partitioned.to_bdd man (Partitioned.bnot man pf))
           (Bdd.bnot man f))

let prop_is_false =
  qtest "is_false without rebuilding" QCheck.(pair arb arb) (fun (e1, e2) ->
      let man = Bdd.create ~nvars () in
      let f = Tgen.build_bdd man e1 and g = Tgen.build_bdd man e2 in
      let p =
        Partitioned.band man
          (Partitioned.of_bdd man f)
          (Partitioned.of_bdd man (Bdd.bnot man g))
      in
      Partitioned.is_false man p = Bdd.is_false (Bdd.bdiff man f g))

let prop_equal =
  qtest "functional equality across window structures"
    QCheck.(pair arb (int_range 1 8))
    (fun (e, parts) ->
      let man, f, _ = Tgen.setup ~nvars e in
      let a = Partitioned.of_bdd man ~parts f
      and b = Partitioned.of_bdd man ~parts:2 f in
      Partitioned.equal man a b)

let test_bad_windows_rejected () =
  let man = Bdd.create ~nvars:3 () in
  let x = Bdd.ithvar man 0 in
  (* overlapping windows *)
  Alcotest.check_raises "not orthogonal"
    (Invalid_argument "Partitioned.of_windows: windows not orthogonal")
    (fun () ->
      ignore
        (Partitioned.of_windows man [ (x, Bdd.tt man); (Bdd.tt man, x) ]));
  (* non-covering windows *)
  Alcotest.check_raises "no cover"
    (Invalid_argument "Partitioned.of_windows: windows not orthogonal")
    (fun () -> ignore (Partitioned.of_windows man [ (x, Bdd.tt man) ]))

let test_windows_shrink_multiplier () =
  (* the selling point: each window of a hard function is smaller than the
     monolithic BDD *)
  let c = Generate.multiplier ~bits:6 in
  let entries = Pool.entries_of_circuit ~min_nodes:150 c in
  Alcotest.(check bool) "pool nonempty" true (entries <> []);
  List.iter
    (fun { Pool.man; f; label; _ } ->
      let p = Partitioned.of_bdd man ~parts:8 f in
      Alcotest.(check bool)
        (label ^ " windows smaller")
        true
        (Partitioned.max_window_size p < Bdd.size f))
    entries

let tests =
  ( "partitioned",
    [
      prop_roundtrip;
      prop_ops_pointwise;
      prop_is_false;
      prop_equal;
      Alcotest.test_case "bad windows rejected" `Quick
        test_bad_windows_rejected;
      Alcotest.test_case "windows shrink the multiplier" `Quick
        test_windows_shrink_multiplier;
    ] )
