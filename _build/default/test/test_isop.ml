(* Tests for the Minato–Morreale ISOP extraction. *)

let nvars = 7
let arb = Tgen.arbitrary_expr ~nvars ~depth:7

let qtest ?(count = 250) name prop_arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name prop_arb prop)

let prop_exact_cover =
  qtest "cover of f is exactly f" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      let cubes, c = Isop.isop man ~lower:f ~upper:f in
      Bdd.equal c f
      && Bdd.equal
           (Bdd.disj man (List.map (Isop.cube_to_bdd man) cubes))
           f)

let prop_interval =
  qtest "interval cover sits between the bounds"
    QCheck.(pair arb arb)
    (fun (e1, e2) ->
      let man = Bdd.create ~nvars () in
      let f = Tgen.build_bdd man e1 and g = Tgen.build_bdd man e2 in
      let lower = Bdd.band man f g and upper = Bdd.bor man f g in
      let cubes, c = Isop.isop man ~lower ~upper in
      Bdd.leq man lower c && Bdd.leq man c upper
      && List.for_all
           (fun cube -> Bdd.leq man (Isop.cube_to_bdd man cube) upper)
           cubes)

let prop_irredundant =
  qtest ~count:120 "every cube covers a minterm the others miss" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      QCheck.assume (not (Bdd.is_const f));
      let cubes = Isop.cover man f in
      let bdds = List.map (Isop.cube_to_bdd man) cubes in
      List.for_all
        (fun cube ->
          let others =
            Bdd.disj man (List.filter (fun b -> not (Bdd.equal b cube)) bdds)
          in
          not (Bdd.leq man cube others))
        bdds)

let prop_cube_count_vs_paths =
  qtest "cube count never exceeds the path count" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      float_of_int (List.length (Isop.cover man f))
      <= Bdd.count_paths man f +. 1.)

let test_isop_raises () =
  let man = Bdd.create ~nvars:2 () in
  Alcotest.check_raises "lower > upper"
    (Invalid_argument "Isop.isop: lower > upper") (fun () ->
      ignore
        (Isop.isop man ~lower:(Bdd.ithvar man 0) ~upper:(Bdd.ithvar man 1)))

let test_isop_known () =
  let man = Bdd.create ~nvars:3 () in
  let v = Bdd.ithvar man in
  (* x0 + x1·x2 has exactly the obvious two-cube cover *)
  let f = Bdd.bor man (v 0) (Bdd.band man (v 1) (v 2)) in
  Alcotest.(check int) "two cubes" 2 (List.length (Isop.cover man f));
  (* a tautology is a single empty cube *)
  let cubes, c = Isop.isop man ~lower:(Bdd.tt man) ~upper:(Bdd.tt man) in
  Alcotest.(check int) "one cube" 1 (List.length cubes);
  Alcotest.(check bool) "empty cube" true (List.hd cubes = []);
  Alcotest.(check bool) "tt" true (Bdd.is_true c)

let tests =
  ( "isop",
    [
      prop_exact_cover;
      prop_interval;
      prop_irredundant;
      prop_cube_count_vs_paths;
      Alcotest.test_case "raises on bad interval" `Quick test_isop_raises;
      Alcotest.test_case "known covers" `Quick test_isop_known;
    ] )
