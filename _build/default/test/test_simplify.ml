(* Tests for don't-care minimization against the reachable states. *)

let machines () =
  [
    Generate.ring ~bits:6;
    Generate.johnson ~bits:5;
    Generate.fifo_controller ~depth:5;
    Generate.traffic_light ();
    Generate.microsequencer ~addr_bits:3 ~stack_depth:1;
    Generate.lfsr ~bits:6;
  ]

let test_behaviour_preserved () =
  List.iter
    (fun c ->
      let compiled = Compile.compile c in
      let man = compiled.Compile.man in
      let minimized, reached = Simplify.with_reachable compiled in
      (* every function agrees with the original on the reachable states *)
      Array.iteri
        (fun i l ->
          let l' = minimized.Compile.latches.(i) in
          Alcotest.(check bool)
            (Circuit.name c ^ "." ^ l.Compile.name)
            true
            (Bdd.is_false
               (Bdd.band man reached
                  (Bdd.bxor man l.Compile.fn l'.Compile.fn))))
        compiled.Compile.latches;
      List.iter2
        (fun (n, f) (_, f') ->
          Alcotest.(check bool)
            (Circuit.name c ^ " out " ^ n)
            true
            (Bdd.is_false (Bdd.band man reached (Bdd.bxor man f f'))))
        compiled.Compile.output_fns minimized.Compile.output_fns)
    (machines ())

let test_reachable_set_unchanged () =
  List.iter
    (fun c ->
      let compiled = Compile.compile c in
      let man = compiled.Compile.man in
      let minimized, reached = Simplify.with_reachable compiled in
      let trans' = Trans.build minimized in
      let reached' = (Bfs.run trans').Traversal.reached in
      (* the minimized machine may leave the reached set on unreachable
         states, but from the initial states it reaches exactly the same
         set *)
      Alcotest.(check bool) (Circuit.name c) true
        (Bdd.equal reached reached');
      ignore man)
    (machines ())

let test_never_grows () =
  List.iter
    (fun c ->
      let compiled = Compile.compile c in
      let before = Simplify.total_size compiled in
      let minimized, _ = Simplify.with_reachable compiled in
      Alcotest.(check bool) (Circuit.name c) true
        (Simplify.total_size minimized <= before))
    (machines ())

let test_shrinks_sparse_machine () =
  (* a one-hot ring whose next-state functions carry junk terms that vanish
     on the reachable (one-hot) states: minimization must strip them *)
  let n = 6 in
  let b = Circuit.Builder.create "junk_ring" in
  let r =
    Array.init n (fun i ->
        Circuit.Builder.latch b ~init:(i = 0) (Printf.sprintf "r.%d" i))
  in
  Array.iteri
    (fun i l ->
      let junk =
        Circuit.Builder.and_ b r.((i + 2) mod n) r.((i + 3) mod n)
      in
      Circuit.Builder.connect b l
        ~next:(Circuit.Builder.xor_ b r.((i + n - 1) mod n) junk))
    r;
  Circuit.Builder.output b "o" r.(0);
  let c = Circuit.Builder.finish b in
  (* sanity: on one-hot states the junk is 0, so this is a plain ring *)
  Alcotest.(check int) "still n reachable states" n
    (Hashtbl.length (Sim.reachable c));
  let compiled = Compile.compile c in
  let before = Simplify.total_size compiled in
  let minimized, _ = Simplify.with_reachable compiled in
  Alcotest.(check bool) "strictly smaller" true
    (Simplify.total_size minimized < before)

let test_empty_care_rejected () =
  let c = Generate.counter ~bits:3 in
  let compiled = Compile.compile c in
  Alcotest.check_raises "empty care"
    (Invalid_argument "Simplify.with_care_set: empty care") (fun () ->
      ignore
        (Simplify.with_care_set compiled ~care:(Bdd.ff compiled.Compile.man)))

let tests =
  ( "simplify",
    [
      Alcotest.test_case "behaviour preserved" `Quick test_behaviour_preserved;
      Alcotest.test_case "reachable set unchanged" `Quick
        test_reachable_set_unchanged;
      Alcotest.test_case "never grows" `Quick test_never_grows;
      Alcotest.test_case "shrinks sparse machine" `Quick
        test_shrinks_sparse_machine;
      Alcotest.test_case "empty care rejected" `Quick test_empty_care_rejected;
    ] )
