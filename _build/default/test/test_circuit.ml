(* Tests for the circuit substrate: builder, simulator, generators, BLIF
   round trips, and BDD compilation against the explicit simulator. *)

module B = Circuit.Builder

let qtest ?(count = 100) name prop_arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name prop_arb prop)

(* ------------------------------------------------------------------ *)
(* Builder                                                            *)
(* ------------------------------------------------------------------ *)

let test_unconnected_latch () =
  let b = B.create "bad" in
  let _ = B.latch b "l" in
  Alcotest.check_raises "unconnected"
    (Invalid_argument "Circuit.Builder.finish: latch l not connected")
    (fun () -> ignore (B.finish b))

let test_combinational_cycle () =
  let b = B.create "cyc" in
  let l = B.latch b "l" in
  let x = B.input b "x" in
  (* a gate can only reference existing nets, so a combinational cycle
     requires going through a latch's next: connect next to a gate that
     feeds from itself is impossible by construction — instead check that a
     legal feedback through a latch is fine *)
  B.connect b l ~next:(B.xor_ b l x);
  let c = B.finish b in
  Alcotest.(check int) "one latch" 1 (Circuit.num_latches c)

let test_double_connect () =
  let b = B.create "dbl" in
  let l = B.latch b "l" in
  B.connect b l ~next:l;
  Alcotest.check_raises "double connect"
    (Invalid_argument "Circuit.Builder.connect: latch already connected")
    (fun () -> B.connect b l ~next:l)

let test_structural_sharing () =
  let b = B.create "share" in
  let x = B.input b "x" and y = B.input b "y" in
  let a1 = B.and_ b x y and a2 = B.and_ b y x in
  Alcotest.(check int) "commutative sharing" a1 a2

(* ------------------------------------------------------------------ *)
(* Word helpers, checked through the simulator                         *)
(* ------------------------------------------------------------------ *)

let eval_comb build width_out inputs_vals =
  (* build : builder -> outputs; returns output bits as ints *)
  let b = B.create "comb" in
  let outs = build b in
  Array.iteri (fun i s -> B.output b (Printf.sprintf "o%d" i) s) outs;
  let c = B.finish b in
  let input n = List.assoc n inputs_vals in
  let s = Sim.initial_state c in
  let _, outputs = Sim.step c s input in
  let v = ref 0 in
  for i = 0 to width_out - 1 do
    if List.assoc (Printf.sprintf "o%d" i) outputs then v := !v lor (1 lsl i)
  done;
  !v

let test_add_word () =
  let w = 4 in
  for a = 0 to 15 do
    for bv = 0 to 15 do
      let got =
        eval_comb
          (fun b ->
            let xa =
              Array.init w (fun i -> B.input b (Printf.sprintf "a%d" i))
            in
            let xb =
              Array.init w (fun i -> B.input b (Printf.sprintf "b%d" i))
            in
            B.add_word b xa xb)
          w
          (List.init w (fun i -> (Printf.sprintf "a%d" i, a land (1 lsl i) <> 0))
          @ List.init w (fun i ->
                (Printf.sprintf "b%d" i, bv land (1 lsl i) <> 0)))
      in
      Alcotest.(check int)
        (Printf.sprintf "%d+%d" a bv)
        ((a + bv) land 15)
        got
    done
  done

let test_incr_decr_word () =
  let w = 5 in
  for a = 0 to 31 do
    let mk_inputs a =
      List.init w (fun i -> (Printf.sprintf "a%d" i, a land (1 lsl i) <> 0))
    in
    let build op b =
      let xa = Array.init w (fun i -> B.input b (Printf.sprintf "a%d" i)) in
      op b xa
    in
    Alcotest.(check int)
      (Printf.sprintf "%d+1" a)
      ((a + 1) land 31)
      (eval_comb (build B.incr_word) w (mk_inputs a));
    Alcotest.(check int)
      (Printf.sprintf "%d-1" a)
      ((a - 1) land 31)
      (eval_comb (build B.decr_word) w (mk_inputs a))
  done

(* ------------------------------------------------------------------ *)
(* Generators: known reachable-state counts                            *)
(* ------------------------------------------------------------------ *)

let reach_count c = Hashtbl.length (Sim.reachable c)

let test_generator_counts () =
  Alcotest.(check int) "counter4" 16 (reach_count (Generate.counter ~bits:4));
  Alcotest.(check int) "counter_en4" 16
    (reach_count (Generate.counter_enabled ~bits:4));
  Alcotest.(check int) "ring5" 5 (reach_count (Generate.ring ~bits:5));
  Alcotest.(check int) "johnson4" 8 (reach_count (Generate.johnson ~bits:4));
  Alcotest.(check int) "lfsr4" 15 (reach_count (Generate.lfsr ~bits:4));
  Alcotest.(check int) "lfsr5" 31 (reach_count (Generate.lfsr ~bits:5));
  Alcotest.(check int) "fifo5" 6
    (reach_count (Generate.fifo_controller ~depth:5));
  Alcotest.(check int) "arbiter4" 4 (reach_count (Generate.arbiter ~clients:4));
  Alcotest.(check int) "traffic" 5 (reach_count (Generate.traffic_light ()))

let test_lfsr_bad_width () =
  Alcotest.check_raises "no taps"
    (Invalid_argument "Generate.lfsr: no taps for width 9") (fun () ->
      ignore (Generate.lfsr ~bits:9))

let test_microsequencer_jz () =
  (* executing JZ (instr 7) from any state zeroes the micro-PC and stack
     pointer *)
  let c = Generate.microsequencer ~addr_bits:3 ~stack_depth:2 in
  let input n =
    match n with
    | "i0" | "i1" | "i2" -> true (* instr = 7 *)
    | "cc" -> false
    | _ -> false
  in
  (* drive a few arbitrary steps first *)
  let s = ref (Sim.initial_state c) in
  let arbitrary n = String.length n > 0 && n.[0] = 'd' in
  for _ = 1 to 3 do
    s := fst (Sim.step c !s arbitrary)
  done;
  let after = fst (Sim.step c !s input) in
  (* upc and sp latches come first in declaration order: upc(3) ctr(3) sp(2) *)
  let names =
    List.map
      (fun l ->
        match Circuit.gate c l with
        | Circuit.Latch { name; _ } -> name
        | _ -> assert false)
      (Circuit.latches c)
  in
  List.iteri
    (fun i n ->
      if
        String.length n >= 3
        && (String.sub n 0 3 = "upc" || String.sub n 0 2 = "sp")
      then
        Alcotest.(check bool) (n ^ " cleared") false after.(i))
    names

let test_microprogram_deep () =
  (* the crafted control store walks a counted loop: the machine visits many
     states from a single free input, and the walk is deep (the explicit BFS
     frontier keeps producing new states well past the first iterations) *)
  let c = Generate.microprogram ~addr_bits:4 ~stack_depth:2 ~seed:5 in
  Alcotest.(check int) "one free input" 1 (Circuit.num_inputs c);
  let n = Hashtbl.length (Sim.reachable c) in
  Alcotest.(check bool) "deep walk" true (n > 50)

let test_dense_controller_deterministic () =
  let c1 = Generate.dense_controller ~latches:12 ~seed:5 in
  let c2 = Generate.dense_controller ~latches:12 ~seed:5 in
  Alcotest.(check string) "same netlist" (Blif.to_string c1) (Blif.to_string c2);
  let c3 = Generate.dense_controller ~latches:12 ~seed:6 in
  Alcotest.(check bool) "different seed differs" false
    (Blif.to_string c1 = Blif.to_string c3)

let test_multiplier_exhaustive () =
  let bits = 3 in
  let c = Generate.multiplier ~bits in
  for x = 0 to (1 lsl bits) - 1 do
    for y = 0 to (1 lsl bits) - 1 do
      let input n =
        let v = int_of_string (String.sub n 1 (String.length n - 1)) in
        if n.[0] = 'x' then x land (1 lsl v) <> 0 else y land (1 lsl v) <> 0
      in
      let s = Sim.initial_state c in
      let _, outs = Sim.step c s input in
      let p = ref 0 in
      List.iter
        (fun (name, b) ->
          if b then
            let j = int_of_string (String.sub name 1 (String.length name - 1)) in
            p := !p lor (1 lsl j))
        outs;
      Alcotest.(check int) (Printf.sprintf "%d*%d" x y) (x * y) !p
    done
  done

let test_alu_exhaustive () =
  let width = 4 in
  let c = Generate.alu ~width in
  let mask = (1 lsl width) - 1 in
  for a = 0 to mask do
    for bv = 0 to mask do
      for op = 0 to 3 do
        let input n =
          if String.length n >= 2 && String.sub n 0 2 = "op" then
            op land (1 lsl int_of_string (String.sub n 2 1)) <> 0
          else
            let v = int_of_string (String.sub n 1 (String.length n - 1)) in
            if n.[0] = 'a' then a land (1 lsl v) <> 0
            else bv land (1 lsl v) <> 0
        in
        let s = Sim.initial_state c in
        let _, outs = Sim.step c s input in
        let r = ref 0 in
        List.iter
          (fun (name, bit) ->
            if bit && name.[0] = 'r' then
              let j =
                int_of_string (String.sub name 1 (String.length name - 1))
              in
              r := !r lor (1 lsl j))
          outs;
        let expect =
          (match op with
          | 0 -> a + bv
          | 1 -> a - bv
          | 2 -> a land bv
          | _ -> a lxor bv)
          land mask
        in
        Alcotest.(check int)
          (Printf.sprintf "op%d %d,%d" op a bv)
          expect !r;
        Alcotest.(check bool)
          (Printf.sprintf "zero flag op%d %d,%d" op a bv)
          (expect = 0) (List.assoc "zero" outs)
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* BLIF                                                               *)
(* ------------------------------------------------------------------ *)

let sample_blif =
  {|# a 2-bit counter with enable
.model cnt2
.inputs en
.outputs msb
.names q1 msb
1 1
.latch n0 q0 0
.latch n1 q1 0
.names en q0 n0
10 1
01 1
.names en q0 q1 n1
1-1 1
-11 1
110 1
# actually: n1 = q1 xor (en and q0)
.end
|}

let test_blif_parse () =
  let c = Blif.parse_string sample_blif in
  Alcotest.(check int) "latches" 2 (Circuit.num_latches c);
  Alcotest.(check int) "inputs" 1 (Circuit.num_inputs c);
  ignore (reach_count c)

let test_blif_bad () =
  Alcotest.check_raises "bad construct" (Blif.Parse_error
    "unsupported construct: .subckt") (fun () ->
      ignore (Blif.parse_string ".model m\n.subckt foo\n.end\n"))

let test_blif_roundtrip_behaviour () =
  List.iter
    (fun c ->
      let c' = Blif.parse_string (Blif.to_string c) in
      Alcotest.(check int)
        (Circuit.name c ^ " latches")
        (Circuit.num_latches c) (Circuit.num_latches c');
      (* run both machines in lockstep on a deterministic input pattern *)
      let s = ref (Sim.initial_state c) and s' = ref (Sim.initial_state c') in
      for t = 0 to 20 do
        let input n = (Hashtbl.hash (n, t) land 1) = 1 in
        let n1, o1 = Sim.step c !s input in
        let n2, o2 = Sim.step c' !s' input in
        List.iter
          (fun (name, v) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s@%d" name t)
              v
              (List.assoc (name ^ "_out") o2))
          o1;
        s := n1;
        s' := n2
      done)
    [
      Generate.counter_enabled ~bits:3;
      Generate.traffic_light ();
      Generate.fifo_controller ~depth:3;
      Generate.microsequencer ~addr_bits:2 ~stack_depth:1;
    ]

(* ------------------------------------------------------------------ *)
(* Compilation vs. simulation                                          *)
(* ------------------------------------------------------------------ *)

let assignment_of compiled state input_mask =
  let tbl = Hashtbl.create 32 in
  Array.iteri
    (fun i l -> Hashtbl.add tbl l.Compile.cur state.(i))
    compiled.Compile.latches;
  List.iteri
    (fun i (_, v) -> Hashtbl.add tbl v (input_mask land (1 lsl i) <> 0))
    compiled.Compile.input_vars;
  fun v -> Option.value ~default:false (Hashtbl.find_opt tbl v)

let input_fn_of compiled input_mask =
  let tbl = Hashtbl.create 8 in
  List.iteri
    (fun i (n, _) -> Hashtbl.add tbl n (input_mask land (1 lsl i) <> 0))
    compiled.Compile.input_vars;
  fun n -> Hashtbl.find tbl n

let check_compile_matches_sim c =
  let compiled = Compile.compile c in
  let man = compiled.Compile.man in
  let nl = Circuit.num_latches c in
  let ni = Circuit.num_inputs c in
  let ok = ref true in
  for trial = 0 to 200 do
    let smask = Hashtbl.hash (trial, "s") land ((1 lsl nl) - 1) in
    let imask = Hashtbl.hash (trial, "i") land ((1 lsl ni) - 1) in
    let state = Sim.decode ~nlatches:nl smask in
    let asg = assignment_of compiled state imask in
    let next_sim, outs_sim = Sim.step c state (input_fn_of compiled imask) in
    Array.iteri
      (fun i l ->
        if Bdd.eval man l.Compile.fn asg <> next_sim.(i) then ok := false)
      compiled.Compile.latches;
    List.iter
      (fun (n, f) ->
        if Bdd.eval man f asg <> List.assoc n outs_sim then ok := false)
      compiled.Compile.output_fns
  done;
  !ok

let test_compile_matches_sim () =
  List.iter
    (fun c ->
      Alcotest.(check bool) (Circuit.name c) true (check_compile_matches_sim c))
    [
      Generate.counter_enabled ~bits:4;
      Generate.lfsr ~bits:6;
      Generate.fifo_controller ~depth:6;
      Generate.traffic_light ();
      Generate.microsequencer ~addr_bits:3 ~stack_depth:2;
      Generate.shifter_datapath ~width:4;
      Generate.handshake_pipeline ~stages:4;
      Generate.dense_controller ~latches:10 ~seed:42;
    ]

let test_compile_init () =
  let c = Generate.ring ~bits:4 in
  let compiled = Compile.compile c in
  Alcotest.(check (float 1e-9)) "one initial state" 1.0
    (Compile.state_count compiled compiled.Compile.init)

let prop_random_netlist_compiles =
  qtest ~count:30 "random netlists compile and evaluate consistently"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let c = Generate.random_netlist ~inputs:6 ~gates:40 ~outputs:3 ~seed in
      check_compile_matches_sim c)

let tests =
  ( "circuit",
    [
      Alcotest.test_case "unconnected latch" `Quick test_unconnected_latch;
      Alcotest.test_case "latch feedback ok" `Quick test_combinational_cycle;
      Alcotest.test_case "double connect" `Quick test_double_connect;
      Alcotest.test_case "structural sharing" `Quick test_structural_sharing;
      Alcotest.test_case "add_word exhaustive" `Quick test_add_word;
      Alcotest.test_case "incr/decr exhaustive" `Quick test_incr_decr_word;
      Alcotest.test_case "generator reach counts" `Quick test_generator_counts;
      Alcotest.test_case "lfsr bad width" `Quick test_lfsr_bad_width;
      Alcotest.test_case "microsequencer JZ" `Quick test_microsequencer_jz;
      Alcotest.test_case "microprogram deep" `Quick test_microprogram_deep;
      Alcotest.test_case "multiplier exhaustive" `Quick
        test_multiplier_exhaustive;
      Alcotest.test_case "alu exhaustive" `Quick test_alu_exhaustive;
      Alcotest.test_case "dense controller deterministic" `Quick
        test_dense_controller_deterministic;
      Alcotest.test_case "blif parse" `Quick test_blif_parse;
      Alcotest.test_case "blif rejects unsupported" `Quick test_blif_bad;
      Alcotest.test_case "blif roundtrip behaviour" `Quick
        test_blif_roundtrip_behaviour;
      Alcotest.test_case "compile matches sim" `Quick test_compile_matches_sim;
      Alcotest.test_case "compile init cube" `Quick test_compile_init;
      prop_random_netlist_compiles;
    ] )
