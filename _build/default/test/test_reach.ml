(* Tests for the reachability engine: image computation, exact BFS and
   high-density traversal, all validated against explicit-state search. *)

let small_circuits () =
  [
    Generate.counter ~bits:4;
    Generate.counter_enabled ~bits:4;
    Generate.ring ~bits:5;
    Generate.johnson ~bits:4;
    Generate.lfsr ~bits:5;
    Generate.fifo_controller ~depth:5;
    Generate.arbiter ~clients:4;
    Generate.traffic_light ();
    Generate.microsequencer ~addr_bits:2 ~stack_depth:1;
    Generate.handshake_pipeline ~stages:3;
  ]

let explicit_count c = float_of_int (Hashtbl.length (Sim.reachable c))

let bdd_of_states compiled codes =
  let man = compiled.Compile.man in
  let nl = Array.length compiled.Compile.latches in
  Hashtbl.fold
    (fun code () acc ->
      let cube =
        Bdd.cube_of_literals man
          (List.init nl (fun i ->
               (compiled.Compile.latches.(i).Compile.cur,
                code land (1 lsl i) <> 0)))
      in
      Bdd.bor man acc cube)
    codes (Bdd.ff man)

(* ------------------------------------------------------------------ *)
(* Image                                                              *)
(* ------------------------------------------------------------------ *)

let successors_of_init c =
  (* explicit successors of the initial state over all inputs *)
  let ins = List.map fst (Circuit.inputs c) in
  let nin = List.length ins in
  let out = Hashtbl.create 16 in
  let s0 = Sim.initial_state c in
  for mask = 0 to (1 lsl nin) - 1 do
    let input n =
      let rec idx i = function
        | [] -> assert false
        | x :: _ when x = n -> i
        | _ :: rest -> idx (i + 1) rest
      in
      mask land (1 lsl idx 0 ins) <> 0
    in
    let next, _ = Sim.step c s0 input in
    Hashtbl.replace out (Sim.encode next) ()
  done;
  out

let test_image_of_init () =
  List.iter
    (fun c ->
      let compiled = Compile.compile c in
      let trans = Trans.build compiled in
      let img = Image.exact trans compiled.Compile.init in
      let expect = bdd_of_states compiled (successors_of_init c) in
      Alcotest.(check bool) (Circuit.name c) true (Bdd.equal img expect))
    (small_circuits ())

let test_image_monolithic_agrees () =
  List.iter
    (fun c ->
      let compiled = Compile.compile c in
      let man = compiled.Compile.man in
      let trans = Trans.build ~cluster_limit:50 compiled in
      let img = Image.exact trans compiled.Compile.init in
      (* monolithic relation image *)
      let t = Trans.monolithic compiled in
      let vars =
        Bdd.cube man
          (Array.to_list (Compile.cur_vars compiled)
          @ Array.to_list (Compile.input_var_array compiled))
      in
      let mono =
        Compile.next_to_cur compiled
          (Bdd.and_exists man ~vars t compiled.Compile.init)
      in
      Alcotest.(check bool) (Circuit.name c) true (Bdd.equal img mono))
    (small_circuits ())

let test_preimage_contains_init () =
  List.iter
    (fun c ->
      let compiled = Compile.compile c in
      let man = compiled.Compile.man in
      let trans = Trans.build compiled in
      let img = Image.exact trans compiled.Compile.init in
      let pre = Image.preimage trans img in
      Alcotest.(check bool) (Circuit.name c) true
        (Bdd.leq man compiled.Compile.init pre))
    (small_circuits ())

let test_partial_image_is_subset () =
  let c = Generate.microsequencer ~addr_bits:3 ~stack_depth:2 in
  let compiled = Compile.compile c in
  let man = compiled.Compile.man in
  let trans = Trans.build ~cluster_limit:100 compiled in
  (* grab a meaty source set: a few BFS steps *)
  let s = ref compiled.Compile.init in
  for _ = 1 to 3 do
    s := Bdd.bor man !s (Image.exact trans !s)
  done;
  let exact = Image.exact trans !s in
  let approx p = Approx.under man Approx.RUA p in
  let sub, stats = Image.image ~partial:(10, approx) trans !s in
  Alcotest.(check bool) "subset" true (Bdd.leq man sub exact);
  Alcotest.(check bool) "did approximate" true (stats.Image.approximations > 0)

let test_quantification_schedule () =
  (* the early-quantification cubes of the clusters plus the frontier cube
     must partition the present-state and input variables *)
  List.iter
    (fun c ->
      let compiled = Compile.compile c in
      let man = compiled.Compile.man in
      let trans = Trans.build ~cluster_limit:40 compiled in
      let seen = Hashtbl.create 32 in
      let record cube =
        List.iter
          (fun v ->
            Alcotest.(check bool) "var quantified once" false
              (Hashtbl.mem seen v);
            Hashtbl.replace seen v ())
          (Bdd.support man cube)
      in
      record trans.Trans.frontier_quantify;
      List.iter (fun cl -> record cl.Trans.quantify) trans.Trans.clusters;
      let expected =
        Array.to_list (Compile.cur_vars compiled)
        @ Array.to_list (Compile.input_var_array compiled)
      in
      List.iter
        (fun v ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: var %d covered" (Circuit.name c) v)
            true (Hashtbl.mem seen v))
        expected;
      (* no variable may be quantified while a later cluster still uses it *)
      let rec check_late = function
        | [] -> ()
        | cl :: rest ->
            List.iter
              (fun v ->
                List.iter
                  (fun later ->
                    Alcotest.(check bool) "not used later" false
                      (List.mem v (Bdd.support man later.Trans.rel)))
                  rest)
              (Bdd.support man cl.Trans.quantify);
            check_late rest
      in
      check_late trans.Trans.clusters)
    [ Generate.lfsr ~bits:6; Generate.microsequencer ~addr_bits:3 ~stack_depth:2 ]

let test_compile_interleaves_cur_next () =
  let c = Generate.johnson ~bits:6 in
  let compiled = Compile.compile c in
  let man = compiled.Compile.man in
  Array.iter
    (fun l ->
      let lc = Bdd.level_of_var man l.Compile.cur
      and ln = Bdd.level_of_var man l.Compile.next in
      Alcotest.(check int) (l.Compile.name ^ " adjacent") 1 (abs (lc - ln)))
    compiled.Compile.latches

(* ------------------------------------------------------------------ *)
(* BFS and high-density traversal                                      *)
(* ------------------------------------------------------------------ *)

let test_bfs_matches_explicit () =
  List.iter
    (fun c ->
      let compiled = Compile.compile c in
      let trans = Trans.build compiled in
      let r = Bfs.run trans in
      Alcotest.(check bool) (Circuit.name c ^ " exact") true r.Traversal.exact;
      Alcotest.(check (float 1e-6))
        (Circuit.name c) (explicit_count c) r.Traversal.states)
    (small_circuits ())

let test_bfs_reached_set_exactly () =
  let c = Generate.traffic_light () in
  let compiled = Compile.compile c in
  let trans = Trans.build compiled in
  let r = Bfs.run trans in
  let expect = bdd_of_states compiled (Sim.reachable c) in
  Alcotest.(check bool) "same set" true (Bdd.equal r.Traversal.reached expect)

let hd_params meth = { High_density.default with meth }

let test_hd_matches_explicit () =
  List.iter
    (fun c ->
      let expect = explicit_count c in
      List.iter
        (fun meth ->
          let compiled = Compile.compile c in
          let trans = Trans.build compiled in
          let r = High_density.run ~params:(hd_params meth) trans in
          Alcotest.(check bool)
            (Circuit.name c ^ " exact " ^ Approx.method_name meth)
            true r.Traversal.exact;
          Alcotest.(check (float 1e-6))
            (Circuit.name c ^ " " ^ Approx.method_name meth)
            expect r.Traversal.states)
        [ Approx.RUA; Approx.SP; Approx.HB ])
    (small_circuits ())

let test_hd_with_partial_images () =
  List.iter
    (fun c ->
      let compiled = Compile.compile c in
      let trans = Trans.build ~cluster_limit:60 compiled in
      let params =
        { High_density.default with pimg = Some (20, 10) }
      in
      let r = High_density.run ~params trans in
      Alcotest.(check bool) (Circuit.name c ^ " exact") true r.Traversal.exact;
      Alcotest.(check (float 1e-6))
        (Circuit.name c) (explicit_count c) r.Traversal.states)
    [
      Generate.traffic_light ();
      Generate.fifo_controller ~depth:5;
      Generate.microsequencer ~addr_bits:2 ~stack_depth:1;
    ]

let test_hd_thresholded () =
  let c = Generate.microsequencer ~addr_bits:2 ~stack_depth:1 in
  let expect = explicit_count c in
  List.iter
    (fun threshold ->
      let compiled = Compile.compile c in
      let trans = Trans.build compiled in
      let params = { High_density.default with threshold } in
      let r = High_density.run ~params trans in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "threshold %d" threshold)
        expect r.Traversal.states)
    [ 2; 8; 64 ]

let test_bfs_cluster_limits_agree () =
  let c = Generate.lfsr ~bits:6 in
  let expect = explicit_count c in
  List.iter
    (fun limit ->
      let compiled = Compile.compile c in
      let trans = Trans.build ~cluster_limit:limit compiled in
      let r = Bfs.run trans in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "limit %d" limit)
        expect r.Traversal.states)
    [ 1; 30; 100000 ]

let test_part_orders_agree () =
  List.iter
    (fun c ->
      let expect = explicit_count c in
      List.iter
        (fun part_order ->
          let compiled = Compile.compile c in
          let trans = Trans.build ~part_order compiled in
          let r = Bfs.run trans in
          Alcotest.(check (float 1e-6)) (Circuit.name c) expect
            r.Traversal.states)
        [ `Declaration; `Support ])
    [ Generate.lfsr ~bits:6; Generate.microsequencer ~addr_bits:3 ~stack_depth:1 ]

let test_bfs_with_sifting () =
  let c = Generate.johnson ~bits:5 in
  let compiled = Compile.compile c in
  let trans = Trans.build compiled in
  let r = Bfs.run ~sift:true trans in
  Alcotest.(check (float 1e-6)) "states" (explicit_count c) r.Traversal.states

let test_node_limit_aborts () =
  let c = Generate.shifter_datapath ~width:8 in
  let compiled = Compile.compile c in
  let trans = Trans.build compiled in
  (* an absurdly small node budget must abort the run as inexact *)
  let r = Bfs.run ~node_limit:50 trans in
  Alcotest.(check bool) "not exact" false r.Traversal.exact;
  let compiled = Compile.compile c in
  let trans = Trans.build compiled in
  let r = High_density.run ~node_limit:50 trans in
  Alcotest.(check bool) "hd not exact" false r.Traversal.exact

let test_time_limit_zero () =
  let c = Generate.counter ~bits:8 in
  let trans = Trans.build (Compile.compile c) in
  let r = Bfs.run ~time_limit:0.0 trans in
  Alcotest.(check bool) "not exact" false r.Traversal.exact;
  Alcotest.(check bool) "did not finish" true (r.Traversal.states < 256.0)

let test_hd_c1_method () =
  (* the compound methods also work as subset extractors *)
  let c = Generate.johnson ~bits:4 in
  let trans = Trans.build (Compile.compile c) in
  let r =
    High_density.run ~params:{ High_density.default with meth = Approx.C1 }
      trans
  in
  Alcotest.(check (float 1e-6)) "states" (explicit_count c) r.Traversal.states

let test_max_iter_incomplete () =
  let c = Generate.counter ~bits:6 in
  let compiled = Compile.compile c in
  let trans = Trans.build compiled in
  let r = Bfs.run ~max_iter:3 trans in
  Alcotest.(check bool) "not exact" false r.Traversal.exact;
  Alcotest.(check bool) "partial" true (r.Traversal.states < 64.0)

let tests =
  ( "reach",
    [
      Alcotest.test_case "image of init" `Quick test_image_of_init;
      Alcotest.test_case "image = monolithic image" `Quick
        test_image_monolithic_agrees;
      Alcotest.test_case "preimage contains init" `Quick
        test_preimage_contains_init;
      Alcotest.test_case "partial image is a subset" `Quick
        test_partial_image_is_subset;
      Alcotest.test_case "quantification schedule" `Quick
        test_quantification_schedule;
      Alcotest.test_case "compile interleaves cur/next" `Quick
        test_compile_interleaves_cur_next;
      Alcotest.test_case "bfs matches explicit" `Quick
        test_bfs_matches_explicit;
      Alcotest.test_case "bfs reached set exactly" `Quick
        test_bfs_reached_set_exactly;
      Alcotest.test_case "hd matches explicit" `Slow test_hd_matches_explicit;
      Alcotest.test_case "hd with partial images" `Quick
        test_hd_with_partial_images;
      Alcotest.test_case "hd thresholded" `Quick test_hd_thresholded;
      Alcotest.test_case "bfs cluster limits agree" `Quick
        test_bfs_cluster_limits_agree;
      Alcotest.test_case "part orders agree" `Quick test_part_orders_agree;
      Alcotest.test_case "bfs with sifting" `Quick test_bfs_with_sifting;
      Alcotest.test_case "node limit aborts" `Quick test_node_limit_aborts;
      Alcotest.test_case "time limit zero" `Quick test_time_limit_zero;
      Alcotest.test_case "hd with compound method" `Quick test_hd_c1_method;
      Alcotest.test_case "max_iter incomplete" `Quick test_max_iter_incomplete;
    ] )
