(* Tests for the paper's Section 2: HB, SP, UA, RUA, minimization and the
   compound methods. *)

let nvars = 7
let arb = Tgen.arbitrary_expr ~nvars ~depth:7

let qtest ?(count = 300) name prop_arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name prop_arb prop)

let density man f = Bdd.density man f ~nvars

(* ------------------------------------------------------------------ *)
(* Unit tests                                                         *)
(* ------------------------------------------------------------------ *)

let test_rua_constants () =
  let man = Bdd.create ~nvars:4 () in
  Alcotest.(check bool) "RUA tt" true
    (Bdd.equal (Remap.approximate man (Bdd.tt man)) (Bdd.tt man));
  Alcotest.(check bool) "RUA ff" true
    (Bdd.equal (Remap.approximate man (Bdd.ff man)) (Bdd.ff man))

let test_rua_threshold_noop () =
  (* a threshold at least |f| stops marking before any replacement *)
  let man = Bdd.create ~nvars:6 () in
  let f =
    Bdd.bor man
      (Bdd.band man (Bdd.ithvar man 0) (Bdd.ithvar man 3))
      (Bdd.band man (Bdd.ithvar man 1) (Bdd.bnot man (Bdd.ithvar man 4)))
  in
  let r = Remap.approximate man ~threshold:(Bdd.size f) f in
  Alcotest.(check bool) "unchanged" true (Bdd.equal r f)

let test_rua_remap_example () =
  (* f unate in its top variable: f = x·(y + z) + x'·y.  Here f_e = y ≤
     f_t = y + z, so remap can replace the root by f_e — and that is a
     strict density win the algorithm must find. *)
  let man = Bdd.create ~nvars:3 () in
  let x = Bdd.ithvar man 0
  and y = Bdd.ithvar man 1
  and z = Bdd.ithvar man 2 in
  let f = Bdd.bor man (Bdd.band man x z) y in
  (* f = y + xz; f_e = y, f_t = y + z *)
  let r, stats = Remap.approximate_with_stats man f in
  Alcotest.(check bool) "subset" true (Bdd.leq man r f);
  Alcotest.(check bool) "denser" true (density man r >= density man f -. 1e-9);
  Alcotest.(check bool) "some replacement happened" true
    (stats.Remap.replacements > 0)

let test_hb_chain_shape () =
  let man = Bdd.create ~nvars:8 () in
  (* a function whose BDD is wide: majority-ish *)
  let vs = List.init 8 (Bdd.ithvar man) in
  let pairs =
    [ (0, 1); (2, 3); (4, 5); (6, 7) ]
    |> List.map (fun (a, b) -> Bdd.band man (List.nth vs a) (List.nth vs b))
  in
  let f = Bdd.disj man pairs in
  let t = 4 in
  let r = Heavy_branch.approximate man ~threshold:t f in
  Alcotest.(check bool) "subset" true (Bdd.leq man r f);
  Alcotest.(check bool) "fits" true (Bdd.size r <= max t 8);
  Alcotest.(check bool) "nonempty" true (not (Bdd.is_false r))

let test_sp_keeps_shortest_implicant () =
  let man = Bdd.create ~nvars:6 () in
  (* f = x0 + (x1 x2 x3 x4 x5): the short path is the single literal *)
  let x0 = Bdd.ithvar man 0 in
  let long = Bdd.conj man (List.init 5 (fun i -> Bdd.ithvar man (i + 1))) in
  let f = Bdd.bor man x0 long in
  let r = Short_paths.approximate man ~threshold:1 f in
  Alcotest.(check bool) "keeps x0" true (Bdd.equal r x0)

let test_minimize_interval () =
  let man = Bdd.create ~nvars:4 () in
  let l = Bdd.band man (Bdd.ithvar man 0) (Bdd.ithvar man 1) in
  let u = Bdd.bor man (Bdd.ithvar man 0) (Bdd.ithvar man 1) in
  let m = Minimize.minimize man ~lower:l ~upper:u in
  Alcotest.(check bool) "safe" true (Minimize.is_safe man ~lower:l ~upper:u m)

let test_minimize_raises () =
  let man = Bdd.create ~nvars:2 () in
  let l = Bdd.ithvar man 0 and u = Bdd.ithvar man 1 in
  Alcotest.check_raises "lower > upper"
    (Invalid_argument "Minimize.minimize: lower > upper") (fun () ->
      ignore (Minimize.minimize man ~lower:l ~upper:u))

let test_method_names () =
  List.iter
    (fun m ->
      Alcotest.(check (option string))
        (Approx.method_name m) (Some (Approx.method_name m))
        (Option.map Approx.method_name
           (Approx.method_of_string (Approx.method_name m))))
    Approx.all_methods;
  Alcotest.(check bool) "unknown" true (Approx.method_of_string "XX" = None)

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let prop_all_methods_under =
  qtest ~count:120 "every method underapproximates"
    arb
    (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      List.for_all
        (fun m -> Bdd.leq man (Approx.under man m f) f)
        Approx.all_methods)

let prop_all_methods_over =
  qtest ~count:60 "every dual method overapproximates"
    arb
    (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      List.for_all
        (fun m -> Bdd.leq man f (Approx.over man m f))
        Approx.all_methods)

let prop_rua_safe =
  qtest "RUA with quality 1 is safe (density never decreases)" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      QCheck.assume (not (Bdd.is_const f));
      let r = Remap.approximate man ~quality:1.0 f in
      density man r >= density man f -. 1e-9)

let prop_rua_conservative_quality =
  qtest "an unreachable quality factor leaves f unchanged" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      (* the density ratio of any replacement is bounded by |f|, so a huge
         quality factor rejects everything *)
      Bdd.equal f (Remap.approximate man ~quality:1e12 f))

let prop_rua_estimates =
  qtest "RUA estimates: size bound holds, minterms exact" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      QCheck.assume (not (Bdd.is_const f));
      let r, stats = Remap.approximate_with_stats man f in
      Bdd.size r <= stats.Remap.estimated_size
      && abs_float (Bdd.weight man r -. stats.Remap.estimated_minterm_fraction)
         < 1e-9)

let prop_c1_dominates_rua =
  qtest "C1 retains at least RUA's minterms at no size cost" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      let rua = Remap.approximate man f in
      let c1 = Compound.c1 man f in
      Bdd.count_minterms man c1 ~nvars
      >= Bdd.count_minterms man rua ~nvars -. 1e-9
      && Bdd.size c1 <= Bdd.size rua)

let prop_c1_safe =
  qtest "C1 is safe" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      QCheck.assume (not (Bdd.is_const f));
      let c1 = Compound.c1 man f in
      density man c1 >= density man f -. 1e-9)

let prop_c2_under =
  qtest ~count:120 "C2 is an underapproximation no larger than f" arb
    (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      let c2 = Compound.c2 man f in
      Bdd.leq man c2 f && Bdd.size c2 <= Bdd.size f)

let prop_iterated_rua_safe =
  qtest ~count:120 "iterated RUA is safe" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      QCheck.assume (not (Bdd.is_const f));
      let r = Compound.iterated_rua man f in
      Bdd.leq man r f && density man r >= density man f -. 1e-9)

let prop_hb_nonempty =
  qtest "HB of a satisfiable function is satisfiable" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      QCheck.assume (not (Bdd.is_const f));
      let r = Heavy_branch.approximate man ~threshold:2 f in
      not (Bdd.is_false r))

let prop_hb_threshold =
  qtest "HB respects a generous threshold"
    QCheck.(pair arb (int_range 3 20))
    (fun (e, t) ->
      let man, f, _ = Tgen.setup ~nvars e in
      QCheck.assume (not (Bdd.is_const f));
      let t = max t nvars in
      (* a threshold of at least one node per level is always honourable *)
      Bdd.size (Heavy_branch.approximate man ~threshold:t f) <= t)

let prop_sp_nonempty =
  qtest "SP of a satisfiable function is satisfiable" arb (fun e ->
      let man, f, _ = Tgen.setup ~nvars e in
      QCheck.assume (not (Bdd.is_const f));
      not (Bdd.is_false (Short_paths.approximate man ~threshold:1 f)))

let prop_ua_under =
  qtest "UA underapproximates at every weight"
    QCheck.(pair arb (float_range 0.0 1.0))
    (fun (e, w) ->
      let man, f, _ = Tgen.setup ~nvars e in
      let r =
        Under_approx.approximate man
          ~params:{ Under_approx.threshold = 0; weight = w }
          f
      in
      Bdd.leq man r f)

let prop_rua_thresholded_estimates =
  qtest "RUA estimates hold under early stop and low quality"
    QCheck.(triple arb (int_range 1 40) (float_range 0.4 1.5))
    (fun (e, threshold, quality) ->
      let man, f, _ = Tgen.setup ~nvars e in
      QCheck.assume (not (Bdd.is_const f));
      let r, stats = Remap.approximate_with_stats man ~threshold ~quality f in
      Bdd.leq man r f
      && Bdd.size r <= stats.Remap.estimated_size
      && abs_float (Bdd.weight man r -. stats.Remap.estimated_minterm_fraction)
         < 1e-9)

let prop_rua_after_reorder =
  qtest ~count:100 "RUA remains safe and exact under permuted orders"
    QCheck.(pair arb (make (Tgen.permutation_gen nvars)))
    (fun (e, order) ->
      let man, f, _ = Tgen.setup ~nvars e in
      match Bdd.reorder man ~order ~roots:[ f ] with
      | [ f ] ->
          QCheck.assume (not (Bdd.is_const f));
          let r, stats = Remap.approximate_with_stats man f in
          Bdd.leq man r f
          && density man r >= density man f -. 1e-9
          && Bdd.size r <= stats.Remap.estimated_size
          && abs_float
               (Bdd.weight man r -. stats.Remap.estimated_minterm_fraction)
             < 1e-9
      | _ -> false)

let prop_minimize_safe =
  qtest "minimize is safe on random intervals"
    QCheck.(pair arb arb)
    (fun (e1, e2) ->
      let man = Bdd.create ~nvars () in
      let f = Tgen.build_bdd man e1 and g = Tgen.build_bdd man e2 in
      let lower = Bdd.band man f g and upper = Bdd.bor man f g in
      let m = Minimize.minimize man ~lower ~upper in
      Minimize.is_safe man ~lower ~upper m)

let prop_restrict_interval_member =
  qtest "restrict_to_interval stays in the interval"
    QCheck.(pair arb arb)
    (fun (e1, e2) ->
      let man = Bdd.create ~nvars () in
      let f = Tgen.build_bdd man e1 and g = Tgen.build_bdd man e2 in
      let lower = Bdd.band man f g and upper = Bdd.bor man f g in
      let m = Minimize.restrict_to_interval man ~lower ~upper in
      Bdd.leq man lower m && Bdd.leq man m upper)

let tests =
  ( "approx",
    [
      Alcotest.test_case "RUA constants" `Quick test_rua_constants;
      Alcotest.test_case "RUA threshold no-op" `Quick test_rua_threshold_noop;
      Alcotest.test_case "RUA remap example" `Quick test_rua_remap_example;
      Alcotest.test_case "HB chain shape" `Quick test_hb_chain_shape;
      Alcotest.test_case "SP shortest implicant" `Quick
        test_sp_keeps_shortest_implicant;
      Alcotest.test_case "minimize interval" `Quick test_minimize_interval;
      Alcotest.test_case "minimize raises" `Quick test_minimize_raises;
      Alcotest.test_case "method names" `Quick test_method_names;
      prop_all_methods_under;
      prop_all_methods_over;
      prop_rua_safe;
      prop_rua_conservative_quality;
      prop_rua_estimates;
      prop_c1_dominates_rua;
      prop_c1_safe;
      prop_c2_under;
      prop_iterated_rua_safe;
      prop_hb_nonempty;
      prop_hb_threshold;
      prop_sp_nonempty;
      prop_ua_under;
      prop_rua_thresholded_estimates;
      prop_rua_after_reorder;
      prop_minimize_safe;
      prop_restrict_interval_member;
    ] )
