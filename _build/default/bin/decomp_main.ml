(* Decomposition CLI: conjunctively decompose the large functions of a
   circuit with the paper's three two-way methods plus McMillan's canonical
   decomposition.

     dune exec bin/decomp_main.exe -- --blif design.blif
     dune exec bin/decomp_main.exe -- --seed 5 --min-nodes 400 *)

open Cmdliner

let blif_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "blif" ] ~docv:"FILE" ~doc:"Circuit to analyze (BLIF).")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ]
        ~doc:"Seed for the built-in random netlist used when no BLIF is given.")

let min_nodes_arg =
  Arg.(
    value & opt int 200
    & info [ "min-nodes" ] ~doc:"Only process functions of at least this size.")

let mcmillan_arg =
  Arg.(
    value & flag
    & info [ "mcmillan" ] ~doc:"Also run McMillan's canonical decomposition.")

let run blif seed min_nodes mcmillan =
  let circuit =
    match blif with
    | Some path -> Blif.parse_file path
    | None -> Generate.random_netlist ~inputs:18 ~gates:120 ~outputs:6 ~seed
  in
  let entries = Pool.entries_of_circuit ~min_nodes circuit in
  Printf.printf "%s\npool: %s\n\n" (Circuit.stats circuit)
    (Pool.describe entries);
  List.iter
    (fun { Pool.man; f; label; _ } ->
      Printf.printf "%s: |f| = %d\n" label (Bdd.size f);
      List.iter
        (fun (name, fn) ->
          let p = fn man f in
          Printf.printf
            "  %-8s |G| = %6d  |H| = %6d  shared = %6d  balance = %.2f  ok = %b\n"
            name (Bdd.size p.Decomp.g) (Bdd.size p.Decomp.h)
            (Decomp.shared_size p) (Decomp.balance p)
            (Decomp.verify_conj man f p))
        [
          ("Cofactor", Decomp.conj_cofactor);
          ("Band", fun m g -> Decomp_points.band m g);
          ("Disjoint", fun m g -> Decomp_points.disjoint m g);
        ];
      if mcmillan then begin
        let gs = Mcmillan.decompose man f in
        Printf.printf "  McMillan %d factors, shared = %d, ok = %b\n"
          (List.length gs) (Bdd.shared_size gs) (Mcmillan.verify man f gs)
      end)
    entries

let cmd =
  let term =
    Term.(const run $ blif_arg $ seed_arg $ min_nodes_arg $ mcmillan_arg)
  in
  Cmd.v (Cmd.info "decomp_main" ~doc:"BDD decomposition methods (DAC'98)") term

let () = exit (Cmd.eval cmd)
