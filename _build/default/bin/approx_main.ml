(* Approximation CLI: apply the paper's underapproximation methods to the
   output and next-state functions of a circuit and report sizes, minterm
   counts and densities.

     dune exec bin/approx_main.exe -- --blif design.blif --min-nodes 500
     dune exec bin/approx_main.exe -- --seed 7 --methods RUA,SP *)

open Cmdliner

let blif_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "blif" ] ~docv:"FILE" ~doc:"Circuit to analyze (BLIF).")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ]
        ~doc:"Seed for the built-in random netlist used when no BLIF is given.")

let min_nodes_arg =
  Arg.(
    value & opt int 200
    & info [ "min-nodes" ] ~doc:"Only process functions of at least this size.")

let methods_arg =
  Arg.(
    value
    & opt (list string) [ "HB"; "SP"; "UA"; "RUA"; "C1"; "C2" ]
    & info [ "methods" ] ~doc:"Comma-separated methods to run.")

let threshold_arg =
  Arg.(value & opt int 0 & info [ "threshold" ] ~doc:"Size target (0 = free).")

let quality_arg =
  Arg.(value & opt float 1.0 & info [ "quality" ] ~doc:"RUA quality factor.")

let run blif seed min_nodes methods threshold quality =
  let circuit =
    match blif with
    | Some path -> Blif.parse_file path
    | None -> Generate.random_netlist ~inputs:18 ~gates:120 ~outputs:6 ~seed
  in
  let methods =
    List.map
      (fun m ->
        match Approx.method_of_string m with
        | Some meth -> meth
        | None -> failwith ("unknown method " ^ m))
      methods
  in
  let entries = Pool.entries_of_circuit ~min_nodes circuit in
  Printf.printf "%s\npool: %s\n\n" (Circuit.stats circuit)
    (Pool.describe entries);
  let params = { Approx.default_params with threshold; quality } in
  List.iter
    (fun { Pool.man; f; label; nvars } ->
      Printf.printf "%s: |f| = %d, ||f|| = %.4g\n" label (Bdd.size f)
        (Bdd.count_minterms man f ~nvars);
      List.iter
        (fun meth ->
          let g = Approx.under man ~params meth f in
          Printf.printf
            "  %-4s |g| = %6d  ||g|| = %12.4g  density = %10.4g  safe: %b\n"
            (Approx.method_name meth) (Bdd.size g)
            (Bdd.count_minterms man g ~nvars)
            (Bdd.density man g ~nvars)
            (Bdd.density man g ~nvars >= Bdd.density man f ~nvars -. 1e-9))
        methods)
    entries

let cmd =
  let term =
    Term.(
      const run $ blif_arg $ seed_arg $ min_nodes_arg $ methods_arg
      $ threshold_arg $ quality_arg)
  in
  Cmd.v
    (Cmd.info "approx_main" ~doc:"BDD underapproximation methods (DAC'98)")
    term

let () = exit (Cmd.eval cmd)
