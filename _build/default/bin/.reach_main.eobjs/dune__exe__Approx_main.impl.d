bin/approx_main.ml: Approx Arg Bdd Blif Circuit Cmd Cmdliner Generate List Pool Printf Term
