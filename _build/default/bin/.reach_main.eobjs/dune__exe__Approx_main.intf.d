bin/approx_main.mli:
