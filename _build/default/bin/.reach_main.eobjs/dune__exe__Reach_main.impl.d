bin/reach_main.ml: Approx Arg Bfs Blif Circuit Cmd Cmdliner Compile Format Generate High_density List Printf Term Trans Traversal
