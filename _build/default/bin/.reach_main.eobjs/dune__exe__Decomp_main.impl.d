bin/decomp_main.ml: Arg Bdd Blif Circuit Cmd Cmdliner Decomp Decomp_points Generate List Mcmillan Pool Printf Term
