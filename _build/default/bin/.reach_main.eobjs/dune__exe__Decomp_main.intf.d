bin/decomp_main.mli:
