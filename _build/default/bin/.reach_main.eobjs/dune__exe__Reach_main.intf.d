bin/reach_main.mli:
