(* Kernel microbenchmarks: the perf trajectory of the BDD memory subsystem.

     dune exec bench/micro.exe                 -- full suite -> BENCH_kernel.json
     dune exec bench/micro.exe -- --smoke      -- seconds-long CI slice
     dune exec bench/micro.exe -- -o FILE      -- write the report elsewhere
     dune exec bench/micro.exe -- --validate FILE   -- schema-check a report
     dune exec bench/micro.exe -- --trace FILE      -- Perfetto span trace
     dune exec bench/micro.exe -- --metrics FILE    -- obs-metrics/v1 snapshot

   Three workloads exercise the unique table and the computed caches the way
   the DAC'98 algorithms do — connective-heavy construction (n-queens),
   image computation over a partitioned transition relation (BFS on the
   microsequencer), and repeated relational products (pairwise and_exists
   over a combinational cone pool) — plus two probe loops that measure the
   minor-heap allocation of a cache-hitting band and a unique-table-hitting
   mk, which is how the zero-allocation claim of DESIGN.md §Kernel is
   checked (and re-checked by `make bench-smoke` on every `make check`).

   The report is machine-readable JSON (schema "bdd-kernel-bench/v2", a
   superset of v1), one object per workload: wall time, nodes made,
   nodes/sec, cache hit rate, peak unique-table size, and OCaml GC counter
   deltas.  v2 adds a domain-scaling sweep ("par"): image-useq4 and
   relprod-pairs re-run on a shared manager at 1/2/4/8 worker domains,
   each row carrying its speedup over the 1-domain run and an [identical]
   bit asserting the parallel result's serialized fingerprint matches the
   sequential one.  "host_cpus" records what the host can actually run in
   parallel — on a 1-core container the sweep measures overhead, not
   scaling, and the report says so rather than hiding it.  Successive PRs
   compare their BENCH_kernel.json against the committed history to keep
   the kernel trajectory honest. *)

let schema_version = "bdd-kernel-bench/v2"

(* JSON emission/parsing and the wall+GC measurement scaffolding used to
   live here; both moved to lib/obs (Obs.Json, Obs.Timing) so the bench
   executables, Mt.Runner and the tracer share one implementation. *)
open Obs.Json

(* ------------------------------------------------------------------ *)
(* Measurement harness                                                 *)
(* ------------------------------------------------------------------ *)

type sample = {
  s_name : string;
  s_wall : float;
  s_nodes_made : int;
  s_peak_unique : int;
  s_unique_size : int;
  s_hits : int;
  s_misses : int;
  s_minor_words : float;
  s_promoted_words : float;
  s_major_words : float;
  s_minor_cols : int;
  s_major_cols : int;
  s_check : float; (* workload-specific sanity number (solutions, states) *)
}

let stat stats name = Option.value ~default:0 (List.assoc_opt name stats)

(* Run [work] against a fresh manager and capture wall time, manager
   counters and GC counter deltas.  Obs.Timing runs a full major
   collection up front, keeping the previous workload's garbage out of
   this one's numbers. *)
let measure name work =
  let (man, check), wall, gd =
    Obs.Timing.measure (fun () ->
        Obs.Trace.with_span ("bench:" ^ name) (fun () ->
            let man = Bdd.create () in
            if Obs.Kernel.observing () then Obs.Kernel.attach man;
            (man, work man)))
  in
  let st = Bdd.stats man in
  {
    s_name = name;
    s_wall = wall;
    s_nodes_made = stat st "nodes_made";
    s_peak_unique = stat st "peak_unique";
    s_unique_size = stat st "unique_size";
    s_hits = stat st "cache_hits";
    s_misses = stat st "cache_misses";
    s_minor_words = gd.Obs.Timing.minor_words;
    s_promoted_words = gd.Obs.Timing.promoted_words;
    s_major_words = gd.Obs.Timing.major_words;
    s_minor_cols = gd.Obs.Timing.minor_collections;
    s_major_cols = gd.Obs.Timing.major_collections;
    s_check = check;
  }

let json_of_sample s =
  let probes = s.s_hits + s.s_misses in
  Obj
    [
      ("name", Str s.s_name);
      ("wall_s", Num s.s_wall);
      ("nodes_made", num_int s.s_nodes_made);
      ( "nodes_per_sec",
        Num (float_of_int s.s_nodes_made /. Float.max 1e-9 s.s_wall) );
      ("cache_hits", num_int s.s_hits);
      ("cache_misses", num_int s.s_misses);
      ( "cache_hit_rate",
        Num (float_of_int s.s_hits /. float_of_int (max 1 probes)) );
      ("peak_unique", num_int s.s_peak_unique);
      ("unique_size", num_int s.s_unique_size);
      ("minor_words", Num s.s_minor_words);
      ("promoted_words", Num s.s_promoted_words);
      ("major_words", Num s.s_major_words);
      ("minor_collections", num_int s.s_minor_cols);
      ("major_collections", num_int s.s_major_cols);
      ("check", Num s.s_check);
    ]

(* ------------------------------------------------------------------ *)
(* Workload 1: n-queens construction (connective-heavy)                *)
(* ------------------------------------------------------------------ *)

(* The classic BDD formulation (cf. the BuDDy demo): one variable per
   square, at least one queen per row, and each queen forbids its row,
   column and both diagonals.  Returns the number of solutions (92 for
   n = 8, 4 for n = 6) as the sanity check. *)
let queens_bdd n man =
  let var i j = Bdd.ithvar man ((i * n) + j) in
  let b = ref (Bdd.tt man) in
  for i = 0 to n - 1 do
    let row = ref (Bdd.ff man) in
    for j = 0 to n - 1 do
      row := Bdd.bor man !row (var i j)
    done;
    b := Bdd.band man !b !row
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let a = ref (Bdd.tt man) in
      for l = 0 to n - 1 do
        if l <> j then a := Bdd.band man !a (Bdd.bnot man (var i l))
      done;
      for k = 0 to n - 1 do
        if k <> i then begin
          a := Bdd.band man !a (Bdd.bnot man (var k j));
          let d = j + k - i in
          if d >= 0 && d < n then a := Bdd.band man !a (Bdd.bnot man (var k d));
          let d = j + i - k in
          if d >= 0 && d < n then a := Bdd.band man !a (Bdd.bnot man (var k d))
        end
      done;
      b := Bdd.band man !b (Bdd.bimp man (var i j) !a)
    done
  done;
  !b

let queens n man = Bdd.count_minterms man (queens_bdd n man) ~nvars:(n * n)

(* --dd-mode: report the n-queens function's size in a compressed
   representation on stderr.  Informational only — the JSON schema does
   not change — but the conversion is still round-trip verified. *)
let dd_sizes spec =
  let modes =
    if spec = "all" then Dd.all_modes
    else
      match Dd.mode_of_string spec with
      | Some m -> [ m ]
      | None ->
          Printf.eprintf "--dd-mode: unknown mode %s\n" spec;
          exit 1
  in
  let n = 6 in
  let man = Bdd.create ~nvars:(n * n) () in
  let f = queens_bdd n man in
  let plain = Bdd.size f in
  List.iter
    (fun mode ->
      let dman = Dd.create ~nvars:(n * n) ~mode () in
      let u = Dd.of_bdd dman man f in
      if not (Bdd.equal (Dd.to_bdd dman man u) f) then begin
        Printf.eprintf "--dd-mode %s: round trip diverged\n" (Dd.mode_name mode);
        exit 1
      end;
      Printf.eprintf "  dd %-4s queens%d %6d nodes (plain bdd %d, %.2fx)\n%!"
        (Dd.mode_name mode) n (Dd.size u) plain
        (float_of_int plain /. float_of_int (max 1 (Dd.size u))))
    modes

(* ------------------------------------------------------------------ *)
(* Workload 2: image computation (BFS over a partitioned relation)     *)
(* ------------------------------------------------------------------ *)

let image_bfs ~addr_bits man =
  let circuit = Generate.microsequencer ~addr_bits ~stack_depth:2 in
  let compiled = Compile.compile ~man circuit in
  let trans = Trans.build compiled in
  let r = Bfs.run trans in
  r.Traversal.states

(* ------------------------------------------------------------------ *)
(* Workload 3: repeated relational products                            *)
(* ------------------------------------------------------------------ *)

(* All-pairs ∃vars. f_i ∧ f_j over the output cones of a structured random
   netlist: the and_exists recursion dominated by computed-cache traffic.
   The check is the total node count of the results. *)
let relprod ~inputs ~gates man =
  let circuit =
    Generate.random_netlist ~inputs ~gates ~outputs:6 ~seed:17
  in
  let compiled = Compile.compile ~man circuit in
  let fns = List.map snd compiled.Compile.output_fns in
  (* quantify the first half of the inputs out of every product *)
  let cube =
    Bdd.cube man
      (List.filteri (fun i _ -> i mod 2 = 0)
         (Array.to_list (Compile.input_var_array compiled)))
  in
  let total = ref 0 in
  List.iter
    (fun f ->
      List.iter
        (fun g -> total := !total + Bdd.size (Bdd.and_exists man ~vars:cube f g))
        fns)
    fns;
  float_of_int !total

(* ------------------------------------------------------------------ *)
(* Workload 4: domain-scaling sweep (the parallel kernel)              *)
(* ------------------------------------------------------------------ *)

(* Re-run the two image/relprod workloads on a shared manager with a
   Tpool of 1/2/4/8 workers.  Each row fingerprints its result (digest of
   the canonical serialization) so the report itself proves the parallel
   kernel computed bit-identical BDDs, not just similar counts. *)

let par_jobs = [ 1; 2; 4; 8 ]

type par_row = {
  p_workload : string;
  p_jobs : int;
  p_wall : float;
  p_nodes : int;
  p_check : float;
  p_fingerprint : string;
}

let fingerprint man f =
  Digest.to_hex (Digest.string (Bdd.serialized_to_string (Bdd.export man f)))

let par_image ?pool man =
  let circuit = Generate.microsequencer ~addr_bits:4 ~stack_depth:2 in
  let compiled = Compile.compile ~man circuit in
  let trans = Trans.build compiled in
  let r = Bfs.run ?pool trans in
  (r.Traversal.states, fingerprint man r.Traversal.reached)

let par_relprod ?pool man =
  let exist_and man ~vars f g =
    match pool with
    | Some p -> Bdd.par_exist_and p man ~vars f g
    | None -> Bdd.and_exists man ~vars f g
  in
  let circuit =
    Generate.random_netlist ~inputs:18 ~gates:140 ~outputs:6 ~seed:17
  in
  let compiled = Compile.compile ~man circuit in
  let fns = List.map snd compiled.Compile.output_fns in
  let cube =
    Bdd.cube man
      (List.filteri (fun i _ -> i mod 2 = 0)
         (Array.to_list (Compile.input_var_array compiled)))
  in
  let total = ref 0 and digests = Buffer.create 256 in
  List.iter
    (fun f ->
      List.iter
        (fun g ->
          let r = exist_and man ~vars:cube f g in
          total := !total + Bdd.size r;
          Buffer.add_string digests (fingerprint man r))
        fns)
    fns;
  (float_of_int !total, Digest.to_hex (Digest.string (Buffer.contents digests)))

let par_measure workload jobs work =
  let pool = if jobs > 1 then Some (Tpool.create ~workers:jobs) else None in
  Fun.protect ~finally:(fun () -> Option.iter Tpool.shutdown pool)
  @@ fun () ->
  let (man, check, fp), wall, _gd =
    Obs.Timing.measure (fun () ->
        Obs.Trace.with_span
          (Printf.sprintf "bench:par:%s@%d" workload jobs)
          (fun () ->
            let man = Bdd.create ~shared:(jobs > 1) () in
            if Obs.Kernel.observing () then Obs.Kernel.attach man;
            let check, fp = work ?pool man in
            (man, check, fp)))
  in
  {
    p_workload = workload;
    p_jobs = jobs;
    p_wall = wall;
    p_nodes = stat (Bdd.stats man) "nodes_made";
    p_check = check;
    p_fingerprint = fp;
  }

let json_of_par_row ~baseline r =
  Obj
    [
      ("workload", Str r.p_workload);
      ("jobs", num_int r.p_jobs);
      ("wall_s", Num r.p_wall);
      ("nodes_made", num_int r.p_nodes);
      ( "nodes_per_sec",
        Num (float_of_int r.p_nodes /. Float.max 1e-9 r.p_wall) );
      ("speedup", Num (baseline.p_wall /. Float.max 1e-9 r.p_wall));
      ( "identical",
        num_int
          (if
             r.p_fingerprint = baseline.p_fingerprint
             && r.p_check = baseline.p_check
           then 1
           else 0) );
      ("check", Num r.p_check);
    ]

let par_sweep () =
  let workloads =
    [ ("image-useq4", par_image); ("relprod-pairs", par_relprod) ]
  in
  List.concat_map
    (fun (name, work) ->
      let rows =
        List.map
          (fun jobs ->
            Printf.eprintf "running par:%s @ %d domain(s)...\n%!" name jobs;
            par_measure name jobs work)
          par_jobs
      in
      let baseline = List.hd rows in
      List.iter
        (fun r ->
          Printf.eprintf
            "  par %-14s jobs=%d %7.3fs %8.0f nodes/s  speedup %.2fx  %s\n%!"
            r.p_workload r.p_jobs r.p_wall
            (float_of_int r.p_nodes /. Float.max 1e-9 r.p_wall)
            (baseline.p_wall /. Float.max 1e-9 r.p_wall)
            (if r.p_fingerprint = baseline.p_fingerprint then "identical"
             else "MISMATCH"))
        rows;
      List.map (json_of_par_row ~baseline) rows)
    workloads

(* ------------------------------------------------------------------ *)
(* Probe loops: allocation on the hit path                             *)
(* ------------------------------------------------------------------ *)

(* Repeat an operation whose result is already cached (computed cache for
   band, unique table for mk via ithvar) and report minor-heap words per
   probe.  The loop bodies allocate nothing themselves, so this is the
   per-probe allocation of the kernel: tuple-keyed hash tables pay a key
   box plus an option per probe, the packed tables pay zero. *)
let probe name ops warm op =
  warm ();
  let (), wall, gd =
    Obs.Timing.measure (fun () ->
        for _ = 1 to ops do
          op ()
        done)
  in
  let words = gd.Obs.Timing.minor_words in
  Obj
    [
      ("name", Str name);
      ("ops", num_int ops);
      ("wall_s", Num wall);
      ("minor_words_per_op", Num (words /. float_of_int ops));
      ("ns_per_op", Num (wall *. 1e9 /. float_of_int ops));
    ]

let probes ~ops =
  let man = Bdd.create ~nvars:24 () in
  let f =
    Bdd.conj man (List.init 12 (fun i -> Bdd.ithvar man (2 * i)))
  and g =
    Bdd.disj man (List.init 12 (fun i -> Bdd.ithvar man ((2 * i) + 1)))
  in
  [
    probe "hit_band" ops
      (fun () -> ignore (Bdd.band man f g))
      (fun () -> ignore (Bdd.band man f g));
    probe "hit_mk" ops
      (fun () -> ignore (Bdd.ithvar man 7))
      (fun () -> ignore (Bdd.ithvar man 7));
  ]

(* ------------------------------------------------------------------ *)
(* Report assembly and validation                                      *)
(* ------------------------------------------------------------------ *)

let report ~smoke =
  let benches =
    if smoke then
      [
        ("queens6", queens 6);
        ("image-useq3", image_bfs ~addr_bits:3);
        ("relprod-pairs", relprod ~inputs:14 ~gates:70);
      ]
    else
      [
        ("queens8", queens 8);
        ("image-useq4", image_bfs ~addr_bits:4);
        ("relprod-pairs", relprod ~inputs:18 ~gates:140);
      ]
  in
  let samples =
    List.map
      (fun (name, work) ->
        Printf.eprintf "running %s...\n%!" name;
        let s = measure name work in
        Printf.eprintf
          "  %-14s %7.3fs  %9d nodes  %8.0f nodes/s  hit rate %.3f\n%!"
          s.s_name s.s_wall s.s_nodes_made
          (float_of_int s.s_nodes_made /. Float.max 1e-9 s.s_wall)
          (float_of_int s.s_hits
          /. float_of_int (max 1 (s.s_hits + s.s_misses)));
        s)
      benches
  in
  let probe_ops = if smoke then 200_000 else 2_000_000 in
  let probe_objs = probes ~ops:probe_ops in
  List.iter
    (fun p ->
      match p with
      | Obj kvs -> (
          match (List.assoc "name" kvs, List.assoc "minor_words_per_op" kvs) with
          | Str n, Num w ->
              Printf.eprintf "  probe %-10s %.3f minor words/op\n%!" n w
          | _ -> ())
      | _ -> ())
    probe_objs;
  let par_rows = par_sweep () in
  let total_wall = List.fold_left (fun a s -> a +. s.s_wall) 0. samples in
  let total_nodes =
    List.fold_left (fun a s -> a + s.s_nodes_made) 0 samples
  in
  Obj
    [
      ("schema", Str schema_version);
      ("mode", Str (if smoke then "smoke" else "full"));
      ("ocaml", Str Sys.ocaml_version);
      ("word_size", num_int Sys.word_size);
      (* what the sweep's speedups are measured against: on a 1-core host
         they quantify parallel overhead, not scaling *)
      ("host_cpus", num_int (Domain.recommended_domain_count ()));
      (* 0 on platforms without /proc/self/status *)
      ("peak_rss_kb", num_int (Obs.Timing.peak_rss_kb ()));
      ("benchmarks", Arr (List.map json_of_sample samples));
      ("par", Arr par_rows);
      ("probes", Arr probe_objs);
      ( "totals",
        Obj
          [
            ("wall_s", Num total_wall);
            ("nodes_made", num_int total_nodes);
            ( "nodes_per_sec",
              Num (float_of_int total_nodes /. Float.max 1e-9 total_wall) );
          ] );
    ]

(* Schema check: the structure `make bench-smoke` asserts after every run,
   so a refactor that silently breaks the report shape fails CI. *)
let validate path =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "%s: invalid: %s\n" path msg;
        exit 1)
      fmt
  in
  let j =
    try Obs.Json.read_file path with Obs.Json.Parse_error m -> fail "%s" m
  in
  let obj = function Obj kvs -> kvs | _ -> fail "expected an object" in
  let field kvs k =
    match List.assoc_opt k kvs with
    | Some v -> v
    | None -> fail "missing field %S" k
  in
  let number kvs k =
    match field kvs k with Num f -> f | _ -> fail "field %S not a number" k
  in
  let top = obj j in
  (match field top "schema" with
  | Str s when s = schema_version -> ()
  | Str s -> fail "schema %S, want %S" s schema_version
  | _ -> fail "schema is not a string");
  (match field top "mode" with
  | Str ("full" | "smoke") -> ()
  | _ -> fail "mode must be \"full\" or \"smoke\"");
  (match List.assoc_opt "peak_rss_kb" top with
  (* optional so reports written before the field existed still validate *)
  | None -> ()
  | Some (Num f) when f >= 0.0 -> ()
  | Some _ -> fail "peak_rss_kb must be a non-negative number");
  let benches =
    match field top "benchmarks" with
    | Arr (_ :: _ as xs) -> xs
    | Arr [] -> fail "benchmarks is empty"
    | _ -> fail "benchmarks is not an array"
  in
  List.iter
    (fun b ->
      let kvs = obj b in
      (match field kvs "name" with
      | Str _ -> ()
      | _ -> fail "benchmark name is not a string");
      List.iter
        (fun k -> ignore (number kvs k))
        [
          "wall_s"; "nodes_made"; "nodes_per_sec"; "cache_hits";
          "cache_misses"; "cache_hit_rate"; "peak_unique"; "minor_words";
          "minor_collections";
        ])
    benches;
  (match field top "host_cpus" with
  | Num f when f >= 1.0 -> ()
  | _ -> fail "host_cpus must be a number >= 1");
  let par =
    match field top "par" with
    | Arr (_ :: _ as xs) -> xs
    | Arr [] -> fail "par is empty"
    | _ -> fail "par is not an array"
  in
  List.iter
    (fun row ->
      let kvs = obj row in
      let name =
        match field kvs "workload" with
        | Str s -> s
        | _ -> fail "par workload is not a string"
      in
      List.iter
        (fun k -> ignore (number kvs k))
        [ "jobs"; "wall_s"; "nodes_made"; "nodes_per_sec"; "speedup" ];
      (* the sweep's whole point: every parallel run reproduced the
         1-domain result bit for bit *)
      if number kvs "identical" <> 1.0 then
        fail "par row %s@%.0f is not identical to its 1-domain baseline"
          name (number kvs "jobs"))
    par;
  (* both sweep workloads must cover the 1-domain baseline *)
  List.iter
    (fun w ->
      if
        not
          (List.exists
             (fun row ->
               let kvs = obj row in
               field kvs "workload" = Str w && number kvs "jobs" = 1.0)
             par)
      then fail "par sweep is missing the %s jobs=1 baseline" w)
    [ "image-useq4"; "relprod-pairs" ];
  let probes =
    match field top "probes" with
    | Arr (_ :: _ as xs) -> xs
    | _ -> fail "probes is missing or empty"
  in
  List.iter
    (fun p ->
      let kvs = obj p in
      List.iter
        (fun k -> ignore (number kvs k))
        [ "ops"; "minor_words_per_op"; "ns_per_op" ])
    probes;
  let totals = obj (field top "totals") in
  List.iter
    (fun k -> ignore (number totals k))
    [ "wall_s"; "nodes_made"; "nodes_per_sec" ];
  Printf.printf "%s: valid %s report, %d benchmarks, %.0f nodes/sec overall\n"
    path schema_version (List.length benches)
    (number totals "nodes_per_sec")

(* ------------------------------------------------------------------ *)

let () =
  let smoke = ref false
  and out = ref "BENCH_kernel.json"
  and trace = ref None
  and metrics = ref None
  and dd_mode = ref None
  and to_validate = ref [] in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "-o" :: path :: rest ->
        out := path;
        parse rest
    | "--trace" :: path :: rest ->
        trace := Some path;
        parse rest
    | "--metrics" :: path :: rest ->
        metrics := Some path;
        parse rest
    | "--validate" :: path :: rest ->
        to_validate := path :: !to_validate;
        parse rest
    | "--dd-mode" :: spec :: rest ->
        dd_mode := Some spec;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "usage: micro.exe [--smoke] [-o FILE] [--trace FILE] [--metrics \
           FILE] [--validate FILE] [--dd-mode MODE]\n\
           unknown argument %s\n"
          arg;
        exit 1
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !to_validate with
  | _ :: _ as paths -> List.iter validate paths
  | [] ->
      Option.iter (fun path -> Obs.Trace.start ~out:path ()) !trace;
      if !metrics <> None then Obs.Metrics.set_recording true;
      let j = report ~smoke:!smoke in
      Obs.Json.write_file !out j;
      Obs.Trace.stop ();
      Option.iter
        (fun path ->
          Obs.Metrics.write Obs.Metrics.default path;
          Printf.eprintf "metrics -> %s\n%!" path)
        !metrics;
      Option.iter (fun path -> Printf.eprintf "trace -> %s\n%!" path) !trace;
      Option.iter dd_sizes !dd_mode;
      Printf.printf "wrote %s\n" !out
