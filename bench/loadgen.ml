(* Load generator for the BDD service: closed-loop benchmark or
   open-loop soak.

     loadgen.exe (--socket PATH | --port N)
                 [--connections N] [--requests M] [--seed S]
                 [--smoke]                (4 connections x 250 requests)
                 [--expect-faults]        (chaos run: Error replies are fine)
                 [--soak SECS]            (open-loop soak instead of --requests)
                 [--arrival-rate RPS]     (total scheduled arrivals/s, soak)
                 [--churn N]              (drop+reconnect every N requests)
                 [--deadline-ms N]        (per-request deadline metadata)
                 [--slo-p99-ms F]         (assert p99 latency, soak)
                 [--pipeline-depth N]     (batch N requests per frame)
                 [--faults SPEC]          (arm client-side wire faults)
                 [-o FILE]                (write the bdd-serve-bench/v1 report)
     loadgen.exe --validate FILE          (just check a report and exit)

   Each connection is one thread, one server session, and one *local
   oracle*: a private Bdd.man plus a mirror table mapping every server
   handle to the BDD the session ought to hold.  Every reply is checked
   semantically against the oracle — Count against count_minterms, Fetch
   against Bdd.equal after import, Sat cubes against leq, Degraded
   certificates against the subset property (fetch the server's BDD and
   require it below the exact local answer).  Size comparisons are
   deliberately never used: a Compile can grow the server session's
   variable order differently from the mirror's, and only semantic checks
   survive that.

   --pipeline-depth N (closed loop only) packs N requests per batch
   frame (Serve.Proto.encode_batch): the server executes them in order
   on the session's worker and streams the replies back, so the oracle
   discipline survives — every check is built when the batch is, against
   the mirror state the server will provably be in when the request
   runs.  A preflight first replays a fixed request sequence both ways
   and asserts the pipelined reply frames are byte-identical to the
   unpipelined ones.  When the server runs an arena (--arena), the
   report also records the arena share ratio read from its counters.

   Soak mode drives the retrying client (Serve.Client.connect_retrying)
   against a durable keyed session per connection: arrivals are
   scheduled open-loop at --arrival-rate (a slow server makes requests
   queue, not the generator pause), --churn forces periodic reconnects
   that must resume the same session, --faults mangles this side of the
   wire deterministically, and the report gains a "soak" section with
   the SLO verdict.

   Exit status: 1 if any reply contradicted the oracle (always), if
   Error replies arrived without --expect-faults, or if a soak blew its
   p99 SLO or lost the server. *)

let nvars = 12

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "loadgen: %s\n" msg;
      exit 2)
    fmt

let usage () =
  prerr_endline
    "usage: loadgen (--socket PATH | --port N) [--connections N]\n\
    \       [--requests M] [--seed S] [--smoke] [--expect-faults]\n\
    \       [--soak SECS] [--arrival-rate RPS] [--churn N]\n\
    \       [--deadline-ms N] [--slo-p99-ms F] [--pipeline-depth N]\n\
    \       [--faults SPEC] [-o FILE]\n\
    \       | loadgen --validate FILE";
  exit 2

(* --- per-connection accounting ---------------------------------------- *)

type stats = {
  mutable completed : int;  (* request/reply cycles that were not rejected *)
  mutable rejected : int;
  mutable degraded : int;
  mutable errors : int;
  mutable wrong : int;
  mutable churns : int;  (* deliberate reconnects (soak) *)
  mutable retries : int;  (* client transport retries (soak) *)
  mutable reconnects : int;  (* client re-dials (soak) *)
  mutable latencies : float list;  (* microseconds, newest first *)
  mutable notes : string list;  (* first few oracle contradictions *)
}

let new_stats () =
  {
    completed = 0;
    rejected = 0;
    degraded = 0;
    errors = 0;
    wrong = 0;
    churns = 0;
    retries = 0;
    reconnects = 0;
    latencies = [];
    notes = [];
  }

let wrong st fmt =
  Printf.ksprintf
    (fun msg ->
      st.wrong <- st.wrong + 1;
      if List.length st.notes < 5 then st.notes <- msg :: st.notes)
    fmt

(* --- one connection ---------------------------------------------------- *)

(* A tiny sequential model for the low-rate Compile/Reach requests; a
   4-bit counter reaches exactly 16 states, which doubles as an oracle. *)
let bench_blif = lazy (Blif.to_string (Generate.counter ~bits:4))

(* The client context a connection drives: the plain blocking client for
   closed-loop benchmarks, or the retrying client (idempotency tokens,
   deadline metadata, reconnect-with-backoff) for soaks.  Exhausted
   retries surface as a synthetic Error reply so the oracle loop keeps
   its shape. *)
type ctx = { cl : Serve.Client.t; idem : bool; deadline_ms : int }

let timed st c req =
  let t0 = Obs.Timing.wall () in
  let reply =
    if c.idem then (
      try Serve.Client.call_idem ~deadline_ms:c.deadline_ms c.cl req
      with Failure m -> Serve.Proto.Error ("client: " ^ m))
    else Serve.Client.call c.cl req
  in
  st.latencies <- ((Obs.Timing.wall () -. t0) *. 1e6) :: st.latencies;
  (match reply with
  | Serve.Proto.Overloaded -> st.rejected <- st.rejected + 1
  | _ -> st.completed <- st.completed + 1);
  (match reply with
  | Serve.Proto.Error _ -> st.errors <- st.errors + 1
  | Serve.Proto.Handle { cert = Serve.Proto.Degraded _; _ }
  | Serve.Proto.Reach_done { cert = Serve.Proto.Degraded _; _ } ->
      st.degraded <- st.degraded + 1
  | _ -> ());
  reply

(* Fetch a server handle and import it into the oracle manager. *)
let fetch_local st c man handle =
  match timed st c (Serve.Proto.Fetch { handle }) with
  | Serve.Proto.Bdd_payload { bdd } -> (
      match Bdd.import man (Bdd.serialized_of_string bdd) with
      | f -> Some f
      | exception Bdd.Corrupt m ->
          wrong st "fetch %d returned a corrupt payload: %s" handle m;
          None)
  | Serve.Proto.Error _ | Serve.Proto.Overloaded -> None
  | r ->
      wrong st "fetch %d: unexpected reply %s" handle
        (Format.asprintf "%a" Serve.Proto.pp_reply r);
      None

let cube_of_assignment man asg =
  List.fold_left
    (fun acc (v, phase) ->
      Bdd.band man acc (if phase then Bdd.ithvar man v else Bdd.nithvar man v))
    (Bdd.tt man) asg

(* How a connection paces itself and when it stops. *)
type mode =
  | Closed of int  (* this many back-to-back requests *)
  | Soak of { until : float; interval : float; churn_every : int }

let connection ~seed ~mode ~pipeline ~deadline_ms ~bind i st =
  let rng = Random.State.make [| 0x5e57e; seed; i |] in
  let man = Bdd.create () in
  (* materialize the oracle's variable universe up front: cube/quantify
     reject indices the manager has not seen yet *)
  for v = 0 to nvars - 1 do
    ignore (Bdd.ithvar man v)
  done;
  let mirror : (int, Bdd.t) Hashtbl.t = Hashtbl.create 64 in
  let c =
    match mode with
    | Closed _ when deadline_ms = 0 ->
        { cl = Serve.Client.connect bind; idem = false; deadline_ms = 0 }
    | Closed _ ->
        { cl = Serve.Client.connect bind; idem = true; deadline_ms }
    | Soak _ ->
        (* a durable keyed session: churned and quarantine-killed
           connections re-attach and find their handles again, so the
           mirror stays the oracle across reconnects *)
        {
          cl =
            Serve.Client.connect_retrying ~io_timeout:10.0
              ~key:(Printf.sprintf "soak-%d-%d" seed i)
              ~seed:(seed + i)
              ~chaos_stream:(0x11e7 + i) bind;
          idem = true;
          deadline_ms;
        }
  in
  let compiled = ref false in
  let pick_handle () =
    (* a uniformly random mirrored handle, or None when the table is empty *)
    let n = Hashtbl.length mirror in
    if n = 0 then None
    else begin
      let k = Random.State.int rng n in
      let i = ref 0 and found = ref None in
      Hashtbl.iter
        (fun id f ->
          if !i = k then found := Some (id, f);
          incr i)
        mirror;
      !found
    end
  in
  let do_lit () =
    let var = Random.State.int rng nvars in
    let phase = Random.State.bool rng in
    match timed st c (Serve.Proto.Lit { var; phase }) with
    | Serve.Proto.Handle { id; cert = Serve.Proto.Exact; _ } ->
        Hashtbl.replace mirror id
          (if phase then Bdd.ithvar man var else Bdd.nithvar man var)
    | Serve.Proto.Handle { cert = Serve.Proto.Degraded _; _ } ->
        wrong st "Lit came back degraded"
    | Serve.Proto.Error _ | Serve.Proto.Overloaded -> ()
    | r ->
        wrong st "lit: unexpected reply %s"
          (Format.asprintf "%a" Serve.Proto.pp_reply r)
  in
  let resync_degraded what id exact =
    (* a Degraded handle must be a subset of the exact answer; adopt the
       server's BDD as the mirror so later checks stay aligned *)
    match fetch_local st c man id with
    | None -> Hashtbl.remove mirror id
    | Some got ->
        if not (Bdd.leq man got exact) then
          wrong st "%s: degraded result is not below the exact answer" what;
        Hashtbl.replace mirror id got
  in
  let do_apply () =
    match (pick_handle (), pick_handle (), pick_handle ()) with
    | Some (a, fa), Some (b, fb), Some (c3, fc) -> (
        let op, exact =
          match Random.State.int rng 7 with
          | 0 -> (Serve.Proto.Not a, Bdd.bnot man fa)
          | 1 -> (Serve.Proto.And (a, b), Bdd.band man fa fb)
          | 2 -> (Serve.Proto.Or (a, b), Bdd.bor man fa fb)
          | 3 -> (Serve.Proto.Xor (a, b), Bdd.bxor man fa fb)
          | 4 -> (Serve.Proto.Ite (a, b, c3), Bdd.ite man fa fb fc)
          | 5 ->
              let vs =
                List.init (1 + Random.State.int rng 3) (fun _ ->
                    Random.State.int rng nvars)
              in
              ( Serve.Proto.Exists (vs, a),
                Bdd.exists man ~vars:(Bdd.cube man vs) fa )
          | _ ->
              let vs =
                List.init (1 + Random.State.int rng 3) (fun _ ->
                    Random.State.int rng nvars)
              in
              ( Serve.Proto.Forall (vs, a),
                Bdd.forall man ~vars:(Bdd.cube man vs) fa )
        in
        match timed st c (Serve.Proto.Apply op) with
        | Serve.Proto.Handle { id; cert = Serve.Proto.Exact; _ } ->
            Hashtbl.replace mirror id exact
        | Serve.Proto.Handle { id; cert = Serve.Proto.Degraded _; _ } ->
            resync_degraded "apply" id exact
        | Serve.Proto.Error _ | Serve.Proto.Overloaded -> ()
        | r ->
            wrong st "apply: unexpected reply %s"
              (Format.asprintf "%a" Serve.Proto.pp_reply r))
    | _ -> do_lit ()
  in
  let do_count () =
    match pick_handle () with
    | None -> do_lit ()
    | Some (id, f) -> (
        match timed st c (Serve.Proto.Count { handle = id; nvars }) with
        | Serve.Proto.Count_is n ->
            let want = Bdd.count_minterms man f ~nvars in
            if Float.abs (n -. want) > 1e-6 *. Float.max 1.0 want then
              wrong st "count %d: server says %.0f, oracle says %.0f" id n want
        | Serve.Proto.Error _ | Serve.Proto.Overloaded -> ()
        | r ->
            wrong st "count: unexpected reply %s"
              (Format.asprintf "%a" Serve.Proto.pp_reply r))
  in
  let do_fetch () =
    match pick_handle () with
    | None -> do_lit ()
    | Some (id, f) -> (
        match fetch_local st c man id with
        | Some got when not (Bdd.equal got f) ->
            wrong st "fetch %d: server BDD differs from the oracle's" id
        | _ -> ())
  in
  let do_sat () =
    match pick_handle () with
    | None -> do_lit ()
    | Some (id, f) -> (
        match timed st c (Serve.Proto.Sat { handle = id }) with
        | Serve.Proto.Sat_is (Some asg) ->
            if not (Bdd.leq man (cube_of_assignment man asg) f) then
              wrong st "sat %d: assignment does not satisfy the oracle BDD" id
        | Serve.Proto.Sat_is None ->
            if not (Bdd.equal f (Bdd.ff man)) then
              wrong st "sat %d: server says UNSAT, oracle disagrees" id
        | Serve.Proto.Error _ | Serve.Proto.Overloaded -> ()
        | r ->
            wrong st "sat: unexpected reply %s"
              (Format.asprintf "%a" Serve.Proto.pp_reply r))
  in
  let do_free () =
    match pick_handle () with
    | None -> do_lit ()
    | Some (id, _) -> (
        match timed st c (Serve.Proto.Free { handles = [ id ] }) with
        | Serve.Proto.Freed n ->
            if n <> 1 then wrong st "free %d: freed %d handles, wanted 1" id n;
            Hashtbl.remove mirror id
        | Serve.Proto.Error _ | Serve.Proto.Overloaded -> ()
        | r ->
            wrong st "free: unexpected reply %s"
              (Format.asprintf "%a" Serve.Proto.pp_reply r))
  in
  let do_ping () =
    match timed st c Serve.Proto.Ping with
    | Serve.Proto.Pong -> ()
    | Serve.Proto.Overloaded -> ()
    | r ->
        wrong st "ping: unexpected reply %s"
          (Format.asprintf "%a" Serve.Proto.pp_reply r)
  in
  let do_stats () =
    match timed st c Serve.Proto.Stats with
    | Serve.Proto.Stats_are kvs ->
        if not (List.mem_assoc "serve.session.handles" kvs) then
          wrong st "stats: missing serve.session.handles"
    | Serve.Proto.Error _ | Serve.Proto.Overloaded -> ()
    | r ->
        wrong st "stats: unexpected reply %s"
          (Format.asprintf "%a" Serve.Proto.pp_reply r)
  in
  let do_approx () =
    match pick_handle () with
    | None -> do_lit ()
    | Some (id, f) -> (
        let meth =
          match Random.State.int rng 4 with
          | 0 -> Approx.HB
          | 1 -> Approx.SP
          | 2 -> Approx.UA
          | _ -> Approx.RUA
        in
        let threshold =
          if Random.State.bool rng then 0 else 4 + Random.State.int rng 60
        in
        match timed st c (Serve.Proto.Approx { meth; threshold; handle = id })
        with
        | Serve.Proto.Handle { id = aid; _ } -> (
            (* whatever the certificate, an under-approximation must sit
               below the function it approximates *)
            match fetch_local st c man aid with
            | Some got ->
                if not (Bdd.leq man got f) then
                  wrong st "approx %d: result is not an under-approximation" id;
                Hashtbl.replace mirror aid got
            | None -> ())
        | Serve.Proto.Error _ | Serve.Proto.Overloaded -> ()
        | r ->
            wrong st "approx: unexpected reply %s"
              (Format.asprintf "%a" Serve.Proto.pp_reply r))
  in
  let do_decomp () =
    match pick_handle () with
    | Some (id, f) when not (Bdd.is_const f) -> (
        let disjunctive = Random.State.bool rng in
        match timed st c (Serve.Proto.Decomp { handle = id; disjunctive }) with
        | Serve.Proto.Pair { g; h; _ } -> (
            match (fetch_local st c man g, fetch_local st c man h) with
            | Some fg, Some fh ->
                let back =
                  if disjunctive then Bdd.bor man fg fh else Bdd.band man fg fh
                in
                if not (Bdd.equal back f) then
                  wrong st "decomp %d: factors do not recompose" id;
                Hashtbl.replace mirror g fg;
                Hashtbl.replace mirror h fh
            | _ -> ())
        | Serve.Proto.Error _ | Serve.Proto.Overloaded -> ()
        | r ->
            wrong st "decomp: unexpected reply %s"
              (Format.asprintf "%a" Serve.Proto.pp_reply r))
    | _ -> do_lit ()
  in
  let do_compile () =
    match
      timed st c
        (Serve.Proto.Compile { name = "bench"; blif = Lazy.force bench_blif })
    with
    | Serve.Proto.Handles hs ->
        if hs = [] then wrong st "compile: no output handles";
        compiled := true
        (* server-only handles: never mirrored, never used by apply *)
    | Serve.Proto.Error _ | Serve.Proto.Overloaded -> ()
    | r ->
        wrong st "compile: unexpected reply %s"
          (Format.asprintf "%a" Serve.Proto.pp_reply r)
  in
  let do_reach () =
    if not !compiled then do_compile ()
    else
      match timed st c (Serve.Proto.Reach { model = "bench"; max_iter = 0 })
      with
      | Serve.Proto.Reach_done { states; cert = Serve.Proto.Exact; _ } ->
          if states <> 16.0 then
            wrong st "reach: 4-bit counter reached %.0f states, wanted 16"
              states
      | Serve.Proto.Reach_done _ (* degraded: partial state count is fine *)
      | Serve.Proto.Error _ | Serve.Proto.Overloaded ->
          ()
      | r ->
          wrong st "reach: unexpected reply %s"
            (Format.asprintf "%a" Serve.Proto.pp_reply r)
  in
  (* weighted mix: mostly structure-building and checking, a trickle of
     expensive compile/reach *)
  let one_request () =
    match Random.State.int rng 64 with
    | n when n < 14 -> do_lit ()
    | n when n < 32 -> do_apply ()
    | n when n < 40 -> do_count ()
    | n when n < 46 -> do_fetch ()
    | n when n < 50 -> do_sat ()
    | n when n < 54 -> do_free ()
    | n when n < 56 -> do_ping ()
    | n when n < 58 -> do_stats ()
    | n when n < 61 -> do_approx ()
    | n when n < 63 -> do_decomp ()
    | 63 when not !compiled -> do_compile ()
    | _ -> do_reach ()
  in
  (* --- pipelined closed loop ---------------------------------------- *)
  (* Checks are built when the batch is, against the mirror state the
     server will provably be in when each request executes: the whole
     batch runs in order on the session's worker, handle arguments only
     name handles mirrored before the batch was built, and nothing in
     the pipelined mix mutates or frees an existing handle. *)
  let account lat reply =
    st.latencies <- lat :: st.latencies;
    (match reply with
    | Serve.Proto.Overloaded -> st.rejected <- st.rejected + 1
    | _ -> st.completed <- st.completed + 1);
    match reply with
    | Serve.Proto.Error _ -> st.errors <- st.errors + 1
    | Serve.Proto.Handle { cert = Serve.Proto.Degraded _; _ }
    | Serve.Proto.Reach_done { cert = Serve.Proto.Degraded _; _ } ->
        st.degraded <- st.degraded + 1
    | _ -> ()
  in
  let pp_r = Format.asprintf "%a" Serve.Proto.pp_reply in
  let pipelined_item () =
    let lit_item () =
      let var = Random.State.int rng nvars in
      let phase = Random.State.bool rng in
      ( Serve.Proto.Lit { var; phase },
        function
        | Serve.Proto.Handle { id; cert = Serve.Proto.Exact; _ } ->
            Hashtbl.replace mirror id
              (if phase then Bdd.ithvar man var else Bdd.nithvar man var)
        | Serve.Proto.Error _ | Serve.Proto.Overloaded -> ()
        | r -> wrong st "pipelined lit: unexpected reply %s" (pp_r r) )
    in
    match Random.State.int rng 16 with
    | n when n < 5 -> lit_item ()
    | n when n < 10 -> (
        match (pick_handle (), pick_handle ()) with
        | Some (a, fa), Some (b, fb) ->
            let op, exact =
              match Random.State.int rng 4 with
              | 0 -> (Serve.Proto.Not a, Bdd.bnot man fa)
              | 1 -> (Serve.Proto.And (a, b), Bdd.band man fa fb)
              | 2 -> (Serve.Proto.Or (a, b), Bdd.bor man fa fb)
              | _ -> (Serve.Proto.Xor (a, b), Bdd.bxor man fa fb)
            in
            ( Serve.Proto.Apply op,
              function
              | Serve.Proto.Handle { id; cert = Serve.Proto.Exact; _ } ->
                  Hashtbl.replace mirror id exact
              | Serve.Proto.Handle { cert = Serve.Proto.Degraded _; _ } ->
                  (* no synchronous resync mid-batch: forget the id *)
                  ()
              | Serve.Proto.Error _ | Serve.Proto.Overloaded -> ()
              | r -> wrong st "pipelined apply: unexpected reply %s" (pp_r r) )
        | _ -> lit_item ())
    | n when n < 12 -> (
        match pick_handle () with
        | Some (id, f) ->
            ( Serve.Proto.Count { handle = id; nvars },
              function
              | Serve.Proto.Count_is got ->
                  let want = Bdd.count_minterms man f ~nvars in
                  if Float.abs (got -. want) > 1e-6 *. Float.max 1.0 want then
                    wrong st "pipelined count %d: server says %.0f, oracle %.0f"
                      id got want
              | Serve.Proto.Error _ | Serve.Proto.Overloaded -> ()
              | r -> wrong st "pipelined count: unexpected reply %s" (pp_r r) )
        | None -> lit_item ())
    | n when n < 14 -> (
        match pick_handle () with
        | Some (id, f) ->
            ( Serve.Proto.Fetch { handle = id },
              function
              | Serve.Proto.Bdd_payload { bdd } -> (
                  match Bdd.import man (Bdd.serialized_of_string bdd) with
                  | got ->
                      if not (Bdd.equal got f) then
                        wrong st
                          "pipelined fetch %d: server BDD differs from oracle"
                          id
                  | exception Bdd.Corrupt m ->
                      wrong st "pipelined fetch %d: corrupt payload: %s" id m)
              | Serve.Proto.Error _ | Serve.Proto.Overloaded -> ()
              | r -> wrong st "pipelined fetch: unexpected reply %s" (pp_r r) )
        | None -> lit_item ())
    | 14 ->
        ( Serve.Proto.Ping,
          function
          | Serve.Proto.Pong | Serve.Proto.Overloaded -> ()
          | r -> wrong st "pipelined ping: unexpected reply %s" (pp_r r) )
    | 15 when not !compiled ->
        (* once per connection: against an arena server, every connection
           after the first hits the catalog — the share ratio the report
           records *)
        compiled := true;
        ( Serve.Proto.Compile { name = "bench"; blif = Lazy.force bench_blif },
          function
          | Serve.Proto.Handles hs ->
              if hs = [] then wrong st "pipelined compile: no output handles"
          | Serve.Proto.Error _ | Serve.Proto.Overloaded -> ()
          | r -> wrong st "pipelined compile: unexpected reply %s" (pp_r r) )
    | _ ->
        ( Serve.Proto.Stats,
          function
          | Serve.Proto.Stats_are _ | Serve.Proto.Error _
          | Serve.Proto.Overloaded ->
              ()
          | r -> wrong st "pipelined stats: unexpected reply %s" (pp_r r) )
  in
  Fun.protect
    ~finally:(fun () ->
      st.retries <- Serve.Client.retries c.cl;
      st.reconnects <- Serve.Client.reconnects c.cl;
      Serve.Client.close c.cl)
    (fun () ->
      match mode with
      | Closed requests when pipeline > 1 ->
          let remaining = ref requests in
          while !remaining > 0 do
            let n = min pipeline !remaining in
            remaining := !remaining - n;
            let items = List.init n (fun _ -> pipelined_item ()) in
            let t0 = Obs.Timing.wall () in
            Serve.Client.post_batch c.cl
              (List.map (fun (r, _) -> (Serve.Proto.no_meta, r)) items);
            (* per-reply latency: batch send to this reply's arrival *)
            List.iter
              (fun (_, check) ->
                let reply = Serve.Client.receive c.cl in
                account ((Obs.Timing.wall () -. t0) *. 1e6) reply;
                check reply)
              items
          done
      | Closed requests ->
          for _ = 1 to requests do
            one_request ()
          done
      | Soak { until; interval; churn_every } ->
          (* open-loop: arrivals stay on the schedule grid.  A slow reply
             eats into the next slot (we do not sleep), so server-side
             queueing shows up as latency, not a slower generator. *)
          let next = ref (Obs.Timing.wall ()) in
          let iter = ref 0 in
          while Obs.Timing.wall () < until do
            let now = Obs.Timing.wall () in
            if !next > now then Thread.delay (!next -. now);
            next := !next +. interval;
            incr iter;
            if churn_every > 0 && !iter mod churn_every = 0 then begin
              st.churns <- st.churns + 1;
              Serve.Client.churn c.cl
            end;
            one_request ()
          done)

(* --- aggregation -------------------------------------------------------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))

let () =
  let bind = ref None
  and connections = ref 8
  and requests = ref 100
  and seed = ref 1
  and expect_faults = ref false
  and soak = ref None
  and arrival_rate = ref 100.0
  and churn_every = ref 0
  and deadline_ms = ref 0
  and slo_p99_ms = ref 0.0
  and pipeline_depth = ref 1
  and out = ref None
  and validate = ref None in
  let pos_float flag s =
    match float_of_string_opt s with
    | Some f when f > 0.0 -> f
    | _ -> fail "%s wants a positive number, got %s" flag s
  in
  let rec parse = function
    | [] -> ()
    | "--socket" :: path :: rest ->
        bind := Some (Serve.Server.Unix_path path);
        parse rest
    | "--port" :: p :: rest ->
        (match int_of_string_opt p with
        | Some n when n >= 1 && n < 65536 -> bind := Some (Serve.Server.Tcp n)
        | _ -> fail "--port wants 1..65535, got %s" p);
        parse rest
    | "--connections" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> connections := n
        | _ -> fail "--connections wants a positive integer, got %s" n);
        parse rest
    | "--requests" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> requests := n
        | _ -> fail "--requests wants a positive integer, got %s" n);
        parse rest
    | "--seed" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n -> seed := n
        | None -> fail "--seed wants an integer, got %s" n);
        parse rest
    | "--smoke" :: rest ->
        connections := 4;
        requests := 250;
        parse rest
    | "--expect-faults" :: rest ->
        expect_faults := true;
        parse rest
    | "--soak" :: s :: rest ->
        soak := Some (pos_float "--soak" s);
        parse rest
    | "--arrival-rate" :: s :: rest ->
        arrival_rate := pos_float "--arrival-rate" s;
        parse rest
    | "--churn" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 0 -> churn_every := n
        | _ -> fail "--churn wants a non-negative integer, got %s" n);
        parse rest
    | "--deadline-ms" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 0 -> deadline_ms := n
        | _ -> fail "--deadline-ms wants a non-negative integer, got %s" n);
        parse rest
    | "--slo-p99-ms" :: s :: rest ->
        slo_p99_ms := pos_float "--slo-p99-ms" s;
        parse rest
    | "--pipeline-depth" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> pipeline_depth := n
        | _ -> fail "--pipeline-depth wants a positive integer, got %s" n);
        parse rest
    | "--faults" :: spec :: rest ->
        (* client-side arming: the wire probes mangle *our* sends.  The
           kernel fault keys are inert in this process — the oracle
           manager never gets a fault hook attached — so the same SPEC
           can be handed to both ends of a soak. *)
        (match Resil.Fault.config_of_string spec with
        | Ok cfg -> Resil.Fault.arm (Some cfg)
        | Error m -> fail "--faults: %s" m);
        parse rest
    | "-o" :: path :: rest ->
        out := Some path;
        parse rest
    | "--validate" :: path :: rest ->
        validate := Some path;
        parse rest
    | arg :: _ -> fail "unknown argument %s (run with no arguments for usage)" arg
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match !validate with
  | Some path -> (
      match Serve.Report.validate_file path with
      | Ok () ->
          Printf.printf "loadgen: %s is a valid %s report\n" path
            Serve.Report.schema;
          exit 0
      | Error m ->
          Printf.eprintf "loadgen: %s: %s\n" path m;
          exit 1)
  | None -> ());
  let bind = match !bind with Some b -> b | None -> usage () in
  if !pipeline_depth > 1 && (!soak <> None || !deadline_ms > 0) then
    fail "--pipeline-depth combines with neither --soak nor --deadline-ms";
  let stats = Array.init !connections (fun _ -> new_stats ()) in
  (* pipelining preflight: the same deterministic request sequence
     through two fresh sessions, once as singletons and once as one
     batch — the reply frames must match byte for byte (both sessions
     are new, so every reply is session-deterministic) *)
  if !pipeline_depth > 1 then begin
    let reqs =
      [
        Serve.Proto.Lit { var = 0; phase = true };
        Serve.Proto.Lit { var = 1; phase = false };
        Serve.Proto.Apply (Serve.Proto.And (1, 2));
        Serve.Proto.Count { handle = 3; nvars = 2 };
        Serve.Proto.Fetch { handle = 3 };
      ]
    in
    let run f =
      let c = Serve.Client.connect bind in
      Fun.protect ~finally:(fun () -> Serve.Client.close c) (fun () -> f c)
    in
    let single =
      run (fun c ->
          List.map
            (fun r ->
              Serve.Client.post c r;
              Serve.Client.receive_frame c)
            reqs)
    in
    let batched =
      run (fun c ->
          Serve.Client.post_batch c
            (List.map (fun r -> (Serve.Proto.no_meta, r)) reqs);
          List.map (fun _ -> Serve.Client.receive_frame c) reqs)
    in
    List.iteri
      (fun i (a, b) ->
        if a <> b then
          wrong stats.(0)
            "preflight: pipelined reply %d is not byte-identical to the \
             unpipelined frame"
            i)
      (List.combine single batched)
  end;
  let t0 = Obs.Timing.wall () in
  let mode_of i =
    ignore i;
    match !soak with
    | None -> Closed !requests
    | Some secs ->
        Soak
          {
            until = t0 +. secs;
            (* the total arrival rate is spread evenly over connections *)
            interval = float_of_int !connections /. !arrival_rate;
            churn_every = !churn_every;
          }
  in
  let threads =
    Array.init !connections (fun i ->
        Thread.create
          (fun () ->
            try
              connection ~seed:!seed ~mode:(mode_of i)
                ~pipeline:!pipeline_depth ~deadline_ms:!deadline_ms ~bind i
                stats.(i)
            with e ->
              wrong stats.(i) "connection %d died: %s" i (Printexc.to_string e))
          ())
  in
  Array.iter Thread.join threads;
  let elapsed = Obs.Timing.wall () -. t0 in
  let sum f = Array.fold_left (fun acc st -> acc + f st) 0 stats in
  let completed = sum (fun st -> st.completed) in
  let latencies =
    Array.of_list (Array.fold_left (fun acc st -> st.latencies @ acc) [] stats)
  in
  Array.sort compare latencies;
  let p99_us = percentile latencies 0.99 in
  let soak_section =
    match !soak with
    | None -> None
    | Some secs ->
        (* the server must have survived the whole soak: probe it with a
           fresh plain connection once the load is gone *)
        let server_exits =
          match Serve.Client.connect bind with
          | c ->
              let alive =
                match Serve.Client.ping c with
                | () -> true
                | exception _ -> false
              in
              Serve.Client.close c;
              if alive then 0 else 1
          | exception _ -> 1
        in
        Some
          {
            Serve.Report.duration_s = secs;
            arrival_rate = !arrival_rate;
            churns = sum (fun st -> st.churns);
            retries = sum (fun st -> st.retries);
            reconnects = sum (fun st -> st.reconnects);
            server_exits;
            slo_p99_ms = !slo_p99_ms;
            slo_met = !slo_p99_ms <= 0.0 || p99_us <= !slo_p99_ms *. 1000.0;
          }
  in
  (* arena share: read the server's arena.* counters over a fresh
     connection — absent keys mean the server runs without an arena *)
  let arena_share =
    match Serve.Client.connect bind with
    | exception _ -> None
    | c ->
        Fun.protect
          ~finally:(fun () -> Serve.Client.close c)
          (fun () ->
            match Serve.Client.stats c with
            | kvs -> (
                match
                  ( List.assoc_opt "arena.hits" kvs,
                    List.assoc_opt "arena.published" kvs )
                with
                | Some hits, Some published when hits + published > 0 ->
                    Some
                      (float_of_int hits /. float_of_int (hits + published))
                | Some _, Some _ -> Some 0.0
                | _ -> None)
            | exception _ -> None)
  in
  let report =
    {
      Serve.Report.connections = !connections;
      requests = completed;
      rejected = sum (fun st -> st.rejected);
      degraded = sum (fun st -> st.degraded);
      errors = sum (fun st -> st.errors);
      wrong = sum (fun st -> st.wrong);
      elapsed_s = elapsed;
      throughput_rps =
        (if elapsed > 0.0 then float_of_int completed /. elapsed else 0.0);
      p50_us = percentile latencies 0.50;
      p95_us = percentile latencies 0.95;
      p99_us;
      max_us =
        (if Array.length latencies = 0 then 0.0
         else latencies.(Array.length latencies - 1));
      peak_rss_kb = Obs.Timing.peak_rss_kb ();
      pipeline_depth = !pipeline_depth;
      arena_share;
      soak = soak_section;
    }
  in
  Printf.printf
    "loadgen: %d requests on %d connection(s) in %.2fs — %.0f rps, p50/p95/p99 \
     = %.0f/%.0f/%.0f us, rejected=%d degraded=%d errors=%d wrong=%d\n"
    report.Serve.Report.requests report.Serve.Report.connections
    report.Serve.Report.elapsed_s report.Serve.Report.throughput_rps
    report.Serve.Report.p50_us report.Serve.Report.p95_us
    report.Serve.Report.p99_us report.Serve.Report.rejected
    report.Serve.Report.degraded report.Serve.Report.errors
    report.Serve.Report.wrong;
  if !pipeline_depth > 1 then
    Printf.printf "loadgen: pipelined at depth %d\n" !pipeline_depth;
  (match arena_share with
  | Some s -> Printf.printf "loadgen: arena share %.2f\n" s
  | None -> ());
  (match soak_section with
  | None -> ()
  | Some s ->
      Printf.printf
        "loadgen: soak %.0fs at %.0f rps — churns=%d retries=%d reconnects=%d \
         server_exits=%d p99=%.1fms (slo %.1fms) %s\n"
        s.Serve.Report.duration_s s.Serve.Report.arrival_rate
        s.Serve.Report.churns s.Serve.Report.retries s.Serve.Report.reconnects
        s.Serve.Report.server_exits (p99_us /. 1000.0) s.Serve.Report.slo_p99_ms
        (if s.Serve.Report.slo_met && s.Serve.Report.server_exits = 0 then "OK"
         else "FAILED"));
  Array.iter
    (fun st -> List.iter (Printf.eprintf "loadgen: WRONG: %s\n") st.notes)
    stats;
  let soak_ok =
    match soak_section with
    | None -> true
    | Some s -> s.Serve.Report.slo_met && s.Serve.Report.server_exits = 0
  in
  (match !out with
  | Some path ->
      Serve.Report.write path report;
      (match Serve.Report.validate_file path with
      | Ok () -> ()
      | Error m when soak_ok -> fail "written report failed validation: %s" m
      | Error _ -> (* the failing soak below is the real diagnosis *) ())
  | None -> ());
  if report.Serve.Report.wrong > 0 then exit 1;
  if report.Serve.Report.errors > 0 && not !expect_faults then begin
    Printf.eprintf
      "loadgen: %d Error replies without --expect-faults\n"
      report.Serve.Report.errors;
    exit 1
  end;
  if not soak_ok then begin
    Printf.eprintf "loadgen: soak failed its SLO (see the soak line above)\n";
    exit 1
  end
